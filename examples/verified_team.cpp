// The adoption-path API: a verifying CVS client against an untrusted server,
// no simulator involved. Three developers share a repository hosted by a
// vendor they do not trust; every checkout/commit is verified against the
// vendor's Merkle-tree proofs, and a periodic sync-up (Protocol II's XOR
// check, run over any channel the developers trust) catches forks and
// replays that per-operation verification cannot see.
//
// Build & run:  ./build/examples/verified_team

#include <cstdio>

#include "cvs/trusted.h"

using namespace tcvs;
using cvs::UntrustedServer;
using cvs::VerifyingClient;

int main() {
  std::printf("== Verified team workflow on an untrusted host ==\n\n");

  UntrustedServer vendor;
  VerifyingClient alice(1, &vendor);
  VerifyingClient bob(2, &vendor);
  VerifyingClient carol(3, &vendor);

  // Normal development flow: every reply is verified under the hood.
  auto r1 = alice.Commit("src/parser.c", "int parse() { return 0; }\n", 0);
  std::printf("alice creates src/parser.c       -> rev %llu\n",
              (unsigned long long)*r1);

  auto rec = bob.Checkout("src/parser.c");
  std::printf("bob checks out (verified)        -> rev %llu, %zu bytes\n",
              (unsigned long long)rec->revision, rec->content.size());

  auto r2 = bob.Commit("src/parser.c",
                       "int parse() { return 1; } // fixed\n", rec->revision);
  std::printf("bob commits a fix                -> rev %llu\n",
              (unsigned long long)*r2);

  // Carol races bob with a stale base: the conflict is AUTHENTICATED — the
  // server proves the current revision inside the rejection.
  auto stale = carol.Commit("src/parser.c", "int parse() { crash(); }\n", 1);
  std::printf("carol's stale commit rejected    : %s\n",
              stale.status().ToString().c_str());

  // Provably complete listing: the vendor cannot hide files.
  auto listing = alice.ListDir("src/");
  std::printf("alice lists src/ (verified)      : %zu file(s)\n",
              listing->size());

  // Weekly sync-up: the three compare 32-byte registers.
  Status sync = VerifyingClient::SyncUp({&alice, &bob, &carol});
  std::printf("weekly sync-up                   : %s\n",
              sync.ok() ? "clean — one serial history" : sync.ToString().c_str());

  // Transparency-log audit: append-only history, checkpointed per client.
  Status audit = alice.AuditLog();
  std::printf("alice audits the history log     : %s (%llu entries)\n\n",
              audit.ok() ? "append-only, consistent" : audit.ToString().c_str(),
              (unsigned long long)alice.log_checkpoint_size());

  // Now the vendor goes rogue: it rewrites a file out-of-band.
  std::printf("-- vendor silently rewrites src/parser.c --\n");
  vendor.mutable_tree_for_testing()->Upsert(
      util::ToBytes("src/parser.c"),
      cvs::FileRecord{2, "int parse() { backdoor(); }\n"}.Serialize());

  // Alice's next checkout still "verifies" (it is consistent with the state
  // the vendor now claims), and she unknowingly reads the backdoored code...
  auto poisoned = alice.Checkout("src/parser.c");
  std::printf("alice reads (locally verified)   : %s",
              poisoned->content.c_str());

  // ...but the transition chain across the team is broken, and the next
  // sync-up names the vendor.
  sync = VerifyingClient::SyncUp({&alice, &bob, &carol});
  std::printf("next sync-up                     : %s\n",
              sync.ok() ? "clean (BROKEN!)" : sync.ToString().c_str());
  return sync.ok() ? 1 : 0;
}
