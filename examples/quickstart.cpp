// Quickstart: the two layers of trusted-cvs in five minutes.
//
//  1. The authenticated store: a Merkle B⁺-tree on the (untrusted) server,
//     a 32-byte TreeClient on the user side, verification objects in
//     between (paper §4.1).
//  2. The multi-user protocol layer: a simulated server + users running
//     Protocol II, detecting a fork attack at the sync-up (paper §4.3).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/scenario.h"
#include "mtree/btree.h"
#include "mtree/client.h"
#include "util/bytes.h"
#include "workload/workload.h"

using namespace tcvs;

namespace {

void SingleUserLayer() {
  std::printf("== Layer 1: authenticated key-value store ==\n");

  // Server side: the database lives in a Merkle B+-tree.
  mtree::MerkleBTree server_db;

  // User side: nothing but the root digest of the (empty) database.
  mtree::TreeClient client = mtree::TreeClient::ForEmptyDatabase();
  std::printf("initial root digest: %s...\n",
              util::HexEncode(client.root()).substr(0, 16).c_str());

  // Commit a file. The server returns a pre-state verification object; the
  // client verifies it and recomputes the new root locally.
  Bytes key = util::ToBytes("src/main.c");
  Bytes content = util::ToBytes("int main() { return 0; }\n");
  mtree::PointVO vo = server_db.Upsert(key, content);
  auto new_root = client.ApplyUpsert(key, content, vo);
  std::printf("commit verified: %s\n", new_root.ok() ? "yes" : "NO");
  std::printf("client root == server root: %s\n",
              (client.root() == server_db.root_digest()) ? "yes" : "NO");

  // Checkout with proof of membership.
  mtree::PointVO read_vo = server_db.ProvePoint(key);
  auto value = client.Read(key, read_vo);
  std::printf("checkout verified, content: %s",
              value.ok() && value->has_value()
                  ? util::ToString(**value).c_str()
                  : "MISSING\n");

  // A tampering server is caught immediately: serve a forged value.
  mtree::MerkleBTree evil_db = server_db.Clone();
  evil_db.Upsert(key, util::ToBytes("int main() { backdoor(); }\n"));
  mtree::PointVO forged_vo = evil_db.ProvePoint(key);
  auto forged = client.Read(key, forged_vo);
  std::printf("forged read rejected: %s (%s)\n\n",
              forged.ok() ? "NO — BROKEN" : "yes",
              forged.status().ToString().c_str());
}

void MultiUserLayer() {
  std::printf("== Layer 2: multi-user deviation detection (Protocol II) ==\n");

  core::ScenarioConfig config;
  config.protocol = core::ProtocolKind::kProtocolII;
  config.num_users = 4;
  config.sync_k = 6;
  // The server forks users 3,4 onto a stale branch at round 60 — the
  // multi-user availability violation of the paper's introduction.
  config.attack.kind = core::AttackKind::kFork;
  config.attack.trigger_round = 60;
  config.attack.partition_a = {3, 4};

  workload::CvsWorkloadOptions opts;
  opts.num_users = 4;
  opts.ops_per_user = 25;
  opts.offline_probability = 0.0;
  core::Scenario scenario(config, workload::MakeCvsWorkload(opts));
  core::ScenarioReport report = scenario.Run(4000);

  std::printf("attack engaged at round : %llu\n",
              static_cast<unsigned long long>(report.attack_engaged_round));
  std::printf("detected                : %s\n", report.detected ? "yes" : "no");
  std::printf("detected at round       : %llu (by user %u)\n",
              static_cast<unsigned long long>(report.detection_round),
              report.detector);
  std::printf("reason                  : %s\n", report.detection_reason.c_str());
  std::printf("ops after attack        : %llu (k = %u per user bound)\n",
              static_cast<unsigned long long>(report.detection_delay_ops),
              config.sync_k);
}

}  // namespace

int main() {
  SingleUserLayer();
  MultiUserLayer();
  return 0;
}
