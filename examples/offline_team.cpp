// Protocol III: trusted CVS for a team that is never online together.
//
// Protocols I and II need a broadcast channel and simultaneous presence at
// every sync-up. Protocol III removes both: time is cut into epochs of t
// rounds; every user performs at least two operations per epoch; users
// deposit their signed (σ, last) registers for epoch e on the *untrusted
// server itself* during epoch e+1; and a rotating auditor re-runs the XOR
// path check in epoch e+2. Any server fault is caught within two epochs —
// a time bound instead of an operation bound (Theorem 4.3).
//
// Build & run:  ./build/examples/offline_team

#include <cstdio>

#include "core/scenario.h"
#include "workload/workload.h"

using namespace tcvs;

namespace {

core::ScenarioReport RunEpochScenario(core::AttackKind attack,
                                      sim::Round trigger) {
  core::ScenarioConfig config;
  config.protocol = core::ProtocolKind::kProtocolIII;
  config.num_users = 4;
  config.epoch_rounds = 50;
  config.user_key_height = 8;
  config.attack.kind = attack;
  config.attack.trigger_round = trigger;
  config.attack.partition_a = {3, 4};
  config.attack.victim = 2;

  workload::EpochWorkloadOptions opts;
  opts.num_users = 4;
  opts.num_epochs = 12;
  opts.epoch_rounds = 50;
  opts.ops_per_epoch = 2;  // The §4.4 minimum.
  core::Scenario scenario(config, workload::MakeEpochWorkload(opts));
  return scenario.Run(12 * 50 + 200);
}

}  // namespace

int main() {
  std::printf("Protocol III: epoch-based detection with no broadcast channel\n");
  std::printf("(epoch t = 50 rounds; every user does 2 ops per epoch)\n");
  std::printf("--------------------------------------------------------------\n\n");

  {
    core::ScenarioReport r =
        RunEpochScenario(core::AttackKind::kHonest, 0);
    std::printf("honest server          : detected=%s, external messages=%llu"
                " (none — no broadcast channel)\n",
                r.detected ? "yes (FALSE ALARM)" : "no",
                static_cast<unsigned long long>(r.traffic.external_messages));
  }
  {
    core::ScenarioReport r = RunEpochScenario(core::AttackKind::kFork, 170);
    unsigned long long fault_epoch = 170 / 50;
    unsigned long long detect_epoch = r.detection_round / 50;
    std::printf("fork at epoch %llu        : detected=%s in epoch %llu "
                "(within the 2-epoch audit pipeline)\n",
                fault_epoch, r.detected ? "yes" : "NO",
                detect_epoch);
    std::printf("                         reason: %s\n",
                r.detection_reason.c_str());
  }
  {
    core::ScenarioReport r =
        RunEpochScenario(core::AttackKind::kOmitEpochState, 0);
    std::printf("withheld audit blob    : detected=%s (%s)\n",
                r.detected ? "yes" : "NO", r.detection_reason.c_str());
  }
  {
    core::ScenarioReport r =
        RunEpochScenario(core::AttackKind::kStaleEpochState, 0);
    std::printf("stale audit blob       : detected=%s (%s)\n",
                r.detected ? "yes" : "NO", r.detection_reason.c_str());
  }

  std::printf(
      "\nAll state flows through the untrusted server — signatures make the\n"
      "stored registers tamper-evident, and the workload guarantee (two ops\n"
      "per user per epoch) makes them timely.\n");
  return 0;
}
