// The outsourcing model (paper §1): a database owned jointly by several
// clients but operated by an untrusted third-party vendor. This example
// exercises the full application stack:
//
//   * CVS semantics (checkout / commit / update-merge / conflict) from
//     src/cvs, including the Myers diff engine,
//   * authenticated range scans over the vendor's Merkle B⁺-tree, with the
//     completeness check that catches a vendor hiding rows.
//
// Build & run:  ./build/examples/outsourced_db

#include <cstdio>

#include "cvs/repository.h"
#include "mtree/client.h"
#include "util/bytes.h"

using namespace tcvs;

int main() {
  std::printf("== Outsourced multi-user database ==\n\n");

  // The vendor hosts the repository; clients keep only the root digest.
  cvs::Repository vendor;
  mtree::TreeClient alice = mtree::TreeClient::ForEmptyDatabase();

  // --- CVS flow: commit, concurrent edit, merge -----------------------------
  auto r1 = vendor.Commit("orders/2026-Q3.csv", "id,qty\n1,10\n2,20\n", 0);
  std::printf("alice creates orders/2026-Q3.csv -> revision %llu\n",
              static_cast<unsigned long long>(*r1));

  // Bob checks out, edits line 2; Alice concurrently edits line 3.
  cvs::WorkingCopy bob;
  bob.OnCheckout("orders/2026-Q3.csv", *vendor.Checkout("orders/2026-Q3.csv"));
  (void)bob.Edit("orders/2026-Q3.csv", "id,qty\n1,15\n2,20\n");

  auto r2 = vendor.Commit("orders/2026-Q3.csv", "id,qty\n1,10\n2,25\n", 1);
  std::printf("alice commits qty change         -> revision %llu\n",
              static_cast<unsigned long long>(*r2));

  // Bob's commit against revision 1 is stale — classic CVS conflict flow.
  auto stale = vendor.Commit("orders/2026-Q3.csv", *bob.Content("orders/2026-Q3.csv"), 1);
  std::printf("bob's stale commit rejected      : %s\n",
              stale.ok() ? "NO (broken)" : stale.status().ToString().c_str());

  // Bob updates (three-way merge) and retries.
  auto merged = bob.Update("orders/2026-Q3.csv", *vendor.Checkout("orders/2026-Q3.csv"));
  std::printf("bob merges upstream              : conflicts=%s\n",
              merged->had_conflicts ? "yes" : "no");
  auto r3 = vendor.Commit("orders/2026-Q3.csv", *bob.Content("orders/2026-Q3.csv"), 2);
  std::printf("bob's merged commit              -> revision %llu\n",
              static_cast<unsigned long long>(*r3));
  std::printf("final content:\n%s\n", vendor.Checkout("orders/2026-Q3.csv")->content.c_str());

  // --- Authenticated range scan ---------------------------------------------
  // Sync alice's trusted root by replaying the commits through the VO path
  // would be the protocol layer's job; here we hand her the current digest
  // as if a verified sync just completed.
  for (const char* path : {"orders/2026-Q1.csv", "orders/2026-Q2.csv",
                           "orders/2026-Q4.csv", "users/admins.txt"}) {
    (void)vendor.Commit(path, std::string("data for ") + path + "\n", 0);
  }
  alice.ResetRoot(vendor.tree().root_digest());

  Bytes lo = util::ToBytes("orders/");
  Bytes hi = util::ToBytes("orders/\xFF");
  mtree::RangeVO range_vo = vendor.tree().ProveRange(lo, hi);
  auto rows = alice.ReadRange(lo, hi, range_vo);
  std::printf("verified range scan of orders/*  : %zu rows\n", rows->size());
  for (const auto& [k, v] : *rows) {
    std::printf("  %s\n", util::ToString(k).c_str());
  }

  // A vendor that hides a row is caught by the completeness check.
  mtree::RangeVO forged = range_vo;
  if (!forged.root.is_leaf && !forged.root.expanded.empty()) {
    forged.root.expanded.erase(forged.root.expanded.begin());
  } else {
    forged.root.entries.clear();
  }
  auto cheated = alice.ReadRange(lo, hi, forged);
  std::printf("vendor hiding rows rejected      : %s (%s)\n",
              cheated.ok() ? "NO (broken)" : "yes",
              cheated.status().ToString().c_str());
  return 0;
}
