// The Figure-3 replay attack: why Protocol II tags state fingerprints with
// the user that produced them.
//
// A first-attempt design accumulates untagged fingerprints h(M(D) ‖ ctr) in
// each user's XOR register. The server can then replay an already-executed
// segment of history to a second set of users: every duplicated state
// cancels pairwise in the combined XOR and the sync-up check passes, even
// though two transactions were executed per counter value and the mirrored
// users never see the live branch — an availability violation.
//
// Tagging each state with the id of the user whose operation created it —
// h(M(D) ‖ ctr ‖ j) — forces in-degree ≤ 1 in the state-transition graph
// (Lemma 4.1), so the same replay leaves unmatched fingerprints and the
// sync-up fails.
//
// Build & run:  ./build/examples/replay_attack

#include <cstdio>

#include "core/scenario.h"

using namespace tcvs;

int main() {
  std::printf("Figure-3 replay attack: tagged vs untagged XOR registers\n");
  std::printf("--------------------------------------------------------\n\n");

  {
    core::Scenario scenario = core::MakeReplayScenario(/*naive=*/true);
    core::ScenarioReport r = scenario.Run(300);
    std::printf("untagged h(M||ctr)      : ground-truth deviation=%s, "
                "detected=%s   <-- fooled!\n",
                r.ground_truth_deviation ? "yes" : "no",
                r.detected ? "yes" : "no");
  }
  {
    core::Scenario scenario = core::MakeReplayScenario(/*naive=*/false);
    core::ScenarioReport r = scenario.Run(300);
    std::printf("tagged   h(M||ctr||user): ground-truth deviation=%s, "
                "detected=%s (round %llu: %s)\n",
                r.ground_truth_deviation ? "yes" : "no",
                r.detected ? "yes" : "no",
                static_cast<unsigned long long>(r.detection_round),
                r.detection_reason.c_str());
  }

  std::printf(
      "\nThe replayed transitions duplicate (state, ctr) pairs across users.\n"
      "Untagged, each duplicate cancels in the XOR and the check collapses\n"
      "to initial ⊕ last as if the history were a single path. Tagged, the\n"
      "duplicates carry different creator ids, parity breaks, and the\n"
      "sync-up reports the deviation.\n");
  return 0;
}
