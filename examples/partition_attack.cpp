// The Figure-1 partition attack, told as the paper tells it (§3.1):
//
//   A programmer in the US commits Common.h (t1) and goes offline. A
//   programmer in China then checks out Common.h (t2, causally dependent on
//   t1) and keeps committing. A malicious server shows the Chinese side a
//   fork that never contained t1. Each side's view is perfectly
//   self-consistent, so without communication between users (Theorem 3.1)
//   the fork is undetectable — and with a broadcast sync-up (Protocols I/II)
//   it is caught as soon as the first user completes k more operations.
//
// Build & run:  ./build/examples/partition_attack

#include <cstdio>

#include "core/scenario.h"
#include "workload/workload.h"

using namespace tcvs;

namespace {

core::ScenarioReport RunWith(core::ProtocolKind protocol, uint32_t k) {
  core::ScenarioConfig config;
  config.protocol = protocol;
  config.num_users = 4;
  config.sync_k = k;
  config.user_key_height = 8;
  config.attack.kind = core::AttackKind::kFork;
  config.attack.trigger_round = 60;   // Before t1 lands at round ~82.
  config.attack.partition_a = {3, 4};  // The offshore team gets the fork.

  workload::PartitionableOptions opts;
  opts.users_in_a = 2;
  opts.users_in_b = 2;
  opts.prefix_ops_per_user = 3;
  opts.partition_round = 80;  // t1: the US programmer's commit to Common.h.
  opts.b_ops_after_dependency = 3 * k;  // B works on: > k ops by one user.
  core::Scenario scenario(config, workload::MakePartitionableWorkload(opts));
  return scenario.Run(20000);
}

void Report(const char* name, const core::ScenarioReport& r) {
  std::printf("%-18s deviation(ground truth)=%-3s detected=%-3s", name,
              r.ground_truth_deviation ? "yes" : "no", r.detected ? "yes" : "no");
  if (r.detected) {
    std::printf("  round=%-6llu ops-after-attack=%llu",
                static_cast<unsigned long long>(r.detection_round),
                static_cast<unsigned long long>(r.detection_delay_ops));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Partition attack (paper Figure 1), k = 8\n");
  std::printf("-----------------------------------------\n");

  // No protocol at all: the attack simply works.
  Report("Plain", RunWith(core::ProtocolKind::kPlain, 8));

  // Theorem 3.1: per-operation local verification without any user-to-user
  // communication cannot detect the fork — ever.
  Report("NoExternalComm", RunWith(core::ProtocolKind::kNoExternalComm, 8));

  // Protocol I: signed roots + sync-up. Detected at the first sync after
  // the fork.
  Report("ProtocolI", RunWith(core::ProtocolKind::kProtocolI, 8));

  // Protocol II: XOR registers, no signatures, no blocking message.
  Report("ProtocolII", RunWith(core::ProtocolKind::kProtocolII, 8));

  std::printf(
      "\nNote how both sides of the fork verified every operation locally\n"
      "and still the histories diverged: detection requires the sync-up's\n"
      "external communication, exactly as Theorem 3.1 demands.\n");
  return 0;
}
