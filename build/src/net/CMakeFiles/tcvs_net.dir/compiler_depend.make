# Empty compiler generated dependencies file for tcvs_net.
# This may be replaced when dependencies are built.
