file(REMOVE_RECURSE
  "libtcvs_net.a"
)
