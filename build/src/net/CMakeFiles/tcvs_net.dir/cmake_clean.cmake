file(REMOVE_RECURSE
  "CMakeFiles/tcvs_net.dir/socket.cc.o"
  "CMakeFiles/tcvs_net.dir/socket.cc.o.d"
  "libtcvs_net.a"
  "libtcvs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
