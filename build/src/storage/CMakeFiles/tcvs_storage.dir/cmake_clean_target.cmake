file(REMOVE_RECURSE
  "libtcvs_storage.a"
)
