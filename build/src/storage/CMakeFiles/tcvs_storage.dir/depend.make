# Empty dependencies file for tcvs_storage.
# This may be replaced when dependencies are built.
