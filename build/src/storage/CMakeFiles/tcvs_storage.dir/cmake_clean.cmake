file(REMOVE_RECURSE
  "CMakeFiles/tcvs_storage.dir/durable.cc.o"
  "CMakeFiles/tcvs_storage.dir/durable.cc.o.d"
  "CMakeFiles/tcvs_storage.dir/wal.cc.o"
  "CMakeFiles/tcvs_storage.dir/wal.cc.o.d"
  "libtcvs_storage.a"
  "libtcvs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
