file(REMOVE_RECURSE
  "CMakeFiles/tcvs_sim.dir/kernel.cc.o"
  "CMakeFiles/tcvs_sim.dir/kernel.cc.o.d"
  "CMakeFiles/tcvs_sim.dir/trace.cc.o"
  "CMakeFiles/tcvs_sim.dir/trace.cc.o.d"
  "libtcvs_sim.a"
  "libtcvs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
