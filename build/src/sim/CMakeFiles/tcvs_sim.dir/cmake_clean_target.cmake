file(REMOVE_RECURSE
  "libtcvs_sim.a"
)
