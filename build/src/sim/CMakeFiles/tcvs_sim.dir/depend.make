# Empty dependencies file for tcvs_sim.
# This may be replaced when dependencies are built.
