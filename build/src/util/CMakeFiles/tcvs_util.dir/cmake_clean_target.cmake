file(REMOVE_RECURSE
  "libtcvs_util.a"
)
