file(REMOVE_RECURSE
  "CMakeFiles/tcvs_util.dir/bytes.cc.o"
  "CMakeFiles/tcvs_util.dir/bytes.cc.o.d"
  "CMakeFiles/tcvs_util.dir/histogram.cc.o"
  "CMakeFiles/tcvs_util.dir/histogram.cc.o.d"
  "CMakeFiles/tcvs_util.dir/logging.cc.o"
  "CMakeFiles/tcvs_util.dir/logging.cc.o.d"
  "CMakeFiles/tcvs_util.dir/random.cc.o"
  "CMakeFiles/tcvs_util.dir/random.cc.o.d"
  "CMakeFiles/tcvs_util.dir/serde.cc.o"
  "CMakeFiles/tcvs_util.dir/serde.cc.o.d"
  "CMakeFiles/tcvs_util.dir/status.cc.o"
  "CMakeFiles/tcvs_util.dir/status.cc.o.d"
  "libtcvs_util.a"
  "libtcvs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
