# Empty compiler generated dependencies file for tcvs_util.
# This may be replaced when dependencies are built.
