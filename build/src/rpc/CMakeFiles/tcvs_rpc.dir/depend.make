# Empty dependencies file for tcvs_rpc.
# This may be replaced when dependencies are built.
