file(REMOVE_RECURSE
  "CMakeFiles/tcvs_rpc.dir/protocol.cc.o"
  "CMakeFiles/tcvs_rpc.dir/protocol.cc.o.d"
  "CMakeFiles/tcvs_rpc.dir/remote.cc.o"
  "CMakeFiles/tcvs_rpc.dir/remote.cc.o.d"
  "libtcvs_rpc.a"
  "libtcvs_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
