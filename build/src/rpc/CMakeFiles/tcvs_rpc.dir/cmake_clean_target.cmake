file(REMOVE_RECURSE
  "libtcvs_rpc.a"
)
