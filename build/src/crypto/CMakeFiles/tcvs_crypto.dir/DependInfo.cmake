
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/hmac.cc" "src/crypto/CMakeFiles/tcvs_crypto.dir/hmac.cc.o" "gcc" "src/crypto/CMakeFiles/tcvs_crypto.dir/hmac.cc.o.d"
  "/root/repo/src/crypto/keystore.cc" "src/crypto/CMakeFiles/tcvs_crypto.dir/keystore.cc.o" "gcc" "src/crypto/CMakeFiles/tcvs_crypto.dir/keystore.cc.o.d"
  "/root/repo/src/crypto/lamport.cc" "src/crypto/CMakeFiles/tcvs_crypto.dir/lamport.cc.o" "gcc" "src/crypto/CMakeFiles/tcvs_crypto.dir/lamport.cc.o.d"
  "/root/repo/src/crypto/merkle_sig.cc" "src/crypto/CMakeFiles/tcvs_crypto.dir/merkle_sig.cc.o" "gcc" "src/crypto/CMakeFiles/tcvs_crypto.dir/merkle_sig.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/tcvs_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/tcvs_crypto.dir/sha256.cc.o.d"
  "/root/repo/src/crypto/signature.cc" "src/crypto/CMakeFiles/tcvs_crypto.dir/signature.cc.o" "gcc" "src/crypto/CMakeFiles/tcvs_crypto.dir/signature.cc.o.d"
  "/root/repo/src/crypto/translog.cc" "src/crypto/CMakeFiles/tcvs_crypto.dir/translog.cc.o" "gcc" "src/crypto/CMakeFiles/tcvs_crypto.dir/translog.cc.o.d"
  "/root/repo/src/crypto/winternitz.cc" "src/crypto/CMakeFiles/tcvs_crypto.dir/winternitz.cc.o" "gcc" "src/crypto/CMakeFiles/tcvs_crypto.dir/winternitz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tcvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
