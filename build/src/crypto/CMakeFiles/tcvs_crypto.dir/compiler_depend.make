# Empty compiler generated dependencies file for tcvs_crypto.
# This may be replaced when dependencies are built.
