file(REMOVE_RECURSE
  "libtcvs_crypto.a"
)
