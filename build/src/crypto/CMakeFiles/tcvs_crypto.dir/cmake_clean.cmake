file(REMOVE_RECURSE
  "CMakeFiles/tcvs_crypto.dir/hmac.cc.o"
  "CMakeFiles/tcvs_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/tcvs_crypto.dir/keystore.cc.o"
  "CMakeFiles/tcvs_crypto.dir/keystore.cc.o.d"
  "CMakeFiles/tcvs_crypto.dir/lamport.cc.o"
  "CMakeFiles/tcvs_crypto.dir/lamport.cc.o.d"
  "CMakeFiles/tcvs_crypto.dir/merkle_sig.cc.o"
  "CMakeFiles/tcvs_crypto.dir/merkle_sig.cc.o.d"
  "CMakeFiles/tcvs_crypto.dir/sha256.cc.o"
  "CMakeFiles/tcvs_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/tcvs_crypto.dir/signature.cc.o"
  "CMakeFiles/tcvs_crypto.dir/signature.cc.o.d"
  "CMakeFiles/tcvs_crypto.dir/translog.cc.o"
  "CMakeFiles/tcvs_crypto.dir/translog.cc.o.d"
  "CMakeFiles/tcvs_crypto.dir/winternitz.cc.o"
  "CMakeFiles/tcvs_crypto.dir/winternitz.cc.o.d"
  "libtcvs_crypto.a"
  "libtcvs_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
