file(REMOVE_RECURSE
  "CMakeFiles/tcvs_cvs.dir/diff.cc.o"
  "CMakeFiles/tcvs_cvs.dir/diff.cc.o.d"
  "CMakeFiles/tcvs_cvs.dir/repository.cc.o"
  "CMakeFiles/tcvs_cvs.dir/repository.cc.o.d"
  "CMakeFiles/tcvs_cvs.dir/trusted.cc.o"
  "CMakeFiles/tcvs_cvs.dir/trusted.cc.o.d"
  "libtcvs_cvs.a"
  "libtcvs_cvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_cvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
