file(REMOVE_RECURSE
  "libtcvs_cvs.a"
)
