# Empty dependencies file for tcvs_cvs.
# This may be replaced when dependencies are built.
