file(REMOVE_RECURSE
  "libtcvs_core.a"
)
