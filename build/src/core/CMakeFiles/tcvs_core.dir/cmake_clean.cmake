file(REMOVE_RECURSE
  "CMakeFiles/tcvs_core.dir/fingerprint.cc.o"
  "CMakeFiles/tcvs_core.dir/fingerprint.cc.o.d"
  "CMakeFiles/tcvs_core.dir/forensics.cc.o"
  "CMakeFiles/tcvs_core.dir/forensics.cc.o.d"
  "CMakeFiles/tcvs_core.dir/graph_check.cc.o"
  "CMakeFiles/tcvs_core.dir/graph_check.cc.o.d"
  "CMakeFiles/tcvs_core.dir/scenario.cc.o"
  "CMakeFiles/tcvs_core.dir/scenario.cc.o.d"
  "CMakeFiles/tcvs_core.dir/server.cc.o"
  "CMakeFiles/tcvs_core.dir/server.cc.o.d"
  "CMakeFiles/tcvs_core.dir/user.cc.o"
  "CMakeFiles/tcvs_core.dir/user.cc.o.d"
  "CMakeFiles/tcvs_core.dir/wire.cc.o"
  "CMakeFiles/tcvs_core.dir/wire.cc.o.d"
  "libtcvs_core.a"
  "libtcvs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
