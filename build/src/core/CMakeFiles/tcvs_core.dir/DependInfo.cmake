
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fingerprint.cc" "src/core/CMakeFiles/tcvs_core.dir/fingerprint.cc.o" "gcc" "src/core/CMakeFiles/tcvs_core.dir/fingerprint.cc.o.d"
  "/root/repo/src/core/forensics.cc" "src/core/CMakeFiles/tcvs_core.dir/forensics.cc.o" "gcc" "src/core/CMakeFiles/tcvs_core.dir/forensics.cc.o.d"
  "/root/repo/src/core/graph_check.cc" "src/core/CMakeFiles/tcvs_core.dir/graph_check.cc.o" "gcc" "src/core/CMakeFiles/tcvs_core.dir/graph_check.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/tcvs_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/tcvs_core.dir/scenario.cc.o.d"
  "/root/repo/src/core/server.cc" "src/core/CMakeFiles/tcvs_core.dir/server.cc.o" "gcc" "src/core/CMakeFiles/tcvs_core.dir/server.cc.o.d"
  "/root/repo/src/core/user.cc" "src/core/CMakeFiles/tcvs_core.dir/user.cc.o" "gcc" "src/core/CMakeFiles/tcvs_core.dir/user.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/core/CMakeFiles/tcvs_core.dir/wire.cc.o" "gcc" "src/core/CMakeFiles/tcvs_core.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mtree/CMakeFiles/tcvs_mtree.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tcvs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tcvs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
