# Empty compiler generated dependencies file for tcvs_core.
# This may be replaced when dependencies are built.
