file(REMOVE_RECURSE
  "libtcvs_workload.a"
)
