file(REMOVE_RECURSE
  "CMakeFiles/tcvs_workload.dir/workload.cc.o"
  "CMakeFiles/tcvs_workload.dir/workload.cc.o.d"
  "libtcvs_workload.a"
  "libtcvs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
