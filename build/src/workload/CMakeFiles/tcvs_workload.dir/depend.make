# Empty dependencies file for tcvs_workload.
# This may be replaced when dependencies are built.
