file(REMOVE_RECURSE
  "libtcvs_mtree.a"
)
