# Empty compiler generated dependencies file for tcvs_mtree.
# This may be replaced when dependencies are built.
