file(REMOVE_RECURSE
  "CMakeFiles/tcvs_mtree.dir/btree.cc.o"
  "CMakeFiles/tcvs_mtree.dir/btree.cc.o.d"
  "CMakeFiles/tcvs_mtree.dir/vo.cc.o"
  "CMakeFiles/tcvs_mtree.dir/vo.cc.o.d"
  "libtcvs_mtree.a"
  "libtcvs_mtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_mtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
