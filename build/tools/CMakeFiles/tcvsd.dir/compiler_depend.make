# Empty compiler generated dependencies file for tcvsd.
# This may be replaced when dependencies are built.
