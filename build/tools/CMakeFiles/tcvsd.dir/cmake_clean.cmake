file(REMOVE_RECURSE
  "CMakeFiles/tcvsd.dir/tcvsd.cc.o"
  "CMakeFiles/tcvsd.dir/tcvsd.cc.o.d"
  "tcvsd"
  "tcvsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
