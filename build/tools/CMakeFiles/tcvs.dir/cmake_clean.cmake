file(REMOVE_RECURSE
  "CMakeFiles/tcvs.dir/tcvs.cc.o"
  "CMakeFiles/tcvs.dir/tcvs.cc.o.d"
  "tcvs"
  "tcvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
