# Empty dependencies file for tcvs.
# This may be replaced when dependencies are built.
