file(REMOVE_RECURSE
  "CMakeFiles/tcvs_fsck.dir/tcvs_fsck.cc.o"
  "CMakeFiles/tcvs_fsck.dir/tcvs_fsck.cc.o.d"
  "tcvs_fsck"
  "tcvs_fsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcvs_fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
