# Empty compiler generated dependencies file for tcvs_fsck.
# This may be replaced when dependencies are built.
