file(REMOVE_RECURSE
  "CMakeFiles/cvs_test.dir/cvs_test.cc.o"
  "CMakeFiles/cvs_test.dir/cvs_test.cc.o.d"
  "cvs_test"
  "cvs_test.pdb"
  "cvs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
