# Empty dependencies file for cvs_test.
# This may be replaced when dependencies are built.
