file(REMOVE_RECURSE
  "CMakeFiles/impossibility_test.dir/impossibility_test.cc.o"
  "CMakeFiles/impossibility_test.dir/impossibility_test.cc.o.d"
  "impossibility_test"
  "impossibility_test.pdb"
  "impossibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impossibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
