file(REMOVE_RECURSE
  "CMakeFiles/soundness_sweep_test.dir/soundness_sweep_test.cc.o"
  "CMakeFiles/soundness_sweep_test.dir/soundness_sweep_test.cc.o.d"
  "soundness_sweep_test"
  "soundness_sweep_test.pdb"
  "soundness_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soundness_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
