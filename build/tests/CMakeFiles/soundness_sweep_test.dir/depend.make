# Empty dependencies file for soundness_sweep_test.
# This may be replaced when dependencies are built.
