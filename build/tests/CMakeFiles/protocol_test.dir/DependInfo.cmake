
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocol_test.cc" "tests/CMakeFiles/protocol_test.dir/protocol_test.cc.o" "gcc" "tests/CMakeFiles/protocol_test.dir/protocol_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tcvs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mtree/CMakeFiles/tcvs_mtree.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tcvs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tcvs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
