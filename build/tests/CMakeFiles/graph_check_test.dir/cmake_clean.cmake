file(REMOVE_RECURSE
  "CMakeFiles/graph_check_test.dir/graph_check_test.cc.o"
  "CMakeFiles/graph_check_test.dir/graph_check_test.cc.o.d"
  "graph_check_test"
  "graph_check_test.pdb"
  "graph_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
