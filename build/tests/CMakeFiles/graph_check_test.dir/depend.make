# Empty dependencies file for graph_check_test.
# This may be replaced when dependencies are built.
