file(REMOVE_RECURSE
  "CMakeFiles/translog_test.dir/translog_test.cc.o"
  "CMakeFiles/translog_test.dir/translog_test.cc.o.d"
  "translog_test"
  "translog_test.pdb"
  "translog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
