# Empty dependencies file for translog_test.
# This may be replaced when dependencies are built.
