# Empty compiler generated dependencies file for trusted_test.
# This may be replaced when dependencies are built.
