file(REMOVE_RECURSE
  "CMakeFiles/trusted_test.dir/trusted_test.cc.o"
  "CMakeFiles/trusted_test.dir/trusted_test.cc.o.d"
  "trusted_test"
  "trusted_test.pdb"
  "trusted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trusted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
