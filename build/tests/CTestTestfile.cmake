# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/mtree_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cvs_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/trusted_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/graph_check_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/impossibility_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/translog_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
