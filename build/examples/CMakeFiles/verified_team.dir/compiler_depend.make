# Empty compiler generated dependencies file for verified_team.
# This may be replaced when dependencies are built.
