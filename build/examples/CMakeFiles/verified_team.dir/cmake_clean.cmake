file(REMOVE_RECURSE
  "CMakeFiles/verified_team.dir/verified_team.cpp.o"
  "CMakeFiles/verified_team.dir/verified_team.cpp.o.d"
  "verified_team"
  "verified_team.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_team.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
