# Empty compiler generated dependencies file for partition_attack.
# This may be replaced when dependencies are built.
