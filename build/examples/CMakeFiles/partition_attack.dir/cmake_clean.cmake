file(REMOVE_RECURSE
  "CMakeFiles/partition_attack.dir/partition_attack.cpp.o"
  "CMakeFiles/partition_attack.dir/partition_attack.cpp.o.d"
  "partition_attack"
  "partition_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
