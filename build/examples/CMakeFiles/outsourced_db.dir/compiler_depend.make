# Empty compiler generated dependencies file for outsourced_db.
# This may be replaced when dependencies are built.
