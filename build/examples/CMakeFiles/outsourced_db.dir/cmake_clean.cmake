file(REMOVE_RECURSE
  "CMakeFiles/outsourced_db.dir/outsourced_db.cpp.o"
  "CMakeFiles/outsourced_db.dir/outsourced_db.cpp.o.d"
  "outsourced_db"
  "outsourced_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outsourced_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
