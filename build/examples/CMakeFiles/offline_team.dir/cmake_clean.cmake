file(REMOVE_RECURSE
  "CMakeFiles/offline_team.dir/offline_team.cpp.o"
  "CMakeFiles/offline_team.dir/offline_team.cpp.o.d"
  "offline_team"
  "offline_team.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_team.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
