# Empty dependencies file for offline_team.
# This may be replaced when dependencies are built.
