file(REMOVE_RECURSE
  "CMakeFiles/replay_attack.dir/replay_attack.cpp.o"
  "CMakeFiles/replay_attack.dir/replay_attack.cpp.o.d"
  "replay_attack"
  "replay_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
