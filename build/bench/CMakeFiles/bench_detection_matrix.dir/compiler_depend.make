# Empty compiler generated dependencies file for bench_detection_matrix.
# This may be replaced when dependencies are built.
