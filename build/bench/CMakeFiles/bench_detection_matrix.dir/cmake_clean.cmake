file(REMOVE_RECURSE
  "CMakeFiles/bench_detection_matrix.dir/bench_detection_matrix.cc.o"
  "CMakeFiles/bench_detection_matrix.dir/bench_detection_matrix.cc.o.d"
  "bench_detection_matrix"
  "bench_detection_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
