file(REMOVE_RECURSE
  "CMakeFiles/bench_replay_attack.dir/bench_replay_attack.cc.o"
  "CMakeFiles/bench_replay_attack.dir/bench_replay_attack.cc.o.d"
  "bench_replay_attack"
  "bench_replay_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replay_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
