# Empty compiler generated dependencies file for bench_replay_attack.
# This may be replaced when dependencies are built.
