# Empty compiler generated dependencies file for bench_merkle_tree.
# This may be replaced when dependencies are built.
