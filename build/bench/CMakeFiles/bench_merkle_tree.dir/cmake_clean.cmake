file(REMOVE_RECURSE
  "CMakeFiles/bench_merkle_tree.dir/bench_merkle_tree.cc.o"
  "CMakeFiles/bench_merkle_tree.dir/bench_merkle_tree.cc.o.d"
  "bench_merkle_tree"
  "bench_merkle_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merkle_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
