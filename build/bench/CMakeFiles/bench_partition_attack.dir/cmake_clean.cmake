file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_attack.dir/bench_partition_attack.cc.o"
  "CMakeFiles/bench_partition_attack.dir/bench_partition_attack.cc.o.d"
  "bench_partition_attack"
  "bench_partition_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
