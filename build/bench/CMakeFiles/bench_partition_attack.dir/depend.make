# Empty dependencies file for bench_partition_attack.
# This may be replaced when dependencies are built.
