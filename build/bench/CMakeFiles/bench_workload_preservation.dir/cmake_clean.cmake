file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_preservation.dir/bench_workload_preservation.cc.o"
  "CMakeFiles/bench_workload_preservation.dir/bench_workload_preservation.cc.o.d"
  "bench_workload_preservation"
  "bench_workload_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
