# Empty compiler generated dependencies file for bench_workload_preservation.
# This may be replaced when dependencies are built.
