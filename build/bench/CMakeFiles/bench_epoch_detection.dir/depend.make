# Empty dependencies file for bench_epoch_detection.
# This may be replaced when dependencies are built.
