file(REMOVE_RECURSE
  "CMakeFiles/bench_epoch_detection.dir/bench_epoch_detection.cc.o"
  "CMakeFiles/bench_epoch_detection.dir/bench_epoch_detection.cc.o.d"
  "bench_epoch_detection"
  "bench_epoch_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epoch_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
