// Experiment F1 (paper Figure 1 + Theorem 3.1): the partition attack.
//
// Sweep the sync period k and measure, for each protocol, whether the fork
// is detected and how many operations the server executed between engaging
// the attack and detection. The paper's claims to reproduce:
//
//   * with no external communication, no k-bounded detection is possible
//     for any k (the NoExternalComm rows never detect, at any horizon);
//   * Protocols I and II detect within the k-bounded window: the sync fires
//     once the first user completes k operations since the last sync, so
//     the post-attack operation count is O(n·k).

#include <cstdio>

#include "bench/json_out.h"
#include "bench/table.h"
#include "core/scenario.h"
#include "workload/workload.h"

using namespace tcvs;
using namespace tcvs::core;
using tcvs::bench::Num;
using tcvs::bench::Table;
using tcvs::bench::YesNo;

namespace {

ScenarioReport RunFork(ProtocolKind protocol, uint32_t k) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.num_users = 4;
  config.sync_k = k;
  config.user_key_height = 9;
  config.attack.kind = AttackKind::kFork;
  config.attack.trigger_round = 60;
  config.attack.partition_a = {3, 4};

  workload::PartitionableOptions opts;
  opts.users_in_a = 2;
  opts.users_in_b = 2;
  opts.prefix_ops_per_user = 3;
  opts.partition_round = 80;
  opts.b_ops_after_dependency = 4 * k + 8;  // Enough activity past the fork.
  Scenario scenario(config, workload::MakePartitionableWorkload(opts));
  return scenario.Run(40000);
}

}  // namespace

int main() {
  bench::JsonOut json("bench_partition_attack");
  std::printf("F1: partition attack — detection delay vs sync period k\n");
  std::printf("(4 users; fork at round 60; group B = users 3,4 forked off)\n\n");

  Table table({"protocol", "k", "ground-truth", "detected", "delay (ops)",
               "delay (rounds)", "rollback (ops)", "n*k bound"});
  for (uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
    for (ProtocolKind p :
         {ProtocolKind::kNoExternalComm, ProtocolKind::kProtocolI,
          ProtocolKind::kProtocolII}) {
      ScenarioReport r = RunFork(p, k);
      table.AddRow({std::string(ProtocolKindToString(p)), Num(uint64_t(k)),
                    YesNo(r.ground_truth_deviation), YesNo(r.detected),
                    r.detected ? Num(r.detection_delay_ops) : "-",
                    r.detected ? Num(r.detection_delay_rounds) : "-",
                    r.detected ? Num(r.rollback_ops) : "-",
                    Num(uint64_t(4 * k))});
    }
  }
  table.Print();
  json.Add("detection delay vs sync period k", table);

  std::printf(
      "Expected shape: NoExternalComm never detects (Theorem 3.1); Protocols\n"
      "I/II always detect, with delay growing linearly in k and bounded by\n"
      "the n*k column (k ops per user; n users).\n");
  return 0;
}
