// Experiment E11 (hot-path throughput): WAL group commit.
//
// End-to-end verified commits against a DurableServer with fsync ON, swept
// over client threads × group-commit window. With window 0 every commit
// pays its own fdatasync (the pre-group-commit behaviour); with a window,
// the flush leader covers whole batches and throughput scales with the
// batch factor. All commits still verify (full Protocol II chain walk) and
// the counters prove how many device syncs the batch actually cost.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_out.h"
#include "bench/table.h"
#include "cvs/trusted.h"
#include "storage/durable.h"
#include "util/metrics.h"

using namespace tcvs;
using tcvs::bench::Num;
using tcvs::bench::Table;

namespace {

uint64_t CounterValue(const std::string& name) {
  auto snap = util::MetricsRegistry::Instance().Snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

struct Row {
  int threads;
  uint32_t window_us;
  uint64_t commits;
  double wall_ms;
  double ops_per_sec;
  uint64_t fsyncs;
  uint64_t appends;
  double batch_factor;
};

Row RunOne(const std::filesystem::path& root, int threads, uint32_t window_us,
           int commits_each, uint32_t sync_delay_us) {
  std::filesystem::path dir =
      root / ("t" + std::to_string(threads) + "w" + std::to_string(window_us) +
              "d" + std::to_string(sync_delay_us));
  std::filesystem::create_directories(dir);

  storage::DurableOptions options;
  options.fsync = true;
  options.group_commit_window_us = window_us;
  options.emulated_sync_delay_us = sync_delay_us;
  auto server = storage::DurableServer::Open(dir.string(), mtree::TreeParams{},
                                             options);
  if (!server.ok()) {
    std::fprintf(stderr, "bench_wal_commit: open failed: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }

  const uint64_t fsyncs_before = CounterValue("storage.wal.fsyncs_total");
  const uint64_t appends_before = CounterValue("storage.wal.appends_total");

  std::atomic<int> failures{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      cvs::VerifyingClient client(static_cast<uint32_t>(t + 1),
                                  server->get());
      const std::string path = "bench/f" + std::to_string(t);
      for (int i = 0; i < commits_each; ++i) {
        auto rev = client.Commit(path, "payload " + std::to_string(i),
                                 static_cast<uint64_t>(i));
        if (!rev.ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  auto end = std::chrono::steady_clock::now();
  if (failures.load() != 0) {
    std::fprintf(stderr, "bench_wal_commit: %d commit failures\n",
                 failures.load());
    std::exit(1);
  }

  const uint64_t commits = uint64_t(threads) * commits_each;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  const uint64_t fsyncs = CounterValue("storage.wal.fsyncs_total") -
                          fsyncs_before;
  const uint64_t appends = CounterValue("storage.wal.appends_total") -
                           appends_before;
  return Row{threads,
             window_us,
             commits,
             wall_ms,
             commits / (wall_ms / 1000.0),
             fsyncs,
             appends,
             fsyncs == 0 ? 0.0 : double(appends) / fsyncs};
}

}  // namespace

int main() {
  bench::JsonOut json("bench_wal_commit");
  std::error_code ec;
  std::filesystem::path root =
      std::filesystem::temp_directory_path() / "tcvs_bench_wal_commit";
  std::filesystem::remove_all(root, ec);
  std::filesystem::create_directories(root);

  const int kCommitsEach = 24;
  std::printf("E11: WAL group-commit throughput (fsync on, verified "
              "Protocol II commits)\n\n");
  std::printf("-- real device (this host's fdatasync) --\n");
  Table table({"threads", "window_us", "commits", "wall_ms", "ops/sec",
               "fsyncs", "appends", "batch_factor"});
  for (int threads : {1, 2, 4, 8}) {
    for (uint32_t window_us : {0u, 2000u}) {
      Row r = RunOne(root, threads, window_us, kCommitsEach, 0);
      table.AddRow({Num(uint64_t(r.threads)), Num(uint64_t(r.window_us)),
                    Num(r.commits), Num(r.wall_ms), Num(r.ops_per_sec),
                    Num(r.fsyncs), Num(r.appends), Num(r.batch_factor)});
    }
  }
  table.Print();
  // Console only, NOT in the JSON: this host's real fdatasync latency is
  // whatever the hypervisor write cache feels like (observed varying 10x
  // run to run), so it would make the baseline comparison pure noise. The
  // emulated table below is sleep-dominated and reproducible — that is the
  // regression gate.

  // Hypervisor write caches often ack fdatasync in ~100µs, hiding the very
  // cost the batching amortizes; this table restores a SATA-class 2ms sync.
  std::printf("\n-- emulated 2ms device sync --\n");
  Table slow({"threads", "window_us", "commits", "wall_ms", "ops/sec",
              "fsyncs", "appends", "batch_factor"});
  for (int threads : {1, 4, 8}) {
    for (uint32_t window_us : {0u, 2000u}) {
      Row r = RunOne(root, threads, window_us, kCommitsEach, 2000);
      slow.AddRow({Num(uint64_t(r.threads)), Num(uint64_t(r.window_us)),
                   Num(r.commits), Num(r.wall_ms), Num(r.ops_per_sec),
                   Num(r.fsyncs), Num(r.appends), Num(r.batch_factor)});
    }
  }
  slow.Print();
  json.Add("wal group commit throughput (emulated 2ms sync)", slow);
  std::filesystem::remove_all(root, ec);

  std::printf(
      "\nExpected shape: window 0 = one fdatasync per commit (the pre-group-\n"
      "commit cost). With the window enabled and concurrent clients, one\n"
      "leader fsync covers the whole batch: fsyncs << appends and ops/sec\n"
      "scales with the batch factor. Single-threaded rows pay no window\n"
      "(the leader skips it with nothing in flight). The amortization is\n"
      "most visible on the emulated slow device, where the sync dominates.\n");
  return 0;
}
