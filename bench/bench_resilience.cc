// Resilience-layer microbenchmarks: the cost of a fault point in production
// (nothing armed — one relaxed atomic load), the armed-elsewhere slow path,
// backoff computation, and a framed RPC round trip over loopback with the
// hardened (poll-based, deadline-aware) socket path.

#include <benchmark/benchmark.h>

#include "bench/benchmark_json_main.h"

#include <thread>

#include "net/socket.h"
#include "rpc/retry.h"
#include "util/fault.h"
#include "util/random.h"

namespace tcvs {
namespace {

// The fast path every production frame send/WAL append pays.
void BM_FaultPointUnarmed(benchmark::State& state) {
  auto& faults = util::FaultInjector::Instance();
  faults.Reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(faults.ShouldFail("bench.unarmed.point"));
  }
}
BENCHMARK(BM_FaultPointUnarmed);

// Some OTHER point is armed: every hit takes the lock and misses the map.
void BM_FaultPointArmedElsewhere(benchmark::State& state) {
  auto& faults = util::FaultInjector::Instance();
  faults.Reset();
  faults.Arm("bench.other.point", util::FaultSpec::Always());
  for (auto _ : state) {
    benchmark::DoNotOptimize(faults.ShouldFail("bench.unarmed.point"));
  }
  faults.Reset();
}
BENCHMARK(BM_FaultPointArmedElsewhere);

void BM_RetryBackoff(benchmark::State& state) {
  rpc::RetryPolicy policy;
  util::Rng rng(7);
  int retry = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.BackoffMs(retry, &rng));
    retry = (retry + 1) % 8;
  }
}
BENCHMARK(BM_RetryBackoff);

// One request/reply frame pair over loopback, as the RPC layer drives it.
void BM_LoopbackFrameRoundTrip(benchmark::State& state) {
  util::FaultInjector::Instance().Reset();
  auto listener = net::TcpListener::Bind(0);
  if (!listener.ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  std::thread echo([&listener] {
    auto conn = listener->Accept();
    if (!conn.ok()) return;
    for (;;) {
      auto frame = conn->ReceiveFrame();
      if (!frame.ok()) return;  // Peer closed: benchmark over.
      if (!conn->SendFrame(*frame).ok()) return;
    }
  });
  auto conn = net::TcpConnection::Connect("127.0.0.1", listener->port(), 2000);
  if (!conn.ok()) {
    state.SkipWithError("connect failed");
    echo.join();
    return;
  }
  conn->set_io_timeout_ms(5000);
  util::Rng rng(3);
  Bytes payload = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    if (!conn->SendFrame(payload).ok()) {
      state.SkipWithError("send failed");
      break;
    }
    auto back = conn->ReceiveFrame();
    if (!back.ok()) {
      state.SkipWithError("receive failed");
      break;
    }
    benchmark::DoNotOptimize(back->size());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0) * 2);
  conn->Close();
  echo.join();
}
BENCHMARK(BM_LoopbackFrameRoundTrip)->Arg(64)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace tcvs

TCVS_BENCHMARK_JSON_MAIN("bench_resilience");
