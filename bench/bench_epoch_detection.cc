// Experiment F4 (paper Figure 4 + Theorem 4.3): Protocol III epochs.
//
// Sweep the epoch length t and measure the delay between the server's fork
// engaging and the rotating audit detecting it. Reproduced claim: detection
// within two epochs (the state deposited during e+1, audited in e+2), i.e.
// delay <= 2t plus the audit round trip — a TIME bound, with zero external
// communication and no requirement that users be online simultaneously.

#include <cstdio>

#include "bench/json_out.h"
#include "bench/table.h"
#include "core/scenario.h"
#include "workload/workload.h"

using namespace tcvs;
using namespace tcvs::core;
using tcvs::bench::Num;
using tcvs::bench::Table;
using tcvs::bench::YesNo;

namespace {

ScenarioReport RunEpochFork(sim::Round epoch_rounds, sim::Round trigger) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolIII;
  config.num_users = 4;
  config.epoch_rounds = epoch_rounds;
  config.user_key_height = 8;
  config.attack.kind = AttackKind::kFork;
  config.attack.trigger_round = trigger;
  config.attack.partition_a = {3, 4};

  workload::EpochWorkloadOptions opts;
  opts.num_users = 4;
  opts.num_epochs = 14;
  opts.epoch_rounds = epoch_rounds;
  opts.ops_per_epoch = 2;
  Scenario scenario(config, workload::MakeEpochWorkload(opts));
  return scenario.Run(14 * epoch_rounds + 400);
}

}  // namespace

int main() {
  bench::JsonOut json("bench_epoch_detection");
  std::printf("F4: Protocol III — detection delay vs epoch length t\n");
  std::printf("(4 users, 2 ops per user per epoch, fork mid-epoch 3,\n");
  std::printf(" external messages must stay 0: no broadcast channel)\n\n");

  Table table({"epoch t (rounds)", "fork round", "detected", "delay (rounds)",
               "delay (epochs)", "2-epoch bound ok", "external msgs"});
  for (sim::Round t : {20u, 40u, 80u, 160u, 320u}) {
    sim::Round trigger = 3 * t + t / 2;
    ScenarioReport r = RunEpochFork(t, trigger);
    double delay_epochs =
        r.detected ? double(r.detection_delay_rounds) / double(t) : -1;
    // Theorem 4.3: within two epochs of the *end* of the faulty epoch; from
    // a mid-epoch fault that is ≤ 2.5 epochs, plus the audit round trip.
    bool within = r.detected && r.detection_delay_rounds <= 2 * t + t / 2 + 10;
    table.AddRow({Num(uint64_t(t)), Num(uint64_t(trigger)), YesNo(r.detected),
                  r.detected ? Num(r.detection_delay_rounds) : "-",
                  r.detected ? Num(delay_epochs) : "-", YesNo(within),
                  Num(r.traffic.external_messages)});
  }
  table.Print();
  json.Add("detection delay vs epoch length t", table);

  std::printf(
      "Expected shape: delay grows linearly with t and stays within the\n"
      "2-epoch audit pipeline; the external-message column is all zero.\n");
  return 0;
}
