// Profiling-plane overhead at 100 Hz, measured two ways (contention
// accounting on in both phases of both — it is always-on in production):
//
//  1. Serving throughput: verified commits bare vs profiled. This load is
//     round-trip latency-bound, so it checks the profiler does not perturb
//     the serve loop's blocking waits (SA_RESTART, no syscall storms).
//  2. CPU-bound hashing: SHA-256 MB/s bare vs profiled. ITIMER_PROF fires
//     per unit of CPU burned, so THIS phase pays the full sampling tax —
//     each delivery is one backtrace() into a preallocated ring (~1-2 us,
//     ~0.02% of CPU at 100 Hz plus signal-delivery noise).
//
// The <= 3% budget applies to both deltas. The committed baseline
// documents the measured values; bench_compare.py gates the ops/sec and
// MB/s columns, and check.sh's prof stage asserts the delta columns.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_out.h"
#include "bench/table.h"
#include "crypto/sha256.h"
#include "cvs/trusted.h"
#include "net/socket.h"
#include "rpc/remote.h"
#include "util/profiler.h"

using namespace tcvs;
using tcvs::bench::Num;
using tcvs::bench::Table;

namespace {

constexpr int kClients = 4;
constexpr int kWarmupEach = 50;
constexpr int kCommitsEach = 250;
constexpr int kProfileHz = 100;

struct Phase {
  double wall_ms = 0;
  uint64_t commits = 0;
  uint64_t samples = 0;
  double ops_per_sec() const { return commits / (wall_ms / 1000.0); }
};

/// Runs `commits_each` verified commits per client against the served
/// repository; revisions continue from `base_rev` so the tree size stays
/// constant across phases (same paths, bumped revisions).
Phase RunPhase(uint16_t rpc_port, int commits_each, uint64_t base_rev) {
  std::atomic<int> failures{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    workers.emplace_back([&, t] {
      auto remote = rpc::RemoteServer::Connect("127.0.0.1", rpc_port);
      if (!remote.ok()) {
        ++failures;
        return;
      }
      cvs::VerifyingClient client(static_cast<uint32_t>(t + 1),
                                  remote->get());
      const std::string path = "bench/f" + std::to_string(t);
      for (int i = 0; i < commits_each; ++i) {
        auto rev = client.Commit(path, "payload " + std::to_string(i),
                                 base_rev + static_cast<uint64_t>(i));
        if (!rev.ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  auto end = std::chrono::steady_clock::now();
  if (failures.load() != 0) {
    std::fprintf(stderr, "bench_profiler_overhead: %d failures\n",
                 failures.load());
    std::exit(1);
  }

  Phase p;
  p.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  p.commits = uint64_t(kClients) * commits_each;
  return p;
}

struct HashPhase {
  double wall_ms = 0;
  uint64_t bytes = 0;
  uint64_t samples = 0;
  double mb_per_sec() const {
    return (bytes / (1024.0 * 1024.0)) / (wall_ms / 1000.0);
  }
};

/// Hashes `iters` × 64 KiB on `threads` threads: the CPU-saturating phase
/// where ITIMER_PROF actually fires at its full rate.
HashPhase RunHashPhase(int threads, int iters) {
  const Bytes buf(64 * 1024, 0xa7);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      crypto::Digest d{};
      for (int i = 0; i < iters; ++i) {
        d = crypto::Sha256::Hash(buf);
      }
      // Fold the digest into a volatile sink so the loop cannot be elided.
      volatile uint8_t sink = d[0];
      (void)sink;
    });
  }
  for (auto& w : workers) w.join();
  auto end = std::chrono::steady_clock::now();
  HashPhase p;
  p.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  p.bytes = uint64_t(threads) * iters * buf.size();
  return p;
}

}  // namespace

int main() {
  bench::JsonOut json("bench_profiler_overhead");

  cvs::UntrustedServer repo;
  auto listener = net::TcpListener::Bind(0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bench_profiler_overhead: bind: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  const uint16_t rpc_port = listener->port();
  Status serve_status = Status::OK();
  std::thread serve_thread(
      [l = std::move(listener).ValueOrDie(), &repo, &serve_status]() mutable {
        rpc::ServeOptions options;
        options.num_threads = kClients;
        serve_status = rpc::Serve(&l, &repo, options);
      });

  std::printf("profiling-plane overhead (verified commits, %d clients, "
              "%d Hz sampling)\n\n", kClients, kProfileHz);
  RunPhase(rpc_port, kWarmupEach, 0);  // Warmup: build the tree, warm caches.
  Phase bare = RunPhase(rpc_port, kCommitsEach, kWarmupEach);

  if (Status st = util::StartCpuProfiler(kProfileHz); !st.ok()) {
    std::fprintf(stderr, "bench_profiler_overhead: profiler: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  Phase profiled = RunPhase(rpc_port, kCommitsEach,
                            kWarmupEach + kCommitsEach);
  auto profile = util::StopCpuProfiler();
  if (!profile.ok()) {
    std::fprintf(stderr, "bench_profiler_overhead: stop: %s\n",
                 profile.status().ToString().c_str());
    return 1;
  }
  profiled.samples = profile->samples;

  const double delta_pct =
      100.0 * (bare.ops_per_sec() - profiled.ops_per_sec()) /
      bare.ops_per_sec();

  Table table({"phase", "commits", "wall_ms", "ops/sec", "samples",
               "delta_pct"});
  table.AddRow({"unprofiled", Num(bare.commits), Num(bare.wall_ms),
                Num(bare.ops_per_sec()), Num(uint64_t(0)), Num(0.0)});
  table.AddRow({"profiled_100hz", Num(profiled.commits),
                Num(profiled.wall_ms), Num(profiled.ops_per_sec()),
                Num(profiled.samples), Num(delta_pct)});
  table.Print();
  json.Add("profiler overhead (serving)", table);

  // Phase 2: CPU-bound hashing, where the sampling tax is actually paid.
  constexpr int kHashThreads = 2;
  constexpr int kHashIters = 4000;  // × 64 KiB each = 250 MiB per thread.
  RunHashPhase(kHashThreads, kHashIters / 4);  // Warmup.
  HashPhase hash_bare = RunHashPhase(kHashThreads, kHashIters);
  if (Status st = util::StartCpuProfiler(kProfileHz); !st.ok()) {
    std::fprintf(stderr, "bench_profiler_overhead: profiler: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  HashPhase hash_profiled = RunHashPhase(kHashThreads, kHashIters);
  auto hash_profile = util::StopCpuProfiler();
  if (!hash_profile.ok()) {
    std::fprintf(stderr, "bench_profiler_overhead: stop: %s\n",
                 hash_profile.status().ToString().c_str());
    return 1;
  }
  hash_profiled.samples = hash_profile->samples;
  const double hash_delta_pct =
      100.0 * (hash_bare.mb_per_sec() - hash_profiled.mb_per_sec()) /
      hash_bare.mb_per_sec();

  std::printf("\n");
  Table hash_table({"phase", "mib_hashed", "wall_ms", "mb/sec", "samples",
                    "delta_pct"});
  hash_table.AddRow({"unprofiled", Num(hash_bare.bytes >> 20),
                     Num(hash_bare.wall_ms), Num(hash_bare.mb_per_sec()),
                     Num(uint64_t(0)), Num(0.0)});
  hash_table.AddRow({"profiled_100hz", Num(hash_profiled.bytes >> 20),
                     Num(hash_profiled.wall_ms),
                     Num(hash_profiled.mb_per_sec()),
                     Num(hash_profiled.samples), Num(hash_delta_pct)});
  hash_table.Print();
  json.Add("profiler overhead (cpu-bound sha256)", hash_table);

  auto remote = rpc::RemoteServer::Connect("127.0.0.1", rpc_port);
  if (remote.ok()) (void)(*remote)->Shutdown();
  serve_thread.join();
  if (!serve_status.ok()) {
    std::fprintf(stderr, "bench_profiler_overhead: serve: %s\n",
                 serve_status.ToString().c_str());
    return 1;
  }
  return 0;
}
