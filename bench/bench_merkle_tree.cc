// Experiment F2 (paper Figure 2): Merkle-tree verification objects.
//
// The paper's Figure 2 illustrates the root-to-leaf digest path and the
// claim that a single update needs only O(log n) digests. This bench
// measures exactly that: VO size (bytes) and client verification / replay
// time as the database size n grows, plus the fanout ablation from
// DESIGN.md §5.

#include <benchmark/benchmark.h>

#include "bench/benchmark_json_main.h"

#include <map>

#include "mtree/btree.h"
#include "mtree/client.h"
#include "util/random.h"

namespace {

using namespace tcvs;

Bytes NumKey(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%010llu", static_cast<unsigned long long>(i));
  return util::ToBytes(buf);
}

// Trees are expensive to build; cache one per (n, fanout).
const mtree::MerkleBTree& TreeOf(size_t n, size_t fanout) {
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<mtree::MerkleBTree>>
      cache;
  auto key = std::make_pair(n, fanout);
  auto it = cache.find(key);
  if (it == cache.end()) {
    mtree::TreeParams params{fanout, fanout};
    auto tree = std::make_unique<mtree::MerkleBTree>(params);
    util::Rng rng(n * 31 + fanout);
    for (size_t i = 0; i < n; ++i) {
      tree->Upsert(NumKey(i), rng.RandomBytes(64));
    }
    it = cache.emplace(key, std::move(tree)).first;
  }
  return *it->second;
}

void BM_ServerUpsert(benchmark::State& state) {
  const size_t n = state.range(0);
  mtree::MerkleBTree tree = TreeOf(n, 8).Clone();
  util::Rng rng(7);
  for (auto _ : state) {
    uint64_t k = rng.Uniform(n);
    benchmark::DoNotOptimize(tree.Upsert(NumKey(k), rng.RandomBytes(64)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerUpsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ProvePoint(benchmark::State& state) {
  const size_t n = state.range(0);
  const mtree::MerkleBTree& tree = TreeOf(n, 8);
  util::Rng rng(11);
  size_t vo_bytes = 0;
  size_t samples = 0;
  for (auto _ : state) {
    mtree::PointVO vo = tree.ProvePoint(NumKey(rng.Uniform(n)));
    Bytes wire = vo.Serialize();
    benchmark::DoNotOptimize(wire);
    vo_bytes += wire.size();
    ++samples;
  }
  state.counters["vo_bytes"] =
      benchmark::Counter(double(vo_bytes) / samples);
  state.counters["tree_height"] = double(tree.height());
}
BENCHMARK(BM_ProvePoint)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ClientVerifyRead(benchmark::State& state) {
  const size_t n = state.range(0);
  const mtree::MerkleBTree& tree = TreeOf(n, 8);
  mtree::PointVO vo = tree.ProvePoint(NumKey(n / 2));
  mtree::TreeClient client(tree.root_digest(), tree.params());
  for (auto _ : state) {
    auto r = client.Read(NumKey(n / 2), vo);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClientVerifyRead)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

// Warm-VO-cache variant: the same proof re-verified with a VoCache attached
// (a prime read fills it). The hit path is one content-addressed key hash
// instead of the full subtree recomputation; the trusted-root comparison
// still runs, so a stale or forged hit would be rejected just like a miss.
void BM_ClientVerifyRead_Cache(benchmark::State& state) {
  const size_t n = state.range(0);
  const bool warm = state.range(1) == 1;
  const mtree::MerkleBTree& tree = TreeOf(n, 8);
  mtree::PointVO vo = tree.ProvePoint(NumKey(n / 2));
  mtree::TreeClient client(tree.root_digest(), tree.params());
  mtree::VoCache cache;
  if (warm) {
    client.AttachVoCache(&cache);
    benchmark::DoNotOptimize(client.Read(NumKey(n / 2), vo));  // Prime.
  }
  for (auto _ : state) {
    auto r = client.Read(NumKey(n / 2), vo);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(warm ? "warm_cache" : "no_cache");
}
BENCHMARK(BM_ClientVerifyRead_Cache)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

void BM_ClientReplayUpsert(benchmark::State& state) {
  const size_t n = state.range(0);
  const mtree::MerkleBTree& tree = TreeOf(n, 8);
  mtree::PointVO vo = tree.ProvePoint(NumKey(n / 2));
  Bytes value(64, 0xAB);
  for (auto _ : state) {
    auto r = mtree::VerifyAndApplyUpsert(tree.root_digest(), tree.params(),
                                         NumKey(n / 2), value, vo);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClientReplayUpsert)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

// Fanout ablation (DESIGN.md §5): larger fanout = shallower tree but wider
// per-node proofs.
void BM_VerifyRead_Fanout(benchmark::State& state) {
  const size_t fanout = state.range(0);
  const size_t n = 16384;
  const mtree::MerkleBTree& tree = TreeOf(n, fanout);
  mtree::PointVO vo = tree.ProvePoint(NumKey(n / 2));
  mtree::TreeClient client(tree.root_digest(), tree.params());
  for (auto _ : state) {
    auto r = client.Read(NumKey(n / 2), vo);
    benchmark::DoNotOptimize(r);
  }
  state.counters["vo_bytes"] = double(vo.Serialize().size());
  state.counters["tree_height"] = double(tree.height());
}
BENCHMARK(BM_VerifyRead_Fanout)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_RangeProveAndVerify(benchmark::State& state) {
  const size_t span = state.range(0);
  const size_t n = 100000;
  const mtree::MerkleBTree& tree = TreeOf(n, 8);
  mtree::TreeClient client(tree.root_digest(), tree.params());
  size_t vo_bytes = 0, samples = 0;
  for (auto _ : state) {
    mtree::RangeVO vo = tree.ProveRange(NumKey(1000), NumKey(1000 + span - 1));
    auto rows = client.ReadRange(NumKey(1000), NumKey(1000 + span - 1), vo);
    benchmark::DoNotOptimize(rows);
    vo_bytes += vo.Serialize().size();
    ++samples;
  }
  state.counters["vo_bytes"] = benchmark::Counter(double(vo_bytes) / samples);
  state.SetItemsProcessed(state.iterations() * span);
}
BENCHMARK(BM_RangeProveAndVerify)->Arg(10)->Arg(100)->Arg(1000);

void BM_BulkLoadVsIncremental(benchmark::State& state) {
  const size_t n = state.range(0);
  const bool bulk = state.range(1) == 1;
  std::vector<std::pair<Bytes, Bytes>> items;
  util::Rng rng(n);
  for (size_t i = 0; i < n; ++i) items.emplace_back(NumKey(i), rng.RandomBytes(32));
  for (auto _ : state) {
    if (bulk) {
      auto tree = mtree::MerkleBTree::BulkLoad(items);
      benchmark::DoNotOptimize(tree->root_digest());
    } else {
      mtree::MerkleBTree tree;
      for (const auto& [k, v] : items) tree.Upsert(k, v);
      benchmark::DoNotOptimize(tree.root_digest());
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(bulk ? "bulk" : "incremental");
}
BENCHMARK(BM_BulkLoadVsIncremental)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

TCVS_BENCHMARK_JSON_MAIN("bench_merkle_tree");
