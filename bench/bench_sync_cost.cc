// Experiment E7 (paper §4.2 sync-up, future-work item 2): synchronization
// cost as the user population grows.
//
// Honest Protocol II runs with a fixed per-user op budget; we count the
// external (user-to-user broadcast) traffic. Each sync-up costs one
// announce plus n reports, each broadcast to n−1 peers: Θ(n²) messages —
// the paper's future-work point that clients do work proportional to the
// number of users.

#include <cstdio>

#include "bench/json_out.h"
#include "bench/table.h"
#include "core/scenario.h"
#include "workload/workload.h"

using namespace tcvs;
using namespace tcvs::core;
using tcvs::bench::Num;
using tcvs::bench::Table;

namespace {

ScenarioReport RunHonest(uint32_t num_users, uint32_t k, uint32_t ops_per_user,
                         SyncMode mode = SyncMode::kBroadcast) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolII;
  config.num_users = num_users;
  config.sync_k = k;
  config.sync_mode = mode;
  workload::CvsWorkloadOptions opts;
  opts.num_users = num_users;
  opts.ops_per_user = ops_per_user;
  opts.num_files = 3 * num_users;
  opts.mean_think_rounds = 2;
  opts.offline_probability = 0.0;
  opts.seed = 17;
  Scenario scenario(config, workload::MakeCvsWorkload(opts));
  return scenario.RunUntilDone(60000);
}

}  // namespace

int main() {
  bench::JsonOut json("bench_sync_cost");
  std::printf("E7: sync-up cost vs population size (Protocol II, honest)\n");
  std::printf("(24 ops per user; k = 8 unless noted)\n\n");

  Table table({"n users", "k", "external msgs", "external bytes",
               "per-sync msgs (n^2-1)", "syncs (measured)"});
  for (uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
    ScenarioReport r = RunHonest(n, 8, 24);
    // One sync-up costs: 1 announce to n−1 peers + n reports to n−1 peers
    // each = (n+1)(n−1) = n²−1 broadcast messages.
    uint64_t per_sync = uint64_t(n) * n - 1;
    table.AddRow({Num(uint64_t(n)), "8", Num(r.traffic.external_messages),
                  Num(r.traffic.external_bytes), Num(per_sync),
                  Num(double(r.traffic.external_messages) / per_sync)});
  }
  table.Print();
  json.Add("sync-up cost vs population size", table);

  Table ktable({"k", "external msgs", "external bytes", "syncs (approx)"});
  for (uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
    ScenarioReport r = RunHonest(8, k, 24);
    ktable.AddRow({Num(uint64_t(k)), Num(r.traffic.external_messages),
                   Num(r.traffic.external_bytes), Num(uint64_t(8 * 24 / k))});
  }
  ktable.Print();
  json.Add("sync traffic vs sync period k", ktable);

  // Future-work extension (paper §6, item 2): aggregation-tree sync brings
  // the per-sync cost from Θ(n²) broadcast messages to Θ(n), with O(1) work
  // per client (XOR of at most two child aggregates).
  std::printf("Aggregation-tree extension (same workloads):\n\n");
  Table mtable({"n users", "broadcast msgs", "tree msgs", "reduction"});
  for (uint32_t n : {4u, 8u, 16u, 32u}) {
    ScenarioReport b = RunHonest(n, 8, 24, SyncMode::kBroadcast);
    ScenarioReport t = RunHonest(n, 8, 24, SyncMode::kAggregationTree);
    double reduction = t.traffic.external_messages == 0
                           ? 0
                           : double(b.traffic.external_messages) /
                                 double(t.traffic.external_messages);
    mtable.AddRow({Num(uint64_t(n)), Num(b.traffic.external_messages),
                   Num(t.traffic.external_messages),
                   Num(reduction) + "x"});
  }
  mtable.Print();
  json.Add("aggregation-tree extension", mtable);

  std::printf(
      "Expected shape: per-sync messages grow ~n^2 (every user broadcasts a\n"
      "report to every other); total sync traffic falls ~1/k as the sync\n"
      "period k grows — the detection-delay/overhead trade-off of F1.\n");
  return 0;
}
