#pragma once

// Machine-readable results for the scenario-driven experiment binaries:
// alongside the stdout tables, each bench writes BENCH_<name>.json so result
// trajectories accumulate across runs.
//
// Schema (schema_version 1, documented in EXPERIMENTS.md):
//   {"bench": "<name>", "schema_version": 1,
//    "tables": [{"title": "...", "headers": ["..."], "rows": [["..."]]}]}
//
// All cells are strings, exactly as printed in the human table — consumers
// parse numbers themselves, so the JSON can never disagree with the stdout
// table it mirrors.
//
// The file lands in $TCVS_BENCH_JSON_DIR when set, else the working
// directory. google-benchmark binaries use bench/benchmark_json_main.h
// instead (the library's native JSON schema).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/table.h"

namespace tcvs {
namespace bench {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Where BENCH_*.json files land: $TCVS_BENCH_JSON_DIR or the working dir.
inline std::string JsonOutputPath(const std::string& bench_name) {
  const char* dir = std::getenv("TCVS_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? dir : ".";
  return path + "/BENCH_" + bench_name + ".json";
}

/// \brief Accumulates the tables a bench produces and writes them as one
/// BENCH_<name>.json when destroyed (or on an explicit Write()). Declare one
/// at the top of main, Add() each table next to its Print().
class JsonOut {
 public:
  explicit JsonOut(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  ~JsonOut() {
    if (!written_) Write();
  }

  JsonOut(const JsonOut&) = delete;
  JsonOut& operator=(const JsonOut&) = delete;

  void Add(const std::string& title, const Table& table) {
    tables_.push_back(Entry{title, table.headers(), table.rows()});
  }

  /// Writes the JSON file; failure is reported on stderr, never fatal (the
  /// stdout table already carries the result).
  void Write() {
    written_ = true;
    std::string out = "{\"bench\":\"" + JsonEscape(bench_name_) +
                      "\",\"schema_version\":1,\"tables\":[";
    for (size_t t = 0; t < tables_.size(); ++t) {
      const Entry& e = tables_[t];
      if (t > 0) out.push_back(',');
      out += "{\"title\":\"" + JsonEscape(e.title) + "\",\"headers\":[";
      for (size_t c = 0; c < e.headers.size(); ++c) {
        if (c > 0) out.push_back(',');
        out += "\"" + JsonEscape(e.headers[c]) + "\"";
      }
      out += "],\"rows\":[";
      for (size_t r = 0; r < e.rows.size(); ++r) {
        if (r > 0) out.push_back(',');
        out.push_back('[');
        for (size_t c = 0; c < e.rows[r].size(); ++c) {
          if (c > 0) out.push_back(',');
          out += "\"" + JsonEscape(e.rows[r][c]) + "\"";
        }
        out.push_back(']');
      }
      out += "]}";
    }
    out += "]}\n";

    const std::string path = JsonOutputPath(bench_name_);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", bench_name_.c_str(),
                   path.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct Entry {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  std::string bench_name_;
  std::vector<Entry> tables_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace tcvs
