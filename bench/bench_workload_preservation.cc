// Experiment E5 (paper §2.2.3): workload preservation.
//
// A user performs `burst` back-to-back commits while everyone else idles.
// Under the token-passing baseline she must wait for all n−1 peers to write
// null records between any two of her own operations, so her worst-case
// latency grows with Θ(n); under Protocols I/II it is independent of n.
// This is exactly why the paper rejects the straightforward extension of
// single-user authenticated publishing and formulates c-workload
// preservation.

#include <cstdio>

#include "bench/json_out.h"
#include "bench/table.h"
#include "core/scenario.h"
#include "workload/workload.h"

using namespace tcvs;
using namespace tcvs::core;
using tcvs::bench::Num;
using tcvs::bench::Table;

namespace {

uint64_t BurstLatency(ProtocolKind protocol, uint32_t num_users,
                      uint32_t burst) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.num_users = num_users;
  config.sync_k = 100000;  // Isolate operation latency from sync pauses.
  config.user_key_height = 6;
  Scenario scenario(config,
                    workload::MakeBurstWorkload(num_users, 0, burst, 4, 9));
  ScenarioReport report = scenario.RunUntilDone(40000);
  if (!report.all_scripts_done) return ~0ull;
  return report.max_latency_rounds;
}

}  // namespace

int main() {
  bench::JsonOut json("bench_workload_preservation");
  std::printf("E5: workload preservation — burst of 8 back-to-back commits\n");
  std::printf("by one user; worst-case latency in rounds vs user count n\n\n");

  const uint32_t kBurst = 8;
  Table table({"n users", "TokenBaseline", "ProtocolI", "ProtocolII"});
  for (uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
    table.AddRow({Num(uint64_t(n)),
                  Num(BurstLatency(ProtocolKind::kTokenBaseline, n, kBurst)),
                  Num(BurstLatency(ProtocolKind::kProtocolI, n, kBurst)),
                  Num(BurstLatency(ProtocolKind::kProtocolII, n, kBurst))});
  }
  table.Print();
  json.Add("burst latency vs user count", table);

  std::printf(
      "Expected shape: the TokenBaseline column grows linearly in n (one\n"
      "full ring rotation per operation: ~n * slot_rounds * burst); the\n"
      "Protocol I/II columns are flat in n. This is the c-workload\n"
      "preservation separation of paper section 2.2.3.\n");
  return 0;
}
