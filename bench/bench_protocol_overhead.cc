// Experiment E6 (paper §4.2 vs §4.3): per-operation protocol overhead.
//
// All users commit concurrently against an honest server. Reproduced
// claims:
//
//   * Protocol I adds one extra (signed) message per operation and blocks
//     the server on it, so under concurrency its completion time and
//     latency degrade ("This additional blocking step affects throughput in
//     systems with frequent updates");
//   * Protocol II has no extra message and no signatures: its cost over the
//     plain unverified server is VO bytes + client hashing only;
//   * message and byte counts quantify c, the verification overhead per
//     ordinary transaction (bounded workload preservation).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench/json_out.h"
#include "bench/table.h"
#include "core/scenario.h"
#include "cvs/trusted.h"
#include "storage/durable.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "workload/workload.h"

using namespace tcvs;
using namespace tcvs::core;
using tcvs::bench::Num;
using tcvs::bench::Table;

namespace {

struct Row {
  uint64_t rounds;
  double avg_latency;
  uint64_t p50;
  uint64_t p99;
  uint64_t messages;
  uint64_t bytes;
  double bytes_per_op;
};

Row RunConcurrent(ProtocolKind protocol, uint32_t num_users, uint32_t ops_each) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.num_users = num_users;
  config.sync_k = 100000;  // Sync cost measured separately in E7.
  config.user_key_height = 6;
  workload::Workload w;
  for (uint32_t u = 1; u <= num_users; ++u) {
    workload::UserScript s;
    s.user = u;
    for (uint32_t i = 0; i < ops_each; ++i) {
      s.ops.push_back({1, sim::OpKind::kCommit,
                       util::ToBytes("f" + std::to_string(u * 100 + i % 10)),
                       util::ToBytes("content " + std::to_string(i))});
    }
    w.push_back(std::move(s));
  }
  Scenario scenario(config, std::move(w));
  ScenarioReport r = scenario.RunUntilDone(40000);
  uint64_t total_ops = uint64_t(num_users) * ops_each;
  // Rounds until the last scripted op completed ≈ rounds_executed only if we
  // stop then; approximate with max latency + 1 (all eligible at round 1).
  return Row{r.max_latency_rounds + 1, r.avg_latency_rounds, r.latency.p50(),
             r.latency.p99(),          r.traffic.messages,
             r.traffic.bytes,          double(r.traffic.bytes) / total_ops};
}

// ---------------------------------------------------------------------------
// E11 companion: end-to-end DURABLE commit throughput with fsync on.
//
// Verified Protocol II commits against a DurableServer whose WAL emulates a
// SATA-class 8ms device sync (hypervisor write caches ack fdatasync in
// ~100µs, hiding the cost group commit exists to amortize). "serial fsync
// (pre group commit)" reproduces the pre-batching behaviour — every commit
// fully serialized through its own device sync — by funneling all clients
// through one mutex.
// ---------------------------------------------------------------------------

struct DurableRow {
  uint64_t commits;
  double wall_ms;
  double ops_per_sec;
  uint64_t fsyncs;
};

uint64_t WalFsyncsTotal() {
  auto snap = util::MetricsRegistry::Instance().Snapshot();
  auto it = snap.counters.find("storage.wal.fsyncs_total");
  return it == snap.counters.end() ? 0 : it->second;
}

DurableRow RunDurable(const std::filesystem::path& dir, int threads,
                      int commits_each, uint32_t window_us, bool serialize) {
  std::filesystem::create_directories(dir);
  storage::DurableOptions options;
  options.fsync = true;
  options.group_commit_window_us = window_us;
  options.emulated_sync_delay_us = 8000;
  auto server =
      storage::DurableServer::Open(dir.string(), mtree::TreeParams{}, options);
  if (!server.ok()) {
    std::fprintf(stderr, "bench_protocol_overhead: open failed: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  const uint64_t fsyncs_before = WalFsyncsTotal();
  util::Mutex serial_mu;
  std::atomic<int> failures{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      cvs::VerifyingClient client(static_cast<uint32_t>(t + 1),
                                  server->get());
      const std::string path = "e11/f" + std::to_string(t);
      auto commit_one = [&](int i) {
        auto rev = client.Commit(path, "payload " + std::to_string(i),
                                 static_cast<uint64_t>(i));
        return rev.ok();
      };
      for (int i = 0; i < commits_each; ++i) {
        bool ok;
        if (serialize) {
          // The pre-group-commit arm: one commit (hence one fdatasync) in
          // flight at a time, like a single-worker serve loop.
          util::MutexLock lock(&serial_mu);
          ok = commit_one(i);
        } else {
          ok = commit_one(i);
        }
        if (!ok) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  auto end = std::chrono::steady_clock::now();
  if (failures.load() != 0) {
    std::fprintf(stderr, "bench_protocol_overhead: commit failures\n");
    std::exit(1);
  }
  const uint64_t commits = uint64_t(threads) * commits_each;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return DurableRow{commits, wall_ms, commits / (wall_ms / 1000.0),
                    WalFsyncsTotal() - fsyncs_before};
}

}  // namespace

int main() {
  bench::JsonOut json("bench_protocol_overhead");
  const uint32_t kUsers = 6, kOps = 15;
  std::printf("E6: protocol overhead under concurrency\n");
  std::printf("(%u users x %u commits, all eligible at round 1, honest server)\n\n",
              kUsers, kOps);

  Table table({"protocol", "completion (rounds)", "avg latency", "p50", "p99",
               "messages", "total bytes", "bytes/op"});
  for (ProtocolKind p :
       {ProtocolKind::kPlain, ProtocolKind::kNoExternalComm,
        ProtocolKind::kProtocolII, ProtocolKind::kProtocolI,
        ProtocolKind::kTokenBaseline}) {
    Row row = RunConcurrent(p, kUsers, kOps);
    table.AddRow({std::string(ProtocolKindToString(p)), Num(row.rounds),
                  Num(row.avg_latency), Num(row.p50), Num(row.p99),
                  Num(row.messages), Num(row.bytes), Num(row.bytes_per_op)});
  }
  table.Print();
  json.Add("protocol overhead under concurrency", table);

  // E11: durable (fsync-on) end-to-end throughput, group commit vs the
  // pre-batching serial-fsync behaviour. Emulated 8ms device sync.
  std::printf("\nE11: durable commit throughput (fsync on, emulated 8ms "
              "device sync, 8 clients)\n\n");
  std::error_code ec;
  std::filesystem::path root =
      std::filesystem::temp_directory_path() / "tcvs_bench_proto_e11";
  std::filesystem::remove_all(root, ec);
  const int kThreads = 8, kCommitsEach = 12;
  Table durable({"mode", "commits", "wall_ms", "ops/sec", "fsyncs"});
  DurableRow serial = RunDurable(root / "serial", kThreads, kCommitsEach,
                                 /*window_us=*/0, /*serialize=*/true);
  durable.AddRow({"serial fsync (pre group commit)", Num(serial.commits),
                  Num(serial.wall_ms), Num(serial.ops_per_sec),
                  Num(serial.fsyncs)});
  DurableRow grouped = RunDurable(root / "grouped", kThreads, kCommitsEach,
                                  /*window_us=*/2000, /*serialize=*/false);
  durable.AddRow({"group commit (2ms window)", Num(grouped.commits),
                  Num(grouped.wall_ms), Num(grouped.ops_per_sec),
                  Num(grouped.fsyncs)});
  durable.Print();
  std::printf("group-commit speedup: %.1fx\n",
              grouped.ops_per_sec / serial.ops_per_sec);
  json.Add("durable commit throughput (fsync on)", durable);
  std::filesystem::remove_all(root, ec);

  std::printf(
      "Expected shape: Plain and NoExternalComm/ProtocolII complete in the\n"
      "same (small) number of rounds — the VO costs bytes, not rounds.\n"
      "ProtocolI's blocking signature serializes the server (completion\n"
      "scales with total ops, messages ~1.5x). TokenBaseline is slowest:\n"
      "one op per slot. Bytes/op for verifying protocols = VO size +\n"
      "envelope; ProtocolI adds the signature payloads.\n");
  return 0;
}
