// Experiment E6 (paper §4.2 vs §4.3): per-operation protocol overhead.
//
// All users commit concurrently against an honest server. Reproduced
// claims:
//
//   * Protocol I adds one extra (signed) message per operation and blocks
//     the server on it, so under concurrency its completion time and
//     latency degrade ("This additional blocking step affects throughput in
//     systems with frequent updates");
//   * Protocol II has no extra message and no signatures: its cost over the
//     plain unverified server is VO bytes + client hashing only;
//   * message and byte counts quantify c, the verification overhead per
//     ordinary transaction (bounded workload preservation).

#include <cstdio>

#include "bench/json_out.h"
#include "bench/table.h"
#include "core/scenario.h"
#include "workload/workload.h"

using namespace tcvs;
using namespace tcvs::core;
using tcvs::bench::Num;
using tcvs::bench::Table;

namespace {

struct Row {
  uint64_t rounds;
  double avg_latency;
  uint64_t p50;
  uint64_t p99;
  uint64_t messages;
  uint64_t bytes;
  double bytes_per_op;
};

Row RunConcurrent(ProtocolKind protocol, uint32_t num_users, uint32_t ops_each) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.num_users = num_users;
  config.sync_k = 100000;  // Sync cost measured separately in E7.
  config.user_key_height = 6;
  workload::Workload w;
  for (uint32_t u = 1; u <= num_users; ++u) {
    workload::UserScript s;
    s.user = u;
    for (uint32_t i = 0; i < ops_each; ++i) {
      s.ops.push_back({1, sim::OpKind::kCommit,
                       util::ToBytes("f" + std::to_string(u * 100 + i % 10)),
                       util::ToBytes("content " + std::to_string(i))});
    }
    w.push_back(std::move(s));
  }
  Scenario scenario(config, std::move(w));
  ScenarioReport r = scenario.RunUntilDone(40000);
  uint64_t total_ops = uint64_t(num_users) * ops_each;
  // Rounds until the last scripted op completed ≈ rounds_executed only if we
  // stop then; approximate with max latency + 1 (all eligible at round 1).
  return Row{r.max_latency_rounds + 1, r.avg_latency_rounds, r.latency.p50(),
             r.latency.p99(),          r.traffic.messages,
             r.traffic.bytes,          double(r.traffic.bytes) / total_ops};
}

}  // namespace

int main() {
  bench::JsonOut json("bench_protocol_overhead");
  const uint32_t kUsers = 6, kOps = 15;
  std::printf("E6: protocol overhead under concurrency\n");
  std::printf("(%u users x %u commits, all eligible at round 1, honest server)\n\n",
              kUsers, kOps);

  Table table({"protocol", "completion (rounds)", "avg latency", "p50", "p99",
               "messages", "total bytes", "bytes/op"});
  for (ProtocolKind p :
       {ProtocolKind::kPlain, ProtocolKind::kNoExternalComm,
        ProtocolKind::kProtocolII, ProtocolKind::kProtocolI,
        ProtocolKind::kTokenBaseline}) {
    Row row = RunConcurrent(p, kUsers, kOps);
    table.AddRow({std::string(ProtocolKindToString(p)), Num(row.rounds),
                  Num(row.avg_latency), Num(row.p50), Num(row.p99),
                  Num(row.messages), Num(row.bytes), Num(row.bytes_per_op)});
  }
  table.Print();
  json.Add("protocol overhead under concurrency", table);

  std::printf(
      "Expected shape: Plain and NoExternalComm/ProtocolII complete in the\n"
      "same (small) number of rounds — the VO costs bytes, not rounds.\n"
      "ProtocolI's blocking signature serializes the server (completion\n"
      "scales with total ops, messages ~1.5x). TokenBaseline is slowest:\n"
      "one op per slot. Bytes/op for verifying protocols = VO size +\n"
      "envelope; ProtocolI adds the signature payloads.\n");
  return 0;
}
