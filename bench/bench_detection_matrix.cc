// Experiment E9: the attack × protocol detection matrix.
//
// One row per (attack, protocol) pair that is meaningful for that protocol;
// columns report ground-truth deviation, detection, and delays. This is the
// summary table an evaluation section of the paper would have carried: it
// shows each protocol's detection guarantee holding (and the deliberate
// non-guarantees: Plain and NoExternalComm).

#include <cstdio>

#include "bench/json_out.h"
#include "bench/table.h"
#include "core/scenario.h"
#include "workload/workload.h"

using namespace tcvs;
using namespace tcvs::core;
using tcvs::bench::Num;
using tcvs::bench::Table;
using tcvs::bench::YesNo;

namespace {

ScenarioReport RunCell(ProtocolKind protocol, AttackKind attack) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.num_users = 4;
  config.sync_k = 6;
  config.epoch_rounds = 50;
  config.user_key_height = 9;
  config.attack.kind = attack;
  config.attack.trigger_round = (attack == AttackKind::kOmitEpochState ||
                                 attack == AttackKind::kStaleEpochState)
                                    ? 0
                                    : 60;
  config.attack.partition_a = {3, 4};
  config.attack.victim = 2;
  config.forced_syncs = {900};  // Guarantee a final sync for one-shot attacks.

  if (protocol == ProtocolKind::kProtocolIII) {
    workload::EpochWorkloadOptions opts;
    opts.num_users = 4;
    opts.num_epochs = 10;
    opts.epoch_rounds = 50;
    opts.ops_per_epoch = 3;
    Scenario scenario(config, workload::MakeEpochWorkload(opts));
    return scenario.Run(10 * 50 + 300);
  }
  workload::CvsWorkloadOptions opts;
  opts.num_users = 4;
  opts.ops_per_user = 25;
  opts.num_files = 8;
  opts.mean_think_rounds = 2;
  opts.offline_probability = 0.0;
  opts.seed = 23;
  Scenario scenario(config, workload::MakeCvsWorkload(opts));
  return scenario.Run(2000);
}

}  // namespace

int main() {
  bench::JsonOut json("bench_detection_matrix");
  std::printf("E9: detection matrix — attack x protocol\n");
  std::printf("(4 users; k = 6; epoch t = 50; one-shot attacks trigger at round 60)\n\n");

  struct Cell {
    ProtocolKind protocol;
    AttackKind attack;
  };
  std::vector<Cell> cells;
  for (AttackKind attack :
       {AttackKind::kFork, AttackKind::kTamper, AttackKind::kDrop}) {
    for (ProtocolKind protocol :
         {ProtocolKind::kPlain, ProtocolKind::kNoExternalComm,
          ProtocolKind::kTokenBaseline, ProtocolKind::kProtocolI,
          ProtocolKind::kProtocolII, ProtocolKind::kProtocolIII}) {
      cells.push_back({protocol, attack});
    }
  }
  // Protocol III storage attacks only exist under Protocol III.
  cells.push_back({ProtocolKind::kProtocolIII, AttackKind::kOmitEpochState});
  cells.push_back({ProtocolKind::kProtocolIII, AttackKind::kStaleEpochState});

  Table table({"attack", "protocol", "ground-truth", "detected", "delay (ops)",
               "delay (rounds)"});
  for (const Cell& cell : cells) {
    ScenarioReport r = RunCell(cell.protocol, cell.attack);
    table.AddRow({std::string(AttackKindToString(cell.attack)),
                  std::string(ProtocolKindToString(cell.protocol)),
                  YesNo(r.ground_truth_deviation), YesNo(r.detected),
                  r.detected ? Num(r.detection_delay_ops) : "-",
                  r.detected ? Num(r.detection_delay_rounds) : "-"});
  }
  table.Print();
  json.Add("detection matrix: attack x protocol", table);

  std::printf(
      "Note: the ground-truth column reports deviation *manifest in completed\n"
      "transactions by the time the run stopped* — when detection fires within\n"
      "an op or two, the run halts before any user observes divergent data, so\n"
      "fast-detecting rows can read ground-truth=no while slow/undetected rows\n"
      "accumulate visible divergence.\n\n"
      "Expected shape: Plain never detects anything; NoExternalComm detects\n"
      "nothing here either (every local check passes on both sides of every\n"
      "attack it faces); TokenBaseline/ProtocolI/ProtocolII/ProtocolIII\n"
      "detect every attack aimed at them, with delays bounded by their\n"
      "respective guarantees (slots, next-op signature, k-sync, 2-epoch\n"
      "audit).\n");
  return 0;
}
