// Admin-plane scrape overhead: verified commit throughput with and without
// a 10 Hz /metrics scraper attached.
//
// The observability plane's whole budget is "free when you don't look,
// nearly free when you do": the admin server runs its own listener thread
// and answers scrapes from a registry snapshot, so a Prometheus-style
// scraper must not perturb the serving hot path. This bench drives the
// same verified-commit load twice — bare, then with a scraper GETting
// /metrics every 100 ms — and reports the throughput delta. The committed
// baseline documents the ≤5% acceptance budget; bench_compare.py gates the
// ops/sec columns against it.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_out.h"
#include "bench/table.h"
#include "cvs/trusted.h"
#include "net/http_admin.h"
#include "net/socket.h"
#include "rpc/remote.h"

using namespace tcvs;
using tcvs::bench::Num;
using tcvs::bench::Table;

namespace {

constexpr int kClients = 4;
constexpr int kWarmupEach = 50;
constexpr int kCommitsEach = 250;
constexpr int kScrapeIntervalMs = 100;  // 10 Hz.

struct Phase {
  double wall_ms = 0;
  uint64_t commits = 0;
  uint64_t scrapes = 0;
  double ops_per_sec() const { return commits / (wall_ms / 1000.0); }
};

/// Runs `commits_each` verified commits per client against the served
/// repository; revisions continue from `base_rev` so the tree size stays
/// constant across phases (same paths, bumped revisions).
Phase RunPhase(uint16_t rpc_port, int commits_each, uint64_t base_rev,
               uint16_t admin_port /* 0 = no scraper */) {
  std::atomic<int> failures{0};
  std::atomic<bool> scraping{admin_port != 0};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper;
  if (admin_port != 0) {
    scraper = std::thread([&, admin_port] {
      while (scraping.load()) {
        auto resp = net::HttpGet("127.0.0.1", admin_port, "/metrics");
        if (!resp.ok() || resp->status != 200) {
          ++failures;
          return;
        }
        ++scrapes;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kScrapeIntervalMs));
      }
    });
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    workers.emplace_back([&, t] {
      auto remote = rpc::RemoteServer::Connect("127.0.0.1", rpc_port);
      if (!remote.ok()) {
        ++failures;
        return;
      }
      cvs::VerifyingClient client(static_cast<uint32_t>(t + 1),
                                  remote->get());
      const std::string path = "bench/f" + std::to_string(t);
      for (int i = 0; i < commits_each; ++i) {
        auto rev = client.Commit(path, "payload " + std::to_string(i),
                                 base_rev + static_cast<uint64_t>(i));
        if (!rev.ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  auto end = std::chrono::steady_clock::now();
  scraping.store(false);
  if (scraper.joinable()) scraper.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "bench_admin_scrape: %d failures\n",
                 failures.load());
    std::exit(1);
  }

  Phase p;
  p.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  p.commits = uint64_t(kClients) * commits_each;
  p.scrapes = scrapes.load();
  return p;
}

}  // namespace

int main() {
  bench::JsonOut json("bench_admin_scrape");

  cvs::UntrustedServer repo;
  auto listener = net::TcpListener::Bind(0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bench_admin_scrape: bind: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  const uint16_t rpc_port = listener->port();
  Status serve_status = Status::OK();
  std::thread serve_thread(
      [l = std::move(listener).ValueOrDie(), &repo, &serve_status]() mutable {
        rpc::ServeOptions options;
        options.num_threads = kClients;
        serve_status = rpc::Serve(&l, &repo, options);
      });

  auto admin = net::HttpAdminServer::Start({});
  if (!admin.ok()) {
    std::fprintf(stderr, "bench_admin_scrape: admin start: %s\n",
                 admin.status().ToString().c_str());
    return 1;
  }
  net::RegisterStandardEndpoints(admin->get(), {});

  std::printf("admin-plane scrape overhead (verified commits, %d clients, "
              "10 Hz /metrics)\n\n", kClients);
  RunPhase(rpc_port, kWarmupEach, 0, 0);  // Warmup: build the tree, warm caches.
  Phase bare = RunPhase(rpc_port, kCommitsEach, kWarmupEach, 0);
  Phase scraped = RunPhase(rpc_port, kCommitsEach, kWarmupEach + kCommitsEach,
                           (*admin)->port());
  const double delta_pct =
      100.0 * (bare.ops_per_sec() - scraped.ops_per_sec()) /
      bare.ops_per_sec();

  Table table({"phase", "commits", "wall_ms", "ops/sec", "scrapes",
               "delta_pct"});
  table.AddRow({"unscraped", Num(bare.commits), Num(bare.wall_ms),
                Num(bare.ops_per_sec()), Num(uint64_t(0)), Num(0.0)});
  table.AddRow({"scraped_10hz", Num(scraped.commits), Num(scraped.wall_ms),
                Num(scraped.ops_per_sec()), Num(scraped.scrapes),
                Num(delta_pct)});
  table.Print();
  json.Add("admin scrape overhead", table);

  (*admin)->Stop();
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", rpc_port);
  if (remote.ok()) (void)(*remote)->Shutdown();
  serve_thread.join();
  if (!serve_status.ok()) {
    std::fprintf(stderr, "bench_admin_scrape: serve: %s\n",
                 serve_status.ToString().c_str());
    return 1;
  }
  return 0;
}
