#pragma once

// Minimal fixed-width table printer for the scenario-driven experiment
// binaries (the paper has no numeric tables of its own; these regenerate
// the quantitative claims behind its figures and prose).

#include <cstdio>
#include <string>
#include <vector>

namespace tcvs {
namespace bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// \name Raw cells, for machine-readable emission (bench/json_out.h).
  /// @{
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  /// @}

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (size_t c = 0; c < width.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), s.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < width.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Num(uint64_t v) { return std::to_string(v); }
inline std::string Num(double v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}
inline std::string YesNo(bool v) { return v ? "yes" : "no"; }

}  // namespace bench
}  // namespace tcvs
