#pragma once

// Drop-in replacement for BENCHMARK_MAIN() that, in addition to the normal
// console output, writes google-benchmark's native JSON report to
// BENCH_<name>.json (see bench/json_out.h for the output-directory rule).
// The JSON schema is the library's own — {"context": {...},
// "benchmarks": [{"name", "real_time", "cpu_time", ...}]} — documented in
// EXPERIMENTS.md alongside the table-bench schema.
//
// Implemented by injecting --benchmark_out/--benchmark_out_format into the
// argument list (the library refuses a file reporter without the flag); an
// explicit --benchmark_out on the command line wins.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/json_out.h"

namespace tcvs {
namespace bench {

inline int BenchmarkMainWithJson(const char* bench_name, int argc,
                                 char** argv) {
  const std::string path = JsonOutputPath(bench_name);
  std::string out_flag = "--benchmark_out=" + path;
  std::string fmt_flag = "--benchmark_out_format=json";

  bool user_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) user_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  if (!user_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  args.push_back(nullptr);

  int n = static_cast<int>(args.size()) - 1;
  ::benchmark::Initialize(&n, args.data());
  if (::benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!user_out) std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace bench
}  // namespace tcvs

#define TCVS_BENCHMARK_JSON_MAIN(name)                            \
  int main(int argc, char** argv) {                               \
    return ::tcvs::bench::BenchmarkMainWithJson(name, argc, argv); \
  }
