// Campaign soak bench: detection-delay distribution vs adversarial
// strategy mix.
//
// Table 1 runs a batch of seeded schedules per strategy (each generated
// schedule reduced to one step of that primitive, plus the generator's raw
// composite mix) and reports engagement, detection, and the detection-delay
// distribution in operations against the n·k bound.
//
// Table 2 is the ablation arm: the same randomized campaign under real
// Protocol II vs the untagged variant. Randomized campaigns are caught by
// both (counter monotonicity); only the engineered Figure-3 cancellation
// separates them (bench_replay_attack covers that) — the table documents
// that the campaign generator does not overclaim the untagged weakness.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/json_out.h"
#include "bench/table.h"
#include "sim/campaign.h"

using namespace tcvs;
using tcvs::bench::Num;
using tcvs::bench::Table;

namespace {

constexpr uint32_t kRunsPerStrategy = 40;
constexpr uint64_t kBaseSeed = 1000;

struct Strategy {
  const char* name;
  core::AttackKind kind;  // kHonest = keep the generator's composite mix.
};

campaign::CampaignSchedule MakeStrategySchedule(uint64_t seed,
                                                const Strategy& strategy) {
  campaign::CampaignSchedule s = campaign::GenerateSchedule(seed);
  if (strategy.kind == core::AttackKind::kHonest) return s;  // Composite.
  s.steps.resize(1);
  core::AttackStep& step = s.steps[0];
  step.kind = strategy.kind;
  step.duration = 0;
  step.arg = 0;
  switch (strategy.kind) {
    case core::AttackKind::kEquivocate:
    case core::AttackKind::kDrop:
      step.duration = 20;
      break;
    case core::AttackKind::kRollback:
      step.arg = 2;
      step.victims.clear();
      break;
    case core::AttackKind::kReplaySegment:
      step.arg = 1;
      break;
    default:
      break;  // kFork: at + victims are the whole step.
  }
  return s;
}

uint64_t Percentile(std::vector<uint64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main() {
  bench::JsonOut json("bench_campaign");
  std::printf("Campaign soak: detection delay vs adversarial strategy mix\n");
  std::printf("(%u seeded schedules per strategy; delays in operations; "
              "bound = n*k + slack per run)\n\n",
              kRunsPerStrategy);

  const Strategy strategies[] = {
      {"fork", core::AttackKind::kFork},
      {"rollback", core::AttackKind::kRollback},
      {"replay", core::AttackKind::kReplaySegment},
      {"equivocate", core::AttackKind::kEquivocate},
      {"drop", core::AttackKind::kDrop},
      {"composite", core::AttackKind::kHonest},
  };

  Table table({"strategy", "runs", "engaged", "detected", "escapes",
               "violations", "delay_p50", "delay_p90", "delay_max"});
  for (const Strategy& strategy : strategies) {
    uint32_t engaged = 0, detected = 0, escapes = 0, violations = 0;
    std::vector<uint64_t> delays;
    for (uint32_t i = 0; i < kRunsPerStrategy; ++i) {
      const campaign::CampaignSchedule schedule =
          MakeStrategySchedule(kBaseSeed + i, strategy);
      const campaign::ScheduleOutcome outcome =
          campaign::RunSchedule(schedule);
      if (outcome.engaged) ++engaged;
      if (outcome.detected) {
        ++detected;
        delays.push_back(outcome.delay_ops);
      }
      if (outcome.escaped) ++escapes;
      if (outcome.Violated()) ++violations;
    }
    table.AddRow({strategy.name, Num(uint64_t{kRunsPerStrategy}),
                  Num(uint64_t{engaged}), Num(uint64_t{detected}),
                  Num(uint64_t{escapes}), Num(uint64_t{violations}),
                  Num(Percentile(delays, 0.5)), Num(Percentile(delays, 0.9)),
                  Num(Percentile(delays, 1.0))});
  }
  table.Print();
  json.Add("delay distribution by strategy", table);

  std::printf("\nAblation: randomized campaign, tagged vs untagged "
              "fingerprints (100 scenarios each)\n\n");
  Table ablation({"protocol", "scenarios", "engaged", "detected", "escapes",
                  "violations", "delay_p50", "delay_p90", "delay_max"});
  for (const core::ProtocolKind protocol :
       {core::ProtocolKind::kProtocolII,
        core::ProtocolKind::kProtocolIINaive}) {
    campaign::CampaignOptions options;
    options.seed = 42;
    options.scenarios = 100;
    options.minimize = false;
    options.protocol = protocol;
    const campaign::CampaignReport report = campaign::RunCampaign(options);
    ablation.AddRow(
        {std::string(core::ProtocolKindToString(protocol)),
         Num(uint64_t{report.scenarios}), Num(uint64_t{report.engaged}),
         Num(uint64_t{report.detected}), Num(uint64_t{report.escapes}),
         Num(static_cast<uint64_t>(report.violations.size())),
         Num(report.DelayPercentile(0.5)), Num(report.DelayPercentile(0.9)),
         Num(report.DelayPercentile(1.0))});
  }
  ablation.Print();
  json.Add("tagged vs untagged under campaign", ablation);

  return 0;
}
