// Experiment F3 (paper Figure 3): the state-replay attack and the
// user-tagging ablation.
//
// The scripted scenario duplicates two honest transitions to two mirror
// users (see core::MakeReplayScenario for the construction and the XOR
// arithmetic). Reproduced claims:
//
//   * untagged registers h(M ‖ ctr): the duplicated states cancel pairwise,
//     the sync-up passes, the availability violation goes undetected;
//   * tagged registers h(M ‖ ctr ‖ user) (Protocol II proper): in-degree >1
//     states get distinct fingerprints, parity breaks, sync-up detects.

#include <cstdio>

#include "bench/json_out.h"
#include "bench/table.h"
#include "core/scenario.h"

using namespace tcvs;
using namespace tcvs::core;
using tcvs::bench::Num;
using tcvs::bench::Table;
using tcvs::bench::YesNo;

int main() {
  bench::JsonOut json("bench_replay_attack");
  std::printf("F3: Figure-3 replay attack — fingerprint tagging ablation\n");
  std::printf("(5 users; transitions 3 and 4 replayed to users 4 and 5)\n\n");

  Table table({"fingerprint", "ground-truth deviation", "sync-up detects",
               "detection round"});
  {
    Scenario scenario = MakeReplayScenario(/*naive=*/true);
    ScenarioReport r = scenario.Run(300);
    table.AddRow({"h(M||ctr)  [untagged]", YesNo(r.ground_truth_deviation),
                  YesNo(r.detected), r.detected ? Num(r.detection_round) : "-"});
  }
  {
    Scenario scenario = MakeReplayScenario(/*naive=*/false);
    ScenarioReport r = scenario.Run(300);
    table.AddRow({"h(M||ctr||user) [tagged]", YesNo(r.ground_truth_deviation),
                  YesNo(r.detected), r.detected ? Num(r.detection_round) : "-"});
  }
  table.Print();
  json.Add("fingerprint tagging ablation", table);

  std::printf(
      "Expected shape: both rows show a real deviation (two transactions per\n"
      "counter value); only the tagged variant detects it. This is the\n"
      "design-choice ablation of DESIGN.md section 5 and the reason Protocol\n"
      "II tags states with their creating user.\n");
  return 0;
}
