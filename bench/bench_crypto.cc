// Experiment E8: cost of the cryptographic substrate.
//
// Protocol I's per-operation signature and Protocol III's per-epoch blob
// signatures ride on the hash-based schemes built here; this bench gives
// the primitive costs behind the protocol overheads of E6, plus the
// Winternitz-w ablation from DESIGN.md §5 (signature size vs time).

#include <benchmark/benchmark.h>

#include "bench/benchmark_json_main.h"

#include "crypto/hmac.h"
#include "crypto/lamport.h"
#include "crypto/merkle_sig.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "crypto/winternitz.h"
#include "util/random.h"

namespace {

using namespace tcvs;
using namespace tcvs::crypto;

void BM_Sha256(benchmark::State& state) {
  util::Rng rng(1);
  Bytes data = rng.RandomBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(256)->Arg(4096)->Arg(65536);

// Runtime-dispatch ablation: the same single-shot hash forced onto each
// available engine (scalar portable vs SHA-NI). The gap is the fast path's
// whole value; on hosts without SHA-NI the forced row self-skips.
void BM_Sha256Engine(benchmark::State& state) {
  Sha256Engine engine = static_cast<Sha256Engine>(state.range(0));
  if (!Sha256EngineSupported(engine)) {
    state.SkipWithError("engine not supported on this host");
    return;
  }
  ForceSha256Engine(engine);
  util::Rng rng(1);
  Bytes data = rng.RandomBytes(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  ResetSha256Engine();
  state.SetBytesProcessed(state.iterations() * state.range(1));
  state.SetLabel(Sha256EngineName(engine));
}
BENCHMARK(BM_Sha256Engine)
    ->Args({0, 32})
    ->Args({1, 32})
    ->Args({0, 4096})
    ->Args({1, 4096});

// Multi-buffer hashing: the WOTS chain-walk substrate. One call hashes N
// independent 32-byte messages; compare against N single-shot calls.
void BM_Sha256HashMany(benchmark::State& state) {
  const size_t n = state.range(0);
  const bool batched = state.range(1) == 1;
  util::Rng rng(8);
  std::vector<Bytes> messages;
  messages.reserve(n);
  for (size_t i = 0; i < n; ++i) messages.push_back(rng.RandomBytes(32));
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(HashMany(messages));
    } else {
      std::vector<Digest> digests;
      digests.reserve(n);
      for (const auto& m : messages) digests.push_back(Sha256::Hash(m));
      benchmark::DoNotOptimize(digests);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(batched ? "HashMany" : "serial");
}
BENCHMARK(BM_Sha256HashMany)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({128, 0})
    ->Args({128, 1});

void BM_HmacSha256(benchmark::State& state) {
  util::Rng rng(2);
  Bytes key = rng.RandomBytes(32);
  Bytes data = rng.RandomBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(32)->Arg(4096);

void BM_LamportKeygen(benchmark::State& state) {
  util::Rng rng(3);
  for (auto _ : state) {
    LamportSigner signer(rng.RandomBytes(32));
    benchmark::DoNotOptimize(signer.public_key());
  }
}
BENCHMARK(BM_LamportKeygen);

void BM_LamportSignVerify(benchmark::State& state) {
  util::Rng rng(4);
  Bytes msg = util::ToBytes("root digest to sign");
  size_t sig_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    LamportSigner signer(rng.RandomBytes(32));
    state.ResumeTiming();
    Bytes sig = *signer.Sign(msg);
    benchmark::DoNotOptimize(
        LamportSigner::VerifySignature(signer.public_key(), msg, sig));
    sig_bytes = sig.size() + signer.public_key().size();
  }
  state.counters["sig_plus_pk_bytes"] = double(sig_bytes);
}
BENCHMARK(BM_LamportSignVerify);

void BM_WotsKeygen(benchmark::State& state) {
  WotsParams params{.w = static_cast<int>(state.range(0))};
  util::Rng rng(5);
  for (auto _ : state) {
    WinternitzSigner signer(rng.RandomBytes(32), params);
    benchmark::DoNotOptimize(signer.public_key());
  }
  WinternitzSigner probe(util::ToBytes("probe"), params);
  Bytes sig = *probe.Sign(util::ToBytes("m"));
  state.counters["sig_bytes"] = double(sig.size());
}
BENCHMARK(BM_WotsKeygen)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_WotsSign(benchmark::State& state) {
  WotsParams params{.w = static_cast<int>(state.range(0))};
  util::Rng rng(6);
  Bytes msg = util::ToBytes("root digest");
  for (auto _ : state) {
    state.PauseTiming();
    WinternitzSigner signer(rng.RandomBytes(32), params);
    state.ResumeTiming();
    benchmark::DoNotOptimize(*signer.Sign(msg));
  }
}
BENCHMARK(BM_WotsSign)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_WotsVerify(benchmark::State& state) {
  WotsParams params{.w = static_cast<int>(state.range(0))};
  WinternitzSigner signer(util::ToBytes("wots-bench"), params);
  Bytes msg = util::ToBytes("root digest");
  Bytes sig = *signer.Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WinternitzSigner::VerifySignature(signer.public_key(), msg, sig, params));
  }
}
BENCHMARK(BM_WotsVerify)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MssKeygen(benchmark::State& state) {
  const int height = static_cast<int>(state.range(0));
  util::Rng rng(7);
  for (auto _ : state) {
    MerkleSigner signer(rng.RandomBytes(32), height);
    benchmark::DoNotOptimize(signer.public_key());
  }
  state.counters["signatures_per_key"] = double(1ULL << height);
}
BENCHMARK(BM_MssKeygen)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_MssSign(benchmark::State& state) {
  MerkleSigner signer(util::ToBytes("mss-bench"), /*height=*/12);
  Bytes msg = util::ToBytes("h(M(D) || ctr)");
  size_t sig_bytes = 0;
  for (auto _ : state) {
    auto sig = signer.Sign(msg);
    if (!sig.ok()) {  // Exhausted: restart with a fresh key outside timing.
      state.PauseTiming();
      signer = MerkleSigner(util::ToBytes("mss-bench"), 12);
      state.ResumeTiming();
      continue;
    }
    sig_bytes = sig->size();
    benchmark::DoNotOptimize(*sig);
  }
  state.counters["sig_bytes"] = double(sig_bytes);
}
BENCHMARK(BM_MssSign);

void BM_MssVerify(benchmark::State& state) {
  MerkleSigner signer(util::ToBytes("mss-bench2"), /*height=*/8);
  Bytes msg = util::ToBytes("h(M(D) || ctr)");
  Bytes sig = *signer.Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MerkleSigner::VerifySignature(signer.public_key(), msg, sig));
  }
}
BENCHMARK(BM_MssVerify);

// Protocol I's hot path: N independent MSS signatures verified in one
// VerifyBatch call (chain walks pooled through the multi-buffer engine)
// vs N sequential Verify calls. Same results, same audit choke point.
void BM_VerifyBatch(benchmark::State& state) {
  const size_t n = state.range(0);
  const bool batched = state.range(1) == 1;
  MerkleSigner signer(util::ToBytes("batch-bench"), /*height=*/8);
  const Bytes pk = signer.public_key();
  std::vector<Bytes> msgs, sigs;
  msgs.reserve(n);
  sigs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    msgs.push_back(util::ToBytes("h(M(D) || " + std::to_string(i) + ")"));
    sigs.push_back(*signer.Sign(msgs.back()));
  }
  std::vector<VerifyRequest> requests;
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    requests.push_back({SchemeId::kMerkleSig, &pk, &msgs[i], &sigs[i]});
  }
  for (auto _ : state) {
    if (batched) {
      std::vector<Status> results = VerifyBatch(requests);
      benchmark::DoNotOptimize(results);
    } else {
      for (size_t i = 0; i < n; ++i) {
        Status s = Verify(SchemeId::kMerkleSig, pk, msgs[i], sigs[i]);
        benchmark::DoNotOptimize(s);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(batched ? "VerifyBatch" : "serial");
}
BENCHMARK(BM_VerifyBatch)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

TCVS_BENCHMARK_JSON_MAIN("bench_crypto");
