#!/usr/bin/env bash
# tools/check.sh — the repo's one-command correctness gate.
#
# Runs the full matrix, headless, stopping never and failing loudly:
#
#   1. default    cmake --preset default  + full ctest
#   2. asan       ASan+UBSan build        + full ctest
#   3. tsan       ThreadSanitizer build   + the concurrency-exercising tests
#                 (serve loop, fault harness, stress test) — zero reports
#   4. tidy       clang-tidy (bugprone/concurrency/performance/readability
#                 per .clang-tidy) over src/ and tools/
#                 [SKIPPED with a notice when clang-tidy is not installed —
#                  gcc-only containers still run stages 1-3 and 5]
#   5. lint       tools/lint.py repo-invariant lint (raw-mutex ban,
#                 naked-new ban, fault-point registry, header hygiene)
#
# Exit code: 0 iff every non-skipped stage passed. Suitable for CI as-is:
#   ./tools/check.sh            # everything
#   ./tools/check.sh tsan lint  # just those stages
#
# Each stage is one `cmake --preset` invocation (see CMakePresets.json), so
# any single leg can also be reproduced by hand.

set -u
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
# The concurrency-exercising subset run under TSan (full suites run in
# stages 1-2; TSan's 5-15x slowdown is spent where threads actually are).
TSAN_FILTER='Concurrent|Faulted|Rpc|KilledAndRestarted|FaultInjector'

declare -A RESULT
FAILED=0

note() { printf '\n\033[1m== check.sh: %s ==\033[0m\n' "$*"; }

run_stage() {  # run_stage <name> <cmd...>
  local name="$1"; shift
  note "stage $name: $*"
  if "$@"; then
    RESULT[$name]="${RESULT[$name]:-PASS}"
  else
    RESULT[$name]="FAIL"
    FAILED=1
  fi
}

stage_default() {
  run_stage default cmake --preset default
  [ "${RESULT[default]}" = FAIL ] && return
  run_stage default cmake --build --preset default -j "$JOBS"
  [ "${RESULT[default]}" = FAIL ] && return
  run_stage default ctest --preset default -j "$JOBS"
}

stage_asan() {
  run_stage asan cmake --preset asan
  [ "${RESULT[asan]}" = FAIL ] && return
  run_stage asan cmake --build --preset asan -j "$JOBS"
  [ "${RESULT[asan]}" = FAIL ] && return
  run_stage asan ctest --preset asan -j "$JOBS"
}

stage_tsan() {
  run_stage tsan cmake --preset tsan
  [ "${RESULT[tsan]}" = FAIL ] && return
  run_stage tsan cmake --build --preset tsan -j "$JOBS"
  [ "${RESULT[tsan]}" = FAIL ] && return
  run_stage tsan ctest --preset tsan -j 2 -R "$TSAN_FILTER"
}

stage_tidy() {
  local tidy=""
  if command -v clang-tidy >/dev/null 2>&1; then
    tidy=clang-tidy
  fi
  if [ -z "$tidy" ]; then
    note "stage tidy: clang-tidy not installed — SKIPPED"
    RESULT[tidy]="SKIP (clang-tidy not installed)"
    return
  fi
  run_stage tidy cmake --preset tidy
  [ "${RESULT[tidy]}" = FAIL ] && return
  # Headers are covered via HeaderFilterRegex while their includers compile.
  local files
  files=$(find src tools -name '*.cc' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run_stage tidy run-clang-tidy -quiet -p build-tidy $files
  else
    run_stage tidy $tidy -quiet -p build-tidy $files
  fi
}

stage_lint() {
  run_stage lint python3 tools/lint.py
}

STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(default asan tsan tidy lint)
for stage in "${STAGES[@]}"; do
  case "$stage" in
    default) stage_default ;;
    asan)    stage_asan ;;
    tsan)    stage_tsan ;;
    tidy)    stage_tidy ;;
    lint)    stage_lint ;;
    *) echo "check.sh: unknown stage '$stage' (default asan tsan tidy lint)" >&2
       exit 2 ;;
  esac
done

note "summary"
for stage in "${STAGES[@]}"; do
  printf '  %-8s %s\n' "$stage" "${RESULT[$stage]:-SKIP}"
done
exit $FAILED
