#!/usr/bin/env bash
# tools/check.sh — the repo's one-command correctness gate.
#
# Runs the full matrix, headless, stopping never and failing loudly:
#
#   1. default    cmake --preset default  + full ctest
#   2. asan       ASan+UBSan build        + full ctest
#   3. tsan       ThreadSanitizer build   + the concurrency-exercising tests
#                 (serve loop, fault harness, stress test) — zero reports
#   4. tidy       clang-tidy (bugprone/concurrency/performance/readability
#                 per .clang-tidy) over src/ and tools/
#                 [SKIPPED with a notice when clang-tidy is not installed —
#                  gcc-only containers still run stages 1-3 and 5]
#   5. stats      observability smoke: live tcvsd + real traffic, then the
#                 Stats RPC must report non-zero metrics from every
#                 instrumented layer and --log-json must emit parseable
#                 JSON lines
#   5b. obs       HTTP observability-plane smoke: live tcvsd with
#                 --admin-port + --slow-op-us armed; every admin endpoint
#                 (/metrics /varz /healthz /readyz /statusz /tracez
#                 /eventsz) must answer, the /metrics body must pass
#                 tools/promcheck.py strict validation and carry at least
#                 one exemplar whose trace id joins /tracez, a slow-op
#                 JSON record with nonzero cost must land on stderr,
#                 `tcvs top` must render per-method rows from /varz, and
#                 bench_admin_scrape must hold its committed baseline
#                 (scrape-overhead gate) via tools/bench_compare.py
#   5c. prof      profiling-plane smoke: live tcvsd with --profile-hz armed
#                 under concurrent commit load; /pprofz must yield a parsed
#                 folded profile naming the SHA-256 hash path, /lockz must
#                 show recorded waits, the per-method queue/work/fsync
#                 decomposition must sum to the latency histogram within
#                 10%, `tcvs profile` must round-trip the kProfile RPC, and
#                 bench_profiler_overhead must hold its committed <=3%
#                 baseline
#   6. bench      bench-output smoke: the fast table benches must emit valid
#                 schema_version-1 JSON into $TCVS_BENCH_JSON_DIR, a
#                 self-comparison with tools/bench_compare.py must pass, and
#                 an inflated copy must trip the regression detector
#   6b. perf      hot-path throughput smoke: short iterations of
#                 bench_crypto / bench_merkle_tree / bench_wal_commit /
#                 bench_protocol_overhead must emit valid JSON (both the
#                 schema_version-1 tables and google-benchmark's native
#                 schema), and tools/bench_compare.py must pass against the
#                 committed baselines in bench/baselines/ (threshold 75% —
#                 the gate catches order-of-magnitude throughput losses,
#                 not shared-runner jitter)
#   7. soak       seeded Byzantine campaign smoke: a short randomized
#                 campaign (TCVS_SOAK_ROUNDS scenarios, default 40 — crank
#                 it up for nightly runs) must hold every harness invariant
#                 (n·k bound, digest-pair fork evidence, honest arm clean)
#                 and the same seed twice must produce byte-identical JSON
#                 reports, under the default, asan, AND tsan presets
#   8. lint       tools/lint.py repo-invariant lint (raw-mutex ban,
#                 naked-new ban, fault-point registry, header hygiene,
#                 metric naming, Prometheus suffix conventions, RPC-method
#                 metric coverage, admin-endpoint coverage, typed audit
#                 events, campaign-fixture hygiene, trust-boundary
#                 quarantine coverage, taint-escape ban)
#   9. taint      tools/taint_check.py trust-boundary taint analysis:
#                 --self-test (the seeded-bad fixtures in
#                 tests/taint_fixtures/ must ALL be flagged, the real tree
#                 must be clean), then the full-tree scan. The libclang AST
#                 engine SKIPs itself on gcc-only containers; the
#                 pure-python flow engine always runs and is authoritative.
#                 With clang++ installed, also builds the TCVS_FUZZ
#                 libFuzzer targets and runs each for a bounded smoke over
#                 its seed corpus [fuzz smoke SKIPPED without clang++ —
#                 fuzz_corpus_test replays the corpora in stage 1 instead]
#
# Exit code: 0 iff every non-skipped stage passed. Suitable for CI as-is:
#   ./tools/check.sh            # everything
#   ./tools/check.sh tsan lint  # just those stages
#
# Each stage is one `cmake --preset` invocation (see CMakePresets.json), so
# any single leg can also be reproduced by hand.

set -u
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
# The concurrency-exercising subset run under TSan (full suites run in
# stages 1-2; TSan's 5-15x slowdown is spent where threads actually are).
TSAN_FILTER='Concurrent|Faulted|Rpc|KilledAndRestarted|FaultInjector'

declare -A RESULT
FAILED=0

note() { printf '\n\033[1m== check.sh: %s ==\033[0m\n' "$*"; }

run_stage() {  # run_stage <name> <cmd...>
  local name="$1"; shift
  note "stage $name: $*"
  if "$@"; then
    RESULT[$name]="${RESULT[$name]:-PASS}"
  else
    RESULT[$name]="FAIL"
    FAILED=1
  fi
}

stage_default() {
  run_stage default cmake --preset default
  [ "${RESULT[default]}" = FAIL ] && return
  run_stage default cmake --build --preset default -j "$JOBS"
  [ "${RESULT[default]}" = FAIL ] && return
  run_stage default ctest --preset default -j "$JOBS"
}

stage_asan() {
  run_stage asan cmake --preset asan
  [ "${RESULT[asan]}" = FAIL ] && return
  run_stage asan cmake --build --preset asan -j "$JOBS"
  [ "${RESULT[asan]}" = FAIL ] && return
  run_stage asan ctest --preset asan -j "$JOBS"
}

stage_tsan() {
  run_stage tsan cmake --preset tsan
  [ "${RESULT[tsan]}" = FAIL ] && return
  run_stage tsan cmake --build --preset tsan -j "$JOBS"
  [ "${RESULT[tsan]}" = FAIL ] && return
  run_stage tsan ctest --preset tsan -j 2 -R "$TSAN_FILTER"
}

stage_tidy() {
  local tidy=""
  if command -v clang-tidy >/dev/null 2>&1; then
    tidy=clang-tidy
  fi
  if [ -z "$tidy" ]; then
    note "stage tidy: clang-tidy not installed — SKIPPED"
    RESULT[tidy]="SKIP (clang-tidy not installed)"
    return
  fi
  run_stage tidy cmake --preset tidy
  [ "${RESULT[tidy]}" = FAIL ] && return
  # Headers are covered via HeaderFilterRegex while their includers compile.
  local files
  files=$(find src tools -name '*.cc' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run_stage tidy run-clang-tidy -quiet -p build-tidy $files
  else
    run_stage tidy $tidy -quiet -p build-tidy $files
  fi
}

stage_lint() {
  run_stage lint python3 tools/lint.py
}

# Bounded libFuzzer smoke over the committed seed corpora (clang only; the
# build dir is separate so the gcc build/ stays untouched).
fuzz_smoke() {
  local bdir=build-fuzz t
  cmake -B "$bdir" -S . -DTCVS_FUZZ=ON \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ || return 1
  cmake --build "$bdir" -j "$JOBS" --target \
        rpc_request_fuzz rpc_response_fuzz point_vo_fuzz range_vo_fuzz \
        query_response_fuzz || return 1
  for t in rpc_request rpc_response point_vo range_vo query_response; do
    "$bdir/tests/${t}_fuzz" -runs=2000 -max_total_time=20 \
        "tests/fuzz_corpora/$t" || return 1
  done
}

stage_taint() {
  run_stage taint python3 tools/taint_check.py --self-test
  [ "${RESULT[taint]}" = FAIL ] && return
  run_stage taint python3 tools/taint_check.py
  [ "${RESULT[taint]}" = FAIL ] && return
  if command -v clang++ >/dev/null 2>&1; then
    run_stage taint fuzz_smoke
  else
    note "stage taint: clang++ not installed — fuzz smoke SKIPPED (fuzz_corpus_test replays the corpora in stage default)"
    RESULT[taint]="${RESULT[taint]:-PASS} (fuzz smoke SKIP: no clang++)"
  fi
}

# Bench-output smoke: run the fast table benches with TCVS_BENCH_JSON_DIR
# set, validate the schema_version-1 JSON they emit, then self-compare the
# directory with bench_compare.py (identical inputs must find metrics to
# compare and zero regressions) and check the regression path fires when a
# latency-like value is inflated past the threshold.
bench_smoke() {
  local tmp rc=1
  tmp=$(mktemp -d) || return 1
  mkdir -p "$tmp/base"
  while :; do  # Single-pass; break is the error exit.
    TCVS_BENCH_JSON_DIR="$tmp/base" ./build/bench/bench_replay_attack \
        > /dev/null || break
    TCVS_BENCH_JSON_DIR="$tmp/base" ./build/bench/bench_sync_cost \
        > /dev/null || break
    python3 - "$tmp/base" <<'PYEOF' || break
import json, pathlib, sys
files = sorted(pathlib.Path(sys.argv[1]).glob("BENCH_*.json"))
assert len(files) == 2, [f.name for f in files]
for f in files:
    doc = json.loads(f.read_text())
    assert doc["schema_version"] == 1, f
    assert doc["tables"] and all(t["headers"] and t["rows"] for t in doc["tables"]), f
print(f"bench: {len(files)} schema_version-1 JSON files OK")
PYEOF
    python3 tools/bench_compare.py --self-test || break
    python3 tools/bench_compare.py "$tmp/base" "$tmp/base" \
        --threshold 5 || break
    # Inflate every numeric cell 10x in a copy: the compare must now fail.
    mkdir -p "$tmp/slow"
    python3 - "$tmp/base" "$tmp/slow" <<'PYEOF' || break
import json, pathlib, re, sys
base, slow = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
for f in base.glob("BENCH_*.json"):
    doc = json.loads(f.read_text())
    for t in doc["tables"]:
        t["rows"] = [[re.sub(r"^(\d+(\.\d+)?)$", lambda m: str(float(m.group(1)) * 10), c)
                      for c in row] for row in t["rows"]]
    (slow / f.name).write_text(json.dumps(doc))
PYEOF
    if python3 tools/bench_compare.py "$tmp/base" "$tmp/slow" \
        --threshold 5 > /dev/null; then
      echo "bench: bench_compare.py missed a 10x inflation" >&2
      break
    fi
    rc=0
    break
  done
  rm -rf "$tmp"
  return $rc
}

stage_bench() {
  run_stage bench cmake --preset default
  [ "${RESULT[bench]}" = FAIL ] && return
  run_stage bench cmake --build --preset default -j "$JOBS" \
      --target bench_replay_attack bench_sync_cost
  [ "${RESULT[bench]}" = FAIL ] && return
  run_stage bench bench_smoke
}

# Hot-path perf smoke: short iterations of the throughput benches, schema
# validation of the JSON they emit, then bench_compare.py against the
# committed baselines. Threshold 75%: short runs on shared runners are
# noisy; the gate exists to catch a hot path falling off a cliff (a lost
# SIMD dispatch, a serialized group commit), not scheduler jitter.
perf_smoke() {
  local tmp rc=1
  tmp=$(mktemp -d) || return 1
  mkdir -p "$tmp/new"
  while :; do  # Single-pass; break is the error exit.
    TCVS_BENCH_JSON_DIR="$tmp/new" ./build/bench/bench_crypto \
        --benchmark_min_time=0.05 > /dev/null || break
    TCVS_BENCH_JSON_DIR="$tmp/new" ./build/bench/bench_merkle_tree \
        --benchmark_min_time=0.05 > /dev/null || break
    TCVS_BENCH_JSON_DIR="$tmp/new" ./build/bench/bench_wal_commit \
        > /dev/null || break
    TCVS_BENCH_JSON_DIR="$tmp/new" ./build/bench/bench_protocol_overhead \
        > /dev/null || break
    python3 - "$tmp/new" <<'PYEOF' || break
import json, pathlib, sys
files = sorted(pathlib.Path(sys.argv[1]).glob("BENCH_*.json"))
assert len(files) == 4, [f.name for f in files]
tables = 0
for f in files:
    doc = json.loads(f.read_text())
    if doc.get("schema_version") == 1:
        assert doc["tables"] and all(t["headers"] and t["rows"] for t in doc["tables"]), f
        assert any("ops/sec" in t["headers"] for t in doc["tables"]), f
        tables += 1
    else:
        assert doc.get("benchmarks"), f
assert tables >= 2, "expected ops/sec tables from wal_commit + protocol_overhead"
print(f"perf: {len(files)} bench JSON files OK")
PYEOF
    python3 tools/bench_compare.py bench/baselines "$tmp/new" \
        --threshold 75 || break
    rc=0
    break
  done
  rm -rf "$tmp"
  return $rc
}

stage_perf() {
  run_stage perf cmake --preset default
  [ "${RESULT[perf]}" = FAIL ] && return
  run_stage perf cmake --build --preset default -j "$JOBS" \
      --target bench_crypto bench_merkle_tree bench_wal_commit \
               bench_protocol_overhead
  [ "${RESULT[perf]}" = FAIL ] && return
  run_stage perf perf_smoke
}

# Live observability smoke: start tcvsd, drive real commits/reads through
# tcvs, then assert `tcvs stats` reports non-zero metrics from the RPC,
# storage, Merkle-tree, and crypto layers, and that --log-json produced
# parseable JSON-lines on stderr.
stats_smoke() {
  local tmp port="" daemon rc=1
  tmp=$(mktemp -d) || return 1
  mkdir -p "$tmp/data"
  ./build/tools/tcvsd --port 0 --data-dir "$tmp/data" \
      --log-json --log-json-interval-ms 200 \
      > "$tmp/tcvsd.out" 2> "$tmp/tcvsd.err" &
  daemon=$!
  while :; do  # Single-pass; break is the error exit.
    for _ in $(seq 1 100); do
      port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
             "$tmp/tcvsd.out")
      [ -n "$port" ] && break
      kill -0 "$daemon" 2>/dev/null || break
      sleep 0.2
    done
    if [ -z "$port" ]; then
      echo "stats: tcvsd never reported its port" >&2
      cat "$tmp/tcvsd.out" "$tmp/tcvsd.err" >&2
      break
    fi
    local cli="./build/tools/tcvs --server 127.0.0.1:$port"
    $cli --user 1 --state "$tmp/state" commit a/hello 0 "hello world" || break
    $cli --user 1 --state "$tmp/state" cat a/hello > /dev/null || break
    $cli --user 1 --state "$tmp/state" ls a/ > /dev/null || break
    $cli stats > "$tmp/stats.txt" || break
    local metric missing=""
    for metric in tcvs_rpc_serve_requests_total \
                  tcvs_rpc_serve_transact_requests_total \
                  tcvs_rpc_serve_stats_requests_total \
                  tcvs_rpc_serve_reply_cache_insertions_total \
                  tcvs_storage_wal_appends_total \
                  tcvs_mtree_tree_upsert_latency_us_count \
                  tcvs_cvs_server_transactions_total \
                  tcvs_crypto_sha256_hashes_total; do
      grep -E "^${metric} [1-9]" "$tmp/stats.txt" > /dev/null || missing="$metric"
    done
    if [ -n "$missing" ]; then
      echo "stats: metric $missing missing or zero in tcvs stats output:" >&2
      cat "$tmp/stats.txt" >&2
      break
    fi
    $cli shutdown > /dev/null || break
    wait "$daemon" || break
    daemon=""
    # Every --log-json line must be a JSON object with the three sections.
    python3 - "$tmp/tcvsd.err" <<'PYEOF' || break
import json, sys
lines = [l for l in open(sys.argv[1]) if l.startswith("{")]
assert lines, "no JSON lines on tcvsd stderr"
for line in lines:
    obj = json.loads(line)
    assert "ts_ms" in obj and "metrics" in obj, obj.keys()
    for section in ("counters", "gauges", "histograms"):
        assert section in obj["metrics"], section
assert lines and json.loads(lines[-1])["metrics"]["counters"].get(
    "rpc.serve.requests_total", 0) > 0, "final JSON line has zero requests"
print(f"stats: {len(lines)} JSON log lines OK")
PYEOF
    rc=0
    break
  done
  [ -n "${daemon:-}" ] && kill "$daemon" 2>/dev/null
  rm -rf "$tmp"
  return $rc
}

# HTTP observability-plane smoke: boot tcvsd with the admin plane and
# slow-op capture armed, drive real verified traffic, then hold the whole
# observability contract at once: every endpoint answers, /metrics passes
# the strict validator with a joinable exemplar, a slow-op record with a
# nonzero cost vector lands on stderr, and `tcvs top` renders per-method
# rows from /varz.
obs_smoke() {
  local tmp port="" aport="" daemon rc=1
  tmp=$(mktemp -d) || return 1
  mkdir -p "$tmp/data"
  ./build/tools/tcvsd --port 0 --admin-port 0 --data-dir "$tmp/data" \
      --trace --slow-op-us 1 \
      > "$tmp/tcvsd.out" 2> "$tmp/tcvsd.err" &
  daemon=$!
  while :; do  # Single-pass; break is the error exit.
    python3 tools/promcheck.py --self-test || break
    for _ in $(seq 1 100); do
      port=$(sed -n 's/^tcvsd listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
             "$tmp/tcvsd.out")
      aport=$(sed -n 's/^tcvsd admin listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
              "$tmp/tcvsd.out")
      [ -n "$port" ] && [ -n "$aport" ] && break
      kill -0 "$daemon" 2>/dev/null || break
      sleep 0.2
    done
    if [ -z "$port" ] || [ -z "$aport" ]; then
      echo "obs: tcvsd never reported its ports" >&2
      cat "$tmp/tcvsd.out" "$tmp/tcvsd.err" >&2
      break
    fi
    local cli="./build/tools/tcvs --server 127.0.0.1:$port"
    $cli --user 1 --state "$tmp/state" commit a/hello 0 "hello world" || break
    $cli --user 1 --state "$tmp/state" commit a/bye 0 "goodbye" || break
    $cli --user 1 --state "$tmp/state" cat a/hello > /dev/null || break
    $cli --user 1 --state "$tmp/state" ls a/ > /dev/null || break
    # Fetch every endpoint. /metrics must precede /tracez: exemplar trace
    # ids must join the ring, and /tracez DRAINS it.
    python3 - "$aport" "$tmp" <<'PYEOF' || break
import json, sys, urllib.request
aport, tmp = sys.argv[1], sys.argv[2]
def get(path):
    with urllib.request.urlopen(f"http://127.0.0.1:{aport}{path}",
                                timeout=10) as r:
        return r.read().decode()
metrics = get("/metrics")
open(f"{tmp}/metrics.txt", "w").write(metrics)
varz = json.loads(get("/varz"))
assert varz["counters"].get("rpc.serve.transact.requests_total", 0) >= 2, \
    "varz counters missed the served transactions"
assert varz["counters"].get("rpc.serve.transact.cost.hashes_total", 0) > 0, \
    "per-method cost aggregation is zero"
assert "ok" in get("/healthz")
assert "ready" in get("/readyz")
statusz = json.loads(get("/statusz"))
assert statusz["endpoints"], "statusz lists no endpoints"
tracez = json.loads(get("/tracez"))
open(f"{tmp}/tracez.json", "w").write(json.dumps(tracez))
get("/eventsz")  # Clean run: must answer, may be empty.
assert "/metrics" in get("/"), "index page lists no endpoints"
# The p99-to-trace pivot: an exemplar trace id must join the span ring.
ex_ids = {m.split('"')[1] for m in
          [l.split("# {trace_id=")[1] for l in metrics.splitlines()
           if "# {trace_id=" in l]}
ring_ids = {e.get("args", {}).get("trace_id") for e in
            tracez.get("traceEvents", [])} - {None}
assert ex_ids, "no exemplars in /metrics"
assert ex_ids & ring_ids, f"no exemplar joins /tracez ({len(ex_ids)} ids)"
print(f"obs: endpoints OK, {len(ex_ids)} exemplar ids, "
      f"{len(ex_ids & ring_ids)} joinable")
PYEOF
    python3 tools/promcheck.py "$tmp/metrics.txt" || break
    # Slow-op capture: --slow-op-us 1 makes every RPC slow; a transact
    # record with a nonzero cost vector and a span subtree must be there.
    python3 - "$tmp/tcvsd.err" <<'PYEOF' || break
import json, sys
records = [json.loads(l) for l in open(sys.argv[1])
           if l.startswith('{"method"')]
assert records, "no slow-op records on tcvsd stderr"
tx = [r for r in records if r["method"] == "transact"]
assert tx, "no transact slow-op record"
r = tx[0]
assert r["latency_us"] > 0 and len(r["trace_id"]) == 16
assert r["cost"]["hashes"] > 0, r["cost"]
assert r["cost"]["vo_bytes_built"] > 0, r["cost"]
assert r["spans"], "slow-op record carries no span subtree"
print(f"obs: {len(records)} slow-op records OK")
PYEOF
    # `tcvs top` against the admin plane, with live traffic in the window.
    ( for i in 1 2 3 4 5; do
        $cli --user 1 --state "$tmp/state" commit a/hello "$i" "rev $i" \
            > /dev/null 2>&1
      done ) &
    local load=$!
    ./build/tools/tcvs top --admin "127.0.0.1:$aport" --interval-ms 800 \
        > "$tmp/top.txt" || { wait "$load"; break; }
    wait "$load"
    grep -q '^transact ' "$tmp/top.txt" || {
      echo "obs: tcvs top shows no transact row:" >&2
      cat "$tmp/top.txt" >&2
      break
    }
    $cli shutdown > /dev/null || break
    wait "$daemon" || break
    daemon=""
    # Scrape-overhead gate: the bench's ops/sec columns must hold against
    # the committed baseline.
    mkdir -p "$tmp/bench"
    TCVS_BENCH_JSON_DIR="$tmp/bench" ./build/bench/bench_admin_scrape \
        > /dev/null || break
    python3 tools/bench_compare.py bench/baselines "$tmp/bench" \
        --threshold 75 || break
    rc=0
    break
  done
  [ -n "${daemon:-}" ] && kill "$daemon" 2>/dev/null
  rm -rf "$tmp"
  return $rc
}

stage_obs() {
  run_stage obs cmake --preset default
  [ "${RESULT[obs]}" = FAIL ] && return
  run_stage obs cmake --build --preset default -j "$JOBS" \
      --target tcvs tcvsd bench_admin_scrape
  [ "${RESULT[obs]}" = FAIL ] && return
  run_stage obs obs_smoke
}

# Profiling-plane smoke: boot tcvsd with the always-on sampling profiler and
# drive concurrent verified commits THROUGH a /pprofz window — ITIMER_PROF
# counts CPU time, so the load must burn daemon CPU *during* the window or
# there is nothing to sample. Then hold the plane's whole contract at once:
# the folded profile parses and names the SHA-256 hash path, /lockz shows
# recorded waits including the serve loop's locks, the per-method
# queue/work/fsync decomposition sums to the latency histogram within 10%,
# `tcvs profile` round-trips the kProfile RPC, and bench_profiler_overhead
# holds its committed <=3% baseline.
prof_smoke() {
  local tmp port="" aport="" daemon rc=1
  tmp=$(mktemp -d) || return 1
  mkdir -p "$tmp/data"
  # High sampling rate for the smoke (the overhead budget is pinned at
  # 100 Hz by the bench; here we want enough samples from a short window).
  ./build/tools/tcvsd --port 0 --admin-port 0 --data-dir "$tmp/data" \
      --group-commit-window-us 200 --profile-hz 997 \
      > "$tmp/tcvsd.out" 2> "$tmp/tcvsd.err" &
  daemon=$!
  while :; do  # Single-pass; break is the error exit.
    for _ in $(seq 1 100); do
      port=$(sed -n 's/^tcvsd listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
             "$tmp/tcvsd.out")
      aport=$(sed -n 's/^tcvsd admin listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
              "$tmp/tcvsd.out")
      [ -n "$port" ] && [ -n "$aport" ] && break
      kill -0 "$daemon" 2>/dev/null || break
      sleep 0.2
    done
    if [ -z "$port" ] || [ -z "$aport" ]; then
      echo "prof: tcvsd never reported its ports" >&2
      cat "$tmp/tcvsd.out" "$tmp/tcvsd.err" >&2
      break
    fi
    # Chunky payloads so each commit hashes real bytes server-side; four
    # concurrent committers so the serve execution lock actually contends.
    local payload u
    payload=$(head -c 65536 /dev/zero | tr '\0' 'x')
    local pids=()
    for u in 1 2 3 4; do
      ( rev=0
        for i in $(seq 1 250); do
          ./build/tools/tcvs --server "127.0.0.1:$port" --user "$u" \
              --state "$tmp/state$u" commit "load/f$u" "$rev" "$payload" \
              > /dev/null 2>&1 || exit 1
          rev=$((rev + 1))
        done ) &
      pids+=($!)
    done
    sleep 1  # Let the committers ramp before opening the window.
    python3 - "$aport" "$tmp" <<'PYEOF' || { wait "${pids[@]}" 2>/dev/null; break; }
import json, re, sys, urllib.request
aport, tmp = sys.argv[1], sys.argv[2]
def get(path, timeout=45):
    with urllib.request.urlopen(f"http://127.0.0.1:{aport}{path}",
                                timeout=timeout) as r:
        return r.read().decode()
# A 3 s window riding the always-on profiler, with the load running inside.
folded = get("/pprofz?seconds=3&fmt=folded")
open(f"{tmp}/folded.txt", "w").write(folded)
lines = [l for l in folded.splitlines() if l]
assert lines, "profile window captured no samples (was the load running?)"
for l in lines:
    assert re.fullmatch(r".+ \d+", l), f"bad folded line: {l!r}"
total = sum(int(l.rsplit(" ", 1)[1]) for l in lines)
assert total >= 5, f"too few samples across the window: {total}"
hot = [l for l in lines
       if "Sha256" in l or "Winternitz" in l or "Verify" in l or "Sign" in l]
assert hot, "no SHA-256/signature frames in the profile:\n" + "\n".join(
    lines[:40])
# JSON rendering of a second, shorter window.
top = json.loads(get("/pprofz?seconds=1&fmt=json"))
assert top["hz"] > 0 and "top" in top, top.keys()
# /lockz: the contention profile records waits — the serve loop's named
# locks must show up in /varz as lock.* histograms with recorded counts.
lockz = json.loads(get("/lockz"))
assert "sites" in lockz and "dropped" in lockz, lockz.keys()
waited = [s for s in lockz["sites"] if s["total_us"] > 0]
assert waited, "no wait sites in /lockz under concurrent load"
varz = json.loads(get("/varz"))
hists = varz["histograms"]
execute = hists.get("lock.rpc.serve.execute.contention_us", {})
assert execute.get("count", 0) > 0, \
    "serve execution lock shows no contention under 4 concurrent clients"
assert hists.get("lock.rpc.serve.queue.contention_us", {}).get(
    "count", 0) > 0, "worker queue waits not recorded"
# Queue-delay attribution: per-method queue + work + fsync must equal the
# served latency histogram's sum within 10% (clamping is the only slack).
c = varz["counters"]
lat = hists["rpc.serve.transact.latency_us"]
parts = (c.get("rpc.serve.transact.cost.queue_us_total", 0)
         + c.get("rpc.serve.transact.cost.work_us_total", 0)
         + c.get("rpc.serve.transact.cost.wal_fsync_wait_us_total", 0))
assert lat["sum"] > 0, "no transact latency recorded"
drift = abs(parts - lat["sum"]) / lat["sum"]
assert drift <= 0.10, (
    f"queue+work+fsync={parts} vs latency sum={lat['sum']}: "
    f"{100 * drift:.1f}% apart")
print(f"prof: {total} samples, {len(hot)} hot hash/sig stacks, "
      f"{len(waited)} wait sites, decomposition within {100 * drift:.2f}%")
PYEOF
    # The kProfile RPC end to end, while the committers are still running.
    ./build/tools/tcvs --server "127.0.0.1:$port" profile --seconds 1 \
        --hz 100 > "$tmp/rpc_folded.txt" 2> /dev/null || {
      echo "prof: tcvs profile failed" >&2
      wait "${pids[@]}" 2>/dev/null
      break
    }
    local pid load_failed=0
    for pid in "${pids[@]}"; do
      wait "$pid" || load_failed=1
    done
    if [ "$load_failed" != 0 ]; then
      echo "prof: a load client failed" >&2
      break
    fi
    ./build/tools/tcvs --server "127.0.0.1:$port" shutdown > /dev/null || break
    wait "$daemon" || break
    daemon=""
    # Overhead gate: the bench's ops/sec + MB/s columns must hold against
    # the committed baseline, and the measured 100 Hz delta stays <= 3%.
    mkdir -p "$tmp/bench"
    TCVS_BENCH_JSON_DIR="$tmp/bench" ./build/bench/bench_profiler_overhead \
        > /dev/null || break
    python3 tools/bench_compare.py bench/baselines "$tmp/bench" \
        --threshold 75 || break
    python3 - "$tmp/bench/BENCH_bench_profiler_overhead.json" <<'PYEOF' || break
import json, sys
doc = json.load(open(sys.argv[1]))
for table in doc["tables"]:
    d = dict(zip(table["headers"], table["rows"][-1]))
    delta = float(d["delta_pct"])
    assert delta <= 3.0, f"{table['title']}: profiler overhead {delta}% > 3%"
print("prof: overhead within the 3% budget")
PYEOF
    rc=0
    break
  done
  [ -n "${daemon:-}" ] && kill "$daemon" 2>/dev/null
  rm -rf "$tmp"
  return $rc
}

stage_prof() {
  run_stage prof cmake --preset default
  [ "${RESULT[prof]}" = FAIL ] && return
  run_stage prof cmake --build --preset default -j "$JOBS" \
      --target tcvs tcvsd bench_profiler_overhead
  [ "${RESULT[prof]}" = FAIL ] && return
  run_stage prof prof_smoke
}

# Seeded Byzantine campaign smoke: a short randomized campaign must exit 0
# (every invariant held: n·k detection bound, digest-pair fork evidence,
# no false alarms on the honest arm) and the same seed run twice must
# produce byte-identical JSON reports — seed-exact reproducibility is load-
# bearing for the checked-in regression fixtures. TCVS_SOAK_ROUNDS sets the
# scenario budget (default 40; nightly runs use hundreds).
soak_smoke() {  # soak_smoke <build-dir>
  local bindir="$1" tmp rc=1 rounds="${TCVS_SOAK_ROUNDS:-40}"
  tmp=$(mktemp -d) || return 1
  while :; do  # Single-pass; break is the error exit.
    "$bindir/tools/tcvs_campaign" --seed 42 --scenarios "$rounds" \
        > "$tmp/run1.json" || { cat "$tmp/run1.json" >&2; break; }
    "$bindir/tools/tcvs_campaign" --seed 42 --scenarios "$rounds" \
        > "$tmp/run2.json" || { cat "$tmp/run2.json" >&2; break; }
    if ! cmp -s "$tmp/run1.json" "$tmp/run2.json"; then
      echo "soak: same-seed campaign reports differ under $bindir" \
           "(determinism broken)" >&2
      diff "$tmp/run1.json" "$tmp/run2.json" | head -20 >&2
      break
    fi
    echo "soak: $rounds scenarios OK under $bindir," \
         "same-seed reports byte-identical"
    rc=0
    break
  done
  rm -rf "$tmp"
  return $rc
}

stage_soak() {
  local preset bindir
  for preset in default asan tsan; do
    case "$preset" in
      default) bindir=build ;;
      *)       bindir=build-$preset ;;
    esac
    run_stage soak cmake --preset "$preset"
    [ "${RESULT[soak]}" = FAIL ] && return
    run_stage soak cmake --build --preset "$preset" -j "$JOBS" \
        --target tcvs_campaign_tool
    [ "${RESULT[soak]}" = FAIL ] && return
    run_stage soak soak_smoke "$bindir"
    [ "${RESULT[soak]}" = FAIL ] && return
  done
}

stage_stats() {
  run_stage stats cmake --preset default
  [ "${RESULT[stats]}" = FAIL ] && return
  run_stage stats cmake --build --preset default -j "$JOBS" --target tcvs tcvsd
  [ "${RESULT[stats]}" = FAIL ] && return
  run_stage stats stats_smoke
}

STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(default asan tsan tidy stats obs prof bench perf soak lint taint)
for stage in "${STAGES[@]}"; do
  case "$stage" in
    default) stage_default ;;
    asan)    stage_asan ;;
    tsan)    stage_tsan ;;
    tidy)    stage_tidy ;;
    stats)   stage_stats ;;
    obs)     stage_obs ;;
    prof)    stage_prof ;;
    bench)   stage_bench ;;
    perf)    stage_perf ;;
    soak)    stage_soak ;;
    lint)    stage_lint ;;
    taint)   stage_taint ;;
    *) echo "check.sh: unknown stage '$stage' (default asan tsan tidy stats obs prof bench perf soak lint taint)" >&2
       exit 2 ;;
  esac
done

note "summary"
for stage in "${STAGES[@]}"; do
  printf '  %-8s %s\n' "$stage" "${RESULT[$stage]:-SKIP}"
done
exit $FAILED
