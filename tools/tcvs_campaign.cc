// tcvs_campaign — seeded Byzantine soak campaigns against the detection
// protocols.
//
// Generates `--scenarios` randomized adversarial schedules (composed fork /
// rollback / replay / equivocation / selective-drop / delay steps), runs
// each through a full simulated scenario, and asserts the harness
// invariants: the n·k detection bound, digest-pair fork evidence on every
// detection, and no false alarms on the honest control arm. Schedules that
// trip an invariant are delta-debug minimized (unless --no-minimize) and,
// with --fixture-dir, persisted as replayable regression fixtures.
//
// The JSON report on stdout is deterministic: the same --seed and options
// produce byte-identical output (run it twice and `cmp` — check.sh soak
// does exactly that).
//
// A second mode pins regression fixtures: `--pin SEED --fixture-dir DIR`
// generates the seed's schedule, minimizes it while preserving its outcome
// (detection, or an escape if the run had one), and writes the fixture —
// how the checked-in tests/campaign_fixtures/ corpus was produced.
//
// Usage: tcvs_campaign [--seed N] [--scenarios N] [--honest-pct P]
//                      [--protocol NAME] [--no-minimize] [--fixture-dir DIR]
//        tcvs_campaign --pin SEED --fixture-dir DIR [--name SLUG]
//                      [--protocol NAME]
// Exit codes: 0 all invariants held, 1 violations found, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/campaign.h"
#include "util/bytes.h"

using namespace tcvs;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: tcvs_campaign [--seed N] [--scenarios N] [--honest-pct P]\n"
      "                     [--protocol ProtocolII|ProtocolIIUntagged]\n"
      "                     [--no-minimize] [--fixture-dir DIR]\n");
}

bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

namespace {

bool WriteFixture(const campaign::CampaignFixture& fixture,
                  const std::string& dir) {
  const std::string path = dir + "/" + fixture.name + ".fixture";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "tcvs_campaign: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string text = fixture.ToText();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "tcvs_campaign: wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  campaign::CampaignOptions options;
  std::string fixture_dir;
  std::string pin_name;
  uint64_t pin_seed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    uint64_t v = 0;
    if (arg == "--seed") {
      if (!ParseU64(next(), &v) || v == 0) {
        std::fprintf(stderr, "tcvs_campaign: --seed needs a nonzero integer\n");
        return 2;
      }
      options.seed = v;
    } else if (arg == "--scenarios") {
      if (!ParseU64(next(), &v) || v == 0) {
        std::fprintf(stderr,
                     "tcvs_campaign: --scenarios needs a positive integer\n");
        return 2;
      }
      options.scenarios = static_cast<uint32_t>(v);
    } else if (arg == "--honest-pct") {
      if (!ParseU64(next(), &v) || v > 100) {
        std::fprintf(stderr, "tcvs_campaign: --honest-pct needs 0..100\n");
        return 2;
      }
      options.honest_fraction = static_cast<double>(v) / 100.0;
    } else if (arg == "--protocol") {
      const char* name = next();
      if (name != nullptr && std::strcmp(name, "ProtocolII") == 0) {
        options.protocol = core::ProtocolKind::kProtocolII;
      } else if (name != nullptr &&
                 std::strcmp(name, "ProtocolIIUntagged") == 0) {
        options.protocol = core::ProtocolKind::kProtocolIINaive;
      } else {
        std::fprintf(stderr,
                     "tcvs_campaign: --protocol must be ProtocolII or "
                     "ProtocolIIUntagged\n");
        return 2;
      }
    } else if (arg == "--pin") {
      if (!ParseU64(next(), &v) || v == 0) {
        std::fprintf(stderr, "tcvs_campaign: --pin needs a nonzero seed\n");
        return 2;
      }
      pin_seed = v;
    } else if (arg == "--name") {
      const char* name = next();
      if (name == nullptr) {
        std::fprintf(stderr, "tcvs_campaign: --name needs a slug\n");
        return 2;
      }
      pin_name = name;
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--minimize") {
      options.minimize = true;
    } else if (arg == "--fixture-dir") {
      const char* dir = next();
      if (dir == nullptr) {
        std::fprintf(stderr, "tcvs_campaign: --fixture-dir needs a path\n");
        return 2;
      }
      fixture_dir = dir;
    } else {
      Usage();
      return 2;
    }
  }

  if (pin_seed != 0) {
    if (fixture_dir.empty()) {
      std::fprintf(stderr, "tcvs_campaign: --pin needs --fixture-dir\n");
      return 2;
    }
    campaign::CampaignSchedule schedule = campaign::GenerateSchedule(pin_seed);
    schedule.protocol = options.protocol;
    campaign::ScheduleOutcome outcome = campaign::RunSchedule(schedule);
    campaign::ScheduleProperty property;
    if (outcome.escaped) {
      property = campaign::ScheduleProperty::kEscaped;
    } else if (outcome.detected) {
      property = campaign::ScheduleProperty::kDetected;
    } else {
      std::fprintf(stderr,
                   "tcvs_campaign: seed %llu neither detects nor escapes; "
                   "nothing to pin\n",
                   static_cast<unsigned long long>(pin_seed));
      return 1;
    }
    uint32_t runs = 0;
    campaign::CampaignFixture fixture;
    fixture.schedule = campaign::MinimizeSchedule(schedule, property, &runs);
    fixture.name = pin_name.empty()
                       ? "pinned-seed-" + std::to_string(pin_seed)
                       : pin_name;
    campaign::ScheduleOutcome replay = campaign::RunSchedule(fixture.schedule);
    fixture.expect_detected = replay.detected;
    fixture.expect_escape = replay.escaped;
    std::fprintf(stderr, "tcvs_campaign: minimized in %u runs: %s\n", runs,
                 fixture.schedule.Describe().c_str());
    return WriteFixture(fixture, fixture_dir) ? 0 : 1;
  }

  campaign::CampaignReport report = campaign::RunCampaign(options);
  std::printf("%s\n", report.JsonFormat().c_str());

  if (!fixture_dir.empty()) {
    for (size_t i = 0; i < report.violations.size(); ++i) {
      campaign::CampaignFixture fixture;
      fixture.name = "violation-seed-" +
                     std::to_string(report.violations[i].schedule.seed);
      fixture.schedule = report.violations[i].minimized;
      campaign::ScheduleOutcome replay =
          campaign::RunSchedule(fixture.schedule);
      fixture.expect_detected = replay.detected;
      fixture.expect_escape = replay.escaped;
      WriteFixture(fixture, fixture_dir);
    }
  }

  return report.ok() ? 0 : 1;
}
