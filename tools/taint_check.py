#!/usr/bin/env python3
"""Trust-boundary taint checker for trusted-cvs.

Enforces the verify-before-use discipline of src/util/untrusted.h over the
whole tree: server-originated bytes enter quarantine (`Tainted<T>`), only a
registered verifier token can endorse them out, and trusted sinks (register
folds, verified-cache writes, WAL apply) must never consume quarantined data.

Two engines, both reporting `file:line: [rule] message`:

  pure-python (always runs; authoritative for CI)
    R1 unregistered-verifier  TCVS_ENDORSE whose verifier argument is not a
                              struct registered with TCVS_TAINT_VERIFIER —
                              a counterfeit token that would not compile
                              today but signals someone fighting the type
                              layer (and catches not-yet-compiled code).
    R2 unendorsed-sink-flow   a value borrowed from quarantine via
                              `.untrusted()` (or a copy of one — laundering)
                              reaching a TCVS_TRUSTED_SINK function before
                              any TCVS_ENDORSE re-binding.
    R3 raw-escape             `.raw(` outside src/util/untrusted.h: the
                              wrapper's own escape hatch used to sidestep
                              endorsement.

  libclang AST (best effort; SKIPs with a notice when python libclang
  bindings or build/compile_commands.json are unavailable — gcc-only
  containers still get the pure-python engine)
    walks every TU in the compilation database, resolves the
    [[clang::annotate("tcvs::...")]] attributes, and flags calls to
    `tcvs::trusted_sink` functions whose arguments reference locals
    initialized from `tcvs::untrusted_source` calls or `.untrusted()`
    borrows with no interposed `tcvs::endorser` call.

Modes:
  python3 tools/taint_check.py              # scan src/ and tools/
  python3 tools/taint_check.py --self-test  # fixtures must ALL be flagged,
                                            # the real tree must be CLEAN
The registry of verifiers/sources/endorsers/sinks comes from
tools/taint_registry.py (greps the annotations out of src/), so this file
hard-codes no names.
"""

import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import taint_registry  # noqa: E402

REPO = taint_registry.REPO
SCAN_DIRS = ["src", "tools"]
FIXTURE_DIR = REPO / "tests" / "taint_fixtures"
RAW_ALLOWED = Path("src/util/untrusted.h")

ENDORSE_CALL_RE = re.compile(r"\bTCVS_ENDORSE\s*\(")
UNTRUSTED_BORROW_RE = re.compile(
    r"[&\s]?(?:const\s+)?[\w:<>,\s&*]*?[&\s](\w+)\s*=\s*[^;=]*?\.\s*untrusted\s*\(\)"
)
RAW_ESCAPE_RE = re.compile(r"\.\s*raw\s*\(")


def strip_comments(text):
    """Blanks // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:end]))
            i = end
        elif text[i] == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i : j + 1])
            i = j + 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def balanced_args(text, open_paren):
    """Argument text of the call whose '(' is at `open_paren` (or None)."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] in "([{":
            depth += 1
        elif text[i] in ")]}":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i]
    return None


def split_top_level(args):
    """Splits an argument string on top-level commas."""
    parts, depth, start = [], 0, 0
    for i, c in enumerate(args):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(args[start:i])
            start = i + 1
    parts.append(args[start:])
    return parts


def lineno_at(text, offset):
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Pure-python engine
# ---------------------------------------------------------------------------

def check_file_python(path, rel, text, registry, findings):
    code = strip_comments(text)

    # R1: every TCVS_ENDORSE names a registered verifier token.
    for m in ENDORSE_CALL_RE.finditer(code):
        line_start = code.rfind("\n", 0, m.start()) + 1
        if code[line_start:m.start()].lstrip().startswith("#"):
            continue  # The macro's own #define in untrusted.h.
        args = balanced_args(code, m.end() - 1)
        if args is None:
            continue
        parts = split_top_level(args)
        if len(parts) < 2:
            findings.append((rel, lineno_at(code, m.start()),
                             "unregistered-verifier",
                             "TCVS_ENDORSE needs (value, verifier)"))
            continue
        ids = re.findall(r"[A-Za-z_]\w*", parts[1].split("(")[0].split("{")[0])
        verifier = ids[-1] if ids else "<none>"
        if verifier not in registry["verifiers"]:
            findings.append(
                (rel, lineno_at(code, m.start()), "unregistered-verifier",
                 f'endorse with "{verifier}", which carries no '
                 "TCVS_TAINT_VERIFIER registration — only verification "
                 "tokens may unlock quarantine"))

    # R3: the .raw() escape hatch never appears outside the wrapper itself.
    if rel != RAW_ALLOWED:
        for m in RAW_ESCAPE_RE.finditer(code):
            findings.append(
                (rel, lineno_at(code, m.start()), "raw-escape",
                 "Tainted<T>::raw() outside util/untrusted.h bypasses "
                 "endorsement; verify and TCVS_ENDORSE instead"))

    # R2: quarantine borrows (and their copies) must not reach trusted
    # sinks. Function-scoped: the tainted set resets when the brace depth
    # returns to file level, so borrows cannot leak across functions.
    sink_names = registry["sinks"]
    if not sink_names:
        return
    sink_call_re = re.compile(
        r"(?:\b[\w>]+(?:\.|->)|\b(?:\w+::)*)(%s)\s*\(" %
        "|".join(re.escape(s) for s in sink_names))
    tainted = set()
    depth = 0
    offset = 0
    for line in code.split("\n"):
        lineno = lineno_at(code, offset)

        # A column-0 identifier opens a new top-level declaration (functions
        # are never nested in this codebase, and namespace bodies are not
        # indented), so borrows from the previous function are out of scope.
        is_decl_line = bool(re.match(r"[A-Za-z_~]", line))
        if is_decl_line:
            tainted.clear()

        # Borrows taint; TCVS_ENDORSE re-binding cleans the assigned name.
        em = re.search(r"\b(\w+)\s*=\s*TCVS_ENDORSE\b", line)
        if em:
            tainted.discard(em.group(1))
        else:
            bm = UNTRUSTED_BORROW_RE.search(" " + line)
            if bm:
                tainted.add(bm.group(1))
            else:
                # One-level copy propagation: laundering a borrow through a
                # fresh variable keeps the taint. Member-access LHS
                # (`event.ctr = reply.ctr`) does not taint the member name.
                cm = re.search(r"(?<![.\w>])(\w+)\s*(?:=|\()\s*(\w+)\s*[;,)\.]",
                               line)
                if cm and cm.group(2) in tainted:
                    tainted.add(cm.group(1))

        for sm in sink_call_re.finditer(line):
            if is_decl_line:
                continue  # The sink's own definition, not a call.
            args = balanced_args(code, offset + sm.end() - 1)
            if args is None:
                args = line[sm.end():]
            # Only base identifiers count: `verified.ctr` references the
            # endorsed `verified`, not some variable named `ctr`.
            base = re.sub(r"(?:\.|->)\s*[A-Za-z_]\w*", "", args)
            arg_ids = set(re.findall(r"[A-Za-z_]\w*", base))
            bad = sorted(arg_ids & tainted)
            if bad or ".untrusted(" in args.replace(" ", ""):
                via = (f"quarantine-borrowed value(s) {', '.join(bad)}"
                       if bad else "a direct .untrusted() borrow")
                findings.append(
                    (rel, lineno, "unendorsed-sink-flow",
                     f"trusted sink {sm.group(1)}() consumes {via}; endorse "
                     "with TCVS_ENDORSE after verification first"))

        depth += line.count("{") - line.count("}")
        if depth <= 0:
            depth = 0
            tainted.clear()
        offset += len(line) + 1


def run_python_engine(paths, registry):
    findings = []
    for path in paths:
        rel = path.relative_to(REPO)
        check_file_python(path, rel, path.read_text(), registry, findings)
    return findings


# ---------------------------------------------------------------------------
# libclang AST engine (best effort — SKIPs when unavailable)
# ---------------------------------------------------------------------------

ANNOTATION_ROLES = {
    "tcvs::untrusted_source": "source",
    "tcvs::endorser": "endorser",
    "tcvs::trusted_sink": "sink",
}


def _decl_role(cursor, ci):
    for child in cursor.get_children():
        if child.kind == ci.CursorKind.ANNOTATE_ATTR:
            role = ANNOTATION_ROLES.get(child.spelling)
            if role:
                return role
    return None


def _check_function_ast(fn, ci, rel, findings):
    """Intra-procedural: locals fed by sources/borrows must pass through an
    endorser before any sink call argument references them."""
    tainted = set()
    for cursor in fn.walk_preorder():
        if cursor.kind == ci.CursorKind.VAR_DECL:
            init_text = " ".join(t.spelling for t in cursor.get_tokens())
            if ".untrusted (" in init_text or ". untrusted (" in init_text \
                    or "untrusted ( )" in init_text:
                tainted.add(cursor.spelling)
            if "TCVS_ENDORSE" in init_text:
                tainted.discard(cursor.spelling)
        elif cursor.kind == ci.CursorKind.CALL_EXPR:
            ref = cursor.referenced
            if ref is None:
                continue
            role = _decl_role(ref, ci)
            if role != "sink":
                continue
            arg_ids = set()
            for arg in cursor.get_arguments():
                for tok in arg.get_tokens():
                    arg_ids.add(tok.spelling)
            bad = sorted(arg_ids & tainted)
            if bad:
                loc = cursor.location
                findings.append(
                    (rel, loc.line, "unendorsed-sink-flow",
                     f"[ast] trusted sink {ref.spelling}() consumes "
                     f"quarantine-borrowed {', '.join(bad)}"))


def run_clang_engine(registry):
    """Returns (findings, note). findings is None when the engine SKIPs."""
    try:
        import clang.cindex as ci
    except ImportError:
        return None, "libclang python bindings not importable"
    ccdb_path = REPO / "build" / "compile_commands.json"
    if not ccdb_path.exists():
        return None, "build/compile_commands.json not found (configure with " \
                     "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
    try:
        index = ci.Index.create()
    except Exception as e:  # Bindings present but libclang.so missing.
        return None, f"libclang unavailable: {e}"

    findings = []
    entries = json.loads(ccdb_path.read_text())
    for entry in entries:
        src = Path(entry["file"])
        try:
            rel = src.resolve().relative_to(REPO)
        except ValueError:
            continue
        if rel.parts[0] not in SCAN_DIRS:
            continue
        args = [a for a in entry.get("command", "").split()[1:]
                if a != str(src) and not a.startswith("-o")]
        try:
            tu = index.parse(str(src), args=args)
        except ci.TranslationUnitLoadError:
            continue
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind in (ci.CursorKind.FUNCTION_DECL,
                               ci.CursorKind.CXX_METHOD) \
                    and cursor.is_definition() \
                    and cursor.location.file \
                    and Path(str(cursor.location.file)).resolve() == src.resolve():
                _check_function_ast(cursor, ci, rel, findings)
    return findings, f"{len(entries)} TU(s) walked"


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def tree_files():
    for d in SCAN_DIRS:
        root = REPO / d
        for path in sorted(root.rglob("*")):
            if path.suffix in (".h", ".cc") and path.is_file():
                yield path


def print_findings(findings):
    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")


def self_test(registry):
    """Every fixture expectation must be flagged; the tree must be clean."""
    failures = []
    fixtures = sorted(FIXTURE_DIR.glob("*.cc"))
    if not fixtures:
        print(f"taint_check.py: no fixtures under {FIXTURE_DIR}",
              file=sys.stderr)
        return 1
    for path in fixtures:
        rel = path.relative_to(REPO)
        text = path.read_text()
        expected = re.findall(r"//\s*taint-expect:\s*([\w-]+)", text)
        if not expected:
            failures.append(f"{rel}: fixture declares no taint-expect marker")
            continue
        findings = []
        check_file_python(path, rel, text, registry, findings)
        got_rules = [f[2] for f in findings]
        for rule in expected:
            if rule in got_rules:
                got_rules.remove(rule)  # Each marker needs its own finding.
            else:
                failures.append(
                    f"{rel}: expected a [{rule}] finding, engine reported "
                    f"{sorted(set(f[2] for f in findings)) or 'nothing'}")
    tree_findings = run_python_engine(list(tree_files()), registry)
    if tree_findings:
        failures.append(f"real tree not clean ({len(tree_findings)} finding(s)):")
        print_findings(tree_findings)
    for f in failures:
        print(f"taint_check.py: self-test: {f}", file=sys.stderr)
    if failures:
        return 1
    print(f"taint_check.py: self-test OK — {len(fixtures)} fixture(s) all "
          f"flagged, tree clean ({len(registry['verifiers'])} verifiers, "
          f"{len(registry['sinks'])} sinks)")
    return 0


def main(argv):
    registry = taint_registry.scan()
    if not registry["verifiers"] or not registry["sinks"]:
        print("taint_check.py: empty taint registry — annotations moved?",
              file=sys.stderr)
        return 1

    if "--self-test" in argv:
        return self_test(registry)

    paths = [Path(a).resolve() for a in argv if not a.startswith("-")]
    files = list(tree_files()) if not paths else [
        p for arg in paths
        for p in ([arg] if arg.is_file() else sorted(arg.rglob("*.cc")) +
                  sorted(arg.rglob("*.h")))
    ]
    findings = run_python_engine(files, registry)
    print_findings(findings)

    ast_findings, note = run_clang_engine(registry)
    if ast_findings is None:
        print(f"taint_check.py: libclang AST engine SKIPPED ({note}); "
              "pure-python engine is authoritative")
    else:
        print(f"taint_check.py: libclang AST engine ran ({note})")
        print_findings(ast_findings)
        findings += ast_findings

    if findings:
        print(f"taint_check.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"taint_check.py: OK — {len(files)} file(s) clean "
          f"({len(registry['verifiers'])} verifiers, "
          f"{len(registry['endorsers'])} endorsers, "
          f"{len(registry['sinks'])} sinks)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
