// tcvsd — the untrusted trusted-cvs repository server.
//
// Hosts a CVS repository over the authenticated Merkle B⁺-tree and answers
// framed RPC requests from `tcvs` clients. The daemon is the UNTRUSTED
// party: everything it returns is verified client-side, and clients'
// periodic sync-ups catch forks/replays this process could mount.
//
// Usage:
//   tcvsd [--port N] [--fanout F] [--data-dir DIR] [--no-fsync]
//         [--group-commit-window-us US] [--threads N]
//         [--log-json] [--log-json-interval-ms MS]
//         [--trace] [--trace-capacity N]
//         [--admin-port N] [--slow-op-us US]
//         [--profile-hz HZ] [--no-contention-profile]
//
// --threads sizes the serve loop's worker pool: N connections are answered
// concurrently (I/O in parallel, transaction execution serialized under the
// serve lock — see ARCHITECTURE.md "Concurrency model"). Defaults to the
// hardware concurrency, but never below 2 — group commit needs at least
// two in-flight commits before a single fsync can cover a batch.
//
// With --data-dir, the repository is durable: a write-ahead log captures
// every transaction before it executes and a snapshot is folded on clean
// shutdown, so a restarted daemon resumes with the identical root digest —
// clients verifying against their registers never notice. WAL appends
// fdatasync by default so acknowledged transactions survive power loss;
// --no-fsync trades that for page-cache-speed appends.
//
// --group-commit-window-us arms WAL group commit: the flush leader waits up
// to US microseconds for concurrent commits to stage before issuing one
// write+fsync covering the whole batch (see ARCHITECTURE.md "Hot paths &
// batching"). Durability is unchanged — every acknowledged commit was
// fsynced; the window only trades a bounded latency bump for fewer device
// syncs. Meaningless without --data-dir, and pointless with --no-fsync:
// when nothing syncs there is nothing to amortize (the window is ignored
// on the no-fsync path rather than adding latency for nothing).
//
// The TCVS_FAULTS environment variable arms fault-injection points in the
// daemon (see util/fault.h), e.g. TCVS_FAULTS="rpc.serve.crash=nth:3" —
// the harness for resilience tests against a real process.
//
// --log-json emits one JSON-lines metrics snapshot per interval (default
// 1000 ms) to stderr, plus a final line on shutdown — structured logging a
// collector can tail without scraping. Security audit events (signature
// failures, counter regressions, fork evidence — see util/audit.h) are
// appended as their own {"ts_ms":...,"audit_event":{...}} lines, each
// exactly once.
//
// --trace turns on span recording into the bounded in-process ring
// (`tcvs trace` drains it as Chrome trace-event JSON); --trace-capacity N
// sizes the ring and implies --trace. Trace-context propagation across RPC
// is always on regardless — it costs three integers per request.
//
// --admin-port N starts the HTTP observability plane on loopback port N
// (0 = ephemeral; the bound port is printed): /metrics, /varz, /healthz,
// /readyz, /statusz, /tracez, /eventsz — see ARCHITECTURE.md
// "Observability plane". /readyz goes 503 while the WAL cannot take
// writes, the worker pool is down, or fork evidence has been recorded.
//
// --slow-op-us US arms slow-op capture: any served RPC taking longer than
// US microseconds emits a JSON-lines record on stderr with its method,
// latency, trace id, span subtree, and per-request cost counters (hashes,
// bytes hashed, signature verifies, VO bytes, WAL appends/fsync waits,
// queue delay).
//
// --profile-hz HZ arms the always-on sampling CPU profiler at HZ samples
// per second of process CPU time (SIGPROF; see ARCHITECTURE.md "Profiling
// plane"). /pprofz and `tcvs profile` windows then ride the running
// profiler instead of starting their own. Overhead budget: <= 3% at 100 Hz
// (bench_profiler_overhead pins it).
//
// Lock-contention accounting (per-callsite wait sites in /lockz plus
// lock.<name>.contention_us histograms) is on by default and costs one
// uncontended try_lock on the fast path; --no-contention-profile turns it
// off.
//
// Prints the bound port on stdout (useful with --port 0 for an ephemeral
// port) and serves until a shutdown RPC arrives.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "cvs/trusted.h"
#include "net/http_admin.h"
#include "net/socket.h"
#include "rpc/remote.h"
#include "storage/durable.h"
#include "util/audit.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/profiler.h"

using namespace tcvs;

namespace {

long long WallClockMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Emits one JSON-lines metrics snapshot to stderr.
void EmitJsonMetrics() {
  std::string metrics =
      util::MetricsRegistry::Instance().Snapshot().JsonFormat();
  std::fprintf(stderr, "{\"ts_ms\":%lld,\"metrics\":%s}\n", WallClockMs(),
               metrics.c_str());
}

/// Emits every audit event past `last_seq` as its own JSON line and
/// returns the highest seq emitted, so each event is logged exactly once.
uint64_t EmitJsonAuditEvents(uint64_t last_seq) {
  for (const util::AuditEvent& e :
       util::AuditLog::Instance().SnapshotSince(last_seq)) {
    std::fprintf(stderr, "{\"ts_ms\":%lld,\"audit_event\":%s}\n", WallClockMs(),
                 e.JsonFormat().c_str());
    last_seq = e.seq;
  }
  return last_seq;
}

/// Background JSON-lines metrics logger (--log-json): one snapshot per
/// interval while serving, one final snapshot when stopped.
class JsonLogger {
 public:
  explicit JsonLogger(int interval_ms) : interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Run(); });
  }
  ~JsonLogger() { Stop(); }

  void Stop() {
    {
      util::MutexLock lock(&mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.SignalAll();
    thread_.join();
    // Final state, after the serve loop drained.
    EmitJsonMetrics();
    last_audit_seq_ = EmitJsonAuditEvents(last_audit_seq_);
  }

 private:
  void Run() {
    util::MutexLock lock(&mu_);
    while (!stopped_) {
      cv_.WaitFor(&mu_, interval_ms_);
      if (stopped_) break;
      EmitJsonMetrics();
      last_audit_seq_ = EmitJsonAuditEvents(last_audit_seq_);
    }
  }

  const int interval_ms_;
  util::Mutex mu_;
  util::CondVar cv_;
  bool stopped_ TCVS_GUARDED_BY(mu_) = false;
  // Touched only by the logger thread, then by Stop() after join(): the
  // join is the synchronization point, so no lock is needed.
  uint64_t last_audit_seq_ = 0;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7199;
  size_t fanout = 8;
  std::string data_dir;
  bool fsync = true;
  uint32_t group_commit_window_us = 0;
  bool log_json = false;
  int log_json_interval_ms = 1000;
  bool trace = false;
  uint64_t trace_capacity = 0;
  int admin_port = -1;  // -1 = admin plane off.
  int profile_hz = 0;   // 0 = always-on profiler off (windows still work).
  bool contention_profile = true;
  rpc::ServeOptions serve_options;
  const uint64_t start_us = util::MonotonicMicros();
  // Size the worker pool to the machine, but never below 2: with a single
  // worker there is never a second in-flight commit for group commit to
  // batch with (hardware_concurrency() can also legally return 0).
  const unsigned hw = std::thread::hardware_concurrency();
  serve_options.num_threads = static_cast<int>(hw > 2 ? hw : 2);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--fanout") == 0 && i + 1 < argc) {
      fanout = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      serve_options.num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-fsync") == 0) {
      fsync = false;
    } else if (std::strcmp(argv[i], "--fsync") == 0) {
      fsync = true;
    } else if (std::strcmp(argv[i], "--group-commit-window-us") == 0 &&
               i + 1 < argc) {
      group_commit_window_us = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--log-json") == 0) {
      log_json = true;
    } else if (std::strcmp(argv[i], "--log-json-interval-ms") == 0 &&
               i + 1 < argc) {
      log_json = true;
      log_json_interval_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--trace-capacity") == 0 && i + 1 < argc) {
      trace = true;  // Asking for a buffer size implies wanting the buffer.
      trace_capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--admin-port") == 0 && i + 1 < argc) {
      admin_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--slow-op-us") == 0 && i + 1 < argc) {
      serve_options.slow_op_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--profile-hz") == 0 && i + 1 < argc) {
      profile_hz = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--contention-profile") == 0) {
      contention_profile = true;
    } else if (std::strcmp(argv[i], "--no-contention-profile") == 0) {
      contention_profile = false;
    } else {
      std::fprintf(stderr,
                   "usage: tcvsd [--port N] [--fanout F] [--data-dir DIR] "
                   "[--no-fsync] [--group-commit-window-us US] [--threads N] "
                   "[--log-json] [--log-json-interval-ms MS] [--trace] "
                   "[--trace-capacity N] [--admin-port N] [--slow-op-us US] "
                   "[--profile-hz HZ] [--no-contention-profile]\n");
      return 2;
    }
  }
  if (serve_options.num_threads < 1) {
    std::fprintf(stderr, "tcvsd: --threads must be >= 1\n");
    return 2;
  }

  // Span recording is opt-in; context propagation itself is always on.
  if (trace) {
    util::MetricsRegistry::Instance().set_trace_enabled(true);
    if (trace_capacity != 0) {
      util::MetricsRegistry::Instance().set_trace_capacity(
          static_cast<size_t>(trace_capacity));
    }
  }

  // The profiling plane: contention accounting default-on, the sampling
  // CPU profiler only when asked (it owns SIGPROF + ITIMER_PROF).
  util::SetContentionProfilingEnabled(contention_profile);
  if (profile_hz != 0) {
    if (Status st = util::StartCpuProfiler(profile_hz); !st.ok()) {
      std::fprintf(stderr, "tcvsd: --profile-hz: %s\n",
                   st.ToString().c_str());
      return 2;
    }
  }

  // Cross-process fault injection for resilience tests (no-op when unset).
  if (Status st = util::FaultInjector::Instance().ArmFromEnv(); !st.ok()) {
    std::fprintf(stderr, "tcvsd: bad TCVS_FAULTS: %s\n",
                 st.ToString().c_str());
    return 2;
  }

  mtree::TreeParams params{fanout, fanout};
  std::unique_ptr<cvs::UntrustedServer> memory_server;
  std::unique_ptr<storage::DurableServer> durable_server;
  cvs::ServerApi* api = nullptr;
  if (data_dir.empty()) {
    memory_server = std::make_unique<cvs::UntrustedServer>(params);
    api = memory_server.get();
  } else {
    storage::DurableOptions durable_options;
    durable_options.fsync = fsync;
    durable_options.group_commit_window_us = group_commit_window_us;
    auto opened =
        storage::DurableServer::Open(data_dir, params, durable_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "tcvsd: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    durable_server = std::move(opened).ValueOrDie();
    api = durable_server.get();
    std::printf("tcvsd: recovered %llu transactions from %s\n",
                static_cast<unsigned long long>(
                    durable_server->server()->ctr()),
                data_dir.c_str());
  }

  auto listener = net::TcpListener::Bind(port);
  if (!listener.ok()) {
    std::fprintf(stderr, "tcvsd: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  std::printf("tcvsd listening on 127.0.0.1:%u\n", listener->port());
  std::fflush(stdout);

  // The HTTP observability plane (--admin-port). Readiness is the AND of:
  // the serve worker pool being up, the WAL (durable mode) taking writes,
  // and no fork evidence in the audit log — a forked server must stop
  // looking healthy to load balancers even though it still answers RPCs.
  std::unique_ptr<net::HttpAdminServer> admin_server;
  if (admin_port >= 0) {
    net::HttpAdminServer::Options admin_options;
    admin_options.port = static_cast<uint16_t>(admin_port);
    auto admin_or = net::HttpAdminServer::Start(admin_options);
    if (!admin_or.ok()) {
      std::fprintf(stderr, "tcvsd: admin plane: %s\n",
                   admin_or.status().ToString().c_str());
      return 1;
    }
    admin_server = std::move(admin_or).ValueOrDie();

    net::AdminEndpointOptions endpoints;
    endpoints.start_us = start_us;
    endpoints.build_info = "tcvsd (" __DATE__ ")";
    char config[256];
    std::snprintf(config, sizeof(config),
                  "port=%u fanout=%zu data_dir=%s fsync=%d "
                  "group_commit_window_us=%u threads=%d slow_op_us=%llu "
                  "profile_hz=%d contention_profile=%d",
                  listener->port(), fanout,
                  data_dir.empty() ? "(memory)" : data_dir.c_str(),
                  fsync ? 1 : 0, group_commit_window_us,
                  serve_options.num_threads,
                  static_cast<unsigned long long>(serve_options.slow_op_us),
                  profile_hz, contention_profile ? 1 : 0);
    endpoints.config_summary = config;
    endpoints.readiness.push_back(net::HealthCheck{
        "serve.workers", [] {
          if (util::MetricsRegistry::Instance()
                  .GetGauge("rpc.serve.workers")
                  ->value() >= 1) {
            return Status::OK();
          }
          return Status::Unavailable("worker pool not running");
        }});
    endpoints.readiness.push_back(net::HealthCheck{
        "fork.evidence", [] {
          const uint64_t forks = util::MetricsRegistry::Instance()
                                     .GetCounter("audit.forks_detected_total")
                                     ->value();
          if (forks == 0) return Status::OK();
          return Status::VerificationFailure(
              "fork evidence recorded (see /eventsz)");
        }});
    if (durable_server != nullptr) {
      storage::DurableServer* durable = durable_server.get();
      endpoints.readiness.push_back(net::HealthCheck{
          "wal", [durable] {
            if (durable->wal_ok()) return Status::OK();
            return Status::IOError("WAL not accepting writes");
          }});
    }
    net::RegisterStandardEndpoints(admin_server.get(), std::move(endpoints));
    std::printf("tcvsd admin listening on 127.0.0.1:%u\n",
                admin_server->port());
    std::fflush(stdout);
  }

  std::unique_ptr<JsonLogger> json_logger;
  if (log_json) {
    if (log_json_interval_ms < 1) log_json_interval_ms = 1;
    json_logger = std::make_unique<JsonLogger>(log_json_interval_ms);
  }

  Status st = rpc::Serve(&listener.ValueOrDie(), api, serve_options);
  if (admin_server != nullptr) admin_server->Stop();
  if (json_logger != nullptr) json_logger->Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "tcvsd: %s\n", st.ToString().c_str());
    return 1;
  }
  if (durable_server != nullptr) {
    Status cp = durable_server->Checkpoint();
    if (!cp.ok()) {
      std::fprintf(stderr, "tcvsd: checkpoint failed: %s\n",
                   cp.ToString().c_str());
      return 1;
    }
  }
  uint64_t served = durable_server != nullptr
                        ? durable_server->server()->ctr()
                        : memory_server->ctr();
  std::printf("tcvsd: shut down cleanly (%llu transactions total)\n",
              static_cast<unsigned long long>(served));
  return 0;
}
