#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json results and flag regressions.

Usage:
    tools/bench_compare.py BASE_DIR NEW_DIR [--threshold PCT] [--json]

Both directories hold the machine-readable bench output produced by running
the bench binaries with TCVS_BENCH_JSON_DIR set (see EXPERIMENTS.md). Two
schemas are understood, keyed off the file contents:

  * schema_version 1 (bench/json_out.h): {"bench", "schema_version": 1,
    "tables": [{"title", "headers", "rows"}]}. All cells are strings; rows
    are keyed by their non-numeric leading cells and numeric cells are
    compared column-by-column.
  * google-benchmark native JSON (bench/benchmark_json_main.h): entries in
    "benchmarks" are keyed by "name" and compared on cpu_time.

Direction is inferred from the column header (or gbench time semantics):
headers containing latency/time/us/ms/bytes/cost/overhead/rounds — and the
campaign-soak columns delay/escapes/violations — are lower-is-better;
throughput/rate/ops/per_sec/detected are higher-is-better; anything else is
reported as informational and never fails the comparison. A change
past --threshold percent (default 10) in the bad direction is a REGRESSION;
past it in the good direction is an IMPROVEMENT.

Exit code: 0 if no regression, 1 if any metric regressed, 2 on usage or
unreadable input. Benchmarks present in BASE but missing from NEW are
reported loudly (a silently dropped bench reads as "no regression" when it
really means "no data") but do not fail the run.
"""

import argparse
import json
import re
import sys
from pathlib import Path

# Campaign soak columns (BENCH_bench_campaign.json): detection delay,
# escapes, and invariant violations are all lower-is-better; a detected
# count is higher-is-better alongside the older "detections" spelling.
LOWER_BETTER_RE = re.compile(
    r"latency|time|_us\b|\(us\)|_ms\b|\(ms\)|\bus\b|\bms\b|bytes|cost|"
    r"overhead|round|cycles|allocs|delay|escape|violation",
    re.IGNORECASE,
)
# "/sec" must be spelled out: "/s\b" alone does not match "bytes/sec" or
# "ops/sec" (the \b lands inside "sec"), and since LOWER_BETTER_RE matches
# the "bytes" in "bytes/sec", a throughput column would otherwise be
# classified lower-is-better and a real regression would read as an
# improvement. HIGHER is checked first, so "/sec" wins over "bytes".
HIGHER_BETTER_RE = re.compile(
    r"throughput|rate|ops|per_sec|per sec|/sec\b|/s\b|qps|detections|"
    r"\bdetected\b",
    re.IGNORECASE,
)
NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?([eE][+-]?\d+)?$")


def direction(header):
    """Returns -1 (lower is better), +1 (higher is better), or 0 (skip)."""
    if HIGHER_BETTER_RE.search(header):
        return 1
    if LOWER_BETTER_RE.search(header):
        return -1
    return 0


def parse_number(cell):
    """Parses a table cell as a float, tolerating units glued to the number
    (e.g. "12.3us", "45%"). Returns None for non-numeric cells."""
    cell = cell.strip()
    if NUMBER_RE.match(cell):
        return float(cell)
    m = re.match(r"^(-?\d+(?:\.\d+)?)\s*[a-zA-Z%/]+$", cell)
    return float(m.group(1)) if m else None


def load_metrics(path):
    """Flattens one BENCH_*.json into {metric_key: (value, direction)}."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise ValueError(f"{path}: unreadable bench JSON: {e}")
    metrics = {}
    if isinstance(doc, dict) and doc.get("schema_version") == 1:
        for table in doc.get("tables", []):
            headers = table.get("headers", [])
            for row_index, row in enumerate(table.get("rows", [])):
                # The row key is every leading non-numeric cell (scenario
                # names, protocol labels); numeric cells are the metrics.
                # All-numeric rows fall back to their position.
                key_cells = []
                for cell in row:
                    if parse_number(cell) is None:
                        key_cells.append(cell)
                    else:
                        break
                row_key = "/".join(key_cells) or f"row{row_index}"
                for i, cell in enumerate(row):
                    value = parse_number(cell)
                    if value is None:
                        continue
                    header = headers[i] if i < len(headers) else f"col{i}"
                    name = f"{table.get('title', '?')}/{row_key}/{header}"
                    metrics[name] = (value, direction(header))
    elif isinstance(doc, dict) and "benchmarks" in doc:
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue  # Mean/median/stddev duplicate the iterations.
            name = entry.get("name")
            if name is None or "cpu_time" not in entry:
                continue
            metrics[f"{name}/cpu_time"] = (float(entry["cpu_time"]), -1)
    else:
        raise ValueError(f"{path}: neither schema_version 1 nor gbench JSON")
    return metrics


def self_test():
    """Direction/parsing invariants, run by check.sh's bench stage. Returns
    the number of failures (0 = pass)."""
    failures = 0

    def expect(cond, what):
        nonlocal failures
        if not cond:
            failures += 1
            print(f"bench_compare self-test FAIL: {what}", file=sys.stderr)

    higher = ["ops/sec", "bytes/sec", "ops_per_sec", "throughput",
              "rate (qps)", "items_per_second", "detections", "detected"]
    lower = ["latency_us", "wall_ms", "avg latency", "total bytes",
             "bytes/op", "vo_bytes", "cost", "rounds", "cpu_time",
             "detection delay", "escapes", "violations"]
    neutral = ["threads", "protocol", "commits", "fsyncs", "batch_factor"]
    for h in higher:
        expect(direction(h) == 1, f"'{h}' should be higher-is-better")
    for h in lower:
        expect(direction(h) == -1, f"'{h}' should be lower-is-better")
    for h in neutral:
        expect(direction(h) == 0, f"'{h}' should be informational")

    expect(parse_number("691.33") == 691.33, "plain float parses")
    expect(parse_number("12.3us") == 12.3, "glued unit parses")
    expect(parse_number("serial fsync") is None, "labels are not numbers")

    doc = {
        "bench": "self_test",
        "schema_version": 1,
        "tables": [{
            "title": "t",
            "headers": ["mode", "ops/sec", "bytes/sec", "wall_ms"],
            "rows": [["grouped", "100", "6400", "10"]],
        }],
    }
    import tempfile

    with tempfile.TemporaryDirectory() as d:
        p = Path(d) / "BENCH_self_test.json"
        p.write_text(json.dumps(doc))
        metrics = load_metrics(p)
        expect(metrics["t/grouped/ops/sec"] == (100.0, 1),
               "ops/sec loads higher-is-better")
        expect(metrics["t/grouped/bytes/sec"] == (6400.0, 1),
               "bytes/sec loads higher-is-better")
        expect(metrics["t/grouped/wall_ms"] == (10.0, -1),
               "wall_ms loads lower-is-better")

    if failures == 0:
        print("bench_compare: self-test passed")
    return failures


def main():
    ap = argparse.ArgumentParser(
        description="diff two BENCH_*.json directories for perf regressions"
    )
    ap.add_argument("base", type=Path, nargs="?", help="baseline results directory")
    ap.add_argument("new", type=Path, nargs="?", help="candidate results directory")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="percent change that counts as a regression (default 10)",
    )
    ap.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON lines"
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run direction/parsing invariants and exit (no directories needed)",
    )
    args = ap.parse_args()

    if args.self_test:
        return 1 if self_test() else 0

    if args.base is None or args.new is None:
        ap.print_usage(sys.stderr)
        return 2
    if not args.base.is_dir() or not args.new.is_dir():
        print(
            f"bench_compare: {args.base} and {args.new} must be directories",
            file=sys.stderr,
        )
        return 2

    base_files = {p.name: p for p in sorted(args.base.glob("BENCH_*.json"))}
    new_files = {p.name: p for p in sorted(args.new.glob("BENCH_*.json"))}
    if not base_files:
        print(f"bench_compare: no BENCH_*.json in {args.base}", file=sys.stderr)
        return 2

    rows = []  # (verdict, metric, base, new, pct)
    missing = sorted(set(base_files) - set(new_files))
    regressions = 0
    for name in sorted(base_files):
        if name not in new_files:
            continue
        try:
            base_metrics = load_metrics(base_files[name])
            new_metrics = load_metrics(new_files[name])
        except ValueError as e:
            print(f"bench_compare: {e}", file=sys.stderr)
            return 2
        for metric in sorted(set(base_metrics) - set(new_metrics)):
            missing.append(f"{name}:{metric}")
        for metric, (base_value, sense) in sorted(base_metrics.items()):
            if metric not in new_metrics:
                continue
            new_value = new_metrics[metric][0]
            if base_value == 0:
                pct = 0.0 if new_value == 0 else float("inf")
            else:
                pct = 100.0 * (new_value - base_value) / abs(base_value)
            if sense == 0:
                verdict = "info"
            elif sense * pct < -args.threshold:
                verdict = "REGRESSION"
                regressions += 1
            elif sense * pct > args.threshold:
                verdict = "improvement"
            else:
                verdict = "ok"
            rows.append((verdict, f"{name}:{metric}", base_value, new_value, pct))

    if args.json:
        for verdict, metric, base_value, new_value, pct in rows:
            print(
                json.dumps(
                    {
                        "metric": metric,
                        "base": base_value,
                        "new": new_value,
                        "pct_change": None if pct == float("inf") else pct,
                        "verdict": verdict,
                    }
                )
            )
    else:
        width = max((len(r[1]) for r in rows), default=10)
        for verdict, metric, base_value, new_value, pct in rows:
            if verdict == "ok" or (verdict == "info" and pct == 0):
                continue  # Within threshold / unchanged: noise, not signal.
            print(
                f"{verdict:<12} {metric:<{width}} "
                f"{base_value:>14g} -> {new_value:>14g} ({pct:+.1f}%)"
            )
        compared = len(rows)
        print(
            f"bench_compare: {compared} metrics compared, "
            f"{regressions} regression(s), threshold {args.threshold:g}%"
        )
    for m in missing:
        print(f"bench_compare: WARNING: {m} present in base but not in new",
              file=sys.stderr)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
