// tcvs_fsck — offline integrity check of a tcvsd data directory.
//
// Loads the snapshot, replays the write-ahead log, validates every tree
// invariant and digest, and prints the resulting root digest and counters.
// A truncated (torn) WAL tail is reported but is not an error — it is the
// expected artifact of a crash.
//
// Usage: tcvs_fsck DATA_DIR
// Exit codes: 0 healthy, 1 corrupt.

#include <cstdio>

#include "storage/durable.h"
#include "storage/wal.h"
#include "util/bytes.h"

using namespace tcvs;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: tcvs_fsck DATA_DIR\n");
    return 2;
  }
  const std::string dir = argv[1];

  bool truncated = false;
  auto wal = storage::ReadWal(dir + "/wal.log", &truncated);
  if (!wal.ok()) {
    std::fprintf(stderr, "tcvs_fsck: wal unreadable: %s\n",
                 wal.status().ToString().c_str());
    return 1;
  }
  std::printf("wal: %zu valid records%s\n", wal->size(),
              truncated ? " (torn tail dropped — crash artifact)" : "");

  auto server = storage::DurableServer::Open(dir, mtree::TreeParams{});
  if (!server.ok()) {
    std::fprintf(stderr, "tcvs_fsck: recovery failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  const auto& tree = (*server)->server()->tree();
  Status invariants = tree.CheckInvariants();
  if (!invariants.ok()) {
    std::fprintf(stderr, "tcvs_fsck: tree invariants violated: %s\n",
                 invariants.ToString().c_str());
    return 1;
  }

  std::printf("snapshot+wal recovery: OK\n");
  std::printf("files (incl. internal): %zu\n", tree.size());
  std::printf("tree height           : %zu\n", tree.height());
  std::printf("transactions (ctr)    : %llu\n",
              static_cast<unsigned long long>((*server)->server()->ctr()));
  std::printf("root digest           : %s\n",
              util::HexEncode(tree.root_digest()).c_str());
  std::printf("healthy\n");
  return 0;
}
