#!/usr/bin/env python3
"""Shared trust-boundary registry for taint_check.py and lint.py.

The single source of truth for the taint vocabulary is the C++ tree itself:

  * verifier tokens   — structs carrying `TCVS_TAINT_VERIFIER(Name);`
                        (src/util/untrusted.h): the only types Endorse()
                        accepts, so the only ways out of quarantine;
  * untrusted sources — declarations marked TCVS_UNTRUSTED_SOURCE
                        (src/util/taint_annotations.h): parsers of
                        server-originated bytes, returning Tainted<T>;
  * endorsers         — declarations marked TCVS_ENDORSER: verification
                        functions whose success justifies unwrapping;
  * trusted sinks     — declarations marked TCVS_TRUSTED_SINK: mutations of
                        trusted state that must only see endorsed values.

This module greps those registrations out of src/ so both checkers agree on
the inventory without either one hard-coding names. Importable (`import
taint_registry`) and runnable (`python3 tools/taint_registry.py` prints the
inventory — handy when writing a new wire message).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

VERIFIER_RE = re.compile(r"\bTCVS_TAINT_VERIFIER\(\s*(\w+)\s*\)")
# A marker macro followed (possibly across lines) by a declaration whose
# name is the last identifier before the parameter list's open paren.
_MARKERS = ("TCVS_UNTRUSTED_SOURCE", "TCVS_ENDORSER", "TCVS_TRUSTED_SINK")
_DECL_NAME_RE = re.compile(r"(\w+)\s*\(")


def _strip_comments(text):
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def _marked_decl_names(text, marker):
    """Names of functions declared immediately after `marker`."""
    names = set()
    for m in re.finditer(r"\b%s\b" % marker, text):
        # The declaration runs from the marker to the first `(`; its name is
        # the identifier right before that paren. Bounded window: a marker is
        # always adjacent to its declaration.
        window = text[m.end():m.end() + 400]
        paren = window.find("(")
        if paren < 0:
            continue
        ids = re.findall(r"[A-Za-z_]\w*", window[:paren])
        if ids:
            names.add(ids[-1])
    return names


def scan(repo=REPO):
    """Returns {"verifiers", "sources", "endorsers", "sinks"} name sets."""
    verifiers, sources, endorsers, sinks = set(), set(), set(), set()
    for path in sorted((repo / "src").rglob("*")):
        if path.suffix not in (".h", ".cc") or not path.is_file():
            continue
        if path.name == "taint_annotations.h":
            continue  # The macro definitions, not registrations.
        text = _strip_comments(path.read_text())
        for name in VERIFIER_RE.findall(text):
            verifiers.add(name)
        sources |= _marked_decl_names(text, "TCVS_UNTRUSTED_SOURCE")
        endorsers |= _marked_decl_names(text, "TCVS_ENDORSER")
        sinks |= _marked_decl_names(text, "TCVS_TRUSTED_SINK")
    # The macro definition sites themselves are not registrations.
    verifiers.discard("Name")
    return {
        "verifiers": verifiers,
        "sources": sources,
        "endorsers": endorsers,
        "sinks": sinks,
    }


def main():
    inv = scan()
    for kind in ("verifiers", "sources", "endorsers", "sinks"):
        print(f"{kind} ({len(inv[kind])}):")
        for name in sorted(inv[kind]):
            print(f"  {name}")
    if not inv["verifiers"] or not inv["sinks"]:
        print("taint_registry.py: empty registry — did the annotations move?",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
