#!/usr/bin/env python3
"""Repo-invariant lint for trusted-cvs: the checks generic tools can't do.

Rules (each violation prints `file:line: [rule] message`; exit 1 if any):

  raw-mutex      std::mutex / std::lock_guard / std::unique_lock /
                 std::condition_variable etc. are banned outside
                 src/util/mutex.h. Raw primitives are invisible to the
                 clang thread-safety analysis, so state they guard falls
                 out of the compile-time locking proof. Use util::Mutex,
                 util::MutexLock, util::CondVar (src/util/mutex.h).

  naked-new      `new` must be owned immediately (std::make_unique, or a
                 unique_ptr/shared_ptr constructor on the same or previous
                 line). A raw owning pointer is a leak waiting for an early
                 return. Suppress intentional cases with `lint:allow-new`.

  fault-registry every fault point consulted or armed in production code
                 (src/, tools/) must be a named kFault* constant, and every
                 `point=trigger` spec string anywhere in the tree (TCVS_FAULTS
                 examples included) must name a REGISTERED point — an armed
                 point with a typo'd name never fires, which silently turns a
                 fault-injection test into a no-op.

  header-hygiene every header starts with #pragma once (before any code)
                 and declares no top-level `using namespace`.

  metric-name    every metric registered through util::MetricsRegistry
                 (GetCounter/GetGauge/GetLatency) or timed with TCVS_SPAN
                 must use a literal lowercase dotted name
                 (`component.metric_name`, e.g. `rpc.serve.requests_total`);
                 computed names in production code are flagged because they
                 escape the snapshot inventory the same way an unregistered
                 fault point escapes the fault registry.

  promformat     Prometheus naming, enforced at the registration site:
                 every GetCounter literal ends in `_total`, and no
                 GetGauge/GetLatency/TCVS_SPAN literal ends in a reserved
                 suffix (_total, _sum, _count, _bucket, _info) — the /metrics
                 exposition derives series types from these suffixes, so a
                 mis-suffixed name makes scrapers mistype the series.
                 (Shares check_metric_name with tools/promcheck.py, which
                 validates the rendered exposition end-to-end.)

  admin-endpoint every path registered on the HTTP admin plane
                 (`Handle("/name", ...)` in src/net/http_admin.cc) must bump
                 a literal `http.admin.<name>.requests_total` counter and be
                 documented in ARCHITECTURE.md's endpoint table (a `/name`
                 row) — an endpoint outside the table is an API surface
                 operators can't discover, and one without its counter is
                 invisible in its own /metrics.

  profiling-metric
                 the profiling plane owns two reserved metric prefixes:
                 `lock.*` names must be contention histograms shaped
                 `lock.<mutex-name>.contention_us`, and `profile.*` names
                 must be counters shaped `profile.<name>_total`. Because the
                 lock histograms are minted at runtime from the
                 `util::Mutex{"..."}` construction literal (a computed name
                 the metric-name rule can't see), the mutex-name literal
                 itself is checked at the construction site: lowercase
                 dotted, at least two components — a malformed name would
                 mint a malformed series in /metrics with no literal
                 registration site to flag.

  rpc-method-metrics
                 every RpcType enumerator in src/rpc/protocol.h must have a
                 per-method client latency metric
                 (`rpc.client.<method>.latency_us`) and a per-method serve
                 counter (`rpc.serve.<method>.requests_total`) registered as
                 literals in src/rpc/remote.cc. A new RPC added without its
                 metric pair is invisible in `tcvs stats` — exactly the op
                 you'll want latencies for when it misbehaves.

  audit-event    security audit events are typed: every AuditEventKind
                 enumerator in src/util/audit.h must be emitted (referenced
                 as `AuditEventKind::kName`) somewhere outside
                 util/audit.{h,cc}, and production code must never smuggle a
                 kind as a string (`AuditEvent("...")` / `Emit("...")`) —
                 ad-hoc strings escape the per-kind counters and the
                 `tcvs events` inventory.

  campaign-fixture
                 every tests/campaign_fixtures/*.fixture is a well-formed
                 v1 campaign fixture: version header first, the required
                 keys present, `name` matching the filename, and an
                 even-length hex `schedule` — a malformed fixture makes
                 campaign_test fail far from the file that caused it.

  taint-boundary every `Deserialize` declared in a src/ header must either
                 return Result<util::Tainted<T>> (server-originated bytes
                 enter quarantine, util/untrusted.h) or carry a
                 `// taint-exempt: <reason>` comment justifying why the
                 input never crosses the server trust boundary. In the
                 trust-boundary headers themselves (rpc/protocol.h,
                 core/wire.h, mtree/vo.h) exemptions are banned outright:
                 everything they parse came off the wire.

  taint-escape   `.raw()` — Tainted<T>'s unchecked escape hatch — and
                 reinterpret_casts involving Tainted are banned outside
                 src/util/untrusted.h. The only sanctioned way out of
                 quarantine is TCVS_ENDORSE with a registered verifier.
                 (tools/taint_check.py enforces the same rule plus flow
                 tracking; it shares tools/taint_registry.py with this
                 lint.)

Run from anywhere: paths are resolved relative to the repo root (the parent
of this script's directory). `tools/check.sh` runs this as its last stage.
tests/taint_fixtures/ is excluded from every rule: those files are seeded-bad
snippets for `taint_check.py --self-test`.
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import taint_registry  # noqa: E402  (shared verifier/source/sink inventory)
from promcheck import check_metric_name  # noqa: E402  (shared naming rule)

REPO = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ["src", "tools", "tests", "bench", "examples"]
HEADER_DIRS = ["src", "tools"]

RAW_MUTEX_ALLOWED = {Path("src/util/mutex.h")}
RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"recursive_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable|condition_variable_any)\b"
)

NAKED_NEW_RE = re.compile(r"(?<![:\w])new\s+[A-Za-z_]")
NEW_OWNERSHIP_RE = re.compile(r"make_unique|make_shared|unique_ptr|shared_ptr")

FAULT_DEF_RE = re.compile(r"constexpr\s+char\s+kFault\w+\[\]\s*=\s*\"([^\"]+)\"")
# Production code must consult points via the named constants, never ad-hoc
# literals (tests/bench may probe unknown points deliberately).
FAULT_CALL_LITERAL_RE = re.compile(r"\b(?:ShouldFail|Arm|Disarm)\(\s*\"([^\"]+)\"")
# The TCVS_FAULTS grammar: dotted.point.name=trigger — wherever it appears
# (env strings in tests, doc examples), the point must exist. `prob` takes
# an optional per-point stream seed (`prob:P:SEED`) for bit-exact replays.
FAULT_SPEC_RE = re.compile(
    r"([a-z][a-z0-9_]*(?:\.[a-z0-9_]+){2,})="
    r"(?:always|oneshot|nth:\d+|prob:[0-9.]+(?::\d+)?)"
)

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")

# Enumerator lines like `kTransact = 1,` inside the RpcType/AuditEventKind
# enum bodies (each enumerator carries an explicit wire-stable value).
ENUMERATOR_RE = re.compile(r"\bk([A-Z]\w*)\s*=\s*\d+\s*,")
AUDIT_STRING_KIND_RE = re.compile(r"\b(?:AuditEvent|Emit)\(\s*\"")


def camel_to_snake(name):
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def enum_body(text, enum_name):
    m = re.search(rf"enum\s+class\s+{enum_name}\b[^{{]*{{(.*?)}};", text,
                  re.DOTALL)
    return m.group(1) if m else ""

# Metric registration sites: a string literal directly inside the call, or
# nothing literal at all (a computed name). The registry itself passes names
# through, so it is exempt from the literal requirement.
METRIC_CALL_RE = re.compile(
    r"\b(GetCounter|GetGauge|GetLatency|TCVS_SPAN)\s*\(\s*(\"(?:[^\"\\]|\\.)*\")?"
)
METRIC_NAME_OK_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
METRIC_DYNAMIC_ALLOWED = {
    Path("src/util/metrics.h"),   # declarations + the TCVS_SPAN macro body
    Path("src/util/metrics.cc"),  # get-or-create definitions
    # Mints `lock.<name>.contention_us` from the Mutex construction literal;
    # that literal's shape is enforced by the profiling-metric rule instead.
    Path("src/util/profiler.cc"),
}

# Reserved profiling-plane prefixes (see the profiling-metric rule).
LOCK_METRIC_RE = re.compile(r"lock\.(?:[a-z0-9_]+\.)+contention_us")
PROFILE_METRIC_RE = re.compile(r"profile\.[a-z0-9_]+_total")
# A named util::Mutex: `Mutex mu_{"rpc.serve.execute"}` or `Mutex mu("...")`.
# The literal becomes the `lock.<name>.contention_us` histogram name.
NAMED_MUTEX_RE = re.compile(r"\bMutex\s+\w+\s*[{(]\s*\"((?:[^\"\\]|\\.)*)\"")
MUTEX_NAME_OK_RE = re.compile(r"[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+")


# Seeded-bad snippets for `taint_check.py --self-test`; never compiled and
# exempt from every lint rule.
TAINT_FIXTURE_DIR = Path("tests/taint_fixtures")

# The trust-boundary headers: everything they deserialize arrived off the
# wire, so quarantine is mandatory and taint-exempt markers are banned.
TAINT_STRICT_HEADERS = {
    Path("src/rpc/protocol.h"),
    Path("src/core/wire.h"),
    Path("src/mtree/vo.h"),
}
TAINT_EXEMPT_RE = re.compile(r"//\s*taint-exempt:\s*\S")
RAW_ESCAPE_ALLOWED = {Path("src/util/untrusted.h")}
RAW_ESCAPE_RE = re.compile(r"\.\s*raw\s*\(")


def source_files(dirs, suffixes):
    for d in dirs:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                rel = path.relative_to(REPO)
                if TAINT_FIXTURE_DIR in rel.parents:
                    continue
                yield path


def strip_comments(lines):
    """Yields (lineno, code) with // and /* */ comment text blanked out.

    String literals are left intact (fault-point literals live in them);
    comment contents are blanked so commented-out code never trips a rule.
    """
    in_block = False
    for lineno, line in enumerate(lines, start=1):
        out = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            elif line.startswith("//", i):
                break
            elif line.startswith("/*", i):
                in_block = True
                i += 2
            elif line[i] == '"':
                # Copy the string literal verbatim (handles \" escapes).
                j = i + 1
                while j < len(line) and line[j] != '"':
                    j += 2 if line[j] == "\\" else 1
                out.append(line[i : j + 1])
                i = j + 1
            else:
                out.append(line[i])
                i += 1
        yield lineno, "".join(out)


def main():
    violations = []

    def report(path, lineno, rule, message):
        violations.append(f"{path.relative_to(REPO)}:{lineno}: [{rule}] {message}")

    # Pass 1: collect the fault-point registry from all of src/.
    registry = set()
    for path in source_files(["src"], {".h", ".cc"}):
        registry.update(FAULT_DEF_RE.findall(path.read_text()))
    if not registry:
        print("lint.py: internal error: found no kFault* registry constants",
              file=sys.stderr)
        return 1

    # Pass 2: per-file rules.
    for path in source_files(SOURCE_DIRS, {".h", ".cc", ".cpp"}):
        rel = path.relative_to(REPO)
        lines = path.read_text().splitlines()
        code_lines = dict(strip_comments(lines))
        in_production = rel.parts[0] in ("src", "tools")

        prev_code = ""
        for lineno in sorted(code_lines):
            code = code_lines[lineno]
            raw = lines[lineno - 1]
            # For syntax rules, blank string literals too ("new size" in a
            # message is not an allocation).
            code_no_str = re.sub(r'"(?:[^"\\]|\\.)*"', '""', code)

            if RAW_MUTEX_RE.search(code_no_str) and rel not in RAW_MUTEX_ALLOWED:
                report(path, lineno, "raw-mutex",
                       "raw std:: synchronization primitive; use util::Mutex/"
                       "MutexLock/CondVar from util/mutex.h so the "
                       "thread-safety analysis can see the lock")

            if (RAW_ESCAPE_RE.search(code_no_str)
                    and rel not in RAW_ESCAPE_ALLOWED):
                report(path, lineno, "taint-escape",
                       "Tainted<T>::raw() outside util/untrusted.h strips "
                       "quarantine without verification; use TCVS_ENDORSE "
                       "with a registered verifier")
            if ("reinterpret_cast" in code_no_str
                    and "Tainted" in code_no_str
                    and rel not in RAW_ESCAPE_ALLOWED):
                report(path, lineno, "taint-escape",
                       "reinterpret_cast involving Tainted<T> bypasses the "
                       "quarantine type layer; use TCVS_ENDORSE")

            if (NAKED_NEW_RE.search(code_no_str)
                    and "lint:allow-new" not in raw
                    and not NEW_OWNERSHIP_RE.search(prev_code + code)):
                report(path, lineno, "naked-new",
                       "unowned `new`; use std::make_unique (or mark an "
                       "intentional leak with lint:allow-new)")

            mutex_name = NAMED_MUTEX_RE.search(code)
            if (mutex_name
                    and not MUTEX_NAME_OK_RE.fullmatch(mutex_name.group(1))):
                report(path, lineno, "profiling-metric",
                       f'mutex name "{mutex_name.group(1)}" must be lowercase '
                       "dotted with at least two components (e.g. "
                       '"rpc.serve.execute"); it is minted verbatim into the '
                       "lock.<name>.contention_us histogram")

            if in_production:
                m = FAULT_CALL_LITERAL_RE.search(code)
                if m:
                    report(path, lineno, "fault-registry",
                           f'fault point "{m.group(1)}" consulted via string '
                           "literal in production code; define and use a "
                           "kFault* constant")
                if AUDIT_STRING_KIND_RE.search(code):
                    report(path, lineno, "audit-event",
                           "audit event constructed from a string; use a "
                           "typed util::AuditEventKind enumerator so the "
                           "event hits its per-kind counter and the "
                           "`tcvs events` inventory")
            prev_code = code_no_str

        # Metric-name hygiene. Calls wrap across lines (the formatter breaks
        # after the open paren), so scan the comment-stripped file as one
        # string and map match offsets back to line numbers.
        joined = "\n".join(code_lines.get(n, "") for n in range(1, len(lines) + 1))
        for m in METRIC_CALL_RE.finditer(joined):
            lineno = joined.count("\n", 0, m.start()) + 1
            if m.group(2) is None:
                if in_production and rel not in METRIC_DYNAMIC_ALLOWED:
                    report(path, lineno, "metric-name",
                           f"{m.group(1)} with a computed name in production "
                           "code; metrics must register literal names so the "
                           "snapshot inventory is complete")
                continue
            name = m.group(2)[1:-1]
            if not METRIC_NAME_OK_RE.match(name):
                report(path, lineno, "metric-name",
                       f'metric name "{name}" is not lowercase dotted '
                       "component.metric_name (e.g. rpc.serve.requests_total)")
                continue
            kind = {"GetCounter": "counter", "GetGauge": "gauge",
                    "GetLatency": "summary", "TCVS_SPAN": "summary"}
            err = check_metric_name(name, kind[m.group(1)])
            if err:
                report(path, lineno, "promformat", err)
            if (name.startswith("lock.")
                    and not LOCK_METRIC_RE.fullmatch(name)):
                report(path, lineno, "profiling-metric",
                       f'"{name}": the lock.* prefix is reserved for '
                       "contention histograms named "
                       "lock.<mutex-name>.contention_us")
            if (name.startswith("profile.")
                    and not (m.group(1) == "GetCounter"
                             and PROFILE_METRIC_RE.fullmatch(name))):
                report(path, lineno, "profiling-metric",
                       f'"{name}": the profile.* prefix is reserved for '
                       "profiling-plane counters named profile.<name>_total")

        # Fault-spec strings may sit in comments (doc examples) — check the
        # raw text, not the comment-stripped one: a typo'd example misleads
        # exactly like a typo'd env var.
        for lineno, raw in enumerate(lines, start=1):
            for point in FAULT_SPEC_RE.findall(raw):
                if point not in registry:
                    report(path, lineno, "fault-registry",
                           f'fault spec names unregistered point "{point}" '
                           f"(known: {', '.join(sorted(registry))})")

    # Pass 3: header hygiene.
    for path in source_files(HEADER_DIRS, {".h"}):
        lines = path.read_text().splitlines()
        code_lines = dict(strip_comments(lines))
        first_code = next(
            ((n, c) for n, c in sorted(code_lines.items()) if c.strip()), None)
        if first_code is None:
            report(path, 1, "header-hygiene", "empty header")
        elif first_code[1].strip() != "#pragma once":
            report(path, first_code[0], "header-hygiene",
                   "first declaration must be #pragma once")
        for lineno, code in sorted(code_lines.items()):
            if USING_NAMESPACE_RE.search(code):
                report(path, lineno, "header-hygiene",
                       "`using namespace` in a header leaks into every "
                       "includer")

    # Pass 4: RPC-method metric coverage. The enum is the source of truth;
    # the metric pair must exist as literals in the transport.
    protocol = REPO / "src/rpc/protocol.h"
    remote = REPO / "src/rpc/remote.cc"
    rpc_methods = ENUMERATOR_RE.findall(enum_body(protocol.read_text(),
                                                  "RpcType"))
    if not rpc_methods:
        print("lint.py: internal error: found no RpcType enumerators",
              file=sys.stderr)
        return 1
    remote_text = remote.read_text()
    for method in rpc_methods:
        snake = camel_to_snake(method)
        for metric in (f"rpc.client.{snake}.latency_us",
                       f"rpc.serve.{snake}.requests_total"):
            if f'"{metric}"' not in remote_text:
                report(protocol, 1, "rpc-method-metrics",
                       f"RpcType::k{method} has no \"{metric}\" literal in "
                       f"{remote.relative_to(REPO)}; every RPC method needs "
                       "its per-method latency + request-count pair")

    # Pass 5: audit-event kind coverage. Every declared kind must be emitted
    # through the typed enum somewhere outside the audit module itself —
    # a kind nothing raises is inventory that can never appear in
    # `tcvs events`, usually a sign the emission site regressed.
    audit_header = REPO / "src/util/audit.h"
    audit_kinds = ENUMERATOR_RE.findall(enum_body(audit_header.read_text(),
                                                  "AuditEventKind"))
    if not audit_kinds:
        print("lint.py: internal error: found no AuditEventKind enumerators",
              file=sys.stderr)
        return 1
    audit_module = {Path("src/util/audit.h"), Path("src/util/audit.cc")}
    references = ""
    for path in source_files(["src", "tools"], {".h", ".cc"}):
        if path.relative_to(REPO) in audit_module:
            continue
        references += path.read_text()
    for kind in audit_kinds:
        if f"AuditEventKind::k{kind}" not in references:
            report(audit_header, 1, "audit-event",
                   f"AuditEventKind::k{kind} is declared but never emitted "
                   "outside util/audit.{h,cc}; wire up an emission site or "
                   "retire the kind")

    # Pass 6: campaign-fixture hygiene. The checked-in adversarial corpus is
    # replayed verbatim by campaign_test; catch malformed fixtures here with
    # a file:line message instead of a distant deserialization failure.
    fixture_dir = REPO / "tests/campaign_fixtures"
    required_keys = ("name", "protocol", "expect_detected", "expect_escape",
                     "schedule")
    for path in sorted(fixture_dir.glob("*.fixture")):
        lines = path.read_text().splitlines()
        if not lines or lines[0].strip() != "# tcvs-campaign-fixture v1":
            report(path, 1, "campaign-fixture",
                   'first line must be "# tcvs-campaign-fixture v1"')
            continue
        kv = {}
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            key, sep, value = line.partition(":")
            if not sep:
                report(path, lineno, "campaign-fixture",
                       f'not a "key: value" line: "{line}"')
                continue
            kv[key.strip()] = (lineno, value.strip())
        for key in required_keys:
            if key not in kv:
                report(path, 1, "campaign-fixture", f'missing key "{key}"')
        if "name" in kv and kv["name"][1] != path.stem:
            report(path, kv["name"][0], "campaign-fixture",
                   f'name "{kv["name"][1]}" does not match filename stem '
                   f'"{path.stem}"')
        for key in ("expect_detected", "expect_escape"):
            if key in kv and kv[key][1] not in ("0", "1"):
                report(path, kv[key][0], "campaign-fixture",
                       f'{key} must be 0 or 1, got "{kv[key][1]}"')
        if "schedule" in kv:
            lineno, hexstr = kv["schedule"]
            if (not hexstr or len(hexstr) % 2 != 0
                    or not re.fullmatch(r"[0-9a-f]+", hexstr)):
                report(path, lineno, "campaign-fixture",
                       "schedule must be non-empty even-length lowercase hex")

    # Pass 7: trust-boundary quarantine coverage. The untrusted-source names
    # come from the shared taint registry (functions marked
    # TCVS_UNTRUSTED_SOURCE), so this rule follows the annotations without
    # hard-coding "Deserialize".
    taint_inv = taint_registry.scan()
    source_names = taint_inv["sources"] or {"Deserialize"}
    source_decl_re = re.compile(
        r"\bstatic\b[^;{=]*?\b(%s)\s*\(" %
        "|".join(re.escape(s) for s in sorted(source_names)))
    for path in source_files(["src"], {".h"}):
        rel = path.relative_to(REPO)
        raw_lines = path.read_text().splitlines()
        code_lines = dict(strip_comments(raw_lines))
        joined = "\n".join(code_lines.get(n, "")
                           for n in range(1, len(raw_lines) + 1))
        for m in source_decl_re.finditer(joined):
            lineno = joined.count("\n", 0, m.start()) + 1
            decl = joined[m.start():m.end()]
            if "Tainted<" in decl:
                continue  # Quarantined — always fine.
            exempt = any(
                TAINT_EXEMPT_RE.search(raw_lines[n])
                for n in range(max(0, lineno - 4), lineno))
            if rel in TAINT_STRICT_HEADERS:
                report(path, lineno, "taint-boundary",
                       f"{m.group(1)} in a trust-boundary header must return "
                       "Result<util::Tainted<T>>; exemptions are not allowed "
                       "here — everything this header parses came off the "
                       "wire")
            elif not exempt:
                report(path, lineno, "taint-boundary",
                       f"{m.group(1)} must return Result<util::Tainted<T>> "
                       "or carry `// taint-exempt: <reason>` explaining why "
                       "its input never crosses the server trust boundary")
        if rel in TAINT_STRICT_HEADERS:
            for lineno, raw in enumerate(raw_lines, start=1):
                if TAINT_EXEMPT_RE.search(raw):
                    report(path, lineno, "taint-boundary",
                           "taint-exempt marker in a trust-boundary header; "
                           "these messages are server-originated by "
                           "definition and must stay quarantined")

    # Pass 8: admin-endpoint coverage. The Handle() registrations in the
    # standard-endpoint installer are the source of truth; each needs its
    # per-endpoint request counter and an ARCHITECTURE.md table row.
    admin_cc = REPO / "src/net/http_admin.cc"
    arch_text = (REPO / "ARCHITECTURE.md").read_text()
    admin_text = admin_cc.read_text()
    endpoints = re.findall(r'Handle\(\s*"/([a-z][a-z0-9_]*)"', admin_text)
    if not endpoints:
        print("lint.py: internal error: found no admin Handle() endpoints",
              file=sys.stderr)
        return 1
    for endpoint in endpoints:
        counter = f"http.admin.{endpoint}.requests_total"
        if f'"{counter}"' not in admin_text:
            report(admin_cc, 1, "admin-endpoint",
                   f'endpoint /{endpoint} has no literal "{counter}" '
                   "counter; every admin endpoint must count its requests")
        if f"`/{endpoint}`" not in arch_text:
            report(admin_cc, 1, "admin-endpoint",
                   f"endpoint /{endpoint} is not documented in "
                   "ARCHITECTURE.md (no `/" + endpoint + "` row in the "
                   "observability-plane endpoint table)")

    for v in violations:
        print(v)
    if violations:
        print(f"lint.py: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint.py: OK ({len(registry)} registered fault points)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
