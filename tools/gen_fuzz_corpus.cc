// fuzz-corpus-gen: writes the libFuzzer seed corpora under
// tests/fuzz_corpora/<target>/ — a handful of VALID wire messages per
// trust-boundary parser, produced by the real serializers so the fuzzers
// start from deep inside the accepted grammar instead of random bytes.
//
//   cmake --build build --target gen_fuzz_corpus
//   ./build/tools/gen_fuzz_corpus [repo_root]
//
// Rerun after a deliberate wire-format change; tests/fuzz_corpus_test.cc
// fails when the committed seeds stop parsing.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/wire.h"
#include "cvs/trusted.h"
#include "mtree/btree.h"
#include "mtree/vo.h"
#include "rpc/protocol.h"
#include "util/bytes.h"

namespace fs = std::filesystem;
using namespace tcvs;

namespace {

void WriteSeed(const fs::path& dir, const std::string& name,
               const Bytes& data) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  std::printf("  %s/%s (%zu bytes)\n", dir.filename().c_str(), name.c_str(),
              data.size());
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root =
      (argc > 1 ? fs::path(argv[1]) : fs::current_path()) /
      "tests" / "fuzz_corpora";
  std::printf("writing seed corpora under %s\n", root.c_str());

  // A small populated tree gives the VO and reply seeds realistic shape.
  mtree::TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  cvs::UntrustedServer server(params);
  for (int i = 0; i < 12; ++i) {
    const std::string path = "dir/file" + std::to_string(i) + ".txt";
    (void)server.Transact(
        1, {cvs::FileOp{cvs::FileOp::Kind::kCommit, path,
                        "content-" + std::to_string(i), 0}});
  }
  const mtree::MerkleBTree& tree = server.tree();

  // rpc_request: one seed per RPC shape (v2 frames; Deserialize also
  // accepts v1, which the fuzzer will discover by mutating the escape).
  {
    const fs::path dir = root / "rpc_request";
    rpc::RpcRequest transact;
    transact.type = rpc::RpcType::kTransact;
    transact.user = 3;
    transact.request_id = 101;
    transact.trace_id = 0xabcdef01;
    transact.ops = {
        cvs::FileOp{cvs::FileOp::Kind::kCommit, "dir/file1.txt", "v2", 1},
        cvs::FileOp{cvs::FileOp::Kind::kCheckout, "dir/file2.txt", "", 0}};
    WriteSeed(dir, "transact.bin", transact.Serialize());

    rpc::RpcRequest list;
    list.type = rpc::RpcType::kList;
    list.user = 4;
    list.prefix = "dir/";
    list.request_id = 102;
    WriteSeed(dir, "list.bin", list.Serialize());

    rpc::RpcRequest checkpoint;
    checkpoint.type = rpc::RpcType::kLogCheckpoint;
    checkpoint.user = 5;
    checkpoint.old_size = 7;
    checkpoint.request_id = 103;
    WriteSeed(dir, "log_checkpoint.bin", checkpoint.Serialize());

    rpc::RpcRequest stats;
    stats.type = rpc::RpcType::kStats;
    stats.request_id = 104;
    WriteSeed(dir, "stats.bin", stats.Serialize());
  }

  // rpc_response: ok-with-payload, ok-empty, and an error status.
  {
    const fs::path dir = root / "rpc_response";
    rpc::RpcResponse ok;
    ok.status_code = 0;
    ok.payload = server.Transact(2, {cvs::FileOp{cvs::FileOp::Kind::kCheckout,
                                                 "dir/file3.txt", "", 0}})
                     ->untrusted()
                     .Serialize();
    WriteSeed(dir, "ok_transact.bin", ok.Serialize());

    rpc::RpcResponse empty;
    WriteSeed(dir, "ok_empty.bin", empty.Serialize());

    WriteSeed(dir, "not_found.bin",
              rpc::RpcResponse::FromStatus(Status::NotFound("no such file"))
                  .Serialize());
  }

  // point_vo: present key, absent key (non-membership proof).
  {
    const fs::path dir = root / "point_vo";
    WriteSeed(dir, "present.bin",
              tree.ProvePoint(util::ToBytes("dir/file1.txt")).Serialize());
    WriteSeed(dir, "absent.bin",
              tree.ProvePoint(util::ToBytes("dir/nope.txt")).Serialize());
  }

  // range_vo: populated range, empty range.
  {
    const fs::path dir = root / "range_vo";
    WriteSeed(dir, "populated.bin",
              tree.ProveRange(util::ToBytes("dir/"), util::ToBytes("dir0"))
                  .Serialize());
    WriteSeed(dir, "empty.bin",
              tree.ProveRange(util::ToBytes("zzz/"), util::ToBytes("zzz0"))
                  .Serialize());
  }

  // query_response: a found checkout with VO, and a miss.
  {
    const fs::path dir = root / "query_response";
    core::QueryResponse found;
    found.qid = 9;
    found.kind = sim::OpKind::kCheckout;
    found.found = true;
    found.answer = util::ToBytes("content-1");
    found.vo = tree.ProvePoint(util::ToBytes("dir/file1.txt")).Serialize();
    found.ctr = 12;
    found.creator = 1;
    found.epoch = 2;
    found.trace_id = 0x1234;
    WriteSeed(dir, "checkout_found.bin", found.Serialize());

    core::QueryResponse miss;
    miss.qid = 10;
    miss.kind = sim::OpKind::kCheckout;
    miss.found = false;
    miss.vo = tree.ProvePoint(util::ToBytes("dir/nope.txt")).Serialize();
    miss.ctr = 12;
    miss.creator = 1;
    WriteSeed(dir, "checkout_miss.bin", miss.Serialize());
  }

  std::printf("done\n");
  return 0;
}
