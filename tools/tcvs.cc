// tcvs — the verifying trusted-cvs command-line client.
//
// Talks to a `tcvsd` server, verifying every reply (Merkle proofs, local
// replay, counter monotonicity) and folding it into the user's 32-byte
// Protocol II registers, persisted in a state file between invocations.
//
// Usage:
//   tcvs --server HOST:PORT --user N --state FILE checkout PATH
//   tcvs --server HOST:PORT --user N --state FILE cat PATH
//   tcvs --server HOST:PORT --user N --state FILE commit PATH BASE_REV CONTENT
//   tcvs --server HOST:PORT --user N --state FILE remove PATH
//   tcvs --server HOST:PORT --user N --state FILE ls [PREFIX]
//   tcvs --server HOST:PORT --user N --state FILE audit   # append-only history
//   tcvs --state FILE state                # print the registers
//   tcvs check STATE_FILE...               # offline sync-up over state files
//   tcvs --server HOST:PORT shutdown
//   tcvs --server HOST:PORT stats   # live server metrics (Prometheus text)
//   tcvs --server HOST:PORT trace   # drain server spans (Chrome trace JSON)
//   tcvs --server HOST:PORT events [--json]   # security audit-event log
//
// Transport flags: --retries N, --backoff-ms MS, --timeout-ms MS tune the
// retry policy (exponential backoff, jittered) and per-operation deadlines.
// Transport faults are retried with transparent reconnection; verification
// failures never are.
//
// When the server stays unreachable past the retry budget, read commands
// (cat / checkout / ls) degrade to serving the last *verified* records from
// the local cache sidecar (STATE.cache) instead of aborting — read-only,
// possibly stale, never unverified. Mutations fail with Unavailable.
//
// Exit codes: 0 success, 1 operation error, 3 SERVER DEVIATION DETECTED.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cvs/cache.h"
#include "cvs/trusted.h"
#include "rpc/remote.h"
#include "util/audit.h"
#include "util/bytes.h"
#include "util/metrics.h"

using namespace tcvs;

namespace {

Result<Bytes> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return util::ToBytes(data);
}

Status WriteFile(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? Status::OK() : Status::IOError("short write to " + path);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "tcvs: %s\n", status.ToString().c_str());
  return status.IsDeviationDetected() || status.IsVerificationFailure() ? 3 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tcvs [--retries N] [--backoff-ms MS] [--timeout-ms MS] "
               "--server H:P --user N --state FILE "
               "checkout|cat|commit|remove ... | state | check FILES... | "
               "stats | trace | events [--json] | shutdown\n");
  return 2;
}

std::string CachePath(const std::string& state_file) {
  return state_file + ".cache";
}

cvs::LocalCache LoadCache(const std::string& state_file) {
  auto data = ReadFile(CachePath(state_file));
  if (!data.ok()) return {};
  auto cache = cvs::LocalCache::Deserialize(*data);
  if (!cache.ok()) return {};  // Corrupt cache: start over; it is only a cache.
  return std::move(cache).ValueOrDie();
}

/// Serves a read command from the verified local cache after the server
/// proved unreachable. Strictly read-only; output is marked as degraded.
int ServeDegraded(const std::string& cmd, const std::vector<std::string>& args,
                  const std::string& state_file, const Status& why) {
  if (state_file.empty()) return Fail(why);
  cvs::LocalCache cache = LoadCache(state_file);
  std::fprintf(stderr,
               "tcvs: %s\ntcvs: DEGRADED read-only mode: serving last "
               "verified records from %s\n",
               why.ToString().c_str(), CachePath(state_file).c_str());
  if (cmd == "cat" || cmd == "checkout") {
    if (args.size() != 2) return Usage();
    const cvs::FileRecord* rec = cache.Find(args[1]);
    if (rec == nullptr) {
      return Fail(Status::Unavailable("server unreachable and " + args[1] +
                                      " is not in the local verified cache"));
    }
    if (cmd == "cat") {
      std::fwrite(rec->content.data(), 1, rec->content.size(), stdout);
    } else {
      std::printf("%s revision %llu (%zu bytes) [degraded: verified cache]\n",
                  args[1].c_str(), (unsigned long long)rec->revision,
                  rec->content.size());
    }
    return 0;
  }
  if (cmd == "ls") {
    std::string prefix = args.size() > 1 ? args[1] : "";
    auto listing = cache.List(prefix);
    for (const auto& [path, revision] : listing) {
      std::printf("%-50s r%llu\n", path.c_str(), (unsigned long long)revision);
    }
    std::printf("%zu files [degraded: verified cache, completeness not "
                "guaranteed]\n",
                listing.size());
    return 0;
  }
  // Mutations (and audit) need the live server: degrading them would turn
  // read-only mode into a silent write outage.
  return Fail(why);
}

}  // namespace

int main(int argc, char** argv) {
  std::string server_addr;
  std::string state_file;
  uint32_t user = 0;
  rpc::RemoteOptions remote_options;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server_addr = argv[++i];
    } else if (std::strcmp(argv[i], "--user") == 0 && i + 1 < argc) {
      user = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--state") == 0 && i + 1 < argc) {
      state_file = argv[++i];
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      remote_options.retry.max_attempts = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--backoff-ms") == 0 && i + 1 < argc) {
      remote_options.retry.initial_backoff_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      int t = std::atoi(argv[++i]);
      remote_options.connect_timeout_ms = t;
      remote_options.io_timeout_ms = t;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return Usage();
  const std::string& cmd = args[0];

  // Offline commands first.
  if (cmd == "check") {
    std::vector<cvs::ClientState> states;
    for (size_t i = 1; i < args.size(); ++i) {
      auto data = ReadFile(args[i]);
      if (!data.ok()) return Fail(data.status());
      auto state = cvs::ClientState::Deserialize(*data);
      if (!state.ok()) return Fail(state.status());
      states.push_back(std::move(state).ValueOrDie());
    }
    Status st = cvs::VerifyingClient::SyncCheck(states);
    std::printf("sync-up over %zu states: %s\n", states.size(),
                st.ok() ? "CONSISTENT — one serial history" : st.ToString().c_str());
    return st.ok() ? 0 : 3;
  }
  if (cmd == "state") {
    auto data = ReadFile(state_file);
    if (!data.ok()) return Fail(data.status());
    auto state = cvs::ClientState::Deserialize(*data);
    if (!state.ok()) return Fail(state.status());
    std::printf("user=%u lctr=%llu gctr=%llu\nsigma=%s\nlast =%s\n",
                state->user_id, (unsigned long long)state->lctr,
                (unsigned long long)state->gctr,
                util::HexEncode(state->sigma).c_str(),
                util::HexEncode(state->last).c_str());
    return 0;
  }

  // Networked commands.
  std::string host = "127.0.0.1";
  uint16_t port = 7199;
  if (!server_addr.empty()) {
    size_t colon = server_addr.rfind(':');
    if (colon == std::string::npos) return Usage();
    host = server_addr.substr(0, colon);
    port = static_cast<uint16_t>(std::atoi(server_addr.c_str() + colon + 1));
  }
  auto remote = rpc::RemoteServer::Connect(host, port, remote_options);
  if (!remote.ok()) {
    if (rpc::IsRetryableTransport(remote.status())) {
      return ServeDegraded(cmd, args, state_file, remote.status());
    }
    return Fail(remote.status());
  }

  if (cmd == "shutdown") {
    Status st = (*remote)->Shutdown();
    if (!st.ok()) return Fail(st);
    std::printf("server shut down\n");
    return 0;
  }

  if (cmd == "stats") {
    auto snap = (*remote)->Stats();
    if (!snap.ok()) return Fail(snap.status());
    std::string text = snap->TextFormat();
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }

  if (cmd == "trace") {
    auto dump = (*remote)->TraceDump();
    if (!dump.ok()) return Fail(dump.status());
    std::string json = dump->ChromeTraceJson();
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  if (cmd == "events") {
    bool json = false;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--json") json = true;
    }
    auto events = (*remote)->Events();
    if (!events.ok()) return Fail(events.status());
    if (json) {
      for (const auto& e : *events) {
        std::printf("%s\n", e.JsonFormat().c_str());
      }
      return 0;
    }
    std::printf("%-5s %-26s %-5s %-8s %-6s %-16s %s\n", "SEQ", "KIND", "USER",
                "CTR", "EPOCH", "TRACE", "DETAIL");
    for (const auto& e : *events) {
      std::printf("%-5llu %-26s %-5u %-8llu %-6llu %016llx %s\n",
                  (unsigned long long)e.seq, util::AuditEventKindName(e.kind),
                  e.user, (unsigned long long)e.ctr,
                  (unsigned long long)e.epoch, (unsigned long long)e.trace_id,
                  e.detail.c_str());
    }
    std::printf("%zu audit events\n", events->size());
    return 0;
  }

  if (user == 0 || state_file.empty()) return Usage();

  // Load or initialize the client state.
  cvs::ClientState state;
  if (auto data = ReadFile(state_file); data.ok()) {
    auto parsed = cvs::ClientState::Deserialize(*data);
    if (!parsed.ok()) return Fail(parsed.status());
    state = std::move(parsed).ValueOrDie();
    if (state.user_id != user) {
      return Fail(Status::InvalidArgument("state file belongs to user " +
                                          std::to_string(state.user_id)));
    }
  } else {
    cvs::VerifyingClient fresh(user, remote->get());
    state = fresh.state();
  }
  cvs::VerifyingClient client(state, remote->get());
  cvs::LocalCache cache = LoadCache(state_file);
  // Warm the VO subtree cache from the sidecar: repeat proofs across CLI
  // invocations then verify at one hash per unchanged subtree.
  cache.LoadVoEntriesInto(client.vo_cache());
  bool cache_dirty = false;

  int rc = 0;
  if (cmd == "checkout" || cmd == "cat") {
    if (args.size() != 2) return Usage();
    auto rec = client.Checkout(args[1]);
    if (!rec.ok()) {
      rc = Fail(rec.status());
    } else {
      cache.Put(args[1], *rec);
      cache_dirty = true;
      if (cmd == "cat") {
        std::fwrite(rec->content.data(), 1, rec->content.size(), stdout);
      } else {
        std::printf("%s revision %llu (%zu bytes) [verified]\n",
                    args[1].c_str(), (unsigned long long)rec->revision,
                    rec->content.size());
      }
    }
  } else if (cmd == "commit") {
    if (args.size() != 4) return Usage();
    uint64_t base = std::strtoull(args[2].c_str(), nullptr, 10);
    auto rev = client.Commit(args[1], args[3], base);
    if (!rev.ok()) {
      rc = Fail(rev.status());
    } else {
      cache.Put(args[1], cvs::FileRecord{*rev, args[3]});
      cache_dirty = true;
      std::printf("committed %s -> revision %llu [verified]\n", args[1].c_str(),
                  (unsigned long long)*rev);
    }
  } else if (cmd == "ls") {
    std::string prefix = args.size() > 1 ? args[1] : "";
    auto listing = client.ListDir(prefix);
    if (!listing.ok()) {
      rc = Fail(listing.status());
    } else {
      for (const auto& [path, revision] : *listing) {
        std::printf("%-50s r%llu\n", path.c_str(),
                    (unsigned long long)revision);
      }
      std::printf("%zu files [verified complete]\n", listing->size());
    }
  } else if (cmd == "audit") {
    Status st = client.AuditLog();
    if (!st.ok()) {
      rc = Fail(st);
    } else {
      std::printf("transparency log consistent; checkpoint advanced to %llu "
                  "entries [verified append-only]\n",
                  (unsigned long long)client.log_checkpoint_size());
    }
  } else if (cmd == "remove") {
    if (args.size() != 2) return Usage();
    Status st = client.Remove(args[1]);
    if (!st.ok()) {
      rc = Fail(st);
    } else {
      cache.Erase(args[1]);
      cache_dirty = true;
      std::printf("removed %s [verified]\n", args[1].c_str());
    }
  } else {
    return Usage();
  }

  // Persist the (possibly advanced) registers even after clean failures:
  // rejected commits are transactions too.
  if (rc != 3) {
    Status st = WriteFile(state_file, client.state().Serialize());
    if (!st.ok()) return Fail(st);
    if (cache_dirty) {
      // Best-effort: the cache only feeds degraded mode and proof warm-up;
      // losing it costs availability/speed during an outage, never
      // correctness.
      cache.StoreVoEntries(*client.vo_cache());
      (void)WriteFile(CachePath(state_file), cache.Serialize());
    }
  }
  return rc;
}
