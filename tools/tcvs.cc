// tcvs — the verifying trusted-cvs command-line client.
//
// Talks to a `tcvsd` server, verifying every reply (Merkle proofs, local
// replay, counter monotonicity) and folding it into the user's 32-byte
// Protocol II registers, persisted in a state file between invocations.
//
// Usage:
//   tcvs --server HOST:PORT --user N --state FILE checkout PATH
//   tcvs --server HOST:PORT --user N --state FILE cat PATH
//   tcvs --server HOST:PORT --user N --state FILE commit PATH BASE_REV CONTENT
//   tcvs --server HOST:PORT --user N --state FILE remove PATH
//   tcvs --server HOST:PORT --user N --state FILE ls [PREFIX]
//   tcvs --server HOST:PORT --user N --state FILE audit   # append-only history
//   tcvs --state FILE state                # print the registers
//   tcvs check STATE_FILE...               # offline sync-up over state files
//   tcvs --server HOST:PORT shutdown
//
// Exit codes: 0 success, 1 operation error, 3 SERVER DEVIATION DETECTED.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cvs/trusted.h"
#include "rpc/remote.h"
#include "util/bytes.h"

using namespace tcvs;

namespace {

Result<Bytes> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return util::ToBytes(data);
}

Status WriteFile(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? Status::OK() : Status::IOError("short write to " + path);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "tcvs: %s\n", status.ToString().c_str());
  return status.IsDeviationDetected() || status.IsVerificationFailure() ? 3 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tcvs --server H:P --user N --state FILE "
               "checkout|cat|commit|remove ... | state | check FILES... | "
               "shutdown\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string server_addr;
  std::string state_file;
  uint32_t user = 0;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server_addr = argv[++i];
    } else if (std::strcmp(argv[i], "--user") == 0 && i + 1 < argc) {
      user = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--state") == 0 && i + 1 < argc) {
      state_file = argv[++i];
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return Usage();
  const std::string& cmd = args[0];

  // Offline commands first.
  if (cmd == "check") {
    std::vector<cvs::ClientState> states;
    for (size_t i = 1; i < args.size(); ++i) {
      auto data = ReadFile(args[i]);
      if (!data.ok()) return Fail(data.status());
      auto state = cvs::ClientState::Deserialize(*data);
      if (!state.ok()) return Fail(state.status());
      states.push_back(std::move(state).ValueOrDie());
    }
    Status st = cvs::VerifyingClient::SyncCheck(states);
    std::printf("sync-up over %zu states: %s\n", states.size(),
                st.ok() ? "CONSISTENT — one serial history" : st.ToString().c_str());
    return st.ok() ? 0 : 3;
  }
  if (cmd == "state") {
    auto data = ReadFile(state_file);
    if (!data.ok()) return Fail(data.status());
    auto state = cvs::ClientState::Deserialize(*data);
    if (!state.ok()) return Fail(state.status());
    std::printf("user=%u lctr=%llu gctr=%llu\nsigma=%s\nlast =%s\n",
                state->user_id, (unsigned long long)state->lctr,
                (unsigned long long)state->gctr,
                util::HexEncode(state->sigma).c_str(),
                util::HexEncode(state->last).c_str());
    return 0;
  }

  // Networked commands.
  std::string host = "127.0.0.1";
  uint16_t port = 7199;
  if (!server_addr.empty()) {
    size_t colon = server_addr.rfind(':');
    if (colon == std::string::npos) return Usage();
    host = server_addr.substr(0, colon);
    port = static_cast<uint16_t>(std::atoi(server_addr.c_str() + colon + 1));
  }
  auto remote = rpc::RemoteServer::Connect(host, port);
  if (!remote.ok()) return Fail(remote.status());

  if (cmd == "shutdown") {
    Status st = (*remote)->Shutdown();
    if (!st.ok()) return Fail(st);
    std::printf("server shut down\n");
    return 0;
  }

  if (user == 0 || state_file.empty()) return Usage();

  // Load or initialize the client state.
  cvs::ClientState state;
  if (auto data = ReadFile(state_file); data.ok()) {
    auto parsed = cvs::ClientState::Deserialize(*data);
    if (!parsed.ok()) return Fail(parsed.status());
    state = std::move(parsed).ValueOrDie();
    if (state.user_id != user) {
      return Fail(Status::InvalidArgument("state file belongs to user " +
                                          std::to_string(state.user_id)));
    }
  } else {
    cvs::VerifyingClient fresh(user, remote->get());
    state = fresh.state();
  }
  cvs::VerifyingClient client(state, remote->get());

  int rc = 0;
  if (cmd == "checkout" || cmd == "cat") {
    if (args.size() != 2) return Usage();
    auto rec = client.Checkout(args[1]);
    if (!rec.ok()) {
      rc = Fail(rec.status());
    } else if (cmd == "cat") {
      std::fwrite(rec->content.data(), 1, rec->content.size(), stdout);
    } else {
      std::printf("%s revision %llu (%zu bytes) [verified]\n", args[1].c_str(),
                  (unsigned long long)rec->revision, rec->content.size());
    }
  } else if (cmd == "commit") {
    if (args.size() != 4) return Usage();
    uint64_t base = std::strtoull(args[2].c_str(), nullptr, 10);
    auto rev = client.Commit(args[1], args[3], base);
    if (!rev.ok()) {
      rc = Fail(rev.status());
    } else {
      std::printf("committed %s -> revision %llu [verified]\n", args[1].c_str(),
                  (unsigned long long)*rev);
    }
  } else if (cmd == "ls") {
    std::string prefix = args.size() > 1 ? args[1] : "";
    auto listing = client.ListDir(prefix);
    if (!listing.ok()) {
      rc = Fail(listing.status());
    } else {
      for (const auto& [path, revision] : *listing) {
        std::printf("%-50s r%llu\n", path.c_str(),
                    (unsigned long long)revision);
      }
      std::printf("%zu files [verified complete]\n", listing->size());
    }
  } else if (cmd == "audit") {
    Status st = client.AuditLog();
    if (!st.ok()) {
      rc = Fail(st);
    } else {
      std::printf("transparency log consistent; checkpoint advanced to %llu "
                  "entries [verified append-only]\n",
                  (unsigned long long)client.log_checkpoint_size());
    }
  } else if (cmd == "remove") {
    if (args.size() != 2) return Usage();
    Status st = client.Remove(args[1]);
    if (!st.ok()) {
      rc = Fail(st);
    } else {
      std::printf("removed %s [verified]\n", args[1].c_str());
    }
  } else {
    return Usage();
  }

  // Persist the (possibly advanced) registers even after clean failures:
  // rejected commits are transactions too.
  if (rc != 3) {
    Status st = WriteFile(state_file, client.state().Serialize());
    if (!st.ok()) return Fail(st);
  }
  return rc;
}
