// tcvs — the verifying trusted-cvs command-line client.
//
// Talks to a `tcvsd` server, verifying every reply (Merkle proofs, local
// replay, counter monotonicity) and folding it into the user's 32-byte
// Protocol II registers, persisted in a state file between invocations.
//
// Usage:
//   tcvs --server HOST:PORT --user N --state FILE checkout PATH
//   tcvs --server HOST:PORT --user N --state FILE cat PATH
//   tcvs --server HOST:PORT --user N --state FILE commit PATH BASE_REV CONTENT
//   tcvs --server HOST:PORT --user N --state FILE remove PATH
//   tcvs --server HOST:PORT --user N --state FILE ls [PREFIX]
//   tcvs --server HOST:PORT --user N --state FILE audit   # append-only history
//   tcvs --state FILE state                # print the registers
//   tcvs check STATE_FILE...               # offline sync-up over state files
//   tcvs --server HOST:PORT shutdown
//   tcvs --server HOST:PORT stats   # live server metrics (Prometheus text)
//   tcvs --server HOST:PORT trace   # drain server spans (Chrome trace JSON)
//   tcvs --server HOST:PORT events [--json]   # security audit-event log
//   tcvs --server HOST:PORT top [--interval-ms MS] [--frames N]
//   tcvs top --admin HOST:PORT [--interval-ms MS] [--frames N]
//   tcvs --server HOST:PORT profile [--seconds N] [--hz N]
//
// `top` diffs two metrics snapshots an interval apart and prints per-RPC-
// method QPS, latency quantiles, the queue/work/fsync latency decomposition
// (QUEUE/OP + WORK/OP + FSYNC/OP ≈ the latency mean), and cost-per-op
// (hashes, signature verifies, VO bytes, WAL appends). Against the Stats
// RPC it diffs full histograms, so quantiles are for the INTERVAL; with
// --admin it scrapes the admin plane's /varz (no RPC port needed — works
// while the serve pool is saturated), where quantiles are cumulative.
//
// `profile` collects a CPU profile window on the SERVER (sampling profiler,
// SIGPROF) and prints folded/collapsed stacks to stdout — pipe through
// flamegraph.pl. Blocks for the window.
//
// Transport flags: --retries N, --backoff-ms MS, --timeout-ms MS tune the
// retry policy (exponential backoff, jittered) and per-operation deadlines.
// Transport faults are retried with transparent reconnection; verification
// failures never are.
//
// When the server stays unreachable past the retry budget, read commands
// (cat / checkout / ls) degrade to serving the last *verified* records from
// the local cache sidecar (STATE.cache) instead of aborting — read-only,
// possibly stale, never unverified. Mutations fail with Unavailable.
//
// Exit codes: 0 success, 1 operation error, 3 SERVER DEVIATION DETECTED.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cvs/cache.h"
#include "cvs/trusted.h"
#include "net/http_admin.h"
#include "rpc/remote.h"
#include "util/audit.h"
#include "util/bytes.h"
#include "util/jsonish.h"
#include "util/metrics.h"

using namespace tcvs;

namespace {

Result<Bytes> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return util::ToBytes(data);
}

Status WriteFile(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? Status::OK() : Status::IOError("short write to " + path);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "tcvs: %s\n", status.ToString().c_str());
  return status.IsDeviationDetected() || status.IsVerificationFailure() ? 3 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tcvs [--retries N] [--backoff-ms MS] [--timeout-ms MS] "
               "--server H:P --user N --state FILE "
               "checkout|cat|commit|remove ... | state | check FILES... | "
               "stats | trace | events [--json] | "
               "top [--interval-ms MS] [--frames N] [--admin H:P] | "
               "profile [--seconds N] [--hz N] | "
               "shutdown\n");
  return 2;
}

std::string CachePath(const std::string& state_file) {
  return state_file + ".cache";
}

cvs::LocalCache LoadCache(const std::string& state_file) {
  auto data = ReadFile(CachePath(state_file));
  if (!data.ok()) return {};
  auto cache = cvs::LocalCache::Deserialize(*data);
  if (!cache.ok()) return {};  // Corrupt cache: start over; it is only a cache.
  return std::move(cache).ValueOrDie();
}

/// Serves a read command from the verified local cache after the server
/// proved unreachable. Strictly read-only; output is marked as degraded.
int ServeDegraded(const std::string& cmd, const std::vector<std::string>& args,
                  const std::string& state_file, const Status& why) {
  if (state_file.empty()) return Fail(why);
  cvs::LocalCache cache = LoadCache(state_file);
  std::fprintf(stderr,
               "tcvs: %s\ntcvs: DEGRADED read-only mode: serving last "
               "verified records from %s\n",
               why.ToString().c_str(), CachePath(state_file).c_str());
  if (cmd == "cat" || cmd == "checkout") {
    if (args.size() != 2) return Usage();
    const cvs::FileRecord* rec = cache.Find(args[1]);
    if (rec == nullptr) {
      return Fail(Status::Unavailable("server unreachable and " + args[1] +
                                      " is not in the local verified cache"));
    }
    if (cmd == "cat") {
      std::fwrite(rec->content.data(), 1, rec->content.size(), stdout);
    } else {
      std::printf("%s revision %llu (%zu bytes) [degraded: verified cache]\n",
                  args[1].c_str(), (unsigned long long)rec->revision,
                  rec->content.size());
    }
    return 0;
  }
  if (cmd == "ls") {
    std::string prefix = args.size() > 1 ? args[1] : "";
    auto listing = cache.List(prefix);
    for (const auto& [path, revision] : listing) {
      std::printf("%-50s r%llu\n", path.c_str(), (unsigned long long)revision);
    }
    std::printf("%zu files [degraded: verified cache, completeness not "
                "guaranteed]\n",
                listing.size());
    return 0;
  }
  // Mutations (and audit) need the live server: degrading them would turn
  // read-only mode into a silent write outage.
  return Fail(why);
}

/// One `tcvs top` observation, from either source: the Stats RPC carries
/// full histograms (bucket-accurate interval quantiles via DeltaSince);
/// /varz carries only the cumulative summary stats.
struct TopSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, util::Histogram> histograms;
  struct VarzHist {
    uint64_t p50 = 0;
    uint64_t p99 = 0;
  };
  std::map<std::string, VarzHist> varz_hists;
};

Result<TopSnapshot> TopFromStats(rpc::RemoteServer* remote) {
  TCVS_ASSIGN_OR_RETURN(util::MetricsSnapshot snap, remote->Stats());
  TopSnapshot out;
  out.counters = std::move(snap.counters);
  out.histograms = std::move(snap.histograms);
  return out;
}

Result<TopSnapshot> TopFromVarz(const std::string& host, uint16_t port) {
  TCVS_ASSIGN_OR_RETURN(net::HttpResponse resp,
                        net::HttpGet(host, port, "/varz"));
  if (resp.status != 200) {
    return Status::Unavailable("/varz answered HTTP " +
                               std::to_string(resp.status));
  }
  TCVS_ASSIGN_OR_RETURN(util::JsonValue root, util::ParseJson(resp.body));
  TopSnapshot out;
  if (const util::JsonValue* counters = root.Get("counters")) {
    for (const auto& [name, v] : counters->object()) {
      if (v.is_number()) out.counters[name] = v.AsU64();
    }
  }
  if (const util::JsonValue* hists = root.Get("histograms")) {
    for (const auto& [name, h] : hists->object()) {
      out.varz_hists[name] = {h.GetU64("p50"), h.GetU64("p99")};
    }
  }
  return out;
}

uint64_t CounterDelta(const TopSnapshot& prev, const TopSnapshot& cur,
                      const std::string& name) {
  auto c = cur.counters.find(name);
  if (c == cur.counters.end()) return 0;
  auto p = prev.counters.find(name);
  const uint64_t before = p == prev.counters.end() ? 0 : p->second;
  return c->second >= before ? c->second - before : 0;
}

void PrintTopFrame(const TopSnapshot& prev, const TopSnapshot& cur,
                   double dt_seconds) {
  static const char* kMethods[] = {"transact",       "get_params", "shutdown",
                                   "list",           "log_checkpoint",
                                   "stats",          "trace_dump", "events",
                                   "profile"};
  // QUEUE/WORK/FSYNC first — they decompose the latency column (queue +
  // work + fsync = latency per request) — then the per-op work counters.
  static const char* kCostKeys[] = {"queue_us",     "work_us",
                                    "wal_fsync_wait_us",
                                    "hashes",       "bytes_hashed",
                                    "sig_verifies", "vo_bytes",
                                    "wal_appends"};
  static const char* kCostHeaders[] = {"QUEUE/OP", "WORK/OP", "FSYNC/OP",
                                       "HSH/OP",   "BH/OP",   "SIG/OP",
                                       "VOB/OP",   "WAL/OP"};
  constexpr size_t kNumCost = sizeof(kCostKeys) / sizeof(kCostKeys[0]);
  const bool interval_quantiles = !cur.histograms.empty();
  // Pad the METHOD column to the longest method name so the columns never
  // jitter when a long-named method (log_checkpoint) joins mid-session.
  static const int kMethodWidth = [] {
    size_t w = 0;
    for (const char* m : kMethods) w = std::max(w, std::strlen(m));
    return static_cast<int>(w);
  }();
  std::printf("-- %.1fs interval (%s quantiles) --\n", dt_seconds,
              interval_quantiles ? "interval" : "cumulative /varz");
  std::printf("%-*s %8s %8s %8s", kMethodWidth, "METHOD", "QPS", "P50_US",
              "P99_US");
  for (const char* header : kCostHeaders) std::printf(" %9s", header);
  std::printf("\n");
  size_t rows = 0;
  for (const char* method : kMethods) {
    const std::string base = std::string("rpc.serve.") + method;
    const uint64_t ops = CounterDelta(prev, cur, base + ".requests_total");
    if (ops == 0) continue;
    ++rows;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    if (auto it = cur.histograms.find(base + ".latency_us");
        it != cur.histograms.end()) {
      auto before = prev.histograms.find(base + ".latency_us");
      const util::Histogram delta = before == prev.histograms.end()
                                        ? it->second
                                        : it->second.DeltaSince(before->second);
      p50 = delta.p50();
      p99 = delta.p99();
    } else if (auto it = cur.varz_hists.find(base + ".latency_us");
               it != cur.varz_hists.end()) {
      p50 = it->second.p50;
      p99 = it->second.p99;
    }
    std::printf("%-*s %8.1f %8llu %8llu", kMethodWidth, method,
                static_cast<double>(ops) / dt_seconds,
                (unsigned long long)p50, (unsigned long long)p99);
    // Cost-per-op columns; "-" for methods without cost instrumentation
    // (only execution-bearing RPCs charge the cost accumulator).
    const bool has_cost = cur.counters.count(base + ".cost.hashes_total") > 0;
    for (size_t k = 0; k < kNumCost; ++k) {
      if (!has_cost) {
        std::printf(" %9s", "-");
        continue;
      }
      const uint64_t delta = CounterDelta(
          prev, cur, base + ".cost." + kCostKeys[k] + "_total");
      std::printf(" %9.1f", static_cast<double>(delta) / ops);
    }
    std::printf("\n");
  }
  if (rows == 0) std::printf("(no RPCs served in the interval)\n");
}

int RunTop(const std::function<Result<TopSnapshot>()>& fetch, int interval_ms,
           int frames) {
  auto prev = fetch();
  if (!prev.ok()) return Fail(prev.status());
  for (int f = 0; f < frames; ++f) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    auto cur = fetch();
    if (!cur.ok()) return Fail(cur.status());
    PrintTopFrame(*prev, *cur, static_cast<double>(interval_ms) / 1000.0);
    prev = std::move(cur);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string server_addr;
  std::string state_file;
  uint32_t user = 0;
  rpc::RemoteOptions remote_options;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server_addr = argv[++i];
    } else if (std::strcmp(argv[i], "--user") == 0 && i + 1 < argc) {
      user = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--state") == 0 && i + 1 < argc) {
      state_file = argv[++i];
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      remote_options.retry.max_attempts = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--backoff-ms") == 0 && i + 1 < argc) {
      remote_options.retry.initial_backoff_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      int t = std::atoi(argv[++i]);
      remote_options.connect_timeout_ms = t;
      remote_options.io_timeout_ms = t;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return Usage();
  const std::string& cmd = args[0];

  // Offline commands first.
  if (cmd == "check") {
    std::vector<cvs::ClientState> states;
    for (size_t i = 1; i < args.size(); ++i) {
      auto data = ReadFile(args[i]);
      if (!data.ok()) return Fail(data.status());
      auto state = cvs::ClientState::Deserialize(*data);
      if (!state.ok()) return Fail(state.status());
      states.push_back(std::move(state).ValueOrDie());
    }
    Status st = cvs::VerifyingClient::SyncCheck(states);
    std::printf("sync-up over %zu states: %s\n", states.size(),
                st.ok() ? "CONSISTENT — one serial history" : st.ToString().c_str());
    return st.ok() ? 0 : 3;
  }
  if (cmd == "state") {
    auto data = ReadFile(state_file);
    if (!data.ok()) return Fail(data.status());
    auto state = cvs::ClientState::Deserialize(*data);
    if (!state.ok()) return Fail(state.status());
    std::printf("user=%u lctr=%llu gctr=%llu\nsigma=%s\nlast =%s\n",
                state->user_id, (unsigned long long)state->lctr,
                (unsigned long long)state->gctr,
                util::HexEncode(state->sigma).c_str(),
                util::HexEncode(state->last).c_str());
    return 0;
  }

  // Networked commands.
  std::string host = "127.0.0.1";
  uint16_t port = 7199;
  if (!server_addr.empty()) {
    size_t colon = server_addr.rfind(':');
    if (colon == std::string::npos) return Usage();
    host = server_addr.substr(0, colon);
    port = static_cast<uint16_t>(std::atoi(server_addr.c_str() + colon + 1));
  }
  if (cmd == "top") {
    int interval_ms = 1000;
    int frames = 1;
    std::string admin_addr;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--interval-ms" && i + 1 < args.size()) {
        interval_ms = std::atoi(args[++i].c_str());
      } else if (args[i] == "--frames" && i + 1 < args.size()) {
        frames = std::atoi(args[++i].c_str());
      } else if (args[i] == "--admin" && i + 1 < args.size()) {
        admin_addr = args[++i];
      } else {
        return Usage();
      }
    }
    if (interval_ms <= 0 || frames <= 0) return Usage();
    if (!admin_addr.empty()) {
      size_t colon = admin_addr.rfind(':');
      if (colon == std::string::npos) return Usage();
      const std::string admin_host = admin_addr.substr(0, colon);
      const uint16_t admin_port =
          static_cast<uint16_t>(std::atoi(admin_addr.c_str() + colon + 1));
      return RunTop(
          [&] { return TopFromVarz(admin_host, admin_port); },
          interval_ms, frames);
    }
    auto conn = rpc::RemoteServer::Connect(host, port, remote_options);
    if (!conn.ok()) return Fail(conn.status());
    return RunTop([&] { return TopFromStats(conn->get()); }, interval_ms,
                  frames);
  }

  auto remote = rpc::RemoteServer::Connect(host, port, remote_options);
  if (!remote.ok()) {
    if (rpc::IsRetryableTransport(remote.status())) {
      return ServeDegraded(cmd, args, state_file, remote.status());
    }
    return Fail(remote.status());
  }

  if (cmd == "shutdown") {
    Status st = (*remote)->Shutdown();
    if (!st.ok()) return Fail(st);
    std::printf("server shut down\n");
    return 0;
  }

  if (cmd == "stats") {
    auto snap = (*remote)->Stats();
    if (!snap.ok()) return Fail(snap.status());
    std::string text = snap->TextFormat();
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }

  if (cmd == "trace") {
    auto dump = (*remote)->TraceDump();
    if (!dump.ok()) return Fail(dump.status());
    std::string json = dump->ChromeTraceJson();
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  if (cmd == "profile") {
    int seconds = 5;
    int hz = 100;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--seconds" && i + 1 < args.size()) {
        seconds = std::atoi(args[++i].c_str());
      } else if (args[i] == "--hz" && i + 1 < args.size()) {
        hz = std::atoi(args[++i].c_str());
      } else {
        return Usage();
      }
    }
    std::fprintf(stderr, "tcvs: profiling server for %ds at %d Hz...\n",
                 seconds, hz);
    auto folded = (*remote)->Profile(seconds, hz);
    if (!folded.ok()) return Fail(folded.status());
    std::fwrite(folded->data(), 1, folded->size(), stdout);
    return 0;
  }

  if (cmd == "events") {
    bool json = false;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--json") json = true;
    }
    auto events = (*remote)->Events();
    if (!events.ok()) return Fail(events.status());
    if (json) {
      for (const auto& e : *events) {
        std::printf("%s\n", e.JsonFormat().c_str());
      }
      return 0;
    }
    std::printf("%-5s %-26s %-5s %-8s %-6s %-16s %s\n", "SEQ", "KIND", "USER",
                "CTR", "EPOCH", "TRACE", "DETAIL");
    for (const auto& e : *events) {
      std::printf("%-5llu %-26s %-5u %-8llu %-6llu %016llx %s\n",
                  (unsigned long long)e.seq, util::AuditEventKindName(e.kind),
                  e.user, (unsigned long long)e.ctr,
                  (unsigned long long)e.epoch, (unsigned long long)e.trace_id,
                  e.detail.c_str());
    }
    std::printf("%zu audit events\n", events->size());
    return 0;
  }

  if (user == 0 || state_file.empty()) return Usage();

  // Load or initialize the client state.
  cvs::ClientState state;
  if (auto data = ReadFile(state_file); data.ok()) {
    auto parsed = cvs::ClientState::Deserialize(*data);
    if (!parsed.ok()) return Fail(parsed.status());
    state = std::move(parsed).ValueOrDie();
    if (state.user_id != user) {
      return Fail(Status::InvalidArgument("state file belongs to user " +
                                          std::to_string(state.user_id)));
    }
  } else {
    cvs::VerifyingClient fresh(user, remote->get());
    state = fresh.state();
  }
  cvs::VerifyingClient client(state, remote->get());
  cvs::LocalCache cache = LoadCache(state_file);
  // Warm the VO subtree cache from the sidecar: repeat proofs across CLI
  // invocations then verify at one hash per unchanged subtree.
  cache.LoadVoEntriesInto(client.vo_cache());
  bool cache_dirty = false;

  int rc = 0;
  if (cmd == "checkout" || cmd == "cat") {
    if (args.size() != 2) return Usage();
    auto rec = client.Checkout(args[1]);
    if (!rec.ok()) {
      rc = Fail(rec.status());
    } else {
      cache.Put(args[1], *rec);
      cache_dirty = true;
      if (cmd == "cat") {
        std::fwrite(rec->content.data(), 1, rec->content.size(), stdout);
      } else {
        std::printf("%s revision %llu (%zu bytes) [verified]\n",
                    args[1].c_str(), (unsigned long long)rec->revision,
                    rec->content.size());
      }
    }
  } else if (cmd == "commit") {
    if (args.size() != 4) return Usage();
    uint64_t base = std::strtoull(args[2].c_str(), nullptr, 10);
    auto rev = client.Commit(args[1], args[3], base);
    if (!rev.ok()) {
      rc = Fail(rev.status());
    } else {
      cache.Put(args[1], cvs::FileRecord{*rev, args[3]});
      cache_dirty = true;
      std::printf("committed %s -> revision %llu [verified]\n", args[1].c_str(),
                  (unsigned long long)*rev);
    }
  } else if (cmd == "ls") {
    std::string prefix = args.size() > 1 ? args[1] : "";
    auto listing = client.ListDir(prefix);
    if (!listing.ok()) {
      rc = Fail(listing.status());
    } else {
      for (const auto& [path, revision] : *listing) {
        std::printf("%-50s r%llu\n", path.c_str(),
                    (unsigned long long)revision);
      }
      std::printf("%zu files [verified complete]\n", listing->size());
    }
  } else if (cmd == "audit") {
    Status st = client.AuditLog();
    if (!st.ok()) {
      rc = Fail(st);
    } else {
      std::printf("transparency log consistent; checkpoint advanced to %llu "
                  "entries [verified append-only]\n",
                  (unsigned long long)client.log_checkpoint_size());
    }
  } else if (cmd == "remove") {
    if (args.size() != 2) return Usage();
    Status st = client.Remove(args[1]);
    if (!st.ok()) {
      rc = Fail(st);
    } else {
      cache.Erase(args[1]);
      cache_dirty = true;
      std::printf("removed %s [verified]\n", args[1].c_str());
    }
  } else {
    return Usage();
  }

  // Persist the (possibly advanced) registers even after clean failures:
  // rejected commits are transactions too.
  if (rc != 3) {
    Status st = WriteFile(state_file, client.state().Serialize());
    if (!st.ok()) return Fail(st);
    if (cache_dirty) {
      // Best-effort: the cache only feeds degraded mode and proof warm-up;
      // losing it costs availability/speed during an outage, never
      // correctness.
      cache.StoreVoEntries(*client.vo_cache());
      (void)WriteFile(CachePath(state_file), cache.Serialize());
    }
  }
  return rc;
}
