#!/usr/bin/env python3
"""Strict validator for the Prometheus text exposition emitted at /metrics.

The admin plane's `/metrics` body (util::MetricsSnapshot::TextFormat) is a
contract: scrapers parse it with no error recovery, so a malformed line is
silently dropped data on the monitoring side. This checker enforces the
contract stricter than real Prometheus does — anything it passes, any
scraper will ingest:

  syntax        every line is a `# TYPE <name> <kind>` / `# HELP` comment or
                a `<name>[{labels}] <value>[ <exemplar>]` sample; names match
                [a-zA-Z_:][a-zA-Z0-9_:]*; label values are quoted with only
                \\" \\\\ \\n escapes; values parse as numbers.

  type-first    a sample's family must be declared by a preceding TYPE line;
                each family has exactly one TYPE; all samples of a family
                are contiguous (no resuming a family after another started).

  no-dupes      no two samples share (name, labelset) — duplicate series are
                undefined behavior at ingestion.

  naming        counter families end in `_total`; gauge and summary family
                names do NOT end in a reserved suffix (_total, _sum, _count,
                _bucket, _info) — those suffixes change how scrapers type
                the series. (`check_metric_name` exports this rule to
                lint.py, which applies it to the dotted in-process names at
                the GetCounter/GetGauge/GetLatency registration sites.)

  summary-shape a summary family's samples are `fam{quantile="q"}` lines
                with unique q in [0,1], plus exactly one `fam_sum` and one
                `fam_count`; count and sum are non-negative integers here
                (latency histograms count microseconds).

  exemplars     an exemplar suffix is ` # {trace_id="<16 lowercase hex>"}
                <value> <unix-ts>`; the trace id joins against /tracez, so a
                malformed one breaks the p99-to-trace pivot this plane
                exists for. Exemplars are only valid on quantile samples.

Usage:
  promcheck.py <file>      validate a scraped /metrics body ('-' = stdin)
  promcheck.py --self-test run the embedded good/bad corpus

Exit 0 when clean; each problem prints `line N: [rule] message` and exits 1.
`tools/check.sh obs` scrapes a live server and runs this over the body.
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPE_LINE_RE = re.compile(r"^# TYPE (\S+) (\S+)$")
HELP_LINE_RE = re.compile(r"^# HELP (\S+) ?(.*)$")
TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")

RESERVED_SUFFIXES = ("_total", "_sum", "_count", "_bucket", "_info")
KNOWN_KINDS = ("counter", "gauge", "summary", "histogram", "untyped")


def check_metric_name(name, kind):
    """Returns an error string (or None) for a metric name of the given kind.

    Works on either exposition names (tcvs_rpc_serve_transact_latency_us)
    or the dotted in-process names lint.py sees at registration sites
    (rpc.serve.transact.latency_us): only the suffix matters.
    """
    if kind == "counter":
        if not name.endswith("_total"):
            return (f'counter "{name}" must end in "_total" '
                    "(Prometheus counter naming convention)")
        return None
    for suffix in RESERVED_SUFFIXES:
        if name.endswith(suffix):
            return (f'{kind} "{name}" ends in reserved suffix "{suffix}"; '
                    "scrapers would mistype the series")
    return None


def _parse_labels(text, errors, lineno):
    """Parses `key="value",...` (no surrounding braces) into a dict."""
    labels = {}
    pos = 0
    while pos < len(text):
        m = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', text[pos:])
        if not m:
            errors.append((lineno, "syntax",
                           f'bad label syntax at "{text[pos:]}"'))
            return labels
        key = m.group(1)
        pos += m.end()
        value = []
        while pos < len(text) and text[pos] != '"':
            if text[pos] == "\\":
                if pos + 1 >= len(text) or text[pos + 1] not in '\\"n':
                    errors.append((lineno, "syntax",
                                   "bad escape in label value"))
                    return labels
                value.append(text[pos:pos + 2])
                pos += 2
            else:
                value.append(text[pos])
                pos += 1
        if pos >= len(text):
            errors.append((lineno, "syntax", "unterminated label value"))
            return labels
        pos += 1  # closing quote
        if key in labels:
            errors.append((lineno, "syntax", f'duplicate label "{key}"'))
        labels[key] = "".join(value)
        if pos < len(text):
            if text[pos] != ",":
                errors.append((lineno, "syntax",
                               f'expected "," between labels at '
                               f'"{text[pos:]}"'))
                return labels
            pos += 1
    return labels


def _parse_number(token):
    try:
        return float(token)
    except ValueError:
        return None


def _split_exemplar(rest):
    """Splits `<value> [# {...} <value> <ts>]` -> (value, exemplar|None)."""
    hash_pos = rest.find(" # ")
    if hash_pos < 0:
        return rest.strip(), None
    return rest[:hash_pos].strip(), rest[hash_pos + 3:].strip()


class _Family:
    def __init__(self, kind, lineno):
        self.kind = kind
        self.lineno = lineno
        self.quantiles = []
        self.has_sum = False
        self.has_count = False
        self.closed = False  # another family's samples started after ours


def check_text(text):
    """Validates a /metrics body. Returns [(lineno, rule, message), ...]."""
    errors = []
    families = {}      # exposition family name -> _Family
    current = None     # family name whose samples we are inside
    seen_series = set()

    def family_for_sample(name):
        """Maps a sample name to its declared family, or None."""
        if name in families:
            return name
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                fam = families.get(base)
                if fam is not None and fam.kind in ("summary", "histogram"):
                    return base
        return None

    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # trailing newline is fine
    for lineno, line in enumerate(lines, start=1):
        if line == "":
            errors.append((lineno, "syntax", "blank line in exposition"))
            continue
        if line.startswith("#"):
            m = TYPE_LINE_RE.match(line)
            if m:
                name, kind = m.groups()
                if not METRIC_NAME_RE.match(name):
                    errors.append((lineno, "syntax",
                                   f'bad metric name "{name}"'))
                    continue
                if kind not in KNOWN_KINDS:
                    errors.append((lineno, "syntax",
                                   f'unknown metric kind "{kind}"'))
                    continue
                if name in families:
                    errors.append((lineno, "type-first",
                                   f'duplicate TYPE for family "{name}" '
                                   f"(first at line {families[name].lineno})"))
                    continue
                err = check_metric_name(name, kind)
                if err:
                    errors.append((lineno, "naming", err))
                families[name] = _Family(kind, lineno)
                continue
            if HELP_LINE_RE.match(line) or line == "# EOF":
                continue
            errors.append((lineno, "syntax",
                           f'comment is neither TYPE nor HELP: "{line}"'))
            continue

        # Sample line: name[{labels}] value [exemplar].
        m = re.match(r"^(\S+?)(\{([^}]*)\})? (.*)$", line)
        if not m:
            errors.append((lineno, "syntax", f'unparseable sample: "{line}"'))
            continue
        name, _, label_text, rest = m.groups()
        if not METRIC_NAME_RE.match(name):
            errors.append((lineno, "syntax", f'bad metric name "{name}"'))
            continue
        labels = (_parse_labels(label_text, errors, lineno)
                  if label_text is not None else {})
        value_token, exemplar = _split_exemplar(rest)
        if _parse_number(value_token) is None:
            errors.append((lineno, "syntax",
                           f'sample value "{value_token}" is not a number'))
            continue

        fam_name = family_for_sample(name)
        if fam_name is None:
            errors.append((lineno, "type-first",
                           f'sample "{name}" has no preceding TYPE line'))
            continue
        fam = families[fam_name]
        if current != fam_name:
            if fam.closed:
                errors.append((lineno, "type-first",
                               f'family "{fam_name}" resumes after another '
                               "family's samples; families must be "
                               "contiguous"))
            if current is not None and current in families:
                families[current].closed = True
            current = fam_name

        series = (name, tuple(sorted(labels.items())))
        if series in seen_series:
            errors.append((lineno, "no-dupes",
                           f'duplicate series "{name}" with identical '
                           "labels"))
        seen_series.add(series)

        if fam.kind == "summary":
            if name == fam_name:
                q = labels.get("quantile")
                if q is None or set(labels) != {"quantile"}:
                    errors.append((lineno, "summary-shape",
                                   "summary sample must carry exactly the "
                                   '"quantile" label'))
                else:
                    qv = _parse_number(q)
                    if qv is None or not 0.0 <= qv <= 1.0:
                        errors.append((lineno, "summary-shape",
                                       f'quantile "{q}" not in [0, 1]'))
                    if q in fam.quantiles:
                        errors.append((lineno, "summary-shape",
                                       f'duplicate quantile label "{q}"'))
                    fam.quantiles.append(q)
            elif name == fam_name + "_sum":
                fam.has_sum = True
            elif name == fam_name + "_count":
                fam.has_count = True
            if name != fam_name and not re.fullmatch(r"\d+", value_token):
                errors.append((lineno, "summary-shape",
                               f'{name} must be a non-negative integer, '
                               f'got "{value_token}"'))
        elif labels:
            errors.append((lineno, "syntax",
                           f'{fam.kind} sample "{name}" carries labels; '
                           "this exposition emits them bare"))

        if exemplar is not None:
            if fam.kind != "summary" or name != fam_name:
                errors.append((lineno, "exemplars",
                               "exemplar on a non-quantile sample"))
                continue
            em = re.match(r'^\{trace_id="([0-9a-fA-F]*)"\} (\S+) (\S+)$',
                          exemplar)
            if not em:
                errors.append((lineno, "exemplars",
                               f'bad exemplar syntax: "{exemplar}"'))
                continue
            trace_id, ex_value, ex_ts = em.groups()
            if not TRACE_ID_RE.match(trace_id):
                errors.append((lineno, "exemplars",
                               f'trace id "{trace_id}" is not 16 lowercase '
                               "hex digits; it cannot join /tracez"))
            if not re.fullmatch(r"\d+", ex_value):
                errors.append((lineno, "exemplars",
                               f'exemplar value "{ex_value}" is not a '
                               "non-negative integer"))
            ts = _parse_number(ex_ts)
            if ts is None or ts < 0:
                errors.append((lineno, "exemplars",
                               f'exemplar timestamp "{ex_ts}" is not a '
                               "non-negative number"))

    for name, fam in families.items():
        if fam.kind == "summary" and fam.quantiles:
            if not fam.has_sum:
                errors.append((fam.lineno, "summary-shape",
                               f'summary "{name}" has no _sum sample'))
            if not fam.has_count:
                errors.append((fam.lineno, "summary-shape",
                               f'summary "{name}" has no _count sample'))
    return errors


GOOD_DOC = """\
# TYPE tcvs_rpc_serve_transact_requests_total counter
tcvs_rpc_serve_transact_requests_total 42
# TYPE tcvs_net_admin_workers gauge
tcvs_net_admin_workers 2
# TYPE tcvs_rpc_serve_transact_latency_us summary
tcvs_rpc_serve_transact_latency_us{quantile="0.5"} 120
tcvs_rpc_serve_transact_latency_us{quantile="0.9"} 340
tcvs_rpc_serve_transact_latency_us{quantile="0.99"} 900 # {trace_id="00f1e2d3c4b5a697"} 912 1754650000.000123
tcvs_rpc_serve_transact_latency_us_sum 48000
tcvs_rpc_serve_transact_latency_us_count 42
"""

# Each bad doc is (expected_rule, document).
BAD_DOCS = [
    ("naming", "# TYPE tcvs_requests counter\ntcvs_requests 1\n"),
    ("naming", "# TYPE tcvs_queue_depth_total gauge\n"
               "tcvs_queue_depth_total 3\n"),
    ("type-first", "tcvs_orphan_total 5\n"),
    ("type-first", "# TYPE tcvs_a_total counter\ntcvs_a_total 1\n"
                   "# TYPE tcvs_b_total counter\ntcvs_b_total 2\n"
                   "tcvs_a_total 3\n"),
    ("type-first", "# TYPE tcvs_a_total counter\n"
                   "# TYPE tcvs_a_total counter\ntcvs_a_total 1\n"),
    ("no-dupes", "# TYPE tcvs_a_total counter\ntcvs_a_total 1\n"
                 "tcvs_a_total 2\n"),
    ("syntax", "# TYPE tcvs_a_total counter\ntcvs_a_total banana\n"),
    ("syntax", "# TYPE tcvs_a_total counter\n\ntcvs_a_total 1\n"),
    ("syntax", "# a freeform comment\n"),
    ("syntax", "# TYPE tcvs bad-name! counter\n"),
    ("summary-shape", "# TYPE tcvs_lat summary\n"
                      'tcvs_lat{quantile="0.5"} 1\n'
                      'tcvs_lat{quantile="0.5"} 2\n'
                      "tcvs_lat_sum 3\ntcvs_lat_count 2\n"),
    ("summary-shape", "# TYPE tcvs_lat summary\n"
                      'tcvs_lat{quantile="1.5"} 1\n'
                      "tcvs_lat_sum 1\ntcvs_lat_count 1\n"),
    ("summary-shape", "# TYPE tcvs_lat summary\n"
                      'tcvs_lat{quantile="0.5"} 1\n'
                      "tcvs_lat_count 1\n"),
    ("exemplars", "# TYPE tcvs_a_total counter\n"
                  'tcvs_a_total 1 # {trace_id="00f1e2d3c4b5a697"} 1 1.0\n'),
    ("exemplars", "# TYPE tcvs_lat summary\n"
                  'tcvs_lat{quantile="0.5"} 1 '
                  '# {trace_id="SHORT"} 1 1.0\n'
                  "tcvs_lat_sum 1\ntcvs_lat_count 1\n"),
]


def self_test():
    failures = []
    errs = check_text(GOOD_DOC)
    if errs:
        failures.append(f"good doc flagged: {errs}")
    for i, (rule, doc) in enumerate(BAD_DOCS):
        errs = check_text(doc)
        if not errs:
            failures.append(f"bad doc #{i} (expect [{rule}]) passed clean")
        elif not any(r == rule for _, r, _ in errs):
            failures.append(
                f"bad doc #{i} expected [{rule}], got {errs}")
    if failures:
        for f in failures:
            print(f"promcheck self-test FAIL: {f}")
        return 1
    print(f"promcheck self-test OK ({len(BAD_DOCS)} bad docs rejected)")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    errors = check_text(text)
    for lineno, rule, message in errors:
        print(f"line {lineno}: [{rule}] {message}")
    if errors:
        print(f"promcheck: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"promcheck: OK ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
