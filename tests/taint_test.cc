// Tests for the trust-boundary taint layer (util/untrusted.h): the
// compile-time guarantees of Tainted<T> (no implicit unwrap, no default
// construction, endorsement only via registered verifier tokens) and — end
// to end — that a tampered server reply is rejected BEFORE any trusted-sink
// mutation: the deviation is audited as kVoMismatch and the client's
// Protocol II registers (σ, last, gctr, lctr) are byte-identical to their
// pre-attack values.

#include "util/untrusted.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "cvs/trusted.h"
#include "mtree/vo.h"
#include "rpc/protocol.h"
#include "util/audit.h"

namespace tcvs {
namespace {

// ---------------------------------------------------------------------------
// Compile-time probes
// ---------------------------------------------------------------------------

// A Tainted<T> never becomes a T implicitly and never appears from nowhere.
static_assert(!std::is_convertible_v<util::Tainted<int>, int>,
              "Tainted must not implicitly convert to its payload");
static_assert(!std::is_convertible_v<int, util::Tainted<int>>,
              "payloads must be wrapped explicitly");
static_assert(std::is_constructible_v<util::Tainted<int>, int>,
              "explicit wrapping is the entry into quarantine");
static_assert(!std::is_default_constructible_v<util::Tainted<int>>,
              "a tainted value always comes from somewhere");
static_assert(!std::is_assignable_v<util::Tainted<int>&, int>,
              "no patching a quarantined value into shape");
static_assert(sizeof(util::Tainted<cvs::ServerReply>) ==
                  sizeof(cvs::ServerReply),
              "quarantine is zero-overhead");

// Every registered verifier token is visible to the SFINAE trait...
static_assert(util::IsRegisteredTaintVerifier<mtree::VoVerified>::value);
static_assert(util::IsRegisteredTaintVerifier<cvs::ChainVerified>::value);
static_assert(util::IsRegisteredTaintVerifier<rpc::EnvelopeChecked>::value);

// ...and an unregistered token is not, which makes Endorse() drop out of
// overload resolution (detection idiom — the negative probe for "this must
// not compile").
struct CounterfeitToken {};
static_assert(!util::IsRegisteredTaintVerifier<CounterfeitToken>::value);

template <typename T, typename V, typename = void>
struct CanEndorseWith : std::false_type {};
template <typename T, typename V>
struct CanEndorseWith<
    T, V,
    std::void_t<decltype(util::Endorse(std::declval<util::Tainted<T>>(),
                                       std::declval<const V&>()))>>
    : std::true_type {};

static_assert(CanEndorseWith<int, mtree::VoVerified>::value,
              "registered tokens unlock quarantine");
static_assert(!CanEndorseWith<int, CounterfeitToken>::value,
              "an unregistered functor must not unlock quarantine");
static_assert(!CanEndorseWith<int, int>::value);

// ---------------------------------------------------------------------------
// Wrapper semantics
// ---------------------------------------------------------------------------

TEST(TaintedTest, BorrowInspectsAndEndorseUnwraps) {
  util::Tainted<std::string> quarantined(std::string("payload"));
  EXPECT_EQ(quarantined.untrusted(), "payload");  // Borrow: inspection only.
  std::string verified =
      TCVS_ENDORSE(std::move(quarantined), mtree::VoVerified{});
  EXPECT_EQ(verified, "payload");
}

TEST(TaintedTest, QuarantinePoolHoldsTaintedValues) {
  // The sync/agg pool pattern from core/user.h: no default construction
  // means operator[] is unusable — insert_or_assign is the idiom.
  std::map<uint32_t, util::Tainted<int>> pool;
  pool.insert_or_assign(1, util::Tainted<int>(10));
  pool.insert_or_assign(2, util::Tainted<int>(20));
  pool.insert_or_assign(1, util::Tainted<int>(11));  // Re-delivery wins.
  int sum = 0;
  for (const auto& [id, value] : pool) sum += value.untrusted();
  EXPECT_EQ(sum, 31);
}

// ---------------------------------------------------------------------------
// End to end: tampering is caught before any trusted-sink mutation
// ---------------------------------------------------------------------------

// A Byzantine transport: forwards to the real server but lies about the
// transaction outcome. The lie is applied on a *copy borrowed from
// quarantine* and re-wrapped — exactly the laundering move the taint layer
// exists to catch — which is legitimate here: tests/ simulate the attacker,
// and the attacker's side of the wire is not the trusted codebase
// (tools/taint_check.py scans src/ and tools/ only).
class TamperingServer : public cvs::ServerApi {
 public:
  explicit TamperingServer(cvs::ServerApi* inner) : inner_(inner) {}

  void set_tamper(bool on) { tamper_ = on; }

  Result<util::Tainted<cvs::ServerReply>> Transact(
      uint32_t user, const std::vector<cvs::FileOp>& ops) override {
    TCVS_ASSIGN_OR_RETURN(util::Tainted<cvs::ServerReply> reply,
                          inner_->Transact(user, ops));
    if (!tamper_) return reply;
    cvs::ServerReply forged = reply.untrusted();
    forged.applied = !forged.applied;  // Lie about the transaction outcome.
    return util::Tainted<cvs::ServerReply>(std::move(forged));
  }

  Result<util::Tainted<cvs::ListReply>> List(
      uint32_t user, const std::string& prefix) override {
    return inner_->List(user, prefix);
  }

  Result<util::Tainted<cvs::LogCheckpointReply>> LogCheckpoint(
      uint64_t old_size) override {
    return inner_->LogCheckpoint(old_size);
  }

  mtree::TreeParams tree_params() const override {
    return inner_->tree_params();
  }

 private:
  cvs::ServerApi* inner_;
  bool tamper_ = false;
};

class TaintEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override { util::AuditLog::Instance().ResetForTesting(); }
  void TearDown() override { util::AuditLog::Instance().ResetForTesting(); }
};

TEST_F(TaintEndToEndTest, TamperedReplyRejectedBeforeRegisterFold) {
  cvs::UntrustedServer server;
  TamperingServer proxy(&server);
  cvs::VerifyingClient victim(7, &proxy);

  // Honest traffic first, so the registers hold non-trivial state.
  ASSERT_TRUE(victim.Commit("a.txt", "v1", 0).ok());
  ASSERT_TRUE(victim.Checkout("a.txt").ok());
  const Bytes sigma_before = victim.sigma();
  const Bytes last_before = victim.last();
  const uint64_t gctr_before = victim.gctr();
  const uint64_t lctr_before = victim.lctr();
  const size_t events_before = util::AuditLog::Instance().Snapshot().size();

  // The attack: the proxy flips `applied` on the next commit's reply.
  proxy.set_tamper(true);
  auto result = victim.Commit("a.txt", "v2", 1);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeviationDetected())
      << result.status().ToString();

  // The deviation left a typed forensic record...
  std::vector<util::AuditEvent> events =
      util::AuditLog::Instance().Snapshot();
  ASSERT_GT(events.size(), events_before);
  bool saw_vo_mismatch = false;
  for (size_t i = events_before; i < events.size(); ++i) {
    if (events[i].kind == util::AuditEventKind::kVoMismatch &&
        events[i].user == 7u) {
      saw_vo_mismatch = true;
    }
  }
  EXPECT_TRUE(saw_vo_mismatch)
      << "tampered reply must be audited as kVoMismatch";

  // ...and the trusted sinks never ran: every register is byte-identical.
  EXPECT_EQ(victim.sigma(), sigma_before);
  EXPECT_EQ(victim.last(), last_before);
  EXPECT_EQ(victim.gctr(), gctr_before);
  EXPECT_EQ(victim.lctr(), lctr_before);

  // The client recovers once the transport is honest again (detection, not
  // corruption: quarantine kept the forged reply out of trusted state).
  proxy.set_tamper(false);
  auto retry = victim.Commit("b.txt", "w1", 0);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(victim.gctr(), gctr_before);
}

}  // namespace
}  // namespace tcvs
