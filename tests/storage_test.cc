// Storage engine tests: CRC, WAL prefix semantics under corruption, and
// crash-recovery of the durable repository server (same root digest ⇒
// verifying clients never notice the restart).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "storage/durable.h"
#include "storage/wal.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/random.h"

namespace tcvs {
namespace storage {
namespace {

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("tcvs_storage_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // Standard check value: CRC-32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32(util::ToBytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(Bytes{}), 0x00000000u);
  // IEEE: CRC-32 of "a" is 0xE8B7BE43.
  EXPECT_EQ(Crc32(util::ToBytes("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, DetectsBitFlips) {
  util::Rng rng(1);
  Bytes data = rng.RandomBytes(100);
  uint32_t crc = Crc32(data);
  for (int i = 0; i < 50; ++i) {
    Bytes mutated = data;
    mutated[rng.Uniform(mutated.size())] ^= 1 << rng.Uniform(8);
    if (mutated == data) continue;
    EXPECT_NE(Crc32(mutated), crc);
  }
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

TEST(WalTest, AppendAndReadBack) {
  TempDir dir;
  std::string path = dir.str() + "/wal.log";
  {
    auto wal = WalWriter::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(util::ToBytes("one")).ok());
    ASSERT_TRUE(wal->Append(util::ToBytes("two")).ok());
    ASSERT_TRUE(wal->Append(Bytes{}).ok());  // Empty record is legal.
  }
  bool truncated = true;
  auto records = ReadWal(path, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ(util::ToString((*records)[0]), "one");
  EXPECT_EQ(util::ToString((*records)[1]), "two");
  EXPECT_TRUE((*records)[2].empty());
}

TEST(WalTest, MissingFileIsEmpty) {
  TempDir dir;
  bool truncated = true;
  auto records = ReadWal(dir.str() + "/nope.log", &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  EXPECT_FALSE(truncated);
}

TEST(WalTest, ReopenAppends) {
  TempDir dir;
  std::string path = dir.str() + "/wal.log";
  {
    auto wal = WalWriter::Open(path);
    ASSERT_TRUE(wal->Append(util::ToBytes("first")).ok());
  }
  {
    auto wal = WalWriter::Open(path);
    ASSERT_TRUE(wal->Append(util::ToBytes("second")).ok());
  }
  auto records = ReadWal(path, nullptr);
  ASSERT_EQ(records->size(), 2u);
}

TEST(WalTest, TornTailYieldsLongestValidPrefix) {
  TempDir dir;
  std::string path = dir.str() + "/wal.log";
  util::Rng rng(9);
  std::vector<Bytes> originals;
  {
    auto wal = WalWriter::Open(path);
    for (int i = 0; i < 20; ++i) {
      originals.push_back(rng.RandomBytes(1 + rng.Uniform(200)));
      ASSERT_TRUE(wal->Append(originals.back()).ok());
    }
  }
  auto full = ReadFileBytes(path);
  ASSERT_TRUE(full.ok());

  // Property: any truncation recovers a prefix of the records.
  for (int trial = 0; trial < 60; ++trial) {
    size_t cut = rng.Uniform(full->size() + 1);
    Bytes torn(full->begin(), full->begin() + cut);
    ASSERT_TRUE(AtomicWriteFile(path, torn).ok());
    bool truncated = false;
    auto records = ReadWal(path, &truncated);
    ASSERT_TRUE(records.ok());
    ASSERT_LE(records->size(), originals.size());
    for (size_t i = 0; i < records->size(); ++i) {
      ASSERT_EQ((*records)[i], originals[i]) << "trial " << trial;
    }
    EXPECT_EQ(truncated, cut != full->size());
  }
}

TEST(WalTest, CorruptMiddleStopsPrefix) {
  TempDir dir;
  std::string path = dir.str() + "/wal.log";
  {
    auto wal = WalWriter::Open(path);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal->Append(util::ToBytes("record-" + std::to_string(i))).ok());
    }
  }
  auto full = ReadFileBytes(path);
  Bytes corrupt = *full;
  corrupt[corrupt.size() / 2] ^= 0xFF;  // Hits record ~2-3's payload or header.
  ASSERT_TRUE(AtomicWriteFile(path, corrupt).ok());
  bool truncated = false;
  auto records = ReadWal(path, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(truncated);
  EXPECT_LT(records->size(), 5u);
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ(util::ToString((*records)[i]), "record-" + std::to_string(i));
  }
}

// Deterministic torn-tail fixtures: one per way a crash can shear the last
// record (mid-header, mid-payload, payload landed but corrupt). Each must
// recover exactly the first record and report truncation.
//
// Layout on disk: rec1 = 8-byte header + "aaaa" (12 bytes), then rec2's
// 8-byte header + "bbbbbb".

class WalFixtureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = dir_.str() + "/wal.log";
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(util::ToBytes("aaaa")).ok());
    ASSERT_TRUE(wal->Append(util::ToBytes("bbbbbb")).ok());
    auto full = ReadFileBytes(path_);
    ASSERT_TRUE(full.ok());
    full_ = *full;
    ASSERT_EQ(full_.size(), 12u + 14u);
  }

  void ExpectPrefixOfOne() {
    bool truncated = false;
    auto records = ReadWal(path_, &truncated);
    ASSERT_TRUE(records.ok());
    EXPECT_TRUE(truncated);
    ASSERT_EQ(records->size(), 1u);
    EXPECT_EQ(util::ToString((*records)[0]), "aaaa");
  }

  TempDir dir_;
  std::string path_;
  Bytes full_;
};

TEST_F(WalFixtureTest, TruncatedHeader) {
  // Only 4 of the second record's 8 header bytes made it to disk.
  Bytes torn(full_.begin(), full_.begin() + 12 + 4);
  ASSERT_TRUE(AtomicWriteFile(path_, torn).ok());
  ExpectPrefixOfOne();
}

TEST_F(WalFixtureTest, TruncatedPayload) {
  // The second header landed, but only 3 of its 6 payload bytes did.
  Bytes torn(full_.begin(), full_.begin() + 12 + 8 + 3);
  ASSERT_TRUE(AtomicWriteFile(path_, torn).ok());
  ExpectPrefixOfOne();
}

TEST_F(WalFixtureTest, BadTailCrc) {
  // The full record landed but a payload byte rotted: the CRC must catch it.
  Bytes corrupt = full_;
  corrupt.back() ^= 0x01;
  ASSERT_TRUE(AtomicWriteFile(path_, corrupt).ok());
  ExpectPrefixOfOne();
}

// ---------------------------------------------------------------------------
// WAL under injected faults (torn appends, failing fsync, atomic crash)
// ---------------------------------------------------------------------------

class WalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Instance().Reset(); }
  void TearDown() override { util::FaultInjector::Instance().Reset(); }
};

TEST_F(WalFaultTest, SyncModeAppendsAndReadsBack) {
  TempDir dir;
  std::string path = dir.str() + "/wal.log";
  auto wal = WalWriter::Open(path, /*sync=*/true);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->sync());
  ASSERT_TRUE(wal->Append(util::ToBytes("durable")).ok());
  ASSERT_TRUE(wal->Append(util::ToBytes("records")).ok());
  bool truncated = true;
  auto records = ReadWal(path, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records->size(), 2u);
}

TEST_F(WalFaultTest, InjectedTornAppendYieldsPrefix) {
  TempDir dir;
  std::string path = dir.str() + "/wal.log";
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal->Append(util::ToBytes("rec-" + std::to_string(i))).ok());
  }
  // The next append "crashes" after 5 bytes of the framed record hit disk.
  util::FaultInjector::Instance().Arm(kFaultWalTorn,
                                      util::FaultSpec::OneShot(5));
  EXPECT_TRUE(wal->Append(util::ToBytes("lost")).IsIOError());
  wal->Close();

  bool truncated = false;
  auto records = ReadWal(path, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(truncated);
  ASSERT_EQ(records->size(), 3u);
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ(util::ToString((*records)[i]), "rec-" + std::to_string(i));
  }
}

TEST_F(WalFaultTest, DurableServerSurvivesTornAppend) {
  // Acceptance scenario: a torn WAL write during a transaction fails that
  // transaction, and recovery lands on the longest valid prefix.
  TempDir dir;
  mtree::TreeParams params;
  crypto::Digest digest_before;
  {
    auto server = DurableServer::Open(dir.str(), params);
    ASSERT_TRUE(server.ok());
    cvs::VerifyingClient alice(1, server->get());
    ASSERT_TRUE(alice.Commit("a.c", "v1", 0).ok());
    ASSERT_TRUE(alice.Commit("b.c", "v1", 0).ok());
    digest_before = (*server)->server()->tree().root_digest();

    util::FaultInjector::Instance().Arm(kFaultWalTorn,
                                        util::FaultSpec::OneShot(10));
    auto rev = alice.Commit("c.c", "v1", 0);
    ASSERT_FALSE(rev.ok());
    EXPECT_TRUE(rev.status().IsIOError());
    // Log-before-apply: the failed transaction never touched the tree.
    EXPECT_EQ((*server)->server()->ctr(), 2u);
  }
  auto recovered = DurableServer::Open(dir.str(), params);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->server()->ctr(), 2u);
  EXPECT_EQ((*recovered)->server()->tree().root_digest(), digest_before);
}

TEST_F(WalFaultTest, FailedFsyncSurfacesInSyncMode) {
  TempDir dir;
  auto wal = WalWriter::Open(dir.str() + "/wal.log", /*sync=*/true);
  ASSERT_TRUE(wal.ok());
  util::FaultInjector::Instance().Arm(kFaultWalSyncFail,
                                      util::FaultSpec::OneShot());
  EXPECT_TRUE(wal->Append(util::ToBytes("r")).IsIOError());
  // The fault auto-disarmed; the writer keeps working.
  EXPECT_TRUE(wal->Append(util::ToBytes("r2")).ok());
}

TEST_F(WalFaultTest, AtomicWriteCrashLeavesDestinationIntact) {
  TempDir dir;
  std::string path = dir.str() + "/file.bin";
  ASSERT_TRUE(AtomicWriteFile(path, util::ToBytes("v1")).ok());
  util::FaultInjector::Instance().Arm(kFaultAtomicCrash,
                                      util::FaultSpec::OneShot());
  EXPECT_TRUE(AtomicWriteFile(path, util::ToBytes("v2")).IsIOError());
  auto contents = ReadFileBytes(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(util::ToString(*contents), "v1");  // Destination untouched.
  EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));  // The orphan temp.
}

// ---------------------------------------------------------------------------
// DurableServer recovery
// ---------------------------------------------------------------------------

TEST(DurableServerTest, RestartPreservesRootDigest) {
  TempDir dir;
  mtree::TreeParams params;
  crypto::Digest digest_before;
  uint64_t ctr_before = 0;
  {
    auto server = DurableServer::Open(dir.str(), params);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    cvs::VerifyingClient alice(1, server->get());
    ASSERT_TRUE(alice.Commit("a.c", "v1", 0).ok());
    ASSERT_TRUE(alice.Commit("b.c", "v1", 0).ok());
    ASSERT_TRUE(alice.Commit("a.c", "v2", 1).ok());
    digest_before = (*server)->server()->tree().root_digest();
    ctr_before = (*server)->server()->ctr();
  }
  // "Restart".
  auto server = DurableServer::Open(dir.str(), params);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ((*server)->server()->tree().root_digest(), digest_before);
  EXPECT_EQ((*server)->server()->ctr(), ctr_before);
  // Clients continue verifying seamlessly.
  cvs::VerifyingClient bob(2, server->get());
  auto rec = bob.Checkout("a.c");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->content, "v2");
}

TEST(DurableServerTest, TransparencyLogSurvivesRestart) {
  TempDir dir;
  mtree::TreeParams params;
  Bytes alice_state;
  {
    auto server = DurableServer::Open(dir.str(), params);
    ASSERT_TRUE(server.ok());
    cvs::VerifyingClient alice(1, server->get());
    ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
    ASSERT_TRUE(alice.Commit("f", "v2", 1).ok());
    ASSERT_TRUE(alice.AuditLog().ok());
    ASSERT_TRUE((*server)->Checkpoint().ok());  // Log leaves land in snapshot.
    alice_state = alice.state().Serialize();
  }
  auto reopened = DurableServer::Open(dir.str(), params);
  ASSERT_TRUE(reopened.ok());
  auto state = cvs::ClientState::Deserialize(alice_state);
  ASSERT_TRUE(state.ok());
  cvs::VerifyingClient alice(*state, reopened->get());
  // The restarted server must still extend the audited checkpoint.
  ASSERT_TRUE(alice.Commit("f", "v3", 2).ok());
  EXPECT_TRUE(alice.AuditLog().ok());
  EXPECT_EQ(alice.log_checkpoint_size(), 3u);
}

TEST(DurableServerTest, CheckpointFoldsWal) {
  TempDir dir;
  mtree::TreeParams params;
  auto server = DurableServer::Open(dir.str(), params);
  ASSERT_TRUE(server.ok());
  cvs::VerifyingClient alice(1, server->get());
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
  EXPECT_EQ((*server)->wal_records(), 1u);
  ASSERT_TRUE((*server)->Checkpoint().ok());
  EXPECT_EQ((*server)->wal_records(), 0u);
  ASSERT_TRUE(alice.Commit("f", "v2", 1).ok());
  EXPECT_EQ((*server)->wal_records(), 1u);

  auto digest = (*server)->server()->tree().root_digest();
  server->reset();
  auto reopened = DurableServer::Open(dir.str(), params);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->server()->tree().root_digest(), digest);
}

TEST(DurableServerTest, CrashRecoveryProperty) {
  // Reference: apply transactions one by one on an in-memory server,
  // recording the root digest after each. Then: for random WAL cuts, the
  // recovered state must equal the reference state after some prefix.
  mtree::TreeParams params;
  util::Rng rng(77);

  std::vector<crypto::Digest> reference_digests;  // After i transactions.
  std::vector<std::pair<uint32_t, std::vector<cvs::FileOp>>> txns;
  {
    cvs::UntrustedServer reference(params);
    reference_digests.push_back(reference.tree().root_digest());
    std::map<std::string, uint64_t> rev;
    for (int i = 0; i < 30; ++i) {
      uint32_t user = 1 + rng.Uniform(3);
      std::string path = "f" + std::to_string(rng.Uniform(5));
      std::vector<cvs::FileOp> ops;
      uint64_t base = rev.count(path) ? rev[path] : 0;
      ops.push_back({cvs::FileOp::Kind::kCommit, path,
                     "content" + std::to_string(i), base});
      rev[path] = base + 1;
      ASSERT_TRUE(reference.Transact(user, ops).ok());
      reference_digests.push_back(reference.tree().root_digest());
      txns.emplace_back(user, std::move(ops));
    }
  }

  // Build the durable WAL by running all transactions.
  TempDir dir;
  {
    auto server = DurableServer::Open(dir.str(), params);
    ASSERT_TRUE(server.ok());
    for (const auto& [user, ops] : txns) {
      ASSERT_TRUE((*server)->Transact(user, ops).ok());
    }
  }
  auto full_wal = ReadFileBytes(dir.str() + "/wal.log");
  ASSERT_TRUE(full_wal.ok());

  for (int trial = 0; trial < 25; ++trial) {
    size_t cut = rng.Uniform(full_wal->size() + 1);
    Bytes torn(full_wal->begin(), full_wal->begin() + cut);
    ASSERT_TRUE(AtomicWriteFile(dir.str() + "/wal.log", torn).ok());
    std::remove((dir.str() + "/snapshot.bin").c_str());

    auto recovered = DurableServer::Open(dir.str(), params);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    const crypto::Digest digest =
        (*recovered)->server()->tree().root_digest();
    uint64_t ctr = (*recovered)->server()->ctr();
    ASSERT_LT(ctr, reference_digests.size());
    EXPECT_EQ(digest, reference_digests[ctr])
        << "trial " << trial << ": recovered to a non-prefix state";
    recovered->reset();
    // Restore the full WAL for the next trial.
    ASSERT_TRUE(AtomicWriteFile(dir.str() + "/wal.log", *full_wal).ok());
    std::remove((dir.str() + "/snapshot.bin").c_str());
  }
}

// ---------------------------------------------------------------------------
// WAL group commit
// ---------------------------------------------------------------------------

uint64_t CounterValue(const std::string& name) {
  auto snap = util::MetricsRegistry::Instance().Snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(DurableServerTest, ConcurrentGroupCommitAmortizesFsyncs) {
  // N threads commit concurrently with fsync on and the batching window
  // enabled: every transaction must still verify and recover exactly once,
  // but the flush leader covers whole batches, so the device sees strictly
  // fewer fsyncs than appends.
  constexpr int kThreads = 4;
  constexpr int kCommits = 16;
  TempDir dir;
  mtree::TreeParams params;
  DurableOptions options;
  options.fsync = true;
  options.group_commit_window_us = 5000;

  const uint64_t fsyncs_before = CounterValue("storage.wal.fsyncs_total");
  const uint64_t appends_before = CounterValue("storage.wal.appends_total");
  crypto::Digest digest_before_close;
  {
    auto server = DurableServer::Open(dir.str(), params, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        cvs::VerifyingClient client(static_cast<uint32_t>(t + 1),
                                    server->get());
        const std::string path = "gc/file" + std::to_string(t);
        for (int i = 0; i < kCommits; ++i) {
          auto rev = client.Commit(path, "v" + std::to_string(i),
                                   static_cast<uint64_t>(i));
          if (!rev.ok() || *rev != static_cast<uint64_t>(i + 1)) {
            ++failures;
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0);
    EXPECT_EQ((*server)->server()->ctr(),
              static_cast<uint64_t>(kThreads * kCommits));
    digest_before_close = (*server)->server()->tree().root_digest();
  }

  const uint64_t fsyncs = CounterValue("storage.wal.fsyncs_total") -
                          fsyncs_before;
  const uint64_t appends = CounterValue("storage.wal.appends_total") -
                           appends_before;
  EXPECT_EQ(appends, static_cast<uint64_t>(kThreads * kCommits));
  EXPECT_GE(fsyncs, 1u);
  // The amortization claim: at least one flush covered more than one
  // record. (With 64 concurrent commits and a 5 ms window the real batch
  // factor is far higher; the strict < is the non-flaky floor.)
  EXPECT_LT(fsyncs, appends);

  // Exactly-once replay: recovery reproduces the acknowledged state.
  auto recovered = DurableServer::Open(dir.str(), params, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->server()->ctr(),
            static_cast<uint64_t>(kThreads * kCommits));
  EXPECT_EQ((*recovered)->server()->tree().root_digest(), digest_before_close);
  cvs::VerifyingClient reader(100, recovered->get());
  for (int t = 0; t < kThreads; ++t) {
    auto rec = reader.Checkout("gc/file" + std::to_string(t));
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->content, "v" + std::to_string(kCommits - 1));
    EXPECT_EQ(rec->revision, static_cast<uint64_t>(kCommits));
  }
}

TEST_F(WalFaultTest, DurableServerSurvivesTornAppendWithGroupCommitWindow) {
  // The PR-2 torn-tail fixture, re-run with fsync + the group-commit window
  // enabled: a torn WAL write still fails exactly that transaction before
  // it applies, and recovery still lands on the longest valid prefix.
  TempDir dir;
  mtree::TreeParams params;
  DurableOptions options;
  options.fsync = true;
  options.group_commit_window_us = 1000;
  crypto::Digest digest_before;
  {
    auto server = DurableServer::Open(dir.str(), params, options);
    ASSERT_TRUE(server.ok());
    cvs::VerifyingClient alice(1, server->get());
    ASSERT_TRUE(alice.Commit("a.c", "v1", 0).ok());
    ASSERT_TRUE(alice.Commit("b.c", "v1", 0).ok());
    digest_before = (*server)->server()->tree().root_digest();

    util::FaultInjector::Instance().Arm(kFaultWalTorn,
                                        util::FaultSpec::OneShot(10));
    auto rev = alice.Commit("c.c", "v1", 0);
    ASSERT_FALSE(rev.ok());
    EXPECT_TRUE(rev.status().IsIOError());
    // Durable-before-apply: the failed transaction never touched the tree.
    EXPECT_EQ((*server)->server()->ctr(), 2u);
  }
  auto recovered = DurableServer::Open(dir.str(), params, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->server()->ctr(), 2u);
  EXPECT_EQ((*recovered)->server()->tree().root_digest(), digest_before);
}

TEST_F(WalFaultTest, GroupCommitFsyncFailureFailsTransactionWithoutApply) {
  // A failing fdatasync fails every transaction in the covering batch and
  // none of them applies: the reply must not exist for a record that never
  // became durable.
  TempDir dir;
  mtree::TreeParams params;
  DurableOptions options;
  options.fsync = true;
  options.group_commit_window_us = 1000;
  auto server = DurableServer::Open(dir.str(), params, options);
  ASSERT_TRUE(server.ok());
  cvs::VerifyingClient alice(1, server->get());
  ASSERT_TRUE(alice.Commit("a.c", "v1", 0).ok());

  util::FaultInjector::Instance().Arm(kFaultWalSyncFail,
                                      util::FaultSpec::OneShot());
  auto rev = alice.Commit("b.c", "v1", 0);
  ASSERT_FALSE(rev.ok());
  EXPECT_TRUE(rev.status().IsIOError());
  EXPECT_EQ((*server)->server()->ctr(), 1u);

  // The fault auto-disarmed; the coordinator keeps working afterwards.
  ASSERT_TRUE(alice.Commit("c.c", "v1", 0).ok());
  EXPECT_EQ((*server)->server()->ctr(), 2u);
}

TEST(DurableServerTest, GroupCommitMetricsRegister) {
  TempDir dir;
  mtree::TreeParams params;
  DurableOptions options;
  options.fsync = true;
  const uint64_t flushes_before =
      CounterValue("storage.wal.group_commit.flushes_total");
  auto server = DurableServer::Open(dir.str(), params, options);
  ASSERT_TRUE(server.ok());
  cvs::VerifyingClient alice(1, server->get());
  ASSERT_TRUE(alice.Commit("a.c", "v1", 0).ok());
  ASSERT_TRUE(alice.Commit("b.c", "v1", 0).ok());
  EXPECT_GE(CounterValue("storage.wal.group_commit.flushes_total") - flushes_before,
            2u);
  auto snap = util::MetricsRegistry::Instance().Snapshot();
  auto hist = snap.histograms.find("storage.wal.group_commit.batch_size");
  ASSERT_NE(hist, snap.histograms.end());
  EXPECT_GE(hist->second.count(), 2u);
}

TEST(DurableServerTest, CorruptSnapshotRejected) {
  TempDir dir;
  mtree::TreeParams params;
  {
    auto server = DurableServer::Open(dir.str(), params);
    ASSERT_TRUE(server.ok());
    cvs::VerifyingClient alice(1, server->get());
    ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
    ASSERT_TRUE((*server)->Checkpoint().ok());
  }
  auto snapshot = ReadFileBytes(dir.str() + "/snapshot.bin");
  Bytes bad = *snapshot;
  bad[2] ^= 0xFF;  // Corrupt the magic.
  ASSERT_TRUE(AtomicWriteFile(dir.str() + "/snapshot.bin", bad).ok());
  EXPECT_FALSE(DurableServer::Open(dir.str(), params).ok());
}

}  // namespace
}  // namespace storage
}  // namespace tcvs
