// Randomized end-to-end soundness/completeness sweep.
//
// For many random (workload, attack, protocol-parameter) combinations:
//
//   * completeness / no false alarms: an honest server is never accused;
//   * soundness: when the protocol raises the alarm, the server really had
//     attacked (the alarm round is at/after the attack engaged);
//   * detection: every attack that produced a ground-truth deviation is
//     detected by Protocol II, given a final forced sync-up.
//
// These are the paper's guarantees quantified over random instances rather
// than the handful of crafted scenarios in protocol_test.cc.

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "util/audit.h"
#include "util/random.h"
#include "workload/workload.h"

namespace tcvs {
namespace core {
namespace {

class SoundnessSweep : public ::testing::TestWithParam<uint64_t> {};

// True iff the audit log gained (since `min_seq`) a fork-evidence event —
// fork_detected or vo_mismatch — carrying BOTH divergent digests. Every
// detected run must leave one: detection without evidence is an assertion,
// not an audit trail.
bool HasForkEvidenceSince(uint64_t min_seq) {
  for (const util::AuditEvent& ev :
       util::AuditLog::Instance().SnapshotSince(min_seq)) {
    if ((ev.kind == util::AuditEventKind::kForkDetected ||
         ev.kind == util::AuditEventKind::kVoMismatch) &&
        !ev.expected_digest.empty() && !ev.actual_digest.empty()) {
      return true;
    }
  }
  return false;
}

TEST_P(SoundnessSweep, HonestServerNeverAccused) {
  util::Rng rng(GetParam() * 1000 + 1);
  for (int iter = 0; iter < 6; ++iter) {
    ScenarioConfig config;
    config.protocol = (iter % 2 == 0) ? ProtocolKind::kProtocolII
                                      : ProtocolKind::kProtocolIINaive;
    config.num_users = 2 + rng.Uniform(5);
    config.sync_k = 2 + rng.Uniform(10);
    config.forced_syncs = {700};

    workload::CvsWorkloadOptions opts;
    opts.num_users = config.num_users;
    opts.ops_per_user = 5 + rng.Uniform(20);
    opts.num_files = 2 + rng.Uniform(10);
    opts.read_fraction = rng.NextDouble();
    opts.zipf_theta = rng.NextDouble() * 0.95;
    opts.mean_think_rounds = 1 + rng.Uniform(6);
    opts.offline_probability = 0.0;
    opts.seed = rng.Next();
    Scenario scenario(config, workload::MakeCvsWorkload(opts));
    ScenarioReport r = scenario.Run(2500);
    ASSERT_FALSE(r.detected) << "false alarm (iter " << iter
                             << "): " << r.detection_reason;
    ASSERT_TRUE(r.all_scripts_done);
    ASSERT_FALSE(r.ground_truth_deviation);
  }
}

TEST_P(SoundnessSweep, RandomAttacksDetectedAndNeverBeforeEngaging) {
  util::Rng rng(GetParam() * 7777 + 13);
  int detected_count = 0;
  for (int iter = 0; iter < 8; ++iter) {
    ScenarioConfig config;
    config.protocol = ProtocolKind::kProtocolII;
    config.num_users = 3 + rng.Uniform(3);
    config.sync_k = 3 + rng.Uniform(8);
    config.forced_syncs = {1200};

    switch (rng.Uniform(3)) {
      case 0: {
        config.attack.kind = AttackKind::kFork;
        config.attack.trigger_round = 20 + rng.Uniform(60);
        // Random nonempty proper subset of users.
        uint32_t member = 2 + rng.Uniform(config.num_users - 1);
        config.attack.partition_a = {member};
        if (rng.Bernoulli(0.5) && member + 1 <= config.num_users) {
          config.attack.partition_a.insert(member + 1);
        }
        break;
      }
      case 1:
        config.attack.kind = AttackKind::kTamper;
        config.attack.trigger_round = 20 + rng.Uniform(80);
        break;
      case 2:
        config.attack.kind = AttackKind::kDrop;
        config.attack.trigger_round = 20 + rng.Uniform(80);
        break;
    }

    workload::CvsWorkloadOptions opts;
    opts.num_users = config.num_users;
    opts.ops_per_user = 20 + rng.Uniform(15);
    opts.num_files = 3 + rng.Uniform(6);
    opts.read_fraction = 0.3 + rng.NextDouble() * 0.4;
    opts.mean_think_rounds = 1 + rng.Uniform(4);
    opts.offline_probability = 0.0;
    opts.seed = rng.Next();
    const uint64_t audit_cursor = util::AuditLog::Instance().total_emitted();
    Scenario scenario(config, workload::MakeCvsWorkload(opts));
    ScenarioReport r = scenario.Run(4000);

    if (r.detected) {
      ++detected_count;
      // Soundness: the alarm never predates the attack actually engaging.
      ASSERT_GT(r.attack_engaged_round, 0u)
          << "iter " << iter << ": alarm with no attack: " << r.detection_reason;
      ASSERT_GE(r.detection_round, r.attack_engaged_round) << "iter " << iter;
      // Forensics: every detection leaves a typed fork-evidence audit event
      // with both divergent digests, whatever the attack primitive was.
      ASSERT_TRUE(HasForkEvidenceSince(audit_cursor))
          << "iter " << iter << ": detection without digest-pair evidence ("
          << r.detection_reason << ")";
    } else {
      // Undetected is acceptable only when the attack never engaged (e.g. a
      // tamper trigger past the workload's last commit) or no transaction
      // ever observed divergent data AND the σ-chain stayed single-path —
      // which for these attacks means the attack did not engage.
      ASSERT_EQ(r.attack_engaged_round, 0u)
          << "iter " << iter << ": engaged attack escaped detection ("
          << AttackKindToString(config.attack.kind) << ")";
    }
  }
  // The sweep must actually exercise detection to mean anything.
  EXPECT_GE(detected_count, 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace core
}  // namespace tcvs
