// End-to-end resilience tests over the real binaries: spawn `tcvsd`, drive
// it with `tcvs`, SIGKILL it, restart it from the same data directory, and
// check the client's verified view survives — plus the degraded read-only
// mode against a dead server. The binary paths are injected by CMake.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

namespace tcvs {
namespace {

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("tcvs_cli_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// A spawned tcvsd process; SIGKILLed on destruction if still running.
class Daemon {
 public:
  Daemon() = default;
  ~Daemon() { Kill(); }

  /// Spawns `tcvsd --port 0 --data-dir <dir> [extra...]` and parses the
  /// ephemeral port from its "listening on 127.0.0.1:PORT" banner.
  bool Start(const std::string& data_dir,
             const std::vector<std::string>& extra = {}) {
    int fds[2];
    if (::pipe(fds) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::close(fds[0]);
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[1]);
      std::vector<std::string> args = {TCVSD_BIN, "--port", "0",
                                       "--data-dir", data_dir};
      args.insert(args.end(), extra.begin(), extra.end());
      std::vector<char*> argv;
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(TCVSD_BIN, argv.data());
      ::_exit(127);
    }
    ::close(fds[1]);
    // Keep the read end open for the daemon's whole life: closing it would
    // SIGPIPE the daemon when it prints its shutdown banner.
    out_ = ::fdopen(fds[0], "r");
    if (out_ == nullptr) return false;
    char line[256];
    bool found = false;
    while (std::fgets(line, sizeof(line), out_) != nullptr) {
      unsigned parsed = 0;
      if (std::sscanf(line, "%*s listening on 127.0.0.1:%u", &parsed) == 1) {
        port_ = static_cast<uint16_t>(parsed);
        found = true;
        break;
      }
    }
    return found && port_ != 0;
  }

  void Kill() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    ClosePipe();
  }

  /// Reaps a daemon expected to exit on its own (e.g. after `tcvs shutdown`).
  int Wait() {
    int status = 0;
    if (pid_ > 0) {
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
    }
    ClosePipe();
    return status;
  }

  uint16_t port() const { return port_; }

 private:
  void ClosePipe() {
    if (out_ != nullptr) {
      std::fclose(out_);
      out_ = nullptr;
    }
  }

  pid_t pid_ = -1;
  std::FILE* out_ = nullptr;
  uint16_t port_ = 0;
};

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

/// Runs `tcvs <args>`, capturing stdout+stderr; returns the exit code.
int RunTcvs(const std::vector<std::string>& args, std::string* output) {
  std::string cmd = Quoted(TCVS_BIN);
  for (const auto& a : args) cmd += " " + Quoted(a);
  cmd += " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  output->clear();
  char buf[512];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output->append(buf, n);
  }
  int status = ::pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::vector<std::string> WithTransport(uint16_t port, const std::string& state,
                                       std::vector<std::string> tail) {
  std::vector<std::string> args = {
      "--server",     "127.0.0.1:" + std::to_string(port),
      "--user",       "1",
      "--state",      state,
      "--retries",    "3",
      "--backoff-ms", "10",
      "--timeout-ms", "2000"};
  args.insert(args.end(), tail.begin(), tail.end());
  return args;
}

TEST(CliResilienceTest, SigkillRestartPreservesVerifiedState) {
  TempDir dir;
  std::string data_dir = dir.str() + "/data";
  std::filesystem::create_directories(data_dir);
  std::string state = dir.str() + "/alice.state";

  Daemon daemon;
  ASSERT_TRUE(daemon.Start(data_dir));

  std::string out;
  ASSERT_EQ(RunTcvs(WithTransport(daemon.port(), state,
                                  {"commit", "f.c", "0", "hello wal"}),
                    &out), 0)
      << out;
  EXPECT_NE(out.find("revision 1"), std::string::npos) << out;

  // SIGKILL: no shutdown path runs; durability comes from the fsynced WAL.
  daemon.Kill();

  Daemon revived;
  ASSERT_TRUE(revived.Start(data_dir));
  ASSERT_EQ(RunTcvs(WithTransport(revived.port(), state, {"cat", "f.c"}),
                    &out), 0)
      << out;
  EXPECT_EQ(out, "hello wal");

  // The client's registers (committed pre-kill) verified against the
  // restarted server: one more mutation keeps the chain going.
  ASSERT_EQ(RunTcvs(WithTransport(revived.port(), state,
                                  {"commit", "f.c", "1", "after restart"}),
                    &out), 0)
      << out;
  EXPECT_NE(out.find("revision 2"), std::string::npos) << out;
}

TEST(CliResilienceTest, DegradedReadOnlyModeServesVerifiedCache) {
  TempDir dir;
  std::string data_dir = dir.str() + "/data";
  std::filesystem::create_directories(data_dir);
  std::string state = dir.str() + "/alice.state";

  uint16_t port;
  {
    Daemon daemon;
    ASSERT_TRUE(daemon.Start(data_dir));
    port = daemon.port();
    std::string out;
    ASSERT_EQ(RunTcvs(WithTransport(port, state,
                                    {"commit", "src/f.c", "0", "cached v1"}),
                      &out), 0)
        << out;
    // Populate the cache's listing knowledge too.
    ASSERT_EQ(RunTcvs(WithTransport(port, state, {"cat", "src/f.c"}), &out), 0);
    EXPECT_NE(out.find("cached v1"), std::string::npos) << out;
  }  // Daemon SIGKILLed here; the port now refuses connections.

  auto degraded = [&](std::vector<std::string> tail) {
    std::vector<std::string> args = {
        "--server",     "127.0.0.1:" + std::to_string(port),
        "--user",       "1",
        "--state",      state,
        "--retries",    "2",
        "--backoff-ms", "5",
        "--timeout-ms", "300"};
    args.insert(args.end(), tail.begin(), tail.end());
    return args;
  };

  // Reads degrade to the verified cache and still exit 0.
  std::string out;
  ASSERT_EQ(RunTcvs(degraded({"cat", "src/f.c"}), &out), 0) << out;
  EXPECT_NE(out.find("DEGRADED read-only mode"), std::string::npos) << out;
  EXPECT_NE(out.find("cached v1"), std::string::npos) << out;

  ASSERT_EQ(RunTcvs(degraded({"ls", "src/"}), &out), 0) << out;
  EXPECT_NE(out.find("src/f.c"), std::string::npos) << out;
  EXPECT_NE(out.find("degraded: verified cache"), std::string::npos) << out;

  // A file never verified locally cannot be served, even degraded.
  EXPECT_NE(RunTcvs(degraded({"cat", "src/other.c"}), &out), 0);

  // Mutations never degrade: read-only means read-only.
  EXPECT_NE(RunTcvs(degraded({"commit", "src/f.c", "1", "v2"}), &out), 0);
  EXPECT_EQ(out.find("committed"), std::string::npos) << out;
}

TEST(CliResilienceTest, ShutdownCommandStopsDaemon) {
  TempDir dir;
  std::string data_dir = dir.str() + "/data";
  std::filesystem::create_directories(data_dir);

  Daemon daemon;
  ASSERT_TRUE(daemon.Start(data_dir));
  std::string out;
  ASSERT_EQ(RunTcvs({"--server", "127.0.0.1:" + std::to_string(daemon.port()),
                     "shutdown"},
                    &out), 0)
      << out;
  int status = daemon.Wait();
  EXPECT_TRUE(WIFEXITED(status)) << status;
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace tcvs
