#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/lamport.h"
#include "crypto/merkle_sig.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "crypto/winternitz.h"
#include "util/bytes.h"
#include "util/random.h"

namespace tcvs {
namespace crypto {
namespace {

std::string HexOf(const Bytes& b) { return util::HexEncode(b); }

// ---------------------------------------------------------------------------
// SHA-256 — NIST FIPS 180-4 test vectors
// ---------------------------------------------------------------------------

TEST(Sha256Test, EmptyMessage) {
  EXPECT_EQ(HexOf(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexOf(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexOf(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HexOf(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t cut = 0; cut <= msg.size(); ++cut) {
    Sha256 h;
    h.Update(std::string_view(msg).substr(0, cut));
    h.Update(std::string_view(msg).substr(cut));
    EXPECT_EQ(h.Finish(), Sha256::Hash(msg)) << "cut=" << cut;
  }
}

TEST(Sha256Test, ResetRestoresInitialState) {
  Sha256 h;
  h.Update(std::string_view("garbage"));
  h.Reset();
  h.Update(std::string_view("abc"));
  EXPECT_EQ(h.Finish(), Sha256::Hash("abc"));
}

TEST(Sha256Test, BoundaryLengths) {
  // 55/56/64 bytes straddle the padding boundary.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha256 h;
    h.Update(msg);
    EXPECT_EQ(h.Finish(), Sha256::Hash(msg)) << "len=" << len;
  }
}

TEST(Sha256Test, HashConcatIsConcatenation) {
  Bytes a = util::ToBytes("foo");
  Bytes b = util::ToBytes("bar");
  EXPECT_EQ(HashConcat(a, b), Sha256::Hash("foobar"));
  EXPECT_EQ(HashConcat(a, b, a), Sha256::Hash("foobarfoo"));
}

// ---------------------------------------------------------------------------
// SHA-256 engine dispatch — the SAME FIPS 180-4 vectors pinned against every
// engine (scalar, SHA-NI when the CPU has it) and against the multi-buffer
// HashMany path, so a bad fast path can never pass on one engine and fail on
// another.
// ---------------------------------------------------------------------------

class Sha256EngineTest : public ::testing::TestWithParam<Sha256Engine> {
 protected:
  void SetUp() override {
    if (!Sha256EngineSupported(GetParam())) {
      GTEST_SKIP() << "engine " << Sha256EngineName(GetParam())
                   << " not supported on this CPU";
    }
    ASSERT_TRUE(ForceSha256Engine(GetParam()));
    ASSERT_EQ(ActiveSha256Engine(), GetParam());
  }
  void TearDown() override { ResetSha256Engine(); }
};

TEST_P(Sha256EngineTest, Fips180v4Vectors) {
  // NIST FIPS 180-4 / NIST CAVP vectors: the empty message, "abc", the
  // two-block message, plus padding-boundary lengths checked against the
  // scalar engine having produced them (pinned digests are engine-blind).
  EXPECT_EQ(HexOf(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(HexOf(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HexOf(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  EXPECT_EQ(HexOf(Sha256::Hash(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST_P(Sha256EngineTest, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HexOf(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST_P(Sha256EngineTest, PaddingBoundariesMatchPinnedScalarDigests) {
  // Digests computed once with the scalar reference; every engine must
  // reproduce them bit-for-bit across the 55/56/64-byte padding boundaries.
  const std::pair<size_t, const char*> pinned[] = {
      {55u, "d5e285683cd4efc02d021a5c62014694958901005d6f71e89e0989fac77e4072"},
      {56u, "04c26261370ee7541549d16dee320c723e3fd14671e66a099afe0a377c16888e"},
      {64u, "7ce100971f64e7001e8fe5a51973ecdfe1ced42befe7ee8d5fd6219506b5393c"},
      {65u, "9537c5fdf120482f7d58d25e9ed583f52c02b4e304ea814db1633ad565aed7e9"},
  };
  for (const auto& [len, hex] : pinned) {
    EXPECT_EQ(HexOf(Sha256::Hash(std::string(len, 'x'))), hex)
        << "len=" << len;
  }
}

TEST_P(Sha256EngineTest, HashManyMatchesSequentialHashing) {
  // Multi-buffer path on this engine: mixed single-block (even/odd counts,
  // so both the pair path and the leftover-lane path run) and multi-block
  // messages, all of which must equal per-message Sha256::Hash.
  for (size_t n : {0u, 1u, 2u, 3u, 7u, 16u}) {
    std::vector<Bytes> messages;
    for (size_t i = 0; i < n; ++i) {
      // Lengths sweep 0..55 (single block), plus >55 multi-block stragglers.
      size_t len = (i % 4 == 3) ? 100 + i : (i * 13) % 56;
      messages.push_back(Bytes(len, static_cast<uint8_t>('a' + i)));
    }
    std::vector<Digest> batched = HashMany(messages);
    ASSERT_EQ(batched.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batched[i], Sha256::Hash(messages[i])) << "n=" << n
                                                       << " i=" << i;
    }
  }
}

TEST_P(Sha256EngineTest, HashManyDigestsMayAliasInputs) {
  // The WOTS chain walker hashes digests in place: out[i] aliasing in[i]
  // is part of the HashManyInto contract.
  std::vector<Digest> chain = {Sha256::Hash("seed0"), Sha256::Hash("seed1"),
                               Sha256::Hash("seed2")};
  std::vector<Digest> expect = chain;
  for (auto& d : expect) d = Sha256::Hash(d);
  std::vector<const Bytes*> ptrs = {&chain[0], &chain[1], &chain[2]};
  HashManyInto(ptrs.data(), ptrs.size(), chain.data());
  EXPECT_EQ(chain, expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, Sha256EngineTest,
    ::testing::Values(Sha256Engine::kScalar, Sha256Engine::kShaNi),
    [](const ::testing::TestParamInfo<Sha256Engine>& info) {
      return Sha256EngineName(info.param);
    });

// ---------------------------------------------------------------------------
// HMAC-SHA256 — RFC 4231 test vectors
// ---------------------------------------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexOf(HmacSha256(key, util::ToBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HexOf(HmacSha256(util::ToBytes("Jefe"),
                             util::ToBytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(HexOf(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  Bytes key(131, 0xaa);
  EXPECT_EQ(
      HexOf(HmacSha256(key, util::ToBytes("Test Using Larger Than Block-Size "
                                          "Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(PrfTest, DistinctIndicesDistinctOutputs) {
  Bytes seed = util::ToBytes("seed");
  EXPECT_NE(Prf(seed, 0), Prf(seed, 1));
  EXPECT_NE(Prf2(seed, 0, 1), Prf2(seed, 1, 0));
  EXPECT_EQ(Prf(seed, 7), Prf(seed, 7));
}

// ---------------------------------------------------------------------------
// Lamport one-time signatures
// ---------------------------------------------------------------------------

TEST(LamportTest, SignVerifyRoundTrip) {
  LamportSigner signer(util::ToBytes("lamport-seed-1"));
  Bytes msg = util::ToBytes("commit file.c revision 3");
  auto sig = signer.Sign(msg);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(
      LamportSigner::VerifySignature(signer.public_key(), msg, *sig).ok());
}

TEST(LamportTest, WrongMessageFails) {
  LamportSigner signer(util::ToBytes("lamport-seed-2"));
  Bytes msg = util::ToBytes("original");
  auto sig = signer.Sign(msg);
  ASSERT_TRUE(sig.ok());
  Status st = LamportSigner::VerifySignature(signer.public_key(),
                                             util::ToBytes("forged"), *sig);
  EXPECT_TRUE(st.IsVerificationFailure());
}

TEST(LamportTest, TamperedSignatureFails) {
  LamportSigner signer(util::ToBytes("lamport-seed-3"));
  Bytes msg = util::ToBytes("message");
  Bytes sig = *signer.Sign(msg);
  sig[17] ^= 0x01;
  EXPECT_TRUE(LamportSigner::VerifySignature(signer.public_key(), msg, sig)
                  .IsVerificationFailure());
}

TEST(LamportTest, SecondSignRefused) {
  LamportSigner signer(util::ToBytes("lamport-seed-4"));
  EXPECT_EQ(signer.remaining_signatures(), 1u);
  ASSERT_TRUE(signer.Sign(util::ToBytes("one")).ok());
  EXPECT_EQ(signer.remaining_signatures(), 0u);
  EXPECT_TRUE(signer.Sign(util::ToBytes("two")).status().IsFailedPrecondition());
}

TEST(LamportTest, MalformedSizesRejected) {
  LamportSigner signer(util::ToBytes("lamport-seed-5"));
  Bytes msg = util::ToBytes("m");
  Bytes sig = *signer.Sign(msg);
  Bytes short_sig(sig.begin(), sig.begin() + 100);
  EXPECT_TRUE(LamportSigner::VerifySignature(signer.public_key(), msg, short_sig)
                  .IsInvalidArgument());
  Bytes short_pk(signer.public_key().begin(), signer.public_key().begin() + 64);
  EXPECT_TRUE(
      LamportSigner::VerifySignature(short_pk, msg, sig).IsInvalidArgument());
}

TEST(LamportTest, DeterministicKeygen) {
  LamportSigner a(util::ToBytes("same-seed"));
  LamportSigner b(util::ToBytes("same-seed"));
  EXPECT_EQ(a.public_key(), b.public_key());
  LamportSigner c(util::ToBytes("other-seed"));
  EXPECT_NE(a.public_key(), c.public_key());
}

// ---------------------------------------------------------------------------
// Winternitz one-time signatures
// ---------------------------------------------------------------------------

class WinternitzParamTest : public ::testing::TestWithParam<int> {};

TEST_P(WinternitzParamTest, SignVerifyRoundTrip) {
  WotsParams params{.w = GetParam()};
  WinternitzSigner signer(util::ToBytes("wots-seed"), params);
  Bytes msg = util::ToBytes("checkout src/main.c");
  auto sig = signer.Sign(msg);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(WinternitzSigner::VerifySignature(signer.public_key(), msg, *sig,
                                                params)
                  .ok());
}

TEST_P(WinternitzParamTest, WrongMessageFails) {
  WotsParams params{.w = GetParam()};
  WinternitzSigner signer(util::ToBytes("wots-seed-2"), params);
  Bytes msg = util::ToBytes("honest");
  auto sig = signer.Sign(msg);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(WinternitzSigner::VerifySignature(signer.public_key(),
                                                util::ToBytes("evil"), *sig, params)
                  .IsVerificationFailure());
}

TEST_P(WinternitzParamTest, TamperedSignatureFails) {
  WotsParams params{.w = GetParam()};
  WinternitzSigner signer(util::ToBytes("wots-seed-3"), params);
  Bytes msg = util::ToBytes("m");
  Bytes sig = *signer.Sign(msg);
  sig[5] ^= 0xff;
  EXPECT_TRUE(
      WinternitzSigner::VerifySignature(signer.public_key(), msg, sig, params)
          .IsVerificationFailure());
}

TEST_P(WinternitzParamTest, SignatureSizeMatchesParams) {
  WotsParams params{.w = GetParam()};
  WinternitzSigner signer(util::ToBytes("wots-seed-4"), params);
  Bytes sig = *signer.Sign(util::ToBytes("m"));
  EXPECT_EQ(sig.size(), params.total_chains() * kDigestSize);
  // Compressed public key is always one digest.
  EXPECT_EQ(signer.public_key().size(), kDigestSize);
}

INSTANTIATE_TEST_SUITE_P(AllW, WinternitzParamTest, ::testing::Values(1, 2, 4, 8));

TEST(WinternitzTest, ChunksChecksumInvariant) {
  // The checksum construction guarantees: increasing any message chunk
  // strictly decreases the checksum, preventing forgery-by-advancing-chains.
  WotsParams params{.w = 4};
  Digest md = Sha256::Hash("x");
  auto chunks = WinternitzSigner::Chunks(md, params);
  EXPECT_EQ(chunks.size(), params.total_chains());
  uint64_t checksum = 0;
  for (size_t i = 0; i < params.message_chains(); ++i) {
    checksum += params.chain_len() - chunks[i];
  }
  uint64_t encoded = 0;
  for (size_t i = 0; i < params.checksum_chains(); ++i) {
    encoded |= uint64_t(chunks[params.message_chains() + i]) << (4 * i);
  }
  EXPECT_EQ(checksum, encoded);
}

TEST(WinternitzTest, SecondSignRefused) {
  WinternitzSigner signer(util::ToBytes("wots-seed-5"));
  ASSERT_TRUE(signer.Sign(util::ToBytes("one")).ok());
  EXPECT_TRUE(signer.Sign(util::ToBytes("two")).status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Merkle signature scheme
// ---------------------------------------------------------------------------

TEST(MerkleSigTest, SignVerifyManyMessages) {
  MerkleSigner signer(util::ToBytes("mss-seed"), /*height=*/3);
  EXPECT_EQ(signer.remaining_signatures(), 8u);
  for (int i = 0; i < 8; ++i) {
    Bytes msg = util::ToBytes("message " + std::to_string(i));
    auto sig = signer.Sign(msg);
    ASSERT_TRUE(sig.ok()) << i;
    EXPECT_TRUE(
        MerkleSigner::VerifySignature(signer.public_key(), msg, *sig).ok())
        << i;
  }
  EXPECT_EQ(signer.remaining_signatures(), 0u);
}

TEST(MerkleSigTest, ExhaustionRefusesNinthSignature) {
  MerkleSigner signer(util::ToBytes("mss-seed-2"), 3);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(signer.Sign(util::ToBytes("m")).ok());
  EXPECT_TRUE(signer.Sign(util::ToBytes("m")).status().IsFailedPrecondition());
}

TEST(MerkleSigTest, WrongMessageFails) {
  MerkleSigner signer(util::ToBytes("mss-seed-3"), 2);
  Bytes sig = *signer.Sign(util::ToBytes("real"));
  EXPECT_TRUE(MerkleSigner::VerifySignature(signer.public_key(),
                                            util::ToBytes("fake"), sig)
                  .IsVerificationFailure());
}

TEST(MerkleSigTest, CrossLeafSignaturesAllVerify) {
  MerkleSigner signer(util::ToBytes("mss-seed-4"), 4);
  Bytes msg = util::ToBytes("same message, different leaves");
  Bytes s1 = *signer.Sign(msg);
  Bytes s2 = *signer.Sign(msg);
  EXPECT_NE(s1, s2);  // Different leaf index ⇒ different signature.
  EXPECT_TRUE(MerkleSigner::VerifySignature(signer.public_key(), msg, s1).ok());
  EXPECT_TRUE(MerkleSigner::VerifySignature(signer.public_key(), msg, s2).ok());
}

TEST(MerkleSigTest, TamperedAuthPathFails) {
  MerkleSigner signer(util::ToBytes("mss-seed-5"), 3);
  Bytes msg = util::ToBytes("m");
  Bytes sig = *signer.Sign(msg);
  sig[sig.size() - 1] ^= 0x80;  // Flip a bit in the last auth-path digest.
  EXPECT_TRUE(MerkleSigner::VerifySignature(signer.public_key(), msg, sig)
                  .IsVerificationFailure());
}

TEST(MerkleSigTest, MalformedSignatureRejected) {
  MerkleSigner signer(util::ToBytes("mss-seed-6"), 2);
  Bytes msg = util::ToBytes("m");
  Bytes sig = *signer.Sign(msg);
  Bytes truncated(sig.begin(), sig.begin() + 8);
  EXPECT_FALSE(
      MerkleSigner::VerifySignature(signer.public_key(), msg, truncated).ok());
  Bytes bad_pk(16, 0);
  EXPECT_TRUE(
      MerkleSigner::VerifySignature(bad_pk, msg, sig).IsInvalidArgument());
}

TEST(MerkleSigTest, GenericVerifyDispatch) {
  MerkleSigner signer(util::ToBytes("mss-seed-7"), 2);
  Bytes msg = util::ToBytes("dispatch");
  Bytes sig = *signer.Sign(msg);
  EXPECT_TRUE(Verify(SchemeId::kMerkleSig, signer.public_key(), msg, sig).ok());
  EXPECT_FALSE(Verify(SchemeId::kLamport, signer.public_key(), msg, sig).ok());
}

// ---------------------------------------------------------------------------
// Batched verification
// ---------------------------------------------------------------------------

TEST(VerifyBatchTest, AdvanceChainsMatchesSequentialWalk) {
  util::Rng rng(7);
  std::vector<Digest> chains;
  std::vector<uint32_t> steps;
  for (int i = 0; i < 23; ++i) {
    chains.push_back(rng.RandomBytes(kDigestSize));
    steps.push_back(static_cast<uint32_t>(rng.Uniform(18)));  // incl. 0
  }
  std::vector<Digest> expected = chains;
  for (size_t i = 0; i < expected.size(); ++i) {
    for (uint32_t s = 0; s < steps[i]; ++s) {
      expected[i] = Sha256::Hash(expected[i]);
    }
  }
  AdvanceChains(&chains, steps);
  EXPECT_EQ(chains, expected);
}

TEST(VerifyBatchTest, MatchesSequentialVerifyAcrossSchemes) {
  MerkleSigner mss(util::ToBytes("batch-mss-seed"), 3);
  WinternitzSigner wots(util::ToBytes("batch-wots-seed"));
  LamportSigner lamport(util::ToBytes("batch-lamport-seed"));

  std::vector<Bytes> messages, signatures, keys;
  std::vector<SchemeId> schemes;
  for (int i = 0; i < 4; ++i) {
    messages.push_back(util::ToBytes("mss message " + std::to_string(i)));
    signatures.push_back(*mss.Sign(messages.back()));
    keys.push_back(mss.public_key());
    schemes.push_back(SchemeId::kMerkleSig);
  }
  messages.push_back(util::ToBytes("wots message"));
  signatures.push_back(*wots.Sign(messages.back()));
  keys.push_back(wots.public_key());
  schemes.push_back(SchemeId::kWinternitz);
  messages.push_back(util::ToBytes("lamport message"));
  signatures.push_back(*lamport.Sign(messages.back()));
  keys.push_back(lamport.public_key());
  schemes.push_back(SchemeId::kLamport);

  std::vector<VerifyRequest> requests;
  for (size_t i = 0; i < messages.size(); ++i) {
    requests.push_back({schemes[i], &keys[i], &messages[i], &signatures[i]});
  }
  std::vector<Status> results = VerifyBatch(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << i << ": " << results[i].ToString();
    EXPECT_TRUE(Verify(schemes[i], keys[i], messages[i], signatures[i]).ok())
        << i;
  }
}

TEST(VerifyBatchTest, InvalidItemsFailIndividually) {
  MerkleSigner mss(util::ToBytes("batch-bad-seed"), 3);
  Bytes good_msg = util::ToBytes("good");
  Bytes good_sig = *mss.Sign(good_msg);
  Bytes wrong_msg = util::ToBytes("evil");
  Bytes tampered_sig = *mss.Sign(good_msg);
  tampered_sig[tampered_sig.size() - 1] ^= 0x80;
  Bytes truncated_sig(good_sig.begin(), good_sig.begin() + 8);
  const Bytes& pk = mss.public_key();

  std::vector<VerifyRequest> requests = {
      {SchemeId::kMerkleSig, &pk, &good_msg, &good_sig},
      {SchemeId::kMerkleSig, &pk, &wrong_msg, &good_sig},
      {SchemeId::kMerkleSig, &pk, &good_msg, &tampered_sig},
      {SchemeId::kMerkleSig, &pk, &good_msg, &truncated_sig},
  };
  std::vector<Status> results = VerifyBatch(requests);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok()) << results[0].ToString();
  EXPECT_TRUE(results[1].IsVerificationFailure());
  EXPECT_TRUE(results[2].IsVerificationFailure());
  EXPECT_FALSE(results[3].ok());
  // A bad neighbor never contaminates a good item: re-verify the good one
  // alone and batched, same verdict.
  EXPECT_TRUE(Verify(SchemeId::kMerkleSig, pk, good_msg, good_sig).ok());
}

TEST(VerifyBatchTest, EmptyBatchIsFine) {
  EXPECT_TRUE(VerifyBatch({}).empty());
}

// ---------------------------------------------------------------------------
// KeyStore / CA
// ---------------------------------------------------------------------------

TEST(KeyStoreTest, IssueAddVerify) {
  CertificateAuthority ca(util::ToBytes("ca-seed"), /*height=*/4);
  MerkleSigner user_key(util::ToBytes("user-1-seed"), 3);
  auto cert = ca.Issue(1, SchemeId::kMerkleSig, user_key.public_key());
  ASSERT_TRUE(cert.ok());

  KeyStore store(ca.public_key());
  ASSERT_TRUE(store.Add(*cert).ok());
  EXPECT_EQ(store.size(), 1u);

  Bytes msg = util::ToBytes("signed root digest");
  Bytes sig = *user_key.Sign(msg);
  EXPECT_TRUE(store.VerifyFrom(1, msg, sig).ok());
  EXPECT_TRUE(store.VerifyFrom(1, util::ToBytes("other"), sig)
                  .IsVerificationFailure());
}

TEST(KeyStoreTest, VerifyFromBatchMatchesVerifyFrom) {
  CertificateAuthority ca(util::ToBytes("ca-batch-seed"), /*height=*/4);
  KeyStore store(ca.public_key());
  std::vector<std::unique_ptr<MerkleSigner>> signers;
  for (uint32_t u = 1; u <= 3; ++u) {
    signers.push_back(std::make_unique<MerkleSigner>(
        util::ToBytes("user-" + std::to_string(u)), 2));
    ASSERT_TRUE(
        store.Add(*ca.Issue(u, SchemeId::kMerkleSig, signers.back()->public_key()))
            .ok());
  }
  std::vector<Bytes> messages, signatures;
  for (uint32_t u = 1; u <= 3; ++u) {
    messages.push_back(util::ToBytes("blob from " + std::to_string(u)));
    signatures.push_back(*signers[u - 1]->Sign(messages.back()));
  }
  Bytes unknown_msg = util::ToBytes("who");
  std::vector<KeyStore::SignatureClaim> claims = {
      {1, &messages[0], &signatures[0]},
      {2, &messages[1], &signatures[1]},
      {99, &unknown_msg, &signatures[0]},  // No certificate.
      {3, &messages[2], &signatures[2]},
      {3, &messages[1], &signatures[2]},  // Wrong message for this signature.
  };
  std::vector<Status> verdicts = store.VerifyFromBatch(claims);
  ASSERT_EQ(verdicts.size(), 5u);
  EXPECT_TRUE(verdicts[0].ok()) << verdicts[0].ToString();
  EXPECT_TRUE(verdicts[1].ok()) << verdicts[1].ToString();
  EXPECT_TRUE(verdicts[2].IsNotFound());
  EXPECT_TRUE(verdicts[3].ok()) << verdicts[3].ToString();
  EXPECT_TRUE(verdicts[4].IsVerificationFailure());
}

TEST(KeyStoreTest, ForgedCertificateRejected) {
  CertificateAuthority ca(util::ToBytes("ca-seed-2"), 4);
  CertificateAuthority rogue(util::ToBytes("rogue-seed"), 4);
  MerkleSigner user_key(util::ToBytes("user-seed"), 2);
  auto cert = rogue.Issue(1, SchemeId::kMerkleSig, user_key.public_key());
  ASSERT_TRUE(cert.ok());
  KeyStore store(ca.public_key());
  EXPECT_TRUE(store.Add(*cert).IsVerificationFailure());
  EXPECT_EQ(store.size(), 0u);
}

TEST(KeyStoreTest, RebindingDifferentKeyRejected) {
  CertificateAuthority ca(util::ToBytes("ca-seed-3"), 4);
  MerkleSigner k1(util::ToBytes("k1"), 2);
  MerkleSigner k2(util::ToBytes("k2"), 2);
  KeyStore store(ca.public_key());
  ASSERT_TRUE(store.Add(*ca.Issue(1, SchemeId::kMerkleSig, k1.public_key())).ok());
  // Same cert again is idempotent.
  ASSERT_TRUE(store.Add(*ca.Issue(1, SchemeId::kMerkleSig, k1.public_key())).ok());
  // Different key for the same principal is refused.
  EXPECT_TRUE(store.Add(*ca.Issue(1, SchemeId::kMerkleSig, k2.public_key()))
                  .IsAlreadyExists());
}

TEST(KeyStoreTest, UnknownPrincipalIsNotFound) {
  CertificateAuthority ca(util::ToBytes("ca-seed-4"), 4);
  KeyStore store(ca.public_key());
  EXPECT_TRUE(store.Get(99).status().IsNotFound());
  EXPECT_TRUE(store.VerifyFrom(99, util::ToBytes("m"), Bytes{}).IsNotFound());
}

}  // namespace
}  // namespace crypto
}  // namespace tcvs
