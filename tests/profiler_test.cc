// Tests for the profiling plane: the sampling CPU profiler (signal-driven —
// skipped under TSan, which owns signal delivery), the lock-contention
// profile, and the two of them surviving a live serve loop with faults
// armed (the signal-safety smoke).

#include "util/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cvs/trusted.h"
#include "net/socket.h"
#include "rpc/remote.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/mutex.h"

// TSan intercepts signal delivery and flags raw signal-handler memory
// accesses the profiler's lock-free ring makes deliberately; the SIGPROF
// sections are not meaningful under it. Contention tests stay on.
#if defined(__SANITIZE_THREAD__)
#define TCVS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TCVS_TSAN 1
#endif
#endif
#ifndef TCVS_TSAN
#define TCVS_TSAN 0
#endif

using namespace tcvs;

// The known-hot function the folded profile must name. extern "C" keeps the
// symbol unmangled and exported (CMAKE_ENABLE_EXPORTS), so dladdr resolves
// it; noinline keeps the PC inside this function rather than the caller.
extern "C" __attribute__((noinline)) uint64_t TcvsProfilerTestSpin(
    uint64_t iters) {
  volatile uint64_t acc = 1;
  for (uint64_t i = 0; i < iters; ++i) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

namespace {

/// Burns roughly `ms` of CPU time in TcvsProfilerTestSpin. Unused under
/// TSan, where the signal-dependent tests are compiled out.
[[maybe_unused]] void SpinForMs(uint64_t ms) {
  const uint64_t deadline = util::MonotonicMicros() + ms * 1000;
  while (util::MonotonicMicros() < deadline) {
    (void)TcvsProfilerTestSpin(1 << 18);
  }
}

#if !TCVS_TSAN

TEST(ProfilerTest, StartStopIdempotence) {
  ASSERT_FALSE(util::CpuProfilerRunning());
  EXPECT_TRUE(util::StopCpuProfiler().status().IsFailedPrecondition());
  EXPECT_TRUE(util::DrainCpuProfile().status().IsFailedPrecondition());

  ASSERT_TRUE(util::StartCpuProfiler(100).ok());
  EXPECT_TRUE(util::CpuProfilerRunning());
  // Second start while running: refused, the first keeps sampling.
  EXPECT_TRUE(util::StartCpuProfiler(100).IsFailedPrecondition());
  EXPECT_TRUE(util::CpuProfilerRunning());

  auto profile = util::StopCpuProfiler();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_FALSE(util::CpuProfilerRunning());
  EXPECT_EQ(profile->hz, 100);
  // And again: a full start/stop cycle works after the first.
  ASSERT_TRUE(util::StartCpuProfiler(50).ok());
  ASSERT_TRUE(util::StopCpuProfiler().ok());
}

TEST(ProfilerTest, FoldedProfileNamesTheHotFunction) {
  ASSERT_TRUE(util::StartCpuProfiler(400).ok());
  SpinForMs(600);
  auto profile = util::StopCpuProfiler();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  // 600 ms of pure CPU at 400 Hz: expect a healthy sample count even on a
  // loaded CI machine (ITIMER_PROF counts CPU time, not wall time).
  EXPECT_GT(profile->samples, 20u);
  const std::string folded = profile->FoldedFormat();
  EXPECT_NE(folded.find("TcvsProfilerTestSpin"), std::string::npos)
      << "folded profile missing the hot symbol:\n"
      << folded.substr(0, 2000);
  // Folded lines parse: "frame;frame count".
  EXPECT_NE(folded.find(';'), std::string::npos);
  // JSON rendering carries the same symbol.
  EXPECT_NE(profile->JsonTopN(10).find("TcvsProfilerTestSpin"),
            std::string::npos);
}

TEST(ProfilerTest, DrainRidesRunningProfilerAndWindowReportsBusy) {
  ASSERT_TRUE(util::StartCpuProfiler(200).ok());
  SpinForMs(150);
  auto first = util::DrainCpuProfile();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(util::CpuProfilerRunning());  // Drain leaves it running.
  // A window on a running profiler rides it (hz ignored) and succeeds.
  std::thread window([&] {
    auto w = util::ProfileWindow(/*hz=*/999, /*seconds=*/2);
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    EXPECT_EQ(w->hz, 200);  // The running frequency, not the requested one.
  });
  // Give the window time to claim the serialization slot, then collide.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto busy = util::ProfileWindow(100, 1);
  EXPECT_TRUE(busy.status().IsFailedPrecondition())
      << "concurrent windows must not queue";
  window.join();
  ASSERT_TRUE(util::StopCpuProfiler().ok());
}

#endif  // !TCVS_TSAN

TEST(ContentionTest, ConcurrentLockersFeedContentionProfile) {
  util::ResetContentionForTesting();
  util::SetContentionProfilingEnabled(true);
  static util::Mutex mu{"profiler.test"};
  std::atomic<uint64_t> shared{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        util::MutexLock lock(&mu);
        // Hold the lock long enough that someone else piles up behind it.
        const uint64_t until = util::MonotonicMicros() + 1000;
        while (util::MonotonicMicros() < until) {
          shared.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // The per-callsite table saw the waits...
  std::vector<util::ContentionSite> sites = util::ContentionProfile();
  uint64_t total_waits = 0;
  uint64_t total_us = 0;
  for (const auto& site : sites) {
    total_waits += site.waits;
    total_us += site.total_us;
  }
  EXPECT_GT(total_waits, 0u) << "8 threads × 1 ms holds: someone waited";
  EXPECT_GT(total_us, 0u);
  // ...and the JSON render names them.
  const std::string json = util::ContentionJson();
  EXPECT_NE(json.find("\"sites\""), std::string::npos);
  EXPECT_NE(json.find("\"total_us\""), std::string::npos);

  // The named mutex also fed its metrics histogram.
  util::MetricsSnapshot snap =
      util::MetricsRegistry::Instance().Snapshot();
  auto it = snap.histograms.find("lock.profiler.test.contention_us");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_GT(it->second.count(), 0u);
}

TEST(ContentionTest, DisabledContentionRecordsNothing) {
  util::SetContentionProfilingEnabled(false);
  util::ResetContentionForTesting();
  static util::Mutex mu{"profiler.test.disabled"};
  std::thread holder([&] {
    util::MutexLock lock(&mu);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    util::MutexLock lock(&mu);  // Contends, but accounting is off.
  }
  holder.join();
  EXPECT_TRUE(util::ContentionProfile().empty());
  util::SetContentionProfilingEnabled(true);  // Restore for later tests.
}

#if !TCVS_TSAN

// Signal-safety smoke: SIGPROF fires across the whole process — serve
// workers mid-syscall, WAL-less transact execution, retry backoff sleeps,
// fault-injected connection drops — while verified traffic flows. Nothing
// may deadlock, crash, or fail verification.
TEST(ProfilerTest, SignalSafetySmokeWhileServingWithFaults) {
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  cvs::UntrustedServer repo;
  std::thread server_thread(
      [l = std::move(listener).ValueOrDie(), &repo]() mutable {
        (void)rpc::Serve(&l, &repo);
      });

  // Drop the connection after every 7th executed request WITHOUT replying:
  // the client replays into the dedup cache under SIGPROF fire.
  util::FaultInjector::Instance().Arm("rpc.serve.drop_after",
                                      util::FaultSpec::Nth(7));

  ASSERT_TRUE(util::StartCpuProfiler(250).ok());
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", port);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  cvs::VerifyingClient client(1, remote->get());
  for (int i = 0; i < 30; ++i) {
    auto rev = client.Commit("smoke/file", "content " + std::to_string(i),
                             static_cast<uint64_t>(i));
    ASSERT_TRUE(rev.ok()) << "commit " << i << ": " << rev.status().ToString();
  }
  auto profile = util::StopCpuProfiler();
  ASSERT_TRUE(profile.ok());

  util::FaultInjector::Instance().Disarm("rpc.serve.drop_after");
  auto shutdown_conn = rpc::RemoteServer::Connect("127.0.0.1", port);
  ASSERT_TRUE(shutdown_conn.ok());
  ASSERT_TRUE((*shutdown_conn)->Shutdown().ok());
  server_thread.join();
}

#endif  // !TCVS_TSAN

}  // namespace
