// Transparency-log tests: RFC 6962 Merkle tree hashes, inclusion proofs,
// consistency proofs — generated and verified, across every (m, n) pair of a
// growing log, plus adversarial mutations.

#include <gtest/gtest.h>

#include "crypto/translog.h"
#include "util/random.h"

namespace tcvs {
namespace crypto {
namespace {

Bytes E(int i) { return util::ToBytes("entry-" + std::to_string(i)); }

TEST(TransparencyLogTest, EmptyLogRoot) {
  TransparencyLog log;
  // RFC 6962: MTH of the empty list is the hash of the empty string.
  EXPECT_EQ(util::HexEncode(log.Root()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(TransparencyLogTest, Rfc6962LeafAndNodeHashes) {
  // RFC 6962 §2.1.1 test values: MTH for D = {0x} (one empty entry) is the
  // leaf hash H(0x00) =
  // 6e340b9cffb37a989ca544e6bb780a2c78901d3fb33738768511a30617afa01d.
  TransparencyLog log;
  log.Append(Bytes{});
  EXPECT_EQ(util::HexEncode(log.Root()),
            "6e340b9cffb37a989ca544e6bb780a2c78901d3fb33738768511a30617afa01d");
}

TEST(TransparencyLogTest, RootChangesOnAppend) {
  TransparencyLog log;
  Digest prev = log.Root();
  for (int i = 0; i < 20; ++i) {
    log.Append(E(i));
    Digest cur = log.Root();
    EXPECT_NE(cur, prev);
    prev = cur;
  }
  EXPECT_EQ(log.size(), 20u);
}

TEST(TransparencyLogTest, RootAtReproducesHistoricalRoots) {
  TransparencyLog log;
  std::vector<Digest> roots;
  roots.push_back(log.Root());
  for (int i = 0; i < 40; ++i) {
    log.Append(E(i));
    roots.push_back(log.Root());
  }
  for (uint64_t n = 0; n <= 40; ++n) {
    EXPECT_EQ(*log.RootAt(n), roots[n]) << n;
  }
  EXPECT_FALSE(log.RootAt(41).ok());
}

TEST(TransparencyLogTest, InclusionProofsVerifyForAllEntriesAndSizes) {
  TransparencyLog log;
  const int kN = 33;  // Deliberately not a power of two.
  for (int i = 0; i < kN; ++i) log.Append(E(i));
  for (uint64_t n = 1; n <= kN; ++n) {
    Digest root = *log.RootAt(n);
    for (uint64_t i = 0; i < n; ++i) {
      auto proof = log.InclusionProof(i, n);
      ASSERT_TRUE(proof.ok());
      EXPECT_TRUE(
          TransparencyLog::VerifyInclusion(E(i), i, n, root, *proof).ok())
          << "entry " << i << " in log of " << n;
    }
  }
}

TEST(TransparencyLogTest, InclusionProofRejectsWrongEntry) {
  TransparencyLog log;
  for (int i = 0; i < 10; ++i) log.Append(E(i));
  auto proof = log.InclusionProof(3, 10);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(TransparencyLog::VerifyInclusion(E(4), 3, 10, log.Root(), *proof)
                  .IsVerificationFailure());
  EXPECT_TRUE(TransparencyLog::VerifyInclusion(E(3), 4, 10, log.Root(), *proof)
                  .IsVerificationFailure());
}

TEST(TransparencyLogTest, InclusionProofRejectsMutations) {
  TransparencyLog log;
  for (int i = 0; i < 21; ++i) log.Append(E(i));
  util::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t i = rng.Uniform(21);
    auto proof = *log.InclusionProof(i, 21);
    int mode = rng.Uniform(3);
    if (mode == 0 && !proof.empty()) {
      proof[rng.Uniform(proof.size())][rng.Uniform(32)] ^= 0x01;
    } else if (mode == 1 && !proof.empty()) {
      proof.pop_back();
    } else {
      proof.push_back(Sha256::Hash("junk"));
    }
    EXPECT_FALSE(
        TransparencyLog::VerifyInclusion(E(i), i, 21, log.Root(), proof).ok())
        << "trial " << trial;
  }
}

TEST(TransparencyLogTest, ConsistencyProofsVerifyForAllSizePairs) {
  TransparencyLog log;
  const int kN = 33;
  std::vector<Digest> roots{log.Root()};
  for (int i = 0; i < kN; ++i) {
    log.Append(E(i));
    roots.push_back(log.Root());
  }
  for (uint64_t m = 0; m <= kN; ++m) {
    for (uint64_t n = m; n <= kN; ++n) {
      auto proof = log.ConsistencyProof(m, n);
      ASSERT_TRUE(proof.ok()) << m << "," << n;
      EXPECT_TRUE(TransparencyLog::VerifyConsistency(m, n, roots[m], roots[n],
                                                     *proof)
                      .ok())
          << m << " -> " << n;
    }
  }
}

TEST(TransparencyLogTest, ConsistencyDetectsHistoryRewrite) {
  // The server rewrites an entry INSIDE the client's checkpointed prefix:
  // no consistency proof from that checkpoint to any extension of the
  // rewritten log can verify.
  TransparencyLog honest, rewritten;
  for (int i = 0; i < 10; ++i) {
    honest.Append(E(i));
    rewritten.Append(i == 5 ? util::ToBytes("REWRITTEN") : E(i));
  }
  Digest checkpoint = honest.Root();  // Client checkpoint at size 10.
  for (int i = 10; i < 20; ++i) {
    honest.Append(E(i));
    rewritten.Append(E(i));
  }

  auto ok_proof = honest.ConsistencyProof(10, 20);
  EXPECT_TRUE(TransparencyLog::VerifyConsistency(10, 20, checkpoint,
                                                 honest.Root(), *ok_proof)
                  .ok());
  auto bad_proof = rewritten.ConsistencyProof(10, 20);
  EXPECT_TRUE(TransparencyLog::VerifyConsistency(10, 20, checkpoint,
                                                 rewritten.Root(), *bad_proof)
                  .IsVerificationFailure());
  // A post-checkpoint divergence, by contrast, is legitimately consistent
  // with the checkpoint — consistency covers exactly the prefix.
  TransparencyLog forked;
  for (int i = 0; i < 10; ++i) forked.Append(E(i));
  forked.Append(util::ToBytes("different-suffix"));
  auto fork_proof = forked.ConsistencyProof(10, 11);
  EXPECT_TRUE(TransparencyLog::VerifyConsistency(10, 11, checkpoint,
                                                 forked.Root(), *fork_proof)
                  .ok());
}

TEST(TransparencyLogTest, ConsistencyDetectsTruncation) {
  // A server rolling back history presents a SMALLER log than the client's
  // checkpoint — the size comparison alone rejects it.
  TransparencyLog log;
  for (int i = 0; i < 15; ++i) log.Append(E(i));
  EXPECT_TRUE(
      TransparencyLog::VerifyConsistency(15, 12, log.Root(), *log.RootAt(12), {})
          .IsInvalidArgument());
}

TEST(TransparencyLogTest, ConsistencyRejectsMutations) {
  TransparencyLog log;
  for (int i = 0; i < 29; ++i) log.Append(E(i));
  util::Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t m = 1 + rng.Uniform(27);
    uint64_t n = m + 1 + rng.Uniform(29 - m - 1);
    auto proof = *log.ConsistencyProof(m, n);
    if (proof.empty()) continue;
    proof[rng.Uniform(proof.size())][rng.Uniform(32)] ^= 0x01;
    EXPECT_FALSE(TransparencyLog::VerifyConsistency(m, n, *log.RootAt(m),
                                                    *log.RootAt(n), proof)
                     .ok())
        << "m=" << m << " n=" << n;
  }
}

TEST(TransparencyLogTest, LargeRandomizedSweep) {
  util::Rng rng(2026);
  TransparencyLog log;
  std::vector<Digest> roots{log.Root()};
  for (int i = 0; i < 200; ++i) {
    log.Append(rng.RandomBytes(1 + rng.Uniform(40)));
    roots.push_back(log.Root());
  }
  for (int trial = 0; trial < 300; ++trial) {
    uint64_t m = rng.Uniform(201);
    uint64_t n = m + rng.Uniform(201 - m);
    auto proof = log.ConsistencyProof(m, n);
    ASSERT_TRUE(proof.ok());
    ASSERT_TRUE(TransparencyLog::VerifyConsistency(m, n, roots[m], roots[n],
                                                   *proof)
                    .ok())
        << m << "->" << n;
  }
}

}  // namespace
}  // namespace crypto
}  // namespace tcvs
