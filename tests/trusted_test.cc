// Tests for the direct (non-simulated) verifying CVS client/server facade.

#include <gtest/gtest.h>

#include "cvs/trusted.h"
#include "util/random.h"

namespace tcvs {
namespace cvs {
namespace {

TEST(VerifyingClientTest, CommitCheckoutRoundTrip) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);

  auto rev = alice.Commit("main.c", "int main() {}\n", 0);
  ASSERT_TRUE(rev.ok()) << rev.status().ToString();
  EXPECT_EQ(*rev, 1u);

  auto rec = alice.Checkout("main.c");
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->revision, 1u);
  EXPECT_EQ(rec->content, "int main() {}\n");
}

TEST(VerifyingClientTest, CheckoutMissingIsAuthenticatedNotFound) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  EXPECT_TRUE(alice.Checkout("missing.c").status().IsNotFound());
}

TEST(VerifyingClientTest, StaleCommitConflict) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  VerifyingClient bob(2, &server);

  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
  ASSERT_TRUE(alice.Commit("f", "v2", 1).ok());
  auto stale = bob.Commit("f", "mine", 1);
  EXPECT_TRUE(stale.status().IsFailedPrecondition()) << stale.status().ToString();
  // The repository is untouched and bob can retry on the right base.
  EXPECT_EQ(bob.Checkout("f")->content, "v2");
  EXPECT_TRUE(bob.Commit("f", "merged", 2).ok());
}

TEST(VerifyingClientTest, CreateOverExistingIsAlreadyExists) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
  EXPECT_TRUE(alice.Commit("f", "other", 0).status().IsAlreadyExists());
}

TEST(VerifyingClientTest, RemoveAndNotFound) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
  EXPECT_TRUE(alice.Remove("f").ok());
  EXPECT_TRUE(alice.Checkout("f").status().IsNotFound());
  EXPECT_TRUE(alice.Remove("f").IsNotFound());
}

TEST(VerifyingClientTest, HonestMultiUserSyncUpPasses) {
  UntrustedServer server;
  VerifyingClient a(1, &server), b(2, &server), c(3, &server);
  ASSERT_TRUE(a.Commit("x", "ax", 0).ok());
  ASSERT_TRUE(b.Commit("y", "by", 0).ok());
  ASSERT_TRUE(c.Checkout("x").ok());
  ASSERT_TRUE(b.Commit("x", "bx", 1).ok());
  ASSERT_TRUE(a.Checkout("x").ok());
  EXPECT_TRUE(VerifyingClient::SyncUp({&a, &b, &c}).ok());
}

TEST(VerifyingClientTest, EmptyHistorySyncUpPasses) {
  UntrustedServer server;
  VerifyingClient a(1, &server), b(2, &server);
  EXPECT_TRUE(VerifyingClient::SyncUp({&a, &b}).ok());
}

TEST(VerifyingClientTest, OutOfBandTamperCaughtOnNextOperation) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  ASSERT_TRUE(alice.Commit("f", "honest", 0).ok());
  // The vendor silently rewrites the file behind the protocol's back. The
  // next reply's pre-state no longer chains from what alice verified, but a
  // single client cannot see that per-op (she keeps no root digest across
  // ops in the multi-user protocol) — the sync-up catches it.
  server.mutable_tree_for_testing()->Upsert(
      util::ToBytes("f"), FileRecord{1, "evil"}.Serialize());
  auto rec = alice.Checkout("f");
  // The checkout itself verifies against the *claimed* state, so it returns
  // the tampered content...
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->content, "evil");
  // ...but the transition chain is now broken and the sync-up fails.
  Status st = VerifyingClient::SyncUp({&alice});
  EXPECT_TRUE(st.IsDeviationDetected()) << st.ToString();
}

TEST(VerifyingClientTest, ForkAcrossTwoServersDetectedAtSyncUp) {
  // Model a forking vendor as two divergent replicas: alice talks to one,
  // bob to the other, after a common prefix.
  UntrustedServer server_a;
  VerifyingClient alice(1, &server_a);
  ASSERT_TRUE(alice.Commit("common.h", "#define V 1\n", 0).ok());

  // The vendor clones the state for bob and lets histories diverge.
  UntrustedServer server_b;
  VerifyingClient bob(2, &server_b);
  ASSERT_TRUE(bob.Commit("common.h", "#define V 1\n", 0).ok());

  ASSERT_TRUE(alice.Commit("common.h", "#define V 2\n", 1).ok());
  ASSERT_TRUE(bob.Commit("other.c", "int x;\n", 0).ok());

  Status st = VerifyingClient::SyncUp({&alice, &bob});
  EXPECT_TRUE(st.IsDeviationDetected()) << st.ToString();
}

TEST(VerifyingClientTest, MisDecidedConditionalCommitDetected) {
  // A server that applies a commit whose condition is false (or rejects one
  // whose condition is true) is caught immediately: the decision is checked
  // against the authenticated pre-state. Simulate by tampering the stored
  // revision out-of-band so the server's view and the claim disagree...
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
  // Force the stored record to revision 5; alice commits against base 5 —
  // the server applies (its view says 5), and the VO proves revision 5, so
  // this is consistent. Now commit against base 1: server rejects, VO says
  // current is 6 — still consistent. The decision check is exercised by the
  // consistency of both paths:
  server.mutable_tree_for_testing()->Upsert(util::ToBytes("f"),
                                            FileRecord{5, "v1"}.Serialize());
  EXPECT_TRUE(alice.Commit("f", "v2", 5).ok());
  EXPECT_TRUE(alice.Commit("f", "v3", 1).status().IsFailedPrecondition());
}

TEST(VerifyingClientTest, ManyClientsRandomOpsStayConsistent) {
  UntrustedServer server;
  std::vector<std::unique_ptr<VerifyingClient>> clients;
  std::vector<VerifyingClient*> raw;
  for (uint32_t u = 1; u <= 5; ++u) {
    clients.push_back(std::make_unique<VerifyingClient>(u, &server));
    raw.push_back(clients.back().get());
  }
  util::Rng rng(99);
  std::map<std::string, uint64_t> revision;  // Ground-truth revisions.
  for (int step = 0; step < 400; ++step) {
    VerifyingClient* c = raw[rng.Uniform(raw.size())];
    std::string path = "f" + std::to_string(rng.Uniform(6));
    switch (rng.Uniform(3)) {
      case 0: {
        uint64_t base = revision.count(path) ? revision[path] : 0;
        auto rev = c->Commit(path, "content" + std::to_string(step), base);
        ASSERT_TRUE(rev.ok()) << rev.status().ToString();
        revision[path] = *rev;
        break;
      }
      case 1: {
        auto rec = c->Checkout(path);
        if (revision.count(path)) {
          ASSERT_TRUE(rec.ok());
          ASSERT_EQ(rec->revision, revision[path]);
        } else {
          ASSERT_TRUE(rec.status().IsNotFound());
        }
        break;
      }
      case 2: {
        Status st = c->Remove(path);
        if (revision.count(path)) {
          ASSERT_TRUE(st.ok());
          revision.erase(path);
        } else {
          ASSERT_TRUE(st.IsNotFound());
        }
        break;
      }
    }
    if (step % 50 == 0) {
      ASSERT_TRUE(VerifyingClient::SyncUp(raw).ok()) << "step " << step;
    }
  }
  EXPECT_TRUE(VerifyingClient::SyncUp(raw).ok());
}

// ---------------------------------------------------------------------------
// Multi-file transactions (the paper's `commit <file names>`)
// ---------------------------------------------------------------------------

TEST(MultiFileTest, AtomicCommitAppliesAll) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  auto revs = alice.CommitMany({
      {cvs::FileOp::Kind::kCommit, "a.c", "A", 0},
      {cvs::FileOp::Kind::kCommit, "b.c", "B", 0},
      {cvs::FileOp::Kind::kCommit, "c.c", "C", 0},
  });
  ASSERT_TRUE(revs.ok()) << revs.status().ToString();
  EXPECT_EQ(*revs, (std::vector<uint64_t>{1, 1, 1}));
  // One transaction = one counter tick.
  EXPECT_EQ(server.ctr(), 1u);
  EXPECT_EQ(alice.Checkout("b.c")->content, "B");
}

TEST(MultiFileTest, AtomicCommitAllOrNothing) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  VerifyingClient bob(2, &server);
  ASSERT_TRUE(alice.Commit("a.c", "A1", 0).ok());
  ASSERT_TRUE(alice.Commit("b.c", "B1", 0).ok());
  ASSERT_TRUE(alice.Commit("b.c", "B2", 1).ok());  // b.c now at rev 2.

  // Bob commits both on stale b.c: the whole transaction must reject and
  // leave a.c untouched too.
  auto revs = bob.CommitMany({
      {cvs::FileOp::Kind::kCommit, "a.c", "A-bob", 1},
      {cvs::FileOp::Kind::kCommit, "b.c", "B-bob", 1},
  });
  EXPECT_TRUE(revs.status().IsFailedPrecondition());
  EXPECT_EQ(bob.Checkout("a.c")->content, "A1");
  EXPECT_EQ(bob.Checkout("b.c")->content, "B2");
  // Everything still verifies across clients.
  EXPECT_TRUE(VerifyingClient::SyncUp({&alice, &bob}).ok());
}

TEST(MultiFileTest, CheckoutManyMixesPresentAndAbsent) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  ASSERT_TRUE(alice.Commit("x", "X", 0).ok());
  auto records = alice.CheckoutMany({"x", "missing", "x"});
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_TRUE((*records)[0].has_value());
  EXPECT_FALSE((*records)[1].has_value());
  EXPECT_EQ((*records)[2]->content, "X");
}

TEST(MultiFileTest, SamePathTwiceInOneTransaction) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  // Create at rev 1 then immediately amend on top of it, atomically.
  auto revs = alice.CommitMany({
      {cvs::FileOp::Kind::kCommit, "f", "first", 0},
      {cvs::FileOp::Kind::kCommit, "f", "second", 1},
  });
  ASSERT_TRUE(revs.ok()) << revs.status().ToString();
  EXPECT_EQ(alice.Checkout("f")->content, "second");
  EXPECT_EQ(alice.Checkout("f")->revision, 2u);
}

TEST(MultiFileTest, CommitManyRejectsNonCommits) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  EXPECT_TRUE(alice.CommitMany({{cvs::FileOp::Kind::kCheckout, "f", "", 0}})
                  .status()
                  .IsInvalidArgument());
}

TEST(MultiFileTest, EmptyTransactionRejected) {
  UntrustedServer server;
  EXPECT_TRUE(server.Transact(1, {}).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Authenticated directory listings
// ---------------------------------------------------------------------------

TEST(ListDirTest, CompleteListingWithRevisions) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  ASSERT_TRUE(alice.Commit("src/a.c", "A", 0).ok());
  ASSERT_TRUE(alice.Commit("src/b.c", "B", 0).ok());
  ASSERT_TRUE(alice.Commit("src/b.c", "B2", 1).ok());
  ASSERT_TRUE(alice.Commit("docs/readme.md", "R", 0).ok());

  auto listing = alice.ListDir("src/");
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  ASSERT_EQ(listing->size(), 2u);
  EXPECT_EQ((*listing)[0], (std::pair<std::string, uint64_t>{"src/a.c", 1}));
  EXPECT_EQ((*listing)[1], (std::pair<std::string, uint64_t>{"src/b.c", 2}));

  auto all = alice.ListDir("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);

  auto none = alice.ListDir("zzz/");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(ListDirTest, ListingIsATransaction) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  ASSERT_TRUE(alice.Commit("f", "v", 0).ok());
  uint64_t lctr_before = alice.lctr();
  ASSERT_TRUE(alice.ListDir("").ok());
  EXPECT_EQ(alice.lctr(), lctr_before + 1);
  EXPECT_EQ(server.ctr(), 2u);
  // The read transaction folds into σ and the sync-up still passes.
  EXPECT_TRUE(VerifyingClient::SyncUp({&alice}).ok());
}

TEST(ListDirTest, HiddenFileDetectedViaTamper) {
  // A vendor hiding a file must alter the tree (the range proof is
  // complete), which breaks the transition chain at the next sync-up.
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  ASSERT_TRUE(alice.Commit("src/a.c", "A", 0).ok());
  ASSERT_TRUE(alice.Commit("src/secret.c", "S", 0).ok());
  bool found = false;
  server.mutable_tree_for_testing()->Delete(util::ToBytes("src/secret.c"),
                                            &found);
  ASSERT_TRUE(found);
  auto listing = alice.ListDir("src/");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 1u);  // The hidden file is gone...
  EXPECT_TRUE(VerifyingClient::SyncUp({&alice}).IsDeviationDetected());
}

// ---------------------------------------------------------------------------
// Client state persistence
// ---------------------------------------------------------------------------

TEST(ClientStateTest, SerializeRestoreContinuesSession) {
  UntrustedServer server;
  Bytes saved;
  {
    VerifyingClient alice(1, &server);
    ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
    saved = alice.state().Serialize();
  }
  auto state = ClientState::Deserialize(saved);
  ASSERT_TRUE(state.ok());
  VerifyingClient restored(*state, &server);
  EXPECT_EQ(restored.user_id(), 1u);
  EXPECT_EQ(restored.lctr(), 1u);
  ASSERT_TRUE(restored.Commit("f", "v2", 1).ok());
  EXPECT_TRUE(VerifyingClient::SyncUp({&restored}).ok());
}

TEST(ClientStateTest, SyncCheckOverPersistedStates) {
  UntrustedServer server;
  VerifyingClient a(1, &server), b(2, &server);
  ASSERT_TRUE(a.Commit("f", "v1", 0).ok());
  ASSERT_TRUE(b.Commit("g", "v2", 0).ok());
  EXPECT_TRUE(VerifyingClient::SyncCheck({a.state(), b.state()}).ok());
  // Corrupt one register: the check must fail.
  ClientState bad = b.state();
  bad.sigma[0] ^= 1;
  EXPECT_TRUE(
      VerifyingClient::SyncCheck({a.state(), bad}).IsDeviationDetected());
}

TEST(ClientStateTest, MalformedStateRejected) {
  EXPECT_FALSE(ClientState::Deserialize(util::ToBytes("junk")).ok());
}

// ---------------------------------------------------------------------------
// Transparency-log audits (append-only history)
// ---------------------------------------------------------------------------

TEST(LogAuditTest, HonestHistoryAuditsClean) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  EXPECT_TRUE(alice.AuditLog().ok());  // Empty log is consistent.
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
  ASSERT_TRUE(alice.Commit("f", "v2", 1).ok());
  EXPECT_TRUE(alice.AuditLog().ok());
  EXPECT_EQ(alice.log_checkpoint_size(), 2u);
  ASSERT_TRUE(alice.Commit("g", "x", 0).ok());
  EXPECT_TRUE(alice.AuditLog().ok());  // Incremental consistency.
  EXPECT_EQ(alice.log_checkpoint_size(), 3u);
}

TEST(LogAuditTest, HistoryRewriteDetected) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
  ASSERT_TRUE(alice.Commit("f", "v2", 1).ok());
  ASSERT_TRUE(alice.AuditLog().ok());
  // The vendor rewrites an already-audited log entry.
  server.rewrite_log_leaf_for_testing(0, util::ToBytes("fabricated"));
  ASSERT_TRUE(alice.Commit("f", "v3", 2).ok());
  Status st = alice.AuditLog();
  EXPECT_TRUE(st.IsDeviationDetected()) << st.ToString();
  EXPECT_NE(st.message().find("rewritten"), std::string::npos);
}

TEST(LogAuditTest, RollbackDetectedBySizeAlone) {
  // Simulate a rollback by restoring an earlier server snapshot: the client
  // checkpoint is ahead of the log.
  UntrustedServer fresh;  // ctr 0, empty log: "restored from before".
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
  ASSERT_TRUE(alice.AuditLog().ok());
  VerifyingClient alice_later(alice.state(), &fresh);
  Status st = alice_later.AuditLog();
  EXPECT_TRUE(st.IsDeviationDetected()) << st.ToString();
  EXPECT_NE(st.message().find("rolled back"), std::string::npos);
}

TEST(LogAuditTest, CheckpointSurvivesStatePersistence) {
  UntrustedServer server;
  Bytes saved;
  {
    VerifyingClient alice(1, &server);
    ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
    ASSERT_TRUE(alice.AuditLog().ok());
    saved = alice.state().Serialize();
  }
  auto state = ClientState::Deserialize(saved);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->log_size, 1u);
  VerifyingClient restored(*state, &server);
  ASSERT_TRUE(restored.Commit("f", "v2", 1).ok());
  EXPECT_TRUE(restored.AuditLog().ok());
  EXPECT_EQ(restored.log_checkpoint_size(), 2u);
}

TEST(VerifyingClientTest, ClientStateIsConstantSize) {
  UntrustedServer server;
  VerifyingClient alice(1, &server);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(alice.Commit("f" + std::to_string(i), "x", 0).ok());
  }
  // Registers never grow: two digests + two counters (§2.2.5).
  EXPECT_EQ(alice.sigma().size(), crypto::kDigestSize);
  EXPECT_EQ(alice.last().size(), crypto::kDigestSize);
  EXPECT_EQ(alice.lctr(), 200u);
}

}  // namespace
}  // namespace cvs
}  // namespace tcvs
