// Replays the checked-in libFuzzer seed corpora (tests/fuzz_corpora/)
// through the shared fuzz harnesses on EVERY build — including gcc-only
// containers where the libFuzzer targets themselves cannot build. This
// keeps the corpora honest: each target directory must exist, be non-empty,
// contain at least one seed the current wire format still accepts, and no
// seed may crash its harness or violate the parse-stability property.
//
// Regenerating seeds after a deliberate wire-format change:
//   cmake --build build --target gen_fuzz_corpus
//   ./build/tools/gen_fuzz_corpus      # writes tests/fuzz_corpora/ afresh

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "tests/fuzz/harness.h"

namespace tcvs {
namespace {

namespace fs = std::filesystem;

struct Target {
  std::string name;
  std::function<int(const uint8_t*, size_t)> harness;
  // True when the seed bytes must parse under the current wire format.
  std::function<bool(const Bytes&)> accepts;
};

std::vector<Target> Targets() {
  return {
      {"rpc_request", fuzz::FuzzRpcRequest,
       [](const Bytes& b) { return rpc::RpcRequest::Deserialize(b).ok(); }},
      {"rpc_response", fuzz::FuzzRpcResponse,
       [](const Bytes& b) { return rpc::RpcResponse::Deserialize(b).ok(); }},
      {"point_vo", fuzz::FuzzPointVo,
       [](const Bytes& b) { return mtree::PointVO::Deserialize(b).ok(); }},
      {"range_vo", fuzz::FuzzRangeVo,
       [](const Bytes& b) { return mtree::RangeVO::Deserialize(b).ok(); }},
      {"query_response", fuzz::FuzzQueryResponse,
       [](const Bytes& b) {
         return core::QueryResponse::Deserialize(b).ok();
       }},
  };
}

Bytes ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

TEST(FuzzCorpusTest, EveryTargetHasValidSeeds) {
  const fs::path root = TCVS_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(fs::is_directory(root)) << root;
  for (const Target& target : Targets()) {
    SCOPED_TRACE(target.name);
    const fs::path dir = root / target.name;
    ASSERT_TRUE(fs::is_directory(dir)) << "missing corpus dir " << dir;
    size_t seeds = 0, accepted = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      ++seeds;
      Bytes data = ReadFile(entry.path());
      // The harness aborts on a property violation; merely running it over
      // every seed is the regression check.
      target.harness(data.data(), data.size());
      if (target.accepts(data)) ++accepted;
    }
    EXPECT_GE(seeds, 2u) << "corpus too small to seed mutation";
    EXPECT_GE(accepted, 1u)
        << "no seed parses under the current wire format — regenerate "
           "tests/fuzz_corpora/" << target.name;
  }
}

TEST(FuzzCorpusTest, HarnessesRejectJunkWithoutCrashing) {
  // A quick in-process mutation smoke so even gcc containers exercise the
  // reject paths: bit-flips and truncations of every committed seed.
  const fs::path root = TCVS_FUZZ_CORPUS_DIR;
  for (const Target& target : Targets()) {
    SCOPED_TRACE(target.name);
    for (const auto& entry : fs::directory_iterator(root / target.name)) {
      if (!entry.is_regular_file()) continue;
      Bytes seed = ReadFile(entry.path());
      for (size_t i = 0; i < seed.size(); i += 7) {
        Bytes mutated = seed;
        mutated[i] ^= 0x5a;
        target.harness(mutated.data(), mutated.size());
        target.harness(mutated.data(), i);  // Truncation at the flip point.
      }
      target.harness(nullptr, 0);
    }
  }
}

}  // namespace
}  // namespace tcvs
