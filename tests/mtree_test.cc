#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mtree/btree.h"
#include "mtree/client.h"
#include "mtree/vo.h"
#include "util/audit.h"
#include "util/metrics.h"
#include "util/random.h"

namespace tcvs {
namespace mtree {
namespace {

Bytes K(const std::string& s) { return util::ToBytes(s); }
Bytes NumKey(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%08llu", static_cast<unsigned long long>(i));
  return util::ToBytes(buf);
}

// ---------------------------------------------------------------------------
// Basic tree behaviour
// ---------------------------------------------------------------------------

TEST(BTreeTest, EmptyTree) {
  MerkleBTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.root_digest(), EmptyRootDigest());
  EXPECT_FALSE(tree.Get(K("missing")).has_value());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, InsertAndGet) {
  MerkleBTree tree;
  tree.Upsert(K("b"), K("2"));
  tree.Upsert(K("a"), K("1"));
  tree.Upsert(K("c"), K("3"));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(*tree.Get(K("a")), K("1"));
  EXPECT_EQ(*tree.Get(K("b")), K("2"));
  EXPECT_EQ(*tree.Get(K("c")), K("3"));
  EXPECT_FALSE(tree.Get(K("d")).has_value());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, UpdateOverwrites) {
  MerkleBTree tree;
  tree.Upsert(K("k"), K("v1"));
  Digest d1 = tree.root_digest();
  tree.Upsert(K("k"), K("v2"));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Get(K("k")), K("v2"));
  EXPECT_NE(tree.root_digest(), d1);
}

TEST(BTreeTest, RootDigestDependsOnlyOnContents) {
  MerkleBTree a, b;
  // Same final contents, different insertion order (no splits at this size).
  a.Upsert(K("x"), K("1"));
  a.Upsert(K("y"), K("2"));
  b.Upsert(K("y"), K("2"));
  b.Upsert(K("x"), K("1"));
  EXPECT_EQ(a.root_digest(), b.root_digest());
}

TEST(BTreeTest, ManyInsertsSplitAndStaySorted) {
  MerkleBTree tree;
  const int kN = 500;
  for (int i = 0; i < kN; ++i) tree.Upsert(NumKey(i * 37 % kN), NumKey(i));
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GT(tree.height(), 1u);
  auto items = tree.Items();
  EXPECT_EQ(items.size(), tree.size());
  for (size_t i = 1; i < items.size(); ++i) {
    EXPECT_LT(items[i - 1].first, items[i].first);
  }
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  MerkleBTree tree(TreeParams{.max_leaf_entries = 8, .max_internal_keys = 8});
  for (int i = 0; i < 2000; ++i) tree.Upsert(NumKey(i), K("v"));
  // With fanout ~8, 2000 entries need no more than ~5 levels.
  EXPECT_LE(tree.height(), 6u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, DeleteRemoves) {
  MerkleBTree tree;
  for (int i = 0; i < 100; ++i) tree.Upsert(NumKey(i), NumKey(i));
  bool found = false;
  tree.Delete(NumKey(50), &found);
  EXPECT_TRUE(found);
  EXPECT_EQ(tree.size(), 99u);
  EXPECT_FALSE(tree.Get(NumKey(50)).has_value());
  EXPECT_TRUE(tree.CheckInvariants().ok());

  tree.Delete(NumKey(50), &found);
  EXPECT_FALSE(found);
  EXPECT_EQ(tree.size(), 99u);
}

TEST(BTreeTest, DeleteEverything) {
  MerkleBTree tree;
  const int kN = 300;
  for (int i = 0; i < kN; ++i) tree.Upsert(NumKey(i), NumKey(i));
  util::Rng rng(123);
  std::vector<int> order(kN);
  for (int i = 0; i < kN; ++i) order[i] = i;
  rng.Shuffle(&order);
  for (int i : order) {
    bool found = false;
    tree.Delete(NumKey(i), &found);
    EXPECT_TRUE(found) << i;
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after deleting " << i;
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.root_digest(), EmptyRootDigest());
}

TEST(BTreeTest, RangeScan) {
  MerkleBTree tree;
  for (int i = 0; i < 100; ++i) tree.Upsert(NumKey(i), NumKey(i));
  auto out = tree.Range(NumKey(10), NumKey(19));
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().first, NumKey(10));
  EXPECT_EQ(out.back().first, NumKey(19));
  EXPECT_TRUE(tree.Range(NumKey(98), NumKey(200)).size() == 2);
  EXPECT_TRUE(tree.Range(K("zzz"), K("zzzz")).empty());
}

TEST(BTreeTest, MatchesReferenceMapUnderRandomOps) {
  MerkleBTree tree;
  std::map<Bytes, Bytes> ref;
  util::Rng rng(777);
  for (int step = 0; step < 3000; ++step) {
    Bytes key = NumKey(rng.Uniform(200));
    int op = rng.Uniform(3);
    if (op == 0 || op == 1) {
      Bytes value = rng.RandomBytes(1 + rng.Uniform(40));
      tree.Upsert(key, value);
      ref[key] = value;
    } else {
      bool found = false;
      tree.Delete(key, &found);
      EXPECT_EQ(found, ref.erase(key) > 0);
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok());
    }
  }
  EXPECT_EQ(tree.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto got = tree.Get(k);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
}

// ---------------------------------------------------------------------------
// Point-read verification
// ---------------------------------------------------------------------------

TEST(PointReadTest, MembershipVerifies) {
  MerkleBTree tree;
  for (int i = 0; i < 50; ++i) tree.Upsert(NumKey(i), NumKey(1000 + i));
  PointVO vo = tree.ProvePoint(NumKey(7));
  auto res = VerifyPointRead(tree.root_digest(), tree.params(), NumKey(7), vo);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_TRUE(res->has_value());
  EXPECT_EQ(**res, NumKey(1007));
}

TEST(PointReadTest, NonMembershipVerifies) {
  MerkleBTree tree;
  for (int i = 0; i < 50; i += 2) tree.Upsert(NumKey(i), NumKey(i));
  PointVO vo = tree.ProvePoint(NumKey(7));
  auto res = VerifyPointRead(tree.root_digest(), tree.params(), NumKey(7), vo);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->has_value());
}

TEST(PointReadTest, WrongRootRejected) {
  MerkleBTree tree;
  tree.Upsert(K("a"), K("1"));
  PointVO vo = tree.ProvePoint(K("a"));
  Digest wrong = crypto::Sha256::Hash("not the root");
  auto res = VerifyPointRead(wrong, tree.params(), K("a"), vo);
  EXPECT_TRUE(res.status().IsVerificationFailure());
}

TEST(PointReadTest, TamperedValueRejected) {
  MerkleBTree tree;
  for (int i = 0; i < 50; ++i) tree.Upsert(NumKey(i), NumKey(i));
  PointVO vo = tree.ProvePoint(NumKey(7));
  // Server lies about the value.
  NodeView* node = &vo.root;
  while (!node->is_leaf) node = &node->expanded.begin()->second;
  for (auto& e : node->entries) {
    if (e.value.has_value()) *e.value = K("tampered");
  }
  auto res = VerifyPointRead(tree.root_digest(), tree.params(), NumKey(7), vo);
  EXPECT_TRUE(res.status().IsVerificationFailure());
}

TEST(PointReadTest, DroppedEntryRejected) {
  MerkleBTree tree;
  for (int i = 0; i < 50; ++i) tree.Upsert(NumKey(i), NumKey(i));
  PointVO vo = tree.ProvePoint(NumKey(7));
  // Server hides the key to fake non-membership: leaf digest changes.
  NodeView* node = &vo.root;
  while (!node->is_leaf) node = &node->expanded.begin()->second;
  std::erase_if(node->entries,
                [](const EntryView& e) { return e.value.has_value(); });
  auto res = VerifyPointRead(tree.root_digest(), tree.params(), NumKey(7), vo);
  EXPECT_TRUE(res.status().IsVerificationFailure());
}

TEST(PointReadTest, StaleVoRejectedAfterUpdate) {
  MerkleBTree tree;
  for (int i = 0; i < 20; ++i) tree.Upsert(NumKey(i), NumKey(i));
  PointVO stale = tree.ProvePoint(NumKey(3));
  tree.Upsert(NumKey(3), K("new-value"));
  // The stale VO proves the OLD state; against the new root it must fail.
  auto res = VerifyPointRead(tree.root_digest(), tree.params(), NumKey(3), stale);
  EXPECT_TRUE(res.status().IsVerificationFailure());
}

TEST(PointReadTest, SerializationRoundTrip) {
  MerkleBTree tree;
  for (int i = 0; i < 100; ++i) tree.Upsert(NumKey(i), NumKey(i));
  PointVO vo = tree.ProvePoint(NumKey(42));
  Bytes wire = vo.Serialize();
  auto back = PointVO::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  auto res =
      VerifyPointRead(tree.root_digest(), tree.params(), NumKey(42), *back);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(**res, NumKey(42));
}

TEST(PointReadTest, TruncatedWireRejected) {
  MerkleBTree tree;
  for (int i = 0; i < 100; ++i) tree.Upsert(NumKey(i), NumKey(i));
  Bytes wire = tree.ProvePoint(NumKey(42)).Serialize();
  Bytes cut(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(PointVO::Deserialize(cut).ok());
}

// ---------------------------------------------------------------------------
// Update replay: the client's recomputed root must equal the server's —
// the central single-user verification loop of paper §4.1.
// ---------------------------------------------------------------------------

TEST(UpsertReplayTest, SimpleInsert) {
  MerkleBTree tree;
  TreeClient client = TreeClient::ForEmptyDatabase(tree.params());
  PointVO vo = tree.Upsert(K("a"), K("1"));
  auto new_root = client.ApplyUpsert(K("a"), K("1"), vo);
  ASSERT_TRUE(new_root.ok()) << new_root.status().ToString();
  EXPECT_EQ(*new_root, tree.root_digest());
}

TEST(UpsertReplayTest, InsertCausingLeafSplit) {
  TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  MerkleBTree tree(params);
  TreeClient client = TreeClient::ForEmptyDatabase(params);
  for (int i = 0; i < 10; ++i) {
    PointVO vo = tree.Upsert(NumKey(i), NumKey(i));
    auto root = client.ApplyUpsert(NumKey(i), NumKey(i), vo);
    ASSERT_TRUE(root.ok()) << "i=" << i << ": " << root.status().ToString();
    ASSERT_EQ(*root, tree.root_digest()) << "i=" << i;
  }
}

TEST(UpsertReplayTest, DeepSplitsManyKeys) {
  TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  MerkleBTree tree(params);
  TreeClient client = TreeClient::ForEmptyDatabase(params);
  for (int i = 0; i < 500; ++i) {
    Bytes key = NumKey((i * 131) % 500);
    PointVO vo = tree.Upsert(key, NumKey(i));
    auto root = client.ApplyUpsert(key, NumKey(i), vo);
    ASSERT_TRUE(root.ok()) << "i=" << i;
    ASSERT_EQ(*root, tree.root_digest()) << "i=" << i;
  }
  EXPECT_GE(tree.height(), 3u);
}

TEST(UpsertReplayTest, ForgedVoRejected) {
  MerkleBTree tree;
  TreeClient client = TreeClient::ForEmptyDatabase(tree.params());
  PointVO vo = tree.Upsert(K("a"), K("1"));
  ASSERT_TRUE(client.ApplyUpsert(K("a"), K("1"), vo).ok());
  // Replaying the SAME (stale) VO for the next op must fail: it describes
  // the pre-state of the previous operation.
  auto res = client.ApplyUpsert(K("b"), K("2"), vo);
  EXPECT_TRUE(res.status().IsVerificationFailure());
}

// ---------------------------------------------------------------------------
// Delete replay
// ---------------------------------------------------------------------------

TEST(DeleteReplayTest, SimpleDelete) {
  MerkleBTree tree;
  TreeClient client = TreeClient::ForEmptyDatabase(tree.params());
  for (int i = 0; i < 30; ++i) {
    PointVO vo = tree.Upsert(NumKey(i), NumKey(i));
    ASSERT_TRUE(client.ApplyUpsert(NumKey(i), NumKey(i), vo).ok());
  }
  bool found = false;
  PointVO vo = tree.Delete(NumKey(5), &found);
  ASSERT_TRUE(found);
  auto root = client.ApplyDelete(NumKey(5), vo);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(*root, tree.root_digest());
}

TEST(DeleteReplayTest, DeleteAbsentIsAuthenticatedNotFound) {
  MerkleBTree tree;
  TreeClient client = TreeClient::ForEmptyDatabase(tree.params());
  PointVO vo0 = tree.Upsert(K("a"), K("1"));
  ASSERT_TRUE(client.ApplyUpsert(K("a"), K("1"), vo0).ok());
  bool found = true;
  PointVO vo = tree.Delete(K("zz"), &found);
  EXPECT_FALSE(found);
  auto res = client.ApplyDelete(K("zz"), vo);
  EXPECT_TRUE(res.status().IsNotFound());
  // Root unchanged on both sides.
  EXPECT_EQ(client.root(), tree.root_digest());
}

TEST(DeleteReplayTest, RandomInterleavedOpsKeepClientInSync) {
  TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  MerkleBTree tree(params);
  TreeClient client = TreeClient::ForEmptyDatabase(params);
  util::Rng rng(4242);
  for (int step = 0; step < 2000; ++step) {
    Bytes key = NumKey(rng.Uniform(150));
    if (rng.Uniform(3) != 0) {
      Bytes value = rng.RandomBytes(8);
      PointVO vo = tree.Upsert(key, value);
      auto root = client.ApplyUpsert(key, value, vo);
      ASSERT_TRUE(root.ok()) << "step " << step << ": " << root.status().ToString();
      ASSERT_EQ(*root, tree.root_digest()) << "step " << step;
    } else {
      bool found = false;
      PointVO vo = tree.Delete(key, &found);
      auto root = client.ApplyDelete(key, vo);
      if (found) {
        ASSERT_TRUE(root.ok()) << "step " << step << ": " << root.status().ToString();
        ASSERT_EQ(*root, tree.root_digest()) << "step " << step;
      } else {
        ASSERT_TRUE(root.status().IsNotFound()) << "step " << step;
        ASSERT_EQ(client.root(), tree.root_digest()) << "step " << step;
      }
    }
    if (step % 200 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok());
    }
  }
}

// ---------------------------------------------------------------------------
// Range verification
// ---------------------------------------------------------------------------

TEST(RangeReadTest, FullCorrectRange) {
  MerkleBTree tree;
  for (int i = 0; i < 200; ++i) tree.Upsert(NumKey(i), NumKey(i + 5000));
  RangeVO vo = tree.ProveRange(NumKey(20), NumKey(39));
  auto res = VerifyRangeRead(tree.root_digest(), tree.params(), NumKey(20),
                             NumKey(39), vo);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->size(), 20u);
  EXPECT_EQ((*res)[0].first, NumKey(20));
  EXPECT_EQ((*res)[0].second, NumKey(5020));
  EXPECT_EQ(res->back().first, NumKey(39));
}

TEST(RangeReadTest, EmptyRangeVerifies) {
  MerkleBTree tree;
  for (int i = 0; i < 50; ++i) tree.Upsert(NumKey(2 * i), NumKey(i));
  RangeVO vo = tree.ProveRange(K("zzz0"), K("zzz9"));
  auto res =
      VerifyRangeRead(tree.root_digest(), tree.params(), K("zzz0"), K("zzz9"), vo);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
}

TEST(RangeReadTest, IncompleteProofRejected) {
  MerkleBTree tree;
  for (int i = 0; i < 200; ++i) tree.Upsert(NumKey(i), NumKey(i));
  RangeVO vo = tree.ProveRange(NumKey(0), NumKey(199));
  // Malicious server withholds one expanded subtree to hide updates.
  ASSERT_FALSE(vo.root.is_leaf);
  ASSERT_FALSE(vo.root.expanded.empty());
  vo.root.expanded.erase(vo.root.expanded.begin());
  auto res = VerifyRangeRead(tree.root_digest(), tree.params(), NumKey(0),
                             NumKey(199), vo);
  EXPECT_TRUE(res.status().IsVerificationFailure());
}

TEST(RangeReadTest, HiddenInRangeValueRejected) {
  MerkleBTree tree;
  for (int i = 0; i < 100; ++i) tree.Upsert(NumKey(i), NumKey(i));
  RangeVO vo = tree.ProveRange(NumKey(10), NumKey(20));
  // Strip one in-range value (server "forgets" a row).
  struct Stripper {
    static bool Strip(NodeView* n) {
      if (n->is_leaf) {
        for (auto& e : n->entries) {
          if (e.value.has_value()) {
            e.value.reset();
            return true;
          }
        }
        return false;
      }
      for (auto& [idx, child] : n->expanded) {
        if (Strip(&child)) return true;
      }
      return false;
    }
  };
  ASSERT_TRUE(Stripper::Strip(&vo.root));
  auto res = VerifyRangeRead(tree.root_digest(), tree.params(), NumKey(10),
                             NumKey(20), vo);
  EXPECT_TRUE(res.status().IsVerificationFailure());
}

TEST(RangeReadTest, ReversedBoundsRejected) {
  MerkleBTree tree;
  tree.Upsert(K("a"), K("1"));
  RangeVO vo = tree.ProveRange(K("a"), K("a"));
  auto res = VerifyRangeRead(tree.root_digest(), tree.params(), K("b"), K("a"), vo);
  EXPECT_TRUE(res.status().IsInvalidArgument());
}

TEST(RangeReadTest, SerializationRoundTrip) {
  MerkleBTree tree;
  for (int i = 0; i < 100; ++i) tree.Upsert(NumKey(i), NumKey(i));
  RangeVO vo = tree.ProveRange(NumKey(30), NumKey(60));
  auto back = RangeVO::Deserialize(vo.Serialize());
  ASSERT_TRUE(back.ok());
  auto res = VerifyRangeRead(tree.root_digest(), tree.params(), NumKey(30),
                             NumKey(60), *back);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 31u);
}

// ---------------------------------------------------------------------------
// Parameterized sweep over fanouts: replay equivalence must hold for every
// tree geometry (this is the server/client contract).
// ---------------------------------------------------------------------------

class FanoutSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FanoutSweepTest, ReplayEquivalenceUnderMixedWorkload) {
  TreeParams params{.max_leaf_entries = GetParam(),
                    .max_internal_keys = GetParam()};
  MerkleBTree tree(params);
  TreeClient client = TreeClient::ForEmptyDatabase(params);
  util::Rng rng(GetParam() * 1000 + 17);
  for (int step = 0; step < 600; ++step) {
    Bytes key = NumKey(rng.Uniform(120));
    if (rng.Uniform(4) != 0) {
      Bytes value = rng.RandomBytes(6);
      PointVO vo = tree.Upsert(key, value);
      auto root = client.ApplyUpsert(key, value, vo);
      ASSERT_TRUE(root.ok()) << "fanout=" << GetParam() << " step=" << step;
      ASSERT_EQ(*root, tree.root_digest());
    } else {
      bool found = false;
      PointVO vo = tree.Delete(key, &found);
      auto root = client.ApplyDelete(key, vo);
      if (found) {
        ASSERT_TRUE(root.ok());
        ASSERT_EQ(*root, tree.root_digest());
      } else {
        ASSERT_TRUE(root.status().IsNotFound());
      }
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, FanoutSweepTest,
                         ::testing::Values(2, 3, 4, 8, 16, 64));

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

TEST(CursorTest, EmptyTreeInvalid) {
  MerkleBTree tree;
  auto cursor = tree.NewCursor();
  cursor.SeekToFirst();
  EXPECT_FALSE(cursor.Valid());
  cursor.Seek(K("anything"));
  EXPECT_FALSE(cursor.Valid());
}

TEST(CursorTest, FullScanInOrder) {
  TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  MerkleBTree tree(params);
  const int kN = 200;
  util::Rng rng(3);
  std::vector<int> order(kN);
  for (int i = 0; i < kN; ++i) order[i] = i;
  rng.Shuffle(&order);
  for (int i : order) tree.Upsert(NumKey(i), NumKey(1000 + i));

  auto cursor = tree.NewCursor();
  cursor.SeekToFirst();
  int count = 0;
  for (; cursor.Valid(); cursor.Next()) {
    EXPECT_EQ(cursor.key(), NumKey(count));
    EXPECT_EQ(cursor.value(), NumKey(1000 + count));
    ++count;
  }
  EXPECT_EQ(count, kN);
}

TEST(CursorTest, SeekFindsLowerBound) {
  MerkleBTree tree;
  for (int i = 0; i < 100; i += 2) tree.Upsert(NumKey(i), K("v"));
  auto cursor = tree.NewCursor();
  cursor.Seek(NumKey(10));  // Present.
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), NumKey(10));
  cursor.Seek(NumKey(11));  // Absent: next is 12.
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), NumKey(12));
  cursor.Seek(NumKey(99));  // Past the end.
  EXPECT_FALSE(cursor.Valid());
}

TEST(CursorTest, SeekAcrossLeafBoundaries) {
  // Small fanout forces many leaves; seek to each key and scan 3 forward,
  // comparing against the flat item list.
  TreeParams params{.max_leaf_entries = 2, .max_internal_keys = 2};
  MerkleBTree tree(params);
  const int kN = 60;
  for (int i = 0; i < kN; ++i) tree.Upsert(NumKey(i), NumKey(i));
  auto items = tree.Items();
  auto cursor = tree.NewCursor();
  for (int i = 0; i < kN; ++i) {
    cursor.Seek(NumKey(i));
    for (int j = 0; j < 3 && i + j < kN; ++j) {
      ASSERT_TRUE(cursor.Valid()) << i << "+" << j;
      ASSERT_EQ(cursor.key(), items[i + j].first) << i << "+" << j;
      cursor.Next();
    }
  }
}

TEST(CursorTest, WorksOnIrregularDeleteShapedTree) {
  TreeParams params{.max_leaf_entries = 3, .max_internal_keys = 3};
  MerkleBTree tree(params);
  util::Rng rng(17);
  std::set<uint64_t> live;
  for (int i = 0; i < 300; ++i) {
    uint64_t k = rng.Uniform(80);
    if (rng.Uniform(3) == 0) {
      bool found;
      tree.Delete(NumKey(k), &found);
      live.erase(k);
    } else {
      tree.Upsert(NumKey(k), K("v"));
      live.insert(k);
    }
  }
  auto cursor = tree.NewCursor();
  cursor.SeekToFirst();
  auto it = live.begin();
  for (; cursor.Valid(); cursor.Next(), ++it) {
    ASSERT_NE(it, live.end());
    EXPECT_EQ(cursor.key(), NumKey(*it));
  }
  EXPECT_EQ(it, live.end());
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

TEST(BulkLoadTest, MatchesIncrementalContents) {
  std::vector<std::pair<Bytes, Bytes>> items;
  for (int i = 0; i < 500; ++i) items.emplace_back(NumKey(i), NumKey(7000 + i));
  auto tree = MerkleBTree::BulkLoad(items);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->size(), 500u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->Items(), items);
  // Proofs from a bulk-loaded tree verify like any other.
  TreeClient client(tree->root_digest(), tree->params());
  auto read = client.Read(NumKey(250), tree->ProvePoint(NumKey(250)));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(**read, NumKey(7250));
}

TEST(BulkLoadTest, EmptyAndSingle) {
  auto empty = MerkleBTree::BulkLoad({});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->root_digest(), EmptyRootDigest());
  auto one = MerkleBTree::BulkLoad({{K("a"), K("1")}});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 1u);
  EXPECT_TRUE(one->CheckInvariants().ok());
}

TEST(BulkLoadTest, RejectsUnsortedAndDuplicates) {
  EXPECT_TRUE(MerkleBTree::BulkLoad({{K("b"), K("1")}, {K("a"), K("2")}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MerkleBTree::BulkLoad({{K("a"), K("1")}, {K("a"), K("2")}})
                  .status()
                  .IsInvalidArgument());
}

TEST(BulkLoadTest, AwkwardSizesKeepInvariants) {
  // Sizes chosen to hit the single-leftover-child regrouping path.
  TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  for (size_t n : {1u, 4u, 5u, 20u, 21u, 24u, 25u, 100u, 101u, 124u, 125u}) {
    std::vector<std::pair<Bytes, Bytes>> items;
    for (size_t i = 0; i < n; ++i) items.emplace_back(NumKey(i), K("v"));
    auto tree = MerkleBTree::BulkLoad(items, params);
    ASSERT_TRUE(tree.ok()) << "n=" << n;
    ASSERT_TRUE(tree->CheckInvariants().ok()) << "n=" << n;
    ASSERT_EQ(tree->size(), n);
    // Mutations on a bulk-loaded tree keep working.
    MerkleBTree t = std::move(tree).ValueOrDie();
    t.Upsert(NumKey(n + 1), K("x"));
    bool found = false;
    t.Delete(NumKey(0), &found);
    EXPECT_TRUE(found);
    ASSERT_TRUE(t.CheckInvariants().ok()) << "n=" << n;
  }
}

TEST(BulkLoadTest, PacksTighterThanIncremental) {
  TreeParams params{.max_leaf_entries = 8, .max_internal_keys = 8};
  std::vector<std::pair<Bytes, Bytes>> items;
  for (int i = 0; i < 5000; ++i) items.emplace_back(NumKey(i), K("v"));
  auto bulk = MerkleBTree::BulkLoad(items, params);
  ASSERT_TRUE(bulk.ok());
  MerkleBTree incremental(params);
  for (const auto& [k, v] : items) incremental.Upsert(k, v);
  EXPECT_LE(bulk->height(), incremental.height());
}

// ---------------------------------------------------------------------------
// Tree snapshots (server persistence)
// ---------------------------------------------------------------------------

TEST(SnapshotTest, RoundTripPreservesRootDigest) {
  TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  MerkleBTree tree(params);
  util::Rng rng(55);
  for (int i = 0; i < 300; ++i) {
    tree.Upsert(NumKey(rng.Uniform(200)), rng.RandomBytes(10));
  }
  // Deletions shape the tree irregularly; the snapshot must preserve the
  // exact shape, not just the contents.
  for (int i = 0; i < 60; ++i) {
    bool found;
    tree.Delete(NumKey(rng.Uniform(200)), &found);
  }
  Bytes snapshot = tree.Serialize();
  auto restored = MerkleBTree::Deserialize(snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->root_digest(), tree.root_digest());
  EXPECT_EQ(restored->size(), tree.size());
  EXPECT_EQ(restored->Items(), tree.Items());
  EXPECT_TRUE(restored->CheckInvariants().ok());
  // A restored server keeps serving verifiable proofs.
  TreeClient client(tree.root_digest(), tree.params());
  auto read = client.Read(NumKey(10), restored->ProvePoint(NumKey(10)));
  EXPECT_TRUE(read.ok());
}

TEST(SnapshotTest, EmptyTreeRoundTrip) {
  MerkleBTree tree;
  auto restored = MerkleBTree::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->root_digest(), EmptyRootDigest());
  EXPECT_EQ(restored->size(), 0u);
}

TEST(SnapshotTest, TruncatedSnapshotRejected) {
  MerkleBTree tree;
  for (int i = 0; i < 50; ++i) tree.Upsert(NumKey(i), NumKey(i));
  Bytes snapshot = tree.Serialize();
  for (size_t cut : {size_t(0), size_t(4), snapshot.size() / 2,
                     snapshot.size() - 1}) {
    Bytes truncated(snapshot.begin(), snapshot.begin() + cut);
    EXPECT_FALSE(MerkleBTree::Deserialize(truncated).ok()) << "cut=" << cut;
  }
}

TEST(SnapshotTest, BadMagicRejected) {
  MerkleBTree tree;
  Bytes snapshot = tree.Serialize();
  snapshot[5] ^= 0xFF;
  EXPECT_TRUE(MerkleBTree::Deserialize(snapshot).status().IsInvalidArgument());
}

TEST(SnapshotTest, WrongEntryCountRejected) {
  MerkleBTree tree;
  tree.Upsert(K("a"), K("1"));
  Bytes snapshot = tree.Serialize();
  // The u64 size header sits right after the magic string and two u64
  // params; corrupt it.
  size_t size_off = 4 + 13 + 8 + 8;
  snapshot[size_off] ^= 0x01;
  EXPECT_TRUE(MerkleBTree::Deserialize(snapshot).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// VO size scaling (the O(log n) claim behind paper Figure 2)
// ---------------------------------------------------------------------------

TEST(VoSizeTest, GrowsLogarithmically) {
  TreeParams params{.max_leaf_entries = 8, .max_internal_keys = 8};
  MerkleBTree small(params), large(params);
  for (int i = 0; i < 100; ++i) small.Upsert(NumKey(i), K("v"));
  for (int i = 0; i < 10000; ++i) large.Upsert(NumKey(i), K("v"));
  size_t small_vo = small.ProvePoint(NumKey(50)).Serialize().size();
  size_t large_vo = large.ProvePoint(NumKey(5000)).Serialize().size();
  // 100x the data must cost far less than 100x the proof; logarithmic growth
  // means well under 4x here.
  EXPECT_LT(large_vo, small_vo * 4);
}

// ---------------------------------------------------------------------------
// VO subtree cache: repeat proofs shortcut to one hash — without ever
// weakening what verification accepts.
// ---------------------------------------------------------------------------

uint64_t CacheCounter(const std::string& name) {
  auto snap = util::MetricsRegistry::Instance().Snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(VoCacheTest, RepeatVerifyHitsAndMatchesColdResult) {
  MerkleBTree tree;
  for (int i = 0; i < 200; ++i) tree.Upsert(NumKey(i), NumKey(1000 + i));
  PointVO vo = tree.ProvePoint(NumKey(7));

  VoCache cache;
  const uint64_t hits_before = CacheCounter("mtree.vo.cache.hits_total");
  auto cold = VerifyPointRead(tree.root_digest(), tree.params(), NumKey(7), vo,
                              &cache);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cache.size(), 0u);
  EXPECT_EQ(CacheCounter("mtree.vo.cache.hits_total"), hits_before);

  // Same proof again: the root subtree hits, nothing re-walks, and the
  // answer is byte-identical.
  auto warm = VerifyPointRead(tree.root_digest(), tree.params(), NumKey(7), vo,
                              &cache);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(**warm, **cold);
  EXPECT_GT(CacheCounter("mtree.vo.cache.hits_total"), hits_before);
}

TEST(VoCacheTest, TamperedSubtreeWithWarmCacheFiresVoMismatchAudit) {
  // An attacker serving a self-consistent proof of a *different* database
  // state must be caught even when the victim's cache is warm: the forged
  // content misses (different bytes → different key), verifies to the forged
  // root, and the trusted-root comparison fires kVoMismatch audit evidence.
  MerkleBTree honest, forged;
  for (int i = 0; i < 100; ++i) {
    honest.Upsert(NumKey(i), NumKey(i));
    forged.Upsert(NumKey(i), NumKey(i));
  }
  forged.Upsert(NumKey(7), K("tampered"));

  VoCache cache;
  // Warm the cache with honest traffic.
  PointVO honest_vo = honest.ProvePoint(NumKey(7));
  ASSERT_TRUE(VerifyPointRead(honest.root_digest(), honest.params(), NumKey(7),
                              honest_vo, &cache)
                  .ok());
  ASSERT_GT(cache.size(), 0u);

  const size_t events_before = util::AuditLog::Instance().Snapshot().size();
  PointVO forged_vo = forged.ProvePoint(NumKey(7));
  auto res = VerifyPointRead(honest.root_digest(), honest.params(), NumKey(7),
                             forged_vo, &cache);
  EXPECT_TRUE(res.status().IsVerificationFailure()) << res.status().ToString();

  auto events = util::AuditLog::Instance().Snapshot();
  ASSERT_GT(events.size(), events_before);
  bool saw = false;
  for (size_t i = events_before; i < events.size(); ++i) {
    if (events[i].kind == util::AuditEventKind::kVoMismatch) saw = true;
  }
  EXPECT_TRUE(saw) << "tampered subtree must be audited as kVoMismatch";
}

TEST(VoCacheTest, StaleReplayHitsCacheAndIsStillRejected) {
  // The dangerous case for any proof cache: the server replays a whole VO
  // that WAS valid once. The replay hits the cache (identical bytes), but a
  // hit only returns the OLD digest — which no longer equals the advanced
  // trusted root, so the replay is rejected with audit evidence.
  MerkleBTree tree;
  for (int i = 0; i < 100; ++i) tree.Upsert(NumKey(i), NumKey(i));
  Digest old_root = tree.root_digest();
  PointVO stale = tree.ProvePoint(NumKey(3));

  VoCache cache;
  ASSERT_TRUE(
      VerifyPointRead(old_root, tree.params(), NumKey(3), stale, &cache).ok());

  tree.Upsert(NumKey(3), K("new-value"));  // Trusted root advances.

  const uint64_t hits_before = CacheCounter("mtree.vo.cache.hits_total");
  const size_t events_before = util::AuditLog::Instance().Snapshot().size();
  auto res =
      VerifyPointRead(tree.root_digest(), tree.params(), NumKey(3), stale,
                      &cache);
  EXPECT_TRUE(res.status().IsVerificationFailure()) << res.status().ToString();
  // The cache WAS consulted and hit — and the replay still failed.
  EXPECT_GT(CacheCounter("mtree.vo.cache.hits_total"), hits_before);
  EXPECT_GT(util::AuditLog::Instance().Snapshot().size(), events_before);
}

TEST(VoCacheTest, UpsertReplayMatchesUncachedAndInvalidatesPreState) {
  TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  MerkleBTree tree(params);
  VoCache cache;
  TreeClient cached = TreeClient::ForEmptyDatabase(params);
  cached.AttachVoCache(&cache);
  TreeClient plain = TreeClient::ForEmptyDatabase(params);

  const uint64_t invalidations_before =
      CacheCounter("mtree.vo.cache.invalidations_total");
  for (int i = 0; i < 64; ++i) {
    PointVO vo = tree.Upsert(NumKey(i), NumKey(i));
    auto a = cached.ApplyUpsert(NumKey(i), NumKey(i), vo);
    auto b = plain.ApplyUpsert(NumKey(i), NumKey(i), vo);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(*a, *b) << "cached and uncached replay diverged at i=" << i;
    ASSERT_EQ(*a, tree.root_digest());
  }
  // Each applied upsert invalidated its (now stale) pre-state path.
  EXPECT_GT(CacheCounter("mtree.vo.cache.invalidations_total"),
            invalidations_before);
}

TEST(VoCacheTest, DeleteReplayMatchesUncached) {
  TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  MerkleBTree tree(params);
  for (int i = 0; i < 32; ++i) tree.Upsert(NumKey(i), NumKey(i));
  VoCache cache;
  TreeClient cached(tree.root_digest(), params);
  cached.AttachVoCache(&cache);
  TreeClient plain(tree.root_digest(), params);
  for (int i = 0; i < 32; i += 3) {
    bool found = false;
    PointVO vo = tree.Delete(NumKey(i), &found);
    ASSERT_TRUE(found);
    auto a = cached.ApplyDelete(NumKey(i), vo);
    auto b = plain.ApplyDelete(NumKey(i), vo);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(*a, *b);
    ASSERT_EQ(*a, tree.root_digest());
  }
}

TEST(VoCacheTest, EvictionKeepsCacheBounded) {
  MerkleBTree tree;
  for (int i = 0; i < 500; ++i) tree.Upsert(NumKey(i), NumKey(i));
  VoCache cache(/*max_entries=*/8);
  for (int i = 0; i < 500; i += 7) {
    PointVO vo = tree.ProvePoint(NumKey(i));
    ASSERT_TRUE(VerifyPointRead(tree.root_digest(), tree.params(), NumKey(i),
                                vo, &cache)
                    .ok());
    ASSERT_LE(cache.size(), 8u);
  }
  EXPECT_GT(CacheCounter("mtree.vo.cache.evictions_total"), 0u);
}

TEST(VoCacheTest, ConsistencyViolationAuditedAndEntryDropped) {
  // One content key mapping to two digests is impossible for honest inserts
  // (the key is a hash of everything the digest derives from); if it ever
  // happens the cache must not pick a winner silently.
  VoCache cache;
  Digest key = crypto::Sha256::Hash("some content key");
  Digest d1 = crypto::Sha256::Hash("digest one");
  Digest d2 = crypto::Sha256::Hash("digest two");
  cache.Insert(key, d1);
  ASSERT_NE(cache.Lookup(key), nullptr);

  const size_t events_before = util::AuditLog::Instance().Snapshot().size();
  cache.Insert(key, d2);
  EXPECT_EQ(cache.Lookup(key), nullptr) << "conflicted entry must be dropped";
  auto events = util::AuditLog::Instance().Snapshot();
  ASSERT_GT(events.size(), events_before);
  EXPECT_EQ(events.back().kind, util::AuditEventKind::kVoMismatch);
}

TEST(VoCacheTest, ExportRestoreRoundTripStaysWarm) {
  MerkleBTree tree;
  for (int i = 0; i < 100; ++i) tree.Upsert(NumKey(i), NumKey(i));
  PointVO vo = tree.ProvePoint(NumKey(42));
  VoCache first;
  ASSERT_TRUE(VerifyPointRead(tree.root_digest(), tree.params(), NumKey(42),
                              vo, &first)
                  .ok());
  ASSERT_GT(first.size(), 0u);

  VoCache second;
  for (const auto& [key, digest] : first.Export()) second.Restore(key, digest);
  EXPECT_EQ(second.size(), first.size());

  const uint64_t hits_before = CacheCounter("mtree.vo.cache.hits_total");
  ASSERT_TRUE(VerifyPointRead(tree.root_digest(), tree.params(), NumKey(42),
                              vo, &second)
                  .ok());
  EXPECT_GT(CacheCounter("mtree.vo.cache.hits_total"), hits_before);
}

TEST(VoCacheTest, RangeVerifyCachesAndRepeats) {
  MerkleBTree tree;
  for (int i = 0; i < 200; ++i) tree.Upsert(NumKey(i), NumKey(i));
  RangeVO vo = tree.ProveRange(NumKey(10), NumKey(30));
  VoCache cache;
  auto cold = VerifyRangeRead(tree.root_digest(), tree.params(), NumKey(10),
                              NumKey(30), vo, &cache);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const uint64_t hits_before = CacheCounter("mtree.vo.cache.hits_total");
  auto warm = VerifyRangeRead(tree.root_digest(), tree.params(), NumKey(10),
                              NumKey(30), vo, &cache);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(*warm, *cold);
  EXPECT_GT(CacheCounter("mtree.vo.cache.hits_total"), hits_before);
}

TEST(VoCacheTest, PointReadMemoHitSkipsHashingAndMatchesColdAnswer) {
  MerkleBTree tree;
  for (int i = 0; i < 300; ++i) tree.Upsert(NumKey(i), NumKey(2000 + i));
  PointVO vo = tree.ProvePoint(NumKey(42));

  VoCache cache;
  auto cold = VerifyPointRead(tree.root_digest(), tree.params(), NumKey(42),
                              vo, &cache);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cache.read_memo_count(), 0u);

  const uint64_t memo_hits_before =
      CacheCounter("mtree.vo.cache.read_memo_hits_total");
  auto warm = VerifyPointRead(tree.root_digest(), tree.params(), NumKey(42),
                              vo, &cache);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(**warm, **cold);
  EXPECT_GT(CacheCounter("mtree.vo.cache.read_memo_hits_total"), memo_hits_before);

  // Non-membership memoizes too: nullopt answers round-trip through the memo.
  PointVO absent_vo = tree.ProvePoint(NumKey(999999));
  auto absent_cold = VerifyPointRead(tree.root_digest(), tree.params(),
                                     NumKey(999999), absent_vo, &cache);
  ASSERT_TRUE(absent_cold.ok());
  EXPECT_FALSE(absent_cold->has_value());
  auto absent_warm = VerifyPointRead(tree.root_digest(), tree.params(),
                                     NumKey(999999), absent_vo, &cache);
  ASSERT_TRUE(absent_warm.ok());
  EXPECT_FALSE(absent_warm->has_value());
}

TEST(VoCacheTest, PointReadMemoTamperedLeafFallsThroughAndIsRejected) {
  // A warm memo must never vouch for different leaf bytes: a proof whose
  // leaf was substituted misses the memo (bytewise comparison), goes
  // through full verification, and is rejected with kVoMismatch evidence.
  MerkleBTree honest, forged;
  for (int i = 0; i < 120; ++i) {
    honest.Upsert(NumKey(i), NumKey(i));
    forged.Upsert(NumKey(i), NumKey(i));
  }
  forged.Upsert(NumKey(42), K("forged-value"));

  VoCache cache;
  PointVO honest_vo = honest.ProvePoint(NumKey(42));
  ASSERT_TRUE(VerifyPointRead(honest.root_digest(), honest.params(),
                              NumKey(42), honest_vo, &cache)
                  .ok());
  ASSERT_GT(cache.read_memo_count(), 0u);

  const size_t events_before = util::AuditLog::Instance().Snapshot().size();
  PointVO forged_vo = forged.ProvePoint(NumKey(42));
  auto r = VerifyPointRead(honest.root_digest(), honest.params(), NumKey(42),
                           forged_vo, &cache);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kVerificationFailure);
  auto events = util::AuditLog::Instance().Snapshot();
  ASSERT_GT(events.size(), events_before);
  EXPECT_EQ(events.back().kind, util::AuditEventKind::kVoMismatch);
}

TEST(VoCacheTest, PointReadMemoInvalidatedWhenEpochAdvances) {
  MerkleBTree tree;
  for (int i = 0; i < 100; ++i) tree.Upsert(NumKey(i), NumKey(i));

  VoCache cache;
  TreeClient client(tree.root_digest(), tree.params());
  client.AttachVoCache(&cache);
  PointVO read_vo = tree.ProvePoint(NumKey(5));
  ASSERT_TRUE(client.Read(NumKey(5), read_vo).ok());
  ASSERT_GT(cache.read_memo_count(), 0u);

  // A verified upsert advances the epoch: every memo of the old root drops.
  PointVO pre = tree.ProvePoint(NumKey(5));
  tree.Upsert(NumKey(5), K("new-value"));
  ASSERT_TRUE(client.ApplyUpsert(NumKey(5), K("new-value"), pre).ok());
  EXPECT_EQ(cache.read_memo_count(), 0u);

  // The next read under the new root re-verifies in full and re-memoizes
  // the fresh answer — the stale value can never be served.
  PointVO fresh = tree.ProvePoint(NumKey(5));
  auto r = client.Read(NumKey(5), fresh);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, K("new-value"));
  EXPECT_GT(cache.read_memo_count(), 0u);
}

}  // namespace
}  // namespace mtree
}  // namespace tcvs
