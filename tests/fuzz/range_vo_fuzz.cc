// libFuzzer target for RangeVo's untrusted-source Deserialize. Built only
// under -DTCVS_FUZZ=ON with Clang; seed corpus in
// tests/fuzz_corpora/range_vo/. The harness property lives in harness.h.
#include "tests/fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return tcvs::fuzz::FuzzRangeVo(data, size);
}
