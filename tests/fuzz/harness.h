#pragma once

/// \file
/// Shared fuzz entry points for the trust-boundary parsers — the functions
/// every libFuzzer target (tests/fuzz/*_fuzz.cc, built under TCVS_FUZZ=ON
/// with Clang) and the always-on corpus-replay test (fuzz_corpus_test.cc,
/// any compiler) drive.
///
/// Each harness feeds arbitrary bytes to one TCVS_UNTRUSTED_SOURCE
/// Deserialize. The properties checked:
///
///  * no crash / no sanitizer report on ANY input (the parser is the first
///    code hostile bytes reach — rejection must always be a clean Status);
///  * accepted inputs are parse-stable: serializing the quarantined value
///    back out yields bytes that parse again (a parser that accepts what
///    its serializer cannot express hides unreachable states from every
///    downstream verifier).
///
/// Harnesses only BORROW from quarantine (`untrusted()`); nothing here
/// endorses, so the fuzzers exercise exactly the attack surface that runs
/// before any verification.

#include <cstddef>
#include <cstdint>
#include <cstdlib>

#include "core/wire.h"
#include "mtree/vo.h"
#include "rpc/protocol.h"
#include "util/bytes.h"

namespace tcvs {
namespace fuzz {

namespace internal {
inline Bytes ToBytes(const uint8_t* data, size_t size) {
  return Bytes(data, data + size);
}
// A violated harness property aborts so both libFuzzer and the corpus
// replay surface it as a hard failure, not a silent pass.
inline void Require(bool ok) {
  if (!ok) std::abort();
}
}  // namespace internal

inline int FuzzRpcRequest(const uint8_t* data, size_t size) {
  auto parsed = rpc::RpcRequest::Deserialize(internal::ToBytes(data, size));
  if (!parsed.ok()) return 0;
  auto again = rpc::RpcRequest::Deserialize(parsed->untrusted().Serialize());
  internal::Require(again.ok());
  return 0;
}

inline int FuzzRpcResponse(const uint8_t* data, size_t size) {
  auto parsed = rpc::RpcResponse::Deserialize(internal::ToBytes(data, size));
  if (!parsed.ok()) return 0;
  auto again = rpc::RpcResponse::Deserialize(parsed->untrusted().Serialize());
  internal::Require(again.ok());
  return 0;
}

inline int FuzzPointVo(const uint8_t* data, size_t size) {
  auto parsed = mtree::PointVO::Deserialize(internal::ToBytes(data, size));
  if (!parsed.ok()) return 0;
  // Digest computation over an arbitrary accepted structure must not crash;
  // whether it verifies is irrelevant here.
  (void)mtree::VerifiedRootDigest(*parsed);
  auto again = mtree::PointVO::Deserialize(parsed->untrusted().Serialize());
  internal::Require(again.ok());
  return 0;
}

inline int FuzzRangeVo(const uint8_t* data, size_t size) {
  auto parsed = mtree::RangeVO::Deserialize(internal::ToBytes(data, size));
  if (!parsed.ok()) return 0;
  (void)mtree::VerifiedRootDigest(*parsed);
  auto again = mtree::RangeVO::Deserialize(parsed->untrusted().Serialize());
  internal::Require(again.ok());
  return 0;
}

inline int FuzzQueryResponse(const uint8_t* data, size_t size) {
  auto parsed = core::QueryResponse::Deserialize(internal::ToBytes(data, size));
  if (!parsed.ok()) return 0;
  auto again =
      core::QueryResponse::Deserialize(parsed->untrusted().Serialize());
  internal::Require(again.ok());
  return 0;
}

}  // namespace fuzz
}  // namespace tcvs
