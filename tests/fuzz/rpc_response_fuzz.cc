// libFuzzer target for RpcResponse's untrusted-source Deserialize. Built only
// under -DTCVS_FUZZ=ON with Clang; seed corpus in
// tests/fuzz_corpora/rpc_response/. The harness property lives in harness.h.
#include "tests/fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return tcvs::fuzz::FuzzRpcResponse(data, size);
}
