// libFuzzer target for PointVo's untrusted-source Deserialize. Built only
// under -DTCVS_FUZZ=ON with Clang; seed corpus in
// tests/fuzz_corpora/point_vo/. The harness property lives in harness.h.
#include "tests/fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return tcvs::fuzz::FuzzPointVo(data, size);
}
