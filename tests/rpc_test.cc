// Network stack tests: framing over loopback TCP, RPC round trips, and the
// full verifying-client flow against a served repository — the deployment
// path of the `tcvsd` / `tcvs` tools.

#include <gtest/gtest.h>

#include <thread>

#include "net/socket.h"
#include "rpc/protocol.h"
#include "rpc/remote.h"
#include "util/random.h"

namespace tcvs {
namespace {

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(NetTest, FrameRoundTrip) {
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  uint16_t port = listener->port();
  ASSERT_GT(port, 0);

  std::thread client_thread([&] {
    auto conn = net::TcpConnection::Connect("127.0.0.1", port);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->SendFrame(util::ToBytes("hello")).ok());
    ASSERT_TRUE(conn->SendFrame(Bytes{}).ok());  // Empty frame is legal.
    auto echo = conn->ReceiveFrame();
    ASSERT_TRUE(echo.ok());
    EXPECT_EQ(util::ToString(*echo), "world");
  });

  auto server_conn = listener->Accept();
  ASSERT_TRUE(server_conn.ok());
  auto f1 = server_conn->ReceiveFrame();
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(util::ToString(*f1), "hello");
  auto f2 = server_conn->ReceiveFrame();
  ASSERT_TRUE(f2.ok());
  EXPECT_TRUE(f2->empty());
  ASSERT_TRUE(server_conn->SendFrame(util::ToBytes("world")).ok());
  client_thread.join();
}

TEST(NetTest, LargeFrame) {
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  util::Rng rng(5);
  Bytes big = rng.RandomBytes(3 << 20);  // 3 MiB.

  std::thread client_thread([&] {
    auto conn = net::TcpConnection::Connect("127.0.0.1", listener->port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->SendFrame(big).ok());
  });
  auto server_conn = listener->Accept();
  ASSERT_TRUE(server_conn.ok());
  auto got = server_conn->ReceiveFrame();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
  client_thread.join();
}

TEST(NetTest, DisconnectYieldsIoError) {
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread client_thread([&] {
    auto conn = net::TcpConnection::Connect("127.0.0.1", listener->port());
    ASSERT_TRUE(conn.ok());
    conn->Close();
  });
  auto server_conn = listener->Accept();
  ASSERT_TRUE(server_conn.ok());
  EXPECT_TRUE(server_conn->ReceiveFrame().status().IsIOError());
  client_thread.join();
}

TEST(NetTest, OversizedFrameRejectedBySender) {
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread client_thread([&] {
    auto conn = net::TcpConnection::Connect("127.0.0.1", listener->port());
    ASSERT_TRUE(conn.ok());
    Bytes huge(net::TcpConnection::kMaxFrame + 1);
    EXPECT_TRUE(conn->SendFrame(huge).IsInvalidArgument());
  });
  auto server_conn = listener->Accept();
  client_thread.join();
}

// ---------------------------------------------------------------------------
// RPC wire format
// ---------------------------------------------------------------------------

TEST(RpcProtocolTest, RequestRoundTrip) {
  rpc::RpcRequest req;
  req.type = rpc::RpcType::kTransact;
  req.user = 7;
  req.ops.push_back({cvs::FileOp::Kind::kCommit, "a.c", "content", 3});
  req.ops.push_back({cvs::FileOp::Kind::kCheckout, "b.c", "", 0});
  auto back = rpc::RpcRequest::Deserialize(req.Serialize());
  ASSERT_TRUE(back.ok());
  const rpc::RpcRequest& got = back->untrusted();
  EXPECT_EQ(got.user, 7u);
  ASSERT_EQ(got.ops.size(), 2u);
  EXPECT_EQ(got.ops[0].path, "a.c");
  EXPECT_EQ(got.ops[0].base_revision, 3u);
  EXPECT_EQ(got.ops[1].kind, cvs::FileOp::Kind::kCheckout);
}

TEST(RpcProtocolTest, ResponseCarriesStatus) {
  rpc::RpcResponse resp =
      rpc::RpcResponse::FromStatus(Status::NotFound("missing"));
  auto back = rpc::RpcResponse::Deserialize(resp.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->untrusted().ToStatus().IsNotFound());
  EXPECT_EQ(back->untrusted().ToStatus().message(), "missing");
}

TEST(RpcProtocolTest, JunkNeverCrashes) {
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk = rng.RandomBytes(rng.Uniform(120));
    (void)rpc::RpcRequest::Deserialize(junk);
    (void)rpc::RpcResponse::Deserialize(junk);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: verifying clients over TCP against a served repository
// ---------------------------------------------------------------------------

class ServedRepository : public ::testing::Test {
 protected:
  void SetUp() override {
    auto listener = net::TcpListener::Bind(0);
    ASSERT_TRUE(listener.ok());
    port_ = listener->port();
    server_thread_ = std::thread(
        [l = std::move(listener).ValueOrDie(), this]() mutable {
          (void)rpc::Serve(&l, &repo_);
        });
  }

  void TearDown() override {
    auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_);
    if (remote.ok()) (void)(*remote)->Shutdown();
    server_thread_.join();
  }

  cvs::UntrustedServer repo_;
  uint16_t port_ = 0;
  std::thread server_thread_;
};

TEST_F(ServedRepository, FullVerifiedFlowOverTcp) {
  auto alice_remote = rpc::RemoteServer::Connect("127.0.0.1", port_);
  ASSERT_TRUE(alice_remote.ok()) << alice_remote.status().ToString();
  cvs::VerifyingClient alice(1, alice_remote->get());

  auto rev = alice.Commit("net/main.c", "int main(){}\n", 0);
  ASSERT_TRUE(rev.ok()) << rev.status().ToString();
  EXPECT_EQ(*rev, 1u);

  auto rec = alice.Checkout("net/main.c");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->content, "int main(){}\n");

  // Second client on its own connection (served after alice disconnects —
  // the server loop is sequential, so disconnect first).
  Bytes alice_state = alice.state().Serialize();
  alice_remote->reset();

  auto bob_remote = rpc::RemoteServer::Connect("127.0.0.1", port_);
  ASSERT_TRUE(bob_remote.ok());
  cvs::VerifyingClient bob(2, bob_remote->get());
  EXPECT_TRUE(bob.Commit("net/main.c", "v2\n", 1).ok());
  EXPECT_TRUE(bob.Commit("net/main.c", "v3\n", 1).status().IsFailedPrecondition());

  // Offline sync-up over the persisted states.
  auto restored = cvs::ClientState::Deserialize(alice_state);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(cvs::VerifyingClient::SyncCheck({*restored, bob.state()}).ok());
}

TEST_F(ServedRepository, MultiFileTransactionOverTcp) {
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_);
  ASSERT_TRUE(remote.ok());
  cvs::VerifyingClient alice(1, remote->get());
  auto revs = alice.CommitMany({
      {cvs::FileOp::Kind::kCommit, "x", "X", 0},
      {cvs::FileOp::Kind::kCommit, "y", "Y", 0},
  });
  ASSERT_TRUE(revs.ok()) << revs.status().ToString();
  EXPECT_EQ(repo_.ctr(), 1u);
  auto records = alice.CheckoutMany({"x", "y"});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0]->content, "X");
  EXPECT_EQ((*records)[1]->content, "Y");
}

TEST_F(ServedRepository, AuthenticatedListingOverTcp) {
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_);
  ASSERT_TRUE(remote.ok());
  cvs::VerifyingClient alice(1, remote->get());
  ASSERT_TRUE(alice.Commit("src/a.c", "A", 0).ok());
  ASSERT_TRUE(alice.Commit("src/b.c", "B", 0).ok());
  ASSERT_TRUE(alice.Commit("other.txt", "O", 0).ok());
  auto listing = alice.ListDir("src/");
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  EXPECT_EQ(listing->size(), 2u);
  EXPECT_TRUE(cvs::VerifyingClient::SyncUp({&alice}).ok());
}

TEST_F(ServedRepository, TamperBehindRpcDetectedAtSyncCheck) {
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_);
  ASSERT_TRUE(remote.ok());
  cvs::VerifyingClient alice(1, remote->get());
  ASSERT_TRUE(alice.Commit("f", "honest", 0).ok());
  // The daemon's operator rewrites the stored file out-of-band.
  repo_.mutable_tree_for_testing()->Upsert(
      util::ToBytes("f"), cvs::FileRecord{1, "evil"}.Serialize());
  ASSERT_TRUE(alice.Checkout("f").ok());  // Locally consistent...
  EXPECT_TRUE(cvs::VerifyingClient::SyncCheck({alice.state()})
                  .IsDeviationDetected());  // ...but the chain broke.
}

}  // namespace
}  // namespace tcvs
