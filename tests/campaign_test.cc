// Campaign generator + soak harness tests: seeded determinism, schedule
// serde, invariant checking, delta-debug minimization, and replay of the
// checked-in minimized regression fixtures (tests/campaign_fixtures/).

#include "sim/campaign.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace tcvs {
namespace campaign {
namespace {

// Key report fields that must be bit-equal for seed-exact reproducibility.
std::string ReportFingerprint(const ScheduleOutcome& o) {
  std::ostringstream out;
  out << o.detected << "|" << o.report.detection_round << "|"
      << o.report.detector << "|" << o.report.detection_reason << "|"
      << o.report.attack_engaged_round << "|" << o.delay_ops << "|"
      << o.report.ops_completed << "|" << o.report.rounds_executed << "|"
      << o.report.traffic.messages << "|" << o.report.traffic.bytes << "|"
      << o.report.traffic.external_messages << "|" << o.report.seed;
  return out.str();
}

TEST(CampaignGenerator, SameSeedSameSchedule) {
  const CampaignSchedule a = GenerateSchedule(1234);
  const CampaignSchedule b = GenerateSchedule(1234);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  EXPECT_EQ(a.Describe(), b.Describe());
}

TEST(CampaignGenerator, DifferentSeedsDiffer) {
  // Not guaranteed for every pair, but across a handful of seeds at least
  // one field must vary or the generator is ignoring its seed.
  std::set<Bytes> forms;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    forms.insert(GenerateSchedule(seed).Serialize());
  }
  EXPECT_GT(forms.size(), 1u);
}

TEST(CampaignGenerator, HonestArmIsDelayOnly) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const CampaignSchedule s = GenerateSchedule(seed, /*honest=*/true);
    EXPECT_TRUE(s.IsHonest()) << s.Describe();
    for (const core::AttackStep& step : s.steps) {
      EXPECT_EQ(step.kind, core::AttackKind::kDelay);
    }
  }
}

TEST(CampaignSchedule, SerdeRoundTrip) {
  const CampaignSchedule s = GenerateSchedule(77);
  ASSERT_FALSE(s.steps.empty());
  const Bytes wire = s.Serialize();
  auto back = CampaignSchedule::Deserialize(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Serialize(), wire);
  EXPECT_EQ(back->seed, s.seed);
  EXPECT_EQ(back->Describe(), s.Describe());
}

TEST(CampaignSchedule, DeserializeRejectsMalformedInput) {
  const Bytes wire = GenerateSchedule(77).Serialize();

  Bytes bad_version = wire;
  bad_version[0] = 0x7F;
  EXPECT_FALSE(CampaignSchedule::Deserialize(bad_version).ok());

  Bytes trailing = wire;
  trailing.push_back(0xAB);
  EXPECT_FALSE(CampaignSchedule::Deserialize(trailing).ok());

  Bytes truncated(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(CampaignSchedule::Deserialize(truncated).ok());

  EXPECT_FALSE(CampaignSchedule::Deserialize(Bytes{}).ok());
}

TEST(CampaignRun, SameSeedSameOutcome) {
  const CampaignSchedule s = GenerateSchedule(42);
  const ScheduleOutcome a = RunSchedule(s);
  const ScheduleOutcome b = RunSchedule(s);
  EXPECT_EQ(ReportFingerprint(a), ReportFingerprint(b));
}

TEST(CampaignRun, RecordsSeedInReport) {
  const CampaignSchedule s = GenerateSchedule(42);
  const ScheduleOutcome outcome = RunSchedule(s);
  EXPECT_EQ(outcome.report.seed, 42u);
}

TEST(CampaignRun, DetectionBoundGrowsWithNK) {
  EXPECT_LT(DetectionBound(3, 4), DetectionBound(6, 8));
  EXPECT_GE(DetectionBound(3, 4), 3u * 4u);
}

// The tentpole soak: 200 randomized adversarial scenarios, every run
// checked against the n·k bound, fork-evidence, and false-alarm
// invariants. Any violation fails with the offending schedule's seed and
// description in the report JSON.
TEST(CampaignSoak, TwoHundredScenariosAllInvariantsHold) {
  CampaignOptions options;
  options.seed = 42;
  options.scenarios = 200;
  options.minimize = false;  // Violations fail the test; no need to shrink.
  const CampaignReport report = RunCampaign(options);

  EXPECT_TRUE(report.ok()) << report.JsonFormat();
  EXPECT_EQ(report.scenarios, 200u);
  EXPECT_EQ(report.escapes, 0u);
  EXPECT_EQ(report.bound_violations, 0u);
  EXPECT_EQ(report.missing_evidence, 0u);
  EXPECT_EQ(report.false_alarms, 0u);
  // The mix must actually exercise the protocol: most scenarios engage an
  // attack and most engaged attacks are detected.
  EXPECT_GT(report.honest_runs, 0u);
  EXPECT_GT(report.engaged, report.scenarios / 2);
  EXPECT_GT(report.detected, report.engaged / 2);
  EXPECT_EQ(report.delays_ops.size(), report.detected);
}

TEST(CampaignSoak, ReportJsonIsDeterministic) {
  CampaignOptions options;
  options.seed = 7;
  options.scenarios = 25;
  const std::string a = RunCampaign(options).JsonFormat();
  const std::string b = RunCampaign(options).JsonFormat();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"ok\":true"), std::string::npos) << a;
}

TEST(CampaignSoak, HonestCampaignNeverDetects) {
  CampaignOptions options;
  options.seed = 5;
  options.scenarios = 20;
  options.honest_fraction = 1.0;
  const CampaignReport report = RunCampaign(options);
  EXPECT_EQ(report.detected, 0u) << report.JsonFormat();
  EXPECT_EQ(report.false_alarms, 0u);
  EXPECT_EQ(report.honest_runs, report.scenarios);
}

// The untagged ablation arm: randomized campaign replays are still caught
// (per-user counter monotonicity sees the regressed counters); only the
// engineered Figure-3 XOR cancellation escapes the untagged variant, which
// impossibility_test pins via MakeReplayScenario.
TEST(CampaignSoak, UntaggedArmHoldsUnderRandomizedCampaign) {
  CampaignOptions options;
  options.seed = 11;
  options.scenarios = 40;
  options.minimize = false;
  options.protocol = core::ProtocolKind::kProtocolIINaive;
  const CampaignReport report = RunCampaign(options);
  EXPECT_TRUE(report.ok()) << report.JsonFormat();
  EXPECT_GT(report.detected, 0u);
}

TEST(CampaignMinimize, PreservesDetectionAndShrinks) {
  // Seed 7's schedule minimizes to a single step (verified when the
  // regression fixture was pinned); assert the generic contract here.
  const CampaignSchedule original = GenerateSchedule(7);
  const ScheduleOutcome before = RunSchedule(original);
  ASSERT_TRUE(before.detected);

  uint32_t runs = 0;
  const CampaignSchedule minimized =
      MinimizeSchedule(original, ScheduleProperty::kDetected, &runs);
  EXPECT_GT(runs, 0u);
  EXPECT_LE(minimized.steps.size(), original.steps.size());
  EXPECT_LE(minimized.horizon, original.horizon);

  const ScheduleOutcome after = RunSchedule(minimized);
  EXPECT_TRUE(after.detected);
  EXPECT_FALSE(after.Violated()) << after.violation;
}

TEST(CampaignMinimize, ReturnsInputWhenPropertyAbsent) {
  CampaignSchedule honest = GenerateSchedule(5, /*honest=*/true);
  const CampaignSchedule minimized =
      MinimizeSchedule(honest, ScheduleProperty::kDetected);
  EXPECT_EQ(minimized.Serialize(), honest.Serialize());
}

TEST(CampaignFixtureFormat, TextRoundTrip) {
  CampaignFixture fixture;
  fixture.name = "round-trip";
  fixture.schedule = GenerateSchedule(99);
  fixture.expect_detected = true;
  const std::string text = fixture.ToText();

  auto back = CampaignFixture::FromText(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name, "round-trip");
  EXPECT_TRUE(back->expect_detected);
  EXPECT_FALSE(back->expect_escape);
  EXPECT_EQ(back->schedule.Serialize(), fixture.schedule.Serialize());
}

TEST(CampaignFixtureFormat, RejectsMalformedText) {
  EXPECT_FALSE(CampaignFixture::FromText("").ok());
  EXPECT_FALSE(CampaignFixture::FromText("name: x\n").ok());  // No header.
  EXPECT_FALSE(
      CampaignFixture::FromText("# tcvs-campaign-fixture v1\nname: x\n").ok());
  EXPECT_FALSE(CampaignFixture::FromText(
                   "# tcvs-campaign-fixture v1\nname: x\nexpect_detected: "
                   "2\nschedule: 00\n")
                   .ok());
  EXPECT_FALSE(CampaignFixture::FromText(
                   "# tcvs-campaign-fixture v1\nname: x\nschedule: zz\n")
                   .ok());
}

// Replays every checked-in minimized regression fixture: the schedule must
// still produce exactly the pinned outcome (detection stays detection, and
// no run may newly escape or trip an invariant).
TEST(CampaignFixtures, ReplayCheckedInFixtures) {
  const std::filesystem::path dir = TCVS_CAMPAIGN_FIXTURE_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".fixture") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 3u) << "campaign fixture corpus went missing";

  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();

    auto fixture = CampaignFixture::FromText(buf.str());
    ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();

    const ScheduleOutcome outcome = RunSchedule(fixture->schedule);
    EXPECT_EQ(outcome.detected, fixture->expect_detected)
        << fixture->schedule.Describe();
    EXPECT_EQ(outcome.escaped, fixture->expect_escape)
        << fixture->schedule.Describe();
    if (!fixture->expect_escape) {
      EXPECT_FALSE(outcome.Violated()) << outcome.violation;
    }
  }
}

// The five checked-in fixtures cover the five deviating primitives.
TEST(CampaignFixtures, CorpusCoversAllPrimitives) {
  const std::filesystem::path dir = TCVS_CAMPAIGN_FIXTURE_DIR;
  std::set<core::AttackKind> kinds;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".fixture") continue;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    auto fixture = CampaignFixture::FromText(buf.str());
    ASSERT_TRUE(fixture.ok());
    for (const core::AttackStep& step : fixture->schedule.steps) {
      kinds.insert(step.kind);
    }
  }
  EXPECT_TRUE(kinds.count(core::AttackKind::kFork));
  EXPECT_TRUE(kinds.count(core::AttackKind::kRollback));
  EXPECT_TRUE(kinds.count(core::AttackKind::kReplaySegment));
  EXPECT_TRUE(kinds.count(core::AttackKind::kEquivocate));
  EXPECT_TRUE(kinds.count(core::AttackKind::kDrop));
}

}  // namespace
}  // namespace campaign
}  // namespace tcvs
