// Executable reproduction of Lemma 4.1 (paper §4.3): a directed graph with
// (P1) no isolated vertices, (P2) in-degree ≤ 1, (P3) no directed cycles,
// (P4) exactly two odd-total-degree vertices one of which is a source, is a
// single directed path. The lemma is checked on constructed and randomized
// graphs, and cross-validated against the protocol: honest runs produce
// paths, attack runs do not.

#include <gtest/gtest.h>

#include "core/graph_check.h"
#include "util/random.h"

namespace tcvs {
namespace core {
namespace {

Bytes V(int i) {
  Bytes b(8, 0);
  b[0] = static_cast<uint8_t>(i);
  b[1] = static_cast<uint8_t>(i >> 8);
  return b;
}

TransitionGraph PathGraph(int n) {
  TransitionGraph g;
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(V(i), V(i + 1));
  return g;
}

// ---------------------------------------------------------------------------
// Constructed cases
// ---------------------------------------------------------------------------

TEST(TransitionGraphTest, EmptyGraphIsTrivialPath) {
  TransitionGraph g;
  EXPECT_TRUE(g.IsSingleDirectedPath());
}

TEST(TransitionGraphTest, SingleEdge) {
  TransitionGraph g;
  g.AddEdge(V(0), V(1));
  EXPECT_TRUE(g.SatisfiesLemmaPreconditions());
  EXPECT_TRUE(g.IsSingleDirectedPath());
}

TEST(TransitionGraphTest, LongPathSatisfiesEverything) {
  TransitionGraph g = PathGraph(50);
  EXPECT_TRUE(g.HasNoIsolatedVertices());
  EXPECT_TRUE(g.InDegreeAtMostOne());
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_TRUE(g.OddDegreeConditionHolds());
  EXPECT_TRUE(g.IsSingleDirectedPath());
}

TEST(TransitionGraphTest, ForkViolatesPath) {
  // The Figure-1 shape: one prefix, two divergent suffixes.
  TransitionGraph g;
  g.AddEdge(V(0), V(1));
  g.AddEdge(V(1), V(2));   // Branch A.
  g.AddEdge(V(1), V(10));  // Branch B.
  g.AddEdge(V(10), V(11));
  EXPECT_FALSE(g.IsSingleDirectedPath());
  // It fails the odd-degree condition: V1 has degree 3, both leaves odd.
  EXPECT_FALSE(g.OddDegreeConditionHolds());
}

TEST(TransitionGraphTest, MergeViolatesInDegree) {
  // The Figure-3 shape: two transitions into the same state. With tagged
  // fingerprints this cannot appear (distinct creators ⇒ distinct nodes);
  // untagged it can, and P2 is what it violates.
  TransitionGraph g;
  g.AddEdge(V(0), V(1));
  g.AddEdge(V(1), V(2));
  g.AddEdge(V(5), V(2));  // Second edge into V2.
  EXPECT_FALSE(g.InDegreeAtMostOne());
  EXPECT_FALSE(g.IsSingleDirectedPath());
}

TEST(TransitionGraphTest, CycleViolatesAcyclicity) {
  TransitionGraph g;
  g.AddEdge(V(0), V(1));
  g.AddEdge(V(1), V(2));
  g.AddEdge(V(2), V(0));
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_FALSE(g.IsSingleDirectedPath());
  // A pure cycle also has no odd-degree vertex at all.
  EXPECT_FALSE(g.OddDegreeConditionHolds());
}

TEST(TransitionGraphTest, DisjointPathsViolateOddDegree) {
  // A path plus a detached path: four odd-degree vertices.
  TransitionGraph g = PathGraph(4);
  g.AddEdge(V(100), V(101));
  g.AddEdge(V(101), V(102));
  EXPECT_TRUE(g.InDegreeAtMostOne());
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_FALSE(g.OddDegreeConditionHolds());
  EXPECT_FALSE(g.IsSingleDirectedPath());
}

TEST(TransitionGraphTest, DuplicatedEdgeViolatesConditions) {
  // The same transition served twice (the replay): parallel edges give the
  // endpoints even/odd degrees that break P2.
  TransitionGraph g;
  g.AddEdge(V(0), V(1));
  g.AddEdge(V(0), V(1));
  EXPECT_FALSE(g.InDegreeAtMostOne());
  EXPECT_FALSE(g.IsSingleDirectedPath());
}

// ---------------------------------------------------------------------------
// The lemma, property-tested: any random graph satisfying P1–P4 must be a
// single directed path; random mutations of paths that remain P1–P4 still
// are; and graphs failing the conclusion must fail some precondition.
// ---------------------------------------------------------------------------

TEST(Lemma41PropertyTest, PreconditionsImplyPath) {
  util::Rng rng(20260705);
  int satisfying = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    // Random small digraph.
    TransitionGraph g;
    int n = 2 + rng.Uniform(8);
    int m = 1 + rng.Uniform(10);
    for (int e = 0; e < m; ++e) {
      int u = rng.Uniform(n);
      int v = rng.Uniform(n);
      if (u == v) continue;
      g.AddEdge(V(u), V(v));
    }
    if (g.SatisfiesLemmaPreconditions()) {
      ++satisfying;
      ASSERT_TRUE(g.IsSingleDirectedPath())
          << "iter " << iter << ": " << g.Describe();
    }
  }
  // The sample must actually contain positive cases for the test to mean
  // anything.
  EXPECT_GT(satisfying, 50);
}

TEST(Lemma41PropertyTest, NonPathsFailSomePrecondition) {
  util::Rng rng(424242);
  int non_paths = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    TransitionGraph g;
    int n = 2 + rng.Uniform(8);
    int m = 1 + rng.Uniform(12);
    for (int e = 0; e < m; ++e) {
      int u = rng.Uniform(n);
      int v = rng.Uniform(n);
      if (u == v) continue;
      g.AddEdge(V(u), V(v));
    }
    if (!g.IsSingleDirectedPath()) {
      ++non_paths;
      ASSERT_FALSE(g.SatisfiesLemmaPreconditions())
          << "iter " << iter << ": " << g.Describe();
    }
  }
  EXPECT_GT(non_paths, 1000);
}

TEST(Lemma41PropertyTest, RandomLongPathsAlwaysQualify) {
  util::Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    int n = 2 + rng.Uniform(60);
    // Random vertex labels along the path (order of AddEdge shuffled too).
    std::vector<int> labels(n);
    for (int i = 0; i < n; ++i) labels[i] = 1000 * iter + i;
    std::vector<int> order(n - 1);
    for (int i = 0; i + 1 < n; ++i) order[i] = i;
    rng.Shuffle(&order);
    TransitionGraph g;
    for (int e : order) g.AddEdge(V(labels[e]), V(labels[e + 1]));
    ASSERT_TRUE(g.SatisfiesLemmaPreconditions()) << g.Describe();
    ASSERT_TRUE(g.IsSingleDirectedPath());
  }
}

}  // namespace
}  // namespace core
}  // namespace tcvs
