#include <gtest/gtest.h>

#include "sim/kernel.h"
#include "sim/trace.h"

namespace tcvs {
namespace sim {
namespace {

/// Records everything it receives and can send scripted messages.
class Probe : public Agent {
 public:
  struct Sent {
    Round round;
    AgentId to;
    uint32_t type;
    Bytes payload;
    bool broadcast = false;
  };

  void ScheduleSend(Round round, AgentId to, uint32_t type, Bytes payload) {
    to_send_.push_back(Sent{round, to, type, std::move(payload), false});
  }
  void ScheduleBroadcast(Round round, uint32_t type, Bytes payload) {
    to_send_.push_back(Sent{round, 0, type, std::move(payload), true});
  }
  void ScheduleDetection(Round round, std::string reason) {
    detect_round_ = round;
    detect_reason_ = std::move(reason);
  }

  void OnRound(RoundContext* ctx) override {
    for (const auto& m : ctx->inbox()) {
      received_.push_back({ctx->round(), m.from, m.type, m.payload, m.external});
    }
    for (const auto& s : to_send_) {
      if (s.round == ctx->round()) {
        if (s.broadcast) {
          ctx->Broadcast(s.type, s.payload);
        } else {
          ctx->Send(s.to, s.type, s.payload);
        }
      }
    }
    if (detect_round_ == ctx->round()) ctx->ReportDetection(detect_reason_);
  }

  struct Received {
    Round round;
    AgentId from;
    uint32_t type;
    Bytes payload;
    bool external;
  };
  const std::vector<Received>& received() const { return received_; }

 private:
  std::vector<Sent> to_send_;
  std::vector<Received> received_;
  Round detect_round_ = 0;
  std::string detect_reason_;
};

TEST(KernelTest, MessageDeliveredNextRound) {
  Kernel kernel;
  auto a = std::make_shared<Probe>();
  auto b = std::make_shared<Probe>();
  kernel.AddAgent(1, a);
  kernel.AddAgent(2, b);
  a->ScheduleSend(3, 2, 7, util::ToBytes("hello"));
  kernel.Run(10);
  ASSERT_EQ(b->received().size(), 1u);
  EXPECT_EQ(b->received()[0].round, 4u);
  EXPECT_EQ(b->received()[0].from, 1u);
  EXPECT_EQ(b->received()[0].type, 7u);
  EXPECT_FALSE(b->received()[0].external);
}

TEST(KernelTest, SendOrderPreserved) {
  Kernel kernel;
  auto a = std::make_shared<Probe>();
  auto b = std::make_shared<Probe>();
  kernel.AddAgent(1, a);
  kernel.AddAgent(2, b);
  for (int i = 0; i < 5; ++i) {
    a->ScheduleSend(1, 2, i, util::ToBytes(std::to_string(i)));
  }
  kernel.Run(3);
  ASSERT_EQ(b->received().size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(b->received()[i].type, i);
}

TEST(KernelTest, BroadcastReachesAllUsersExceptSender) {
  Kernel kernel;
  auto a = std::make_shared<Probe>();
  auto b = std::make_shared<Probe>();
  auto c = std::make_shared<Probe>();
  auto server = std::make_shared<Probe>();
  kernel.AddAgent(1, a);
  kernel.AddAgent(2, b);
  kernel.AddAgent(3, c);
  kernel.AddAgent(kServerId, server);
  kernel.RegisterUser(1);
  kernel.RegisterUser(2);
  kernel.RegisterUser(3);
  a->ScheduleBroadcast(2, 9, util::ToBytes("sync"));
  kernel.Run(5);
  EXPECT_EQ(a->received().size(), 0u);
  ASSERT_EQ(b->received().size(), 1u);
  ASSERT_EQ(c->received().size(), 1u);
  EXPECT_TRUE(b->received()[0].external);
  // The server is not a broadcast recipient: the channel is user-to-user.
  EXPECT_EQ(server->received().size(), 0u);
}

TEST(KernelTest, ExternalTrafficCountedSeparately) {
  Kernel kernel;
  auto a = std::make_shared<Probe>();
  auto b = std::make_shared<Probe>();
  auto server = std::make_shared<Probe>();
  kernel.AddAgent(1, a);
  kernel.AddAgent(2, b);
  kernel.AddAgent(kServerId, server);
  kernel.RegisterUser(1);
  kernel.RegisterUser(2);
  // User → server: ordinary traffic. User → user (unicast or broadcast):
  // external communication (§2.2.4 — anything bypassing the server).
  a->ScheduleSend(1, kServerId, 0, Bytes(5));
  a->ScheduleSend(1, 2, 0, Bytes(10));
  a->ScheduleBroadcast(2, 0, Bytes(20));
  SimReport report = kernel.Run(5);
  EXPECT_EQ(report.traffic.messages, 3u);
  EXPECT_EQ(report.traffic.bytes, 35u);
  EXPECT_EQ(report.traffic.external_messages, 2u);
  EXPECT_EQ(report.traffic.external_bytes, 30u);
}

TEST(KernelTest, DetectionStopsRun) {
  Kernel kernel;
  auto a = std::make_shared<Probe>();
  kernel.AddAgent(1, a);
  a->ScheduleDetection(4, "saw a fork");
  SimReport report = kernel.Run(100);
  EXPECT_TRUE(report.detected);
  EXPECT_EQ(report.detection_round, 4u);
  EXPECT_EQ(report.detector, 1u);
  EXPECT_EQ(report.detection_reason, "saw a fork");
  EXPECT_EQ(report.rounds_executed, 4u);
}

TEST(KernelTest, FirstDetectionWins) {
  Kernel kernel;
  auto a = std::make_shared<Probe>();
  auto b = std::make_shared<Probe>();
  kernel.AddAgent(1, a);
  kernel.AddAgent(2, b);
  a->ScheduleDetection(3, "first");
  b->ScheduleDetection(3, "second");  // Same round, later agent order.
  SimReport report = kernel.Run(100);
  EXPECT_TRUE(report.detected);
  EXPECT_EQ(report.detection_reason, "first");
}

TEST(KernelTest, ContinueResumesClock) {
  Kernel kernel;
  auto a = std::make_shared<Probe>();
  kernel.AddAgent(1, a);
  kernel.Run(5);
  EXPECT_EQ(kernel.now(), 5u);
  SimReport report = kernel.Continue(5);
  EXPECT_EQ(report.rounds_executed, 10u);
}

// ---------------------------------------------------------------------------
// Trace / ground-truth deviation
// ---------------------------------------------------------------------------

OpRecord MakeOp(AgentId user, uint64_t seq, OpKind kind, const std::string& key,
                const std::string& value = "",
                std::optional<std::string> observed = std::nullopt) {
  OpRecord r;
  r.user = user;
  r.server_seq = seq;
  r.kind = kind;
  r.key = util::ToBytes(key);
  r.value = util::ToBytes(value);
  r.completed = seq + 10;
  if (observed.has_value()) r.observed = util::ToBytes(*observed);
  return r;
}

TEST(TraceTest, ConsistentHistoryHasNoDeviation) {
  std::vector<OpRecord> ops;
  ops.push_back(MakeOp(1, 0, OpKind::kCommit, "f", "v1"));
  ops.push_back(MakeOp(2, 1, OpKind::kCheckout, "f", "", "v1"));
  ops.push_back(MakeOp(1, 2, OpKind::kCommit, "f", "v2"));
  ops.push_back(MakeOp(2, 3, OpKind::kCheckout, "f", "", "v2"));
  EXPECT_FALSE(FindDeviation(ops).has_value());
}

TEST(TraceTest, MissingValueIsDeviation) {
  std::vector<OpRecord> ops;
  ops.push_back(MakeOp(1, 0, OpKind::kCommit, "f", "v1"));
  // Reader sees the file missing although it was committed: availability
  // violation.
  ops.push_back(MakeOp(2, 1, OpKind::kCheckout, "f"));
  auto idx = FindDeviation(ops);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
}

TEST(TraceTest, WrongValueIsDeviation) {
  std::vector<OpRecord> ops;
  ops.push_back(MakeOp(1, 0, OpKind::kCommit, "f", "v1"));
  ops.push_back(MakeOp(2, 1, OpKind::kCheckout, "f", "", "tampered"));
  EXPECT_TRUE(FindDeviation(ops).has_value());
}

TEST(TraceTest, DuplicateSerialPositionIsDeviation) {
  std::vector<OpRecord> ops;
  ops.push_back(MakeOp(1, 0, OpKind::kCommit, "f", "v1"));
  ops.push_back(MakeOp(2, 0, OpKind::kCommit, "g", "v2"));
  EXPECT_TRUE(FindDeviation(ops).has_value());
}

TEST(TraceTest, DeleteThenReadAbsent) {
  std::vector<OpRecord> ops;
  ops.push_back(MakeOp(1, 0, OpKind::kCommit, "f", "v1"));
  ops.push_back(MakeOp(1, 1, OpKind::kDelete, "f"));
  ops.push_back(MakeOp(2, 2, OpKind::kCheckout, "f"));
  EXPECT_FALSE(FindDeviation(ops).has_value());
}

TEST(TraceTest, OutOfOrderRecordsAreSortedBySeq) {
  std::vector<OpRecord> ops;
  ops.push_back(MakeOp(2, 1, OpKind::kCheckout, "f", "", "v1"));
  ops.push_back(MakeOp(1, 0, OpKind::kCommit, "f", "v1"));
  EXPECT_FALSE(FindDeviation(ops).has_value());
}

TEST(TraceTest, FirstDeviationRoundMapsToCompletion) {
  TraceLog log;
  log.Record(MakeOp(1, 0, OpKind::kCommit, "f", "v1"));
  OpRecord bad = MakeOp(2, 1, OpKind::kCheckout, "f");
  bad.completed = 77;
  log.Record(bad);
  auto round = FirstDeviationRound(log);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, 77u);
}

}  // namespace
}  // namespace sim
}  // namespace tcvs
