// Tests for the util::MetricsRegistry observability layer: registry
// get-or-create semantics, exact counting under contention (run under TSan
// via the tsan preset — names contain "Concurrent" to match TSAN_FILTER),
// the trace ring buffer, and the snapshot exposition/serde formats.

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "util/bytes.h"
#include "util/histogram.h"

namespace tcvs {
namespace util {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Instance().ResetForTesting(); }
  void TearDown() override { MetricsRegistry::Instance().ResetForTesting(); }
};

TEST_F(MetricsTest, GetOrCreateReturnsStablePointer) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* a = reg.GetCounter("test.metrics.stable_total");
  Counter* b = reg.GetCounter("test.metrics.stable_total");
  EXPECT_EQ(a, b);

  Gauge* g1 = reg.GetGauge("test.metrics.stable_gauge");
  Gauge* g2 = reg.GetGauge("test.metrics.stable_gauge");
  EXPECT_EQ(g1, g2);

  LatencyHistogram* l1 = reg.GetLatency("test.metrics.stable_us");
  LatencyHistogram* l2 = reg.GetLatency("test.metrics.stable_us");
  EXPECT_EQ(l1, l2);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsPointersValid) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("test.metrics.reset_total");
  Gauge* g = reg.GetGauge("test.metrics.reset_gauge");
  LatencyHistogram* l = reg.GetLatency("test.metrics.reset_us");
  c->Increment(7);
  g->Set(-3);
  l->Record(42);

  reg.ResetForTesting();

  // The same pointers still work (call-site statics cache them for the
  // process lifetime) and read zero.
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(l->Snapshot().count(), 0u);
  EXPECT_EQ(reg.GetCounter("test.metrics.reset_total"), c);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST_F(MetricsTest, GaugeTracksLevel) {
  Gauge* g = MetricsRegistry::Instance().GetGauge("test.metrics.level");
  g->Set(10);
  g->Increment();
  g->Increment();
  g->Decrement();
  g->Add(-5);
  EXPECT_EQ(g->value(), 6);
}

// Eight threads hammer one counter, one gauge, and one histogram. Counter
// sums must be EXACT (relaxed atomics lose no increments), the gauge must
// return to its starting level, and the histogram must hold every sample.
TEST_F(MetricsTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("test.metrics.concurrent_total");
  Gauge* g = reg.GetGauge("test.metrics.concurrent_gauge");
  LatencyHistogram* l = reg.GetLatency("test.metrics.concurrent_us");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        g->Increment();
        l->Record(static_cast<uint64_t>(t));
        g->Decrement();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c->value(), uint64_t{kThreads} * kIters);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(l->Snapshot().count(), uint64_t{kThreads} * kIters);
}

// Racing get-or-create on the same names must agree on one object per name;
// every thread's increments land on the shared instance.
TEST_F(MetricsTest, ConcurrentGetOrCreateConverges) {
  constexpr int kThreads = 8;
  MetricsRegistry& reg = MetricsRegistry::Instance();
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter* c = reg.GetCounter("test.metrics.race_total");
      c->Increment();
      seen[t] = c;
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), uint64_t{kThreads});
}

// Concurrent TCVS_SPAN use with tracing enabled: spans record into the same
// latency histogram and trace buffer without loss (histogram count is exact;
// the ring buffer holds min(total, capacity) events).
TEST_F(MetricsTest, ConcurrentSpansRecordExactly) {
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.set_trace_enabled(true);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        TCVS_SPAN("test.metrics.span");
      }
    });
  }
  for (auto& th : threads) th.join();
  reg.set_trace_enabled(false);

  LatencyHistogram* l = reg.GetLatency("test.metrics.span.latency_us");
  EXPECT_EQ(l->Snapshot().count(), uint64_t{kThreads} * kIters);
  std::vector<TraceEvent> trace = reg.DrainTrace();
  constexpr uint64_t kTotal = uint64_t{kThreads} * kIters;
  EXPECT_EQ(trace.size(),
            std::min<uint64_t>(kTotal, MetricsRegistry::kTraceCapacity));
  for (const TraceEvent& e : trace) {
    EXPECT_STREQ(e.name, "test.metrics.span");
  }
}

TEST_F(MetricsTest, TraceRingBufferWrapsOldestFirst) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.set_trace_enabled(true);
  const size_t total = MetricsRegistry::kTraceCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    reg.RecordTraceEvent({"test.metrics.wrap", /*start_us=*/i,
                          /*duration_us=*/1, /*thread=*/0});
  }
  std::vector<TraceEvent> trace = reg.DrainTrace();
  reg.set_trace_enabled(false);

  ASSERT_EQ(trace.size(), MetricsRegistry::kTraceCapacity);
  // Oldest surviving event is #100; order is monotone in start_us.
  EXPECT_EQ(trace.front().start_us, 100u);
  EXPECT_EQ(trace.back().start_us, total - 1);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].start_us, trace[i - 1].start_us + 1);
  }
  // Drain clears: the second drain is empty.
  EXPECT_TRUE(reg.DrainTrace().empty());
}

TEST_F(MetricsTest, TraceDisabledRecordsNothing) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  ASSERT_FALSE(reg.trace_enabled());
  { TCVS_SPAN("test.metrics.disabled_span"); }
  EXPECT_TRUE(reg.DrainTrace().empty());
  // The latency histogram still records regardless of tracing.
  EXPECT_EQ(
      reg.GetLatency("test.metrics.disabled_span.latency_us")->Snapshot().count(),
      1u);
}

TEST_F(MetricsTest, SpanContextNestsParentChild) {
  // Outside any span there is no active context.
  EXPECT_EQ(CurrentSpanContext().trace_id, 0u);
  uint64_t outer_trace = 0, outer_span = 0;
  {
    TCVS_SPAN("test.metrics.outer");
    SpanContext outer = CurrentSpanContext();
    outer_trace = outer.trace_id;
    outer_span = outer.span_id;
    EXPECT_NE(outer.trace_id, 0u);
    EXPECT_NE(outer.span_id, 0u);
    EXPECT_EQ(outer.parent_span_id, 0u);  // Root span of a fresh trace.
    {
      TCVS_SPAN("test.metrics.inner");
      SpanContext inner = CurrentSpanContext();
      EXPECT_EQ(inner.trace_id, outer_trace);  // Same trace...
      EXPECT_NE(inner.span_id, outer_span);    // ...new span...
      EXPECT_EQ(inner.parent_span_id, outer_span);  // ...parented correctly.
    }
    // Inner scope exit restores the outer context.
    EXPECT_EQ(CurrentSpanContext().span_id, outer_span);
  }
  EXPECT_EQ(CurrentSpanContext().trace_id, 0u);
}

TEST_F(MetricsTest, ScopedTraceContextAdoptsRemoteTrace) {
  {
    ScopedTraceContext remote(/*trace_id=*/42, /*span_id=*/7);
    SpanContext ctx = CurrentSpanContext();
    EXPECT_EQ(ctx.trace_id, 42u);
    EXPECT_EQ(ctx.span_id, 7u);
    {
      TCVS_SPAN("test.metrics.handler");
      SpanContext handler = CurrentSpanContext();
      EXPECT_EQ(handler.trace_id, 42u);     // Joined the caller's trace.
      EXPECT_EQ(handler.parent_span_id, 7u);  // Child of the caller's span.
    }
  }
  EXPECT_EQ(CurrentSpanContext().trace_id, 0u);
}

TEST_F(MetricsTest, ScopedTraceContextZeroTraceStartsFresh) {
  // A v1 peer sends all-zero context: the handler still gets a real trace.
  ScopedTraceContext remote(/*trace_id=*/0, /*span_id=*/0);
  EXPECT_NE(CurrentSpanContext().trace_id, 0u);
}

TEST_F(MetricsTest, TraceEventsCarrySpanIdentity) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.set_trace_enabled(true);
  {
    TCVS_SPAN("test.metrics.id_outer");
    TCVS_SPAN("test.metrics.id_inner");
  }
  std::vector<TraceEvent> trace = reg.DrainTrace();
  reg.set_trace_enabled(false);
  ASSERT_EQ(trace.size(), 2u);
  // Spans close inner-first, so the inner event records first.
  const TraceEvent& inner = trace[0];
  const TraceEvent& outer = trace[1];
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_NE(inner.span_id, 0u);
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_EQ(outer.parent_span_id, 0u);
}

TEST_F(MetricsTest, TraceCapacityIsClampedAndResizes) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.set_trace_capacity(1);
  EXPECT_EQ(reg.trace_capacity(), MetricsRegistry::kMinTraceCapacity);
  reg.set_trace_capacity(size_t{1} << 40);
  EXPECT_EQ(reg.trace_capacity(), MetricsRegistry::kMaxTraceCapacity);
  reg.set_trace_capacity(128);
  ASSERT_EQ(reg.trace_capacity(), 128u);

  reg.set_trace_enabled(true);
  for (size_t i = 0; i < 300; ++i) {
    reg.RecordTraceEvent({"test.metrics.cap", /*start_us=*/i,
                          /*duration_us=*/1, /*thread=*/0});
  }
  std::vector<TraceEvent> trace = reg.DrainTrace();
  reg.set_trace_enabled(false);
  ASSERT_EQ(trace.size(), 128u);
  EXPECT_EQ(trace.front().start_us, 300u - 128u);  // Oldest evicted first.

  reg.ResetForTesting();
  EXPECT_EQ(reg.trace_capacity(), MetricsRegistry::kTraceCapacity);
}

TEST_F(MetricsTest, TraceDumpSerializeRoundTrips) {
  TraceDump dump;
  TraceDump::Event e;
  e.name = "test.metrics.dump_span";
  e.start_us = 10;
  e.duration_us = 5;
  e.thread = 3;
  e.trace_id = 0xAABBCCDDEEFF0011ull;
  e.span_id = 2;
  e.parent_span_id = 1;
  dump.events.push_back(e);
  auto back = TraceDump::Deserialize(dump.Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->events.size(), 1u);
  EXPECT_EQ(back->events[0].name, "test.metrics.dump_span");
  EXPECT_EQ(back->events[0].start_us, 10u);
  EXPECT_EQ(back->events[0].duration_us, 5u);
  EXPECT_EQ(back->events[0].thread, 3u);
  EXPECT_EQ(back->events[0].trace_id, 0xAABBCCDDEEFF0011ull);
  EXPECT_EQ(back->events[0].span_id, 2u);
  EXPECT_EQ(back->events[0].parent_span_id, 1u);
  EXPECT_FALSE(TraceDump::Deserialize(util::ToBytes("garbage")).ok());
}

TEST_F(MetricsTest, ChromeTraceJsonHasCompleteEvents) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.set_trace_enabled(true);
  { TCVS_SPAN("test.metrics.chrome_span"); }
  TraceDump dump = TraceDump::FromEvents(reg.DrainTrace());
  reg.set_trace_enabled(false);
  ASSERT_EQ(dump.events.size(), 1u);
  const std::string json = dump.ChromeTraceJson();
  // Chrome trace-event format: X-phase events with 16-hex-digit id strings
  // (64-bit ids as JSON numbers would lose precision past 2^53).
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.metrics.chrome_span\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  char id[32];
  std::snprintf(id, sizeof(id), "\"trace_id\":\"%016llx\"",
                (unsigned long long)dump.events[0].trace_id);
  EXPECT_NE(json.find(id), std::string::npos);
}

TEST_F(MetricsTest, TextFormatIsPrometheusStyle) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.GetCounter("test.fmt.requests_total")->Increment(3);
  reg.GetGauge("test.fmt.queue_depth")->Set(2);
  LatencyHistogram* l = reg.GetLatency("test.fmt.latency_us");
  for (uint64_t v = 1; v <= 100; ++v) l->Record(v);

  const std::string text = reg.TextFormat();
  EXPECT_NE(text.find("# TYPE tcvs_test_fmt_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("tcvs_test_fmt_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("tcvs_test_fmt_queue_depth 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tcvs_test_fmt_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("tcvs_test_fmt_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tcvs_test_fmt_latency_us_count 100"),
            std::string::npos);
  EXPECT_NE(text.find("tcvs_test_fmt_latency_us_sum 5050"), std::string::npos);
}

TEST_F(MetricsTest, JsonFormatIsSingleLineWithAllSections) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.GetCounter("test.json.hits_total")->Increment(5);
  reg.GetGauge("test.json.level")->Set(-4);
  reg.GetLatency("test.json.latency_us")->Record(10);

  const std::string json = reg.Snapshot().JsonFormat();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hits_total\":5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.level\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST_F(MetricsTest, SnapshotSerializeRoundTrips) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.GetCounter("test.serde.a_total")->Increment(123);
  reg.GetCounter("test.serde.b_total")->Increment(456);
  reg.GetGauge("test.serde.depth")->Set(-7);
  LatencyHistogram* l = reg.GetLatency("test.serde.latency_us");
  for (uint64_t v = 0; v < 1000; v += 7) l->Record(v);

  MetricsSnapshot before = reg.Snapshot();
  auto after = MetricsSnapshot::Deserialize(before.Serialize());
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  EXPECT_EQ(after->counters, before.counters);
  EXPECT_EQ(after->gauges, before.gauges);
  ASSERT_EQ(after->histograms.size(), before.histograms.size());
  for (const auto& [name, hist] : before.histograms) {
    auto it = after->histograms.find(name);
    ASSERT_NE(it, after->histograms.end()) << name;
    EXPECT_EQ(it->second.count(), hist.count()) << name;
    EXPECT_EQ(it->second.sum(), hist.sum()) << name;
    EXPECT_EQ(it->second.min(), hist.min()) << name;
    EXPECT_EQ(it->second.max(), hist.max()) << name;
    EXPECT_EQ(it->second.Quantile(0.5), hist.Quantile(0.5)) << name;
    EXPECT_EQ(it->second.Quantile(0.99), hist.Quantile(0.99)) << name;
  }
}

TEST_F(MetricsTest, DeserializeRejectsGarbage) {
  Bytes garbage = {0xff, 0xff, 0xff, 0xff, 0x01, 0x02};
  EXPECT_FALSE(MetricsSnapshot::Deserialize(garbage).ok());
  EXPECT_FALSE(MetricsSnapshot::Deserialize(Bytes{}).ok());
}

}  // namespace
}  // namespace util
}  // namespace tcvs
