// Fault-injection and resilience tests: the FaultInjector itself, the retry
// policy, transport deadlines, and the end-to-end behaviors the fault model
// promises — a retrying client transparently survives benign transport
// faults (dropped connections, lost replies, a killed-and-restarted
// server), while corruption is NEVER retried and fails loud.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <thread>

#include "cvs/cache.h"
#include "mtree/btree.h"
#include "net/socket.h"
#include "rpc/remote.h"
#include "rpc/retry.h"
#include "storage/durable.h"
#include "util/fault.h"
#include "util/random.h"
#include "util/serde.h"

namespace tcvs {
namespace {

using util::FaultInjector;
using util::FaultSpec;

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

// ---------------------------------------------------------------------------
// FaultInjector semantics
// ---------------------------------------------------------------------------

TEST_F(FaultTest, UnarmedPointsNeverFire) {
  auto& fi = FaultInjector::Instance();
  EXPECT_FALSE(fi.ShouldFail("no.such.point"));
  EXPECT_EQ(fi.hits("no.such.point"), 0u);
}

TEST_F(FaultTest, OneShotFiresOnceThenDisarms) {
  auto& fi = FaultInjector::Instance();
  fi.Arm("p", FaultSpec::OneShot(42));
  uint64_t arg = 0;
  EXPECT_TRUE(fi.ShouldFail("p", &arg));
  EXPECT_EQ(arg, 42u);
  EXPECT_FALSE(fi.ShouldFail("p"));
  EXPECT_FALSE(fi.ShouldFail("p"));
  EXPECT_EQ(fi.fires("p"), 1u);
}

TEST_F(FaultTest, NthCallFiresExactlyOnNth) {
  auto& fi = FaultInjector::Instance();
  fi.Arm("p", FaultSpec::Nth(3));
  EXPECT_FALSE(fi.ShouldFail("p"));
  EXPECT_FALSE(fi.ShouldFail("p"));
  EXPECT_TRUE(fi.ShouldFail("p"));
  EXPECT_FALSE(fi.ShouldFail("p"));  // Auto-disarmed after firing.
  EXPECT_EQ(fi.fires("p"), 1u);
  EXPECT_EQ(fi.hits("p"), 3u);
}

TEST_F(FaultTest, AlwaysFiresUntilDisarmed) {
  auto& fi = FaultInjector::Instance();
  fi.Arm("p", FaultSpec::Always());
  EXPECT_TRUE(fi.ShouldFail("p"));
  EXPECT_TRUE(fi.ShouldFail("p"));
  fi.Disarm("p");
  EXPECT_FALSE(fi.ShouldFail("p"));
  EXPECT_EQ(fi.fires("p"), 2u);  // Counters survive disarm.
}

TEST_F(FaultTest, ProbabilityRoughlyCalibrated) {
  auto& fi = FaultInjector::Instance();
  fi.Arm("p", FaultSpec::Probability(0.3));
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    if (fi.ShouldFail("p")) ++fired;
  }
  EXPECT_GT(fired, 2000 * 0.3 * 0.7);
  EXPECT_LT(fired, 2000 * 0.3 * 1.3);
}

TEST_F(FaultTest, ArmFromEnvGrammar) {
  auto& fi = FaultInjector::Instance();
  ::setenv("TCVS_TEST_FAULTS", "a.b=oneshot@7,c.d=nth:2,e.f=prob:0.5", 1);
  ASSERT_TRUE(fi.ArmFromEnv("TCVS_TEST_FAULTS").ok());
  uint64_t arg = 0;
  EXPECT_TRUE(fi.ShouldFail("a.b", &arg));
  EXPECT_EQ(arg, 7u);
  EXPECT_FALSE(fi.ShouldFail("c.d"));
  EXPECT_TRUE(fi.ShouldFail("c.d"));
  ::unsetenv("TCVS_TEST_FAULTS");

  EXPECT_FALSE(fi.ArmFromString("garbage").ok());
  EXPECT_FALSE(fi.ArmFromString("p=walk:3").ok());
  EXPECT_FALSE(fi.ArmFromString("p=nth:0").ok());
}

TEST_F(FaultTest, ArmFromStringRejectsMalformedEntries) {
  auto& fi = FaultInjector::Instance();
  // A typo'd spec must fail loudly, not arm a point that never fires.
  EXPECT_FALSE(fi.ArmFromString("=always").ok());        // Missing point.
  EXPECT_FALSE(fi.ArmFromString("p=").ok());             // Missing trigger.
  EXPECT_FALSE(fi.ArmFromString("p=prob:").ok());        // Missing P.
  EXPECT_FALSE(fi.ArmFromString("p=prob:1.5").ok());     // P outside [0, 1].
  EXPECT_FALSE(fi.ArmFromString("p=prob:-0.1").ok());    // P outside [0, 1].
  EXPECT_FALSE(fi.ArmFromString("p=prob:abc").ok());     // Non-numeric P.
  EXPECT_FALSE(fi.ArmFromString("p=prob:0.5junk").ok()); // Trailing junk.
  EXPECT_FALSE(fi.ArmFromString("p=prob:0.5:").ok());    // Empty seed.
  EXPECT_FALSE(fi.ArmFromString("p=prob:0.5:0").ok());   // Zero seed.
  EXPECT_FALSE(fi.ArmFromString("p=prob:0.5:9x").ok());  // Non-numeric seed.
  EXPECT_FALSE(fi.ArmFromString("p=nth:").ok());         // Missing N.
  EXPECT_FALSE(fi.ArmFromString("p=nth:two").ok());      // Non-numeric N.
  EXPECT_FALSE(fi.ArmFromString("p=oneshot@").ok());     // Missing arg.
  EXPECT_FALSE(fi.ArmFromString("p=oneshot@2x").ok());   // Non-numeric arg.
  EXPECT_FALSE(fi.ArmFromString("p=oneshot@-3").ok());   // Negative arg.
  // None of the rejected entries may have armed anything.
  EXPECT_FALSE(fi.ShouldFail("p"));
}

TEST_F(FaultTest, ArmFromEnvRejectsMalformedList) {
  auto& fi = FaultInjector::Instance();
  ::setenv("TCVS_TEST_FAULTS", "a.b=oneshot,c.d=prob:nope", 1);
  EXPECT_FALSE(fi.ArmFromEnv("TCVS_TEST_FAULTS").ok());
  ::unsetenv("TCVS_TEST_FAULTS");
}

// Collects the fire pattern of `n` consecutive hits at `point`.
static std::vector<bool> FirePattern(FaultInjector* fi,
                                     const std::string& point, int n) {
  std::vector<bool> pattern;
  pattern.reserve(n);
  for (int i = 0; i < n; ++i) pattern.push_back(fi->ShouldFail(point));
  return pattern;
}

TEST_F(FaultTest, SeededProbabilityReplaysBitExactly) {
  auto& fi = FaultInjector::Instance();

  // Same point, same spec ⇒ identical draw sequence after re-arming —
  // the property that makes probabilistic fault campaigns replayable.
  fi.Arm("p", FaultSpec::Probability(0.5));
  const std::vector<bool> first = FirePattern(&fi, "p", 64);
  fi.Arm("p", FaultSpec::Probability(0.5));
  EXPECT_EQ(FirePattern(&fi, "p", 64), first);

  // Full Reset + re-arm (a fresh process) draws the same pattern too.
  fi.Reset();
  fi.Arm("p", FaultSpec::Probability(0.5));
  EXPECT_EQ(FirePattern(&fi, "p", 64), first);

  // An explicit seed selects a different (still reproducible) pattern.
  fi.Arm("p", FaultSpec::Probability(0.5, /*arg=*/0, /*seed=*/1234));
  const std::vector<bool> seeded = FirePattern(&fi, "p", 64);
  EXPECT_NE(seeded, first);
  fi.Arm("p", FaultSpec::Probability(0.5, /*arg=*/0, /*seed=*/1234));
  EXPECT_EQ(FirePattern(&fi, "p", 64), seeded);

  // The env grammar's prob:P:SEED arms the same stream as the factory.
  ASSERT_TRUE(fi.ArmFromString("p=prob:0.5:1234").ok());
  EXPECT_EQ(FirePattern(&fi, "p", 64), seeded);
}

TEST_F(FaultTest, ProbabilityStreamsArePerPoint) {
  auto& fi = FaultInjector::Instance();

  // Two points with the same spec draw *different* sequences (name-derived
  // seeds), and interleaving hits at one point never perturbs the other.
  fi.Arm("p.one", FaultSpec::Probability(0.5));
  fi.Arm("p.two", FaultSpec::Probability(0.5));
  const std::vector<bool> one = FirePattern(&fi, "p.one", 64);
  const std::vector<bool> two = FirePattern(&fi, "p.two", 64);
  EXPECT_NE(one, two);

  fi.Reset();
  fi.Arm("p.one", FaultSpec::Probability(0.5));
  fi.Arm("p.two", FaultSpec::Probability(0.5));
  std::vector<bool> interleaved_one;
  for (int i = 0; i < 64; ++i) {
    interleaved_one.push_back(fi.ShouldFail("p.one"));
    fi.ShouldFail("p.two");  // Noise on an unrelated point.
  }
  EXPECT_EQ(interleaved_one, one);
}

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, ExponentialGrowthCappedWithJitterBounds) {
  rpc::RetryPolicy policy;
  policy.initial_backoff_ms = 100;
  policy.max_backoff_ms = 1000;
  policy.multiplier = 2.0;
  policy.jitter = 0.25;
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    EXPECT_GE(policy.BackoffMs(0, &rng), 75);
    EXPECT_LE(policy.BackoffMs(0, &rng), 125);
    EXPECT_GE(policy.BackoffMs(2, &rng), 300);
    EXPECT_LE(policy.BackoffMs(2, &rng), 500);
    // Deep retries saturate at the cap (± jitter).
    EXPECT_LE(policy.BackoffMs(30, &rng), 1250);
    EXPECT_GE(policy.BackoffMs(30, &rng), 750);
  }
  policy.jitter = 0;
  EXPECT_EQ(policy.BackoffMs(0, nullptr), 100);
  EXPECT_EQ(policy.BackoffMs(1, nullptr), 200);
  EXPECT_EQ(policy.BackoffMs(10, nullptr), 1000);
}

TEST(RetryPolicyTest, RetryableTaxonomy) {
  EXPECT_TRUE(rpc::IsRetryableTransport(Status::Unavailable("x")));
  EXPECT_TRUE(rpc::IsRetryableTransport(Status::IOError("x")));
  EXPECT_TRUE(rpc::IsRetryableTransport(Status::DeadlineExceeded("x")));
  // The fatal side of the taxonomy: evidence, not noise.
  EXPECT_FALSE(rpc::IsRetryableTransport(Status::Corruption("x")));
  EXPECT_FALSE(rpc::IsRetryableTransport(Status::VerificationFailure("x")));
  EXPECT_FALSE(rpc::IsRetryableTransport(Status::DeviationDetected("x")));
  EXPECT_FALSE(rpc::IsRetryableTransport(Status::InvalidArgument("x")));
}

// ---------------------------------------------------------------------------
// Socket deadlines & connect classification
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ReceiveDeadlineExpiresAgainstSilentPeer) {
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto conn = net::TcpConnection::Connect("127.0.0.1", listener->port(), 1000);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  conn->set_io_timeout_ms(50);
  // Nobody ever answers: the read must give up with a deadline, not hang.
  auto frame = conn->ReceiveFrame();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsDeadlineExceeded())
      << frame.status().ToString();
  // A deadline poisons the stream: the connection is closed.
  EXPECT_FALSE(conn->valid());
}

TEST_F(FaultTest, ConnectRefusedIsUnavailable) {
  // Bind-then-close yields a port that refuses connections.
  uint16_t dead_port;
  {
    auto listener = net::TcpListener::Bind(0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener->port();
  }
  auto conn = net::TcpConnection::Connect("127.0.0.1", dead_port, 500);
  ASSERT_FALSE(conn.ok());
  EXPECT_TRUE(conn.status().IsUnavailable()) << conn.status().ToString();
}

TEST_F(FaultTest, InjectedConnectFailure) {
  FaultInjector::Instance().Arm(net::kFaultConnectFail, FaultSpec::OneShot());
  auto conn = net::TcpConnection::Connect("127.0.0.1", 1, 100);
  ASSERT_FALSE(conn.ok());
  EXPECT_TRUE(conn.status().IsUnavailable());
}

// ---------------------------------------------------------------------------
// End-to-end resilience over a served repository
// ---------------------------------------------------------------------------

rpc::RemoteOptions FastRetryOptions() {
  rpc::RemoteOptions options;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff_ms = 5;
  options.retry.max_backoff_ms = 100;
  options.connect_timeout_ms = 1000;
  options.io_timeout_ms = 2000;
  return options;
}

class FaultedRepository : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    auto listener = net::TcpListener::Bind(0);
    ASSERT_TRUE(listener.ok());
    port_ = listener->port();
    server_thread_ = std::thread(
        [l = std::move(listener).ValueOrDie(), this]() mutable {
          (void)rpc::Serve(&l, &repo_);
        });
  }

  void TearDown() override {
    FaultInjector::Instance().Reset();  // Faults must not outlive the test.
    auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_);
    if (remote.ok()) (void)(*remote)->Shutdown();
    server_thread_.join();
    FaultTest::TearDown();
  }

  cvs::UntrustedServer repo_;
  uint16_t port_ = 0;
  std::thread server_thread_;
};

TEST_F(FaultedRepository, MidRequestDisconnectIsRetriedTransparently) {
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_,
                                           FastRetryOptions());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  cvs::VerifyingClient alice(1, remote->get());
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());

  // The server drops the connection after receiving the next request,
  // before executing it. The client must reconnect and replay.
  FaultInjector::Instance().Arm(rpc::kFaultServeDropBefore,
                                FaultSpec::OneShot());
  auto rev = alice.Commit("f", "v2", 1);
  ASSERT_TRUE(rev.ok()) << rev.status().ToString();
  EXPECT_EQ(*rev, 2u);
  EXPECT_GE((*remote)->transport_retries(), 1u);
  EXPECT_GE((*remote)->reconnects(), 1u);
  EXPECT_EQ(repo_.ctr(), 2u);  // Replay executed exactly once.
  EXPECT_TRUE(cvs::VerifyingClient::SyncCheck({alice.state()}).ok());
  remote->reset();
}

TEST_F(FaultedRepository, LostReplyIsReplayedIdempotently) {
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_,
                                           FastRetryOptions());
  ASSERT_TRUE(remote.ok());
  cvs::VerifyingClient alice(1, remote->get());
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());

  // This time the server EXECUTES the transaction, then loses the reply.
  // The replayed request must surface the cached original reply — not a
  // second execution — or the counter chain would skip a state.
  FaultInjector::Instance().Arm(rpc::kFaultServeDropAfter,
                                FaultSpec::OneShot());
  auto rev = alice.Commit("f", "v2", 1);
  ASSERT_TRUE(rev.ok()) << rev.status().ToString();
  EXPECT_EQ(*rev, 2u);
  EXPECT_GE((*remote)->transport_retries(), 1u);
  EXPECT_EQ(repo_.ctr(), 2u);  // NOT 3: the replay did not re-execute.
  EXPECT_TRUE(cvs::VerifyingClient::SyncCheck({alice.state()}).ok());
  remote->reset();
}

TEST_F(FaultedRepository, BitflipIsVerificationFailureAndNeverRetried) {
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_,
                                           FastRetryOptions());
  ASSERT_TRUE(remote.ok());
  cvs::VerifyingClient alice(1, remote->get());
  ASSERT_TRUE(alice.Commit("f", "honest content", 0).ok());

  // Flip one bit of the server's NEXT reply frame in flight (hit 1 is the
  // client's own request send; hit 2 is the server's reply).
  FaultInjector::Instance().Arm(net::kFaultSendBitflip, FaultSpec::Nth(2, 40));
  auto rec = alice.Checkout("f");
  ASSERT_FALSE(rec.ok());
  EXPECT_TRUE(rec.status().IsVerificationFailure() ||
              rec.status().IsDeviationDetected())
      << rec.status().ToString();
  // Corruption is evidence, not noise: no retry happened.
  EXPECT_EQ((*remote)->transport_retries(), 0u);
  EXPECT_EQ(FaultInjector::Instance().fires(net::kFaultSendBitflip), 1u);
  remote->reset();
}

TEST_F(FaultedRepository, RetryBudgetExhaustionYieldsUnavailable) {
  auto options = FastRetryOptions();
  options.retry.max_attempts = 3;
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_, options);
  ASSERT_TRUE(remote.ok());
  cvs::VerifyingClient alice(1, remote->get());

  // Every send fails: the budget must run out with Unavailable, the
  // CLI's trigger for degraded read-only mode.
  FaultInjector::Instance().Arm(net::kFaultSendDrop, FaultSpec::Always());
  auto rev = alice.Commit("f", "v1", 0);
  ASSERT_FALSE(rev.ok());
  EXPECT_TRUE(rev.status().IsUnavailable()) << rev.status().ToString();
  FaultInjector::Instance().Disarm(net::kFaultSendDrop);
  remote->reset();
}

TEST_F(FaultedRepository, SlowPeerDelayFaultStillSucceeds) {
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_,
                                           FastRetryOptions());
  ASSERT_TRUE(remote.ok());
  cvs::VerifyingClient alice(1, remote->get());
  // 30ms injected latency on the next two sends: well inside the deadline,
  // so the call just takes longer — no retry, no failure.
  FaultInjector::Instance().Arm(net::kFaultSendDelay, FaultSpec::Always(30));
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());
  FaultInjector::Instance().Disarm(net::kFaultSendDelay);
  EXPECT_EQ((*remote)->transport_retries(), 0u);
  remote->reset();
}

// ---------------------------------------------------------------------------
// Killed-and-restarted durable server
// ---------------------------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("tcvs_fault_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST_F(FaultTest, KilledAndRestartedServerIsSurvivedByRetryingClient) {
  TempDir dir;
  mtree::TreeParams params;

  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();

  auto server1 = storage::DurableServer::Open(dir.str(), params);
  ASSERT_TRUE(server1.ok());
  std::thread serve1([&listener, &server1] {
    (void)rpc::Serve(&listener.ValueOrDie(), server1->get());
  });

  auto options = FastRetryOptions();
  options.io_timeout_ms = 300;  // Backlogged connects must fail fast.
  options.connect_timeout_ms = 300;
  auto remote = rpc::RemoteServer::Connect("127.0.0.1", port, options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  cvs::VerifyingClient alice(1, remote->get());
  ASSERT_TRUE(alice.Commit("f", "v1", 0).ok());

  // Kill the server on receipt of the next request: Serve() returns as if
  // the process died mid-request, before executing anything.
  FaultInjector::Instance().Arm(rpc::kFaultServeCrash, FaultSpec::OneShot());

  Result<uint64_t> rev = Status::Internal("not run");
  std::thread client([&alice, &rev] { rev = alice.Commit("f", "v2", 1); });

  // "Operator" side: wait for the crash, then restart from durable state
  // on the same port while the client is retrying.
  serve1.join();
  listener->Close();
  server1->reset();  // Release the WAL handle, as process death would.
  auto server2 = storage::DurableServer::Open(dir.str(), params);
  ASSERT_TRUE(server2.ok()) << server2.status().ToString();
  EXPECT_EQ((*server2)->server()->ctr(), 1u);  // v2 never executed.
  auto listener2 = net::TcpListener::Bind(port);
  ASSERT_TRUE(listener2.ok()) << listener2.status().ToString();
  std::thread serve2([&listener2, &server2] {
    (void)rpc::Serve(&listener2.ValueOrDie(), server2->get());
  });

  client.join();
  ASSERT_TRUE(rev.ok()) << rev.status().ToString();
  EXPECT_EQ(*rev, 2u);
  EXPECT_GE((*remote)->reconnects(), 1u);
  EXPECT_EQ((*server2)->server()->ctr(), 2u);

  // The surviving client's verified view and the restarted server agree:
  // a fresh client reads v2 and the register chain checks out.
  cvs::VerifyingClient bob(2, remote->get());
  auto rec = bob.Checkout("f");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->content, "v2");
  EXPECT_TRUE(
      cvs::VerifyingClient::SyncCheck({alice.state(), bob.state()}).ok());

  ASSERT_TRUE((*remote)->Shutdown().ok());
  serve2.join();
}

// ---------------------------------------------------------------------------
// Degraded-mode substrate: the verified local cache
// ---------------------------------------------------------------------------

TEST(LocalCacheTest, RoundTripAndPrefixList) {
  cvs::LocalCache cache;
  cache.Put("src/a.c", cvs::FileRecord{1, "A"});
  cache.Put("src/b.c", cvs::FileRecord{3, "B"});
  cache.Put("other.txt", cvs::FileRecord{2, "O"});
  cache.Erase("other.txt");

  auto back = cvs::LocalCache::Deserialize(cache.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  const cvs::FileRecord* rec = back->Find("src/b.c");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->revision, 3u);
  EXPECT_EQ(rec->content, "B");
  EXPECT_EQ(back->Find("other.txt"), nullptr);

  auto listing = back->List("src/");
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0].first, "src/a.c");
  EXPECT_EQ(listing[1].first, "src/b.c");
  EXPECT_TRUE(back->List("zzz").empty());

  EXPECT_FALSE(
      cvs::LocalCache::Deserialize(util::ToBytes("not a cache")).ok());
}

TEST(LocalCacheTest, VoSidecarRoundTripAndBackwardCompat) {
  // The VO subtree-cache sidecar persists and restores through the cache
  // file; a pre-sidecar file (files only, nothing after) still parses.
  mtree::MerkleBTree tree;
  for (int i = 0; i < 50; ++i) {
    tree.Upsert(util::ToBytes("k" + std::to_string(i)), util::ToBytes("v"));
  }
  mtree::VoCache vo_cache;
  mtree::PointVO vo = tree.ProvePoint(util::ToBytes("k7"));
  ASSERT_TRUE(mtree::VerifyPointRead(tree.root_digest(), tree.params(),
                                     util::ToBytes("k7"), vo, &vo_cache)
                  .ok());
  ASSERT_GT(vo_cache.size(), 0u);

  cvs::LocalCache cache;
  cache.Put("src/a.c", cvs::FileRecord{1, "A"});
  cache.StoreVoEntries(vo_cache);
  EXPECT_EQ(cache.vo_entry_count(), vo_cache.size());

  auto back = cvs::LocalCache::Deserialize(cache.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->vo_entry_count(), vo_cache.size());
  mtree::VoCache restored;
  back->LoadVoEntriesInto(&restored);
  EXPECT_EQ(restored.size(), vo_cache.size());
  // The restored cache actually serves hits.
  EXPECT_NE(restored.Lookup(mtree::VoCache::SubtreeKey(vo.root)), nullptr);

  // Backward compatibility: an old-format file ends right after the file
  // records. Reconstruct one by hand and parse it.
  util::Writer w;
  w.PutString("tcvs-cache-v1");
  w.PutU64(1);
  w.PutString("src/a.c");
  w.PutU64(1);
  w.PutString("A");
  auto old = cvs::LocalCache::Deserialize(w.Take());
  ASSERT_TRUE(old.ok()) << old.status().ToString();
  EXPECT_EQ(old->size(), 1u);
  EXPECT_EQ(old->vo_entry_count(), 0u);
}

}  // namespace
}  // namespace tcvs
