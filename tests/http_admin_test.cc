// HTTP observability plane tests: the admin server's scrape endpoints under
// concurrent load, readiness flipping with WAL health, the exemplar
// reservoir's deterministic policy, and the slow-op record wire/JSON schema.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cvs/trusted.h"
#include "net/http_admin.h"
#include "net/socket.h"
#include "rpc/remote.h"
#include "storage/durable.h"
#include "storage/wal.h"
#include "util/cost.h"
#include "util/fault.h"
#include "util/jsonish.h"
#include "util/metrics.h"

namespace tcvs {
namespace {

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("tcvs_http_admin_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

net::HttpAdminServer::Options AdminOptions() {
  net::HttpAdminServer::Options options;
  options.port = 0;  // Ephemeral.
  return options;
}

// ---------------------------------------------------------------------------
// Concurrent scrapes vs live serving
// ---------------------------------------------------------------------------

// Eight scrapers hammer every admin endpoint while verifying clients commit
// through the RPC plane. Serving must stay perturbation-free: every commit
// verifies, every scrape answers 200 with a parseable body. (The observers
// must not become the outage.)
TEST(HttpAdminTest, ConcurrentScrapesDoNotPerturbServing) {
  util::FaultInjector::Instance().Reset();
  cvs::UntrustedServer repo;
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t rpc_port = listener->port();
  Status serve_status = Status::OK();
  std::thread serve_thread(
      [l = std::move(listener).ValueOrDie(), &repo, &serve_status]() mutable {
        rpc::ServeOptions options;
        options.num_threads = 4;
        serve_status = rpc::Serve(&l, &repo, options);
      });

  auto admin = net::HttpAdminServer::Start(AdminOptions());
  ASSERT_TRUE(admin.ok()) << admin.status().ToString();
  net::AdminEndpointOptions endpoint_options;
  endpoint_options.build_info = "http_admin_test";
  endpoint_options.config_summary = "\"test\":true";
  net::RegisterStandardEndpoints(admin->get(), endpoint_options);
  const uint16_t admin_port = (*admin)->port();

  constexpr int kScrapers = 8;
  constexpr int kScrapesEach = 12;
  constexpr int kClients = 4;
  constexpr int kCommitsEach = 6;
  std::atomic<int> scrape_failures{0};
  std::atomic<int> commit_failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kScrapers + kClients);
  for (int s = 0; s < kScrapers; ++s) {
    threads.emplace_back([admin_port, s, &scrape_failures] {
      static const char* kPaths[] = {"/metrics", "/varz", "/healthz",
                                     "/statusz"};
      for (int i = 0; i < kScrapesEach; ++i) {
        const char* path = kPaths[(s + i) % 4];
        auto resp = net::HttpGet("127.0.0.1", admin_port, path);
        if (!resp.ok() || resp->status != 200 || resp->body.empty()) {
          ++scrape_failures;
        }
      }
    });
  }
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([rpc_port, c, &commit_failures] {
      auto remote = rpc::RemoteServer::Connect("127.0.0.1", rpc_port);
      if (!remote.ok()) {
        commit_failures += kCommitsEach;
        return;
      }
      const uint32_t user = static_cast<uint32_t>(c + 1);
      cvs::VerifyingClient client(user, remote->get());
      const std::string path = "scrape/file" + std::to_string(c);
      for (int i = 0; i < kCommitsEach; ++i) {
        auto rev = client.Commit(path, "v" + std::to_string(i),
                                 static_cast<uint64_t>(i));
        if (!rev.ok()) ++commit_failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(commit_failures.load(), 0);
  EXPECT_EQ(scrape_failures.load(), 0);

  // A post-melee /varz is well-formed JSON and saw the served traffic.
  auto varz = net::HttpGet("127.0.0.1", admin_port, "/varz");
  ASSERT_TRUE(varz.ok()) << varz.status().ToString();
  auto parsed = util::ParseJson(varz->body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::JsonValue* counters = parsed->Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->GetU64("rpc.serve.transact.requests_total"),
            static_cast<uint64_t>(kClients * kCommitsEach));

  (*admin)->Stop();
  auto shutdown = rpc::RemoteServer::Connect("127.0.0.1", rpc_port);
  ASSERT_TRUE(shutdown.ok());
  ASSERT_TRUE((*shutdown)->Shutdown().ok());
  serve_thread.join();
  EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
}

// ---------------------------------------------------------------------------
// Health vs readiness under a WAL fault
// ---------------------------------------------------------------------------

// /healthz answers "the process is up" and must never flip; /readyz answers
// "this replica can take writes" and must go 503 the moment the WAL stops
// flushing — and recover when it resumes.
TEST(HttpAdminTest, ReadyzFlipsUnderWalFaultAndRecovers) {
  util::FaultInjector::Instance().Reset();
  TempDir dir;
  mtree::TreeParams params;
  storage::DurableOptions durable_options;
  durable_options.fsync = true;  // The sync fault fires on the fsync path.
  auto durable = storage::DurableServer::Open(dir.str(), params,
                                              durable_options);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();

  auto admin = net::HttpAdminServer::Start(AdminOptions());
  ASSERT_TRUE(admin.ok());
  net::AdminEndpointOptions endpoint_options;
  endpoint_options.readiness.push_back(
      {"wal", [server = durable->get()] {
         return server->wal_ok()
                    ? Status::OK()
                    : Status::IOError("wal unappendable");
       }});
  net::RegisterStandardEndpoints(admin->get(), endpoint_options);
  const uint16_t port = (*admin)->port();

  cvs::VerifyingClient alice(1, durable->get());
  ASSERT_TRUE(alice.Commit("a.c", "v1", 0).ok());
  auto ready = net::HttpGet("127.0.0.1", port, "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status, 200);

  util::FaultInjector::Instance().Arm(storage::kFaultWalSyncFail,
                                      util::FaultSpec::Always());
  EXPECT_FALSE(alice.Commit("a.c", "v2", 1).ok());
  ready = net::HttpGet("127.0.0.1", port, "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status, 503);
  EXPECT_NE(ready->body.find("wal"), std::string::npos);
  // Liveness is unaffected: the process is up, just not writable.
  auto health = net::HttpGet("127.0.0.1", port, "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);

  util::FaultInjector::Instance().Disarm(storage::kFaultWalSyncFail);
  ASSERT_TRUE(alice.Commit("a.c", "v2", 1).ok());
  ready = net::HttpGet("127.0.0.1", port, "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status, 200);

  (*admin)->Stop();
}

// ---------------------------------------------------------------------------
// Exemplar reservoir
// ---------------------------------------------------------------------------

// The reservoir policy is a pure function of the record sequence: replaying
// the same (value, trace_id, ts) sequence after a reset reproduces the
// exact reservoir, and zero trace ids never occupy a slot.
TEST(HttpAdminTest, ExemplarReservoirIsDeterministic) {
  auto& registry = util::MetricsRegistry::Instance();
  util::LatencyHistogram* hist =
      registry.GetLatency("test.exemplar.latency_us");

  auto replay = [hist] {
    // Values spread across buckets so several slots occupy, with two
    // landing in the same slot to exercise overwrite order.
    const uint64_t values[] = {3, 90, 1500, 45000, 47000, 12};
    for (size_t i = 0; i < 6; ++i) {
      hist->RecordWithExemplar(values[i], /*trace_id=*/0x1000 + i,
                               /*ts_us=*/7000 + i);
    }
    hist->RecordWithExemplar(999, /*trace_id=*/0, /*ts_us=*/1);  // No slot.
  };

  registry.ResetForTesting();
  replay();
  std::vector<util::Exemplar> first = hist->Exemplars();
  ASSERT_FALSE(first.empty());
  for (const util::Exemplar& e : first) {
    EXPECT_NE(e.trace_id, 0u);
    EXPECT_NE(e.value, 999u);  // The zero-trace-id record left no exemplar.
  }

  registry.ResetForTesting();
  replay();
  std::vector<util::Exemplar> second = hist->Exemplars();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].value, second[i].value);
    EXPECT_EQ(first[i].trace_id, second[i].trace_id);
    EXPECT_EQ(first[i].ts_us, second[i].ts_us);
    EXPECT_EQ(first[i].bucket, second[i].bucket);
  }

  // The exposition renders a joinable exemplar suffix on a quantile line.
  const std::string text = registry.Snapshot().TextFormat();
  EXPECT_NE(
      text.find("tcvs_test_exemplar_latency_us{quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find(" # {trace_id=\""), std::string::npos);
  registry.ResetForTesting();
}

// ---------------------------------------------------------------------------
// Slow-op record schema
// ---------------------------------------------------------------------------

// The JSON-lines record survives a wire round trip field-for-field, and its
// JSON form parses back with the same numbers — the contract consumers of
// the stderr stream (and the obs smoke stage) rely on.
TEST(HttpAdminTest, SlowOpRecordRoundTripsThroughWireAndJson) {
  util::SlowOpRecord record;
  record.method = "transact";
  record.latency_us = 125000;
  record.trace_id = 0x00f1e2d3c4b5a697ULL;
  record.ts_us = 424242;
  record.cost.hashes = 12;
  record.cost.bytes_hashed = 4096;
  record.cost.sig_verifies = 2;
  record.cost.vo_bytes_built = 777;
  record.cost.wal_appends = 1;
  record.cost.wal_fsync_wait_us = 90000;
  util::TraceDump::Event span;
  span.name = "storage.wal.fsync";
  span.start_us = 424300;
  span.duration_us = 90000;
  span.thread = 3;
  span.trace_id = record.trace_id;
  span.span_id = 0xabcdef0123456789ULL;
  span.parent_span_id = 0x1111222233334444ULL;
  record.spans.push_back(span);

  auto decoded = util::SlowOpRecord::Deserialize(record.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->method, record.method);
  EXPECT_EQ(decoded->latency_us, record.latency_us);
  EXPECT_EQ(decoded->trace_id, record.trace_id);
  EXPECT_EQ(decoded->ts_us, record.ts_us);
  EXPECT_TRUE(decoded->cost == record.cost);
  ASSERT_EQ(decoded->spans.size(), 1u);
  EXPECT_EQ(decoded->spans[0].name, span.name);
  EXPECT_EQ(decoded->spans[0].span_id, span.span_id);
  EXPECT_EQ(decoded->spans[0].parent_span_id, span.parent_span_id);

  auto parsed = util::ParseJson(record.JsonFormat());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("method")->string(), "transact");
  EXPECT_EQ(parsed->GetU64("latency_us"), record.latency_us);
  EXPECT_EQ(parsed->Get("trace_id")->string(), "00f1e2d3c4b5a697");
  const util::JsonValue* cost = parsed->Get("cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->GetU64("hashes"), record.cost.hashes);
  EXPECT_EQ(cost->GetU64("wal_fsync_wait_us"), record.cost.wal_fsync_wait_us);
  const util::JsonValue* spans = parsed->Get("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  ASSERT_EQ(spans->array().size(), 1u);
  EXPECT_EQ(spans->array()[0].Get("name")->string(), "storage.wal.fsync");
}

}  // namespace
}  // namespace tcvs
