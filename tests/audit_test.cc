// Tests for the security audit-event log (util/audit.h): the typed event
// ring itself, its wire form, and — end-to-end — that the partition and
// replay attack scenarios leave the forensic trail the paper's auditor
// needs: fork events naming the diverging digests and counters, each tied
// to a non-zero causal trace id.

#include "util/audit.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scenario.h"
#include "util/metrics.h"
#include "workload/workload.h"

namespace tcvs {
namespace util {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AuditLog::Instance().ResetForTesting();
    MetricsRegistry::Instance().ResetForTesting();
  }
  void TearDown() override {
    AuditLog::Instance().ResetForTesting();
    MetricsRegistry::Instance().ResetForTesting();
  }
};

TEST_F(AuditTest, EmitAssignsSeqAndTimestamp) {
  AuditLog& log = AuditLog::Instance();
  AuditEvent e(AuditEventKind::kCounterRegression);
  e.user = 3;
  e.ctr = 41;
  e.gctr = 42;
  log.Emit(e);
  log.Emit(AuditEvent(AuditEventKind::kSyncUpPass));
  std::vector<AuditEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].seq, 0u);
  EXPECT_GT(events[1].seq, events[0].seq);
  EXPECT_NE(events[0].ts_us, 0u);
  EXPECT_EQ(events[0].kind, AuditEventKind::kCounterRegression);
  EXPECT_EQ(events[0].user, 3u);
  EXPECT_EQ(events[0].ctr, 41u);
  EXPECT_EQ(events[0].gctr, 42u);
  EXPECT_EQ(log.total_emitted(), 2u);
}

TEST_F(AuditTest, EmitInheritsActiveTraceContext) {
  AuditLog& log = AuditLog::Instance();
  uint64_t trace = 0;
  {
    TCVS_SPAN("test.audit.emitting_op");
    trace = CurrentSpanContext().trace_id;
    log.Emit(AuditEvent(AuditEventKind::kVoMismatch));
  }
  ASSERT_NE(trace, 0u);
  EXPECT_EQ(log.Snapshot()[0].trace_id, trace);
  // An explicit trace id is preserved, not overwritten.
  AuditEvent pinned(AuditEventKind::kVoMismatch);
  pinned.trace_id = 77;
  log.Emit(pinned);
  EXPECT_EQ(log.Snapshot()[1].trace_id, 77u);
}

TEST_F(AuditTest, CapacityBoundsRetainedEvents) {
  AuditLog& log = AuditLog::Instance();
  log.set_capacity(1);  // Clamped up to kMinCapacity.
  EXPECT_EQ(log.capacity(), AuditLog::kMinCapacity);
  for (size_t i = 0; i < AuditLog::kMinCapacity + 10; ++i) {
    AuditEvent e(AuditEventKind::kDeviationDetected);
    e.ctr = i;
    log.Emit(std::move(e));
  }
  std::vector<AuditEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), AuditLog::kMinCapacity);
  EXPECT_EQ(events.front().ctr, 10u);  // Oldest 10 were evicted.
  EXPECT_EQ(log.total_emitted(), AuditLog::kMinCapacity + 10);
}

TEST_F(AuditTest, SnapshotSinceIsExclusiveAndOrdered) {
  AuditLog& log = AuditLog::Instance();
  for (int i = 0; i < 5; ++i) {
    log.Emit(AuditEvent(AuditEventKind::kSyncUpPass));
  }
  std::vector<AuditEvent> all = log.Snapshot();
  std::vector<AuditEvent> tail = log.SnapshotSince(all[1].seq);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, all[2].seq);
}

TEST_F(AuditTest, SerializeRoundTripsEveryField) {
  AuditLog& log = AuditLog::Instance();
  AuditEvent e(AuditEventKind::kForkDetected);
  e.user = 2;
  e.ctr = 100;
  e.epoch = 4;
  e.gctr = 100;
  e.lctr_sum = 99;
  e.expected_digest = Bytes(32, 0xAA);
  e.actual_digest = Bytes(32, 0xBB);
  e.trace_id = 0x1122334455667788ull;
  e.detail = "fork/partition detected at sync 100";
  log.Emit(e);
  auto back = AuditLog::Deserialize(log.Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  const AuditEvent& b = (*back)[0];
  EXPECT_EQ(b.kind, AuditEventKind::kForkDetected);
  EXPECT_EQ(b.user, 2u);
  EXPECT_EQ(b.ctr, 100u);
  EXPECT_EQ(b.epoch, 4u);
  EXPECT_EQ(b.gctr, 100u);
  EXPECT_EQ(b.lctr_sum, 99u);
  EXPECT_EQ(b.expected_digest, Bytes(32, 0xAA));
  EXPECT_EQ(b.actual_digest, Bytes(32, 0xBB));
  EXPECT_EQ(b.trace_id, 0x1122334455667788ull);
  EXPECT_EQ(b.detail, "fork/partition detected at sync 100");
  EXPECT_FALSE(AuditLog::Deserialize(ToBytes("junk")).ok());
}

TEST_F(AuditTest, JsonFormatNamesKindAndHexesDigests) {
  AuditEvent e(AuditEventKind::kSignatureVerifyFailure);
  e.seq = 9;
  e.user = 1;
  e.expected_digest = Bytes{0xDE, 0xAD};
  e.detail = "Lamport: verification failure";
  const std::string json = e.JsonFormat();
  EXPECT_NE(json.find("\"kind\":\"signature_verify_failure\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"expected_digest\":\"dead\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"detail\":\"Lamport: verification failure\""),
            std::string::npos)
      << json;
}

TEST_F(AuditTest, EmitBumpsPerKindCounters) {
  AuditLog::Instance().Emit(AuditEvent(AuditEventKind::kForkDetected));
  AuditLog::Instance().Emit(AuditEvent(AuditEventKind::kForkDetected));
  MetricsRegistry& reg = MetricsRegistry::Instance();
  EXPECT_EQ(reg.GetCounter("audit.events_total")->value(), 2u);
  EXPECT_EQ(reg.GetCounter("audit.forks_detected_total")->value(), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end: attack scenarios must leave a forensic audit trail.
// ---------------------------------------------------------------------------

workload::Workload PartitionWorkload() {
  workload::PartitionableOptions opts;
  opts.users_in_a = 2;
  opts.users_in_b = 2;
  opts.prefix_ops_per_user = 3;
  opts.partition_round = 80;
  opts.b_ops_after_dependency = 15;
  return workload::MakePartitionableWorkload(opts);
}

core::ScenarioConfig ForkConfig() {
  core::ScenarioConfig config;
  config.protocol = core::ProtocolKind::kProtocolII;
  config.num_users = 4;
  config.sync_k = 6;
  config.epoch_rounds = 60;
  config.user_key_height = 7;
  config.attack.kind = core::AttackKind::kFork;
  config.attack.trigger_round = 60;  // Split before round-80 t1 lands.
  config.attack.partition_a = {3, 4};
  return config;
}

const AuditEvent* FindKind(const std::vector<AuditEvent>& events,
                           AuditEventKind kind) {
  for (const AuditEvent& e : events) {
    if (e.kind == kind) return &e;
  }
  return nullptr;
}

TEST_F(AuditTest, PartitionAttackLeavesForkEvidence) {
  core::Scenario scenario(ForkConfig(), PartitionWorkload());
  core::ScenarioReport report = scenario.Run(3000);
  ASSERT_TRUE(report.detected) << "fork must be detected";

  std::vector<AuditEvent> events = AuditLog::Instance().Snapshot();
  const AuditEvent* fork = FindKind(events, AuditEventKind::kForkDetected);
  ASSERT_NE(fork, nullptr)
      << "partition detection must emit a kForkDetected audit event";
  // The acceptance bar: the event names who saw it, at which counter and
  // epoch, with both divergent digests, tied to a live causal trace.
  EXPECT_NE(fork->user, 0u);
  EXPECT_GT(fork->gctr, 0u);
  ASSERT_EQ(fork->expected_digest.size(), fork->actual_digest.size());
  EXPECT_FALSE(fork->expected_digest.empty());
  EXPECT_NE(fork->expected_digest, fork->actual_digest)
      << "a fork's evidence is two digests that DISAGREE";
  EXPECT_NE(fork->trace_id, 0u)
      << "audit events must carry the trace of the exchange that exposed "
         "the deviation";

  const AuditEvent* fail = FindKind(events, AuditEventKind::kSyncUpFail);
  ASSERT_NE(fail, nullptr);
  EXPECT_GT(fail->gctr, 0u);
  EXPECT_GT(fail->lctr_sum, 0u);
  // The fork's signature: transitions the server showed (Σ lctr) exceed a
  // single serial history's counter.
  EXPECT_NE(fail->gctr, fail->lctr_sum);

  // The kernel-level detection report also lands in the log.
  const AuditEvent* deviation =
      FindKind(events, AuditEventKind::kDeviationDetected);
  ASSERT_NE(deviation, nullptr);
  EXPECT_NE(deviation->detail.find("sync"), std::string::npos)
      << deviation->detail;
}

TEST_F(AuditTest, HonestRunEmitsOnlyPasses) {
  core::ScenarioConfig config = ForkConfig();
  config.attack = core::AttackConfig{};  // Same protocol, no attack.
  core::Scenario scenario(config, PartitionWorkload());
  core::ScenarioReport report = scenario.Run(3000);
  EXPECT_FALSE(report.detected) << report.detection_reason;
  std::vector<AuditEvent> events = AuditLog::Instance().Snapshot();
  EXPECT_EQ(FindKind(events, AuditEventKind::kForkDetected), nullptr);
  EXPECT_EQ(FindKind(events, AuditEventKind::kSyncUpFail), nullptr);
  ASSERT_NE(FindKind(events, AuditEventKind::kSyncUpPass), nullptr)
      << "sync-ups happened and passed: the log must say so";
}

TEST_F(AuditTest, ReplayAttackLeavesAuditTrail) {
  core::Scenario scenario = core::MakeReplayScenario(/*naive=*/false);
  core::ScenarioReport report = scenario.Run(3000);
  ASSERT_TRUE(report.detected) << "tagged fingerprints must catch the replay";
  std::vector<AuditEvent> events = AuditLog::Instance().Snapshot();
  const AuditEvent* deviation =
      FindKind(events, AuditEventKind::kDeviationDetected);
  ASSERT_NE(deviation, nullptr);
  EXPECT_NE(deviation->user, 0u);
  EXPECT_NE(deviation->trace_id, 0u);
  EXPECT_EQ(deviation->detail, report.detection_reason);
}

}  // namespace
}  // namespace util
}  // namespace tcvs
