// An executable rendering of Theorem 3.1's indistinguishability argument.
//
// The theorem: without external communication, no protocol permits
// unboundedly partitionable workloads AND guarantees k-bounded deviation
// detection. The proof idea is indistinguishability: in the partition attack
// run r, every user's local state evolves exactly as it does in some HONEST
// run (rA for group A, rB for group B) — an agent "knows" a fact only if it
// holds at all points with the same local state (§2.1), so no user can know
// the server deviated.
//
// We realize that argument concretely for the strongest no-communication
// client we have (full per-operation verification, counter monotonicity,
// σ/last registers — ProtocolKind::kNoExternalComm):
//
//   * run rA: honest server, only group A's operations exist;
//   * run rB: honest server, only group B's operations exist;
//   * run r : the forking server serves A the rA history and B the rB
//     history, with a shared prefix.
//
// After the runs, every A user's registers in r equal its registers in rA,
// and every B user's in r equal those in rB — bit for bit. Detection would
// require some user's local state to differ somewhere; it never does.

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "workload/workload.h"

namespace tcvs {
namespace core {
namespace {

// A partitionable workload with a common prefix handled entirely by group A
// before round 40, then disjoint activity.
workload::Workload GroupWorkload(bool include_a, bool include_b) {
  workload::Workload w;
  auto commit = [](sim::Round round, const char* key, const char* value) {
    return workload::ScheduledOp{round, sim::OpKind::kCommit,
                                 util::ToBytes(key), util::ToBytes(value)};
  };
  // Group A: users 1, 2.
  if (include_a) {
    workload::UserScript u1;
    u1.user = 1;
    u1.ops = {commit(2, "a1.c", "A1"), commit(10, "shared.h", "v1"),
              commit(60, "a2.c", "A2")};
    w.push_back(std::move(u1));
    workload::UserScript u2;
    u2.user = 2;
    u2.ops = {commit(6, "a3.c", "A3"), commit(66, "a4.c", "A4")};
    w.push_back(std::move(u2));
  }
  // Group B: users 3, 4 — active only after the fork round (50).
  if (include_b) {
    workload::UserScript u3;
    u3.user = 3;
    u3.ops = {commit(70, "b1.c", "B1"), commit(76, "b2.c", "B2"),
              commit(82, "b3.c", "B3")};
    w.push_back(std::move(u3));
    workload::UserScript u4;
    u4.user = 4;
    u4.ops = {commit(72, "b4.c", "B4"), commit(90, "b5.c", "B5")};
    w.push_back(std::move(u4));
  }
  return w;
}

struct Registers {
  Bytes sigma;
  Bytes last;
  uint64_t gctr;
  uint64_t lctr;
  bool operator==(const Registers&) const = default;
};

Registers Capture(Scenario* scenario, sim::AgentId id) {
  ProtocolUser* user = scenario->user(id);
  return Registers{user->sigma(), user->last(), user->gctr(), user->lctr()};
}

TEST(Theorem31Test, PartitionedUsersAreBitForBitIndistinguishable) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kNoExternalComm;
  config.num_users = 4;

  // Run rA: honest server; only group A operates. (Group B agents exist but
  // sleep — exactly the paper's "no user in B issues transactions".)
  Scenario run_a(config, GroupWorkload(true, false));
  ScenarioReport ra = run_a.Run(300);
  ASSERT_FALSE(ra.detected);

  // Run rB: honest server; group A provides only the shared prefix (before
  // the fork point) and then sleeps; group B operates.
  workload::Workload wb = GroupWorkload(true, true);
  for (auto& script : wb) {
    if (script.user <= 2) {
      // Drop group A's post-fork ops: in rB they never happen.
      std::erase_if(script.ops, [](const workload::ScheduledOp& op) {
        return op.earliest_round >= 50;
      });
    }
  }
  Scenario run_b(config, std::move(wb));
  ScenarioReport rb = run_b.Run(300);
  ASSERT_FALSE(rb.detected);

  // Run r: the attack. The server forks at round 50; group B (users 3,4) is
  // served the fork, group A stays on the main branch.
  ScenarioConfig attack_config = config;
  attack_config.attack.kind = AttackKind::kFork;
  attack_config.attack.trigger_round = 50;
  attack_config.attack.partition_a = {3, 4};
  Scenario run_r(attack_config, GroupWorkload(true, true));
  ScenarioReport rr = run_r.Run(300);

  // The deviation is real...
  EXPECT_TRUE(rr.ground_truth_deviation);
  // ...and undetected...
  EXPECT_FALSE(rr.detected);
  // ...because every user's entire protocol-visible state is identical to
  // its state in an honest run:
  for (sim::AgentId a : {1u, 2u}) {
    EXPECT_EQ(Capture(&run_r, a), Capture(&run_a, a)) << "A user " << a;
  }
  for (sim::AgentId b : {3u, 4u}) {
    EXPECT_EQ(Capture(&run_r, b), Capture(&run_b, b)) << "B user " << b;
  }
}

TEST(Theorem31Test, ExternalCommunicationBreaksTheIndistinguishability) {
  // The same attack run under Protocol II: the sync-up imports OTHER users'
  // registers into each user's view, the indistinguishability argument
  // collapses, and detection follows.
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolII;
  config.num_users = 4;
  config.sync_k = 3;
  config.attack.kind = AttackKind::kFork;
  config.attack.trigger_round = 50;
  config.attack.partition_a = {3, 4};
  Scenario run(config, GroupWorkload(true, true));
  ScenarioReport r = run.Run(1000);
  EXPECT_TRUE(r.detected);
}

}  // namespace
}  // namespace core
}  // namespace tcvs
