// Round-trip tests for every simulator-protocol wire message (core/wire.h).
// The fuzz suite checks parsers never crash; these check they are *correct*.

#include <gtest/gtest.h>

#include "core/wire.h"
#include "util/random.h"

namespace tcvs {
namespace core {
namespace {

TEST(WireTest, QueryRequestRoundTrip) {
  QueryRequest q;
  q.qid = 42;
  q.kind = sim::OpKind::kCommit;
  q.key = util::ToBytes("src/main.c");
  q.value = util::ToBytes("content");
  auto back = QueryRequest::Deserialize(q.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->untrusted().qid, 42u);
  EXPECT_EQ(back->untrusted().kind, sim::OpKind::kCommit);
  EXPECT_EQ(back->untrusted().key, q.key);
  EXPECT_EQ(back->untrusted().value, q.value);
  EXPECT_FALSE(back->untrusted().epoch_upload.has_value());
}

TEST(WireTest, QueryRequestWithEpochUpload) {
  QueryRequest q;
  q.qid = 1;
  q.kind = sim::OpKind::kCheckout;
  q.key = util::ToBytes("f");
  EpochStateBlob blob;
  blob.user = 3;
  blob.epoch = 7;
  blob.sigma = Bytes(32, 0xAA);
  blob.last = Bytes(32, 0xBB);
  blob.signature = util::ToBytes("sig");
  q.epoch_upload = blob;
  auto back = QueryRequest::Deserialize(q.Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->untrusted().epoch_upload.has_value());
  EXPECT_EQ(*back->untrusted().epoch_upload, blob);
}

TEST(WireTest, QueryResponseRoundTrip) {
  util::Rng rng(1);
  QueryResponse resp;
  resp.qid = 9;
  resp.kind = sim::OpKind::kDelete;
  resp.found = true;
  resp.answer = rng.RandomBytes(20);
  resp.vo = rng.RandomBytes(100);
  resp.ctr = 12345;
  resp.creator = 6;
  resp.sig = rng.RandomBytes(64);
  resp.epoch = 3;
  auto back = QueryResponse::Deserialize(resp.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->untrusted().qid, 9u);
  EXPECT_EQ(back->untrusted().kind, sim::OpKind::kDelete);
  EXPECT_TRUE(back->untrusted().found);
  EXPECT_EQ(back->untrusted().answer, resp.answer);
  EXPECT_EQ(back->untrusted().vo, resp.vo);
  EXPECT_EQ(back->untrusted().ctr, 12345u);
  EXPECT_EQ(back->untrusted().creator, 6u);
  EXPECT_EQ(back->untrusted().sig, resp.sig);
  EXPECT_EQ(back->untrusted().epoch, 3u);
}

TEST(WireTest, BadOpKindRejected) {
  QueryRequest q;
  q.kind = sim::OpKind::kCommit;
  q.key = util::ToBytes("k");
  Bytes wire = q.Serialize();
  wire[9] = 9;  // The op-kind byte follows the version byte and u64 qid.
  EXPECT_TRUE(QueryRequest::Deserialize(wire).status().IsInvalidArgument());
}

TEST(WireTest, BadWireVersionRejected) {
  QueryRequest q;
  q.kind = sim::OpKind::kCheckout;
  q.key = util::ToBytes("k");
  Bytes wire = q.Serialize();
  ASSERT_EQ(wire[0], kQueryWireVersion);
  wire[0] = kQueryWireVersion + 1;
  EXPECT_TRUE(QueryRequest::Deserialize(wire).status().IsInvalidArgument());
}

TEST(WireTest, QueryTraceIdRoundTrip) {
  QueryRequest q;
  q.qid = 7;
  q.kind = sim::OpKind::kCheckout;
  q.key = util::ToBytes("f");
  q.trace_id = 0xDEADBEEFCAFEF00Dull;
  auto req_back = QueryRequest::Deserialize(q.Serialize());
  ASSERT_TRUE(req_back.ok());
  EXPECT_EQ(req_back->untrusted().trace_id, 0xDEADBEEFCAFEF00Dull);

  QueryResponse resp;
  resp.qid = 7;
  resp.kind = sim::OpKind::kCheckout;
  resp.trace_id = 0x1234567890ABCDEFull;
  auto resp_back = QueryResponse::Deserialize(resp.Serialize());
  ASSERT_TRUE(resp_back.ok());
  EXPECT_EQ(resp_back->untrusted().trace_id, 0x1234567890ABCDEFull);
}

TEST(WireTest, SyncReportWithJournalRoundTrip) {
  SyncReport report;
  report.sync_id = 100;
  report.user = 2;
  report.lctr = 5;
  report.gctr = 17;
  report.sigma = Bytes(32, 0x11);
  report.last = Bytes(32, 0x22);
  report.journal.push_back(
      TransitionRecord{Bytes(32, 1), Bytes(32, 2), 16, 1, 2});
  report.journal.push_back(
      TransitionRecord{Bytes(32, 2), Bytes(32, 3), 17, 2, 2});
  auto back = SyncReport::Deserialize(report.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->untrusted().sync_id, 100u);
  EXPECT_EQ(back->untrusted().gctr, 17u);
  ASSERT_EQ(back->untrusted().journal.size(), 2u);
  EXPECT_EQ(back->untrusted().journal[0], report.journal[0]);
  EXPECT_EQ(back->untrusted().journal[1], report.journal[1]);
}

TEST(WireTest, EpochStatesReplyRoundTrip) {
  EpochStatesReply reply;
  reply.epoch = 4;
  for (uint32_t u = 1; u <= 3; ++u) {
    EpochStateBlob blob;
    blob.user = u;
    blob.epoch = 4;
    blob.sigma = Bytes(32, uint8_t(u));
    blob.last = Bytes(32, uint8_t(u + 100));
    blob.signature = util::ToBytes("s" + std::to_string(u));
    reply.states.push_back(blob);
    blob.epoch = 3;
    reply.prev_states.push_back(blob);
  }
  auto back = EpochStatesReply::Deserialize(reply.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->untrusted().epoch, 4u);
  ASSERT_EQ(back->untrusted().states.size(), 3u);
  ASSERT_EQ(back->untrusted().prev_states.size(), 3u);
  EXPECT_EQ(back->untrusted().states[1], reply.states[1]);
  EXPECT_EQ(back->untrusted().prev_states[2], reply.prev_states[2]);
}

TEST(WireTest, EpochBlobPreimageBindsEveryField) {
  EpochStateBlob blob;
  blob.user = 1;
  blob.epoch = 2;
  blob.sigma = Bytes(32, 0x01);
  blob.last = Bytes(32, 0x02);
  Bytes base = blob.Preimage();
  EpochStateBlob changed = blob;
  changed.user = 9;
  EXPECT_NE(changed.Preimage(), base);
  changed = blob;
  changed.epoch = 9;
  EXPECT_NE(changed.Preimage(), base);
  changed = blob;
  changed.sigma[0] ^= 1;
  EXPECT_NE(changed.Preimage(), base);
  changed = blob;
  changed.last[0] ^= 1;
  EXPECT_NE(changed.Preimage(), base);
  // The signature itself is NOT part of the preimage.
  changed = blob;
  changed.signature = util::ToBytes("whatever");
  EXPECT_EQ(changed.Preimage(), base);
}

TEST(WireTest, AggMessagesRoundTrip) {
  AggReport agg{7, 3, Bytes(32, 0x33), 99};
  auto agg_back = AggReport::Deserialize(agg.Serialize());
  ASSERT_TRUE(agg_back.ok());
  EXPECT_EQ(agg_back->untrusted().sync_id, 7u);
  EXPECT_EQ(agg_back->untrusted().lctr_sum, 99u);

  AggTotal total{7, Bytes(32, 0x44), 123};
  auto total_back = AggTotal::Deserialize(total.Serialize());
  ASSERT_TRUE(total_back.ok());
  EXPECT_EQ(total_back->untrusted().lctr_total, 123u);

  AggSuccess success{7, 2};
  auto success_back = AggSuccess::Deserialize(success.Serialize());
  ASSERT_TRUE(success_back.ok());
  EXPECT_EQ(success_back->untrusted().user, 2u);
}

TEST(WireTest, RootSigUploadRoundTrip) {
  RootSigUpload up{4, 500, util::ToBytes("signature-bytes")};
  auto back = RootSigUpload::Deserialize(up.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->untrusted().user, 4u);
  EXPECT_EQ(back->untrusted().ctr_after, 500u);
  EXPECT_EQ(back->untrusted().sig, up.sig);
}

}  // namespace
}  // namespace core
}  // namespace tcvs
