#include <gtest/gtest.h>

#include "cvs/diff.h"
#include "cvs/repository.h"
#include "util/random.h"

namespace tcvs {
namespace cvs {
namespace {

std::vector<std::string> L(std::initializer_list<std::string> lines) {
  return std::vector<std::string>(lines);
}

// ---------------------------------------------------------------------------
// SplitLines / JoinLines
// ---------------------------------------------------------------------------

TEST(LinesTest, SplitBasic) {
  EXPECT_EQ(SplitLines("a\nb\nc\n"), L({"a", "b", "c"}));
  EXPECT_EQ(SplitLines("a\nb\nc"), L({"a", "b", "c"}));
  EXPECT_EQ(SplitLines(""), L({}));
  EXPECT_EQ(SplitLines("\n"), L({""}));
  EXPECT_EQ(SplitLines("\n\n"), L({"", ""}));
}

TEST(LinesTest, JoinInvertsSplitOnTerminatedText) {
  std::string text = "alpha\nbeta\n\ngamma\n";
  EXPECT_EQ(JoinLines(SplitLines(text)), text);
}

// ---------------------------------------------------------------------------
// Diff / patch
// ---------------------------------------------------------------------------

TEST(DiffTest, IdenticalFilesEmptyPatch) {
  auto a = L({"x", "y", "z"});
  Patch p = ComputeDiff(a, a);
  EXPECT_TRUE(p.empty());
}

TEST(DiffTest, PureInsertion) {
  auto a = L({"one", "three"});
  auto b = L({"one", "two", "three"});
  Patch p = ComputeDiff(a, b);
  ASSERT_EQ(p.hunks.size(), 1u);
  EXPECT_EQ(p.hunks[0].old_pos, 1u);
  EXPECT_TRUE(p.hunks[0].removed.empty());
  EXPECT_EQ(p.hunks[0].added, L({"two"}));
  EXPECT_EQ(*ApplyPatch(a, p), b);
}

TEST(DiffTest, PureDeletion) {
  auto a = L({"one", "two", "three"});
  auto b = L({"one", "three"});
  Patch p = ComputeDiff(a, b);
  EXPECT_EQ(p.lines_removed(), 1u);
  EXPECT_EQ(p.lines_added(), 0u);
  EXPECT_EQ(*ApplyPatch(a, p), b);
}

TEST(DiffTest, Replacement) {
  auto a = L({"a", "b", "c"});
  auto b = L({"a", "B", "c"});
  Patch p = ComputeDiff(a, b);
  ASSERT_EQ(p.hunks.size(), 1u);
  EXPECT_EQ(p.hunks[0].removed, L({"b"}));
  EXPECT_EQ(p.hunks[0].added, L({"B"}));
  EXPECT_EQ(*ApplyPatch(a, p), b);
}

TEST(DiffTest, EmptyToNonEmptyAndBack) {
  auto empty = L({});
  auto full = L({"a", "b"});
  EXPECT_EQ(*ApplyPatch(empty, ComputeDiff(empty, full)), full);
  EXPECT_EQ(*ApplyPatch(full, ComputeDiff(full, empty)), empty);
}

TEST(DiffTest, CompletelyDifferentFiles) {
  auto a = L({"1", "2", "3"});
  auto b = L({"x", "y"});
  EXPECT_EQ(*ApplyPatch(a, ComputeDiff(a, b)), b);
}

TEST(DiffTest, MinimalityOnSimpleCases) {
  // Myers produces a shortest edit script: one insert here, not a rewrite.
  auto a = L({"f()", "{", "}"});
  auto b = L({"f()", "{", "  call();", "}"});
  Patch p = ComputeDiff(a, b);
  EXPECT_EQ(p.lines_added(), 1u);
  EXPECT_EQ(p.lines_removed(), 0u);
}

TEST(DiffTest, ContextMismatchRejected) {
  auto a = L({"a", "b", "c"});
  auto b = L({"a", "X", "c"});
  Patch p = ComputeDiff(a, b);
  auto other = L({"a", "DIFFERENT", "c"});
  EXPECT_TRUE(ApplyPatch(other, p).status().IsCorruption());
}

TEST(DiffTest, HunkOutOfRangeRejected) {
  Patch p;
  Hunk h;
  h.old_pos = 99;
  h.added.push_back("x");
  p.hunks.push_back(h);
  EXPECT_TRUE(ApplyPatch(L({"a"}), p).status().IsCorruption());
}

TEST(DiffTest, SerializationRoundTrip) {
  auto a = L({"a", "b", "c", "d"});
  auto b = L({"a", "X", "c", "Y", "d", "Z"});
  Patch p = ComputeDiff(a, b);
  auto back = Patch::Deserialize(p.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(DiffTest, ToStringRendersUnifiedStyle) {
  Patch p = ComputeDiffText("a\nb\n", "a\nc\n");
  std::string s = p.ToString();
  EXPECT_NE(s.find("-b"), std::string::npos);
  EXPECT_NE(s.find("+c"), std::string::npos);
}

TEST(DiffTest, RandomizedRoundTripProperty) {
  util::Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    // Random base file.
    std::vector<std::string> a;
    size_t n = rng.Uniform(40);
    for (size_t i = 0; i < n; ++i) {
      a.push_back("line" + std::to_string(rng.Uniform(12)));
    }
    // Random mutation of it.
    std::vector<std::string> b = a;
    size_t edits = 1 + rng.Uniform(8);
    for (size_t e = 0; e < edits; ++e) {
      int op = rng.Uniform(3);
      if (op == 0 || b.empty()) {
        b.insert(b.begin() + rng.Uniform(b.size() + 1),
                 "new" + std::to_string(rng.Uniform(100)));
      } else if (op == 1) {
        b.erase(b.begin() + rng.Uniform(b.size()));
      } else {
        b[rng.Uniform(b.size())] = "mod" + std::to_string(rng.Uniform(100));
      }
    }
    Patch p = ComputeDiff(a, b);
    auto result = ApplyPatch(a, p);
    ASSERT_TRUE(result.ok()) << "iter " << iter;
    ASSERT_EQ(*result, b) << "iter " << iter;
    // Wire round trip preserves behaviour.
    auto wire = Patch::Deserialize(p.Serialize());
    ASSERT_TRUE(wire.ok());
    ASSERT_EQ(*ApplyPatch(a, *wire), b);
  }
}

// ---------------------------------------------------------------------------
// Three-way merge
// ---------------------------------------------------------------------------

TEST(MergeTest, NonOverlappingEditsBothApply) {
  auto base = L({"a", "b", "c", "d", "e"});
  auto ours = L({"A", "b", "c", "d", "e"});    // Edit line 0.
  auto theirs = L({"a", "b", "c", "d", "E"});  // Edit line 4.
  MergeResult m = ThreeWayMerge(base, ours, theirs);
  EXPECT_FALSE(m.had_conflicts);
  EXPECT_EQ(m.lines, L({"A", "b", "c", "d", "E"}));
}

TEST(MergeTest, IdenticalEditsMergeCleanly) {
  auto base = L({"a", "b", "c"});
  auto both = L({"a", "X", "c"});
  MergeResult m = ThreeWayMerge(base, both, both);
  EXPECT_FALSE(m.had_conflicts);
  EXPECT_EQ(m.lines, both);
}

TEST(MergeTest, ConflictingEditsMarked) {
  auto base = L({"a", "b", "c"});
  auto ours = L({"a", "OURS", "c"});
  auto theirs = L({"a", "THEIRS", "c"});
  MergeResult m = ThreeWayMerge(base, ours, theirs);
  EXPECT_TRUE(m.had_conflicts);
  std::string joined = JoinLines(m.lines);
  EXPECT_NE(joined.find("<<<<<<<"), std::string::npos);
  EXPECT_NE(joined.find("OURS"), std::string::npos);
  EXPECT_NE(joined.find("THEIRS"), std::string::npos);
  EXPECT_NE(joined.find(">>>>>>>"), std::string::npos);
}

TEST(MergeTest, OneSideUnchangedTakesOther) {
  auto base = L({"a", "b", "c"});
  auto theirs = L({"a", "b2", "c", "d"});
  MergeResult m = ThreeWayMerge(base, base, theirs);
  EXPECT_FALSE(m.had_conflicts);
  EXPECT_EQ(m.lines, theirs);
}

TEST(MergeTest, InsertionsAtSamePointConflict) {
  auto base = L({"a", "b"});
  auto ours = L({"a", "ours-insert", "b"});
  auto theirs = L({"a", "theirs-insert", "b"});
  MergeResult m = ThreeWayMerge(base, ours, theirs);
  EXPECT_TRUE(m.had_conflicts);
}

TEST(MergeTest, DisjointInsertions) {
  auto base = L({"a", "b", "c", "d"});
  auto ours = L({"top", "a", "b", "c", "d"});
  auto theirs = L({"a", "b", "c", "d", "bottom"});
  MergeResult m = ThreeWayMerge(base, ours, theirs);
  EXPECT_FALSE(m.had_conflicts);
  EXPECT_EQ(m.lines, L({"top", "a", "b", "c", "d", "bottom"}));
}

TEST(MergeTest, BothDeleteSameLine) {
  auto base = L({"a", "b", "c"});
  auto both = L({"a", "c"});
  MergeResult m = ThreeWayMerge(base, both, both);
  EXPECT_FALSE(m.had_conflicts);
  EXPECT_EQ(m.lines, both);
}

TEST(MergeTest, EmptyBaseBothAdd) {
  auto base = L({});
  MergeResult m = ThreeWayMerge(base, L({"ours"}), L({"theirs"}));
  EXPECT_TRUE(m.had_conflicts);  // Competing creations conflict.
  MergeResult same = ThreeWayMerge(base, L({"x"}), L({"x"}));
  EXPECT_FALSE(same.had_conflicts);
  EXPECT_EQ(same.lines, L({"x"}));
}

TEST(MergeTest, DeleteVersusEditConflicts) {
  auto base = L({"a", "b", "c"});
  auto ours = L({"a", "c"});           // Deleted b.
  auto theirs = L({"a", "b-edit", "c"});  // Edited b.
  MergeResult m = ThreeWayMerge(base, ours, theirs);
  EXPECT_TRUE(m.had_conflicts);
}

TEST(MergeTest, RandomizedNoBaseChangesMergeCleanly) {
  // Property: merging X with the unchanged base yields X, both ways.
  util::Rng rng(31);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::string> base;
    size_t n = rng.Uniform(20);
    for (size_t i = 0; i < n; ++i) base.push_back("l" + std::to_string(rng.Uniform(9)));
    std::vector<std::string> edited = base;
    for (int e = 0; e < 3; ++e) {
      if (edited.empty() || rng.Bernoulli(0.5)) {
        edited.insert(edited.begin() + rng.Uniform(edited.size() + 1),
                      "new" + std::to_string(rng.Uniform(100)));
      } else {
        edited.erase(edited.begin() + rng.Uniform(edited.size()));
      }
    }
    MergeResult a = ThreeWayMerge(base, edited, base);
    ASSERT_FALSE(a.had_conflicts) << iter;
    ASSERT_EQ(a.lines, edited) << iter;
    MergeResult b = ThreeWayMerge(base, base, edited);
    ASSERT_FALSE(b.had_conflicts) << iter;
    ASSERT_EQ(b.lines, edited) << iter;
  }
}

// ---------------------------------------------------------------------------
// FileRecord / Repository
// ---------------------------------------------------------------------------

TEST(FileRecordTest, SerializationRoundTrip) {
  FileRecord rec{42, "int main() {}\n"};
  auto back = FileRecord::Deserialize(rec.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rec);
}

TEST(RepositoryTest, CommitCheckoutCycle) {
  Repository repo;
  auto rev = repo.Commit("main.c", "v1\n", 0);
  ASSERT_TRUE(rev.ok());
  EXPECT_EQ(*rev, 1u);
  auto rec = repo.Checkout("main.c");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->revision, 1u);
  EXPECT_EQ(rec->content, "v1\n");
}

TEST(RepositoryTest, CheckoutMissingIsNotFound) {
  Repository repo;
  EXPECT_TRUE(repo.Checkout("nope").status().IsNotFound());
}

TEST(RepositoryTest, StaleCommitRejected) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("f", "v1", 0).ok());
  ASSERT_TRUE(repo.Commit("f", "v2", 1).ok());
  // A second user still on revision 1 must not clobber revision 2.
  EXPECT_TRUE(repo.Commit("f", "mine", 1).status().IsFailedPrecondition());
  EXPECT_EQ(repo.Checkout("f")->content, "v2");
}

TEST(RepositoryTest, CreateOverExistingRejected) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("f", "v1", 0).ok());
  EXPECT_TRUE(repo.Commit("f", "other", 0).status().IsAlreadyExists());
}

TEST(RepositoryTest, RemoveAndList) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("b.c", "x", 0).ok());
  ASSERT_TRUE(repo.Commit("a.c", "y", 0).ok());
  EXPECT_EQ(repo.ListFiles(), (std::vector<std::string>{"a.c", "b.c"}));
  ASSERT_TRUE(repo.Remove("a.c").ok());
  EXPECT_EQ(repo.ListFiles(), (std::vector<std::string>{"b.c"}));
  EXPECT_TRUE(repo.Remove("a.c").IsNotFound());
}

TEST(RepositoryTest, RootDigestTracksContent) {
  Repository repo;
  auto d0 = repo.tree().root_digest();
  ASSERT_TRUE(repo.Commit("f", "v1", 0).ok());
  auto d1 = repo.tree().root_digest();
  EXPECT_NE(d0, d1);
  ASSERT_TRUE(repo.Commit("f", "v2", 1).ok());
  EXPECT_NE(repo.tree().root_digest(), d1);
}

TEST(RepositoryTest, DiffAgainstStored) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("f", "a\nb\nc\n", 0).ok());
  auto patch = repo.DiffAgainst("f", "a\nB\nc\n");
  ASSERT_TRUE(patch.ok());
  EXPECT_EQ(patch->lines_added(), 1u);
  EXPECT_EQ(patch->lines_removed(), 1u);
}

TEST(RepositoryHistoryTest, RevisionsRetrievable) {
  Repository repo(mtree::TreeParams{}, /*track_history=*/true);
  ASSERT_TRUE(repo.Commit("f", "v1\n", 0).ok());
  ASSERT_TRUE(repo.Commit("f", "v1\nv2\n", 1).ok());
  ASSERT_TRUE(repo.Commit("f", "v1\nv2\nv3\n", 2).ok());

  EXPECT_EQ(repo.ListRevisions("f"), (std::vector<uint64_t>{1, 2, 3}));
  auto r2 = repo.CheckoutRevision("f", 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->content, "v1\nv2\n");
  EXPECT_TRUE(repo.CheckoutRevision("f", 9).status().IsNotFound());
}

TEST(RepositoryHistoryTest, DiffOfRevision) {
  Repository repo(mtree::TreeParams{}, true);
  ASSERT_TRUE(repo.Commit("f", "a\nb\n", 0).ok());
  ASSERT_TRUE(repo.Commit("f", "a\nB\nc\n", 1).ok());
  auto patch = repo.DiffOfRevision("f", 2);
  ASSERT_TRUE(patch.ok());
  EXPECT_EQ(patch->lines_removed(), 1u);
  EXPECT_EQ(patch->lines_added(), 2u);
  // Revision 1's diff is against the empty file.
  EXPECT_EQ(repo.DiffOfRevision("f", 1)->lines_added(), 2u);
  EXPECT_TRUE(repo.DiffOfRevision("f", 0).status().IsInvalidArgument());
}

TEST(RepositoryHistoryTest, HistoryKeysHiddenFromListing) {
  Repository repo(mtree::TreeParams{}, true);
  ASSERT_TRUE(repo.Commit("a.c", "x", 0).ok());
  ASSERT_TRUE(repo.Commit("a.c", "y", 1).ok());
  EXPECT_EQ(repo.ListFiles(), (std::vector<std::string>{"a.c"}));
  EXPECT_EQ(repo.file_count(), 1u);
}

TEST(RepositoryHistoryTest, HistorySurvivesRemoval) {
  // Like CVS's Attic: removing a file keeps its revisions retrievable.
  Repository repo(mtree::TreeParams{}, true);
  ASSERT_TRUE(repo.Commit("f", "v1", 0).ok());
  ASSERT_TRUE(repo.Remove("f").ok());
  EXPECT_EQ(repo.CheckoutRevision("f", 1)->content, "v1");
}

TEST(RepositoryHistoryTest, DisabledByDefault) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("f", "v1", 0).ok());
  EXPECT_TRUE(repo.CheckoutRevision("f", 1).status().IsFailedPrecondition());
  EXPECT_TRUE(repo.ListRevisions("f").empty());
}

TEST(WorkingCopyTest, EditAndLocalDiff) {
  WorkingCopy wc;
  wc.OnCheckout("f", FileRecord{1, "a\nb\n"});
  ASSERT_TRUE(wc.Edit("f", "a\nb\nc\n").ok());
  EXPECT_EQ(*wc.Content("f"), "a\nb\nc\n");
  EXPECT_EQ(*wc.BaseRevision("f"), 1u);
  auto diff = wc.LocalDiff("f");
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->lines_added(), 1u);
}

TEST(WorkingCopyTest, UpdateMergesUpstream) {
  WorkingCopy wc;
  wc.OnCheckout("f", FileRecord{1, "a\nb\nc\n"});
  ASSERT_TRUE(wc.Edit("f", "a\nb-local\nc\n").ok());
  // Upstream revision 2 touched a different line.
  auto merged = wc.Update("f", FileRecord{2, "a\nb\nc-upstream\n"});
  ASSERT_TRUE(merged.ok());
  EXPECT_FALSE(merged->had_conflicts);
  EXPECT_EQ(*wc.Content("f"), "a\nb-local\nc-upstream\n");
  EXPECT_EQ(*wc.BaseRevision("f"), 2u);
}

TEST(WorkingCopyTest, UpdateConflictMarked) {
  WorkingCopy wc;
  wc.OnCheckout("f", FileRecord{1, "a\nb\nc\n"});
  ASSERT_TRUE(wc.Edit("f", "a\nlocal\nc\n").ok());
  auto merged = wc.Update("f", FileRecord{2, "a\nupstream\nc\n"});
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->had_conflicts);
}

TEST(WorkingCopyTest, UnknownPathIsNotFound) {
  WorkingCopy wc;
  EXPECT_TRUE(wc.Edit("nope", "x").IsNotFound());
  EXPECT_TRUE(wc.Content("nope").status().IsNotFound());
  EXPECT_TRUE(wc.Update("nope", FileRecord{}).status().IsNotFound());
}

}  // namespace
}  // namespace cvs
}  // namespace tcvs
