// Tests for the three future-work extensions the paper names in §6:
//  (1) localizing exactly when the fault occurred (core/forensics),
//  (2) sync-up with constant per-client work (SyncMode::kAggregationTree),
//  (plus) rollback bounding via sync checkpoints.

#include <gtest/gtest.h>

#include "core/forensics.h"
#include "core/scenario.h"
#include "workload/workload.h"

namespace tcvs {
namespace core {
namespace {

// ---------------------------------------------------------------------------
// Fault localization (forensics)
// ---------------------------------------------------------------------------

Bytes Fp(int tag) {
  Bytes b(32, 0);
  b[0] = static_cast<uint8_t>(tag);
  return b;
}

TransitionRecord T(uint64_t ctr, int pre, int post, uint32_t claimed,
                   uint32_t user) {
  return TransitionRecord{Fp(pre), Fp(post), ctr, claimed, user};
}

TEST(ForensicsTest, ConsistentChainHasNoFault) {
  std::vector<TransitionRecord> j = {
      T(0, 0, 1, 0, 1), T(1, 1, 2, 1, 2), T(2, 2, 3, 2, 1)};
  EXPECT_FALSE(LocalizeFault(j).has_value());
}

TEST(ForensicsTest, EmptyJournalHasNoFault) {
  EXPECT_FALSE(LocalizeFault({}).has_value());
}

TEST(ForensicsTest, DuplicateCounterLocalized) {
  std::vector<TransitionRecord> j = {
      T(0, 0, 1, 0, 1), T(1, 1, 2, 1, 2), T(1, 1, 7, 1, 3), T(2, 2, 3, 2, 1)};
  auto fault = LocalizeFault(j);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->first_bad_ctr, 1u);
  EXPECT_NE(fault->explanation.find("fork or replay"), std::string::npos);
}

TEST(ForensicsTest, IdenticalDuplicateRecordsAreBenign) {
  // Two users journaling the SAME transition (cannot happen in our agents,
  // but the analysis must not flag exact duplicates as forks).
  std::vector<TransitionRecord> j = {T(0, 0, 1, 0, 1), T(0, 0, 1, 0, 1)};
  EXPECT_FALSE(LocalizeFault(j).has_value());
}

TEST(ForensicsTest, ChainBreakLocalized) {
  std::vector<TransitionRecord> j = {
      T(0, 0, 1, 0, 1), T(1, 9, 2, 1, 2)};  // Pre of ctr1 ≠ post of ctr0.
  auto fault = LocalizeFault(j);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->first_bad_ctr, 1u);
  EXPECT_NE(fault->explanation.find("tampered or dropped"), std::string::npos);
}

TEST(ForensicsTest, CreatorMismatchLocalized) {
  std::vector<TransitionRecord> j = {
      T(0, 0, 1, 0, 1), T(1, 1, 2, /*claimed=*/9, 2)};  // ctr0 done by user 1.
  auto fault = LocalizeFault(j);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->first_bad_ctr, 1u);
}

TEST(ForensicsTest, EarliestFaultWins) {
  std::vector<TransitionRecord> j = {
      T(0, 0, 1, 0, 1), T(1, 9, 2, 1, 2),  // Fault at 1.
      T(2, 2, 3, 2, 3), T(2, 2, 8, 2, 4),  // Fault at 2.
  };
  auto fault = LocalizeFault(j);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->first_bad_ctr, 1u);
}

TEST(ForensicsTest, GapsInJournalAreTolerated) {
  // Bounded ring buffers drop old entries; non-adjacent counters cannot be
  // chain-checked and must not produce false faults.
  std::vector<TransitionRecord> j = {T(0, 0, 1, 0, 1), T(5, 7, 8, 3, 2)};
  EXPECT_FALSE(LocalizeFault(j).has_value());
}

// ---------------------------------------------------------------------------
// Journal-carrying sync: detection reasons name the faulty counter
// ---------------------------------------------------------------------------

TEST(JournalSyncTest, TamperLocalizedAtSync) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolII;
  config.num_users = 3;
  config.sync_k = 8;
  config.journal_len = 64;  // ≥ per-user ops: exact localization.
  config.attack.kind = AttackKind::kTamper;
  config.attack.trigger_round = 40;
  config.forced_syncs = {400};

  workload::CvsWorkloadOptions opts;
  opts.num_users = 3;
  opts.ops_per_user = 15;
  opts.offline_probability = 0.0;
  opts.seed = 21;
  Scenario scenario(config, workload::MakeCvsWorkload(opts));
  ScenarioReport r = scenario.Run(2000);
  ASSERT_TRUE(r.detected);
  EXPECT_NE(r.detection_reason.find("first fault at counter"), std::string::npos)
      << r.detection_reason;
  EXPECT_NE(r.detection_reason.find("tampered or dropped"), std::string::npos)
      << r.detection_reason;
}

TEST(JournalSyncTest, ForkLocalizedAsForkOrReplay) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolII;
  config.num_users = 4;
  config.sync_k = 6;
  config.journal_len = 64;
  config.attack.kind = AttackKind::kFork;
  config.attack.trigger_round = 60;
  config.attack.partition_a = {3, 4};

  workload::PartitionableOptions opts;
  opts.partition_round = 80;
  opts.b_ops_after_dependency = 15;
  Scenario scenario(config, workload::MakePartitionableWorkload(opts));
  ScenarioReport r = scenario.Run(3000);
  ASSERT_TRUE(r.detected);
  EXPECT_NE(r.detection_reason.find("fork or replay"), std::string::npos)
      << r.detection_reason;
}

TEST(JournalSyncTest, HonestRunsStayCleanWithJournals) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolII;
  config.num_users = 4;
  config.sync_k = 5;
  config.journal_len = 16;
  Scenario scenario(config, workload::MakeCvsWorkload({.num_users = 4,
                                                       .ops_per_user = 15,
                                                       .offline_probability = 0,
                                                       .seed = 5}));
  ScenarioReport r = scenario.Run(2000);
  EXPECT_FALSE(r.detected) << r.detection_reason;
  EXPECT_TRUE(r.all_scripts_done);
}

// ---------------------------------------------------------------------------
// Aggregation-tree sync
// ---------------------------------------------------------------------------

ScenarioConfig TreeConfig(ProtocolKind protocol, uint32_t n, uint32_t k) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.num_users = n;
  config.sync_k = k;
  config.sync_mode = SyncMode::kAggregationTree;
  config.user_key_height = 7;
  return config;
}

workload::Workload TreeWorkload(uint32_t n, uint32_t ops, uint64_t seed) {
  workload::CvsWorkloadOptions opts;
  opts.num_users = n;
  opts.ops_per_user = ops;
  opts.offline_probability = 0.0;
  opts.mean_think_rounds = 3;
  opts.seed = seed;
  return workload::MakeCvsWorkload(opts);
}

class TreeSyncProtocolTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(TreeSyncProtocolTest, HonestNoFalsePositive) {
  Scenario scenario(TreeConfig(GetParam(), 5, 6), TreeWorkload(5, 12, 31));
  ScenarioReport r = scenario.Run(3000);
  EXPECT_FALSE(r.detected) << r.detection_reason;
  EXPECT_TRUE(r.all_scripts_done);
}

TEST_P(TreeSyncProtocolTest, ForkDetected) {
  ScenarioConfig config = TreeConfig(GetParam(), 4, 6);
  config.attack.kind = AttackKind::kFork;
  config.attack.trigger_round = 60;
  config.attack.partition_a = {3, 4};
  workload::PartitionableOptions opts;
  opts.partition_round = 80;
  opts.b_ops_after_dependency = 20;
  Scenario scenario(config, workload::MakePartitionableWorkload(opts));
  ScenarioReport r = scenario.Run(5000);
  ASSERT_TRUE(r.detected);
  EXPECT_NE(r.detection_reason.find("aggregation"), std::string::npos)
      << r.detection_reason;
}

INSTANTIATE_TEST_SUITE_P(Protocols, TreeSyncProtocolTest,
                         ::testing::Values(ProtocolKind::kProtocolI,
                                           ProtocolKind::kProtocolII),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           return std::string(ProtocolKindToString(info.param));
                         });

TEST(TreeSyncTest, TrafficScalesLinearlyNotQuadratically) {
  auto external_msgs = [&](SyncMode mode, uint32_t n) {
    ScenarioConfig config = TreeConfig(ProtocolKind::kProtocolII, n, 6);
    config.sync_mode = mode;
    Scenario scenario(config, TreeWorkload(n, 12, 77));
    ScenarioReport r = scenario.Run(4000);
    EXPECT_FALSE(r.detected) << r.detection_reason;
    return r.traffic.external_messages;
  };
  uint64_t tree16 = external_msgs(SyncMode::kAggregationTree, 16);
  uint64_t bcast16 = external_msgs(SyncMode::kBroadcast, 16);
  // Broadcast costs ~n²−1 per sync; the tree ~4n. At n=16 the gap is ~4x+.
  EXPECT_LT(tree16 * 3, bcast16) << "tree=" << tree16 << " bcast=" << bcast16;
}

TEST(TreeSyncTest, SingleUserDegenerateTree) {
  Scenario scenario(TreeConfig(ProtocolKind::kProtocolII, 1, 3),
                    TreeWorkload(1, 10, 3));
  ScenarioReport r = scenario.Run(1500);
  EXPECT_FALSE(r.detected) << r.detection_reason;
  EXPECT_TRUE(r.all_scripts_done);
}

// ---------------------------------------------------------------------------
// Message-delay robustness: the paper only assumes bounded delivery, so the
// protocols must keep working (and keep detecting) at delays > 1 round.
// ---------------------------------------------------------------------------

class MessageDelayTest : public ::testing::TestWithParam<sim::Round> {};

TEST_P(MessageDelayTest, HonestRunsCompleteUnderDelay) {
  for (ProtocolKind p : {ProtocolKind::kProtocolI, ProtocolKind::kProtocolII,
                         ProtocolKind::kProtocolIII}) {
    ScenarioConfig config;
    config.protocol = p;
    config.num_users = 3;
    config.sync_k = 6;
    config.epoch_rounds = 60;
    config.user_key_height = 7;
    Scenario scenario(config, TreeWorkload(3, 10, 41));
    scenario.kernel()->set_message_delay(GetParam());
    ScenarioReport r = scenario.Run(4000);
    EXPECT_FALSE(r.detected)
        << ProtocolKindToString(p) << " delay=" << GetParam() << ": "
        << r.detection_reason;
    EXPECT_TRUE(r.all_scripts_done) << ProtocolKindToString(p);
  }
}

TEST_P(MessageDelayTest, ForkStillDetectedUnderDelay) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolII;
  config.num_users = 4;
  config.sync_k = 6;
  config.attack.kind = AttackKind::kFork;
  config.attack.trigger_round = 60;
  config.attack.partition_a = {3, 4};
  workload::PartitionableOptions opts;
  opts.partition_round = 80;
  opts.b_ops_after_dependency = 20;
  Scenario scenario(config, workload::MakePartitionableWorkload(opts));
  scenario.kernel()->set_message_delay(GetParam());
  ScenarioReport r = scenario.Run(8000);
  EXPECT_TRUE(r.detected);
}

INSTANTIATE_TEST_SUITE_P(Delays, MessageDelayTest, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// p-partial synchrony: slow users must not break safety or liveness.
// ---------------------------------------------------------------------------

TEST(PartialSynchronyTest, SlowUsersCompleteHonestRuns) {
  for (ProtocolKind p : {ProtocolKind::kProtocolII, ProtocolKind::kProtocolI}) {
    ScenarioConfig config;
    config.protocol = p;
    config.num_users = 4;
    config.sync_k = 6;
    config.user_key_height = 7;
    config.partial_sync_p = 4;
    config.user_periods = {{2, 3}, {4, 4}};  // Users 2 and 4 tick slowly.
    Scenario scenario(config, TreeWorkload(4, 10, 61));
    ScenarioReport r = scenario.Run(8000);
    EXPECT_FALSE(r.detected) << ProtocolKindToString(p) << ": "
                             << r.detection_reason;
    EXPECT_TRUE(r.all_scripts_done) << ProtocolKindToString(p);
  }
}

TEST(PartialSynchronyTest, SlowUsersStillDetectForks) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolII;
  config.num_users = 4;
  config.sync_k = 6;
  config.partial_sync_p = 3;
  config.user_periods = {{1, 2}, {3, 3}};
  config.attack.kind = AttackKind::kFork;
  config.attack.trigger_round = 60;
  config.attack.partition_a = {3, 4};
  workload::PartitionableOptions opts;
  opts.partition_round = 80;
  opts.b_ops_after_dependency = 20;
  Scenario scenario(config, workload::MakePartitionableWorkload(opts));
  ScenarioReport r = scenario.Run(10000);
  EXPECT_TRUE(r.detected);
}

// ---------------------------------------------------------------------------
// b*-bounded transaction time: liveness against a stalling server.
// ---------------------------------------------------------------------------

TEST(BoundedTransactionTest, StallingServerDetected) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolII;
  config.num_users = 3;
  config.sync_k = 100;
  config.b_star = 20;
  config.attack.kind = AttackKind::kStall;
  config.attack.trigger_round = 50;
  Scenario scenario(config, TreeWorkload(3, 20, 71));
  ScenarioReport r = scenario.Run(3000);
  ASSERT_TRUE(r.detected);
  EXPECT_NE(r.detection_reason.find("b*"), std::string::npos)
      << r.detection_reason;
  // Detection within b* + one think-time of the stall.
  EXPECT_LE(r.detection_round, 50 + 20 + 30);
}

TEST(BoundedTransactionTest, HonestServerNeverTripsLiveness) {
  for (ProtocolKind p : {ProtocolKind::kProtocolII, ProtocolKind::kProtocolI}) {
    ScenarioConfig config;
    config.protocol = p;
    config.num_users = 4;
    config.sync_k = 5;
    config.user_key_height = 7;
    // Generous bound: Protocol I queues concurrent queries behind the
    // signature round-trip, so outstanding time grows with the user count.
    config.b_star = 100;
    Scenario scenario(config, TreeWorkload(4, 12, 81));
    ScenarioReport r = scenario.Run(4000);
    EXPECT_FALSE(r.detected) << ProtocolKindToString(p) << ": "
                             << r.detection_reason;
  }
}

// ---------------------------------------------------------------------------
// Rollback bounding
// ---------------------------------------------------------------------------

TEST(RollbackTest, BoundedByOpsSinceLastSync) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolII;
  config.num_users = 4;
  config.sync_k = 5;
  config.attack.kind = AttackKind::kFork;
  config.attack.trigger_round = 60;
  config.attack.partition_a = {3, 4};
  workload::PartitionableOptions opts;
  opts.partition_round = 80;
  opts.b_ops_after_dependency = 30;
  Scenario scenario(config, workload::MakePartitionableWorkload(opts));
  ScenarioReport r = scenario.Run(5000);
  ASSERT_TRUE(r.detected);
  // At most n·k ops can sit between two syncs, plus in-flight slack; the
  // rollback window must respect that bound.
  EXPECT_LE(r.rollback_ops, 4ull * 5 + 8);
  EXPECT_GT(r.rollback_ops, 0u);
}

TEST(RollbackTest, CheckpointAdvancesAcrossSyncs) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kProtocolII;
  config.num_users = 3;
  config.sync_k = 4;
  Scenario scenario(config, TreeWorkload(3, 16, 13));
  ScenarioReport r = scenario.Run(2000);
  EXPECT_FALSE(r.detected);
  // 48 ops with a sync every ~4 ops: the final checkpoint sits near the end,
  // so the unverified suffix is small.
  EXPECT_LE(r.rollback_ops, 3ull * 4 + 8);
}

}  // namespace
}  // namespace core
}  // namespace tcvs
