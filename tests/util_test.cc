#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/result.h"
#include "util/serde.h"
#include "util/status.h"

namespace tcvs {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllNamedConstructorsMatchPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::VerificationFailure("x").IsVerificationFailure());
  EXPECT_TRUE(Status::DeviationDetected("x").IsDeviationDetected());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Corruption("bad");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    TCVS_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsCorruption());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 3);
}

// ---------------------------------------------------------------------------
// Bytes / hex
// ---------------------------------------------------------------------------

TEST(BytesTest, RoundTripString) {
  Bytes b = util::ToBytes("hello");
  EXPECT_EQ(util::ToString(b), "hello");
}

TEST(BytesTest, HexEncode) {
  EXPECT_EQ(util::HexEncode(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(util::HexEncode(Bytes{}), "");
  EXPECT_EQ(util::HexEncode(Bytes{0x00, 0x0f}), "000f");
}

TEST(BytesTest, HexDecode) {
  auto r = util::HexDecode("deadbeef");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(*util::HexDecode("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_TRUE(util::HexDecode("abc").status().IsInvalidArgument());
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  EXPECT_TRUE(util::HexDecode("zz").status().IsInvalidArgument());
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(util::ConstantTimeEqual(util::ToBytes("abc"), util::ToBytes("abc")));
  EXPECT_FALSE(util::ConstantTimeEqual(util::ToBytes("abc"), util::ToBytes("abd")));
  EXPECT_FALSE(util::ConstantTimeEqual(util::ToBytes("abc"), util::ToBytes("ab")));
  EXPECT_TRUE(util::ConstantTimeEqual(Bytes{}, Bytes{}));
}

// ---------------------------------------------------------------------------
// Serde
// ---------------------------------------------------------------------------

TEST(SerdeTest, RoundTripAllFieldKinds) {
  util::Writer w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutBytes(util::ToBytes("payload"));
  w.PutString("str");
  w.PutRaw(Bytes{1, 2, 3});

  util::Reader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(util::ToString(*r.GetBytes()), "payload");
  EXPECT_EQ(*r.GetString(), "str");
  EXPECT_EQ(*r.GetRaw(3), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ReadPastEndIsOutOfRange) {
  util::Writer w;
  w.PutU32(7);
  util::Reader r(w.buffer());
  EXPECT_TRUE(r.GetU64().status().IsOutOfRange());
}

TEST(SerdeTest, TruncatedLengthPrefixedBytes) {
  util::Writer w;
  w.PutU32(100);  // Claims 100 bytes follow; none do.
  util::Reader r(w.buffer());
  EXPECT_TRUE(r.GetBytes().status().IsOutOfRange());
}

TEST(SerdeTest, EmptyBytesRoundTrip) {
  util::Writer w;
  w.PutBytes(Bytes{});
  util::Reader r(w.buffer());
  EXPECT_EQ(r.GetBytes()->size(), 0u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, LittleEndianLayout) {
  util::Writer w;
  w.PutU32(0x01020304);
  EXPECT_EQ(w.buffer(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  util::Rng rng(7);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) counts[rng.Uniform(4)]++;
  for (int c : counts) EXPECT_GT(c, 700);  // Expect ~1000 each.
}

TEST(RngTest, DoubleInUnitInterval) {
  util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RandomBytesLengthAndDeterminism) {
  util::Rng a(3), b(3);
  Bytes x = a.RandomBytes(37);
  Bytes y = b.RandomBytes(37);
  EXPECT_EQ(x.size(), 37u);
  EXPECT_EQ(x, y);
}

TEST(RngTest, ShufflePreservesElements) {
  util::Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, SamplesInRange) {
  util::Rng rng(13);
  util::ZipfGenerator zipf(100, 0.99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Next(&rng), 100u);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  util::Rng rng(13);
  util::ZipfGenerator zipf(1000, 0.99);
  int low = 0;
  const int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(&rng) < 10) ++low;
  }
  // With theta=0.99 the top-10 of 1000 should absorb far more than the
  // uniform 1% of samples.
  EXPECT_GT(low, kSamples / 10);
}

TEST(HistogramTest, EmptyHistogram) {
  util::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p99(), 0u);
}

TEST(HistogramTest, ExactSmallValues) {
  util::Histogram h;
  for (uint64_t v : {0u, 1u, 2u, 3u, 3u}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 9.0 / 5);
}

TEST(HistogramTest, QuantilesApproximateWithinBucketError) {
  util::Histogram h;
  util::Rng rng(5);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Uniform(100000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    uint64_t exact = values[size_t(q * (values.size() - 1))];
    uint64_t approx = h.Quantile(q);
    // Exponential buckets with 4 sub-buckets bound the error to the bucket
    // width (≤ 25% relative); linear interpolation within the bucket makes
    // it two-sided — no systematic upward bias.
    EXPECT_GE(double(approx), double(exact) * 0.75 - 4) << "q=" << q;
    EXPECT_LE(double(approx), double(exact) * 1.25 + 4) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  // 0..1023 populates every sub-bucket below 1024 completely, so the
  // interpolated quantiles are exact at bucket boundaries: rank q*1024
  // lands on cumulative-count edges at exact powers-of-two fractions.
  util::Histogram h;
  for (uint64_t v = 0; v < 1024; ++v) h.Record(v);
  EXPECT_EQ(h.Quantile(0.25), 255u);
  EXPECT_EQ(h.Quantile(0.50), 511u);
  EXPECT_EQ(h.Quantile(1.0), 1023u);
  // Off-boundary ranks interpolate inside the uniformly-filled bucket.
  EXPECT_NEAR(double(h.Quantile(0.55)), 0.55 * 1024, 8.0);
  EXPECT_NEAR(double(h.Quantile(0.90)), 0.90 * 1024, 8.0);
}

TEST(HistogramTest, QuantileNoUpperBoundBias) {
  // Regression: Quantile used to return the containing bucket's upper bound
  // (79 for the [64, 79] bucket), biasing every quantile upward by up to
  // the bucket width. A point mass must report itself, not its bucket edge.
  util::Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(65);
  EXPECT_EQ(h.Quantile(0.5), 65u);
  EXPECT_EQ(h.Quantile(0.99), 65u);
  EXPECT_EQ(h.Quantile(0.01), 65u);
}

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  util::Histogram a, b, combined;
  util::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng.Uniform(1 << 20);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Quantile(q), combined.Quantile(q)) << q;
  }
}

TEST(HistogramTest, DeltaSinceYieldsIntervalView) {
  util::Histogram earlier, later;
  for (int i = 0; i < 100; ++i) earlier.Record(10);
  later = earlier;
  for (int i = 0; i < 50; ++i) later.Record(1000);
  util::Histogram delta = later.DeltaSince(earlier);
  EXPECT_EQ(delta.count(), 50u);
  // Only the interval's mass: the 10s from before the snapshot are gone.
  EXPECT_GT(delta.p50(), 500u);
}

TEST(HistogramTest, DeltaSinceCounterResetYieldsEmptyDelta) {
  // A restarted process re-registers the metric at zero, so a poller's
  // "later" snapshot can have FEWER samples than its "earlier" one. The
  // delta must come back empty — not bucket-underflow garbage quantiles.
  util::Histogram earlier;
  for (int i = 0; i < 100; ++i) earlier.Record(500);
  util::Histogram restarted;  // Fresh after restart.
  restarted.Record(7);        // A few post-restart samples, count < earlier.
  util::Histogram delta = restarted.DeltaSince(earlier);
  EXPECT_EQ(delta.count(), 0u);
  EXPECT_EQ(delta.sum(), 0u);
  EXPECT_EQ(delta.p50(), 0u);
  EXPECT_EQ(delta.p99(), 0u);
}

TEST(HistogramTest, HugeValuesClampToLastBucket) {
  util::Histogram h;
  h.Record(~0ull);
  h.Record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull);
  EXPECT_EQ(h.Quantile(1.0), ~0ull);
}

TEST(HistogramTest, SummaryIsReadable) {
  util::Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  std::string s = h.Summary();
  EXPECT_NE(s.find("count=100"), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  util::Rng rng(17);
  util::ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[zipf.Next(&rng)]++;
  for (int c : counts) EXPECT_GT(c, 500);
}

}  // namespace
}  // namespace tcvs
