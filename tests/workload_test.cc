#include <gtest/gtest.h>

#include <set>

#include "workload/workload.h"

namespace tcvs {
namespace workload {
namespace {

TEST(CvsWorkloadTest, DeterministicForSeed) {
  CvsWorkloadOptions opts;
  opts.seed = 42;
  Workload a = MakeCvsWorkload(opts);
  Workload b = MakeCvsWorkload(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t u = 0; u < a.size(); ++u) {
    ASSERT_EQ(a[u].ops.size(), b[u].ops.size());
    for (size_t i = 0; i < a[u].ops.size(); ++i) {
      EXPECT_EQ(a[u].ops[i].earliest_round, b[u].ops[i].earliest_round);
      EXPECT_EQ(a[u].ops[i].key, b[u].ops[i].key);
      EXPECT_EQ(a[u].ops[i].value, b[u].ops[i].value);
    }
  }
  opts.seed = 43;
  Workload c = MakeCvsWorkload(opts);
  // Different seed, different schedule (with overwhelming probability).
  bool differs = false;
  for (size_t u = 0; u < a.size() && !differs; ++u) {
    for (size_t i = 0; i < a[u].ops.size() && i < c[u].ops.size(); ++i) {
      if (a[u].ops[i].earliest_round != c[u].ops[i].earliest_round ||
          a[u].ops[i].key != c[u].ops[i].key) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(CvsWorkloadTest, RespectsShape) {
  CvsWorkloadOptions opts;
  opts.num_users = 5;
  opts.ops_per_user = 13;
  opts.num_files = 4;
  Workload w = MakeCvsWorkload(opts);
  ASSERT_EQ(w.size(), 5u);
  std::set<sim::AgentId> users;
  for (const auto& script : w) {
    users.insert(script.user);
    EXPECT_EQ(script.ops.size(), 13u);
    sim::Round prev = 0;
    for (const auto& op : script.ops) {
      EXPECT_GE(op.earliest_round, prev);  // Non-decreasing per user.
      prev = op.earliest_round;
      if (op.kind == sim::OpKind::kCommit) {
        EXPECT_FALSE(op.value.empty());
      }
    }
  }
  EXPECT_EQ(users.size(), 5u);  // Distinct nonzero ids.
  EXPECT_EQ(users.count(0), 0u);
}

TEST(EpochWorkloadTest, EveryUserHasOpsInEveryEpoch) {
  EpochWorkloadOptions opts;
  opts.num_users = 4;
  opts.num_epochs = 7;
  opts.epoch_rounds = 40;
  opts.ops_per_epoch = 2;
  Workload w = MakeEpochWorkload(opts);
  ASSERT_EQ(w.size(), 4u);
  for (const auto& script : w) {
    std::map<uint64_t, int> per_epoch;
    for (const auto& op : script.ops) {
      per_epoch[op.earliest_round / opts.epoch_rounds] += 1;
    }
    for (uint64_t e = 0; e < opts.num_epochs; ++e) {
      EXPECT_GE(per_epoch[e], 2) << "user " << script.user << " epoch " << e
                                 << ": violates the §4.4 restriction";
    }
  }
}

TEST(PartitionableWorkloadTest, HasCausalPairAndTail) {
  PartitionableOptions opts;
  opts.users_in_a = 2;
  opts.users_in_b = 2;
  opts.partition_round = 100;
  opts.b_ops_after_dependency = 9;
  Workload w = MakePartitionableWorkload(opts);
  ASSERT_EQ(w.size(), 4u);

  // t1: a commit to the common header by user 1 at the partition round.
  const Bytes common = util::ToBytes("include/Common.h");
  bool found_t1 = false;
  for (const auto& op : w[0].ops) {
    if (op.key == common && op.kind == sim::OpKind::kCommit &&
        op.earliest_round == 100) {
      found_t1 = true;
    }
  }
  EXPECT_TRUE(found_t1);
  // t2: a checkout of the same key by the first B user, after t1.
  const auto& b_user = w[2];
  bool found_t2 = false;
  for (const auto& op : b_user.ops) {
    if (op.key == common && op.kind == sim::OpKind::kCheckout &&
        op.earliest_round > 100) {
      found_t2 = true;
    }
  }
  EXPECT_TRUE(found_t2);
  // The B tail: at least k+1 ops after the dependency (here 9).
  size_t tail = 0;
  for (const auto& op : b_user.ops) {
    if (op.earliest_round > 100 && op.kind == sim::OpKind::kCommit) ++tail;
  }
  EXPECT_GE(tail, 9u);
}

TEST(BurstWorkloadTest, OnlyBurstUserActs) {
  Workload w = MakeBurstWorkload(4, 2, 7, 3, 1);
  ASSERT_EQ(w.size(), 4u);
  for (const auto& script : w) {
    if (script.user == 3) {  // burst_user_index 2 → user id 3.
      EXPECT_EQ(script.ops.size(), 7u);
      for (const auto& op : script.ops) EXPECT_EQ(op.earliest_round, 1u);
    } else {
      EXPECT_TRUE(script.ops.empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Trace round trip
// ---------------------------------------------------------------------------

TEST(TraceIoTest, RoundTripPreservesWorkload) {
  CvsWorkloadOptions opts;
  opts.num_users = 3;
  opts.ops_per_user = 9;
  opts.seed = 77;
  Workload original = MakeCvsWorkload(opts);
  std::string trace = WorkloadToTrace(original);
  auto parsed = WorkloadFromTrace(trace);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t u = 0; u < original.size(); ++u) {
    const UserScript& a = original[u];
    // Parsed scripts come back keyed by user id.
    const UserScript* b = nullptr;
    for (const auto& s : *parsed) {
      if (s.user == a.user) b = &s;
    }
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->ops.size(), a.ops.size());
    for (size_t i = 0; i < a.ops.size(); ++i) {
      EXPECT_EQ(b->ops[i].earliest_round, a.ops[i].earliest_round);
      EXPECT_EQ(b->ops[i].kind, a.ops[i].kind);
      EXPECT_EQ(b->ops[i].key, a.ops[i].key);
      EXPECT_EQ(b->ops[i].value, a.ops[i].value);
    }
  }
}

TEST(TraceIoTest, CommentsAndBlankLinesIgnored) {
  auto w = WorkloadFromTrace(
      "# comment\n"
      "\n"
      "1,5,1,61,76310a\n"
      "2,9,0,62,\n");
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  ASSERT_EQ(w->size(), 2u);
  EXPECT_EQ((*w)[0].ops[0].key, util::ToBytes("a"));
  EXPECT_EQ((*w)[1].ops[0].kind, sim::OpKind::kCheckout);
}

TEST(TraceIoTest, MalformedLinesRejected) {
  EXPECT_FALSE(WorkloadFromTrace("1,2,3\n").ok());            // Too few fields.
  EXPECT_FALSE(WorkloadFromTrace("0,2,1,61,\n").ok());        // User 0 reserved.
  EXPECT_FALSE(WorkloadFromTrace("1,x,1,61,\n").ok());        // Bad round.
  EXPECT_FALSE(WorkloadFromTrace("1,2,9,61,\n").ok());        // Bad kind.
  EXPECT_FALSE(WorkloadFromTrace("1,2,1,zz,\n").ok());        // Bad hex.
}

}  // namespace
}  // namespace workload
}  // namespace tcvs
