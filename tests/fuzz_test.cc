// Robustness fuzzing: every parser and verifier in the trust boundary must
// treat arbitrary and mutated bytes as recoverable errors — never crash,
// never mis-verify.
//
// The key soundness property exercised here: whenever a mutated verification
// object still PASSES verification, the result it authenticates must equal
// the ground truth. Mutations may harmlessly touch bytes the proof does not
// depend on; they must never change what the proof *proves*.

#include <gtest/gtest.h>

#include "core/wire.h"
#include "cvs/diff.h"
#include "cvs/repository.h"
#include "mtree/btree.h"
#include "util/random.h"

namespace tcvs {
namespace {

Bytes NumKey(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%08llu", static_cast<unsigned long long>(i));
  return util::ToBytes(buf);
}

Bytes Mutate(const Bytes& data, util::Rng* rng) {
  Bytes out = data;
  switch (rng->Uniform(4)) {
    case 0: {  // Flip a random bit.
      if (!out.empty()) out[rng->Uniform(out.size())] ^= 1 << rng->Uniform(8);
      break;
    }
    case 1: {  // Truncate.
      out.resize(rng->Uniform(out.size() + 1));
      break;
    }
    case 2: {  // Append junk.
      Bytes junk = rng->RandomBytes(1 + rng->Uniform(16));
      out.insert(out.end(), junk.begin(), junk.end());
      break;
    }
    case 3: {  // Overwrite a random span.
      if (!out.empty()) {
        size_t start = rng->Uniform(out.size());
        size_t len = std::min(out.size() - start, 1 + rng->Uniform(8));
        Bytes junk = rng->RandomBytes(len);
        std::copy(junk.begin(), junk.end(), out.begin() + start);
      }
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Verification-object fuzzing
// ---------------------------------------------------------------------------

TEST(FuzzTest, MutatedPointVoNeverMisVerifies) {
  mtree::TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  mtree::MerkleBTree tree(params);
  util::Rng rng(2024);
  const int kKeys = 120;
  for (int i = 0; i < kKeys; ++i) tree.Upsert(NumKey(i), rng.RandomBytes(12));

  int verified = 0, rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    uint64_t k = rng.Uniform(kKeys + 10);  // Include absent keys.
    Bytes truth_key = NumKey(k);
    std::optional<Bytes> truth = tree.Get(truth_key);
    Bytes wire = tree.ProvePoint(truth_key).Serialize();
    Bytes mutated = Mutate(wire, &rng);

    auto vo = mtree::PointVO::Deserialize(mutated);
    if (!vo.ok()) {
      ++rejected;
      continue;
    }
    auto result =
        mtree::VerifyPointRead(tree.root_digest(), params, truth_key, *vo);
    if (!result.ok()) {
      ++rejected;
      continue;
    }
    // Verification passed: the mutation must have been semantically inert.
    ++verified;
    ASSERT_EQ(*result, truth) << "iter " << iter
                              << ": a mutated proof authenticated a lie";
  }
  // The overwhelming majority of mutations must be caught.
  EXPECT_GT(rejected, 1500) << "verified=" << verified;
}

TEST(FuzzTest, MutatedUpsertVoNeverYieldsWrongRoot) {
  mtree::TreeParams params{.max_leaf_entries = 4, .max_internal_keys = 4};
  mtree::MerkleBTree tree(params);
  util::Rng rng(4048);
  for (int i = 0; i < 80; ++i) tree.Upsert(NumKey(i), rng.RandomBytes(8));

  for (int iter = 0; iter < 1000; ++iter) {
    // Ground truth: apply the upsert on a clone.
    Bytes key = NumKey(rng.Uniform(90));
    Bytes value = rng.RandomBytes(8);
    mtree::MerkleBTree next = tree.Clone();
    next.Upsert(key, value);

    Bytes wire = tree.ProvePoint(key).Serialize();
    Bytes mutated = Mutate(wire, &rng);
    auto vo = mtree::PointVO::Deserialize(mutated);
    if (!vo.ok()) continue;
    auto new_root =
        mtree::VerifyAndApplyUpsert(tree.root_digest(), params, key, value, *vo);
    if (!new_root.ok()) continue;
    ASSERT_EQ(*new_root, next.root_digest())
        << "iter " << iter << ": mutated proof replayed to a wrong root";
  }
}

TEST(FuzzTest, RandomBytesNeverCrashVoParser) {
  util::Rng rng(77);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes junk = rng.RandomBytes(rng.Uniform(300));
    auto vo = mtree::PointVO::Deserialize(junk);
    if (vo.ok()) {
      // Parsed junk must still fail verification against any real root.
      auto r = mtree::VerifyPointRead(crypto::Sha256::Hash("root"),
                                      mtree::TreeParams{}, NumKey(1), *vo);
      EXPECT_FALSE(r.ok());
    }
  }
}

// ---------------------------------------------------------------------------
// Wire-format fuzzing
// ---------------------------------------------------------------------------

TEST(FuzzTest, RandomBytesNeverCrashWireParsers) {
  util::Rng rng(88);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes junk = rng.RandomBytes(rng.Uniform(200));
    (void)core::QueryRequest::Deserialize(junk);
    (void)core::QueryResponse::Deserialize(junk);
    (void)core::RootSigUpload::Deserialize(junk);
    (void)core::SyncAnnounce::Deserialize(junk);
    (void)core::SyncReport::Deserialize(junk);
    (void)core::AggReport::Deserialize(junk);
    (void)core::AggTotal::Deserialize(junk);
    (void)core::AggSuccess::Deserialize(junk);
    (void)core::EpochStateBlob::Deserialize(junk);
    (void)core::EpochStatesRequest::Deserialize(junk);
    (void)core::EpochStatesReply::Deserialize(junk);
  }
}

TEST(FuzzTest, MutatedWireMessagesRoundTripOrFailCleanly) {
  util::Rng rng(99);
  core::QueryResponse resp;
  resp.qid = 7;
  resp.kind = sim::OpKind::kCommit;
  resp.found = true;
  resp.answer = rng.RandomBytes(20);
  resp.vo = rng.RandomBytes(50);
  resp.ctr = 123;
  resp.creator = 4;
  resp.sig = rng.RandomBytes(64);
  Bytes wire = resp.Serialize();
  for (int iter = 0; iter < 2000; ++iter) {
    (void)core::QueryResponse::Deserialize(Mutate(wire, &rng));
  }
}

TEST(FuzzTest, RandomBytesNeverCrashPatchParser) {
  util::Rng rng(111);
  for (int iter = 0; iter < 3000; ++iter) {
    auto patch = cvs::Patch::Deserialize(rng.RandomBytes(rng.Uniform(200)));
    if (patch.ok()) {
      // Parsed junk patches must apply cleanly or fail with Corruption —
      // never crash.
      (void)cvs::ApplyPatch({"a", "b", "c"}, *patch);
    }
  }
}

TEST(FuzzTest, RandomBytesNeverCrashSnapshotLoader) {
  util::Rng rng(222);
  mtree::MerkleBTree tree;
  for (int i = 0; i < 40; ++i) tree.Upsert(NumKey(i), NumKey(i));
  Bytes wire = tree.Serialize();
  for (int iter = 0; iter < 1500; ++iter) {
    auto restored = mtree::MerkleBTree::Deserialize(Mutate(wire, &rng));
    if (restored.ok()) {
      // A snapshot that loads must be internally consistent.
      EXPECT_TRUE(restored->CheckInvariants().ok());
    }
  }
}

TEST(FuzzTest, RandomBytesNeverCrashFileRecordParser) {
  util::Rng rng(333);
  for (int iter = 0; iter < 3000; ++iter) {
    (void)cvs::FileRecord::Deserialize(rng.RandomBytes(rng.Uniform(100)));
  }
}

}  // namespace
}  // namespace tcvs
