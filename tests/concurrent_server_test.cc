// Stress tests for the multi-threaded serve loop: N concurrent verifying
// clients hammer one server with interleaved commits, checkouts, and
// listings, and every protocol invariant must hold exactly as it does under
// sequential execution:
//
//   * every reply passes full Protocol II verification (a racy server that
//     interleaved two transactions would produce an unverifiable VO chain),
//   * the server's counter equals the number of transactions issued
//     (gctr = Σ lctr_k, the §4 sync-up identity),
//   * the cross-client SyncCheck detects no fork,
//   * a request id is answered by ONE execution no matter how many times
//     transport faults force its replay,
//   * every server handler span joins the trace of the client call that
//     issued it — causal identity survives 8 threads interleaving on the
//     wire.
//
// These tests are the TSan preset's main prey: run them under
// `cmake --preset tsan` (tools/check.sh does) to turn latent data races in
// the serve path into hard failures.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "cvs/trusted.h"
#include "net/socket.h"
#include "rpc/remote.h"
#include "storage/durable.h"
#include "util/fault.h"
#include "util/metrics.h"

namespace tcvs {
namespace {

rpc::RemoteOptions FastRetryOptions() {
  rpc::RemoteOptions options;
  options.retry.max_attempts = 12;
  options.retry.initial_backoff_ms = 2;
  options.retry.max_backoff_ms = 50;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 5000;
  return options;
}

/// One server + worker pool serving an in-memory repository for the
/// duration of a test, shut down via RPC in TearDown.
class ConcurrentServerTest : public ::testing::Test {
 protected:
  static constexpr int kClients = 8;
  static constexpr int kIterations = 8;

  void SetUp() override {
    util::FaultInjector::Instance().Reset();
    auto listener = net::TcpListener::Bind(0);
    ASSERT_TRUE(listener.ok());
    port_ = listener->port();
    rpc::ServeOptions options;
    options.num_threads = kClients;
    serve_thread_ = std::thread(
        [l = std::move(listener).ValueOrDie(), this, options]() mutable {
          serve_status_ = rpc::Serve(&l, &repo_, options);
        });
  }

  void TearDown() override {
    util::FaultInjector::Instance().Reset();
    auto remote = rpc::RemoteServer::Connect("127.0.0.1", port_);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    ASSERT_TRUE((*remote)->Shutdown().ok());
    serve_thread_.join();
    EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  }

  cvs::UntrustedServer repo_;
  uint16_t port_ = 0;
  std::thread serve_thread_;
  Status serve_status_ = Status::OK();
};

TEST_F(ConcurrentServerTest, InterleavedCommitsAndReadsVerifyAndSyncUp) {
  std::vector<cvs::ClientState> states(kClients);
  std::vector<uint64_t> ops_issued(kClients, 0);
  std::atomic<int> failures{0};

  auto client_body = [&](int idx) {
    auto remote =
        rpc::RemoteServer::Connect("127.0.0.1", port_, FastRetryOptions());
    if (!remote.ok()) {
      ++failures;
      return;
    }
    const uint32_t user = static_cast<uint32_t>(idx + 1);
    cvs::VerifyingClient client(user, remote->get());
    const std::string path = "dir/file" + std::to_string(idx);
    uint64_t ops = 0;
    for (int it = 0; it < kIterations; ++it) {
      auto rev = client.Commit(path, "v" + std::to_string(it),
                               static_cast<uint64_t>(it));
      if (!rev.ok() || *rev != static_cast<uint64_t>(it + 1)) {
        ++failures;
        return;
      }
      ++ops;
      auto rec = client.Checkout(path);
      if (!rec.ok() || rec->content != "v" + std::to_string(it)) {
        ++failures;
        return;
      }
      ++ops;
      if (it % 4 == 3) {
        // A COMPLETE listing taken mid-melee: still verifies, still contains
        // this client's own file.
        auto listing = client.ListDir("dir/");
        if (!listing.ok()) {
          ++failures;
          return;
        }
        bool mine = false;
        for (const auto& [name, rev_seen] : *listing) {
          if (name == path) mine = rev_seen == static_cast<uint64_t>(it + 1);
        }
        if (!mine) {
          ++failures;
          return;
        }
        ++ops;
      }
    }
    states[idx] = client.state();
    ops_issued[idx] = ops;
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) clients.emplace_back(client_body, i);
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // The §4 sync-up identity: the server's global counter is exactly the sum
  // of per-client local counters — no transaction lost, none double-run.
  uint64_t total_ops = 0;
  uint64_t sum_lctr = 0;
  for (int i = 0; i < kClients; ++i) {
    total_ops += ops_issued[i];
    sum_lctr += states[i].lctr;
  }
  EXPECT_EQ(repo_.ctr(), total_ops);
  EXPECT_EQ(sum_lctr, total_ops);

  // Cross-client fork check over all final states.
  EXPECT_TRUE(cvs::VerifyingClient::SyncCheck(states).ok());

  // The concurrent run's final state matches what sequential execution
  // would produce: every file holds its last committed content.
  auto remote =
      rpc::RemoteServer::Connect("127.0.0.1", port_, FastRetryOptions());
  ASSERT_TRUE(remote.ok());
  cvs::VerifyingClient reader(100, remote->get());
  for (int i = 0; i < kClients; ++i) {
    auto rec = reader.Checkout("dir/file" + std::to_string(i));
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->content, "v" + std::to_string(kIterations - 1));
    EXPECT_EQ(rec->revision, static_cast<uint64_t>(kIterations));
  }
}

TEST_F(ConcurrentServerTest, ContendedSameFileCommitsStayAtomic) {
  // Every client fights over ONE path. Exactly one commit can win each
  // revision; losers see an authenticated conflict and rebase. The final
  // revision count proves no commit was applied twice or lost.
  const std::string path = "contended";
  std::atomic<int> failures{0};
  std::atomic<uint64_t> wins{0};

  auto client_body = [&](int idx) {
    auto remote =
        rpc::RemoteServer::Connect("127.0.0.1", port_, FastRetryOptions());
    if (!remote.ok()) {
      ++failures;
      return;
    }
    cvs::VerifyingClient client(static_cast<uint32_t>(idx + 1),
                                remote->get());
    for (int it = 0; it < kIterations; ++it) {
      for (int attempt = 0;; ++attempt) {
        if (attempt > kClients * kIterations + 8) {
          ++failures;  // Livelock: someone's conflict never resolved.
          return;
        }
        uint64_t base = 0;
        auto rec = client.Checkout(path);
        if (rec.ok()) {
          base = rec->revision;
        } else if (!rec.status().IsNotFound()) {
          ++failures;
          return;
        }
        auto rev = client.Commit(path, "by" + std::to_string(idx), base);
        if (rev.ok()) {
          ++wins;
          break;
        }
        if (!rev.status().IsFailedPrecondition() &&
            !rev.status().IsAlreadyExists()) {
          ++failures;
          return;
        }
      }
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) clients.emplace_back(client_body, i);
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(wins.load(), static_cast<uint64_t>(kClients * kIterations));

  auto remote =
      rpc::RemoteServer::Connect("127.0.0.1", port_, FastRetryOptions());
  ASSERT_TRUE(remote.ok());
  cvs::VerifyingClient reader(100, remote->get());
  auto rec = reader.Checkout(path);
  ASSERT_TRUE(rec.ok());
  // One revision per winning commit, exactly.
  EXPECT_EQ(rec->revision, static_cast<uint64_t>(kClients * kIterations));
}

TEST_F(ConcurrentServerTest, LostRepliesReplayIdempotentlyUnderConcurrency) {
  // 20% of requests lose their reply after execution, concurrently across
  // all clients. Every retry reuses its request id, so the reply cache must
  // answer each id with ONE execution — the exact counters below would be
  // off if even a single replay re-executed.
  util::FaultInjector::Instance().Arm(rpc::kFaultServeDropAfter,
                                      util::FaultSpec::Probability(0.2));

  std::vector<cvs::ClientState> states(kClients);
  std::atomic<int> failures{0};
  auto client_body = [&](int idx) {
    auto remote =
        rpc::RemoteServer::Connect("127.0.0.1", port_, FastRetryOptions());
    if (!remote.ok()) {
      ++failures;
      return;
    }
    const uint32_t user = static_cast<uint32_t>(idx + 1);
    cvs::VerifyingClient client(user, remote->get());
    const std::string path = "f" + std::to_string(idx);
    for (int it = 0; it < kIterations; ++it) {
      auto rev = client.Commit(path, "v" + std::to_string(it),
                               static_cast<uint64_t>(it));
      if (!rev.ok() || *rev != static_cast<uint64_t>(it + 1)) {
        ++failures;
        return;
      }
    }
    states[idx] = client.state();
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) clients.emplace_back(client_body, i);
  for (auto& t : clients) t.join();
  util::FaultInjector::Instance().Disarm(rpc::kFaultServeDropAfter);
  ASSERT_EQ(failures.load(), 0);

  // Exactly one execution per logical request: kClients * kIterations
  // commits, regardless of how many replays the fault forced.
  EXPECT_EQ(repo_.ctr(), static_cast<uint64_t>(kClients * kIterations));
  uint64_t sum_lctr = 0;
  for (const auto& s : states) sum_lctr += s.lctr;
  EXPECT_EQ(sum_lctr, static_cast<uint64_t>(kClients * kIterations));
  EXPECT_TRUE(cvs::VerifyingClient::SyncCheck(states).ok());
}

TEST_F(ConcurrentServerTest, ConcurrentStatsSnapshotsStayConsistent) {
  // Clients hammer the server while a poller thread pulls Stats snapshots
  // mid-flight. Every snapshot must be internally consistent — the serve
  // loop increments requests_total strictly before replies_total, so
  // replies ≤ requests must hold in EVERY observation, not just at rest.
  util::MetricsRegistry::Instance().ResetForTesting();

  auto counter_of = [](const util::MetricsSnapshot& snap,
                       const std::string& name) -> uint64_t {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };

  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots_taken{0};

  std::thread poller([&] {
    auto remote =
        rpc::RemoteServer::Connect("127.0.0.1", port_, FastRetryOptions());
    if (!remote.ok()) {
      ++failures;
      return;
    }
    while (!done.load(std::memory_order_relaxed)) {
      auto snap = (*remote)->Stats();
      if (!snap.ok()) {
        ++failures;
        return;
      }
      ++snapshots_taken;
      const uint64_t requests = counter_of(*snap, "rpc.serve.requests_total");
      const uint64_t replies = counter_of(*snap, "rpc.serve.replies_total");
      if (replies > requests) {
        ++failures;
        return;
      }
      const uint64_t hits =
          counter_of(*snap, "rpc.serve.reply_cache.hits_total");
      const uint64_t misses =
          counter_of(*snap, "rpc.serve.reply_cache.misses_total");
      if (hits + misses > requests) {
        ++failures;  // Every cache lookup belongs to a parsed request.
        return;
      }
    }
  });

  std::atomic<int> client_failures{0};
  auto client_body = [&](int idx) {
    auto remote =
        rpc::RemoteServer::Connect("127.0.0.1", port_, FastRetryOptions());
    if (!remote.ok()) {
      ++client_failures;
      return;
    }
    cvs::VerifyingClient client(static_cast<uint32_t>(idx + 1),
                                remote->get());
    const std::string path = "stats/file" + std::to_string(idx);
    for (int it = 0; it < kIterations; ++it) {
      auto rev = client.Commit(path, "v" + std::to_string(it),
                               static_cast<uint64_t>(it));
      if (!rev.ok()) {
        ++client_failures;
        return;
      }
      auto rec = client.Checkout(path);
      if (!rec.ok()) {
        ++client_failures;
        return;
      }
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) clients.emplace_back(client_body, i);
  for (auto& t : clients) t.join();
  done.store(true);
  poller.join();

  ASSERT_EQ(client_failures.load(), 0);
  ASSERT_EQ(failures.load(), 0);
  EXPECT_GT(snapshots_taken.load(), 0u);

  // The quiesced snapshot carries non-zero values for every instrumented
  // layer the workload exercised: RPC serve/client, reply cache, per-method
  // counts, Merkle-tree proof building, client-side VO verification, and
  // the hash engine underneath it all.
  auto remote =
      rpc::RemoteServer::Connect("127.0.0.1", port_, FastRetryOptions());
  ASSERT_TRUE(remote.ok());
  auto snap = (*remote)->Stats();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  const uint64_t expected_transactions =
      static_cast<uint64_t>(kClients) * kIterations * 2;  // Commit + Checkout.
  EXPECT_GE(counter_of(*snap, "rpc.serve.transact.requests_total"),
            expected_transactions);
  EXPECT_GT(counter_of(*snap, "rpc.serve.requests_total"), 0u);
  EXPECT_GT(counter_of(*snap, "rpc.serve.stats.requests_total"), 0u);
  EXPECT_GT(counter_of(*snap, "rpc.serve.reply_cache.insertions_total"), 0u);
  EXPECT_GT(counter_of(*snap, "cvs.server.transactions_total"), 0u);
  EXPECT_GT(counter_of(*snap, "crypto.sha256.hashes_total"), 0u);
  EXPECT_GT(counter_of(*snap, "net.bytes_sent_total"), 0u);

  auto hist_count = [&](const std::string& name) -> uint64_t {
    auto it = snap->histograms.find(name);
    return it == snap->histograms.end() ? 0 : it->second.count();
  };
  EXPECT_GT(hist_count("rpc.serve.handle_frame.latency_us"), 0u);
  EXPECT_GT(hist_count("mtree.tree.upsert.latency_us"), 0u);
  EXPECT_GT(hist_count("mtree.tree.prove_point.latency_us"), 0u);
  EXPECT_GT(hist_count("mtree.vo.verify_point.latency_us"), 0u);
  EXPECT_GT(hist_count("rpc.client.transact.latency_us"), 0u);
}

TEST_F(ConcurrentServerTest, TracePropagatesFromEveryClientIntoServerSpans) {
  // 8 concurrent clients, tracing on: every server handler span must carry
  // the trace id the issuing client's RPC span minted, parented under that
  // exact span — across threads, interleaved on the wire.
  util::MetricsRegistry& reg = util::MetricsRegistry::Instance();
  reg.ResetForTesting();
  reg.set_trace_capacity(size_t{1} << 15);  // Headroom for every span.
  reg.set_trace_enabled(true);

  std::atomic<int> failures{0};
  auto client_body = [&](int idx) {
    auto remote =
        rpc::RemoteServer::Connect("127.0.0.1", port_, FastRetryOptions());
    if (!remote.ok()) {
      ++failures;
      return;
    }
    cvs::VerifyingClient client(static_cast<uint32_t>(idx + 1),
                                remote->get());
    const std::string path = "trace/file" + std::to_string(idx);
    for (int it = 0; it < kIterations; ++it) {
      auto rev = client.Commit(path, "v" + std::to_string(it),
                               static_cast<uint64_t>(it));
      if (!rev.ok()) {
        ++failures;
        return;
      }
      auto rec = client.Checkout(path);
      if (!rec.ok()) {
        ++failures;
        return;
      }
    }
  };
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) clients.emplace_back(client_body, i);
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Drain through the kTraceDump RPC — the same path `tcvs trace` uses.
  auto remote =
      rpc::RemoteServer::Connect("127.0.0.1", port_, FastRetryOptions());
  ASSERT_TRUE(remote.ok());
  auto dump = (*remote)->TraceDump();
  reg.set_trace_enabled(false);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();

  // Index the client-side RPC spans (calls and connect handshakes) by span
  // id; collect the server handler spans.
  std::map<uint64_t, const util::TraceDump::Event*> client_spans;
  std::vector<const util::TraceDump::Event*> server_spans;
  for (const auto& e : dump->events) {
    if (e.name == "rpc.client.call" || e.name == "rpc.client.connect") {
      client_spans[e.span_id] = &e;
    }
    if (e.name == "rpc.serve.handle_frame") server_spans.push_back(&e);
  }
  // Every commit/checkout produced one client span + one server span (the
  // in-flight TraceDump call itself is still open, so it is in neither).
  const size_t expected = size_t{kClients} * kIterations * 2;
  EXPECT_GE(client_spans.size(), expected);
  ASSERT_GE(server_spans.size(), expected);

  for (const auto* server : server_spans) {
    EXPECT_NE(server->trace_id, 0u);
    auto parent = client_spans.find(server->parent_span_id);
    ASSERT_NE(parent, client_spans.end())
        << "server span has no issuing client RPC span";
    const auto* client = parent->second;
    EXPECT_EQ(server->trace_id, client->trace_id)
        << "handler must join the caller's trace, not start its own";
    // Same process, same clock: the handler runs strictly inside the
    // client's RPC window.
    EXPECT_GE(server->start_us, client->start_us);
    EXPECT_LE(server->start_us + server->duration_us,
              client->start_us + client->duration_us);
  }

  // Distinct clients never share a trace: with no outer span, every RPC
  // mints a fresh trace id.
  std::set<uint64_t> trace_ids;
  for (const auto& [span_id, e] : client_spans) trace_ids.insert(e->trace_id);
  EXPECT_EQ(trace_ids.size(), client_spans.size());

  // The export is structurally valid Chrome trace JSON: one object, every
  // brace/bracket balanced outside strings, ids as quoted hex (64-bit ids
  // as bare JSON numbers would silently lose precision past 2^53).
  const std::string json = dump->ChromeTraceJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      ASSERT_GT(depth, 0) << "unbalanced at offset " << i;
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.find("\"trace_id\":0"), std::string::npos)
      << "trace ids must be quoted hex strings, never bare numbers";

  // Chronological consistency: the exported "ts" values are non-decreasing,
  // so a Perfetto/Chrome load shows causally ordered slices.
  uint64_t prev_ts = 0;
  size_t ts_seen = 0;
  for (size_t pos = json.find("\"ts\":"); pos != std::string::npos;
       pos = json.find("\"ts\":", pos + 5)) {
    const uint64_t ts = std::strtoull(json.c_str() + pos + 5, nullptr, 10);
    EXPECT_GE(ts, prev_ts) << "trace events must be sorted by start time";
    prev_ts = ts;
    ++ts_seen;
  }
  EXPECT_EQ(ts_seen, dump->events.size());
  reg.ResetForTesting();
}

TEST(ConcurrentDurableServerTest, GroupCommitWindowOverRpcVerifiesAndRecovers) {
  // The full deployment path under the group-commit window: 8 TCP clients
  // hammer a fsync-on DurableServer through the serve loop's worker pool,
  // so concurrent WaitDurable calls actually form batches. Every reply must
  // still pass full Protocol II verification, the cross-client sync-up must
  // see no fork, and a reopen must replay to the identical counter and root
  // digest — group commit may reorder *when* records hit the device, never
  // which records exist or what they apply to.
  constexpr int kClients = 8;
  constexpr int kIterations = 6;
  std::error_code ec;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tcvs_concurrent_gc_test";
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir);

  storage::DurableOptions options;
  options.fsync = true;
  options.group_commit_window_us = 2000;

  std::vector<cvs::ClientState> states(kClients);
  crypto::Digest digest_before_close;
  {
    auto server = storage::DurableServer::Open(dir.string(),
                                               mtree::TreeParams{}, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto listener = net::TcpListener::Bind(0);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    const uint16_t port = listener->port();
    rpc::ServeOptions serve_options;
    serve_options.num_threads = kClients;
    Status serve_status = Status::OK();
    std::thread serve_thread([l = std::move(listener).ValueOrDie(),
                              &serve_status, api = server->get(),
                              serve_options]() mutable {
      serve_status = rpc::Serve(&l, api, serve_options);
    });

    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        auto remote =
            rpc::RemoteServer::Connect("127.0.0.1", port, FastRetryOptions());
        if (!remote.ok()) {
          ++failures;
          return;
        }
        cvs::VerifyingClient client(static_cast<uint32_t>(i + 1),
                                    remote->get());
        const std::string path = "gc/file" + std::to_string(i);
        for (int it = 0; it < kIterations; ++it) {
          auto rev = client.Commit(path, "v" + std::to_string(it),
                                   static_cast<uint64_t>(it));
          if (!rev.ok() || *rev != static_cast<uint64_t>(it + 1)) {
            ++failures;
            return;
          }
        }
        states[i] = client.state();
      });
    }
    for (auto& t : clients) t.join();
    ASSERT_EQ(failures.load(), 0);

    auto remote = rpc::RemoteServer::Connect("127.0.0.1", port);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    ASSERT_TRUE((*remote)->Shutdown().ok());
    serve_thread.join();
    EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();

    EXPECT_EQ((*server)->server()->ctr(),
              static_cast<uint64_t>(kClients * kIterations));
    EXPECT_TRUE(cvs::VerifyingClient::SyncCheck(states).ok());
    digest_before_close = (*server)->server()->tree().root_digest();
  }

  // Exactly-once replay across the window: the reopened server recovers the
  // identical transaction count and root digest the clients verified.
  auto reopened = storage::DurableServer::Open(dir.string(),
                                               mtree::TreeParams{}, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->server()->ctr(),
            static_cast<uint64_t>(kClients * kIterations));
  EXPECT_EQ((*reopened)->server()->tree().root_digest(), digest_before_close);
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace tcvs
