#include <gtest/gtest.h>

#include "core/scenario.h"
#include "workload/workload.h"

namespace tcvs {
namespace core {
namespace {

workload::Workload SmallCvsWorkload(uint32_t num_users, uint32_t ops_per_user,
                                    uint64_t seed = 7) {
  workload::CvsWorkloadOptions opts;
  opts.num_users = num_users;
  opts.ops_per_user = ops_per_user;
  opts.num_files = 8;
  opts.mean_think_rounds = 3;
  opts.offline_probability = 0.0;
  opts.seed = seed;
  return workload::MakeCvsWorkload(opts);
}

ScenarioConfig BaseConfig(ProtocolKind protocol, uint32_t num_users) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.num_users = num_users;
  config.sync_k = 6;
  config.epoch_rounds = 60;
  config.user_key_height = 7;  // 128 signatures per user: plenty for tests.
  return config;
}

// ---------------------------------------------------------------------------
// Honest server: every protocol completes the workload with no false alarm
// and the ground truth confirms a serial execution.
// ---------------------------------------------------------------------------

class HonestServerTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(HonestServerTest, NoFalsePositiveAndAllOpsComplete) {
  ScenarioConfig config = BaseConfig(GetParam(), 4);
  Scenario scenario(config, SmallCvsWorkload(4, 12));
  // 1200 rounds: ample for every protocol to finish the scripts while the
  // token baseline's null records stay within the users' signing budget.
  ScenarioReport report = scenario.Run(1200);
  EXPECT_FALSE(report.detected) << report.detection_reason;
  EXPECT_TRUE(report.all_scripts_done);
  EXPECT_EQ(report.ops_completed, 4u * 12u);
  EXPECT_FALSE(report.ground_truth_deviation);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, HonestServerTest,
    ::testing::Values(ProtocolKind::kPlain, ProtocolKind::kNoExternalComm,
                      ProtocolKind::kTokenBaseline, ProtocolKind::kProtocolI,
                      ProtocolKind::kProtocolII, ProtocolKind::kProtocolIINaive,
                      ProtocolKind::kProtocolIII),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return std::string(ProtocolKindToString(info.param));
    });

TEST(HonestServerTest, ProtocolIIIHonestManyEpochs) {
  ScenarioConfig config = BaseConfig(ProtocolKind::kProtocolIII, 3);
  config.epoch_rounds = 40;
  workload::EpochWorkloadOptions opts;
  opts.num_users = 3;
  opts.num_epochs = 8;
  opts.epoch_rounds = 40;
  opts.ops_per_epoch = 2;
  Scenario scenario(config, workload::MakeEpochWorkload(opts));
  ScenarioReport report = scenario.Run(8 * 40 + 200);
  EXPECT_FALSE(report.detected) << report.detection_reason;
  EXPECT_TRUE(report.all_scripts_done);
}

TEST(HonestServerTest, NoExternalMessagesWithoutBroadcastProtocols) {
  for (ProtocolKind p : {ProtocolKind::kPlain, ProtocolKind::kNoExternalComm,
                         ProtocolKind::kTokenBaseline,
                         ProtocolKind::kProtocolIII}) {
    ScenarioConfig config = BaseConfig(p, 3);
    Scenario scenario(config, SmallCvsWorkload(3, 8));
    ScenarioReport report = scenario.Run(2000);
    EXPECT_EQ(report.traffic.external_messages, 0u)
        << ProtocolKindToString(p)
        << " claims no external communication but used the broadcast channel";
  }
}

TEST(HonestServerTest, SyncProtocolsUseBroadcastOnlyForSync) {
  ScenarioConfig config = BaseConfig(ProtocolKind::kProtocolII, 3);
  config.sync_k = 4;
  Scenario scenario(config, SmallCvsWorkload(3, 9));
  ScenarioReport report = scenario.Run(2000);
  EXPECT_FALSE(report.detected);
  EXPECT_GT(report.traffic.external_messages, 0u);
  // Sync traffic is bounded: per sync at most 1 announce + n reports, each
  // broadcast to n-1 peers.
  uint64_t syncs_upper = 27 / config.sync_k + 2;
  EXPECT_LE(report.traffic.external_messages, syncs_upper * (1 + 3) * 2);
}

// ---------------------------------------------------------------------------
// Fork / partition attack (paper Figure 1, Theorem 3.1)
// ---------------------------------------------------------------------------

workload::Workload PartitionWorkload() {
  workload::PartitionableOptions opts;
  opts.users_in_a = 2;
  opts.users_in_b = 2;
  opts.prefix_ops_per_user = 3;
  opts.partition_round = 80;
  opts.b_ops_after_dependency = 15;
  return workload::MakePartitionableWorkload(opts);
}

ScenarioConfig ForkConfig(ProtocolKind protocol) {
  ScenarioConfig config = BaseConfig(protocol, 4);
  config.attack.kind = AttackKind::kFork;
  // Split before t1 (round 80) lands, so the fork never contains it.
  config.attack.trigger_round = 60;
  config.attack.partition_a = {3, 4};  // Group B is forked off.
  return config;
}

TEST(ForkAttackTest, GroundTruthDeviates) {
  Scenario scenario(ForkConfig(ProtocolKind::kPlain), PartitionWorkload());
  ScenarioReport report = scenario.Run(1000);
  EXPECT_FALSE(report.detected);
  EXPECT_TRUE(report.ground_truth_deviation);
}

TEST(ForkAttackTest, NoExternalCommNeverDetects) {
  // Theorem 3.1: without external communication, all local checks pass on
  // both sides of the fork forever.
  Scenario scenario(ForkConfig(ProtocolKind::kNoExternalComm),
                    PartitionWorkload());
  ScenarioReport report = scenario.Run(2000);
  EXPECT_FALSE(report.detected);
  EXPECT_TRUE(report.ground_truth_deviation);
  EXPECT_TRUE(report.all_scripts_done);
}

TEST(ForkAttackTest, ProtocolIDetectsAtSync) {
  ScenarioConfig config = ForkConfig(ProtocolKind::kProtocolI);
  Scenario scenario(config, PartitionWorkload());
  ScenarioReport report = scenario.Run(3000);
  ASSERT_TRUE(report.detected) << "fork must be detected";
  // k-bounded deviation detection: detection before any user completes more
  // than k transactions initiated after the deviation. The total ops the
  // server processed after engaging bounds each user's count.
  EXPECT_GT(report.detection_delay_ops, 0u);
}

TEST(ForkAttackTest, ProtocolIIDetectsAtSync) {
  Scenario scenario(ForkConfig(ProtocolKind::kProtocolII), PartitionWorkload());
  ScenarioReport report = scenario.Run(3000);
  ASSERT_TRUE(report.detected);
  EXPECT_NE(report.detection_reason.find("sync"), std::string::npos)
      << report.detection_reason;
}

TEST(ForkAttackTest, UntaggedVariantStillDetectsForks) {
  // The untagged register is weak against replays (Fig. 3), but a fork still
  // leaves ≥3 odd-degree states, so the XOR check fails.
  Scenario scenario(ForkConfig(ProtocolKind::kProtocolIINaive),
                    PartitionWorkload());
  ScenarioReport report = scenario.Run(3000);
  EXPECT_TRUE(report.detected);
}

TEST(ForkAttackTest, TokenBaselineDetectsViaSlotCounter) {
  ScenarioConfig config = ForkConfig(ProtocolKind::kTokenBaseline);
  Scenario scenario(config, PartitionWorkload());
  ScenarioReport report = scenario.Run(2000);
  ASSERT_TRUE(report.detected);
  // Either rigid check can fire first: the counter disagrees with the slot
  // index, or the forked state lacks a legitimate signature chain.
  EXPECT_TRUE(report.detection_reason.find("slot") != std::string::npos ||
              report.detection_reason.find("signature") != std::string::npos)
      << report.detection_reason;
  // The rigid slot order detects within one ring rotation — fast but at the
  // §2.2.3 workload-preservation cost.
  EXPECT_LE(report.detection_delay_rounds,
            config.slot_rounds * config.num_users + 4);
}

TEST(ForkAttackTest, ProtocolIIIDetectsWithinTwoEpochs) {
  ScenarioConfig config = BaseConfig(ProtocolKind::kProtocolIII, 4);
  config.epoch_rounds = 50;
  config.attack.kind = AttackKind::kFork;
  config.attack.trigger_round = 120;  // Mid-epoch 2.
  config.attack.partition_a = {3, 4};
  workload::EpochWorkloadOptions opts;
  opts.num_users = 4;
  opts.num_epochs = 10;
  opts.epoch_rounds = 50;
  opts.ops_per_epoch = 3;
  Scenario scenario(config, workload::MakeEpochWorkload(opts));
  ScenarioReport report = scenario.Run(10 * 50 + 200);
  ASSERT_TRUE(report.detected) << "fork across epochs must be caught by audit";
  // Theorem 4.3: detection within two epochs of the fault. The fault lands
  // in epoch floor(120/50)=2; its audit runs in epoch 4; allow the audit
  // round-trip itself.
  EXPECT_LE(report.detection_round, (2 + 3) * 50 + 20);
}

// ---------------------------------------------------------------------------
// Tamper / drop (single-user integrity & availability violations)
// ---------------------------------------------------------------------------

ScenarioConfig OneShotConfig(ProtocolKind protocol, AttackKind kind) {
  ScenarioConfig config = BaseConfig(protocol, 3);
  config.attack.kind = kind;
  config.attack.trigger_round = 40;
  // Detection is only guaranteed at the next sync-up; the workload may run
  // out of steam before any user accumulates k more operations, so schedule
  // one final sync after all activity (the "once in a while" of §1).
  config.forced_syncs = {400};
  return config;
}

class OneShotAttackTest
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, AttackKind>> {};

TEST_P(OneShotAttackTest, VerifyingProtocolsDetect) {
  auto [protocol, attack] = GetParam();
  ScenarioConfig config = OneShotConfig(protocol, attack);
  Scenario scenario(config, SmallCvsWorkload(3, 12, /*seed=*/21));
  ScenarioReport report = scenario.Run(4000);
  EXPECT_TRUE(report.detected)
      << ProtocolKindToString(protocol) << " failed to detect "
      << AttackKindToString(attack);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OneShotAttackTest,
    ::testing::Combine(::testing::Values(ProtocolKind::kProtocolI,
                                         ProtocolKind::kProtocolII,
                                         ProtocolKind::kTokenBaseline),
                       ::testing::Values(AttackKind::kTamper, AttackKind::kDrop)),
    [](const ::testing::TestParamInfo<std::tuple<ProtocolKind, AttackKind>>&
           info) {
      return std::string(ProtocolKindToString(std::get<0>(info.param))) + "_" +
             std::string(AttackKindToString(std::get<1>(info.param)));
    });

TEST(OneShotAttackTest, PlainNeverDetectsTamper) {
  ScenarioConfig config = OneShotConfig(ProtocolKind::kPlain, AttackKind::kTamper);
  Scenario scenario(config, SmallCvsWorkload(3, 12, 21));
  ScenarioReport report = scenario.Run(4000);
  EXPECT_FALSE(report.detected);
}

TEST(OneShotAttackTest, ProtocolIDetectsTamperOnNextOperation) {
  ScenarioConfig config = OneShotConfig(ProtocolKind::kProtocolI,
                                        AttackKind::kTamper);
  config.sync_k = 1000;  // Disable syncs: detection must come from signatures.
  Scenario scenario(config, SmallCvsWorkload(3, 12, 21));
  ScenarioReport report = scenario.Run(4000);
  ASSERT_TRUE(report.detected);
  // The signature over the forged state cannot exist; the next transaction
  // by any user exposes it.
  EXPECT_LE(report.detection_delay_ops, 2u);
}

// ---------------------------------------------------------------------------
// Figure-3 replay: the tagging ablation
// ---------------------------------------------------------------------------

TEST(ReplayAttackTest, UntaggedVariantIsFooled) {
  Scenario scenario = MakeReplayScenario(/*naive=*/true);
  ScenarioReport report = scenario.Run(300);
  // The availability violation is real...
  EXPECT_TRUE(report.ground_truth_deviation);
  // ...but the untagged XOR check cancels out and reports success.
  EXPECT_FALSE(report.detected) << report.detection_reason;
}

TEST(ReplayAttackTest, TaggedProtocolIIDetects) {
  Scenario scenario = MakeReplayScenario(/*naive=*/false);
  ScenarioReport report = scenario.Run(300);
  EXPECT_TRUE(report.ground_truth_deviation);
  ASSERT_TRUE(report.detected);
  EXPECT_NE(report.detection_reason.find("sync"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Protocol III specific attacks
// ---------------------------------------------------------------------------

ScenarioConfig P3Config(AttackKind kind, sim::AgentId victim) {
  ScenarioConfig config = BaseConfig(ProtocolKind::kProtocolIII, 3);
  config.epoch_rounds = 50;
  config.attack.kind = kind;
  config.attack.trigger_round = 0;
  config.attack.victim = victim;
  return config;
}

workload::Workload P3Workload() {
  workload::EpochWorkloadOptions opts;
  opts.num_users = 3;
  opts.num_epochs = 8;
  opts.epoch_rounds = 50;
  opts.ops_per_epoch = 2;
  return workload::MakeEpochWorkload(opts);
}

TEST(ProtocolIIITest, OmittedEpochStateDetected) {
  Scenario scenario(P3Config(AttackKind::kOmitEpochState, 2), P3Workload());
  ScenarioReport report = scenario.Run(8 * 50 + 200);
  ASSERT_TRUE(report.detected);
  EXPECT_NE(report.detection_reason.find("missing"), std::string::npos)
      << report.detection_reason;
}

TEST(ProtocolIIITest, StaleEpochStateDetected) {
  Scenario scenario(P3Config(AttackKind::kStaleEpochState, 2), P3Workload());
  ScenarioReport report = scenario.Run(8 * 50 + 200);
  ASSERT_TRUE(report.detected);
}

// ---------------------------------------------------------------------------
// Workload preservation (paper §2.2.3): back-to-back operations by one user
// must not wait for the whole user ring under Protocols I/II, but do under
// the token-passing baseline.
// ---------------------------------------------------------------------------

TEST(WorkloadPreservationTest, TokenBaselinePenalizesBursts) {
  const uint32_t kUsers = 8;
  const uint32_t kBurst = 6;

  auto run = [&](ProtocolKind protocol) {
    ScenarioConfig config = BaseConfig(protocol, kUsers);
    config.sync_k = 1000;  // Isolate op latency from sync pauses.
    Scenario scenario(config,
                      workload::MakeBurstWorkload(kUsers, 0, kBurst, 4, 5));
    ScenarioReport report = scenario.Run(4000);
    EXPECT_FALSE(report.detected) << ProtocolKindToString(protocol) << ": "
                                  << report.detection_reason;
    EXPECT_TRUE(report.all_scripts_done);
    return report.max_latency_rounds;
  };

  uint64_t token_latency = run(ProtocolKind::kTokenBaseline);
  uint64_t p2_latency = run(ProtocolKind::kProtocolII);
  // The baseline forces each of the burst user's ops to wait a full ring
  // rotation (n slots); Protocol II completes them back-to-back.
  EXPECT_GT(token_latency, p2_latency * 4)
      << "token=" << token_latency << " p2=" << p2_latency;
}

TEST(WorkloadPreservationTest, ProtocolIIFasterThanProtocolIUnderConcurrency) {
  // Protocol I's blocking signature round-trip serializes the server: one
  // operation completes per upload round-trip, regardless of how many users
  // are waiting. Protocol II pipelines them. A single user's burst costs the
  // same under both (the upload rides alongside the next query) — the gap
  // appears exactly when users contend, so load every user at once.
  const uint32_t kUsers = 6;
  const uint32_t kOpsEach = 8;
  auto run = [&](ProtocolKind protocol) {
    ScenarioConfig config = BaseConfig(protocol, kUsers);
    config.sync_k = 1000;
    workload::Workload w;
    for (uint32_t u = 1; u <= kUsers; ++u) {
      workload::UserScript s;
      s.user = u;
      for (uint32_t i = 0; i < kOpsEach; ++i) {
        s.ops.push_back({1, sim::OpKind::kCommit,
                         util::ToBytes("f" + std::to_string(u)),
                         util::ToBytes("v" + std::to_string(i))});
      }
      w.push_back(std::move(s));
    }
    Scenario scenario(config, std::move(w));
    ScenarioReport report = scenario.Run(4000);
    EXPECT_FALSE(report.detected) << report.detection_reason;
    EXPECT_TRUE(report.all_scripts_done);
    return report.avg_latency_rounds;
  };
  double p1 = run(ProtocolKind::kProtocolI);
  double p2 = run(ProtocolKind::kProtocolII);
  EXPECT_GT(p1, 2 * p2) << "p1=" << p1 << " p2=" << p2;
}

// ---------------------------------------------------------------------------
// Detection-delay bound: sweep k (the paper's k-bounded deviation detection)
// ---------------------------------------------------------------------------

class SyncPeriodSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SyncPeriodSweep, ForkDetectedWithinKBound) {
  const uint32_t k = GetParam();
  ScenarioConfig config = BaseConfig(ProtocolKind::kProtocolII, 4);
  config.sync_k = k;
  config.attack.kind = AttackKind::kFork;
  config.attack.trigger_round = 50;
  config.attack.partition_a = {3, 4};

  workload::CvsWorkloadOptions opts;
  opts.num_users = 4;
  opts.ops_per_user = 20 + 4 * k;
  opts.num_files = 6;
  opts.mean_think_rounds = 2;
  opts.offline_probability = 0.0;
  opts.seed = 11;
  Scenario scenario(config, workload::MakeCvsWorkload(opts));
  ScenarioReport report = scenario.Run(20000);
  ASSERT_TRUE(report.detected) << "k=" << k;
  // The sync fires when the first user completes k ops since the last sync;
  // no user can get more than k ops past the deviation plus the ops already
  // counted toward the running window. The total server ops after the attack
  // is bounded by n·k plus sync-latency slack.
  EXPECT_LE(report.detection_delay_ops, 4ull * k + 8) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, SyncPeriodSweep, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace core
}  // namespace tcvs
