// Seeded-bad fixture for `tools/taint_check.py --self-test`. NEVER compiled
// or linked — it exists so the checker's regression suite can prove the
// pure-python engine flags this shape of bug.
//
// Bug: a quarantined server reply is borrowed with .untrusted() and written
// straight into the verified cache. No VO verification ever ran, so a
// Byzantine server could plant arbitrary records in trusted state.
#include "core/wire.h"
#include "cvs/cache.h"
#include "util/untrusted.h"

namespace tcvs {
namespace cvs {

void BadCachePut(LocalCache& cache,
                 const util::Tainted<core::QueryResponse>& quarantined) {
  const core::QueryResponse& reply = quarantined.untrusted();
  // taint-expect: unendorsed-sink-flow
  cache.Put(reply.path, *reply.record);  // Unverified write to trusted state.
}

}  // namespace cvs
}  // namespace tcvs
