// Seeded-bad fixture for `tools/taint_check.py --self-test`. NEVER compiled
// or linked.
//
// Bug: the .raw() escape hatch (reserved for Tainted<T>'s own plumbing in
// util/untrusted.h) is used in application code to strip quarantine without
// any verification. Both the checker and tools/lint.py ban this.
#include <utility>

#include "cvs/trusted.h"
#include "util/untrusted.h"

namespace tcvs {
namespace cvs {

ServerReply BadRawEscape(util::Tainted<ServerReply> quarantined) {
  // taint-expect: raw-escape
  return std::move(quarantined).raw();  // Quarantine stripped, nothing checked.
}

}  // namespace cvs
}  // namespace tcvs
