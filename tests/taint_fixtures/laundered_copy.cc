// Seeded-bad fixture for `tools/taint_check.py --self-test`. NEVER compiled
// or linked.
//
// Bug: taint laundering. The quarantined reply is borrowed, copied into a
// fresh plainly-typed variable, and the COPY is fed to a trusted sink. The
// copy carries no Tainted<> wrapper, so only flow tracking (one-level copy
// propagation in the checker) catches it.
#include "core/wire.h"
#include "storage/durable.h"
#include "util/untrusted.h"

namespace tcvs {
namespace storage {

void BadLaunder(DurableStore& store,
                const util::Tainted<core::QueryResponse>& quarantined) {
  const core::QueryResponse& borrowed = quarantined.untrusted();
  core::QueryResponse laundered = borrowed;  // Copying does not clean taint.
  // taint-expect: unendorsed-sink-flow
  store.ReplayRecord(laundered.path, laundered.record);
}

}  // namespace storage
}  // namespace tcvs
