// Seeded-bad fixture for `tools/taint_check.py --self-test`. NEVER compiled
// or linked.
//
// Bug: quarantine is "endorsed" with a home-made token that carries no
// TCVS_TAINT_VERIFIER registration. The C++ layer rejects this at compile
// time (Endorse() is SFINAE-constrained on the registration tag); the
// checker must flag it too so the bug is caught in code that has not been
// compiled yet (reviews, patches, generated code).
#include <utility>

#include "cvs/trusted.h"
#include "util/untrusted.h"

namespace tcvs {
namespace cvs {

struct LooksLegit {};  // No TCVS_TAINT_VERIFIER — a counterfeit token.

ServerReply BadEndorse(util::Tainted<ServerReply> quarantined) {
  // taint-expect: unregistered-verifier
  return TCVS_ENDORSE(std::move(quarantined), LooksLegit{});
}

}  // namespace cvs
}  // namespace tcvs
