#pragma once

#include <vector>

#include "cvs/trusted.h"
#include "util/result.h"
#include "util/serde.h"
#include "util/untrusted.h"

namespace tcvs {
namespace rpc {

/// Taint-verifier token: an RPC envelope passed the structural checks in
/// CheckRequestEnvelope / CheckResponseEnvelope. Deliberately narrow — it
/// attests a well-formed frame, nothing cryptographic. A response PAYLOAD
/// (serialized ServerReply etc.) stays quarantined through its own
/// Deserialize and is endorsed only by the cvs verification chain.
struct EnvelopeChecked {
  TCVS_TAINT_VERIFIER(EnvelopeChecked);
};

/// RPC message kinds between `tcvs` clients and a `tcvsd` server.
enum class RpcType : uint8_t {
  /// Execute a transaction (cvs::ServerApi::Transact).
  kTransact = 1,
  /// Fetch server configuration (tree parameters).
  kGetParams = 2,
  /// Ask the serving loop to exit (operator tooling / tests).
  kShutdown = 3,
  /// Authenticated directory listing (cvs::ServerApi::List).
  kList = 4,
  /// Transparency-log checkpoint + consistency proof
  /// (cvs::ServerApi::LogCheckpoint).
  kLogCheckpoint = 5,
  /// Serialized util::MetricsSnapshot of the server process (observability;
  /// `tcvs stats`). Read-only, never cached, carries no payload fields.
  kStats = 6,
  /// Drain-and-return the server's trace ring as a serialized
  /// util::TraceDump (`tcvs trace`). Read-only, never cached.
  kTraceDump = 7,
  /// Serialized util::AuditLog snapshot of the server process
  /// (`tcvs events`). Read-only, never cached.
  kEvents = 8,
  /// Collect a windowed CPU profile on the server (util::ProfileWindow) and
  /// return it in folded/collapsed-stack text (`tcvs profile`). Read-only,
  /// never cached; blocks for the requested window, so the serve loop
  /// dispatches it OUTSIDE the execution lock. v3 wire.
  kProfile = 9,
};

/// \brief Request wire versioning. v1 frames began directly with the type
/// byte (1..6). v2 frames start with the kRpcVersionEscape byte — a value
/// no v1 type ever used — then the version, then the v1 layout, then the
/// trace-context triple. v3 appends the kProfile parameter pair
/// (profile_seconds, profile_hz). Deserialize accepts all three, so a v3
/// server still understands v1/v2 clients.
inline constexpr uint8_t kRpcWireVersion = 3;
inline constexpr uint8_t kRpcVersionEscape = 0xFF;

/// \brief One request frame.
struct RpcRequest {
  RpcType type = RpcType::kTransact;
  uint32_t user = 0;
  std::vector<cvs::FileOp> ops;
  std::string prefix;     // kList only.
  uint64_t old_size = 0;  // kLogCheckpoint only: the caller's checkpoint.
  /// Nonzero id shared by every retry of one logical call. The serve loop
  /// caches the reply per id, so a replayed request whose original reply was
  /// lost mid-flight returns the SAME reply instead of re-executing — the
  /// counter-bearing transaction stays exactly-once within a server
  /// incarnation, and the client's register chain has no gap.
  uint64_t request_id = 0;
  /// \name Causal-trace context (Dapper-style; v2 wire). The client copies
  /// its active span here; the serve loop installs it so server handler
  /// spans join the caller's trace. All-zero from v1 clients.
  /// @{
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  /// @}
  /// \name kProfile parameters (v3 wire): window length and sampling
  /// frequency, clamped server-side to util::kMin/MaxProfileSeconds/Hz.
  /// @{
  uint32_t profile_seconds = 0;
  uint32_t profile_hz = 0;
  /// @}

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<RpcRequest>> Deserialize(const Bytes& data);
};

/// \brief One response frame: a Status (code + message) plus, on success,
/// the type-specific payload (a serialized ServerReply for kTransact, the
/// tree parameters for kGetParams).
struct RpcResponse {
  uint32_t status_code = 0;  // StatusCode as integer; 0 = OK.
  std::string status_message;
  Bytes payload;

  static RpcResponse FromStatus(const Status& status);
  Status ToStatus() const;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<RpcResponse>> Deserialize(const Bytes& data);
};

/// \brief Structural endorsement of a parsed response frame (client side):
/// the status code must map onto a known StatusCode. See EnvelopeChecked for
/// what this does — and does not — attest.
TCVS_ENDORSER Result<RpcResponse> CheckResponseEnvelope(
    util::Tainted<RpcResponse> resp);

/// \brief Structural endorsement of a parsed request frame (serve side): the
/// type tag and op count were already bounds-checked by Deserialize, and the
/// server executes whatever a client asks — clients, not the server, carry
/// the verification burden.
TCVS_ENDORSER Result<RpcRequest> CheckRequestEnvelope(
    util::Tainted<RpcRequest> req);

/// FileOp wire helpers (shared by request serialization and tests). These
/// parse *sub-fields inside an already quarantined frame*, so they stay on
/// plain values; the enclosing Deserialize applies the taint wrapper.
void SerializeFileOp(const cvs::FileOp& op, util::Writer* w);
Result<cvs::FileOp> DeserializeFileOp(util::Reader* r);

}  // namespace rpc
}  // namespace tcvs
