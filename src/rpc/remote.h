#pragma once

#include <memory>
#include <string>

#include "cvs/trusted.h"
#include "net/socket.h"
#include "rpc/protocol.h"

namespace tcvs {
namespace rpc {

/// \brief cvs::ServerApi over a TCP connection to a `tcvsd` server: the
/// verifying client's transport for real deployments. One frame round trip
/// per transaction; the connection is established (and the server's tree
/// parameters fetched) in Connect().
class RemoteServer : public cvs::ServerApi {
 public:
  static Result<std::unique_ptr<RemoteServer>> Connect(const std::string& host,
                                                       uint16_t port);

  Result<cvs::ServerReply> Transact(uint32_t user,
                                    const std::vector<cvs::FileOp>& ops) override;
  Result<cvs::ListReply> List(uint32_t user, const std::string& prefix) override;
  Result<cvs::LogCheckpointReply> LogCheckpoint(uint64_t old_size) override;
  mtree::TreeParams tree_params() const override { return params_; }

  /// Asks the server's serving loop to exit (operator tooling / tests).
  Status Shutdown();

 private:
  RemoteServer(net::TcpConnection conn, mtree::TreeParams params)
      : conn_(std::move(conn)), params_(params) {}

  Result<RpcResponse> Call(const RpcRequest& request);

  net::TcpConnection conn_;
  mtree::TreeParams params_;
};

/// \brief Serves any ServerApi on `listener`: accepts connections one at a time
/// and answers request frames until the peer disconnects. Returns after a
/// kShutdown request (or on a listener error).
Status Serve(net::TcpListener* listener, cvs::ServerApi* server);

}  // namespace rpc
}  // namespace tcvs
