#pragma once

#include <memory>
#include <string>

#include "cvs/trusted.h"
#include "net/socket.h"
#include "rpc/protocol.h"
#include "rpc/retry.h"
#include "util/audit.h"
#include "util/metrics.h"
#include "util/random.h"

namespace tcvs {
namespace rpc {

/// \name Fault points consulted by the serve loop (see util/fault.h).
/// @{
/// Drop the connection after receiving a request, BEFORE executing it
/// (process died mid-request; the transaction never happened).
inline constexpr char kFaultServeDropBefore[] = "rpc.serve.drop_before";
/// Execute the request, then drop the connection WITHOUT replying (the
/// reply was lost; the transaction DID happen — exercises replay dedup).
inline constexpr char kFaultServeDropAfter[] = "rpc.serve.drop_after";
/// Serve() returns immediately, as if the process was killed. The caller
/// (test harness) can then re-open state and serve again — a restart.
inline constexpr char kFaultServeCrash[] = "rpc.serve.crash";
/// @}

/// \brief Transport configuration for RemoteServer.
struct RemoteOptions {
  RetryPolicy retry;
  /// Deadline for each TCP connect (0 = none).
  int connect_timeout_ms = 2000;
  /// Deadline for each frame send/receive (0 = none). Bounds how long a
  /// hung server can wedge a client before the retry machinery kicks in.
  int io_timeout_ms = 5000;
};

/// \brief cvs::ServerApi over a TCP connection to a `tcvsd` server: the
/// verifying client's transport for real deployments.
///
/// The transport is resilient: every call carries a request id and runs
/// under a RetryPolicy — on a transport fault (connection dropped, peer
/// unreachable, deadline elapsed) it reconnects with exponential backoff
/// and replays the in-flight request. The serve loop's per-id reply cache
/// makes the replay idempotent, so the protocol's operation counters never
/// skip. Non-transport failures — corruption, verification — are NEVER
/// retried: on a verified channel a malformed reply is evidence of
/// misbehavior, and retrying would let a flaky adversary probe silently.
class RemoteServer : public cvs::ServerApi {
 public:
  static Result<std::unique_ptr<RemoteServer>> Connect(
      const std::string& host, uint16_t port, RemoteOptions options = {});

  /// ServerApi replies stay quarantined across the transport: the payload is
  /// parsed (structure only) and re-wrapped; VerifyingClient's chain walk is
  /// still the only endorser.
  Result<util::Tainted<cvs::ServerReply>> Transact(
      uint32_t user, const std::vector<cvs::FileOp>& ops) override;
  Result<util::Tainted<cvs::ListReply>> List(uint32_t user,
                                             const std::string& prefix) override;
  Result<util::Tainted<cvs::LogCheckpointReply>> LogCheckpoint(
      uint64_t old_size) override;
  mtree::TreeParams tree_params() const override { return params_; }

  /// Asks the server's serving loop to exit (operator tooling / tests).
  Status Shutdown();

  /// Fetches the server process's metrics snapshot (observability; powers
  /// `tcvs stats`). Read-only and side-effect free on the server.
  Result<util::MetricsSnapshot> Stats();

  /// Drains and fetches the server process's trace ring (powers
  /// `tcvs trace`). The server's buffer is cleared by this call.
  Result<util::TraceDump> TraceDump();

  /// Fetches the server process's security audit-event log (powers
  /// `tcvs events`). Read-only; the server's log is NOT cleared.
  Result<std::vector<util::AuditEvent>> Events();

  /// Collects a `seconds`-long CPU profile on the server at `hz` and returns
  /// it as collapsed/folded-stack text (powers `tcvs profile`; the non-admin
  /// path to `/pprofz`). Blocks for the window; the transport deadline is
  /// widened to cover it. Server-side clamping applies
  /// (util::kMin/MaxProfileSeconds/Hz); a concurrent window returns
  /// FailedPrecondition("profiler busy").
  Result<std::string> Profile(int seconds, int hz);

  /// Transport-level retries performed so far (observability / tests).
  uint64_t transport_retries() const { return retries_; }
  /// Reconnects performed after the initial connection (observability).
  uint64_t reconnects() const { return reconnects_; }

 private:
  RemoteServer(std::string host, uint16_t port, RemoteOptions options,
               net::TcpConnection conn, mtree::TreeParams params,
               uint64_t rng_seed)
      : host_(std::move(host)),
        port_(port),
        options_(options),
        conn_(std::move(conn)),
        params_(params),
        rng_(rng_seed) {}

  /// One reconnect attempt (no backoff of its own).
  Status Reconnect();

  /// Sends `request` and awaits the reply, retrying transport faults per
  /// the policy. Assigns the request id.
  Result<RpcResponse> Call(RpcRequest request);

  std::string host_;
  uint16_t port_ = 0;
  RemoteOptions options_;
  net::TcpConnection conn_;
  mtree::TreeParams params_;
  util::Rng rng_;
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
};

/// \brief Concurrency knobs for Serve().
struct ServeOptions {
  /// Worker threads answering request frames. Each worker owns one
  /// connection at a time, so replies on a connection stay ordered.
  int num_threads = 4;
  /// Accepted connections waiting for a free worker. When full, the accept
  /// loop stops accepting — kernel backlog is the backpressure.
  size_t queue_capacity = 64;
  /// Bounded-blocking slice for accept/receive waits: the latency bound on
  /// noticing shutdown, NOT a client-visible deadline (idle connections
  /// live forever).
  int poll_interval_ms = 50;
  /// Slow-op capture threshold: a served request whose whole-frame handling
  /// exceeds this emits a JSON-lines slow-op record (method, latency, trace
  /// id, span subtree, per-request cost) on stderr and bumps
  /// `rpc.serve.slow_ops_total`. 0 (default) disables capture and its
  /// per-request span collection overhead.
  uint64_t slow_op_us = 0;
};

/// \brief Serves any ServerApi on `listener` with a multi-threaded accept
/// loop: the calling thread accepts connections into a bounded queue and a
/// pool of `options.num_threads` workers answers request frames until each
/// peer disconnects. Returns after a kShutdown request (OK) or on a
/// listener error / injected crash, with every worker joined.
///
/// Replies to counter-bearing requests (Transact/List) are cached per
/// request id (bounded LRU), so a client replaying a request whose reply
/// was lost gets the original reply back instead of a second execution.
/// The lookup→execute→insert triple runs under one lock, so two concurrent
/// retries of the same request id can never both execute — and the
/// underlying ServerApi (which no annotation marks thread-safe) is only
/// ever entered by one worker at a time. The win from the pool is I/O
/// overlap: frame parsing, serialization, and socket transfers of N
/// clients proceed in parallel around the serialized execute.
Status Serve(net::TcpListener* listener, cvs::ServerApi* server,
             ServeOptions options = {});

}  // namespace rpc
}  // namespace tcvs
