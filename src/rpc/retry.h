#pragma once

#include <cstdint>

#include "util/random.h"
#include "util/status.h"

namespace tcvs {
namespace rpc {

/// \brief Bounded exponential backoff with jitter — the client-side budget
/// for riding out benign transport faults (dropped connections, a
/// restarting tcvsd, a hung peer hitting its deadline).
///
/// Defaults: 6 attempts, 20ms → 2s exponential, ±25% jitter; ~4s worst-case
/// wall clock before the transport gives up with kUnavailable.
struct RetryPolicy {
  /// Total tries, including the first (1 = no retries).
  int max_attempts = 6;
  int initial_backoff_ms = 20;
  int max_backoff_ms = 2000;
  double multiplier = 2.0;
  /// Backoff is drawn uniformly from [b*(1-jitter), b*(1+jitter)] so a
  /// fleet of clients does not reconnect in lockstep after a restart.
  double jitter = 0.25;

  /// Backoff before retry number `retry` (0-based: the wait between attempt
  /// 1 and attempt 2 is BackoffMs(0, ...)).
  int BackoffMs(int retry, util::Rng* rng) const;
};

/// \brief True for transport-level failures worth retrying: the peer was
/// unreachable, the connection died, or a deadline elapsed. Corruption and
/// verification failures are NEVER retryable — a reply that fails its
/// cryptographic checks is evidence, not noise, and must fail loud.
bool IsRetryableTransport(const Status& status);

}  // namespace rpc
}  // namespace tcvs
