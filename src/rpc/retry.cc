#include "rpc/retry.h"

namespace tcvs {
namespace rpc {

int RetryPolicy::BackoffMs(int retry, util::Rng* rng) const {
  double backoff = initial_backoff_ms;
  for (int i = 0; i < retry; ++i) {
    backoff *= multiplier;
    if (backoff >= max_backoff_ms) break;
  }
  if (backoff > max_backoff_ms) backoff = max_backoff_ms;
  if (rng != nullptr && jitter > 0) {
    backoff *= 1.0 - jitter + 2.0 * jitter * rng->NextDouble();
  }
  return backoff < 1.0 ? 1 : static_cast<int>(backoff);
}

bool IsRetryableTransport(const Status& status) {
  return status.IsUnavailable() || status.IsIOError() ||
         status.IsDeadlineExceeded();
}

}  // namespace rpc
}  // namespace tcvs
