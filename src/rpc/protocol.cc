#include "rpc/protocol.h"

#include "util/serde.h"

namespace tcvs {
namespace rpc {

void SerializeFileOp(const cvs::FileOp& op, util::Writer* w) {
  w->PutU8(static_cast<uint8_t>(op.kind));
  w->PutString(op.path);
  w->PutString(op.content);
  w->PutU64(op.base_revision);
}

Result<cvs::FileOp> DeserializeFileOp(util::Reader* r) {
  cvs::FileOp op;
  TCVS_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > 2) return Status::InvalidArgument("bad file-op kind");
  op.kind = static_cast<cvs::FileOp::Kind>(kind);
  TCVS_ASSIGN_OR_RETURN(op.path, r->GetString());
  TCVS_ASSIGN_OR_RETURN(op.content, r->GetString());
  TCVS_ASSIGN_OR_RETURN(op.base_revision, r->GetU64());
  return op;
}

Bytes RpcRequest::Serialize() const {
  util::Writer w;
  w.PutU8(kRpcVersionEscape);
  w.PutU8(kRpcWireVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU32(user);
  w.PutU32(static_cast<uint32_t>(ops.size()));
  for (const auto& op : ops) SerializeFileOp(op, &w);
  w.PutString(prefix);
  w.PutU64(old_size);
  w.PutU64(request_id);
  w.PutU64(trace_id);
  w.PutU64(span_id);
  w.PutU64(parent_span_id);
  w.PutU32(profile_seconds);
  w.PutU32(profile_hz);
  return w.Take();
}

Result<util::Tainted<RpcRequest>> RpcRequest::Deserialize(const Bytes& data) {
  util::Reader r(data);
  RpcRequest req;
  TCVS_ASSIGN_OR_RETURN(uint8_t first, r.GetU8());
  uint8_t version = 1;
  uint8_t type = first;
  if (first == kRpcVersionEscape) {
    TCVS_ASSIGN_OR_RETURN(version, r.GetU8());
    if (version < 2 || version > kRpcWireVersion) {
      return Status::InvalidArgument("unsupported rpc wire version");
    }
    TCVS_ASSIGN_OR_RETURN(type, r.GetU8());
  }
  // Older peers predate the newer types; reject what their wire version
  // could not have named (v1: through kStats, v2: through kEvents).
  const uint8_t max_type = version >= 3 ? 9 : version == 2 ? 8 : 6;
  if (type < 1 || type > max_type) {
    return Status::InvalidArgument("bad rpc type");
  }
  req.type = static_cast<RpcType>(type);
  TCVS_ASSIGN_OR_RETURN(req.user, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  if (n > 1u << 16) return Status::InvalidArgument("too many ops");
  for (uint32_t i = 0; i < n; ++i) {
    TCVS_ASSIGN_OR_RETURN(cvs::FileOp op, DeserializeFileOp(&r));
    req.ops.push_back(std::move(op));
  }
  TCVS_ASSIGN_OR_RETURN(req.prefix, r.GetString());
  TCVS_ASSIGN_OR_RETURN(req.old_size, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(req.request_id, r.GetU64());
  if (version >= 2) {
    TCVS_ASSIGN_OR_RETURN(req.trace_id, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(req.span_id, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(req.parent_span_id, r.GetU64());
  }
  if (version >= 3) {
    TCVS_ASSIGN_OR_RETURN(req.profile_seconds, r.GetU32());
    TCVS_ASSIGN_OR_RETURN(req.profile_hz, r.GetU32());
  }
  return util::Tainted<RpcRequest>(std::move(req));
}

RpcResponse RpcResponse::FromStatus(const Status& status) {
  RpcResponse resp;
  resp.status_code = static_cast<uint32_t>(status.code());
  resp.status_message = status.message();
  return resp;
}

Status RpcResponse::ToStatus() const {
  if (status_code == 0) return Status::OK();
  return Status(static_cast<StatusCode>(status_code), status_message);
}

Bytes RpcResponse::Serialize() const {
  util::Writer w;
  w.PutU32(status_code);
  w.PutString(status_message);
  w.PutBytes(payload);
  return w.Take();
}

Result<util::Tainted<RpcResponse>> RpcResponse::Deserialize(const Bytes& data) {
  util::Reader r(data);
  RpcResponse resp;
  TCVS_ASSIGN_OR_RETURN(resp.status_code, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(resp.status_message, r.GetString());
  TCVS_ASSIGN_OR_RETURN(resp.payload, r.GetBytes());
  return util::Tainted<RpcResponse>(std::move(resp));
}

Result<RpcResponse> CheckResponseEnvelope(util::Tainted<RpcResponse> resp) {
  const uint32_t code = resp.untrusted().status_code;
  if (code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::VerificationFailure("rpc response carries unknown status code");
  }
  return TCVS_ENDORSE(std::move(resp), EnvelopeChecked{});
}

Result<RpcRequest> CheckRequestEnvelope(util::Tainted<RpcRequest> req) {
  return TCVS_ENDORSE(std::move(req), EnvelopeChecked{});
}

}  // namespace rpc
}  // namespace tcvs
