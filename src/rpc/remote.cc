#include "rpc/remote.h"

#include <chrono>
#include <deque>
#include <random>
#include <thread>
#include <unordered_map>

#include "util/fault.h"
#include "util/logging.h"
#include "util/serde.h"

namespace tcvs {
namespace rpc {

namespace {

Bytes SerializeParams(const mtree::TreeParams& params) {
  util::Writer w;
  w.PutU64(params.max_leaf_entries);
  w.PutU64(params.max_internal_keys);
  return w.Take();
}

Result<mtree::TreeParams> DeserializeParams(const Bytes& data) {
  util::Reader r(data);
  mtree::TreeParams params;
  TCVS_ASSIGN_OR_RETURN(uint64_t leaf, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(uint64_t internal, r.GetU64());
  params.max_leaf_entries = leaf;
  params.max_internal_keys = internal;
  return params;
}

uint64_t SeedFromOs() {
  std::random_device rd;
  uint64_t hi = rd(), lo = rd();
  uint64_t t = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return (hi << 32) ^ lo ^ t;
}

/// A payload that fails to parse on a *successfully framed* reply is not a
/// transport fault: the channel delivered exactly what the untrusted server
/// sent. Surface it as a verification failure — loud, never retried.
template <typename T>
Result<T> DeserializeVerified(const Bytes& payload, const char* what) {
  auto parsed = T::Deserialize(payload);
  if (!parsed.ok()) {
    return Status::VerificationFailure(std::string("malformed ") + what +
                                       " from server: " +
                                       parsed.status().ToString());
  }
  return parsed;
}

}  // namespace

Result<std::unique_ptr<RemoteServer>> RemoteServer::Connect(
    const std::string& host, uint16_t port, RemoteOptions options) {
  util::Rng rng(SeedFromOs());
  Status last = Status::Unavailable("no connect attempt made");
  for (int attempt = 0; attempt < options.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options.retry.BackoffMs(attempt - 1, &rng)));
    }
    auto conn_or =
        net::TcpConnection::Connect(host, port, options.connect_timeout_ms);
    if (!conn_or.ok()) {
      if (!IsRetryableTransport(conn_or.status())) return conn_or.status();
      last = conn_or.status();
      continue;
    }
    net::TcpConnection conn = std::move(conn_or).ValueOrDie();
    conn.set_io_timeout_ms(options.io_timeout_ms);
    // Fetch tree parameters so the client can replay proofs.
    RpcRequest req;
    req.type = RpcType::kGetParams;
    Status st = conn.SendFrame(req.Serialize());
    Result<Bytes> frame = st.ok() ? conn.ReceiveFrame() : st;
    if (!frame.ok()) {
      if (!IsRetryableTransport(frame.status())) return frame.status();
      last = frame.status();
      continue;
    }
    TCVS_ASSIGN_OR_RETURN(RpcResponse resp, RpcResponse::Deserialize(*frame));
    TCVS_RETURN_NOT_OK(resp.ToStatus());
    TCVS_ASSIGN_OR_RETURN(mtree::TreeParams params,
                          DeserializeParams(resp.payload));
    return std::unique_ptr<RemoteServer>(
        new RemoteServer(host, port, options, std::move(conn), params,
                         rng.Next()));
  }
  return Status::Unavailable(
      "server unreachable after " + std::to_string(options.retry.max_attempts) +
      " attempts; last error: " + last.ToString());
}

Status RemoteServer::Reconnect() {
  auto conn_or =
      net::TcpConnection::Connect(host_, port_, options_.connect_timeout_ms);
  if (!conn_or.ok()) return conn_or.status();
  conn_ = std::move(conn_or).ValueOrDie();
  conn_.set_io_timeout_ms(options_.io_timeout_ms);
  ++reconnects_;
  return Status::OK();
}

Result<RpcResponse> RemoteServer::Call(RpcRequest request) {
  // One id per logical call, shared by all retries: the serve loop's reply
  // cache turns a replayed execution into a replayed *reply*.
  do {
    request.request_id = rng_.Next();
  } while (request.request_id == 0);
  const Bytes wire = request.Serialize();

  Status last = Status::OK();
  for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options_.retry.BackoffMs(attempt - 1, &rng_)));
    }
    if (!conn_.valid()) {
      Status st = Reconnect();
      if (!st.ok()) {
        if (!IsRetryableTransport(st)) return st;
        last = st;
        continue;
      }
    }
    Status st = conn_.SendFrame(wire);
    Result<Bytes> frame = st.ok() ? conn_.ReceiveFrame() : st;
    if (!frame.ok()) {
      if (!IsRetryableTransport(frame.status())) return frame.status();
      last = frame.status();
      conn_.Close();  // Stream state is unknown; reconnect on next attempt.
      continue;
    }
    auto resp = RpcResponse::Deserialize(*frame);
    if (!resp.ok()) {
      // The frame arrived intact but does not parse: corruption on a
      // verified channel, not a transport fault. Fail loud, never retry.
      return Status::VerificationFailure("malformed RPC response: " +
                                         resp.status().ToString());
    }
    return resp;
  }
  return Status::Unavailable(
      "server unreachable after " +
      std::to_string(options_.retry.max_attempts) +
      " attempts; last error: " + last.ToString());
}

Result<cvs::ServerReply> RemoteServer::Transact(
    uint32_t user, const std::vector<cvs::FileOp>& ops) {
  RpcRequest req;
  req.type = RpcType::kTransact;
  req.user = user;
  req.ops = ops;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  return DeserializeVerified<cvs::ServerReply>(resp.payload, "transact reply");
}

Result<cvs::ListReply> RemoteServer::List(uint32_t user,
                                          const std::string& prefix) {
  RpcRequest req;
  req.type = RpcType::kList;
  req.user = user;
  req.prefix = prefix;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  return DeserializeVerified<cvs::ListReply>(resp.payload, "list reply");
}

Result<cvs::LogCheckpointReply> RemoteServer::LogCheckpoint(uint64_t old_size) {
  RpcRequest req;
  req.type = RpcType::kLogCheckpoint;
  req.old_size = old_size;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  return DeserializeVerified<cvs::LogCheckpointReply>(resp.payload,
                                                      "log checkpoint reply");
}

Status RemoteServer::Shutdown() {
  RpcRequest req;
  req.type = RpcType::kShutdown;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

namespace {

/// Bounded request-id → serialized-reply cache: enough to cover every
/// client's in-flight request many times over, small enough to be free.
class ReplyCache {
 public:
  static constexpr size_t kCapacity = 128;

  const Bytes* Find(uint64_t id) const {
    auto it = replies_.find(id);
    return it == replies_.end() ? nullptr : &it->second;
  }

  void Insert(uint64_t id, Bytes reply) {
    if (replies_.count(id) > 0) return;
    if (order_.size() >= kCapacity) {
      replies_.erase(order_.front());
      order_.pop_front();
    }
    order_.push_back(id);
    replies_.emplace(id, std::move(reply));
  }

 private:
  std::unordered_map<uint64_t, Bytes> replies_;
  std::deque<uint64_t> order_;
};

}  // namespace

Status Serve(net::TcpListener* listener, cvs::ServerApi* server) {
  auto& faults = util::FaultInjector::Instance();
  ReplyCache reply_cache;
  for (;;) {
    auto conn_or = listener->Accept();
    if (!conn_or.ok()) return conn_or.status();
    net::TcpConnection conn = std::move(conn_or).ValueOrDie();
    for (;;) {
      auto frame_or = conn.ReceiveFrame();
      if (!frame_or.ok()) break;  // Peer disconnected; accept the next one.

      if (faults.ShouldFail(kFaultServeCrash)) {
        // Simulated process death: the request was received but nothing
        // executed; the harness restarts the server from durable state.
        return Status::Unavailable("fault injected: " +
                                   std::string(kFaultServeCrash));
      }
      if (faults.ShouldFail(kFaultServeDropBefore)) break;

      RpcResponse resp;
      bool shutdown = false;
      bool cacheable = false;
      uint64_t request_id = 0;
      const Bytes* cached = nullptr;
      auto req_or = RpcRequest::Deserialize(*frame_or);
      if (!req_or.ok()) {
        resp = RpcResponse::FromStatus(req_or.status());
      } else {
        request_id = req_or->request_id;
        // Counter-bearing transactions replay idempotently via the cache;
        // GetParams/LogCheckpoint are naturally idempotent, Shutdown is not
        // a transaction.
        cacheable = request_id != 0 && (req_or->type == RpcType::kTransact ||
                                        req_or->type == RpcType::kList);
        if (cacheable) cached = reply_cache.Find(request_id);
        if (cached != nullptr) {
          // Replay of a request we already executed: return the original
          // reply; the operation counter must not advance twice.
        } else {
          switch (req_or->type) {
            case RpcType::kGetParams:
              resp.payload = SerializeParams(server->tree_params());
              break;
            case RpcType::kTransact: {
              auto reply_or = server->Transact(req_or->user, req_or->ops);
              if (!reply_or.ok()) {
                resp = RpcResponse::FromStatus(reply_or.status());
              } else {
                resp.payload = reply_or->Serialize();
              }
              break;
            }
            case RpcType::kList: {
              auto reply_or = server->List(req_or->user, req_or->prefix);
              if (!reply_or.ok()) {
                resp = RpcResponse::FromStatus(reply_or.status());
              } else {
                resp.payload = reply_or->Serialize();
              }
              break;
            }
            case RpcType::kLogCheckpoint: {
              auto reply_or = server->LogCheckpoint(req_or->old_size);
              if (!reply_or.ok()) {
                resp = RpcResponse::FromStatus(reply_or.status());
              } else {
                resp.payload = reply_or->Serialize();
              }
              break;
            }
            case RpcType::kShutdown:
              shutdown = true;
              break;
          }
        }
      }
      Bytes wire = cached != nullptr ? *cached : resp.Serialize();
      if (cacheable && cached == nullptr) {
        reply_cache.Insert(request_id, wire);
      }
      if (faults.ShouldFail(kFaultServeDropAfter)) break;
      Status send = conn.SendFrame(wire);
      if (shutdown || !send.ok()) {
        if (shutdown) return Status::OK();
        break;
      }
    }
  }
}

}  // namespace rpc
}  // namespace tcvs
