#include "rpc/remote.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <optional>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/audit.h"
#include "util/cost.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/profiler.h"
#include "util/serde.h"

namespace tcvs {
namespace rpc {

namespace {

Bytes SerializeParams(const mtree::TreeParams& params) {
  util::Writer w;
  w.PutU64(params.max_leaf_entries);
  w.PutU64(params.max_internal_keys);
  return w.Take();
}

Result<mtree::TreeParams> DeserializeParams(const Bytes& data) {
  util::Reader r(data);
  mtree::TreeParams params;
  TCVS_ASSIGN_OR_RETURN(uint64_t leaf, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(uint64_t internal, r.GetU64());
  params.max_leaf_entries = leaf;
  params.max_internal_keys = internal;
  return params;
}

uint64_t SeedFromOs() {
  std::random_device rd;
  uint64_t hi = rd(), lo = rd();
  uint64_t t = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return (hi << 32) ^ lo ^ t;
}

/// A payload that fails to parse on a *successfully framed* reply is not a
/// transport fault: the channel delivered exactly what the untrusted server
/// sent. Surface it as a verification failure — loud, never retried.
/// The parse yields a still-quarantined value: structural validity is not
/// endorsement, and the Tainted wrapper rides back to VerifyingClient intact.
template <typename T>
Result<util::Tainted<T>> DeserializeVerified(const Bytes& payload,
                                             const char* what) {
  auto parsed = T::Deserialize(payload);
  if (!parsed.ok()) {
    return Status::VerificationFailure(std::string("malformed ") + what +
                                       " from server: " +
                                       parsed.status().ToString());
  }
  return parsed;
}

/// Per-method client call latency, indexed by RpcType (1-based, bounds
/// guaranteed by RpcRequest construction). Literal names keep the
/// metric-name lint rule able to see the full inventory.
util::LatencyHistogram* ClientMethodLatency(RpcType type) {
  static util::LatencyHistogram* const kLatency[] = {
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.client.transact.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.client.get_params.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.client.shutdown.latency_us"),
      util::MetricsRegistry::Instance().GetLatency("rpc.client.list.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.client.log_checkpoint.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.client.stats.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.client.trace_dump.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.client.events.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.client.profile.latency_us"),
  };
  return kLatency[static_cast<size_t>(type) - 1];
}

/// Stable lowercase method name, same indexing (slow-op records, tooling).
const char* RpcMethodName(RpcType type) {
  static const char* const kNames[] = {
      "transact",  "get_params", "shutdown",   "list",
      "log_checkpoint", "stats", "trace_dump", "events", "profile",
  };
  return kNames[static_cast<size_t>(type) - 1];
}

/// Per-method serve-side latency (whole frame: parse, execute, serialize),
/// same indexing. Recorded with the request's trace id as an exemplar, so a
/// p99 spike on /metrics links to a joinable trace.
util::LatencyHistogram* ServeMethodLatency(RpcType type) {
  static util::LatencyHistogram* const kLatency[] = {
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.serve.transact.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.serve.get_params.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.serve.shutdown.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.serve.list.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.serve.log_checkpoint.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.serve.stats.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.serve.trace_dump.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.serve.events.latency_us"),
      util::MetricsRegistry::Instance().GetLatency(
          "rpc.serve.profile.latency_us"),
  };
  return kLatency[static_cast<size_t>(type) - 1];
}

/// Per-method aggregated request cost, for the methods that do real
/// protocol work (the observability methods cost nothing interesting).
/// Each field mirrors one util::CostCounters field; /varz divides by the
/// method's requests_total to report cost per operation.
struct MethodCostCounters {
  util::Counter* hashes;
  util::Counter* bytes_hashed;
  util::Counter* sig_verifies;
  util::Counter* vo_bytes;
  util::Counter* wal_appends;
  util::Counter* wal_fsync_wait_us;
  util::Counter* queue_us;
  util::Counter* work_us;

  /// `work_us` is derived by the caller as latency − queue − fsync wait
  /// (clamped at 0), so per method `queue + work + fsync_wait` sums to the
  /// recorded latency — the decomposition `tcvs top` and `/varz` report.
  void Add(const util::CostCounters& cost, uint64_t derived_work_us) const {
    if (cost.hashes != 0) hashes->Increment(cost.hashes);
    if (cost.bytes_hashed != 0) bytes_hashed->Increment(cost.bytes_hashed);
    if (cost.sig_verifies != 0) sig_verifies->Increment(cost.sig_verifies);
    if (cost.vo_bytes_built != 0) vo_bytes->Increment(cost.vo_bytes_built);
    if (cost.wal_appends != 0) wal_appends->Increment(cost.wal_appends);
    if (cost.wal_fsync_wait_us != 0) {
      wal_fsync_wait_us->Increment(cost.wal_fsync_wait_us);
    }
    if (cost.queue_us != 0) queue_us->Increment(cost.queue_us);
    if (derived_work_us != 0) work_us->Increment(derived_work_us);
  }
};

const MethodCostCounters* ServeMethodCost(RpcType type) {
  auto& registry = util::MetricsRegistry::Instance();
  static const MethodCostCounters kTransact = {
      registry.GetCounter("rpc.serve.transact.cost.hashes_total"),
      registry.GetCounter("rpc.serve.transact.cost.bytes_hashed_total"),
      registry.GetCounter("rpc.serve.transact.cost.sig_verifies_total"),
      registry.GetCounter("rpc.serve.transact.cost.vo_bytes_total"),
      registry.GetCounter("rpc.serve.transact.cost.wal_appends_total"),
      registry.GetCounter("rpc.serve.transact.cost.wal_fsync_wait_us_total"),
      registry.GetCounter("rpc.serve.transact.cost.queue_us_total"),
      registry.GetCounter("rpc.serve.transact.cost.work_us_total"),
  };
  static const MethodCostCounters kList = {
      registry.GetCounter("rpc.serve.list.cost.hashes_total"),
      registry.GetCounter("rpc.serve.list.cost.bytes_hashed_total"),
      registry.GetCounter("rpc.serve.list.cost.sig_verifies_total"),
      registry.GetCounter("rpc.serve.list.cost.vo_bytes_total"),
      registry.GetCounter("rpc.serve.list.cost.wal_appends_total"),
      registry.GetCounter("rpc.serve.list.cost.wal_fsync_wait_us_total"),
      registry.GetCounter("rpc.serve.list.cost.queue_us_total"),
      registry.GetCounter("rpc.serve.list.cost.work_us_total"),
  };
  static const MethodCostCounters kLogCheckpoint = {
      registry.GetCounter("rpc.serve.log_checkpoint.cost.hashes_total"),
      registry.GetCounter("rpc.serve.log_checkpoint.cost.bytes_hashed_total"),
      registry.GetCounter("rpc.serve.log_checkpoint.cost.sig_verifies_total"),
      registry.GetCounter("rpc.serve.log_checkpoint.cost.vo_bytes_total"),
      registry.GetCounter("rpc.serve.log_checkpoint.cost.wal_appends_total"),
      registry.GetCounter(
          "rpc.serve.log_checkpoint.cost.wal_fsync_wait_us_total"),
      registry.GetCounter("rpc.serve.log_checkpoint.cost.queue_us_total"),
      registry.GetCounter("rpc.serve.log_checkpoint.cost.work_us_total"),
  };
  switch (type) {
    case RpcType::kTransact: return &kTransact;
    case RpcType::kList: return &kList;
    case RpcType::kLogCheckpoint: return &kLogCheckpoint;
    default: return nullptr;
  }
}

/// Per-method serve-side request counts, same indexing.
util::Counter* ServeMethodRequests(RpcType type) {
  static util::Counter* const kRequests[] = {
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.serve.transact.requests_total"),
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.serve.get_params.requests_total"),
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.serve.shutdown.requests_total"),
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.serve.list.requests_total"),
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.serve.log_checkpoint.requests_total"),
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.serve.stats.requests_total"),
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.serve.trace_dump.requests_total"),
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.serve.events.requests_total"),
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.serve.profile.requests_total"),
  };
  return kRequests[static_cast<size_t>(type) - 1];
}

}  // namespace

Result<std::unique_ptr<RemoteServer>> RemoteServer::Connect(
    const std::string& host, uint16_t port, RemoteOptions options) {
  util::Rng rng(SeedFromOs());
  // The handshake is traced like any call: its context rides the request
  // header (same across retries), so the server's handler span joins this
  // trace instead of minting an orphan one.
  TCVS_SPAN("rpc.client.connect");
  const util::SpanContext span_ctx = util::CurrentSpanContext();
  Status last = Status::Unavailable("no connect attempt made");
  for (int attempt = 0; attempt < options.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options.retry.BackoffMs(attempt - 1, &rng)));
    }
    auto conn_or =
        net::TcpConnection::Connect(host, port, options.connect_timeout_ms);
    if (!conn_or.ok()) {
      if (!IsRetryableTransport(conn_or.status())) return conn_or.status();
      last = conn_or.status();
      continue;
    }
    net::TcpConnection conn = std::move(conn_or).ValueOrDie();
    conn.set_io_timeout_ms(options.io_timeout_ms);
    // Fetch tree parameters so the client can replay proofs.
    RpcRequest req;
    req.type = RpcType::kGetParams;
    req.trace_id = span_ctx.trace_id;
    req.span_id = span_ctx.span_id;
    req.parent_span_id = span_ctx.parent_span_id;
    Status st = conn.SendFrame(req.Serialize());
    Result<Bytes> frame = st.ok() ? conn.ReceiveFrame() : st;
    if (!frame.ok()) {
      if (!IsRetryableTransport(frame.status())) return frame.status();
      last = frame.status();
      continue;
    }
    TCVS_ASSIGN_OR_RETURN(util::Tainted<RpcResponse> quarantined,
                          RpcResponse::Deserialize(*frame));
    TCVS_ASSIGN_OR_RETURN(RpcResponse resp,
                          CheckResponseEnvelope(std::move(quarantined)));
    TCVS_RETURN_NOT_OK(resp.ToStatus());
    TCVS_ASSIGN_OR_RETURN(mtree::TreeParams params,
                          DeserializeParams(resp.payload));
    return std::unique_ptr<RemoteServer>(
        new RemoteServer(host, port, options, std::move(conn), params,
                         rng.Next()));
  }
  return Status::Unavailable(
      "server unreachable after " + std::to_string(options.retry.max_attempts) +
      " attempts; last error: " + last.ToString());
}

Status RemoteServer::Reconnect() {
  auto conn_or =
      net::TcpConnection::Connect(host_, port_, options_.connect_timeout_ms);
  if (!conn_or.ok()) return conn_or.status();
  conn_ = std::move(conn_or).ValueOrDie();
  conn_.set_io_timeout_ms(options_.io_timeout_ms);
  ++reconnects_;
  static util::Counter* const reconnects =
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.client.reconnects_total");
  reconnects->Increment();
  return Status::OK();
}

Result<RpcResponse> RemoteServer::Call(RpcRequest request) {
  static util::Counter* const retry_count =
      util::MetricsRegistry::Instance().GetCounter("rpc.client.retries_total");
  static util::Counter* const deadline_count =
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.client.deadline_exceeded_total");
  static util::Counter* const transport_errors =
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.client.transport_errors_total");
  static util::Counter* const bytes_sent =
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.client.bytes_sent_total");
  static util::Counter* const bytes_received =
      util::MetricsRegistry::Instance().GetCounter(
          "rpc.client.bytes_received_total");
  util::LatencyHistogram* const latency = ClientMethodLatency(request.type);
  // The call itself is a span (child of whatever the caller had open); its
  // identity rides the request header so the server's handler spans join
  // this trace. Injection happens before Serialize — every retry carries
  // the same context, like the same request id.
  TCVS_SPAN("rpc.client.call");
  const util::SpanContext span_ctx = util::CurrentSpanContext();
  request.trace_id = span_ctx.trace_id;
  request.span_id = span_ctx.span_id;
  request.parent_span_id = span_ctx.parent_span_id;
  const uint64_t start_us = util::MonotonicMicros();

  // One id per logical call, shared by all retries: the serve loop's reply
  // cache turns a replayed execution into a replayed *reply*.
  do {
    request.request_id = rng_.Next();
  } while (request.request_id == 0);
  const Bytes wire = request.Serialize();

  Status last = Status::OK();
  for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      retry_count->Increment();
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options_.retry.BackoffMs(attempt - 1, &rng_)));
    }
    if (!conn_.valid()) {
      Status st = Reconnect();
      if (!st.ok()) {
        if (!IsRetryableTransport(st)) return st;
        last = st;
        continue;
      }
    }
    Status st = conn_.SendFrame(wire);
    if (st.ok()) bytes_sent->Increment(wire.size());
    Result<Bytes> frame = st.ok() ? conn_.ReceiveFrame() : st;
    if (!frame.ok()) {
      transport_errors->Increment();
      if (frame.status().IsDeadlineExceeded()) deadline_count->Increment();
      if (!IsRetryableTransport(frame.status())) return frame.status();
      last = frame.status();
      conn_.Close();  // Stream state is unknown; reconnect on next attempt.
      continue;
    }
    bytes_received->Increment(frame->size());
    auto resp = RpcResponse::Deserialize(*frame);
    if (!resp.ok()) {
      // The frame arrived intact but does not parse: corruption on a
      // verified channel, not a transport fault. Fail loud, never retry.
      return Status::VerificationFailure("malformed RPC response: " +
                                         resp.status().ToString());
    }
    // Envelope endorsement only: the payload inside remains quarantined
    // until VerifyingClient's chain walk accepts it.
    auto checked = CheckResponseEnvelope(std::move(*resp));
    if (!checked.ok()) return checked.status();  // Never retried either.
    latency->Record(util::MonotonicMicros() - start_us);
    return checked;
  }
  return Status::Unavailable(
      "server unreachable after " +
      std::to_string(options_.retry.max_attempts) +
      " attempts; last error: " + last.ToString());
}

Result<util::Tainted<cvs::ServerReply>> RemoteServer::Transact(
    uint32_t user, const std::vector<cvs::FileOp>& ops) {
  RpcRequest req;
  req.type = RpcType::kTransact;
  req.user = user;
  req.ops = ops;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  return DeserializeVerified<cvs::ServerReply>(resp.payload, "transact reply");
}

Result<util::Tainted<cvs::ListReply>> RemoteServer::List(
    uint32_t user, const std::string& prefix) {
  RpcRequest req;
  req.type = RpcType::kList;
  req.user = user;
  req.prefix = prefix;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  return DeserializeVerified<cvs::ListReply>(resp.payload, "list reply");
}

Result<util::Tainted<cvs::LogCheckpointReply>> RemoteServer::LogCheckpoint(
    uint64_t old_size) {
  RpcRequest req;
  req.type = RpcType::kLogCheckpoint;
  req.old_size = old_size;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  return DeserializeVerified<cvs::LogCheckpointReply>(resp.payload,
                                                      "log checkpoint reply");
}

Status RemoteServer::Shutdown() {
  RpcRequest req;
  req.type = RpcType::kShutdown;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Result<util::MetricsSnapshot> RemoteServer::Stats() {
  RpcRequest req;
  req.type = RpcType::kStats;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  // A stats reply is diagnostic, not verified state: a parse failure is
  // still loud (it indicates version skew or corruption) but reported as
  // what it is.
  auto snap = util::MetricsSnapshot::Deserialize(resp.payload);
  if (!snap.ok()) {
    return Status::InvalidArgument("malformed stats reply from server: " +
                                   snap.status().ToString());
  }
  return snap;
}

Result<util::TraceDump> RemoteServer::TraceDump() {
  RpcRequest req;
  req.type = RpcType::kTraceDump;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  auto dump = util::TraceDump::Deserialize(resp.payload);
  if (!dump.ok()) {
    return Status::InvalidArgument("malformed trace dump from server: " +
                                   dump.status().ToString());
  }
  return dump;
}

Result<std::string> RemoteServer::Profile(int seconds, int hz) {
  RpcRequest req;
  req.type = RpcType::kProfile;
  seconds = std::clamp(seconds, util::kMinProfileSeconds,
                       util::kMaxProfileSeconds);
  req.profile_seconds = static_cast<uint32_t>(seconds);
  req.profile_hz = static_cast<uint32_t>(
      std::clamp(hz, util::kMinProfileHz, util::kMaxProfileHz));
  // The server blocks for the whole window before replying; widen the frame
  // deadline so the wait is not misread as a hung server (and retried,
  // which would just hit "profiler busy").
  const int saved_io_timeout_ms = options_.io_timeout_ms;
  if (saved_io_timeout_ms > 0) {
    options_.io_timeout_ms = saved_io_timeout_ms + seconds * 1000;
    conn_.set_io_timeout_ms(options_.io_timeout_ms);
  }
  auto resp = Call(std::move(req));
  options_.io_timeout_ms = saved_io_timeout_ms;
  if (conn_.valid()) conn_.set_io_timeout_ms(saved_io_timeout_ms);
  TCVS_RETURN_NOT_OK(resp.status());
  TCVS_RETURN_NOT_OK(resp->ToStatus());
  return std::string(resp->payload.begin(), resp->payload.end());
}

Result<std::vector<util::AuditEvent>> RemoteServer::Events() {
  RpcRequest req;
  req.type = RpcType::kEvents;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  auto events = util::AuditLog::Deserialize(resp.payload);
  if (!events.ok()) {
    return Status::InvalidArgument("malformed events reply from server: " +
                                   events.status().ToString());
  }
  return events;
}

namespace {

/// Bounded request-id → serialized-reply cache: enough to cover every
/// client's in-flight request many times over, small enough to be free.
class ReplyCache {
 public:
  static constexpr size_t kCapacity = 128;

  const Bytes* Find(uint64_t id) const {
    auto it = replies_.find(id);
    return it == replies_.end() ? nullptr : &it->second;
  }

  void Insert(uint64_t id, Bytes reply) {
    static util::Counter* const insertions =
        util::MetricsRegistry::Instance().GetCounter(
            "rpc.serve.reply_cache.insertions_total");
    static util::Counter* const evictions =
        util::MetricsRegistry::Instance().GetCounter(
            "rpc.serve.reply_cache.evictions_total");
    if (replies_.count(id) > 0) return;
    if (order_.size() >= kCapacity) {
      replies_.erase(order_.front());
      order_.pop_front();
      evictions->Increment();
    }
    order_.push_back(id);
    replies_.emplace(id, std::move(reply));
    insertions->Increment();
  }

 private:
  std::unordered_map<uint64_t, Bytes> replies_;
  std::deque<uint64_t> order_;
};

/// \brief Everything the accept loop and the worker pool share for one
/// Serve() call. Two lock domains, never held together:
///
///   mu_       — the *execution* lock: reply cache + ServerApi. Held across
///               the cache-lookup → execute → cache-insert triple, so a
///               replayed request id can never execute twice, and the
///               (single-threaded) ServerApi sees one caller at a time.
///   queue_mu_ — the *dispatch* lock: the bounded connection queue.
///
/// Lock hierarchy: queue_mu_ and mu_ are leaves; no code path takes one
/// while holding the other (see ARCHITECTURE.md, "Concurrency model").
class ServeState {
 public:
  ServeState(cvs::ServerApi* api, const ServeOptions& options)
      : api_(api), options_(options) {}

  /// Handles one request frame end to end; returns the wire reply.
  /// Sets *shutdown when the frame was a kShutdown request. On a
  /// well-formed request, *type_out is the parsed method (left untouched
  /// for malformed frames) and *trace_id_out the trace the handler ran
  /// under — the caller feeds both into latency exemplars and slow-op
  /// records.
  Bytes HandleFrame(const Bytes& frame, bool* shutdown, RpcType* type_out,
                    uint64_t* trace_id_out) {
    // `requests` increments strictly before `replies` on every path, so any
    // concurrent Stats snapshot observes replies_total ≤ requests_total.
    static util::Counter* const requests =
        util::MetricsRegistry::Instance().GetCounter(
            "rpc.serve.requests_total");
    static util::Counter* const replies =
        util::MetricsRegistry::Instance().GetCounter("rpc.serve.replies_total");
    static util::Counter* const cache_hits =
        util::MetricsRegistry::Instance().GetCounter(
            "rpc.serve.reply_cache.hits_total");
    static util::Counter* const cache_misses =
        util::MetricsRegistry::Instance().GetCounter(
            "rpc.serve.reply_cache.misses_total");
    static util::Counter* const malformed =
        util::MetricsRegistry::Instance().GetCounter(
            "rpc.serve.malformed_requests_total");
    auto req_or = RpcRequest::Deserialize(frame);
    if (!req_or.ok()) {
      malformed->Increment();
      return RpcResponse::FromStatus(req_or.status()).Serialize();
    }
    // Server-side structural endorsement: the serving process executes
    // whatever a client asks; clients' own verification is what matters.
    auto checked_or = CheckRequestEnvelope(std::move(*req_or));
    if (!checked_or.ok()) {
      malformed->Increment();
      return RpcResponse::FromStatus(checked_or.status()).Serialize();
    }
    const RpcRequest& req = *checked_or;
    // Adopt the caller's trace context before opening any span: every span
    // below — handler, mtree verify, WAL append — attaches to the client's
    // trace, with the client's call span as parent.
    util::ScopedTraceContext trace_ctx(req.trace_id, req.span_id);
    TCVS_SPAN("rpc.serve.handle_frame");
    *type_out = req.type;
    *trace_id_out = util::CurrentSpanContext().trace_id;
    requests->Increment();
    ServeMethodRequests(req.type)->Increment();
    if (req.type == RpcType::kProfile) {
      // Dispatched BEFORE the execution lock: a profile window blocks for
      // seconds, and holding mu_ across it would stall every other request.
      // ProfileWindow serializes concurrent windows itself ("profiler busy").
      RpcResponse resp;
      auto profile_or = util::ProfileWindow(
          static_cast<int>(req.profile_hz),
          static_cast<int>(req.profile_seconds));
      if (!profile_or.ok()) {
        resp = RpcResponse::FromStatus(profile_or.status());
      } else {
        const std::string folded = profile_or->FoldedFormat();
        resp.payload.assign(folded.begin(), folded.end());
      }
      replies->Increment();
      return resp.Serialize();
    }
    // Counter-bearing transactions replay idempotently via the cache;
    // GetParams/LogCheckpoint are naturally idempotent, Shutdown is not a
    // transaction.
    const bool cacheable = req.request_id != 0 &&
                           (req.type == RpcType::kTransact ||
                            req.type == RpcType::kList);
    // Waiting for the execution lock is queue delay, not work: attribute it
    // to the request's cost vector so latency decomposes into
    // queue + work + fsync.
    const uint64_t lock_start_us = util::MonotonicMicros();
    util::MutexLock lock(&mu_);
    const uint64_t lock_wait_us = util::MonotonicMicros() - lock_start_us;
    if (lock_wait_us != 0) {
      if (auto* cost = util::CurrentCostCounters()) {
        cost->queue_us += lock_wait_us;
      }
    }
    if (cacheable) {
      if (const Bytes* hit = reply_cache_.Find(req.request_id)) {
        // Replay of a request we already executed: return the original
        // reply; the operation counter must not advance twice.
        cache_hits->Increment();
        replies->Increment();
        return *hit;
      }
      cache_misses->Increment();
    }
    RpcResponse resp;
    switch (req.type) {
      case RpcType::kGetParams:
        resp.payload = SerializeParams(api_->tree_params());
        break;
      case RpcType::kTransact: {
        auto reply_or = api_->Transact(req.user, req.ops);
        if (!reply_or.ok()) {
          resp = RpcResponse::FromStatus(reply_or.status());
        } else {
          // Pass-through of the quarantined reply: serializing its bytes
          // claims nothing about them (the client re-quarantines on parse).
          resp.payload = reply_or->untrusted().Serialize();
        }
        break;
      }
      case RpcType::kList: {
        auto reply_or = api_->List(req.user, req.prefix);
        if (!reply_or.ok()) {
          resp = RpcResponse::FromStatus(reply_or.status());
        } else {
          // Pass-through of the quarantined reply: serializing its bytes
          // claims nothing about them (the client re-quarantines on parse).
          resp.payload = reply_or->untrusted().Serialize();
        }
        break;
      }
      case RpcType::kLogCheckpoint: {
        auto reply_or = api_->LogCheckpoint(req.old_size);
        if (!reply_or.ok()) {
          resp = RpcResponse::FromStatus(reply_or.status());
        } else {
          // Pass-through of the quarantined reply: serializing its bytes
          // claims nothing about them (the client re-quarantines on parse).
          resp.payload = reply_or->untrusted().Serialize();
        }
        break;
      }
      case RpcType::kShutdown:
        *shutdown = true;
        break;
      case RpcType::kStats:
        // A read-only snapshot of this process's metrics. The registry lock
        // ranks below the serve execution lock `mu_` held here (metrics code
        // never calls back into the serve loop), so this cannot deadlock.
        resp.payload = util::MetricsRegistry::Instance().Snapshot().Serialize();
        break;
      case RpcType::kTraceDump:
        // Drain-and-ship the trace ring (the drain keeps the ring from
        // re-serving old spans; the caller owns stitching dumps together).
        resp.payload = util::TraceDump::FromEvents(
                           util::MetricsRegistry::Instance().DrainTrace())
                           .Serialize();
        break;
      case RpcType::kEvents:
        // Snapshot (not drain): audit history stays queryable by later
        // auditors up to the log's retention bound.
        resp.payload = util::AuditLog::Instance().Serialize();
        break;
      case RpcType::kProfile:
        break;  // Unreachable: dispatched before the execution lock above.
    }
    Bytes wire = resp.Serialize();
    if (cacheable) reply_cache_.Insert(req.request_id, wire);
    replies->Increment();
    return wire;
  }

  /// Accept side: enqueue a connection, blocking while the queue is full.
  /// False once the server is stopping (the connection is dropped). The
  /// enqueue time is stamped so the dequeuing worker can attribute
  /// accepted-but-unserved wait as queue delay on the connection's first
  /// request.
  bool PushConnection(net::TcpConnection conn) {
    static util::Counter* const accepted =
        util::MetricsRegistry::Instance().GetCounter(
            "rpc.serve.connections_total");
    static util::Gauge* const depth =
        util::MetricsRegistry::Instance().GetGauge("rpc.serve.queue_depth");
    util::MutexLock lock(&queue_mu_);
    while (queue_.size() >= options_.queue_capacity && !stopping()) {
      queue_cv_.WaitFor(&queue_mu_, options_.poll_interval_ms);
    }
    if (stopping()) return false;
    queue_.push_back({std::move(conn), util::MonotonicMicros()});
    accepted->Increment();
    depth->Set(static_cast<int64_t>(queue_.size()));
    queue_cv_.SignalAll();
    return true;
  }

  /// Worker side: dequeue the next connection; *queued_us_out gets how long
  /// it sat accepted-but-unserved. False = stopping, no more work
  /// (queued-but-unserved connections are simply closed).
  bool PopConnection(net::TcpConnection* out, uint64_t* queued_us_out) {
    static util::Gauge* const depth =
        util::MetricsRegistry::Instance().GetGauge("rpc.serve.queue_depth");
    util::MutexLock lock(&queue_mu_);
    while (queue_.empty() && !stopping()) {
      queue_cv_.WaitFor(&queue_mu_, options_.poll_interval_ms);
    }
    if (stopping()) return false;
    *out = std::move(queue_.front().conn);
    *queued_us_out = util::MonotonicMicros() - queue_.front().enqueue_us;
    queue_.pop_front();
    depth->Set(static_cast<int64_t>(queue_.size()));
    queue_cv_.SignalAll();
    return true;
  }

  /// Begins shutdown; the FIRST caller's status becomes Serve's return
  /// value (a crash fault and a graceful shutdown may race).
  void RequestStop(Status exit_status) {
    util::MutexLock lock(&queue_mu_);
    if (!stopping_.load(std::memory_order_relaxed)) {
      exit_status_ = std::move(exit_status);
      stopping_.store(true, std::memory_order_release);
    }
    queue_cv_.SignalAll();
  }

  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  Status TakeExitStatus() {
    util::MutexLock lock(&queue_mu_);
    return std::move(exit_status_);
  }

 private:
  /// A connection plus when it entered the dispatch queue (steady clock).
  struct QueuedConnection {
    net::TcpConnection conn;
    uint64_t enqueue_us = 0;
  };

  cvs::ServerApi* const api_ TCVS_PT_GUARDED_BY(mu_);
  const ServeOptions options_;

  // Named: contended waits show up as lock.rpc.serve.*.contention_us
  // histograms and in /lockz (see util/profiler.h).
  util::Mutex mu_{"rpc.serve.execute"};
  ReplyCache reply_cache_ TCVS_GUARDED_BY(mu_);

  util::Mutex queue_mu_{"rpc.serve.queue"};
  util::CondVar queue_cv_;
  std::deque<QueuedConnection> queue_ TCVS_GUARDED_BY(queue_mu_);
  std::atomic<bool> stopping_{false};
  Status exit_status_ TCVS_GUARDED_BY(queue_mu_);
};

/// Answers frames on one connection until the peer disconnects, a fault
/// point severs it, or the server begins stopping. `queued_us` is how long
/// the connection sat accepted-but-unserved; it is charged as queue delay
/// to the FIRST request (the one that actually waited for a worker).
void ServeConnection(ServeState* state, net::TcpConnection* conn,
                     const ServeOptions& options, uint64_t queued_us) {
  auto& faults = util::FaultInjector::Instance();
  bool first_frame = true;
  for (;;) {
    // Wait in bounded slices so a shutdown initiated on another connection
    // is noticed within one poll interval even while this peer is idle.
    Status ready = conn->WaitReadable(options.poll_interval_ms);
    if (!ready.ok()) {
      if (ready.IsDeadlineExceeded() && !state->stopping()) continue;
      return;
    }
    if (state->stopping()) return;
    auto frame_or = conn->ReceiveFrame();
    if (!frame_or.ok()) return;  // Peer disconnected.

    if (faults.ShouldFail(kFaultServeCrash)) {
      // Simulated process death: the request was received but nothing
      // executed; the harness restarts the server from durable state.
      state->RequestStop(Status::Unavailable("fault injected: " +
                                             std::string(kFaultServeCrash)));
      return;
    }
    if (faults.ShouldFail(kFaultServeDropBefore)) return;

    bool shutdown = false;
    RpcType type = static_cast<RpcType>(0);  // Stays 0 on a malformed frame.
    uint64_t trace_id = 0;
    // Per-request accounting: the cost scope captures every hash, signature
    // verify, VO byte, and WAL wait the handler performs on this thread;
    // the span collector (armed only when slow-op capture is on) keeps the
    // request's own span subtree for the slow-op record.
    util::CostScope cost_scope;
    // Connection-queue wait precedes the first frame's handling; it is both
    // charged as queue delay AND folded into that frame's recorded latency,
    // so the decomposition identity `latency = queue + work + fsync` holds
    // exactly (the execution-lock wait inside HandleFrame is already within
    // the handling window).
    const uint64_t conn_queue_us = first_frame ? queued_us : 0;
    if (conn_queue_us != 0) {
      if (auto* cost = util::CurrentCostCounters()) {
        cost->queue_us += conn_queue_us;
      }
    }
    first_frame = false;
    std::optional<util::ScopedSpanCollector> collector;
    if (options.slow_op_us > 0) collector.emplace();
    const uint64_t start_us = util::MonotonicMicros();
    Bytes wire = state->HandleFrame(*frame_or, &shutdown, &type, &trace_id);
    const uint64_t elapsed_us =
        util::MonotonicMicros() - start_us + conn_queue_us;
    if (type != static_cast<RpcType>(0)) {
      ServeMethodLatency(type)->RecordWithExemplar(elapsed_us, trace_id,
                                                   start_us);
      if (const MethodCostCounters* method_cost = ServeMethodCost(type)) {
        // Everything not attributed to queueing or fsync waits is work.
        const util::CostCounters& cost = cost_scope.counters();
        const uint64_t attributed = cost.queue_us + cost.wal_fsync_wait_us;
        const uint64_t work_us =
            elapsed_us > attributed ? elapsed_us - attributed : 0;
        method_cost->Add(cost, work_us);
      }
      if (options.slow_op_us > 0 && elapsed_us >= options.slow_op_us) {
        static util::Counter* const slow_ops =
            util::MetricsRegistry::Instance().GetCounter(
                "rpc.serve.slow_ops_total");
        slow_ops->Increment();
        util::SlowOpRecord record;
        record.method = RpcMethodName(type);
        record.latency_us = elapsed_us;
        record.trace_id = trace_id;
        record.ts_us = start_us;
        record.cost = cost_scope.counters();
        record.spans =
            util::TraceDump::FromEvents(collector->Take()).events;
        // JSON-lines on stderr: greppable next to tcvsd's structured log
        // without entangling the RPC layer with the logger.
        const std::string line = record.JsonFormat();
        std::fprintf(stderr, "%s\n", line.c_str());
      }
    }
    if (faults.ShouldFail(kFaultServeDropAfter)) return;
    Status send = conn->SendFrame(wire);
    if (shutdown) {
      // The shutdown reply is already on the wire (best effort); now stop
      // the accept loop and every worker.
      state->RequestStop(Status::OK());
      return;
    }
    if (!send.ok()) return;
  }
}

void WorkerLoop(ServeState* state, const ServeOptions& options) {
  static util::Gauge* const busy = util::MetricsRegistry::Instance().GetGauge(
      "rpc.serve.busy_workers");
  net::TcpConnection conn;
  uint64_t queued_us = 0;
  while (state->PopConnection(&conn, &queued_us)) {
    busy->Increment();
    ServeConnection(state, &conn, options, queued_us);
    busy->Decrement();
    conn.Close();
  }
}

}  // namespace

Status Serve(net::TcpListener* listener, cvs::ServerApi* server,
             ServeOptions options) {
  if (options.num_threads < 1) options.num_threads = 1;
  if (options.queue_capacity < 1) options.queue_capacity = 1;
  if (options.poll_interval_ms < 1) options.poll_interval_ms = 1;

  // Readiness signal for the admin plane: nonzero while the pool serves.
  static util::Gauge* const workers_gauge =
      util::MetricsRegistry::Instance().GetGauge("rpc.serve.workers");
  workers_gauge->Set(options.num_threads);

  ServeState state(server, options);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i) {
    workers.emplace_back(WorkerLoop, &state, options);
  }

  while (!state.stopping()) {
    auto conn_or = listener->Accept(options.poll_interval_ms);
    if (!conn_or.ok()) {
      if (conn_or.status().IsDeadlineExceeded()) continue;  // Stop check.
      state.RequestStop(conn_or.status());
      break;
    }
    if (!state.PushConnection(std::move(conn_or).ValueOrDie())) break;
  }

  // Stopping (whatever initiated it): workers drain within one poll
  // interval; join them all before returning so no thread outlives Serve.
  for (auto& worker : workers) worker.join();
  workers_gauge->Set(0);
  return state.TakeExitStatus();
}

}  // namespace rpc
}  // namespace tcvs
