#include "rpc/remote.h"

#include "util/logging.h"
#include "util/serde.h"

namespace tcvs {
namespace rpc {

namespace {

Bytes SerializeParams(const mtree::TreeParams& params) {
  util::Writer w;
  w.PutU64(params.max_leaf_entries);
  w.PutU64(params.max_internal_keys);
  return w.Take();
}

Result<mtree::TreeParams> DeserializeParams(const Bytes& data) {
  util::Reader r(data);
  mtree::TreeParams params;
  TCVS_ASSIGN_OR_RETURN(uint64_t leaf, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(uint64_t internal, r.GetU64());
  params.max_leaf_entries = leaf;
  params.max_internal_keys = internal;
  return params;
}

}  // namespace

Result<std::unique_ptr<RemoteServer>> RemoteServer::Connect(
    const std::string& host, uint16_t port) {
  TCVS_ASSIGN_OR_RETURN(net::TcpConnection conn,
                        net::TcpConnection::Connect(host, port));
  // Fetch tree parameters so the client can replay proofs.
  RpcRequest req;
  req.type = RpcType::kGetParams;
  TCVS_RETURN_NOT_OK(conn.SendFrame(req.Serialize()));
  TCVS_ASSIGN_OR_RETURN(Bytes frame, conn.ReceiveFrame());
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, RpcResponse::Deserialize(frame));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  TCVS_ASSIGN_OR_RETURN(mtree::TreeParams params,
                        DeserializeParams(resp.payload));
  return std::unique_ptr<RemoteServer>(
      new RemoteServer(std::move(conn), params));
}

Result<RpcResponse> RemoteServer::Call(const RpcRequest& request) {
  TCVS_RETURN_NOT_OK(conn_.SendFrame(request.Serialize()));
  TCVS_ASSIGN_OR_RETURN(Bytes frame, conn_.ReceiveFrame());
  return RpcResponse::Deserialize(frame);
}

Result<cvs::ServerReply> RemoteServer::Transact(
    uint32_t user, const std::vector<cvs::FileOp>& ops) {
  RpcRequest req;
  req.type = RpcType::kTransact;
  req.user = user;
  req.ops = ops;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(req));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  return cvs::ServerReply::Deserialize(resp.payload);
}

Result<cvs::ListReply> RemoteServer::List(uint32_t user,
                                          const std::string& prefix) {
  RpcRequest req;
  req.type = RpcType::kList;
  req.user = user;
  req.prefix = prefix;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(req));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  return cvs::ListReply::Deserialize(resp.payload);
}

Result<cvs::LogCheckpointReply> RemoteServer::LogCheckpoint(uint64_t old_size) {
  RpcRequest req;
  req.type = RpcType::kLogCheckpoint;
  req.old_size = old_size;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(req));
  TCVS_RETURN_NOT_OK(resp.ToStatus());
  return cvs::LogCheckpointReply::Deserialize(resp.payload);
}

Status RemoteServer::Shutdown() {
  RpcRequest req;
  req.type = RpcType::kShutdown;
  TCVS_ASSIGN_OR_RETURN(RpcResponse resp, Call(req));
  return resp.ToStatus();
}

Status Serve(net::TcpListener* listener, cvs::ServerApi* server) {
  for (;;) {
    auto conn_or = listener->Accept();
    if (!conn_or.ok()) return conn_or.status();
    net::TcpConnection conn = std::move(conn_or).ValueOrDie();
    for (;;) {
      auto frame_or = conn.ReceiveFrame();
      if (!frame_or.ok()) break;  // Peer disconnected; accept the next one.

      RpcResponse resp;
      bool shutdown = false;
      auto req_or = RpcRequest::Deserialize(*frame_or);
      if (!req_or.ok()) {
        resp = RpcResponse::FromStatus(req_or.status());
      } else {
        switch (req_or->type) {
          case RpcType::kGetParams:
            resp.payload = SerializeParams(server->tree_params());
            break;
          case RpcType::kTransact: {
            auto reply_or = server->Transact(req_or->user, req_or->ops);
            if (!reply_or.ok()) {
              resp = RpcResponse::FromStatus(reply_or.status());
            } else {
              resp.payload = reply_or->Serialize();
            }
            break;
          }
          case RpcType::kList: {
            auto reply_or = server->List(req_or->user, req_or->prefix);
            if (!reply_or.ok()) {
              resp = RpcResponse::FromStatus(reply_or.status());
            } else {
              resp.payload = reply_or->Serialize();
            }
            break;
          }
          case RpcType::kLogCheckpoint: {
            auto reply_or = server->LogCheckpoint(req_or->old_size);
            if (!reply_or.ok()) {
              resp = RpcResponse::FromStatus(reply_or.status());
            } else {
              resp.payload = reply_or->Serialize();
            }
            break;
          }
          case RpcType::kShutdown:
            shutdown = true;
            break;
        }
      }
      Status send = conn.SendFrame(resp.Serialize());
      if (shutdown || !send.ok()) {
        if (shutdown) return Status::OK();
        break;
      }
    }
  }
}

}  // namespace rpc
}  // namespace tcvs
