#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace tcvs {
namespace sim {

/// Global round number (the environment's clock). Round m takes place
/// between time m−1 and time m (paper §2.1).
using Round = uint64_t;

/// Agent identifier. The server is a distinguished id; users are small
/// integers; kBroadcast addresses every user via the external broadcast
/// channel (Protocols I/II).
using AgentId = uint32_t;

inline constexpr AgentId kServerId = 0xFFFFFFFE;
inline constexpr AgentId kBroadcast = 0xFFFFFFFD;

/// \brief A message in transit. The kernel treats the payload as opaque
/// bytes; protocol layers serialize their own structures, which also gives
/// byte-accurate communication-overhead measurements.
struct Message {
  AgentId from = 0;
  AgentId to = 0;
  /// Protocol-defined tag (see core/wire.h).
  uint32_t type = 0;
  Bytes payload;
  /// Round at which the kernel hands the message to the recipient.
  Round deliver_at = 0;
  /// True when this message travelled on the user-to-user broadcast channel
  /// rather than through the server (external communication, §2.2.4).
  bool external = false;
};

/// \brief Per-channel traffic statistics, the basis of the communication
/// overhead experiments.
struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t external_messages = 0;
  uint64_t external_bytes = 0;

  void Add(const Message& m) {
    ++messages;
    bytes += m.payload.size();
    if (m.external) {
      ++external_messages;
      external_bytes += m.payload.size();
    }
  }
};

}  // namespace sim
}  // namespace tcvs
