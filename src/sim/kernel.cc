#include "sim/kernel.h"

#include <algorithm>

#include "util/audit.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace tcvs {
namespace sim {

void RoundContext::Send(AgentId to, uint32_t type, Bytes payload) {
  Message m;
  m.from = self_;
  m.to = to;
  m.type = type;
  m.payload = std::move(payload);
  m.deliver_at = round_ + kernel_->message_delay();
  // Any user-to-user message bypasses the server and therefore counts as
  // external communication (§2.2.4), unicast or broadcast alike.
  m.external = kernel_->IsUser(self_) && kernel_->IsUser(to);
  kernel_->Enqueue(std::move(m));
}

void RoundContext::Broadcast(uint32_t type, Bytes payload) {
  for (AgentId uid : kernel_->users_) {
    if (uid == self_) continue;
    Message m;
    m.from = self_;
    m.to = uid;
    m.type = type;
    m.payload = payload;
    m.deliver_at = round_ + kernel_->message_delay();
    m.external = true;
    kernel_->Enqueue(std::move(m));
  }
}

void RoundContext::ReportDetection(const std::string& reason) {
  kernel_->OnDetection(self_, reason);
}

void Kernel::AddAgent(AgentId id, std::shared_ptr<Agent> agent) {
  TCVS_CHECK(agents_.find(id) == agents_.end());
  agents_[id] = std::move(agent);
}

void Kernel::RegisterUser(AgentId id) { users_.push_back(id); }

void Kernel::Enqueue(Message m) {
  traffic_.Add(m);
  in_flight_.push_back(std::move(m));
}

void Kernel::OnDetection(AgentId who, const std::string& reason) {
  // EVERY ReportDetection becomes an audit event, even after the first
  // detection was recorded: later detectors are forensic evidence too.
  // The trace id is filled by Emit from the active span (the agent-round
  // span, or a query's context installed by the protocol layer).
  util::AuditEvent event(util::AuditEventKind::kDeviationDetected);
  event.user = who;
  event.ctr = now_;  // For sim-kernel events the counter slot is the round.
  event.detail = reason;
  // Name the run's seed so the logged detection is reproducible as-is.
  if (run_seed_ != 0) {
    event.detail += " [seed=" + std::to_string(run_seed_) + "]";
  }
  util::AuditLog::Instance().Emit(std::move(event));
  if (detection_.has_value()) return;  // First detection wins.
  static util::Counter* const detections =
      util::MetricsRegistry::Instance().GetCounter("sim.detections_total");
  static util::LatencyHistogram* const round =
      util::MetricsRegistry::Instance().GetLatency("sim.detection_round");
  detections->Increment();
  round->Record(now_);
  SimReport r;
  r.detected = true;
  r.detection_round = now_;
  r.detector = who;
  r.detection_reason = reason;
  detection_ = r;
}

SimReport Kernel::Run(Round max_rounds, bool stop_on_detection) {
  now_ = 0;
  return Continue(max_rounds, stop_on_detection);
}

SimReport Kernel::Continue(Round additional_rounds, bool stop_on_detection) {
  const Round end = now_ + additional_rounds;
  while (now_ < end) {
    ++now_;
    // Deliver all messages due this round, preserving send order.
    std::map<AgentId, std::vector<Message>> inboxes;
    std::vector<Message> still_flying;
    still_flying.reserve(in_flight_.size());
    for (auto& m : in_flight_) {
      if (m.deliver_at <= now_) {
        inboxes[m.to].push_back(std::move(m));
      } else {
        still_flying.push_back(std::move(m));
      }
    }
    in_flight_ = std::move(still_flying);

    // Step agents in fixed (ascending id) order — the deterministic serial
    // order the paper's trusted server mirrors.
    for (auto& [id, agent] : agents_) {
      // One span per agent-round: anything the agent emits (audit events,
      // child spans) gets a non-zero trace id even when no query context
      // has been installed yet.
      TCVS_SPAN("sim.kernel.agent_round");
      std::vector<Message> inbox = std::move(inboxes[id]);
      RoundContext ctx(this, id, now_, &inbox);
      agent->OnRound(&ctx);
    }

    if (stop_on_detection && detection_.has_value()) break;
  }

  SimReport report = detection_.value_or(SimReport{});
  report.rounds_executed = now_;
  report.traffic = traffic_;
  return report;
}

}  // namespace sim
}  // namespace tcvs
