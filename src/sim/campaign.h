#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "util/bytes.h"
#include "util/result.h"
#include "workload/workload.h"

namespace tcvs {
namespace campaign {

/// \file
/// Seeded Byzantine campaign generator and soak harness.
///
/// A *campaign* hammers the detection protocols with many randomized
/// adversarial scenarios — composed schedules of fork / rollback / replay /
/// equivocation / selective-drop / delay primitives executed by the
/// ProtocolServer (AttackConfig::schedule) — and asserts on every run:
///
///   (a) the n·k detection bound: a detected deviation was caught within
///       DetectionBound(n, k) operations of the attack engaging, and an
///       undetected ground-truth deviation had fewer than that many
///       post-attack operations to be caught in (the horizon ended first);
///   (b) fork evidence: every detection left a typed audit event
///       (fork_detected / vo_mismatch) carrying BOTH divergent digests;
///   (c) soundness: honest (empty or delay-only) schedules never detect;
///   (d) reproducibility: the same seed yields an identical report.
///
/// Schedules that trip an invariant are delta-debug minimized (ddmin over
/// steps, then per-field shrinking) and persisted as text fixtures
/// (CampaignFixture) that campaign_test replays as regressions.

/// \brief One seeded adversarial scenario: population/protocol parameters
/// plus the composed schedule of attack steps the server executes.
struct CampaignSchedule {
  /// Generator seed that produced this schedule; also seeds the workload
  /// and is recorded in the ScenarioReport / detection audit events.
  uint64_t seed = 0;
  core::ProtocolKind protocol = core::ProtocolKind::kProtocolII;
  uint32_t num_users = 4;
  uint32_t sync_k = 6;
  /// Max rounds to simulate (runs stop early at first detection).
  sim::Round horizon = 600;
  uint32_t ops_per_user = 26;
  uint32_t num_files = 12;
  std::vector<core::AttackStep> steps;

  /// True when the schedule cannot deviate: no steps, or delay-only
  /// (bounded delay is within the model). Such runs must never detect.
  bool IsHonest() const;

  /// ScenarioConfig with attack.schedule = steps and seed recorded.
  core::ScenarioConfig ToConfig() const;
  /// Deterministic CVS workload derived from the same seed.
  workload::Workload MakeWorkload() const;
  /// One-line summary, e.g. "ProtocolII n=4 k=6 | fork@40{2,3} delay@60+20#4".
  std::string Describe() const;

  /// util/serde wire form (versioned); the fixture format embeds its hex.
  Bytes Serialize() const;
  // taint-exempt: local-origin — parses checked-in campaign fixtures and
  // generator output, never network bytes.
  static Result<CampaignSchedule> Deserialize(const Bytes& data);
};

/// The paper's detection-delay guarantee in operations, plus the harness
/// slack for operations the server processes while sync-up reports and the
/// final detecting exchange are in flight.
uint64_t DetectionBound(uint32_t num_users, uint32_t sync_k);

/// \brief Outcome of one schedule run with the invariant checks applied.
struct ScheduleOutcome {
  core::ScenarioReport report;
  /// The attack actually altered processing (server ground truth).
  bool engaged = false;
  bool detected = false;
  /// Ground-truth deviation ran past the detection bound undetected.
  bool escaped = false;
  /// Detected, but later than DetectionBound allows.
  bool bound_violated = false;
  /// Detected without a digest-pair fork-evidence audit event.
  bool missing_evidence = false;
  /// Honest schedule raised the alarm.
  bool false_alarm = false;
  /// Ops processed after the attack engaged until detection (or horizon).
  uint64_t delay_ops = 0;
  /// Human-readable first violation; empty when all invariants held.
  std::string violation;

  bool Violated() const {
    return escaped || bound_violated || missing_evidence || false_alarm;
  }
};

/// Runs one schedule through a full Scenario and applies invariants (a)-(c).
/// Uses an AuditLog sequence cursor, so it composes with other emitters in
/// the same process (single-threaded use).
ScheduleOutcome RunSchedule(const CampaignSchedule& schedule);

/// Properties MinimizeSchedule can preserve while shrinking.
enum class ScheduleProperty : uint8_t {
  /// The run detects a deviation (with all invariants intact).
  kDetected = 0,
  /// The run escapes: ground-truth deviation past the bound, undetected.
  kEscaped = 1,
  /// The run trips any invariant (ScheduleOutcome::Violated()).
  kViolation = 2,
};

bool HasProperty(const ScheduleOutcome& outcome, ScheduleProperty property);

/// Delta-debug minimization: smallest step subset that still exhibits
/// `property`, then per-step shrinking (victims, duration, arg) and
/// parameter shrinking (ops_per_user, horizon). Deterministic. `runs`, when
/// non-null, returns the number of schedule executions spent minimizing.
CampaignSchedule MinimizeSchedule(const CampaignSchedule& schedule,
                                  ScheduleProperty property,
                                  uint32_t* runs = nullptr);

/// Seeded schedule generator. Identical seeds yield identical schedules.
/// `honest` draws a control-arm schedule (no steps, or delay-only noise).
CampaignSchedule GenerateSchedule(uint64_t seed, bool honest = false);

/// \brief Campaign parameters.
struct CampaignOptions {
  uint64_t seed = 1;
  uint32_t scenarios = 50;
  /// Fraction of control-arm honest scenarios (false-alarm check).
  double honest_fraction = 0.1;
  /// ddmin schedules that trip an invariant.
  bool minimize = true;
  /// Override every generated schedule's protocol (ablations: the untagged
  /// kProtocolIINaive arm escapes on replay). kProtocolII = no override.
  core::ProtocolKind protocol = core::ProtocolKind::kProtocolII;
};

/// \brief An invariant-tripping schedule, kept for the report and fixtures.
struct ViolationRecord {
  CampaignSchedule schedule;
  std::string reason;
  /// Minimized reproduction (equals `schedule` when minimize was off).
  CampaignSchedule minimized;
};

/// \brief Aggregated campaign results. JsonFormat is deterministic: same
/// options ⇒ byte-identical output (no timestamps, no float formatting).
struct CampaignReport {
  CampaignOptions options;
  uint32_t scenarios = 0;
  uint32_t honest_runs = 0;
  uint32_t engaged = 0;
  uint32_t detected = 0;
  uint32_t escapes = 0;
  uint32_t bound_violations = 0;
  uint32_t missing_evidence = 0;
  uint32_t false_alarms = 0;
  /// Detection delays (ops) of all detected runs, in scenario order.
  std::vector<uint64_t> delays_ops;
  std::vector<ViolationRecord> violations;

  bool ok() const { return violations.empty(); }
  uint64_t DelayPercentile(double p) const;
  std::string JsonFormat() const;
};

/// Runs `options.scenarios` generated schedules and aggregates outcomes.
CampaignReport RunCampaign(const CampaignOptions& options);

/// \brief A persisted regression scenario: schedule + expected outcome.
/// Text format (tests/campaign_fixtures/*.fixture):
///
///   # tcvs-campaign-fixture v1
///   name: <slug>
///   protocol: <ProtocolKindToString name>   (informational)
///   describe: <CampaignSchedule::Describe>  (informational)
///   expect_detected: 0|1
///   expect_escape: 0|1
///   schedule: <hex of CampaignSchedule::Serialize>
struct CampaignFixture {
  std::string name;
  CampaignSchedule schedule;
  bool expect_detected = false;
  bool expect_escape = false;

  std::string ToText() const;
  static Result<CampaignFixture> FromText(std::string_view text);
};

}  // namespace campaign
}  // namespace tcvs
