#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.h"
#include "util/result.h"

namespace tcvs {
namespace sim {

class Kernel;

/// \brief What an agent can do during its round: inspect the clock, read its
/// inbox, and send messages (delivered next round, matching the paper's
/// "messages are delivered in a single round").
class RoundContext {
 public:
  RoundContext(Kernel* kernel, AgentId self, Round round,
               std::vector<Message>* inbox)
      : kernel_(kernel), self_(self), round_(round), inbox_(inbox) {}

  Round round() const { return round_; }
  AgentId self() const { return self_; }

  /// Messages delivered to this agent this round, in send order.
  const std::vector<Message>& inbox() const { return *inbox_; }

  /// Sends a point-to-point message through the ordinary network.
  void Send(AgentId to, uint32_t type, Bytes payload);

  /// Sends on the external user-to-user broadcast channel; every registered
  /// user except the sender receives a copy next round. Protocols that claim
  /// "no external communication" must never call this — the kernel counts
  /// external traffic separately so tests can assert exactly that.
  void Broadcast(uint32_t type, Bytes payload);

  /// Raises the deviation alarm: this agent knows the server deviated
  /// (paper §2.2.1). The kernel records the first detection.
  void ReportDetection(const std::string& reason);

 private:
  Kernel* kernel_;
  AgentId self_;
  Round round_;
  std::vector<Message>* inbox_;
};

/// \brief A participant in the multi-agent system (user, server).
class Agent {
 public:
  virtual ~Agent() = default;

  /// Called once per round, after this round's messages are delivered.
  virtual void OnRound(RoundContext* ctx) = 0;
};

/// \brief Outcome of a simulation: whether and when some user detected
/// deviation, and the traffic consumed.
struct SimReport {
  bool detected = false;
  Round detection_round = 0;
  AgentId detector = 0;
  std::string detection_reason;
  Round rounds_executed = 0;
  TrafficStats traffic;
};

/// \brief Deterministic discrete-round simulator of the paper's system
/// model: a global clock, agents stepped once per round in a fixed order,
/// and messages delivered exactly one round after sending.
///
/// Determinism: with the same agents and workloads, every run is identical —
/// attacks and detection delays in the experiments are exactly reproducible.
class Kernel {
 public:
  Kernel() = default;

  /// Registers an agent under `id`. User agents should also be listed via
  /// RegisterUser so Broadcast reaches them.
  void AddAgent(AgentId id, std::shared_ptr<Agent> agent);

  /// Marks `id` as a user (a broadcast recipient).
  void RegisterUser(AgentId id);

  /// Runs until `max_rounds` or until `stop_on_detection` fires.
  SimReport Run(Round max_rounds, bool stop_on_detection = true);

  /// Runs additional rounds continuing from the current clock.
  SimReport Continue(Round additional_rounds, bool stop_on_detection = true);

  Round now() const { return now_; }
  const TrafficStats& traffic() const { return traffic_; }

  /// Message delivery latency in rounds (default 1, the paper's "messages
  /// are delivered in a single round"). Any bounded value preserves the
  /// protocol guarantees; robustness tests raise it.
  void set_message_delay(Round delay) { message_delay_ = delay == 0 ? 1 : delay; }
  Round message_delay() const { return message_delay_; }

  /// Seed of the run driving this kernel (0 = unseeded). Appended to every
  /// deviation-detection audit event's detail as " [seed=N]", so a logged
  /// detection names the exact seed that reproduces it.
  void set_run_seed(uint64_t seed) { run_seed_ = seed; }
  uint64_t run_seed() const { return run_seed_; }

  /// True if `id` was registered as a user (a broadcast recipient).
  bool IsUser(AgentId id) const {
    for (AgentId u : users_) {
      if (u == id) return true;
    }
    return false;
  }

 private:
  friend class RoundContext;

  void Enqueue(Message m);
  void OnDetection(AgentId who, const std::string& reason);

  Round now_ = 0;
  Round message_delay_ = 1;
  uint64_t run_seed_ = 0;
  std::map<AgentId, std::shared_ptr<Agent>> agents_;
  std::vector<AgentId> users_;
  std::vector<Message> in_flight_;
  TrafficStats traffic_;
  std::optional<SimReport> detection_;
};

}  // namespace sim
}  // namespace tcvs
