#include "sim/trace.h"

#include <algorithm>
#include <map>

namespace tcvs {
namespace sim {

std::optional<size_t> FindDeviation(const std::vector<OpRecord>& records) {
  std::vector<const OpRecord*> ordered;
  ordered.reserve(records.size());
  for (const auto& r : records) ordered.push_back(&r);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const OpRecord* a, const OpRecord* b) {
                     return a->server_seq < b->server_seq;
                   });

  // Duplicate serial positions are themselves a deviation: the trusted
  // server executes one transaction per position.
  for (size_t i = 1; i < ordered.size(); ++i) {
    if (ordered[i]->server_seq == ordered[i - 1]->server_seq) return i;
  }

  std::map<Bytes, Bytes> db;
  for (size_t i = 0; i < ordered.size(); ++i) {
    const OpRecord& r = *ordered[i];
    switch (r.kind) {
      case OpKind::kCommit:
        db[r.key] = r.value;
        break;
      case OpKind::kDelete:
        db.erase(r.key);
        break;
      case OpKind::kCheckout: {
        auto it = db.find(r.key);
        std::optional<Bytes> expect;
        if (it != db.end()) expect = it->second;
        if (r.observed != expect) return i;
        break;
      }
    }
  }
  return std::nullopt;
}

std::optional<Round> FirstDeviationRound(const TraceLog& log) {
  auto idx = FindDeviation(log.records());
  if (!idx.has_value()) return std::nullopt;
  // Map the serial index back to the completing record's round.
  std::vector<const OpRecord*> ordered;
  for (const auto& r : log.records()) ordered.push_back(&r);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const OpRecord* a, const OpRecord* b) {
                     return a->server_seq < b->server_seq;
                   });
  return ordered[*idx]->completed;
}

}  // namespace sim
}  // namespace tcvs
