#pragma once

#include <optional>
#include <vector>

#include "sim/types.h"
#include "util/bytes.h"

namespace tcvs {
namespace sim {

/// Kind of a CVS data operation, in the paper's reduced model: checkout is a
/// read of a data item, commit is an update (§2.1 "CVS Operations").
enum class OpKind : uint8_t { kCheckout = 0, kCommit = 1, kDelete = 2 };

/// \brief One completed transaction as observed by the issuing user, plus
/// the position the server claims it holds in the serial order.
struct OpRecord {
  AgentId user = 0;
  Round issued = 0;
  Round completed = 0;
  OpKind kind = OpKind::kCheckout;
  Bytes key;
  Bytes value;                    // Commit payload.
  std::optional<Bytes> observed;  // Checkout result (nullopt = not found).
  uint64_t server_seq = 0;        // Server-claimed serial position.
};

/// \brief Ground-truth event log of a simulation. Experiments use it to know
/// *when* the first deviation truly happened, independent of whether any
/// protocol detected it.
class TraceLog {
 public:
  void Record(OpRecord record) { records_.push_back(std::move(record)); }
  const std::vector<OpRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

 private:
  std::vector<OpRecord> records_;
};

/// \brief Replays the records in server-claimed serial order against a
/// trusted in-memory database and reports the index (into the serial order)
/// of the first record whose observed result is impossible in the trusted
/// system — i.e. the run deviates from every trusted run (Def. 2.1).
///
/// \return index of the first deviating record, or nullopt if the
/// observations are consistent with a trusted serial execution.
std::optional<size_t> FindDeviation(const std::vector<OpRecord>& records);

/// \brief Convenience: FindDeviation over a TraceLog, returning the *round*
/// at which the first deviating transaction completed.
std::optional<Round> FirstDeviationRound(const TraceLog& log);

}  // namespace sim
}  // namespace tcvs
