#include "sim/campaign.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/audit.h"
#include "util/random.h"
#include "util/serde.h"

namespace tcvs {
namespace campaign {

namespace {

constexpr uint8_t kScheduleWireVersion = 1;

const char* StepKindName(core::AttackKind kind) {
  switch (kind) {
    case core::AttackKind::kFork:
      return "fork";
    case core::AttackKind::kRollback:
      return "rollback";
    case core::AttackKind::kReplaySegment:
      return "replay";
    case core::AttackKind::kEquivocate:
      return "equivocate";
    case core::AttackKind::kDrop:
      return "drop";
    case core::AttackKind::kDelay:
      return "delay";
    default:
      return "?";
  }
}

bool ValidStepKind(uint8_t kind) {
  switch (static_cast<core::AttackKind>(kind)) {
    case core::AttackKind::kFork:
    case core::AttackKind::kRollback:
    case core::AttackKind::kReplaySegment:
    case core::AttackKind::kEquivocate:
    case core::AttackKind::kDrop:
    case core::AttackKind::kDelay:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool CampaignSchedule::IsHonest() const {
  for (const core::AttackStep& step : steps) {
    if (step.kind != core::AttackKind::kDelay) return false;
  }
  return true;
}

core::ScenarioConfig CampaignSchedule::ToConfig() const {
  core::ScenarioConfig config;
  config.protocol = protocol;
  config.num_users = num_users;
  config.sync_k = sync_k;
  config.seed = seed;
  config.attack.schedule = steps;
  return config;
}

workload::Workload CampaignSchedule::MakeWorkload() const {
  workload::CvsWorkloadOptions options;
  options.num_users = num_users;
  options.ops_per_user = ops_per_user;
  options.num_files = num_files;
  options.zipf_theta = 0.8;
  options.read_fraction = 0.35;
  options.mean_think_rounds = 3;
  options.offline_probability = 0.0;
  options.seed = seed;
  return workload::MakeCvsWorkload(options);
}

std::string CampaignSchedule::Describe() const {
  std::string out(core::ProtocolKindToString(protocol));
  out += " n=" + std::to_string(num_users);
  out += " k=" + std::to_string(sync_k);
  out += " ops=" + std::to_string(ops_per_user);
  out += " h=" + std::to_string(horizon);
  out += " |";
  if (steps.empty()) {
    out += " honest";
    return out;
  }
  for (const core::AttackStep& step : steps) {
    out += " ";
    out += StepKindName(step.kind);
    out += "@" + std::to_string(step.at);
    if (step.duration > 0) out += "+" + std::to_string(step.duration);
    if (step.arg > 0) out += "#" + std::to_string(step.arg);
    if (!step.victims.empty()) {
      out += "{";
      bool first = true;
      for (sim::AgentId v : step.victims) {
        if (!first) out += ",";
        first = false;
        out += std::to_string(v);
      }
      out += "}";
    }
  }
  return out;
}

Bytes CampaignSchedule::Serialize() const {
  util::Writer w;
  w.PutU8(kScheduleWireVersion);
  w.PutU64(seed);
  w.PutU8(static_cast<uint8_t>(protocol));
  w.PutU32(num_users);
  w.PutU32(sync_k);
  w.PutU64(horizon);
  w.PutU32(ops_per_user);
  w.PutU32(num_files);
  w.PutU32(static_cast<uint32_t>(steps.size()));
  for (const core::AttackStep& step : steps) {
    w.PutU8(static_cast<uint8_t>(step.kind));
    w.PutU64(step.at);
    w.PutU64(step.duration);
    w.PutU64(step.arg);
    w.PutU32(static_cast<uint32_t>(step.victims.size()));
    for (sim::AgentId v : step.victims) w.PutU32(v);
  }
  return w.Take();
}

Result<CampaignSchedule> CampaignSchedule::Deserialize(const Bytes& data) {
  util::Reader r(data);
  auto version = r.GetU8();
  if (!version.ok()) return std::move(version).status();
  if (*version != kScheduleWireVersion) {
    return Status::InvalidArgument("unsupported campaign schedule version");
  }
  CampaignSchedule s;
  TCVS_ASSIGN_OR_RETURN(s.seed, r.GetU64());
  auto protocol = r.GetU8();
  if (!protocol.ok()) return std::move(protocol).status();
  if (*protocol > static_cast<uint8_t>(core::ProtocolKind::kProtocolIII)) {
    return Status::InvalidArgument("unknown protocol kind in schedule");
  }
  s.protocol = static_cast<core::ProtocolKind>(*protocol);
  TCVS_ASSIGN_OR_RETURN(s.num_users, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(s.sync_k, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(s.horizon, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(s.ops_per_user, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(s.num_files, r.GetU32());
  if (s.num_users == 0 || s.sync_k == 0) {
    return Status::InvalidArgument("campaign schedule needs users and sync_k");
  }
  uint32_t count = 0;
  TCVS_ASSIGN_OR_RETURN(count, r.GetU32());
  if (count > 1024) {
    return Status::InvalidArgument("campaign schedule step count implausible");
  }
  for (uint32_t i = 0; i < count; ++i) {
    core::AttackStep step;
    auto kind = r.GetU8();
    if (!kind.ok()) return std::move(kind).status();
    if (!ValidStepKind(*kind)) {
      return Status::InvalidArgument("unknown attack step kind in schedule");
    }
    step.kind = static_cast<core::AttackKind>(*kind);
    TCVS_ASSIGN_OR_RETURN(step.at, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(step.duration, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(step.arg, r.GetU64());
    uint32_t victims = 0;
    TCVS_ASSIGN_OR_RETURN(victims, r.GetU32());
    if (victims > s.num_users) {
      return Status::InvalidArgument("campaign step victim count implausible");
    }
    for (uint32_t v = 0; v < victims; ++v) {
      uint32_t id = 0;
      TCVS_ASSIGN_OR_RETURN(id, r.GetU32());
      step.victims.insert(id);
    }
    s.steps.push_back(std::move(step));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after campaign schedule");
  }
  return s;
}

uint64_t DetectionBound(uint32_t num_users, uint32_t sync_k) {
  // Paper guarantee: a deviation is caught within n·k operations (every user
  // syncs at least once in any n·k-op window). The additive slack covers
  // operations the server processes while sync-up reports and the detecting
  // response are in flight (message delay ≥ 1 round each way, n users still
  // operating meanwhile).
  return static_cast<uint64_t>(num_users) * sync_k + 4ull * num_users + 16;
}

ScheduleOutcome RunSchedule(const CampaignSchedule& schedule) {
  ScheduleOutcome out;
  const uint64_t cursor = util::AuditLog::Instance().total_emitted();
  core::Scenario scenario(schedule.ToConfig(), schedule.MakeWorkload());
  out.report = scenario.Run(schedule.horizon);
  out.engaged = out.report.attack_engaged_round != 0;
  out.detected = out.report.detected;
  const uint64_t bound = DetectionBound(schedule.num_users, schedule.sync_k);

  if (out.detected) {
    out.delay_ops = out.report.detection_delay_ops;
    if (schedule.IsHonest()) {
      out.false_alarm = true;
      out.violation =
          "false alarm: honest schedule detected (" +
          out.report.detection_reason + ")";
    } else if (!out.engaged) {
      out.false_alarm = true;
      out.violation =
          "false alarm: detection before any attack step engaged (" +
          out.report.detection_reason + ")";
    } else if (out.delay_ops > bound) {
      out.bound_violated = true;
      out.violation = "detection delay " + std::to_string(out.delay_ops) +
                      " ops exceeds n*k bound " + std::to_string(bound);
    }
    // Invariant (b): the detection must leave digest-pair fork evidence in
    // the audit log (kForkDetected / kVoMismatch carry both digests).
    bool evidence = false;
    for (const util::AuditEvent& ev :
         util::AuditLog::Instance().SnapshotSince(cursor)) {
      if ((ev.kind == util::AuditEventKind::kForkDetected ||
           ev.kind == util::AuditEventKind::kVoMismatch) &&
          !ev.expected_digest.empty() && !ev.actual_digest.empty()) {
        evidence = true;
        break;
      }
    }
    if (!evidence && out.violation.empty()) {
      out.missing_evidence = true;
      out.violation =
          "detection without digest-pair fork evidence in the audit log (" +
          out.report.detection_reason + ")";
    } else if (!evidence) {
      out.missing_evidence = true;
    }
  } else {
    // Undetected: an escape only counts once the run had a ground-truth
    // deviation AND enough post-attack operations that the n·k guarantee
    // should have fired (otherwise the horizon simply ended first).
    out.delay_ops = scenario.server()->ops_after_attack();
    if (out.report.ground_truth_deviation && out.delay_ops > bound) {
      out.escaped = true;
      out.violation = "escape: deviation survived " +
                      std::to_string(out.delay_ops) +
                      " post-attack ops undetected (bound " +
                      std::to_string(bound) + ")";
    }
  }
  return out;
}

bool HasProperty(const ScheduleOutcome& outcome, ScheduleProperty property) {
  switch (property) {
    case ScheduleProperty::kDetected:
      return outcome.detected && !outcome.Violated();
    case ScheduleProperty::kEscaped:
      return outcome.escaped;
    case ScheduleProperty::kViolation:
      return outcome.Violated();
  }
  return false;
}

CampaignSchedule MinimizeSchedule(const CampaignSchedule& schedule,
                                  ScheduleProperty property, uint32_t* runs) {
  uint32_t executed = 0;
  auto holds = [&executed, property](const CampaignSchedule& candidate) {
    ++executed;
    return HasProperty(RunSchedule(candidate), property);
  };

  CampaignSchedule best = schedule;
  if (!holds(best)) {
    if (runs != nullptr) *runs = executed;
    return best;  // Nothing to preserve: return the input unchanged.
  }

  // ddmin over steps. Schedules are short (≤ a handful of steps), so the
  // final granularity — single-step removal to fixpoint — IS the ddmin.
  bool shrunk = true;
  while (shrunk && best.steps.size() > 1) {
    shrunk = false;
    for (size_t i = 0; i < best.steps.size(); ++i) {
      CampaignSchedule candidate = best;
      candidate.steps.erase(candidate.steps.begin() +
                            static_cast<ptrdiff_t>(i));
      if (holds(candidate)) {
        best = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }

  // Per-step shrinking: drop victims, then halve windows and arguments.
  for (size_t i = 0; i < best.steps.size(); ++i) {
    bool victim_shrunk = true;
    while (victim_shrunk && best.steps[i].victims.size() > 1) {
      victim_shrunk = false;
      const std::vector<sim::AgentId> victims(best.steps[i].victims.begin(),
                                              best.steps[i].victims.end());
      for (sim::AgentId v : victims) {
        CampaignSchedule candidate = best;
        candidate.steps[i].victims.erase(v);
        if (holds(candidate)) {
          best = std::move(candidate);
          victim_shrunk = true;
          break;
        }
      }
    }
    while (best.steps[i].duration > 0) {
      CampaignSchedule candidate = best;
      candidate.steps[i].duration /= 2;
      if (!holds(candidate)) break;
      best = std::move(candidate);
    }
    while (best.steps[i].arg > 1) {
      CampaignSchedule candidate = best;
      candidate.steps[i].arg /= 2;
      if (!holds(candidate)) break;
      best = std::move(candidate);
    }
  }

  // Parameter shrinking: fewer operations and a shorter horizon make the
  // persisted regression fixture cheaper to replay.
  while (best.ops_per_user > best.sync_k + 4) {
    CampaignSchedule candidate = best;
    candidate.ops_per_user =
        std::max<uint32_t>(best.ops_per_user / 2, best.sync_k + 4);
    if (candidate.ops_per_user == best.ops_per_user) break;
    if (!holds(candidate)) break;
    best = std::move(candidate);
  }
  while (best.horizon > 200) {
    CampaignSchedule candidate = best;
    candidate.horizon = std::max<sim::Round>(best.horizon / 2, 200);
    if (candidate.horizon == best.horizon) break;
    if (!holds(candidate)) break;
    best = std::move(candidate);
  }

  if (runs != nullptr) *runs = executed;
  return best;
}

CampaignSchedule GenerateSchedule(uint64_t seed, bool honest) {
  util::Rng rng(seed);
  CampaignSchedule s;
  s.seed = seed;
  s.num_users = static_cast<uint32_t>(3 + rng.Uniform(4));   // 3..6
  s.sync_k = static_cast<uint32_t>(4 + rng.Uniform(5));      // 4..8
  s.ops_per_user =
      3 * s.sync_k + 8 + static_cast<uint32_t>(rng.Uniform(8));
  s.num_files = static_cast<uint32_t>(8 + rng.Uniform(9));
  s.horizon = 400 + static_cast<sim::Round>(s.ops_per_user) * 8;

  const size_t num_steps =
      honest ? rng.Uniform(3) : 1 + rng.Uniform(4);  // honest: 0..2 delays
  std::vector<sim::AgentId> all_users;
  for (uint32_t u = 1; u <= s.num_users; ++u) all_users.push_back(u);

  for (size_t i = 0; i < num_steps; ++i) {
    core::AttackStep step;
    if (honest) {
      step.kind = core::AttackKind::kDelay;
    } else {
      const uint64_t roll = rng.Uniform(100);
      if (roll < 25) {
        step.kind = core::AttackKind::kFork;
      } else if (roll < 40) {
        step.kind = core::AttackKind::kRollback;
      } else if (roll < 55) {
        step.kind = core::AttackKind::kReplaySegment;
      } else if (roll < 70) {
        step.kind = core::AttackKind::kEquivocate;
      } else if (roll < 85) {
        step.kind = core::AttackKind::kDrop;
      } else {
        step.kind = core::AttackKind::kDelay;
      }
    }
    // Engage in the first third of the horizon so the n·k window has room
    // to close before the run ends.
    step.at = 20 + rng.Uniform(s.horizon / 3);

    std::vector<sim::AgentId> pool = all_users;
    rng.Shuffle(&pool);
    const size_t nvictims =
        1 + rng.Uniform(std::max<uint64_t>(1, s.num_users / 2));
    for (size_t v = 0; v < nvictims && v < pool.size(); ++v) {
      step.victims.insert(pool[v]);
    }

    switch (step.kind) {
      case core::AttackKind::kEquivocate:
      case core::AttackKind::kDrop:
        step.duration = 8 + rng.Uniform(40);
        break;
      case core::AttackKind::kDelay:
        step.duration = 8 + rng.Uniform(40);
        step.arg = 2 + rng.Uniform(6);
        break;
      case core::AttackKind::kRollback:
        step.arg = 1 + rng.Uniform(4);
        step.victims.clear();  // Rollback hits the shared main branch.
        break;
      case core::AttackKind::kReplaySegment:
        step.arg = rng.Uniform(3);  // Initial transitions the cursor skips.
        break;
      default:
        break;  // kFork: victims + at are the whole step.
    }
    s.steps.push_back(std::move(step));
  }
  std::stable_sort(s.steps.begin(), s.steps.end(),
                   [](const core::AttackStep& a, const core::AttackStep& b) {
                     return a.at < b.at;
                   });
  return s;
}

uint64_t CampaignReport::DelayPercentile(double p) const {
  if (delays_ops.empty()) return 0;
  std::vector<uint64_t> sorted = delays_ops;
  std::sort(sorted.begin(), sorted.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

namespace {
std::string JsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}
}  // namespace

std::string CampaignReport::JsonFormat() const {
  // Deterministic by construction: integer fields only, no timestamps, and
  // the honest fraction rendered in percent. Same options ⇒ same bytes.
  std::string out = "{\"campaign\":{";
  out += "\"seed\":" + std::to_string(options.seed);
  out += ",\"scenarios\":" + std::to_string(options.scenarios);
  out += ",\"honest_pct\":" +
         std::to_string(
             static_cast<uint64_t>(options.honest_fraction * 100.0 + 0.5));
  out += ",\"minimize\":" + std::string(options.minimize ? "true" : "false");
  out += ",\"protocol\":\"" +
         std::string(core::ProtocolKindToString(options.protocol)) + "\"";
  out += "},\"counts\":{";
  out += "\"scenarios\":" + std::to_string(scenarios);
  out += ",\"honest_runs\":" + std::to_string(honest_runs);
  out += ",\"engaged\":" + std::to_string(engaged);
  out += ",\"detected\":" + std::to_string(detected);
  out += ",\"escapes\":" + std::to_string(escapes);
  out += ",\"bound_violations\":" + std::to_string(bound_violations);
  out += ",\"missing_evidence\":" + std::to_string(missing_evidence);
  out += ",\"false_alarms\":" + std::to_string(false_alarms);
  out += "},\"delay_ops\":{";
  out += "\"count\":" + std::to_string(delays_ops.size());
  out += ",\"p50\":" + std::to_string(DelayPercentile(0.5));
  out += ",\"p90\":" + std::to_string(DelayPercentile(0.9));
  out += ",\"max\":" + std::to_string(DelayPercentile(1.0));
  out += "},\"violations\":[";
  for (size_t i = 0; i < violations.size(); ++i) {
    const ViolationRecord& rec = violations[i];
    if (i > 0) out += ",";
    out += "{\"seed\":" + std::to_string(rec.schedule.seed);
    out += ",\"reason\":\"" + JsonEscapeString(rec.reason) + "\"";
    out += ",\"describe\":\"" + JsonEscapeString(rec.minimized.Describe()) +
           "\"";
    out += ",\"schedule\":\"" + util::HexEncode(rec.schedule.Serialize()) +
           "\"";
    out += ",\"minimized\":\"" + util::HexEncode(rec.minimized.Serialize()) +
           "\"}";
  }
  out += "],\"ok\":" + std::string(ok() ? "true" : "false") + "}";
  return out;
}

CampaignReport RunCampaign(const CampaignOptions& options) {
  CampaignReport report;
  report.options = options;
  util::Rng rng(options.seed);
  for (uint32_t i = 0; i < options.scenarios; ++i) {
    uint64_t scenario_seed = rng.Next();
    if (scenario_seed == 0) scenario_seed = 1;
    const bool honest = rng.NextDouble() < options.honest_fraction;
    CampaignSchedule schedule = GenerateSchedule(scenario_seed, honest);
    schedule.protocol = options.protocol;
    ScheduleOutcome outcome = RunSchedule(schedule);

    ++report.scenarios;
    if (schedule.IsHonest()) ++report.honest_runs;
    if (outcome.engaged) ++report.engaged;
    if (outcome.detected) {
      ++report.detected;
      report.delays_ops.push_back(outcome.delay_ops);
    }
    if (outcome.escaped) ++report.escapes;
    if (outcome.bound_violated) ++report.bound_violations;
    if (outcome.missing_evidence) ++report.missing_evidence;
    if (outcome.false_alarm) ++report.false_alarms;
    if (outcome.Violated()) {
      ViolationRecord rec;
      rec.schedule = schedule;
      rec.reason = outcome.violation;
      rec.minimized =
          options.minimize
              ? MinimizeSchedule(schedule, ScheduleProperty::kViolation)
              : schedule;
      report.violations.push_back(std::move(rec));
    }
  }
  return report;
}

std::string CampaignFixture::ToText() const {
  std::string out = "# tcvs-campaign-fixture v1\n";
  out += "name: " + name + "\n";
  out += "protocol: " +
         std::string(core::ProtocolKindToString(schedule.protocol)) + "\n";
  out += "describe: " + schedule.Describe() + "\n";
  out += "expect_detected: " + std::string(expect_detected ? "1" : "0") + "\n";
  out += "expect_escape: " + std::string(expect_escape ? "1" : "0") + "\n";
  out += "schedule: " + util::HexEncode(schedule.Serialize()) + "\n";
  return out;
}

Result<CampaignFixture> CampaignFixture::FromText(std::string_view text) {
  CampaignFixture fixture;
  bool header_seen = false;
  bool schedule_seen = false;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    if (!header_seen) {
      if (line != "# tcvs-campaign-fixture v1") {
        return Status::InvalidArgument(
            "campaign fixture must start with '# tcvs-campaign-fixture v1'");
      }
      header_seen = true;
      continue;
    }
    if (line.front() == '#') continue;
    const size_t colon = line.find(": ");
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("campaign fixture line is not 'key: value'");
    }
    const std::string_view key = line.substr(0, colon);
    const std::string_view value = line.substr(colon + 2);
    if (key == "name") {
      fixture.name = std::string(value);
    } else if (key == "expect_detected" || key == "expect_escape") {
      if (value != "0" && value != "1") {
        return Status::InvalidArgument("campaign fixture expects 0 or 1 for " +
                                       std::string(key));
      }
      (key == "expect_detected" ? fixture.expect_detected
                                : fixture.expect_escape) = value == "1";
    } else if (key == "schedule") {
      auto bytes = util::HexDecode(value);
      if (!bytes.ok()) return std::move(bytes).status();
      auto schedule = CampaignSchedule::Deserialize(*bytes);
      if (!schedule.ok()) return std::move(schedule).status();
      fixture.schedule = std::move(schedule).ValueOrDie();
      schedule_seen = true;
    }
    // "protocol:" / "describe:" and unknown keys are informational.
  }
  if (!header_seen) {
    return Status::InvalidArgument("empty campaign fixture");
  }
  if (fixture.name.empty() || !schedule_seen) {
    return Status::InvalidArgument(
        "campaign fixture needs 'name:' and 'schedule:' lines");
  }
  return fixture;
}

}  // namespace campaign
}  // namespace tcvs
