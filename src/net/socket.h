#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace tcvs {
namespace net {

/// \name Fault points consulted by this layer (see util/fault.h).
/// @{
/// Connect() fails with Unavailable before touching the network.
inline constexpr char kFaultConnectFail[] = "net.connect.fail";
/// SendFrame drops the connection without writing; arg unused.
inline constexpr char kFaultSendDrop[] = "net.send.drop";
/// SendFrame sleeps for `arg` milliseconds before writing (slow peer).
inline constexpr char kFaultSendDelay[] = "net.send.delay";
/// SendFrame writes only the first `arg` bytes of the framed message, then
/// drops the connection (torn frame on the wire).
inline constexpr char kFaultSendTruncate[] = "net.send.truncate";
/// SendFrame flips bit 0 of payload byte `arg % size` (in-flight corruption
/// that TCP's weak checksum missed).
inline constexpr char kFaultSendBitflip[] = "net.send.bitflip";
/// ReceiveFrame drops the connection instead of reading.
inline constexpr char kFaultRecvDrop[] = "net.recv.drop";
/// @}

/// \brief A connected TCP stream carrying length-prefixed frames (u32 LE
/// length + payload). Move-only; the destructor closes the fd.
///
/// Frames keep the RPC layer trivial: one frame out, one frame back. Frame
/// size is capped to keep a malicious peer from forcing huge allocations.
///
/// The fd is non-blocking; all transfers run EINTR/EAGAIN-safe poll()
/// loops, so short reads/writes and signals are retried internally and an
/// optional per-operation deadline (set_io_timeout_ms) turns a hung peer
/// into Status::DeadlineExceeded instead of a wedged process.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  /// \param timeout_ms 0 = wait forever; otherwise the handshake must
  /// complete within the deadline or DeadlineExceeded is returned. Connect
  /// refusal / unreachable peers return Unavailable (retryable).
  static Result<TcpConnection> Connect(const std::string& host, uint16_t port,
                                       int timeout_ms = 0);

  /// Deadline applied to each subsequent SendFrame/ReceiveFrame as a whole
  /// (0 = none). A deadline expiry leaves the stream mid-frame, so the
  /// connection is closed: frame boundaries cannot be trusted afterwards.
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }

  /// Waits until at least one byte (or EOF) is readable, without consuming
  /// it. OK = readable now, DeadlineExceeded = `timeout_ms` elapsed idle.
  /// Lets a serving thread block in bounded slices, checking for shutdown
  /// between them, instead of wedging forever in ReceiveFrame on an idle
  /// peer — and an idle expiry here leaves NO frame mid-read, so unlike an
  /// io-timeout the connection stays usable.
  Status WaitReadable(int timeout_ms);

  /// Writes one frame, retrying short writes and EINTR internally.
  Status SendFrame(const Bytes& payload);

  /// Reads one frame, retrying short reads and EINTR internally.
  /// \return IOError on EOF or malformed length.
  Result<Bytes> ReceiveFrame();

  /// \name Raw (unframed) byte I/O, for protocols that frame themselves —
  /// the HTTP admin plane. Both honor set_io_timeout_ms as a whole-call
  /// deadline, like the frame operations.
  /// @{
  /// Reads at most `len` bytes into `buf`, blocking until at least one byte
  /// arrives. Returns the count read, or 0 on orderly EOF.
  Result<size_t> ReadSome(uint8_t* buf, size_t len);
  /// Writes exactly `len` bytes, retrying short writes and EINTR.
  Status WriteRaw(const uint8_t* data, size_t len);
  /// @}

  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Maximum accepted frame size (16 MiB).
  static constexpr uint32_t kMaxFrame = 16u << 20;

 private:
  int fd_ = -1;
  int io_timeout_ms_ = 0;
};

/// \brief A listening TCP socket on the loopback interface.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;

  /// Binds to 127.0.0.1:`port` (0 = ephemeral; see port()).
  static Result<TcpListener> Bind(uint16_t port);

  uint16_t port() const { return port_; }

  /// Blocks until a client connects (EINTR-safe).
  /// \param timeout_ms 0 = wait forever; otherwise DeadlineExceeded when no
  /// client arrived in time — the accept loop's bounded-blocking slice, so
  /// it can poll a stop flag between waits.
  Result<TcpConnection> Accept(int timeout_ms = 0);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace tcvs
