#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace tcvs {
namespace net {

/// \brief A connected TCP stream carrying length-prefixed frames (u32 LE
/// length + payload). Blocking, move-only; the destructor closes the fd.
///
/// Frames keep the RPC layer trivial: one frame out, one frame back. Frame
/// size is capped to keep a malicious peer from forcing huge allocations.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  static Result<TcpConnection> Connect(const std::string& host, uint16_t port);

  /// Writes one frame. \return IOError on any short write.
  Status SendFrame(const Bytes& payload);

  /// Reads one frame. \return IOError on EOF or malformed length.
  Result<Bytes> ReceiveFrame();

  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Maximum accepted frame size (16 MiB).
  static constexpr uint32_t kMaxFrame = 16u << 20;

 private:
  int fd_ = -1;
};

/// \brief A listening TCP socket on the loopback interface.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;

  /// Binds to 127.0.0.1:`port` (0 = ephemeral; see port()).
  static Result<TcpListener> Bind(uint16_t port);

  uint16_t port() const { return port_; }

  /// Blocks until a client connects.
  Result<TcpConnection> Accept();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace tcvs
