#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/fault.h"
#include "util/metrics.h"

namespace tcvs {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Remaining milliseconds until `deadline` (rounded up), or -1 (poll's
/// "infinite") when no deadline is set.
int RemainingMs(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  auto left = std::chrono::ceil<std::chrono::milliseconds>(deadline -
                                                           Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

/// Waits until `fd` is ready for `events` or the deadline passes.
/// EINTR-safe: signals recompute the remaining budget and re-poll.
Status PollFd(int fd, short events, bool has_deadline,
              Clock::time_point deadline) {
  for (;;) {
    int remaining = RemainingMs(has_deadline, deadline);
    if (has_deadline && remaining == 0) {
      return Status::DeadlineExceeded("socket I/O deadline elapsed");
    }
    pollfd pfd{fd, events, 0};
    int n = ::poll(&pfd, 1, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (n == 0) {
      return Status::DeadlineExceeded("socket I/O deadline elapsed");
    }
    if (pfd.revents & POLLNVAL) return Status::IOError("poll: bad fd");
    // POLLERR/POLLHUP: let the subsequent read/write surface the error.
    return Status::OK();
  }
}

/// Writes exactly `len` bytes, retrying EINTR, short writes, and EAGAIN
/// (via poll) until done or the deadline passes. MSG_NOSIGNAL keeps a dead
/// peer from killing the process with SIGPIPE — essential once faults and
/// retries make mid-write disconnects routine.
Status WriteAll(int fd, const uint8_t* data, size_t len, bool has_deadline,
                Clock::time_point deadline) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        TCVS_RETURN_NOT_OK(PollFd(fd, POLLOUT, has_deadline, deadline));
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::IOError("write: connection closed by peer");
      }
      return Errno("write");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, uint8_t* data, size_t len, bool has_deadline,
               Clock::time_point deadline) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::recv(fd, data + done, len - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        TCVS_RETURN_NOT_OK(PollFd(fd, POLLIN, has_deadline, deadline));
        continue;
      }
      if (errno == ECONNRESET) {
        return Status::IOError("read: connection reset by peer");
      }
      return Errno("read");
    }
    if (n == 0) return Status::IOError("read: connection closed");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) {
  if (fd_ >= 0) SetNonBlocking(fd_);
}

TcpConnection::~TcpConnection() { Close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(other.fd_), io_timeout_ms_(other.io_timeout_ms_) {
  other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    io_timeout_ms_ = other.io_timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpConnection> TcpConnection::Connect(const std::string& host,
                                             uint16_t port, int timeout_ms) {
  if (util::FaultInjector::Instance().ShouldFail(kFaultConnectFail)) {
    return Status::Unavailable("fault injected: " +
                               std::string(kFaultConnectFail));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host address: " + host);
  }
  // Non-blocking connect: initiate, poll for writability within the
  // deadline, then read SO_ERROR for the actual outcome.
  SetNonBlocking(fd);
  bool has_deadline = timeout_ms > 0;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    Status st = (errno == ECONNREFUSED || errno == ENETUNREACH ||
                 errno == EHOSTUNREACH || errno == ETIMEDOUT)
                    ? Status::Unavailable("connect: " + resolved + ": " +
                                          std::strerror(errno))
                    : Errno("connect");
    ::close(fd);
    return st;
  }
  if (rc != 0) {
    Status st = PollFd(fd, POLLOUT, has_deadline, deadline);
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      ::close(fd);
      return Status::Unavailable("connect: " + resolved + ": " +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

Status TcpConnection::SendFrame(const Bytes& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  if (payload.size() > kMaxFrame) {
    return Status::InvalidArgument("frame too large");
  }
  auto& faults = util::FaultInjector::Instance();
  uint64_t arg = 0;
  if (faults.ShouldFail(kFaultSendDelay, &arg)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(arg));
  }
  if (faults.ShouldFail(kFaultSendDrop)) {
    Close();
    return Status::IOError("fault injected: " + std::string(kFaultSendDrop));
  }

  bool has_deadline = io_timeout_ms_ > 0;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(io_timeout_ms_);

  uint8_t header[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<uint8_t>(len >> (8 * i));

  if (faults.ShouldFail(kFaultSendTruncate, &arg)) {
    // Write a prefix of the framed message, then sever the connection: the
    // peer sees a torn frame exactly as if we died mid-write.
    Bytes framed(header, header + 4);
    framed.insert(framed.end(), payload.begin(), payload.end());
    size_t cut = static_cast<size_t>(arg) < framed.size()
                     ? static_cast<size_t>(arg)
                     : framed.size();
    (void)WriteAll(fd_, framed.data(), cut, has_deadline, deadline);
    Close();
    return Status::IOError("fault injected: " +
                           std::string(kFaultSendTruncate));
  }
  if (faults.ShouldFail(kFaultSendBitflip, &arg) && !payload.empty()) {
    Bytes corrupted = payload;
    corrupted[arg % corrupted.size()] ^= 0x01;
    TCVS_RETURN_NOT_OK(WriteAll(fd_, header, 4, has_deadline, deadline));
    Status st = WriteAll(fd_, corrupted.data(), corrupted.size(), has_deadline,
                         deadline);
    if (st.IsDeadlineExceeded()) Close();
    return st;
  }

  Status st = WriteAll(fd_, header, 4, has_deadline, deadline);
  if (st.ok()) {
    st = WriteAll(fd_, payload.data(), payload.size(), has_deadline, deadline);
  }
  // A deadline mid-frame leaves the stream unframed; poison the connection.
  if (st.IsDeadlineExceeded()) Close();
  if (st.ok()) {
    static util::Counter* const frames =
        util::MetricsRegistry::Instance().GetCounter("net.frames_sent_total");
    static util::Counter* const bytes =
        util::MetricsRegistry::Instance().GetCounter("net.bytes_sent_total");
    frames->Increment();
    bytes->Increment(4 + payload.size());
  }
  return st;
}

Status TcpConnection::WaitReadable(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  return PollFd(fd_, POLLIN, /*has_deadline=*/timeout_ms > 0,
                Clock::now() + std::chrono::milliseconds(timeout_ms));
}

Result<Bytes> TcpConnection::ReceiveFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  if (util::FaultInjector::Instance().ShouldFail(kFaultRecvDrop)) {
    Close();
    return Status::IOError("fault injected: " + std::string(kFaultRecvDrop));
  }
  bool has_deadline = io_timeout_ms_ > 0;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(io_timeout_ms_);
  uint8_t header[4];
  Status st = ReadAll(fd_, header, 4, has_deadline, deadline);
  if (!st.ok()) {
    if (st.IsDeadlineExceeded()) Close();
    return st;
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= uint32_t(header[i]) << (8 * i);
  if (len > kMaxFrame) return Status::IOError("oversized frame");
  Bytes payload(len);
  if (len > 0) {
    st = ReadAll(fd_, payload.data(), len, has_deadline, deadline);
    if (!st.ok()) {
      if (st.IsDeadlineExceeded()) Close();
      return st;
    }
  }
  static util::Counter* const frames =
      util::MetricsRegistry::Instance().GetCounter("net.frames_received_total");
  static util::Counter* const bytes =
      util::MetricsRegistry::Instance().GetCounter("net.bytes_received_total");
  frames->Increment();
  bytes->Increment(4 + payload.size());
  return payload;
}

Result<size_t> TcpConnection::ReadSome(uint8_t* buf, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  if (len == 0) return static_cast<size_t>(0);
  bool has_deadline = io_timeout_ms_ > 0;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(io_timeout_ms_);
  for (;;) {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);  // 0 = orderly EOF.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      TCVS_RETURN_NOT_OK(PollFd(fd_, POLLIN, has_deadline, deadline));
      continue;
    }
    if (errno == ECONNRESET) {
      return Status::IOError("read: connection reset by peer");
    }
    return Errno("read");
  }
}

Status TcpConnection::WriteRaw(const uint8_t* data, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  bool has_deadline = io_timeout_ms_ > 0;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(io_timeout_ms_);
  return WriteAll(fd_, data, len, has_deadline, deadline);
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpConnection> TcpListener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("listener closed");
  if (timeout_ms > 0) {
    TCVS_RETURN_NOT_OK(PollFd(fd_, POLLIN, /*has_deadline=*/true,
                              Clock::now() +
                                  std::chrono::milliseconds(timeout_ms)));
  }
  int cfd;
  do {
    cfd = ::accept(fd_, nullptr, nullptr);
  } while (cfd < 0 && errno == EINTR);
  if (cfd < 0) return Errno("accept");
  return TcpConnection(cfd);
}

}  // namespace net
}  // namespace tcvs
