#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tcvs {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    if (n == 0) return Status::IOError("write: connection closed");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::read(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) return Status::IOError("read: connection closed");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

TcpConnection::~TcpConnection() { Close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpConnection> TcpConnection::Connect(const std::string& host,
                                             uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

Status TcpConnection::SendFrame(const Bytes& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  if (payload.size() > kMaxFrame) {
    return Status::InvalidArgument("frame too large");
  }
  uint8_t header[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<uint8_t>(len >> (8 * i));
  TCVS_RETURN_NOT_OK(WriteAll(fd_, header, 4));
  return WriteAll(fd_, payload.data(), payload.size());
}

Result<Bytes> TcpConnection::ReceiveFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  uint8_t header[4];
  TCVS_RETURN_NOT_OK(ReadAll(fd_, header, 4));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= uint32_t(header[i]) << (8 * i);
  if (len > kMaxFrame) return Status::IOError("oversized frame");
  Bytes payload(len);
  if (len > 0) TCVS_RETURN_NOT_OK(ReadAll(fd_, payload.data(), len));
  return payload;
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpConnection> TcpListener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("listener closed");
  int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return Errno("accept");
  return TcpConnection(cfd);
}

}  // namespace net
}  // namespace tcvs
