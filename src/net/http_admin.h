#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace tcvs {
namespace net {

/// \name Fault points consulted by this layer (see util/fault.h).
/// @{
/// The dispatcher fails the matched handler with Internal — exercises the
/// 500 path without needing a handler that can actually break.
inline constexpr char kFaultAdminHandlerFail[] = "net.admin.handler.fail";
/// @}

/// \file
/// The HTTP observability plane: a minimal, dependency-free HTTP/1.1
/// server that exposes the process's metrics, health, traces, and audit
/// events to standard tooling (Prometheus scrapers, curl, load-balancer
/// health checks). It reuses the net socket layer (poll deadlines, fault
/// injection) and runs on its own listener thread plus a small worker
/// pool, so a slow scraper never blocks the RPC serving path.
///
/// Scope is deliberately tiny: GET only, one request per connection
/// (`Connection: close`), bounded request size, no TLS, loopback bind.
/// This is an ADMIN plane — it trusts its operator, not the network; do
/// not expose it beyond the host boundary.

/// \brief One parsed admin request. Only the request line is interpreted;
/// headers are read (to find the end of the request) and discarded.
struct HttpRequest {
  std::string method;  ///< "GET", uppercased by the parser.
  std::string path;    ///< Absolute path, no query ("/metrics").
  std::string query;   ///< Raw query string after '?' ("" when absent).

  /// Value of `key` in the query string ("" when absent). No %-decoding:
  /// admin parameters are numeric cursors and flags.
  std::string QueryParam(const std::string& key) const;
};

/// \brief What a handler returns; the server renders the status line,
/// Content-Type, Content-Length, and Connection: close around it.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// One registered endpoint. Handlers run on worker threads and must be
/// thread-safe; they should be read-mostly and fast (the pool is small).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// \brief The admin-plane HTTP server. Start() binds and spawns the accept
/// thread + workers; Stop() (or the destructor) joins everything.
class HttpAdminServer {
 public:
  struct Options {
    /// Loopback port to bind (0 = ephemeral; see port()).
    uint16_t port = 0;
    /// Workers answering requests. Scrapes are cheap; 2 is plenty for a
    /// scraper plus a human with curl.
    int num_threads = 2;
    /// Bounded-blocking slice for accept waits — the latency bound on
    /// noticing Stop(), not a client-visible deadline.
    int poll_interval_ms = 50;
    /// Whole-call deadline for reading a request / writing a response.
    /// Bounds how long a stalled scraper can pin a worker.
    int io_timeout_ms = 2000;
    /// Requests larger than this are rejected with 431. Admin requests
    /// are one line plus a few headers.
    size_t max_request_bytes = 8192;
  };

  /// Binds 127.0.0.1:`options.port` and starts serving. The returned
  /// server owns its threads; destroy it (or call Stop) to shut down.
  static Result<std::unique_ptr<HttpAdminServer>> Start(Options options);

  ~HttpAdminServer();

  HttpAdminServer(const HttpAdminServer&) = delete;
  HttpAdminServer& operator=(const HttpAdminServer&) = delete;

  /// Registers `handler` for exact-match `path` (e.g. "/metrics"),
  /// replacing any previous handler. Safe while serving.
  void Handle(const std::string& path, HttpHandler handler)
      TCVS_EXCLUDES(mu_);

  /// Registered paths, sorted (powers the index page and the lint rule's
  /// runtime counterpart in tests).
  std::vector<std::string> paths() const TCVS_EXCLUDES(mu_);

  /// The bound port (useful with Options::port = 0).
  uint16_t port() const { return listener_.port(); }

  /// Stops accepting, drains workers, joins all threads. Idempotent.
  void Stop();

 private:
  explicit HttpAdminServer(Options options) : options_(options) {}

  void AcceptLoop();
  void WorkerLoop();
  /// Reads one request, dispatches, writes the response. Closes `conn`.
  void ServeConnection(TcpConnection conn);
  HttpResponse Dispatch(const HttpRequest& request) TCVS_EXCLUDES(mu_);

  Options options_;
  TcpListener listener_;

  mutable util::Mutex mu_;
  std::map<std::string, HttpHandler> handlers_ TCVS_GUARDED_BY(mu_);

  util::Mutex queue_mu_;
  util::CondVar queue_cv_;
  std::vector<TcpConnection> queue_ TCVS_GUARDED_BY(queue_mu_);
  bool stopping_ TCVS_GUARDED_BY(queue_mu_) = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  bool started_ = false;
};

/// \brief A named readiness probe for /readyz. `check` returns OK when the
/// subsystem can serve; any other status flips readiness to 503 and the
/// status message is reported in the body.
struct HealthCheck {
  std::string name;
  std::function<Status()> check;
};

/// \brief Configuration for RegisterStandardEndpoints — the process facts
/// the standard endpoints report but cannot discover themselves.
struct AdminEndpointOptions {
  /// Readiness probes, evaluated in order on every /readyz hit.
  std::vector<HealthCheck> readiness;
  /// One-line human-readable config summary for /statusz (flag values).
  std::string config_summary;
  /// Process start, MonotonicMicros() at startup (uptime in /statusz).
  uint64_t start_us = 0;
  /// Build identification line for /statusz.
  std::string build_info;
};

/// Registers the standard observability endpoints on `server`:
///
///   /metrics  Prometheus text exposition with OpenMetrics exemplars
///   /varz     full metrics snapshot as JSON
///   /healthz  liveness: 200 "ok" while the process can answer at all
///   /readyz   readiness: 200 only when every HealthCheck passes
///   /statusz  build info, uptime, config, thread/queue gauges (JSON)
///   /tracez   drains the trace ring as Chrome trace-event JSON
///   /eventsz  audit log as JSON lines; ?since=SEQ for incremental reads
///
/// plus "/" as a plain-text index of registered paths. Every endpoint
/// bumps its `http.admin.<name>.requests_total` counter (lint-enforced
/// against the ARCHITECTURE.md endpoint table).
void RegisterStandardEndpoints(HttpAdminServer* server,
                               AdminEndpointOptions options);

/// \brief Minimal blocking HTTP GET against a local admin server — the
/// client half used by tests and `tcvs top`. Returns the parsed status
/// line and body (headers are consumed and discarded).
Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& path_and_query,
                             int timeout_ms = 2000);

}  // namespace net
}  // namespace tcvs
