#include "net/http_admin.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/audit.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace tcvs {
namespace net {

namespace {

/// Accepted connections waiting for a worker. The admin plane expects one
/// scraper and an occasional human; anything beyond this is shed at accept.
constexpr size_t kQueueCapacity = 32;

/// Response bodies a test client may legitimately fetch (a full trace ring
/// renders to a few MiB of JSON); HttpGet refuses anything larger.
constexpr size_t kMaxResponseBytes = TcpConnection::kMaxFrame;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string RenderResponse(const HttpResponse& response) {
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                response.status, ReasonPhrase(response.status),
                response.content_type.c_str(), response.body.size());
  return std::string(header) + response.body;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

/// Parses the request head (everything before the blank line). Returns
/// false on a malformed request line.
bool ParseRequestHead(const std::string& head, HttpRequest* request) {
  const size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request->method = line.substr(0, sp1);
  std::transform(request->method.begin(), request->method.end(),
                 request->method.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    request->path = std::move(target);
    request->query.clear();
  } else {
    request->path = target.substr(0, qmark);
    request->query = target.substr(qmark + 1);
  }
  return true;
}

}  // namespace

std::string HttpRequest::QueryParam(const std::string& key) const {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return std::string();
}

Result<std::unique_ptr<HttpAdminServer>> HttpAdminServer::Start(
    Options options) {
  options.num_threads = std::max(1, std::min(options.num_threads, 16));
  options.poll_interval_ms = std::max(1, options.poll_interval_ms);
  TCVS_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Bind(options.port));
  std::unique_ptr<HttpAdminServer> server(new HttpAdminServer(options));
  server->listener_ = std::move(listener);
  server->started_ = true;
  util::MetricsRegistry::Instance()
      .GetGauge("net.admin.workers")
      ->Set(options.num_threads);
  for (int i = 0; i < options.num_threads; ++i) {
    server->workers_.emplace_back([raw = server.get()] { raw->WorkerLoop(); });
  }
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

HttpAdminServer::~HttpAdminServer() { Stop(); }

void HttpAdminServer::Stop() {
  if (!started_) return;
  {
    util::MutexLock lock(&queue_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.SignalAll();
  // Closing the listener makes a blocked Accept fail fast on some kernels;
  // the poll-interval slice bounds the wait on the rest.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  util::MetricsRegistry::Instance().GetGauge("net.admin.workers")->Set(0);
}

void HttpAdminServer::Handle(const std::string& path, HttpHandler handler) {
  util::MutexLock lock(&mu_);
  handlers_[path] = std::move(handler);
}

std::vector<std::string> HttpAdminServer::paths() const {
  util::MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [path, handler] : handlers_) out.push_back(path);
  return out;
}

void HttpAdminServer::AcceptLoop() {
  for (;;) {
    {
      util::MutexLock lock(&queue_mu_);
      if (stopping_) return;
    }
    Result<TcpConnection> accepted =
        listener_.Accept(options_.poll_interval_ms);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;
      return;  // Listener broken; workers still drain on Stop().
    }
    util::MutexLock lock(&queue_mu_);
    if (stopping_) return;
    if (queue_.size() >= kQueueCapacity) {
      // Shed load: drop the connection rather than queue unboundedly. The
      // scraper sees a reset and retries at the next interval.
      util::MetricsRegistry::Instance()
          .GetCounter("net.admin.shed_total")
          ->Increment();
      continue;
    }
    queue_.push_back(std::move(accepted).ValueOrDie());
    queue_cv_.Signal();
  }
}

void HttpAdminServer::WorkerLoop() {
  for (;;) {
    TcpConnection conn;
    {
      util::MutexLock lock(&queue_mu_);
      while (queue_.empty() && !stopping_) {
        queue_cv_.WaitFor(&queue_mu_, options_.poll_interval_ms);
      }
      if (queue_.empty() && stopping_) return;
      if (queue_.empty()) continue;
      conn = std::move(queue_.front());
      queue_.erase(queue_.begin());
    }
    ServeConnection(std::move(conn));
  }
}

void HttpAdminServer::ServeConnection(TcpConnection conn) {
  conn.set_io_timeout_ms(options_.io_timeout_ms);
  std::string head;
  HttpResponse response;
  bool parsed = false;
  uint8_t buf[1024];
  for (;;) {
    if (head.size() >= options_.max_request_bytes) {
      response.status = 431;
      response.body = "request too large\n";
      break;
    }
    Result<size_t> n = conn.ReadSome(buf, sizeof(buf));
    if (!n.ok() || *n == 0) return;  // Peer gone or stalled: no reply.
    head.append(reinterpret_cast<const char*>(buf), *n);
    if (head.find("\r\n\r\n") != std::string::npos) {
      parsed = true;
      break;
    }
  }
  if (parsed) {
    HttpRequest request;
    if (!ParseRequestHead(head, &request)) {
      response.status = 400;
      response.body = "bad request\n";
    } else {
      response = Dispatch(request);
    }
  }
  const std::string wire = RenderResponse(response);
  (void)conn.WriteRaw(reinterpret_cast<const uint8_t*>(wire.data()),
                      wire.size());
  conn.Close();
}

HttpResponse HttpAdminServer::Dispatch(const HttpRequest& request) {
  auto& metrics = util::MetricsRegistry::Instance();
  metrics.GetCounter("net.admin.requests_total")->Increment();
  TCVS_SPAN("net.admin.handle");
  HttpResponse response;
  if (request.method != "GET") {
    response.status = 405;
    response.body = "admin plane is GET-only\n";
    return response;
  }
  HttpHandler handler;
  {
    util::MutexLock lock(&mu_);
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    metrics.GetCounter("net.admin.not_found_total")->Increment();
    response.status = 404;
    response.body = "no handler for " + request.path + "\n";
    return response;
  }
  if (util::FaultInjector::Instance().ShouldFail(kFaultAdminHandlerFail)) {
    response.status = 500;
    response.body = "injected handler failure\n";
    return response;
  }
  return handler(request);
}

void RegisterStandardEndpoints(HttpAdminServer* server,
                               AdminEndpointOptions options) {
  auto& metrics = util::MetricsRegistry::Instance();

  server->Handle("/metrics", [&metrics](const HttpRequest&) {
    metrics.GetCounter("http.admin.metrics.requests_total")->Increment();
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = metrics.TextFormat();
    return r;
  });

  server->Handle("/varz", [&metrics](const HttpRequest&) {
    metrics.GetCounter("http.admin.varz.requests_total")->Increment();
    HttpResponse r;
    r.content_type = "application/json";
    r.body = metrics.Snapshot().JsonFormat();
    r.body.push_back('\n');
    return r;
  });

  server->Handle("/healthz", [&metrics](const HttpRequest&) {
    metrics.GetCounter("http.admin.healthz.requests_total")->Increment();
    // Liveness: answering at all is the signal. Readiness is /readyz.
    HttpResponse r;
    r.body = "ok\n";
    return r;
  });

  server->Handle(
      "/readyz", [&metrics, checks = options.readiness](const HttpRequest&) {
        metrics.GetCounter("http.admin.readyz.requests_total")->Increment();
        HttpResponse r;
        std::string failures;
        for (const HealthCheck& check : checks) {
          Status st = check.check();
          if (!st.ok()) {
            failures += check.name + ": " + st.ToString() + "\n";
          }
        }
        if (failures.empty()) {
          r.body = "ready\n";
        } else {
          r.status = 503;
          r.body = "not ready\n" + failures;
        }
        return r;
      });

  server->Handle(
      "/statusz",
      [&metrics, server, config = options.config_summary,
       build = options.build_info, start_us = options.start_us](
          const HttpRequest&) {
        metrics.GetCounter("http.admin.statusz.requests_total")->Increment();
        HttpResponse r;
        r.content_type = "application/json";
        const uint64_t now_us = util::MonotonicMicros();
        std::string& out = r.body;
        out.append("{\"build\":\"");
        AppendJsonEscaped(&out, build);
        out.append("\",\"config\":\"");
        AppendJsonEscaped(&out, config);
        char buf[96];
        std::snprintf(buf, sizeof(buf), "\",\"uptime_us\":%" PRIu64,
                      now_us >= start_us ? now_us - start_us : 0);
        out.append(buf);
        out.append(",\"endpoints\":[");
        bool first = true;
        for (const std::string& path : server->paths()) {
          if (!first) out.push_back(',');
          first = false;
          out.push_back('"');
          AppendJsonEscaped(&out, path);
          out.push_back('"');
        }
        out.append("],\"gauges\":{");
        first = true;
        for (const auto& [name, value] : metrics.Snapshot().gauges) {
          if (!first) out.push_back(',');
          first = false;
          out.push_back('"');
          AppendJsonEscaped(&out, name);
          std::snprintf(buf, sizeof(buf), "\":%lld",
                        static_cast<long long>(value));
          out.append(buf);
        }
        out.append("}}\n");
        return r;
      });

  server->Handle("/tracez", [&metrics](const HttpRequest&) {
    metrics.GetCounter("http.admin.tracez.requests_total")->Increment();
    HttpResponse r;
    r.content_type = "application/json";
    r.body = util::TraceDump::FromEvents(metrics.DrainTrace())
                 .ChromeTraceJson();
    r.body.push_back('\n');
    return r;
  });

  server->Handle("/eventsz", [&metrics](const HttpRequest& request) {
    metrics.GetCounter("http.admin.eventsz.requests_total")->Increment();
    HttpResponse r;
    r.content_type = "application/x-ndjson";
    const std::string since = request.QueryParam("since");
    const uint64_t min_seq =
        since.empty() ? 0 : std::strtoull(since.c_str(), nullptr, 10);
    for (const util::AuditEvent& event :
         util::AuditLog::Instance().SnapshotSince(min_seq)) {
      r.body += event.JsonFormat();
      r.body.push_back('\n');
    }
    return r;
  });

  server->Handle("/pprofz", [&metrics](const HttpRequest& request) {
    metrics.GetCounter("http.admin.pprofz.requests_total")->Increment();
    HttpResponse r;
    const std::string seconds_s = request.QueryParam("seconds");
    const std::string hz_s = request.QueryParam("hz");
    const int seconds =
        seconds_s.empty() ? 5 : static_cast<int>(std::strtol(seconds_s.c_str(),
                                                             nullptr, 10));
    const int hz = hz_s.empty() ? 100
                                : static_cast<int>(std::strtol(hz_s.c_str(),
                                                               nullptr, 10));
    const std::string fmt = request.QueryParam("fmt");
    if (!fmt.empty() && fmt != "folded" && fmt != "json") {
      r.status = 400;
      r.body = "fmt must be 'folded' or 'json'\n";
      return r;
    }
    // Blocks this admin worker for the window; the serving plane and the
    // other admin worker are unaffected. ProfileWindow clamps hz/seconds.
    Result<util::CpuProfile> profile = util::ProfileWindow(hz, seconds);
    if (!profile.ok()) {
      r.status = 503;
      r.body = profile.status().ToString() + "\n";
      return r;
    }
    if (fmt == "json") {
      r.content_type = "application/json";
      r.body = profile->JsonTopN(50);
    } else {
      r.content_type = "text/plain; charset=utf-8";
      r.body = profile->FoldedFormat();
    }
    return r;
  });

  server->Handle("/lockz", [&metrics](const HttpRequest&) {
    metrics.GetCounter("http.admin.lockz.requests_total")->Increment();
    HttpResponse r;
    r.content_type = "application/json";
    r.body = util::ContentionJson();
    r.body.push_back('\n');
    return r;
  });

  server->Handle("/", [server](const HttpRequest&) {
    HttpResponse r;
    r.body = "tcvsd admin plane\n";
    for (const std::string& path : server->paths()) {
      r.body += path + "\n";
    }
    return r;
  });
}

Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& path_and_query,
                             int timeout_ms) {
  TCVS_ASSIGN_OR_RETURN(TcpConnection conn,
                        TcpConnection::Connect(host, port, timeout_ms));
  conn.set_io_timeout_ms(timeout_ms);
  std::string request = "GET " + path_and_query +
                        " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  TCVS_RETURN_NOT_OK(conn.WriteRaw(
      reinterpret_cast<const uint8_t*>(request.data()), request.size()));
  std::string raw;
  uint8_t buf[4096];
  for (;;) {
    TCVS_ASSIGN_OR_RETURN(size_t n, conn.ReadSome(buf, sizeof(buf)));
    if (n == 0) break;  // Connection: close delimits the body.
    raw.append(reinterpret_cast<const char*>(buf), n);
    if (raw.size() > kMaxResponseBytes) {
      return Status::IOError("http: response too large");
    }
  }
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IOError("http: truncated response (no header terminator)");
  }
  const std::string head = raw.substr(0, head_end);
  HttpResponse response;
  // Status line: "HTTP/1.1 200 OK".
  const size_t sp = head.find(' ');
  if (sp == std::string::npos ||
      head.compare(0, 5, "HTTP/") != 0) {
    return Status::IOError("http: malformed status line");
  }
  response.status = std::atoi(head.c_str() + sp + 1);
  if (response.status < 100 || response.status > 599) {
    return Status::IOError("http: malformed status code");
  }
  // Content-Type, if present (headers are case-insensitive; ours emits
  // canonical casing but be lenient for symmetry with other servers).
  size_t line_start = head.find("\r\n");
  while (line_start != std::string::npos && line_start + 2 < head.size()) {
    line_start += 2;
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    std::string line = head.substr(line_start, line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      std::transform(name.begin(), name.end(), name.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (name == "content-type") {
        size_t value_start = colon + 1;
        while (value_start < line.size() && line[value_start] == ' ') {
          ++value_start;
        }
        response.content_type = line.substr(value_start);
      }
    }
    line_start = line_end == head.size() ? std::string::npos : line_end;
  }
  response.body = raw.substr(head_end + 4);
  return response;
}

}  // namespace net
}  // namespace tcvs
