#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace tcvs {
namespace storage {

/// \name Fault points consulted by this layer (see util/fault.h).
/// @{
/// WalWriter::Append writes only the first `arg` bytes of the framed
/// record, then fails (crash mid-append: a torn tail on disk).
inline constexpr char kFaultWalTorn[] = "wal.append.torn";
/// The fdatasync in WalWriter::Flush fails (dying disk / full device).
inline constexpr char kFaultWalSyncFail[] = "wal.sync.fail";
/// AtomicWriteFile writes the temp file but "crashes" before the rename,
/// leaving the destination untouched (the atomicity contract under test).
inline constexpr char kFaultAtomicCrash[] = "storage.atomic.crash";
/// @}

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// string — the per-record integrity check of the write-ahead log.
uint32_t Crc32(const uint8_t* data, size_t len);
uint32_t Crc32(const Bytes& data);

/// \brief Append-only write-ahead log. Record framing:
///
///   u32 LE payload length | u32 LE CRC-32(payload) | payload bytes
///
/// Torn tails are expected after a crash: the reader stops at the first
/// record whose header, length, or CRC does not check out, yielding the
/// longest valid prefix (standard WAL semantics).
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;

  /// Opens for appending (creates if missing).
  /// \param sync when true, every Append (and Flush) also issues
  /// fdatasync(2), so acknowledged records survive an OS crash or power
  /// loss — without it "durable" records only reach the page cache.
  /// Opt-in because it costs a device round trip per transaction.
  static Result<WalWriter> Open(const std::string& path, bool sync = false);

  /// Appends one record and flushes it to the OS (and, in sync mode, to
  /// the device).
  Status Append(const Bytes& record);

  /// Appends one framed record into the stdio buffer WITHOUT flushing: the
  /// group-commit path stages several records, then amortizes ONE Flush
  /// (one fdatasync in sync mode) over the whole batch. A record appended
  /// this way is not durable — not even process-crash-safe — until a
  /// subsequent Flush returns OK.
  Status AppendNoFlush(const Bytes& record);

  /// Flushes buffered data down to the file descriptor (and the device in
  /// sync mode).
  Status Flush();

  void Close();

  bool sync() const { return sync_; }

  /// Emulated device-sync latency: every fdatasync additionally busy-waits
  /// this long. Benchmarking knob ONLY — virtualized hosts often absorb
  /// flushes in a write cache in ~100µs, which hides exactly the cost that
  /// group commit amortizes; this restores a realistic (e.g. SATA-class,
  /// 1-5ms) device round trip. Never set in production paths.
  void set_emulated_sync_delay_us(uint32_t us) { sync_delay_us_ = us; }
  uint32_t emulated_sync_delay_us() const { return sync_delay_us_; }

 private:
  std::FILE* file_ = nullptr;
  bool sync_ = false;
  uint32_t sync_delay_us_ = 0;
};

/// \brief Reads every valid record from a WAL file. Returns the longest
/// valid prefix; a trailing torn/corrupt record is silently dropped (and
/// reported via `truncated`).
Result<std::vector<Bytes>> ReadWal(const std::string& path, bool* truncated);

/// \brief Atomically replaces `path` with `contents` (write temp + rename).
Status AtomicWriteFile(const std::string& path, const Bytes& contents);

/// \brief Reads an entire file. NotFound when it does not exist.
Result<Bytes> ReadFileBytes(const std::string& path);

/// \brief Truncates a file to zero length (creating it if absent).
Status TruncateFile(const std::string& path);

}  // namespace storage
}  // namespace tcvs
