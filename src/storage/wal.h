#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace tcvs {
namespace storage {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// string — the per-record integrity check of the write-ahead log.
uint32_t Crc32(const uint8_t* data, size_t len);
uint32_t Crc32(const Bytes& data);

/// \brief Append-only write-ahead log. Record framing:
///
///   u32 LE payload length | u32 LE CRC-32(payload) | payload bytes
///
/// Torn tails are expected after a crash: the reader stops at the first
/// record whose header, length, or CRC does not check out, yielding the
/// longest valid prefix (standard WAL semantics).
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;

  /// Opens for appending (creates if missing).
  static Result<WalWriter> Open(const std::string& path);

  /// Appends one record and flushes it to the OS.
  Status Append(const Bytes& record);

  /// Flushes buffered data down to the file descriptor.
  Status Flush();

  void Close();

 private:
  std::FILE* file_ = nullptr;
};

/// \brief Reads every valid record from a WAL file. Returns the longest
/// valid prefix; a trailing torn/corrupt record is silently dropped (and
/// reported via `truncated`).
Result<std::vector<Bytes>> ReadWal(const std::string& path, bool* truncated);

/// \brief Atomically replaces `path` with `contents` (write temp + rename).
Status AtomicWriteFile(const std::string& path, const Bytes& contents);

/// \brief Reads an entire file. NotFound when it does not exist.
Result<Bytes> ReadFileBytes(const std::string& path);

/// \brief Truncates a file to zero length (creating it if absent).
Status TruncateFile(const std::string& path);

}  // namespace storage
}  // namespace tcvs
