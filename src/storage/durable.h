#pragma once

#include <memory>
#include <string>

#include "cvs/trusted.h"
#include "storage/wal.h"
#include "util/mutex.h"

namespace tcvs {
namespace storage {

/// \brief Durable wrapper around the untrusted repository server: snapshot +
/// write-ahead log in a data directory, so `tcvsd --data-dir` survives
/// restarts with the same root digest (clients verifying against their
/// registers never notice the restart).
///
/// Layout:
///   <dir>/snapshot.bin  — magic, ctr, creator, MerkleBTree::Serialize()
///   <dir>/wal.log       — CRC-framed transaction records since the snapshot
///
/// Every Transact appends the request to the WAL before execution (the
/// transaction is deterministic, so replay reconstructs the exact state).
/// Checkpoint() folds the WAL into a fresh snapshot. Recovery loads the
/// snapshot (if any) and replays the WAL's longest valid prefix — a torn
/// tail from a crash is dropped, which is safe: the corresponding reply can
/// never have reached a client.
/// \brief Durability knobs for DurableServer.
struct DurableOptions {
  /// fdatasync every WAL append: acknowledged transactions survive an OS
  /// crash/power loss, not just a process crash. Costs a device round trip
  /// per transaction; tcvsd enables it by default (--no-fsync opts out).
  bool fsync = false;
};

class DurableServer : public cvs::ServerApi {
 public:
  /// Opens (and recovers) a data directory. The directory must exist.
  static Result<std::unique_ptr<DurableServer>> Open(
      const std::string& dir, mtree::TreeParams params,
      DurableOptions options = {});

  /// \name ServerApi — thread-safe: each call runs under the internal
  /// mutex, so the WAL append and the in-memory apply are one atomic unit
  /// even when tcvsd's worker pool calls in concurrently.
  /// @{
  Result<util::Tainted<cvs::ServerReply>> Transact(uint32_t user,
                                    const std::vector<cvs::FileOp>& ops) override;
  Result<util::Tainted<cvs::ListReply>> List(uint32_t user,
                                             const std::string& prefix) override;
  Result<util::Tainted<cvs::LogCheckpointReply>> LogCheckpoint(
      uint64_t old_size) override;
  mtree::TreeParams tree_params() const override;
  /// @}

  /// Writes a fresh snapshot and truncates the WAL.
  Status Checkpoint();

  /// Number of WAL records accumulated since the last checkpoint.
  uint64_t wal_records() const;

  /// The wrapped in-memory server. The POINTER is safe to read anytime;
  /// DEREFERENCING it bypasses this class's lock, so callers must be in a
  /// single-threaded phase (startup, post-Serve shutdown, tests).
  cvs::UntrustedServer* server() { return server_.get(); }

 private:
  DurableServer(std::string dir, DurableOptions options,
                std::unique_ptr<cvs::UntrustedServer> server, WalWriter wal,
                uint64_t wal_records)
      : dir_(std::move(dir)),
        options_(options),
        server_(std::move(server)),
        wal_(std::move(wal)),
        wal_records_(wal_records) {}

  std::string dir_;
  DurableOptions options_;
  /// Serializes WAL-append + apply (and snapshotting) across the server's
  /// worker threads. Leaf lock: nothing else is acquired while held.
  mutable util::Mutex mu_;
  /// Set once at construction, never reassigned; the pointee is mutated
  /// only under mu_ (UntrustedServer itself is single-threaded).
  std::unique_ptr<cvs::UntrustedServer> server_ TCVS_PT_GUARDED_BY(mu_);
  WalWriter wal_ TCVS_GUARDED_BY(mu_);
  uint64_t wal_records_ TCVS_GUARDED_BY(mu_) = 0;
};

}  // namespace storage
}  // namespace tcvs
