#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "cvs/trusted.h"
#include "storage/wal.h"
#include "util/mutex.h"

namespace tcvs {
namespace storage {

/// \brief Durable wrapper around the untrusted repository server: snapshot +
/// write-ahead log in a data directory, so `tcvsd --data-dir` survives
/// restarts with the same root digest (clients verifying against their
/// registers never notice the restart).
///
/// Layout:
///   <dir>/snapshot.bin  — magic, ctr, creator, MerkleBTree::Serialize()
///   <dir>/wal.log       — CRC-framed transaction records since the snapshot
///
/// Every Transact appends the request to the WAL before execution (the
/// transaction is deterministic, so replay reconstructs the exact state).
/// Checkpoint() folds the WAL into a fresh snapshot. Recovery loads the
/// snapshot (if any) and replays the WAL's longest valid prefix — a torn
/// tail from a crash is dropped, which is safe: the corresponding reply can
/// never have reached a client.
/// \brief Durability knobs for DurableServer.
struct DurableOptions {
  /// fdatasync every WAL flush: acknowledged transactions survive an OS
  /// crash/power loss, not just a process crash. Costs a device round trip
  /// per flush; tcvsd enables it by default (--no-fsync opts out).
  bool fsync = false;
  /// Group-commit window: after appending, the flush leader waits up to
  /// this long for concurrent transactions to stage their records, then
  /// issues ONE Flush (one fdatasync in sync mode) covering the whole
  /// batch. 0 = flush immediately (the window is skipped anyway whenever
  /// no other transaction is in flight, so sequential callers never pay
  /// it). Meaningful mainly with fsync on — without it a flush is just an
  /// fflush and there is little to amortize.
  uint32_t group_commit_window_us = 0;
  /// Emulated device-sync latency added to every fdatasync. BENCH/TEST
  /// knob only (see WalWriter::set_emulated_sync_delay_us) — restores a
  /// realistic device round trip on hosts whose write cache absorbs
  /// flushes, so group-commit amortization is measurable.
  uint32_t emulated_sync_delay_us = 0;
};

/// \brief Group commit (leader/follower): Transact stages its WAL record
/// under `mu_` (buffered, not yet flushed) and takes a commit sequence
/// number; the first waiter to reach the coordinator becomes the LEADER,
/// optionally waits `group_commit_window_us` for concurrent stragglers,
/// then issues one Flush covering every staged record. FOLLOWERS just wait
/// for `durable_seq` to pass their own number. Only after its record is
/// durable does a transaction apply to the in-memory server — in strict
/// sequence-number order, so the log order IS the apply order and recovery
/// replay stays exactly-once. A reply therefore still never exists before
/// its transaction is durable, exactly as in the serial-fsync design, but
/// N concurrent transactions cost one device round trip instead of N.
class DurableServer : public cvs::ServerApi {
 public:
  /// Opens (and recovers) a data directory. The directory must exist.
  static Result<std::unique_ptr<DurableServer>> Open(
      const std::string& dir, mtree::TreeParams params,
      DurableOptions options = {});

  /// \name ServerApi — thread-safe: records are staged and applied under
  /// the internal mutex and made durable through the group-commit
  /// coordinator, so the WAL prefix and the in-memory state can never
  /// interleave two callers' transactions.
  /// @{
  Result<util::Tainted<cvs::ServerReply>> Transact(uint32_t user,
                                    const std::vector<cvs::FileOp>& ops) override;
  Result<util::Tainted<cvs::ListReply>> List(uint32_t user,
                                             const std::string& prefix) override;
  Result<util::Tainted<cvs::LogCheckpointReply>> LogCheckpoint(
      uint64_t old_size) override;
  mtree::TreeParams tree_params() const override;
  /// @}

  /// Writes a fresh snapshot and truncates the WAL. Waits for in-flight
  /// group commits to drain first, so the snapshot always contains every
  /// record the truncation is about to discard.
  Status Checkpoint();

  /// Number of WAL records accumulated since the last checkpoint.
  uint64_t wal_records() const;

  /// True while the most recent WAL append and flush both succeeded — the
  /// admin plane's /readyz probe. Flips false when the log stops taking
  /// writes (disk fault, injected WAL fault) and recovers with the next
  /// successful append/flush.
  bool wal_ok() const { return wal_ok_.load(std::memory_order_relaxed); }

  /// The wrapped in-memory server. The POINTER is safe to read anytime;
  /// DEREFERENCING it bypasses this class's lock, so callers must be in a
  /// single-threaded phase (startup, post-Serve shutdown, tests).
  cvs::UntrustedServer* server() { return server_.get(); }

 private:
  DurableServer(std::string dir, DurableOptions options,
                std::unique_ptr<cvs::UntrustedServer> server, WalWriter wal,
                uint64_t wal_records)
      : dir_(std::move(dir)),
        options_(options),
        server_(std::move(server)),
        wal_(std::move(wal)),
        wal_records_(wal_records) {}

  /// Stages `record` in the WAL buffer under mu_ and returns its commit
  /// sequence number (1-based, dense: every staged record gets the next
  /// number, so [1, appended_seq_] is exactly the staged log).
  Result<uint64_t> StageRecord(const Bytes& record);

  /// Blocks until the record with sequence number `seq` is durable (its
  /// covering Flush returned OK), electing this thread flush leader when
  /// none is active. Returns the covering flush's error otherwise.
  /// WaitDurable is a thin wrapper charging the blocked time to the ambient
  /// per-request cost accumulator (`wal_fsync_wait_us`).
  Status WaitDurable(uint64_t seq);
  Status WaitDurableImpl(uint64_t seq);

  /// Runs `apply` (which must touch server_ only) when `seq`'s turn in the
  /// apply order comes up, then passes the turn on. Called for FAILED
  /// sequence numbers too — with apply == nullptr — so the turn always
  /// advances.
  template <typename Fn>
  auto ApplyInOrder(uint64_t seq, Fn apply) {
    util::MutexLock lock(&mu_);
    while (apply_next_seq_ != seq) apply_cv_.Wait(&mu_);
    auto result = apply();
    ++apply_next_seq_;
    apply_cv_.SignalAll();
    return result;
  }
  void SkipApplyTurn(uint64_t seq);

  std::string dir_;
  DurableOptions options_;
  /// Serializes WAL staging + apply (and snapshotting) across the server's
  /// worker threads. Leaf lock: nothing else is acquired while held
  /// (gc_mu_ may be held when acquiring mu_, never the reverse).
  mutable util::Mutex mu_{"storage.durable.apply"};
  /// Set once at construction, never reassigned; the pointee is mutated
  /// only under mu_ (UntrustedServer itself is single-threaded).
  std::unique_ptr<cvs::UntrustedServer> server_ TCVS_PT_GUARDED_BY(mu_);
  WalWriter wal_ TCVS_GUARDED_BY(mu_);
  uint64_t wal_records_ TCVS_GUARDED_BY(mu_) = 0;

  /// Highest staged commit sequence number. Written under mu_ (staging is
  /// serialized); atomic so the flush leader can read it without mu_.
  std::atomic<uint64_t> appended_seq_{0};
  /// Next sequence number allowed to apply; guarded by mu_.
  uint64_t apply_next_seq_ TCVS_GUARDED_BY(mu_) = 1;
  util::CondVar apply_cv_;

  /// Transactions currently inside Transact/List — the leader skips the
  /// batching window when it is alone (nothing to wait for).
  std::atomic<uint64_t> inflight_{0};

  /// Health flag for wal_ok(); written by StageRecord and the flush leader.
  std::atomic<bool> wal_ok_{true};

  /// \name Group-commit coordinator state, guarded by gc_mu_.
  /// @{
  util::Mutex gc_mu_{"storage.wal.group_commit"};
  util::CondVar gc_cv_;
  bool gc_leader_active_ TCVS_GUARDED_BY(gc_mu_) = false;
  /// Every seq ≤ gc_durable_seq_ has had its covering flush complete.
  uint64_t gc_durable_seq_ TCVS_GUARDED_BY(gc_mu_) = 0;
  /// Per-seq flush failures; each entry is consumed (erased) by the one
  /// waiter owning that seq, so the map never grows beyond a failed batch.
  std::map<uint64_t, Status> gc_failed_ TCVS_GUARDED_BY(gc_mu_);
  /// @}
};

}  // namespace storage
}  // namespace tcvs
