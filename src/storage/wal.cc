#include "storage/wal.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/fault.h"
#include "util/metrics.h"

namespace tcvs {
namespace storage {

namespace {

const uint32_t* CrcTable() {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  const uint32_t* table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const Bytes& data) { return Crc32(data.data(), data.size()); }

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept
    : file_(other.file_),
      sync_(other.sync_),
      sync_delay_us_(other.sync_delay_us_) {
  other.file_ = nullptr;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    sync_ = other.sync_;
    sync_delay_us_ = other.sync_delay_us_;
    other.file_ = nullptr;
  }
  return *this;
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<WalWriter> WalWriter::Open(const std::string& path, bool sync) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Errno("open wal " + path);
  WalWriter w;
  w.file_ = f;
  w.sync_ = sync;
  return w;
}

Status WalWriter::Append(const Bytes& record) {
  TCVS_RETURN_NOT_OK(AppendNoFlush(record));
  return Flush();
}

Status WalWriter::AppendNoFlush(const Bytes& record) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal closed");
  TCVS_SPAN("storage.wal.append");
  static util::Counter* const appends =
      util::MetricsRegistry::Instance().GetCounter(
          "storage.wal.appends_total");
  static util::Counter* const bytes = util::MetricsRegistry::Instance()
                                          .GetCounter("storage.wal.bytes_total");
  appends->Increment();
  bytes->Increment(8 + record.size());
  uint8_t header[8];
  uint32_t len = static_cast<uint32_t>(record.size());
  uint32_t crc = Crc32(record);
  for (int i = 0; i < 4; ++i) header[i] = static_cast<uint8_t>(len >> (8 * i));
  for (int i = 0; i < 4; ++i) {
    header[4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  uint64_t torn_at = 0;
  if (util::FaultInjector::Instance().ShouldFail(kFaultWalTorn, &torn_at)) {
    // Crash mid-append: only the first `torn_at` bytes of the framed record
    // reach the file, exactly the tail a power cut leaves behind.
    Bytes framed(header, header + 8);
    framed.insert(framed.end(), record.begin(), record.end());
    size_t cut = static_cast<size_t>(torn_at) < framed.size()
                     ? static_cast<size_t>(torn_at)
                     : framed.size();
    if (cut > 0) std::fwrite(framed.data(), 1, cut, file_);
    std::fflush(file_);
    return Status::IOError("fault injected: " + std::string(kFaultWalTorn));
  }
  if (std::fwrite(header, 1, 8, file_) != 8) return Errno("wal write header");
  if (!record.empty() &&
      std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Errno("wal write payload");
  }
  return Status::OK();
}

Status WalWriter::Flush() {
  if (file_ == nullptr) return Status::FailedPrecondition("wal closed");
  if (std::fflush(file_) != 0) return Errno("wal flush");
  if (sync_) {
    if (util::FaultInjector::Instance().ShouldFail(kFaultWalSyncFail)) {
      return Status::IOError("fault injected: " +
                             std::string(kFaultWalSyncFail));
    }
    TCVS_SPAN("storage.wal.fsync");
    static util::Counter* const fsyncs =
        util::MetricsRegistry::Instance().GetCounter(
            "storage.wal.fsyncs_total");
    fsyncs->Increment();
    if (::fdatasync(::fileno(file_)) != 0) return Errno("wal fdatasync");
    if (sync_delay_us_ > 0) {
      // Emulated device round trip (bench knob; see header). Sleeps — like
      // real I/O, the wait yields the CPU to concurrently staging threads.
      std::this_thread::sleep_for(std::chrono::microseconds(sync_delay_us_));
    }
  }
  return Status::OK();
}

Result<std::vector<Bytes>> ReadWal(const std::string& path, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return std::vector<Bytes>{};
    return Errno("open wal " + path);
  }
  std::vector<Bytes> records;
  for (;;) {
    uint8_t header[8];
    size_t got = std::fread(header, 1, 8, f);
    if (got == 0) break;  // Clean EOF.
    if (got < 8) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) len |= uint32_t(header[i]) << (8 * i);
    for (int i = 0; i < 4; ++i) crc |= uint32_t(header[4 + i]) << (8 * i);
    if (len > (64u << 20)) {  // Absurd length: treat as torn tail.
      if (truncated != nullptr) *truncated = true;
      break;
    }
    Bytes payload(len);
    if (len > 0 && std::fread(payload.data(), 1, len, f) != len) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    if (Crc32(payload) != crc) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    records.push_back(std::move(payload));
  }
  std::fclose(f);
  static util::Counter* const replayed =
      util::MetricsRegistry::Instance().GetCounter(
          "storage.wal.replayed_records_total");
  static util::Counter* const torn = util::MetricsRegistry::Instance().GetCounter(
      "storage.wal.torn_tails_total");
  replayed->Increment(records.size());
  if (truncated != nullptr && *truncated) torn->Increment();
  return records;
}

Status AtomicWriteFile(const std::string& path, const Bytes& contents) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Errno("open " + tmp);
  if (!contents.empty() &&
      std::fwrite(contents.data(), 1, contents.size(), f) != contents.size()) {
    std::fclose(f);
    return Errno("write " + tmp);
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    return Errno("flush " + tmp);
  }
  std::fclose(f);
  if (util::FaultInjector::Instance().ShouldFail(kFaultAtomicCrash)) {
    // Crash between write and rename: the temp file exists, the
    // destination is untouched — the atomicity contract this fault tests.
    return Status::IOError("fault injected: " +
                           std::string(kFaultAtomicCrash));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

Result<Bytes> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open " + path);
  }
  Bytes out;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

Status TruncateFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Errno("truncate " + path);
  std::fclose(f);
  return Status::OK();
}

}  // namespace storage
}  // namespace tcvs
