#include "storage/durable.h"

#include "rpc/protocol.h"
#include "util/cost.h"
#include "util/metrics.h"
#include "util/serde.h"

namespace tcvs {
namespace storage {

namespace {

constexpr char kSnapshotMagic[] = "tcvs-snapshot-v1";

std::string SnapshotPath(const std::string& dir) { return dir + "/snapshot.bin"; }
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

// WAL record tags. Listings are read-only but still advance the protocol
// counter, so they must be logged for the recovered counter to match.
constexpr uint8_t kRecordTransact = 0;
constexpr uint8_t kRecordList = 1;

Bytes EncodeTransaction(uint32_t user, const std::vector<cvs::FileOp>& ops) {
  util::Writer w;
  w.PutU8(kRecordTransact);
  w.PutU32(user);
  w.PutU32(static_cast<uint32_t>(ops.size()));
  for (const auto& op : ops) rpc::SerializeFileOp(op, &w);
  return w.Take();
}

Bytes EncodeList(uint32_t user, const std::string& prefix) {
  util::Writer w;
  w.PutU8(kRecordList);
  w.PutU32(user);
  w.PutString(prefix);
  return w.Take();
}

// WAL apply is a trusted sink on the server's own durable state; the WAL is
// written by this process, so its records are local-origin, not tainted.
TCVS_TRUSTED_SINK Status ReplayRecord(const Bytes& record,
                                      cvs::UntrustedServer* server) {
  util::Reader r(record);
  TCVS_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  TCVS_ASSIGN_OR_RETURN(uint32_t user, r.GetU32());
  switch (tag) {
    case kRecordTransact: {
      TCVS_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
      std::vector<cvs::FileOp> ops;
      for (uint32_t i = 0; i < n; ++i) {
        TCVS_ASSIGN_OR_RETURN(cvs::FileOp op, rpc::DeserializeFileOp(&r));
        ops.push_back(std::move(op));
      }
      return server->Transact(user, ops).status();
    }
    case kRecordList: {
      TCVS_ASSIGN_OR_RETURN(std::string prefix, r.GetString());
      return server->List(user, prefix).status();
    }
    default:
      return Status::Corruption("unknown WAL record tag");
  }
}

Bytes EncodeSnapshot(const cvs::UntrustedServer& server) {
  util::Writer w;
  w.PutString(kSnapshotMagic);
  w.PutU64(server.ctr());
  w.PutU32(server.creator());
  w.PutBytes(server.tree().Serialize());
  const auto& leaves = server.log_leaf_hashes();
  w.PutU64(leaves.size());
  for (const auto& leaf : leaves) w.PutRaw(leaf);
  return w.Take();
}

}  // namespace

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, mtree::TreeParams params, DurableOptions options) {
  // 1. Base state: the snapshot if one exists, else an empty repository.
  std::unique_ptr<cvs::UntrustedServer> server;
  auto snapshot_or = ReadFileBytes(SnapshotPath(dir));
  if (snapshot_or.ok()) {
    util::Reader r(*snapshot_or);
    TCVS_ASSIGN_OR_RETURN(std::string magic, r.GetString());
    if (magic != kSnapshotMagic) {
      return Status::Corruption("bad snapshot magic in " + dir);
    }
    TCVS_ASSIGN_OR_RETURN(uint64_t ctr, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(uint32_t creator, r.GetU32());
    TCVS_ASSIGN_OR_RETURN(Bytes tree_bytes, r.GetBytes());
    TCVS_ASSIGN_OR_RETURN(mtree::MerkleBTree tree,
                          mtree::MerkleBTree::Deserialize(tree_bytes, params));
    TCVS_ASSIGN_OR_RETURN(uint64_t n_leaves, r.GetU64());
    std::vector<crypto::Digest> leaves;
    for (uint64_t i = 0; i < n_leaves; ++i) {
      TCVS_ASSIGN_OR_RETURN(crypto::Digest leaf, r.GetRaw(crypto::kDigestSize));
      leaves.push_back(std::move(leaf));
    }
    server = std::make_unique<cvs::UntrustedServer>(std::move(tree), ctr,
                                                    creator, std::move(leaves));
  } else if (snapshot_or.status().IsNotFound()) {
    server = std::make_unique<cvs::UntrustedServer>(params);
  } else {
    return snapshot_or.status();
  }

  // 2. Replay the WAL's longest valid prefix on top.
  bool truncated = false;
  TCVS_ASSIGN_OR_RETURN(std::vector<Bytes> records,
                        ReadWal(WalPath(dir), &truncated));
  {
    TCVS_SPAN("storage.recovery.replay");
    for (const auto& record : records) {
      TCVS_RETURN_NOT_OK(ReplayRecord(record, server.get()));
    }
  }
  static util::Counter* const recoveries =
      util::MetricsRegistry::Instance().GetCounter(
          "storage.recovery.opens_total");
  recoveries->Increment();
  if (truncated) {
    // Drop the torn tail so future appends start from a clean prefix: fold
    // the replayed state into a snapshot and reset the log.
    Bytes snapshot = EncodeSnapshot(*server);
    TCVS_RETURN_NOT_OK(AtomicWriteFile(SnapshotPath(dir), snapshot));
    TCVS_RETURN_NOT_OK(TruncateFile(WalPath(dir)));
    records.clear();
  }

  TCVS_ASSIGN_OR_RETURN(WalWriter wal,
                        WalWriter::Open(WalPath(dir), options.fsync));
  wal.set_emulated_sync_delay_us(options.emulated_sync_delay_us);
  return std::unique_ptr<DurableServer>(
      new DurableServer(dir, options, std::move(server), std::move(wal),
                        records.size()));
}

Result<uint64_t> DurableServer::StageRecord(const Bytes& record) {
  util::MutexLock lock(&mu_);
  Status st = wal_.AppendNoFlush(record);
  wal_ok_.store(st.ok(), std::memory_order_relaxed);
  TCVS_RETURN_NOT_OK(st);
  if (util::CostCounters* cost = util::CurrentCostCounters()) {
    cost->wal_appends++;
  }
  ++wal_records_;
  const uint64_t seq = appended_seq_.load(std::memory_order_relaxed) + 1;
  appended_seq_.store(seq, std::memory_order_release);
  return seq;
}

Status DurableServer::WaitDurable(uint64_t seq) {
  util::CostCounters* cost = util::CurrentCostCounters();
  if (cost == nullptr) return WaitDurableImpl(seq);
  const uint64_t start_us = util::MonotonicMicros();
  Status st = WaitDurableImpl(seq);
  cost->wal_fsync_wait_us += util::MonotonicMicros() - start_us;
  return st;
}

Status DurableServer::WaitDurableImpl(uint64_t seq) {
  static util::Counter* const flushes =
      util::MetricsRegistry::Instance().GetCounter(
          "storage.wal.group_commit.flushes_total");
  static util::LatencyHistogram* const batch_size =
      util::MetricsRegistry::Instance().GetLatency(
          "storage.wal.group_commit.batch_size");

  gc_mu_.Lock();
  for (;;) {
    if (gc_durable_seq_ >= seq) {
      // Resolved. Failed seqs carry their covering flush's error; each
      // entry is consumed exactly once, by the waiter that owns the seq.
      Status st = Status::OK();
      auto it = gc_failed_.find(seq);
      if (it != gc_failed_.end()) {
        st = it->second;
        gc_failed_.erase(it);
      }
      gc_mu_.Unlock();
      return st;
    }
    if (!gc_leader_active_) {
      // Become the flush leader. With other transactions in flight, hold
      // the batching window open so their records join this flush; alone,
      // flush immediately — a sequential workload never pays the window.
      gc_leader_active_ = true;
      // The window only pays off when a flush costs a device sync: with
      // fsync off a flush is a page-cache fflush, so waiting would add
      // latency with nothing to amortize — ignore the window there.
      if (options_.fsync && options_.group_commit_window_us > 0 &&
          inflight_.load(std::memory_order_relaxed) > 1) {
        gc_cv_.WaitForUs(&gc_mu_, options_.group_commit_window_us);
      }
      gc_mu_.Unlock();

      uint64_t flush_to = 0;
      Status st;
      {
        // One Flush covers every record staged so far: fflush pushes the
        // whole stdio buffer, and (in sync mode) one fdatasync makes the
        // batch durable.
        util::MutexLock wal_lock(&mu_);
        flush_to = appended_seq_.load(std::memory_order_relaxed);
        st = wal_.Flush();
      }

      wal_ok_.store(st.ok(), std::memory_order_relaxed);

      gc_mu_.Lock();
      gc_leader_active_ = false;
      if (flush_to > gc_durable_seq_) {
        flushes->Increment();
        batch_size->Record(flush_to - gc_durable_seq_);
        if (!st.ok()) {
          for (uint64_t s = gc_durable_seq_ + 1; s <= flush_to; ++s) {
            gc_failed_[s] = st;
          }
        }
        gc_durable_seq_ = flush_to;
      }
      gc_cv_.SignalAll();
      continue;  // Loop around to resolve our own seq.
    }
    gc_cv_.Wait(&gc_mu_);
  }
}

void DurableServer::SkipApplyTurn(uint64_t seq) {
  util::MutexLock lock(&mu_);
  while (apply_next_seq_ != seq) apply_cv_.Wait(&mu_);
  ++apply_next_seq_;
  apply_cv_.SignalAll();
}

Result<util::Tainted<cvs::ServerReply>> DurableServer::Transact(
    uint32_t user, const std::vector<cvs::FileOp>& ops) {
  // Log, make durable, then apply: a reply only exists once its
  // transaction is durable, so recovery can never lose an acknowledged
  // state transition. Staging is serialized under mu_ and the apply runs
  // strictly in staging order, so the log order IS the apply order, which
  // recovery replay depends on; between the two, the group-commit
  // coordinator amortizes one flush over every concurrently staged record.
  inflight_.fetch_add(1, std::memory_order_relaxed);
  auto done = [this] { inflight_.fetch_sub(1, std::memory_order_relaxed); };
  auto seq = StageRecord(EncodeTransaction(user, ops));
  if (!seq.ok()) {
    done();
    return seq.status();
  }
  Status durable = WaitDurable(*seq);
  if (!durable.ok()) {
    // The record never became durable: fail WITHOUT applying (the reply
    // must not exist), but still pass the apply turn on.
    SkipApplyTurn(*seq);
    done();
    return durable;
  }
  auto reply = ApplyInOrder(*seq, [&] { return server_->Transact(user, ops); });
  done();
  return reply;
}

Result<util::Tainted<cvs::ListReply>> DurableServer::List(
    uint32_t user, const std::string& prefix) {
  inflight_.fetch_add(1, std::memory_order_relaxed);
  auto done = [this] { inflight_.fetch_sub(1, std::memory_order_relaxed); };
  auto seq = StageRecord(EncodeList(user, prefix));
  if (!seq.ok()) {
    done();
    return seq.status();
  }
  Status durable = WaitDurable(*seq);
  if (!durable.ok()) {
    SkipApplyTurn(*seq);
    done();
    return durable;
  }
  auto reply = ApplyInOrder(*seq, [&] { return server_->List(user, prefix); });
  done();
  return reply;
}

Result<util::Tainted<cvs::LogCheckpointReply>> DurableServer::LogCheckpoint(
    uint64_t old_size) {
  util::MutexLock lock(&mu_);
  return server_->LogCheckpoint(old_size);
}

mtree::TreeParams DurableServer::tree_params() const {
  util::MutexLock lock(&mu_);
  return server_->tree_params();
}

uint64_t DurableServer::wal_records() const {
  util::MutexLock lock(&mu_);
  return wal_records_;
}

Status DurableServer::Checkpoint() {
  TCVS_SPAN("storage.checkpoint");
  static util::Counter* const checkpoints =
      util::MetricsRegistry::Instance().GetCounter(
          "storage.checkpoints_total");
  checkpoints->Increment();
  util::MutexLock lock(&mu_);
  // Drain in-flight group commits: every staged record must have taken its
  // apply turn (or skipped it) before the snapshot is cut and the WAL
  // truncated, otherwise truncation could discard a record that was staged
  // but not yet folded into the snapshot state. Applies need mu_, which
  // Wait releases, so the drain makes progress.
  while (apply_next_seq_ <= appended_seq_.load(std::memory_order_acquire)) {
    apply_cv_.Wait(&mu_);
  }
  TCVS_RETURN_NOT_OK(AtomicWriteFile(SnapshotPath(dir_),
                                     EncodeSnapshot(*server_)));
  wal_.Close();
  TCVS_RETURN_NOT_OK(TruncateFile(WalPath(dir_)));
  TCVS_ASSIGN_OR_RETURN(wal_, WalWriter::Open(WalPath(dir_), options_.fsync));
  wal_.set_emulated_sync_delay_us(options_.emulated_sync_delay_us);
  wal_records_ = 0;
  return Status::OK();
}

}  // namespace storage
}  // namespace tcvs
