#include "mtree/btree.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/serde.h"

namespace tcvs {
namespace mtree {

namespace {
size_t RouteChild(const std::vector<Bytes>& keys, const Bytes& key) {
  return std::upper_bound(keys.begin(), keys.end(), key) - keys.begin();
}
}  // namespace

struct MerkleBTree::Node {
  bool is_leaf = true;
  // Leaf: entry keys; internal: separator keys.
  std::vector<Bytes> keys;
  // Leaf only; parallel to keys.
  std::vector<Bytes> values;
  std::vector<Digest> value_hashes;
  // Internal only; size keys.size() + 1.
  std::vector<std::unique_ptr<Node>> children;
  Digest digest;
};

struct MerkleBTree::SplitResult {
  Bytes separator;
  std::unique_ptr<Node> right;
};

MerkleBTree::MerkleBTree(TreeParams params) : params_(params) {
  root_ = std::make_unique<Node>();
  RecomputeDigest(root_.get());
  root_digest_ = root_->digest;
}

MerkleBTree::~MerkleBTree() = default;
MerkleBTree::MerkleBTree(MerkleBTree&&) noexcept = default;
MerkleBTree& MerkleBTree::operator=(MerkleBTree&&) noexcept = default;

void MerkleBTree::RecomputeDigest(Node* node) {
  if (node->is_leaf) {
    std::vector<EntryView> entries;
    entries.reserve(node->keys.size());
    for (size_t i = 0; i < node->keys.size(); ++i) {
      entries.push_back(EntryView{node->keys[i], node->value_hashes[i], std::nullopt});
    }
    node->digest = LeafDigest(entries);
  } else {
    std::vector<Digest> child_digests;
    child_digests.reserve(node->children.size());
    for (const auto& c : node->children) child_digests.push_back(c->digest);
    node->digest = InternalDigest(node->keys, child_digests);
  }
}

size_t MerkleBTree::height() const {
  size_t h = 0;
  // Depth can vary across subtrees after delete collapses; report the max.
  struct Walker {
    static size_t Depth(const Node* n) {
      if (n->is_leaf) return 1;
      size_t best = 0;
      for (const auto& c : n->children) best = std::max(best, Depth(c.get()));
      return best + 1;
    }
  };
  h = Walker::Depth(root_.get());
  return h;
}

std::optional<Bytes> MerkleBTree::Get(const Bytes& key) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children[RouteChild(node->keys, key)].get();
  }
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it != node->keys.end() && *it == key) {
    return node->values[it - node->keys.begin()];
  }
  return std::nullopt;
}

std::vector<std::pair<Bytes, Bytes>> MerkleBTree::Range(const Bytes& lo,
                                                        const Bytes& hi) const {
  std::vector<std::pair<Bytes, Bytes>> out;
  struct Walker {
    const Bytes& lo;
    const Bytes& hi;
    std::vector<std::pair<Bytes, Bytes>>* out;
    void Walk(const Node* n) {
      if (n->is_leaf) {
        for (size_t i = 0; i < n->keys.size(); ++i) {
          if (lo <= n->keys[i] && n->keys[i] <= hi) {
            out->emplace_back(n->keys[i], n->values[i]);
          }
        }
        return;
      }
      const size_t nkeys = n->keys.size();
      for (size_t i = 0; i <= nkeys; ++i) {
        bool intersects =
            (i == 0 || n->keys[i - 1] <= hi) && (i == nkeys || lo < n->keys[i]);
        if (intersects) Walk(n->children[i].get());
      }
    }
  };
  if (hi < lo) return out;
  Walker{lo, hi, &out}.Walk(root_.get());
  return out;
}

std::vector<std::pair<Bytes, Bytes>> MerkleBTree::Items() const {
  std::vector<std::pair<Bytes, Bytes>> out;
  struct Walker {
    std::vector<std::pair<Bytes, Bytes>>* out;
    void Walk(const Node* n) {
      if (n->is_leaf) {
        for (size_t i = 0; i < n->keys.size(); ++i) {
          out->emplace_back(n->keys[i], n->values[i]);
        }
        return;
      }
      for (const auto& c : n->children) Walk(c.get());
    }
  };
  Walker{&out}.Walk(root_.get());
  return out;
}

NodeView MerkleBTree::BuildPointView(const Node* node, const Bytes& key) const {
  NodeView view;
  view.is_leaf = node->is_leaf;
  if (node->is_leaf) {
    view.entries.reserve(node->keys.size());
    for (size_t i = 0; i < node->keys.size(); ++i) {
      EntryView e{node->keys[i], node->value_hashes[i], std::nullopt};
      if (node->keys[i] == key) e.value = node->values[i];
      view.entries.push_back(std::move(e));
    }
    return view;
  }
  view.keys = node->keys;
  view.child_digests.reserve(node->children.size());
  for (const auto& c : node->children) view.child_digests.push_back(c->digest);
  size_t ci = RouteChild(node->keys, key);
  view.expanded.emplace(static_cast<uint32_t>(ci),
                        BuildPointView(node->children[ci].get(), key));
  return view;
}

PointVO MerkleBTree::ProvePoint(const Bytes& key) const {
  TCVS_SPAN("mtree.tree.prove_point");
  return PointVO{BuildPointView(root_.get(), key)};
}

NodeView MerkleBTree::BuildRangeView(const Node* node, const Bytes& lo,
                                     const Bytes& hi) const {
  NodeView view;
  view.is_leaf = node->is_leaf;
  if (node->is_leaf) {
    view.entries.reserve(node->keys.size());
    for (size_t i = 0; i < node->keys.size(); ++i) {
      EntryView e{node->keys[i], node->value_hashes[i], std::nullopt};
      if (lo <= node->keys[i] && node->keys[i] <= hi) e.value = node->values[i];
      view.entries.push_back(std::move(e));
    }
    return view;
  }
  view.keys = node->keys;
  view.child_digests.reserve(node->children.size());
  for (const auto& c : node->children) view.child_digests.push_back(c->digest);
  const size_t nkeys = node->keys.size();
  for (size_t i = 0; i <= nkeys; ++i) {
    bool intersects =
        (i == 0 || node->keys[i - 1] <= hi) && (i == nkeys || lo < node->keys[i]);
    if (intersects) {
      view.expanded.emplace(static_cast<uint32_t>(i),
                            BuildRangeView(node->children[i].get(), lo, hi));
    }
  }
  return view;
}

RangeVO MerkleBTree::ProveRange(const Bytes& lo, const Bytes& hi) const {
  TCVS_SPAN("mtree.tree.prove_range");
  return RangeVO{BuildRangeView(root_.get(), lo, hi)};
}

std::optional<MerkleBTree::SplitResult> MerkleBTree::UpsertRec(Node* node,
                                                               const Bytes& key,
                                                               const Bytes& value) {
  if (node->is_leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    size_t idx = it - node->keys.begin();
    Digest vh = crypto::Sha256::Hash(value);
    if (it != node->keys.end() && *it == key) {
      node->values[idx] = value;
      node->value_hashes[idx] = vh;
    } else {
      node->keys.insert(it, key);
      node->values.insert(node->values.begin() + idx, value);
      node->value_hashes.insert(node->value_hashes.begin() + idx, vh);
      ++size_;
    }
    if (node->keys.size() <= params_.max_leaf_entries) {
      RecomputeDigest(node);
      return std::nullopt;
    }
    // Split: left keeps [0, mid), right takes [mid, end); separator is the
    // first right key. Must match vo.cc's ReplayUpsert exactly.
    size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>();
    right->is_leaf = true;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->values.assign(node->values.begin() + mid, node->values.end());
    right->value_hashes.assign(node->value_hashes.begin() + mid,
                               node->value_hashes.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    node->value_hashes.resize(mid);
    RecomputeDigest(node);
    RecomputeDigest(right.get());
    Bytes sep = right->keys.front();
    return SplitResult{std::move(sep), std::move(right)};
  }

  size_t ci = RouteChild(node->keys, key);
  auto split = UpsertRec(node->children[ci].get(), key, value);
  if (split.has_value()) {
    node->keys.insert(node->keys.begin() + ci, split->separator);
    node->children.insert(node->children.begin() + ci + 1, std::move(split->right));
  }
  if (node->keys.size() <= params_.max_internal_keys) {
    RecomputeDigest(node);
    return std::nullopt;
  }
  // Internal split: middle key moves up. Must match vo.cc.
  size_t mid = node->keys.size() / 2;
  Bytes up_key = node->keys[mid];
  auto right = std::make_unique<Node>();
  right->is_leaf = false;
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  for (size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  RecomputeDigest(node);
  RecomputeDigest(right.get());
  return SplitResult{std::move(up_key), std::move(right)};
}

PointVO MerkleBTree::Upsert(const Bytes& key, const Bytes& value) {
  TCVS_SPAN("mtree.tree.upsert");
  PointVO vo = ProvePoint(key);
  auto split = UpsertRec(root_.get(), key, value);
  if (split.has_value()) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->keys.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
    RecomputeDigest(root_.get());
  }
  root_digest_ = root_->digest;
  return vo;
}

bool MerkleBTree::DeleteRec(Node* node, const Bytes& key, bool* found) {
  if (node->is_leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it == node->keys.end() || *it != key) {
      *found = false;
      return false;
    }
    size_t idx = it - node->keys.begin();
    node->keys.erase(it);
    node->values.erase(node->values.begin() + idx);
    node->value_hashes.erase(node->value_hashes.begin() + idx);
    --size_;
    *found = true;
    RecomputeDigest(node);
    return node->keys.empty();
  }

  size_t ci = RouteChild(node->keys, key);
  bool child_empty = DeleteRec(node->children[ci].get(), key, found);
  if (child_empty) {
    // Unlink empty leaf + one adjacent separator; must match vo.cc.
    node->children.erase(node->children.begin() + ci);
    node->keys.erase(node->keys.begin() + (ci > 0 ? ci - 1 : 0));
    if (node->keys.empty()) {
      // Collapse this node into its single remaining child.
      std::unique_ptr<Node> only = std::move(node->children[0]);
      *node = std::move(*only);
      // Digest already correct for the moved-in child.
      return false;
    }
  }
  RecomputeDigest(node);
  return false;
}

PointVO MerkleBTree::Delete(const Bytes& key, bool* found) {
  TCVS_SPAN("mtree.tree.delete");
  PointVO vo = ProvePoint(key);
  *found = false;
  DeleteRec(root_.get(), key, found);
  root_digest_ = root_->digest;
  return vo;
}

MerkleBTree MerkleBTree::Clone() const {
  // Structural deep copy: node shape (not just contents) determines internal
  // digests, so a rebuild-by-reinsertion would not preserve the root digest.
  struct Copier {
    static std::unique_ptr<Node> Copy(const Node* n) {
      auto out = std::make_unique<Node>();
      out->is_leaf = n->is_leaf;
      out->keys = n->keys;
      out->values = n->values;
      out->value_hashes = n->value_hashes;
      out->digest = n->digest;
      out->children.reserve(n->children.size());
      for (const auto& c : n->children) out->children.push_back(Copy(c.get()));
      return out;
    }
  };
  MerkleBTree copy(params_);
  copy.root_ = Copier::Copy(root_.get());
  copy.root_digest_ = root_digest_;
  copy.size_ = size_;
  return copy;
}

namespace {
constexpr uint32_t kMaxSerializedFanout = 1u << 20;
}  // namespace

Bytes MerkleBTree::Serialize() const {
  struct Walker {
    static void Write(const Node* n, util::Writer* w) {
      w->PutU8(n->is_leaf ? 1 : 0);
      if (n->is_leaf) {
        w->PutU32(static_cast<uint32_t>(n->keys.size()));
        for (size_t i = 0; i < n->keys.size(); ++i) {
          w->PutBytes(n->keys[i]);
          w->PutBytes(n->values[i]);
        }
      } else {
        w->PutU32(static_cast<uint32_t>(n->keys.size()));
        for (const auto& k : n->keys) w->PutBytes(k);
        for (const auto& c : n->children) Write(c.get(), w);
      }
    }
  };
  util::Writer w;
  w.PutString("tcvs-mtree-v1");
  w.PutU64(params_.max_leaf_entries);
  w.PutU64(params_.max_internal_keys);
  w.PutU64(size_);
  Walker::Write(root_.get(), &w);
  return w.Take();
}

Result<MerkleBTree> MerkleBTree::Deserialize(const Bytes& data,
                                             TreeParams params) {
  struct Loader {
    MerkleBTree* tree;
    size_t* entries;
    Result<std::unique_ptr<Node>> Read(util::Reader* r, int depth) {
      if (depth > 64) return Status::InvalidArgument("tree nesting too deep");
      auto node = std::make_unique<Node>();
      TCVS_ASSIGN_OR_RETURN(uint8_t is_leaf, r->GetU8());
      node->is_leaf = (is_leaf == 1);
      TCVS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
      if (n > kMaxSerializedFanout) {
        return Status::InvalidArgument("node too wide");
      }
      if (node->is_leaf) {
        for (uint32_t i = 0; i < n; ++i) {
          TCVS_ASSIGN_OR_RETURN(Bytes key, r->GetBytes());
          TCVS_ASSIGN_OR_RETURN(Bytes value, r->GetBytes());
          node->value_hashes.push_back(crypto::Sha256::Hash(value));
          node->keys.push_back(std::move(key));
          node->values.push_back(std::move(value));
        }
        *entries += node->keys.size();
      } else {
        for (uint32_t i = 0; i < n; ++i) {
          TCVS_ASSIGN_OR_RETURN(Bytes key, r->GetBytes());
          node->keys.push_back(std::move(key));
        }
        for (uint32_t i = 0; i < n + 1; ++i) {
          TCVS_ASSIGN_OR_RETURN(std::unique_ptr<Node> child, Read(r, depth + 1));
          node->children.push_back(std::move(child));
        }
      }
      tree->RecomputeDigest(node.get());
      return node;
    }
  };

  util::Reader r(data);
  TCVS_ASSIGN_OR_RETURN(std::string magic, r.GetString());
  if (magic != "tcvs-mtree-v1") {
    return Status::InvalidArgument("bad tree snapshot magic");
  }
  TCVS_ASSIGN_OR_RETURN(uint64_t max_leaf, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(uint64_t max_internal, r.GetU64());
  params.max_leaf_entries = max_leaf;
  params.max_internal_keys = max_internal;
  TCVS_ASSIGN_OR_RETURN(uint64_t size, r.GetU64());

  MerkleBTree tree(params);
  size_t entries = 0;
  Loader loader{&tree, &entries};
  TCVS_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, loader.Read(&r, 0));
  if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes after snapshot");
  if (entries != size) {
    return Status::Corruption("snapshot entry count does not match header");
  }
  tree.root_ = std::move(root);
  tree.size_ = entries;
  tree.root_digest_ = tree.root_->digest;
  TCVS_RETURN_NOT_OK(tree.CheckInvariants());
  return tree;
}

MerkleBTree::Cursor MerkleBTree::NewCursor() const {
  return Cursor(root_.get());
}

void MerkleBTree::Cursor::DescendToLeftmost(const Node* node) {
  while (!node->is_leaf) {
    stack_.emplace_back(node, 0);
    node = node->children[0].get();
  }
  if (node->keys.empty()) {
    // Empty leaf (only possible at the root of an empty tree).
    stack_.clear();
    return;
  }
  stack_.emplace_back(node, 0);
}

void MerkleBTree::Cursor::SeekToFirst() {
  stack_.clear();
  DescendToLeftmost(root_);
}

void MerkleBTree::Cursor::Seek(const Bytes& key) {
  stack_.clear();
  const Node* node = root_;
  while (!node->is_leaf) {
    size_t ci = RouteChild(node->keys, key);
    stack_.emplace_back(node, ci);
    node = node->children[ci].get();
  }
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it != node->keys.end()) {
    stack_.emplace_back(node, size_t(it - node->keys.begin()));
    return;
  }
  // The leaf has no entry ≥ key: advance to the next leaf via the stack.
  while (!stack_.empty()) {
    auto& [parent, ci] = stack_.back();
    if (ci + 1 < parent->children.size()) {
      ci += 1;
      DescendToLeftmost(parent->children[ci].get());
      return;
    }
    stack_.pop_back();
  }
}

const Bytes& MerkleBTree::Cursor::key() const {
  return stack_.back().first->keys[stack_.back().second];
}

const Bytes& MerkleBTree::Cursor::value() const {
  return stack_.back().first->values[stack_.back().second];
}

void MerkleBTree::Cursor::Next() {
  auto& [leaf, idx] = stack_.back();
  if (idx + 1 < leaf->keys.size()) {
    idx += 1;
    return;
  }
  stack_.pop_back();
  while (!stack_.empty()) {
    auto& [parent, ci] = stack_.back();
    if (ci + 1 < parent->children.size()) {
      ci += 1;
      DescendToLeftmost(parent->children[ci].get());
      return;
    }
    stack_.pop_back();
  }
}

Result<MerkleBTree> MerkleBTree::BulkLoad(
    const std::vector<std::pair<Bytes, Bytes>>& items, TreeParams params) {
  for (size_t i = 1; i < items.size(); ++i) {
    if (!(items[i - 1].first < items[i].first)) {
      return Status::InvalidArgument(
          "bulk-load input must be strictly sorted and unique");
    }
  }
  MerkleBTree tree(params);
  if (items.empty()) return tree;

  // Level 0: fully packed leaves, each remembering its first key.
  struct Built {
    std::unique_ptr<Node> node;
    Bytes min_key;
  };
  std::vector<Built> level;
  for (size_t start = 0; start < items.size();
       start += params.max_leaf_entries) {
    size_t end = std::min(items.size(), start + params.max_leaf_entries);
    auto leaf = std::make_unique<Node>();
    leaf->is_leaf = true;
    for (size_t i = start; i < end; ++i) {
      leaf->keys.push_back(items[i].first);
      leaf->values.push_back(items[i].second);
      leaf->value_hashes.push_back(crypto::Sha256::Hash(items[i].second));
    }
    tree.RecomputeDigest(leaf.get());
    Bytes min_key = leaf->keys.front();
    level.push_back(Built{std::move(leaf), std::move(min_key)});
  }

  // Upper levels: group up to max_internal_keys+1 children per node; if the
  // tail group would hold a single child, steal one from its neighbour so
  // every internal node has ≥ 2 children.
  while (level.size() > 1) {
    const size_t group = params.max_internal_keys + 1;
    std::vector<size_t> sizes;
    size_t remaining = level.size();
    while (remaining > 0) {
      size_t take = std::min(group, remaining);
      if (remaining - take == 1 && take == group) take -= 1;
      sizes.push_back(take);
      remaining -= take;
    }
    std::vector<Built> next;
    size_t pos = 0;
    for (size_t take : sizes) {
      auto node = std::make_unique<Node>();
      node->is_leaf = false;
      Bytes min_key = level[pos].min_key;
      for (size_t i = 0; i < take; ++i) {
        if (i > 0) node->keys.push_back(level[pos + i].min_key);
        node->children.push_back(std::move(level[pos + i].node));
      }
      tree.RecomputeDigest(node.get());
      next.push_back(Built{std::move(node), std::move(min_key)});
      pos += take;
    }
    level = std::move(next);
  }

  tree.root_ = std::move(level[0].node);
  tree.root_digest_ = tree.root_->digest;
  tree.size_ = items.size();
  return tree;
}

Status MerkleBTree::CheckInvariants() const {
  struct Checker {
    const TreeParams& params;
    Status Check(const Node* n, const Bytes* lo, const Bytes* hi) const {
      for (size_t i = 1; i < n->keys.size(); ++i) {
        if (!(n->keys[i - 1] < n->keys[i])) {
          return Status::Corruption("node keys not strictly sorted");
        }
      }
      for (const auto& k : n->keys) {
        if (lo && k < *lo) return Status::Corruption("key below subtree bound");
        if (hi && !(k < *hi)) return Status::Corruption("key above subtree bound");
      }
      if (n->is_leaf) {
        if (n->keys.size() > params.max_leaf_entries) {
          return Status::Corruption("leaf overflow");
        }
        if (n->values.size() != n->keys.size() ||
            n->value_hashes.size() != n->keys.size()) {
          return Status::Corruption("leaf arrays out of sync");
        }
        for (size_t i = 0; i < n->keys.size(); ++i) {
          if (crypto::Sha256::Hash(n->values[i]) != n->value_hashes[i]) {
            return Status::Corruption("stale value hash");
          }
        }
        std::vector<EntryView> entries;
        for (size_t i = 0; i < n->keys.size(); ++i) {
          entries.push_back(EntryView{n->keys[i], n->value_hashes[i], std::nullopt});
        }
        if (LeafDigest(entries) != n->digest) {
          return Status::Corruption("stale leaf digest");
        }
        return Status::OK();
      }
      if (n->keys.empty()) return Status::Corruption("internal node without keys");
      if (n->keys.size() > params.max_internal_keys) {
        return Status::Corruption("internal overflow");
      }
      if (n->children.size() != n->keys.size() + 1) {
        return Status::Corruption("internal child count mismatch");
      }
      std::vector<Digest> child_digests;
      for (size_t i = 0; i < n->children.size(); ++i) {
        const Bytes* clo = (i == 0) ? lo : &n->keys[i - 1];
        const Bytes* chi = (i == n->keys.size()) ? hi : &n->keys[i];
        TCVS_RETURN_NOT_OK(Check(n->children[i].get(), clo, chi));
        child_digests.push_back(n->children[i]->digest);
      }
      if (InternalDigest(n->keys, child_digests) != n->digest) {
        return Status::Corruption("stale internal digest");
      }
      return Status::OK();
    }
  };
  TCVS_RETURN_NOT_OK(Checker{params_}.Check(root_.get(), nullptr, nullptr));
  if (root_->digest != root_digest_) {
    return Status::Corruption("cached root digest stale");
  }
  return Status::OK();
}

}  // namespace mtree
}  // namespace tcvs
