#pragma once

#include <memory>
#include <vector>

#include "mtree/vo.h"

namespace tcvs {
namespace mtree {

/// \brief The server-side Merkle B⁺-tree (paper §4.1): a B⁺-tree whose every
/// node carries a digest; leaves digest their (key, H(value)) entries and
/// internal nodes digest their separators and children digests. The root
/// digest M(D) authenticates the entire database.
///
/// Mutating operations return the *pre-state* verification object for the
/// touched path; a client holding the trusted pre-state root digest verifies
/// it and replays the mutation locally (vo.h) to learn the post-state root,
/// so the split/collapse rules here and in vo.cc are deliberately identical
/// and are property-tested against each other.
///
/// Deletions unlink empty leaves and collapse single-child internal nodes but
/// do not rebalance; CVS workloads are insert/update heavy, so the height
/// bound O(log n) holds where it matters. This substitution is recorded in
/// DESIGN.md.
class MerkleBTree {
 private:
  struct Node;  // Declared early: Cursor below holds Node pointers.

 public:
  explicit MerkleBTree(TreeParams params = TreeParams{});
  ~MerkleBTree();

  MerkleBTree(const MerkleBTree&) = delete;
  MerkleBTree& operator=(const MerkleBTree&) = delete;
  MerkleBTree(MerkleBTree&&) noexcept;
  MerkleBTree& operator=(MerkleBTree&&) noexcept;

  const TreeParams& params() const { return params_; }

  /// Current root digest M(D).
  const Digest& root_digest() const { return root_digest_; }

  /// Number of entries.
  size_t size() const { return size_; }

  /// Longest root-to-leaf path length (1 for a lone leaf).
  size_t height() const;

  /// \name Unauthenticated access (trusted-server path).
  /// @{
  std::optional<Bytes> Get(const Bytes& key) const;
  std::vector<std::pair<Bytes, Bytes>> Range(const Bytes& lo, const Bytes& hi) const;
  std::vector<std::pair<Bytes, Bytes>> Items() const;
  /// @}

  /// Builds the verification object for a point query on `key` against the
  /// current state: the fully expanded root-to-leaf path, including the
  /// value when the key is present (membership) or the full leaf otherwise
  /// (non-membership).
  PointVO ProvePoint(const Bytes& key) const;

  /// Builds the verification object for a range scan over [lo, hi]: the
  /// minimal covering subtree with values attached to in-range entries.
  RangeVO ProveRange(const Bytes& lo, const Bytes& hi) const;

  /// Inserts or updates (key → value). Returns the pre-state PointVO for the
  /// key so the requesting client can verify and replay.
  PointVO Upsert(const Bytes& key, const Bytes& value);

  /// Removes `key` if present (no-op otherwise). Returns the pre-state
  /// PointVO; `*found` reports whether the key existed.
  PointVO Delete(const Bytes& key, bool* found);

  /// \brief Ordered forward cursor over the tree's entries (RocksDB-style
  /// iterator). Invalidated by any mutation of the tree.
  class Cursor {
   public:
    /// Positions at the first entry ≥ `key`.
    void Seek(const Bytes& key);
    void SeekToFirst();
    bool Valid() const { return !stack_.empty(); }
    void Next();
    /// Current entry; undefined unless Valid().
    const Bytes& key() const;
    const Bytes& value() const;

   private:
    friend class MerkleBTree;
    explicit Cursor(const Node* root) : root_(root) {}
    void DescendToLeftmost(const Node* node);

    const Node* root_;
    // Path of (node, child/entry index); top is the leaf position.
    std::vector<std::pair<const Node*, size_t>> stack_;
  };

  /// Creates a cursor (initially not Valid; call Seek*/SeekToFirst).
  Cursor NewCursor() const;

  /// Validates structural invariants (sorted keys, separator bounds, digest
  /// cache consistency, occupancy limits). For tests.
  Status CheckInvariants() const;

  /// Deep copy with identical contents (and therefore an identical root
  /// digest). Used by adversarial servers to fork the database state.
  MerkleBTree Clone() const;

  /// Structural snapshot of the whole tree (keys, values, shape). The shape
  /// is preserved exactly, so the restored tree has the same root digest —
  /// a server can persist and restart without clients noticing.
  Bytes Serialize() const;

  /// Restores a tree from Serialize() output, recomputing and validating
  /// all digests. \return Corruption/InvalidArgument on malformed input.
  // taint-exempt: local-origin — restores the server's own persisted tree;
  // every digest is recomputed and validated during the parse.
  static Result<MerkleBTree> Deserialize(const Bytes& data,
                                         TreeParams params = TreeParams{});

  /// Builds a tree from strictly-sorted unique (key, value) pairs by packing
  /// nodes left to right — O(n) construction (vs O(n log n) incremental
  /// inserts) with fully-packed leaves.
  /// \return InvalidArgument when items are unsorted or duplicated.
  static Result<MerkleBTree> BulkLoad(
      const std::vector<std::pair<Bytes, Bytes>>& items,
      TreeParams params = TreeParams{});

 private:


  void RecomputeDigest(Node* node);
  NodeView BuildPointView(const Node* node, const Bytes& key) const;
  NodeView BuildRangeView(const Node* node, const Bytes& lo, const Bytes& hi) const;

  // Returns split info when the child overflowed.
  struct SplitResult;
  std::optional<SplitResult> UpsertRec(Node* node, const Bytes& key,
                                       const Bytes& value);
  // Returns true if `node` became an empty leaf and must be unlinked.
  bool DeleteRec(Node* node, const Bytes& key, bool* found);

  TreeParams params_;
  std::unique_ptr<Node> root_;
  Digest root_digest_;
  size_t size_ = 0;
};

}  // namespace mtree
}  // namespace tcvs
