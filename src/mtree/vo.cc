#include "mtree/vo.h"

#include <algorithm>

#include "util/audit.h"
#include "util/cost.h"
#include "util/metrics.h"
#include "util/serde.h"

namespace tcvs {
namespace mtree {

namespace {

/// A root-digest mismatch is THE core deviation signal of the paper: the
/// server's VO describes a tree that is not the one the client trusts.
/// Record both digests so an auditor sees exactly what diverged.
Status RootMismatch(const char* op, const Digest& trusted_root,
                    const Digest& root_digest) {
  util::AuditEvent event(util::AuditEventKind::kVoMismatch);
  event.expected_digest = trusted_root;
  event.actual_digest = root_digest;
  event.detail = std::string(op) + ": VO root digest does not match trusted root";
  util::AuditLog::Instance().Emit(std::move(event));
  return Status::VerificationFailure("VO root digest does not match trusted root");
}

// Routing rule shared by server and client: the child index for `key` is the
// number of separators <= key.
size_t RouteChild(const std::vector<Bytes>& keys, const Bytes& key) {
  return std::upper_bound(keys.begin(), keys.end(), key) - keys.begin();
}

bool StrictlySorted(const std::vector<Bytes>& keys) {
  for (size_t i = 1; i < keys.size(); ++i) {
    if (!(keys[i - 1] < keys[i])) return false;
  }
  return true;
}

// Follows the claimed search path for `key` WITHOUT verifying anything —
// only the point-read memo fast path uses this, and a memo hit never trusts
// the walked structure, only the leaf bytes it compares (see VoCache).
const NodeView* FindClaimedLeaf(const NodeView& root, const Bytes& key) {
  const NodeView* node = &root;
  int depth = 0;
  while (!node->is_leaf) {
    if (++depth > 64) return nullptr;
    auto it =
        node->expanded.find(static_cast<uint32_t>(RouteChild(node->keys, key)));
    if (it == node->expanded.end()) return nullptr;
    node = &it->second;
  }
  return node;
}

// Defined in the serialization section below; the cache keys subtrees by
// the hash of this exact encoding.
void SerializeView(const NodeView& view, util::Writer* w);

}  // namespace

// ---------------------------------------------------------------------------
// VoCache
// ---------------------------------------------------------------------------

Digest VoCache::SubtreeKey(const NodeView& view) {
  util::Writer w;
  // Domain separation from node digests (0x00 leaf / 0x01 internal): a
  // cache key can never be confused with (or forged as) a tree digest.
  w.PutU8(0xC5);
  SerializeView(view, &w);
  return crypto::Sha256::Hash(w.buffer());
}

const Digest* VoCache::Lookup(const Digest& key) {
  static util::Counter* const hits =
      util::MetricsRegistry::Instance().GetCounter("mtree.vo.cache.hits_total");
  static util::Counter* const misses =
      util::MetricsRegistry::Instance().GetCounter("mtree.vo.cache.misses_total");
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses->Increment();
    return nullptr;
  }
  hits->Increment();
  return &it->second;
}

void VoCache::Insert(const Digest& key, const Digest& digest) {
  static util::Counter* const insertions =
      util::MetricsRegistry::Instance().GetCounter("mtree.vo.cache.insertions_total");
  if (max_entries_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second != digest) {
      // One content key mapping to two digests should be impossible (the
      // key is a hash of the content that determines the digest); if it
      // ever happens the cache is corrupt, which is security-significant:
      // audit it and drop the entry rather than silently serving either.
      util::AuditEvent event(util::AuditEventKind::kVoMismatch);
      event.expected_digest = it->second;
      event.actual_digest = digest;
      event.detail = "vo cache consistency violation: content key maps to "
                     "two different digests";
      util::AuditLog::Instance().Emit(std::move(event));
      entries_.erase(it);
    }
    return;
  }
  EvictIfFull();
  entries_.emplace(key, digest);
  fifo_.push_back(key);
  insertions->Increment();
}

void VoCache::EvictIfFull() {
  static util::Counter* const evictions =
      util::MetricsRegistry::Instance().GetCounter("mtree.vo.cache.evictions_total");
  while (entries_.size() >= max_entries_ && fifo_head_ < fifo_.size()) {
    if (entries_.erase(fifo_[fifo_head_]) > 0) evictions->Increment();
    ++fifo_head_;
  }
  // Compact the FIFO once the dead prefix dominates.
  if (fifo_head_ > 1024 && fifo_head_ * 2 > fifo_.size()) {
    fifo_.erase(fifo_.begin(), fifo_.begin() + fifo_head_);
    fifo_head_ = 0;
  }
}

void VoCache::ErasePath(const NodeView& view) {
  static util::Counter* const invalidations =
      util::MetricsRegistry::Instance().GetCounter(
          "mtree.vo.cache.invalidations_total");
  if (entries_.erase(SubtreeKey(view)) > 0) invalidations->Increment();
  for (const auto& [idx, child] : view.expanded) ErasePath(child);
}

const VoCache::CachedPointRead* VoCache::AcceptPointRead(
    const Digest& trusted_root, const Bytes& key,
    const std::vector<EntryView>& leaf_entries) {
  static util::Counter* const hits =
      util::MetricsRegistry::Instance().GetCounter("mtree.vo.cache.hits_total");
  static util::Counter* const memo_hits =
      util::MetricsRegistry::Instance().GetCounter(
          "mtree.vo.cache.read_memo_hits_total");
  static util::Counter* const memo_misses =
      util::MetricsRegistry::Instance().GetCounter(
          "mtree.vo.cache.read_memo_misses_total");
  auto it = reads_.find(ReadKey(trusted_root, key));
  if (it == reads_.end() || it->second.leaf_entries != leaf_entries) {
    memo_misses->Increment();
    return nullptr;
  }
  hits->Increment();
  memo_hits->Increment();
  return &it->second;
}

void VoCache::InsertPointRead(const Digest& trusted_root, const Bytes& key,
                              std::vector<EntryView> leaf_entries,
                              std::optional<Bytes> value) {
  static util::Counter* const insertions =
      util::MetricsRegistry::Instance().GetCounter("mtree.vo.cache.insertions_total");
  if (max_entries_ == 0) return;
  ReadKey rk(trusted_root, key);
  auto it = reads_.find(rk);
  if (it != reads_.end()) {
    if (it->second.leaf_entries != leaf_entries || it->second.value != value) {
      // Both versions passed full verification against the SAME root, yet
      // disagree — impossible under collision resistance, so treat it as
      // cache corruption: audit and drop rather than serve either.
      util::AuditEvent event(util::AuditEventKind::kVoMismatch);
      event.expected_digest = trusted_root;
      event.actual_digest = trusted_root;
      event.detail = "vo cache consistency violation: one (root, key) memo "
                     "maps to two different verified leaves";
      util::AuditLog::Instance().Emit(std::move(event));
      reads_.erase(it);
    }
    return;
  }
  EvictReadsIfFull();
  reads_.emplace(rk, CachedPointRead{std::move(leaf_entries), std::move(value)});
  reads_fifo_.push_back(std::move(rk));
  insertions->Increment();
}

void VoCache::EvictReadsIfFull() {
  static util::Counter* const evictions =
      util::MetricsRegistry::Instance().GetCounter("mtree.vo.cache.evictions_total");
  while (reads_.size() >= max_entries_ && reads_fifo_head_ < reads_fifo_.size()) {
    if (reads_.erase(reads_fifo_[reads_fifo_head_]) > 0) evictions->Increment();
    ++reads_fifo_head_;
  }
  if (reads_fifo_head_ > 1024 && reads_fifo_head_ * 2 > reads_fifo_.size()) {
    reads_fifo_.erase(reads_fifo_.begin(),
                      reads_fifo_.begin() + reads_fifo_head_);
    reads_fifo_head_ = 0;
  }
}

void VoCache::InvalidateEpoch(const Digest& root) {
  static util::Counter* const invalidations =
      util::MetricsRegistry::Instance().GetCounter(
          "mtree.vo.cache.invalidations_total");
  auto it = reads_.lower_bound(ReadKey(root, Bytes{}));
  while (it != reads_.end() && it->first.first == root) {
    it = reads_.erase(it);
    invalidations->Increment();
  }
}

void VoCache::Clear() {
  entries_.clear();
  fifo_.clear();
  fifo_head_ = 0;
  reads_.clear();
  reads_fifo_.clear();
  reads_fifo_head_ = 0;
}

std::vector<std::pair<Digest, Digest>> VoCache::Export() const {
  std::vector<std::pair<Digest, Digest>> out;
  out.reserve(entries_.size());
  for (const auto& [key, digest] : entries_) out.emplace_back(key, digest);
  return out;
}

void VoCache::Restore(const Digest& key, const Digest& digest) {
  if (key.size() != crypto::kDigestSize ||
      digest.size() != crypto::kDigestSize) {
    return;  // Malformed persisted entry: skip rather than poison the map.
  }
  if (max_entries_ == 0 || entries_.count(key) > 0) return;
  EvictIfFull();
  entries_.emplace(key, digest);
  fifo_.push_back(key);
}

Digest LeafDigest(const std::vector<EntryView>& entries) {
  util::Writer w;
  w.PutU8(0x00);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.PutBytes(e.key);
    w.PutRaw(e.value_hash);
  }
  return crypto::Sha256::Hash(w.buffer());
}

Digest InternalDigest(const std::vector<Bytes>& keys,
                      const std::vector<Digest>& child_digests) {
  util::Writer w;
  w.PutU8(0x01);
  w.PutU32(static_cast<uint32_t>(keys.size()));
  for (const auto& k : keys) w.PutBytes(k);
  for (const auto& d : child_digests) w.PutRaw(d);
  return crypto::Sha256::Hash(w.buffer());
}

Digest EmptyRootDigest() { return LeafDigest({}); }

Digest NodeView::UncheckedDigest() const {
  if (is_leaf) return LeafDigest(entries);
  return InternalDigest(keys, child_digests);
}

Result<Digest> NodeView::VerifiedDigest(VoCache* cache) const {
  // Cache fast path: one hash over the exact received bytes. A hit means
  // this identical subtree already passed every check below.
  Digest cache_key;
  if (cache != nullptr) {
    cache_key = VoCache::SubtreeKey(*this);
    if (const Digest* hit = cache->Lookup(cache_key)) return *hit;
  }
  auto verified = [&](Digest digest) {
    if (cache != nullptr) cache->Insert(cache_key, digest);
    return digest;
  };

  if (is_leaf) {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].value_hash.size() != crypto::kDigestSize) {
        return Status::InvalidArgument("leaf entry value hash has wrong size");
      }
      if (i > 0 && !(entries[i - 1].key < entries[i].key)) {
        return Status::VerificationFailure("leaf entries not strictly sorted");
      }
      if (entries[i].value.has_value() &&
          crypto::Sha256::Hash(*entries[i].value) != entries[i].value_hash) {
        return Status::VerificationFailure("leaf entry value does not match hash");
      }
    }
    return verified(LeafDigest(entries));
  }

  if (keys.empty()) {
    return Status::VerificationFailure("internal node with no separators");
  }
  if (child_digests.size() != keys.size() + 1) {
    return Status::VerificationFailure("internal node child count mismatch");
  }
  if (!StrictlySorted(keys)) {
    return Status::VerificationFailure("internal separators not strictly sorted");
  }
  for (const auto& d : child_digests) {
    if (d.size() != crypto::kDigestSize) {
      return Status::InvalidArgument("child digest has wrong size");
    }
  }
  for (const auto& [idx, child] : expanded) {
    if (idx >= child_digests.size()) {
      return Status::VerificationFailure("expanded child index out of range");
    }
    TCVS_ASSIGN_OR_RETURN(Digest child_digest, child.VerifiedDigest(cache));
    if (child_digest != child_digests[idx]) {
      return Status::VerificationFailure(
          "expanded child digest does not match parent's record");
    }
  }
  return verified(InternalDigest(keys, child_digests));
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kMaxViewFanout = 1u << 20;

void SerializeView(const NodeView& view, util::Writer* w) {
  w->PutU8(view.is_leaf ? 1 : 0);
  if (view.is_leaf) {
    w->PutU32(static_cast<uint32_t>(view.entries.size()));
    for (const auto& e : view.entries) {
      w->PutBytes(e.key);
      w->PutRaw(e.value_hash);
      w->PutU8(e.value.has_value() ? 1 : 0);
      if (e.value.has_value()) w->PutBytes(*e.value);
    }
  } else {
    w->PutU32(static_cast<uint32_t>(view.keys.size()));
    for (const auto& k : view.keys) w->PutBytes(k);
    for (const auto& d : view.child_digests) w->PutRaw(d);
    w->PutU32(static_cast<uint32_t>(view.expanded.size()));
    for (const auto& [idx, child] : view.expanded) {
      w->PutU32(idx);
      SerializeView(child, w);
    }
  }
}

Result<NodeView> DeserializeView(util::Reader* r, int depth) {
  if (depth > 64) return Status::InvalidArgument("view nesting too deep");
  NodeView view;
  TCVS_ASSIGN_OR_RETURN(uint8_t is_leaf, r->GetU8());
  view.is_leaf = (is_leaf == 1);
  if (view.is_leaf) {
    TCVS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
    if (n > kMaxViewFanout) return Status::InvalidArgument("leaf too large");
    view.entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      EntryView e;
      TCVS_ASSIGN_OR_RETURN(e.key, r->GetBytes());
      TCVS_ASSIGN_OR_RETURN(e.value_hash, r->GetRaw(crypto::kDigestSize));
      TCVS_ASSIGN_OR_RETURN(uint8_t has_value, r->GetU8());
      if (has_value) {
        TCVS_ASSIGN_OR_RETURN(Bytes v, r->GetBytes());
        e.value = std::move(v);
      }
      view.entries.push_back(std::move(e));
    }
  } else {
    TCVS_ASSIGN_OR_RETURN(uint32_t nkeys, r->GetU32());
    if (nkeys > kMaxViewFanout) return Status::InvalidArgument("node too large");
    view.keys.reserve(nkeys);
    for (uint32_t i = 0; i < nkeys; ++i) {
      TCVS_ASSIGN_OR_RETURN(Bytes k, r->GetBytes());
      view.keys.push_back(std::move(k));
    }
    view.child_digests.reserve(nkeys + 1);
    for (uint32_t i = 0; i < nkeys + 1; ++i) {
      TCVS_ASSIGN_OR_RETURN(Digest d, r->GetRaw(crypto::kDigestSize));
      view.child_digests.push_back(std::move(d));
    }
    TCVS_ASSIGN_OR_RETURN(uint32_t nexp, r->GetU32());
    if (nexp > nkeys + 1) {
      return Status::InvalidArgument("more expansions than children");
    }
    for (uint32_t i = 0; i < nexp; ++i) {
      TCVS_ASSIGN_OR_RETURN(uint32_t idx, r->GetU32());
      TCVS_ASSIGN_OR_RETURN(NodeView child, DeserializeView(r, depth + 1));
      view.expanded.emplace(idx, std::move(child));
    }
  }
  return view;
}

}  // namespace

Bytes PointVO::Serialize() const {
  util::Writer w;
  SerializeView(root, &w);
  Bytes out = w.Take();
  if (util::CostCounters* cost = util::CurrentCostCounters()) {
    cost->vo_bytes_built += out.size();
  }
  return out;
}

Result<util::Tainted<PointVO>> PointVO::Deserialize(const Bytes& data) {
  util::Reader r(data);
  TCVS_ASSIGN_OR_RETURN(NodeView root, DeserializeView(&r, 0));
  if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes after VO");
  return util::Tainted<PointVO>(PointVO{std::move(root)});
}

Bytes RangeVO::Serialize() const {
  util::Writer w;
  SerializeView(root, &w);
  Bytes out = w.Take();
  if (util::CostCounters* cost = util::CurrentCostCounters()) {
    cost->vo_bytes_built += out.size();
  }
  return out;
}

Result<util::Tainted<RangeVO>> RangeVO::Deserialize(const Bytes& data) {
  util::Reader r(data);
  TCVS_ASSIGN_OR_RETURN(NodeView root, DeserializeView(&r, 0));
  if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes after VO");
  return util::Tainted<RangeVO>(RangeVO{std::move(root)});
}

// ---------------------------------------------------------------------------
// Point read verification
// ---------------------------------------------------------------------------

Result<std::optional<Bytes>> VerifyPointRead(const Digest& trusted_root,
                                             const TreeParams& params,
                                             const Bytes& key, const PointVO& vo,
                                             VoCache* cache) {
  (void)params;
  TCVS_SPAN("mtree.vo.verify_point");
  // Memo fast path (epoch = trusted root, path = query key): if an earlier
  // proof for this exact (root, key) fully verified and the fresh proof ends
  // at a bit-identical leaf, the answer is already authenticated — zero
  // hashing. Any difference falls through to full verification below.
  if (cache != nullptr) {
    if (const NodeView* leaf = FindClaimedLeaf(vo.root, key)) {
      if (const VoCache::CachedPointRead* memo =
              cache->AcceptPointRead(trusted_root, key, leaf->entries)) {
        return memo->value;
      }
    }
  }
  TCVS_ASSIGN_OR_RETURN(Digest root_digest, vo.root.VerifiedDigest(cache));
  if (root_digest != trusted_root) {
    return RootMismatch("verify_point", trusted_root, root_digest);
  }
  const NodeView* node = &vo.root;
  int depth = 0;
  while (!node->is_leaf) {
    if (++depth > 64) return Status::VerificationFailure("VO path too deep");
    size_t ci = RouteChild(node->keys, key);
    auto it = node->expanded.find(static_cast<uint32_t>(ci));
    if (it == node->expanded.end()) {
      return Status::VerificationFailure("search path child not expanded in VO");
    }
    node = &it->second;
  }
  for (const auto& e : node->entries) {
    if (e.key == key) {
      if (!e.value.has_value()) {
        return Status::VerificationFailure("VO omits value for present key");
      }
      if (cache != nullptr) {
        cache->InsertPointRead(trusted_root, key, node->entries, *e.value);
      }
      return std::optional<Bytes>(*e.value);
    }
  }
  if (cache != nullptr) {
    cache->InsertPointRead(trusted_root, key, node->entries, std::nullopt);
  }
  return std::optional<Bytes>(std::nullopt);
}

// ---------------------------------------------------------------------------
// Update replay (upsert)
// ---------------------------------------------------------------------------

namespace {

struct UpsertResult {
  Digest digest;
  // Present when the node split: separator key + digest of the new right
  // sibling. `digest` is then the left half.
  std::optional<std::pair<Bytes, Digest>> split;
};

Result<UpsertResult> ReplayUpsert(const NodeView& node, const TreeParams& params,
                                  const Bytes& key, const Bytes& value) {
  if (node.is_leaf) {
    std::vector<EntryView> entries = node.entries;
    Digest vh = crypto::Sha256::Hash(value);
    auto it = std::lower_bound(
        entries.begin(), entries.end(), key,
        [](const EntryView& e, const Bytes& k) { return e.key < k; });
    if (it != entries.end() && it->key == key) {
      it->value_hash = vh;
      it->value.reset();
    } else {
      entries.insert(it, EntryView{key, vh, std::nullopt});
    }
    if (entries.size() <= params.max_leaf_entries) {
      return UpsertResult{LeafDigest(entries), std::nullopt};
    }
    size_t mid = entries.size() / 2;
    std::vector<EntryView> left(entries.begin(), entries.begin() + mid);
    std::vector<EntryView> right(entries.begin() + mid, entries.end());
    Bytes sep = right.front().key;
    return UpsertResult{LeafDigest(left),
                        std::make_pair(std::move(sep), LeafDigest(right))};
  }

  size_t ci = RouteChild(node.keys, key);
  auto it = node.expanded.find(static_cast<uint32_t>(ci));
  if (it == node.expanded.end()) {
    return Status::VerificationFailure("update path child not expanded in VO");
  }
  TCVS_ASSIGN_OR_RETURN(UpsertResult child_result,
                        ReplayUpsert(it->second, params, key, value));

  std::vector<Bytes> keys = node.keys;
  std::vector<Digest> children = node.child_digests;
  children[ci] = child_result.digest;
  if (child_result.split.has_value()) {
    keys.insert(keys.begin() + ci, child_result.split->first);
    children.insert(children.begin() + ci + 1, child_result.split->second);
  }
  if (keys.size() <= params.max_internal_keys) {
    return UpsertResult{InternalDigest(keys, children), std::nullopt};
  }
  size_t mid = keys.size() / 2;
  Bytes up_key = keys[mid];
  std::vector<Bytes> lkeys(keys.begin(), keys.begin() + mid);
  std::vector<Bytes> rkeys(keys.begin() + mid + 1, keys.end());
  std::vector<Digest> lchildren(children.begin(), children.begin() + mid + 1);
  std::vector<Digest> rchildren(children.begin() + mid + 1, children.end());
  return UpsertResult{
      InternalDigest(lkeys, lchildren),
      std::make_pair(std::move(up_key), InternalDigest(rkeys, rchildren))};
}

}  // namespace

Result<Digest> VerifyAndApplyUpsert(const Digest& trusted_root,
                                    const TreeParams& params, const Bytes& key,
                                    const Bytes& value, const PointVO& vo,
                                    VoCache* cache) {
  TCVS_SPAN("mtree.vo.apply_upsert");
  TCVS_ASSIGN_OR_RETURN(Digest root_digest, vo.root.VerifiedDigest(cache));
  if (root_digest != trusted_root) {
    return RootMismatch("apply_upsert", trusted_root, root_digest);
  }
  TCVS_ASSIGN_OR_RETURN(UpsertResult r, ReplayUpsert(vo.root, params, key, value));
  // The upsert changed the tree: the cached pre-state path is dead weight
  // now, and every read memo of the pre-state epoch is past its epoch.
  if (cache != nullptr) {
    cache->ErasePath(vo.root);
    cache->InvalidateEpoch(trusted_root);
  }
  if (!r.split.has_value()) return r.digest;
  // Root split: a new root with one separator and two children.
  return InternalDigest({r.split->first}, {r.digest, r.split->second});
}

// ---------------------------------------------------------------------------
// Delete replay
// ---------------------------------------------------------------------------

namespace {

struct DeleteResult {
  Digest digest;
  bool found = false;
  // The node became an empty leaf (must be unlinked by the parent unless it
  // is the root).
  bool now_empty = false;
};

Result<DeleteResult> ReplayDelete(const NodeView& node, const TreeParams& params,
                                  const Bytes& key) {
  if (node.is_leaf) {
    std::vector<EntryView> entries = node.entries;
    auto it = std::lower_bound(
        entries.begin(), entries.end(), key,
        [](const EntryView& e, const Bytes& k) { return e.key < k; });
    if (it == entries.end() || it->key != key) {
      return DeleteResult{LeafDigest(entries), /*found=*/false,
                          /*now_empty=*/false};
    }
    entries.erase(it);
    return DeleteResult{LeafDigest(entries), /*found=*/true, entries.empty()};
  }

  size_t ci = RouteChild(node.keys, key);
  auto it = node.expanded.find(static_cast<uint32_t>(ci));
  if (it == node.expanded.end()) {
    return Status::VerificationFailure("delete path child not expanded in VO");
  }
  TCVS_ASSIGN_OR_RETURN(DeleteResult child_result,
                        ReplayDelete(it->second, params, key));
  std::vector<Bytes> keys = node.keys;
  std::vector<Digest> children = node.child_digests;
  if (child_result.now_empty) {
    // Unlink the empty leaf together with one adjacent separator.
    children.erase(children.begin() + ci);
    keys.erase(keys.begin() + (ci > 0 ? ci - 1 : 0));
    if (keys.empty()) {
      // Single child left: this node collapses into it.
      return DeleteResult{children[0], child_result.found, /*now_empty=*/false};
    }
  } else {
    children[ci] = child_result.digest;
  }
  return DeleteResult{InternalDigest(keys, children), child_result.found,
                      /*now_empty=*/false};
}

}  // namespace

Result<Digest> VerifyAndApplyDelete(const Digest& trusted_root,
                                    const TreeParams& params, const Bytes& key,
                                    const PointVO& vo, VoCache* cache) {
  TCVS_SPAN("mtree.vo.apply_delete");
  TCVS_ASSIGN_OR_RETURN(Digest root_digest, vo.root.VerifiedDigest(cache));
  if (root_digest != trusted_root) {
    return RootMismatch("apply_delete", trusted_root, root_digest);
  }
  TCVS_ASSIGN_OR_RETURN(DeleteResult r, ReplayDelete(vo.root, params, key));
  // A NotFound delete leaves the tree unchanged — the cached path stays valid.
  if (!r.found) return Status::NotFound("key not present (authenticated)");
  if (cache != nullptr) {
    cache->ErasePath(vo.root);
    cache->InvalidateEpoch(trusted_root);
  }
  if (r.now_empty) return EmptyRootDigest();  // Root leaf became empty.
  return r.digest;
}

// ---------------------------------------------------------------------------
// Range verification
// ---------------------------------------------------------------------------

namespace {

Status CollectRange(const NodeView& node, const Bytes& lo, const Bytes& hi,
                    std::vector<std::pair<Bytes, Bytes>>* out, int depth) {
  if (depth > 64) return Status::VerificationFailure("range VO too deep");
  if (node.is_leaf) {
    for (const auto& e : node.entries) {
      if (lo <= e.key && e.key <= hi) {
        if (!e.value.has_value()) {
          return Status::VerificationFailure("range VO omits in-range value");
        }
        out->emplace_back(e.key, *e.value);
      }
    }
    return Status::OK();
  }
  const size_t nkeys = node.keys.size();
  for (size_t i = 0; i <= nkeys; ++i) {
    // Child i covers [keys[i-1], keys[i]); it intersects [lo, hi] iff
    // (i == 0 || keys[i-1] <= hi) && (i == nkeys || lo < keys[i]).
    bool intersects =
        (i == 0 || node.keys[i - 1] <= hi) && (i == nkeys || lo < node.keys[i]);
    if (!intersects) continue;
    auto it = node.expanded.find(static_cast<uint32_t>(i));
    if (it == node.expanded.end()) {
      return Status::VerificationFailure(
          "range VO does not expand a child overlapping the range");
    }
    TCVS_RETURN_NOT_OK(CollectRange(it->second, lo, hi, out, depth + 1));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::pair<Bytes, Bytes>>> VerifyRangeRead(
    const Digest& trusted_root, const TreeParams& params, const Bytes& lo,
    const Bytes& hi, const RangeVO& vo, VoCache* cache) {
  (void)params;
  TCVS_SPAN("mtree.vo.verify_range");
  if (hi < lo) return Status::InvalidArgument("range bounds reversed");
  TCVS_ASSIGN_OR_RETURN(Digest root_digest, vo.root.VerifiedDigest(cache));
  if (root_digest != trusted_root) {
    return RootMismatch("verify_range", trusted_root, root_digest);
  }
  std::vector<std::pair<Bytes, Bytes>> out;
  TCVS_RETURN_NOT_OK(CollectRange(vo.root, lo, hi, &out, 0));
  for (size_t i = 1; i < out.size(); ++i) {
    if (!(out[i - 1].first < out[i].first)) {
      return Status::VerificationFailure("range result keys out of order");
    }
  }
  return out;
}

}  // namespace mtree
}  // namespace tcvs
