#pragma once

#include <map>
#include <optional>
#include <vector>

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/untrusted.h"

namespace tcvs {
namespace mtree {

using crypto::Digest;

/// Taint-verifier token: the value was endorsed by Merkle verification-object
/// checking — VerifiedDigest / VerifyPointRead / VerifyAndApply* /
/// VerifyRangeRead succeeded against a trusted root (see util/untrusted.h).
struct VoVerified {
  TCVS_TAINT_VERIFIER(VoVerified);
};

/// Fanout / node-size parameters of the Merkle B⁺-tree. Server and client
/// must agree on these: the client *replays* structural changes (splits,
/// collapses) when verifying updates, so the split thresholds are part of
/// the protocol.
struct TreeParams {
  /// Maximum number of (key,value) entries in a leaf before it splits.
  size_t max_leaf_entries = 8;
  /// Maximum number of separator keys in an internal node before it splits.
  size_t max_internal_keys = 8;

  bool operator==(const TreeParams&) const = default;
};

/// \brief One leaf entry as it appears in a verification object: the key and
/// the hash of the value. Values themselves are only included where the
/// query requires them.
struct EntryView {
  Bytes key;
  Digest value_hash;
  /// Present for entries whose value the query returns (the queried key in a
  /// point read, all in-range entries in a range scan).
  std::optional<Bytes> value;

  bool operator==(const EntryView&) const = default;
};

/// \brief An untrusted, recursive view of a subtree, as shipped in a
/// verification object (paper §4.1: "the digests of the O(log n) siblings of
/// the affected nodes").
///
/// For a leaf: `entries` holds the full entry list. For an internal node:
/// `keys` holds all separators, `child_digests` all children digests, and
/// `expanded` maps child indices to recursively expanded views (only the
/// children the proof needs — one for a point path, several for a range).
///
/// Everything here is server-supplied and untrusted until
/// VerifiedDigest() links it back to a trusted root digest.
struct NodeView {
  bool is_leaf = true;
  std::vector<EntryView> entries;          // leaf only
  std::vector<Bytes> keys;                 // internal only
  std::vector<Digest> child_digests;       // internal only, size keys+1
  std::map<uint32_t, NodeView> expanded;   // internal only

  /// Recomputes this node's digest from the view contents, checking that
  /// every expanded child's recomputed digest matches the digest claimed in
  /// `child_digests`, and that structural invariants hold (sorted keys,
  /// digest sizes, child count).
  /// \return the digest, or VerificationFailure / InvalidArgument.
  Result<Digest> VerifiedDigest() const;

  /// Digest recomputation without consistency checks (used by the trusted
  /// server side where the structure is known-good).
  Digest UncheckedDigest() const;
};

/// \brief Computes the digest of a leaf from its entry list.
Digest LeafDigest(const std::vector<EntryView>& entries);

/// \brief Computes the digest of an internal node from separators and child
/// digests.
Digest InternalDigest(const std::vector<Bytes>& keys,
                      const std::vector<Digest>& child_digests);

/// \brief Verification object for a point operation (read, update, insert,
/// delete): the root-to-leaf path for the key, with every node on the path
/// expanded. Doubles as a non-membership proof when the key is absent.
struct PointVO {
  NodeView root;

  Bytes Serialize() const;
  /// Parses server-supplied bytes; the result is quarantined until a verify
  /// call endorses it (hand the Tainted VO straight to VerifyPointRead /
  /// VerifyAndApply*).
  TCVS_UNTRUSTED_SOURCE static Result<util::Tainted<PointVO>> Deserialize(
      const Bytes& data);
};

/// \brief Verification object for a range scan: the minimal subtree covering
/// [lo, hi], with values attached to in-range entries.
struct RangeVO {
  NodeView root;

  Bytes Serialize() const;
  /// Parses server-supplied bytes; quarantined until VerifyRangeRead
  /// endorses it.
  TCVS_UNTRUSTED_SOURCE static Result<util::Tainted<RangeVO>> Deserialize(
      const Bytes& data);
};

/// \brief Client-side verification of a point read.
///
/// Checks that `vo` is rooted at `trusted_root`, that the search path for
/// `key` is correctly routed, and that the leaf either contains `key` with a
/// value matching its hash (membership) or provably does not contain it
/// (non-membership).
///
/// \return the value if present, std::nullopt if provably absent.
TCVS_ENDORSER Result<std::optional<Bytes>> VerifyPointRead(
    const Digest& trusted_root, const TreeParams& params, const Bytes& key,
    const PointVO& vo);

/// \brief Client-side verification + replay of an update (upsert).
///
/// Verifies the pre-state path against `trusted_root`, then locally replays
/// the upsert of (key,value) — including leaf/internal splits — and returns
/// the new root digest the honest server must now have (paper §4.1: "the
/// user ... computes the new root digest of the tree").
TCVS_ENDORSER Result<Digest> VerifyAndApplyUpsert(const Digest& trusted_root,
                                                  const TreeParams& params,
                                                  const Bytes& key,
                                                  const Bytes& value,
                                                  const PointVO& vo);

/// \brief Client-side verification + replay of a delete.
///
/// Verifies the pre-state path, replays the removal (including empty-leaf
/// unlinking and root collapse), and returns the new root digest.
/// \return NotFound if the key is provably absent (tree unchanged).
TCVS_ENDORSER Result<Digest> VerifyAndApplyDelete(const Digest& trusted_root,
                                                  const TreeParams& params,
                                                  const Bytes& key,
                                                  const PointVO& vo);

/// \brief Client-side verification of a range scan over [lo, hi] inclusive.
///
/// Checks the subtree against `trusted_root`, that every child overlapping
/// the range is expanded (completeness), and that every in-range entry
/// carries a value matching its hash (soundness).
///
/// \return the in-range (key,value) pairs in key order.
TCVS_ENDORSER Result<std::vector<std::pair<Bytes, Bytes>>> VerifyRangeRead(
    const Digest& trusted_root, const TreeParams& params, const Bytes& lo,
    const Bytes& hi, const RangeVO& vo);

// ---- Tainted-VO entry points ----------------------------------------------
// The verify functions ARE the endorsers for wire VOs: a Tainted VO from
// PointVO/RangeVO::Deserialize goes straight in, and a successful result is
// the endorsed product (a value / a new trusted root digest). The plain
// overloads above remain for the server side and for locally built VOs.

/// Recomputes and consistency-checks the root digest of a quarantined VO —
/// the first endorsement step of every client chain walk (the digest, not
/// the VO, is what becomes trusted).
TCVS_ENDORSER inline Result<Digest> VerifiedRootDigest(
    const util::Tainted<PointVO>& vo) {
  return vo.untrusted().root.VerifiedDigest();
}
TCVS_ENDORSER inline Result<Digest> VerifiedRootDigest(
    const util::Tainted<RangeVO>& vo) {
  return vo.untrusted().root.VerifiedDigest();
}

TCVS_ENDORSER inline Result<std::optional<Bytes>> VerifyPointRead(
    const Digest& trusted_root, const TreeParams& params, const Bytes& key,
    const util::Tainted<PointVO>& vo) {
  return VerifyPointRead(trusted_root, params, key, vo.untrusted());
}

TCVS_ENDORSER inline Result<Digest> VerifyAndApplyUpsert(
    const Digest& trusted_root, const TreeParams& params, const Bytes& key,
    const Bytes& value, const util::Tainted<PointVO>& vo) {
  return VerifyAndApplyUpsert(trusted_root, params, key, value, vo.untrusted());
}

TCVS_ENDORSER inline Result<Digest> VerifyAndApplyDelete(
    const Digest& trusted_root, const TreeParams& params, const Bytes& key,
    const util::Tainted<PointVO>& vo) {
  return VerifyAndApplyDelete(trusted_root, params, key, vo.untrusted());
}

TCVS_ENDORSER inline Result<std::vector<std::pair<Bytes, Bytes>>>
VerifyRangeRead(const Digest& trusted_root, const TreeParams& params,
                const Bytes& lo, const Bytes& hi,
                const util::Tainted<RangeVO>& vo) {
  return VerifyRangeRead(trusted_root, params, lo, hi, vo.untrusted());
}

/// \brief Digest of an empty tree (a single empty leaf); the well-known
/// initial root digest M(D₀) of the paper.
Digest EmptyRootDigest();

}  // namespace mtree
}  // namespace tcvs
