#pragma once

#include <map>
#include <optional>
#include <vector>

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/untrusted.h"

namespace tcvs {
namespace mtree {

using crypto::Digest;

/// Taint-verifier token: the value was endorsed by Merkle verification-object
/// checking — VerifiedDigest / VerifyPointRead / VerifyAndApply* /
/// VerifyRangeRead succeeded against a trusted root (see util/untrusted.h).
struct VoVerified {
  TCVS_TAINT_VERIFIER(VoVerified);
};

/// Fanout / node-size parameters of the Merkle B⁺-tree. Server and client
/// must agree on these: the client *replays* structural changes (splits,
/// collapses) when verifying updates, so the split thresholds are part of
/// the protocol.
struct TreeParams {
  /// Maximum number of (key,value) entries in a leaf before it splits.
  size_t max_leaf_entries = 8;
  /// Maximum number of separator keys in an internal node before it splits.
  size_t max_internal_keys = 8;

  bool operator==(const TreeParams&) const = default;
};

struct NodeView;

/// \brief One leaf entry as it appears in a verification object: the key and
/// the hash of the value. Values themselves are only included where the
/// query requires them.
struct EntryView {
  Bytes key;
  Digest value_hash;
  /// Present for entries whose value the query returns (the queried key in a
  /// point read, all in-range entries in a range scan).
  std::optional<Bytes> value;

  bool operator==(const EntryView&) const = default;
};

/// \brief Content-addressed cache of *verified* VO subtrees — the client-side
/// hot-path shortcut for repeat proofs.
///
/// Key = H(domain ‖ full serialized subtree), value = the subtree's verified
/// digest. The key pins every byte the server shipped (entries, values,
/// child digests, AND the recursive expansions), so a hit proves the current
/// content is bit-identical to content that passed full verification before
/// — the cache can never vouch for substituted or tampered content, only
/// skip re-verifying literally identical bytes. A *stale* subtree (the
/// server replaying an old proof) hits the cache but returns the OLD digest,
/// which then fails the caller's trusted-root / parent-digest comparison and
/// fires the usual kVoMismatch audit evidence. Tampered content changes the
/// key, misses, and goes through full verification.
///
/// Bounded FIFO; single-threaded like the client that owns it.
class VoCache {
 public:
  explicit VoCache(size_t max_entries = 4096) : max_entries_(max_entries) {}

  /// Cache key for a subtree: H(domain ‖ SerializeView(view)).
  static Digest SubtreeKey(const NodeView& view);

  /// The verified digest for `key`, or nullptr on a miss. Counts
  /// mtree.vo.cache.{hits,misses}_total.
  const Digest* Lookup(const Digest& key);

  /// Records that the subtree behind `key` fully verified to `digest`.
  /// A re-insert under the same key must agree with the stored digest —
  /// disagreement means the collision-resistant key maps to two digests,
  /// which is a cache-consistency violation: it is audited (kVoMismatch)
  /// and the entry is dropped rather than silently overwritten.
  void Insert(const Digest& key, const Digest& digest);

  /// Invalidation after a verified mutation: erases the cached entry of
  /// `view` and of every expanded descendant (the pre-state path a replayed
  /// upsert/delete just made stale). Counts mtree.vo.cache.invalidations_total.
  void ErasePath(const NodeView& view);

  /// \name Verified point-read memos — the (epoch, path) layer.
  ///
  /// Key = (trusted root digest, query key): the root digest IS the epoch
  /// (it pins the entire tree content), and the query key names the
  /// root-to-leaf path. The memo stores the exact leaf entry bytes a fully
  /// verified proof ended at, plus the answer extracted from them. A later
  /// proof for the same (root, key) is accepted iff its leaf entries are
  /// bit-identical to the memoized ones — no hashing at all on a hit; any
  /// difference (tampering, a different state) falls through to full
  /// verification, which classifies and audits it. Sound because the
  /// earlier full verification established "under root R the search path
  /// for K ends at exactly these leaf bytes, and the answer derived from
  /// them is A"; same R + same K + same leaf bytes is the same statement.
  /// The new proof's internal nodes are not even examined: the answer is
  /// not derived from them, and the trusted root — not the fresh VO — is
  /// what authenticates the answer.
  /// @{
  struct CachedPointRead {
    std::vector<EntryView> leaf_entries;
    std::optional<Bytes> value;  ///< nullopt = authenticated non-membership.
  };
  /// Returns the memoized answer for (root, key) iff `leaf_entries` is
  /// bit-identical to the memoized leaf (counting mtree.vo.cache.hits_total +
  /// .read_memo_hits); nullptr — and .read_memo_misses — otherwise.
  const CachedPointRead* AcceptPointRead(
      const Digest& trusted_root, const Bytes& key,
      const std::vector<EntryView>& leaf_entries);
  /// Records a fully verified point read. Under an honest server one
  /// (root, key) pair determines the leaf bytes, so a re-insert that
  /// disagrees is a cache-consistency violation: audited (kVoMismatch) and
  /// dropped, exactly like Insert.
  void InsertPointRead(const Digest& trusted_root, const Bytes& key,
                       std::vector<EntryView> leaf_entries,
                       std::optional<Bytes> value);
  /// Drops every memo of epoch `root` — called after a verified mutation
  /// replay advances the trusted root past it. Counts
  /// mtree.vo.cache.invalidations_total.
  void InvalidateEpoch(const Digest& root);
  size_t read_memo_count() const { return reads_.size(); }
  /// @}

  void Clear();
  size_t size() const { return entries_.size(); }
  size_t max_entries() const { return max_entries_; }

  /// \name Persistence hooks (cvs::LocalCache sidecar).
  /// @{
  std::vector<std::pair<Digest, Digest>> Export() const;
  /// Restores one exported (key, digest) pair. Local-origin only: the pair
  /// must come from this client's own previously exported cache.
  void Restore(const Digest& key, const Digest& digest);
  /// @}

 private:
  using ReadKey = std::pair<Digest, Bytes>;

  void EvictIfFull();
  void EvictReadsIfFull();

  std::map<Digest, Digest> entries_;
  std::vector<Digest> fifo_;  // Insertion order, oldest first.
  size_t fifo_head_ = 0;      // Index of the oldest not-yet-evicted key.
  std::map<ReadKey, CachedPointRead> reads_;
  std::vector<ReadKey> reads_fifo_;
  size_t reads_fifo_head_ = 0;
  size_t max_entries_;
};

/// \brief An untrusted, recursive view of a subtree, as shipped in a
/// verification object (paper §4.1: "the digests of the O(log n) siblings of
/// the affected nodes").
///
/// For a leaf: `entries` holds the full entry list. For an internal node:
/// `keys` holds all separators, `child_digests` all children digests, and
/// `expanded` maps child indices to recursively expanded views (only the
/// children the proof needs — one for a point path, several for a range).
///
/// Everything here is server-supplied and untrusted until
/// VerifiedDigest() links it back to a trusted root digest.
struct NodeView {
  bool is_leaf = true;
  std::vector<EntryView> entries;          // leaf only
  std::vector<Bytes> keys;                 // internal only
  std::vector<Digest> child_digests;       // internal only, size keys+1
  std::map<uint32_t, NodeView> expanded;   // internal only

  /// Recomputes this node's digest from the view contents, checking that
  /// every expanded child's recomputed digest matches the digest claimed in
  /// `child_digests`, and that structural invariants hold (sorted keys,
  /// digest sizes, child count).
  ///
  /// With a non-null `cache`, a subtree whose exact bytes verified before
  /// returns its digest from the cache (one serialization + one hash instead
  /// of the recursive walk); misses verify in full — recursing with the
  /// cache, so an unchanged subtree under a changed root still hits — and
  /// are inserted on success.
  /// \return the digest, or VerificationFailure / InvalidArgument.
  Result<Digest> VerifiedDigest(VoCache* cache = nullptr) const;

  /// Digest recomputation without consistency checks (used by the trusted
  /// server side where the structure is known-good).
  Digest UncheckedDigest() const;
};

/// \brief Computes the digest of a leaf from its entry list.
Digest LeafDigest(const std::vector<EntryView>& entries);

/// \brief Computes the digest of an internal node from separators and child
/// digests.
Digest InternalDigest(const std::vector<Bytes>& keys,
                      const std::vector<Digest>& child_digests);

/// \brief Verification object for a point operation (read, update, insert,
/// delete): the root-to-leaf path for the key, with every node on the path
/// expanded. Doubles as a non-membership proof when the key is absent.
struct PointVO {
  NodeView root;

  Bytes Serialize() const;
  /// Parses server-supplied bytes; the result is quarantined until a verify
  /// call endorses it (hand the Tainted VO straight to VerifyPointRead /
  /// VerifyAndApply*).
  TCVS_UNTRUSTED_SOURCE static Result<util::Tainted<PointVO>> Deserialize(
      const Bytes& data);
};

/// \brief Verification object for a range scan: the minimal subtree covering
/// [lo, hi], with values attached to in-range entries.
struct RangeVO {
  NodeView root;

  Bytes Serialize() const;
  /// Parses server-supplied bytes; quarantined until VerifyRangeRead
  /// endorses it.
  TCVS_UNTRUSTED_SOURCE static Result<util::Tainted<RangeVO>> Deserialize(
      const Bytes& data);
};

/// \brief Client-side verification of a point read.
///
/// Checks that `vo` is rooted at `trusted_root`, that the search path for
/// `key` is correctly routed, and that the leaf either contains `key` with a
/// value matching its hash (membership) or provably does not contain it
/// (non-membership).
///
/// \return the value if present, std::nullopt if provably absent.
///
/// Every verify entry point takes an optional VoCache: repeat proofs (and
/// the second and third verification of the SAME VO within one transaction
/// chain walk) then cost one hash instead of the recursive walk. All
/// soundness checks are preserved — see VoCache.
TCVS_ENDORSER Result<std::optional<Bytes>> VerifyPointRead(
    const Digest& trusted_root, const TreeParams& params, const Bytes& key,
    const PointVO& vo, VoCache* cache = nullptr);

/// \brief Client-side verification + replay of an update (upsert).
///
/// Verifies the pre-state path against `trusted_root`, then locally replays
/// the upsert of (key,value) — including leaf/internal splits — and returns
/// the new root digest the honest server must now have (paper §4.1: "the
/// user ... computes the new root digest of the tree").
///
/// With a cache, the verified pre-state path is invalidated on success (its
/// entries can never match the post-state tree).
TCVS_ENDORSER Result<Digest> VerifyAndApplyUpsert(const Digest& trusted_root,
                                                  const TreeParams& params,
                                                  const Bytes& key,
                                                  const Bytes& value,
                                                  const PointVO& vo,
                                                  VoCache* cache = nullptr);

/// \brief Client-side verification + replay of a delete.
///
/// Verifies the pre-state path, replays the removal (including empty-leaf
/// unlinking and root collapse), and returns the new root digest.
/// \return NotFound if the key is provably absent (tree unchanged).
TCVS_ENDORSER Result<Digest> VerifyAndApplyDelete(const Digest& trusted_root,
                                                  const TreeParams& params,
                                                  const Bytes& key,
                                                  const PointVO& vo,
                                                  VoCache* cache = nullptr);

/// \brief Client-side verification of a range scan over [lo, hi] inclusive.
///
/// Checks the subtree against `trusted_root`, that every child overlapping
/// the range is expanded (completeness), and that every in-range entry
/// carries a value matching its hash (soundness).
///
/// \return the in-range (key,value) pairs in key order.
TCVS_ENDORSER Result<std::vector<std::pair<Bytes, Bytes>>> VerifyRangeRead(
    const Digest& trusted_root, const TreeParams& params, const Bytes& lo,
    const Bytes& hi, const RangeVO& vo, VoCache* cache = nullptr);

// ---- Tainted-VO entry points ----------------------------------------------
// The verify functions ARE the endorsers for wire VOs: a Tainted VO from
// PointVO/RangeVO::Deserialize goes straight in, and a successful result is
// the endorsed product (a value / a new trusted root digest). The plain
// overloads above remain for the server side and for locally built VOs.

/// Recomputes and consistency-checks the root digest of a quarantined VO —
/// the first endorsement step of every client chain walk (the digest, not
/// the VO, is what becomes trusted).
TCVS_ENDORSER inline Result<Digest> VerifiedRootDigest(
    const util::Tainted<PointVO>& vo, VoCache* cache = nullptr) {
  return vo.untrusted().root.VerifiedDigest(cache);
}
TCVS_ENDORSER inline Result<Digest> VerifiedRootDigest(
    const util::Tainted<RangeVO>& vo, VoCache* cache = nullptr) {
  return vo.untrusted().root.VerifiedDigest(cache);
}

TCVS_ENDORSER inline Result<std::optional<Bytes>> VerifyPointRead(
    const Digest& trusted_root, const TreeParams& params, const Bytes& key,
    const util::Tainted<PointVO>& vo, VoCache* cache = nullptr) {
  return VerifyPointRead(trusted_root, params, key, vo.untrusted(), cache);
}

TCVS_ENDORSER inline Result<Digest> VerifyAndApplyUpsert(
    const Digest& trusted_root, const TreeParams& params, const Bytes& key,
    const Bytes& value, const util::Tainted<PointVO>& vo,
    VoCache* cache = nullptr) {
  return VerifyAndApplyUpsert(trusted_root, params, key, value, vo.untrusted(),
                              cache);
}

TCVS_ENDORSER inline Result<Digest> VerifyAndApplyDelete(
    const Digest& trusted_root, const TreeParams& params, const Bytes& key,
    const util::Tainted<PointVO>& vo, VoCache* cache = nullptr) {
  return VerifyAndApplyDelete(trusted_root, params, key, vo.untrusted(), cache);
}

TCVS_ENDORSER inline Result<std::vector<std::pair<Bytes, Bytes>>>
VerifyRangeRead(const Digest& trusted_root, const TreeParams& params,
                const Bytes& lo, const Bytes& hi,
                const util::Tainted<RangeVO>& vo, VoCache* cache = nullptr) {
  return VerifyRangeRead(trusted_root, params, lo, hi, vo.untrusted(), cache);
}

/// \brief Digest of an empty tree (a single empty leaf); the well-known
/// initial root digest M(D₀) of the paper.
Digest EmptyRootDigest();

}  // namespace mtree
}  // namespace tcvs
