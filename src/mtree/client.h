#pragma once

#include "mtree/vo.h"

namespace tcvs {
namespace mtree {

/// \brief Client-side mirror of the database state: just the trusted root
/// digest M plus the tree parameters (paper §4.1: "We assume that the
/// current root digest M is known to the user").
///
/// Every operation verifies the server-supplied VO against the current M;
/// mutating operations then advance M to the locally recomputed post-state
/// root. The client state is a constant number of bytes regardless of
/// database size — the bounded-local-state desideratum (§2.2.5).
class TreeClient {
 public:
  TreeClient(Digest initial_root, TreeParams params)
      : root_(std::move(initial_root)), params_(params) {}

  /// Constructs a client for an empty database.
  static TreeClient ForEmptyDatabase(TreeParams params = TreeParams{}) {
    return TreeClient(EmptyRootDigest(), params);
  }

  /// Trusted root digest of the last verified state.
  const Digest& root() const { return root_; }
  const TreeParams& params() const { return params_; }

  /// Attaches (or detaches, with nullptr) a VO subtree cache: subsequent
  /// verifications shortcut subtrees whose exact bytes verified before. The
  /// cache is borrowed, not owned, and must outlive the client or be
  /// detached first. All verification guarantees are unchanged — see
  /// VoCache for the soundness argument.
  void AttachVoCache(VoCache* cache) { cache_ = cache; }
  VoCache* vo_cache() const { return cache_; }

  /// Verifies an authenticated point read. Does not change M.
  /// \return the value, or nullopt for authenticated non-membership.
  Result<std::optional<Bytes>> Read(const Bytes& key, const PointVO& vo) const {
    return VerifyPointRead(root_, params_, key, vo, cache_);
  }
  /// Same, straight from a quarantined wire VO — the verify call endorses.
  TCVS_ENDORSER Result<std::optional<Bytes>> Read(
      const Bytes& key, const util::Tainted<PointVO>& vo) const {
    return VerifyPointRead(root_, params_, key, vo, cache_);
  }

  /// Verifies an authenticated range read. Does not change M.
  Result<std::vector<std::pair<Bytes, Bytes>>> ReadRange(const Bytes& lo,
                                                         const Bytes& hi,
                                                         const RangeVO& vo) const {
    return VerifyRangeRead(root_, params_, lo, hi, vo, cache_);
  }
  TCVS_ENDORSER Result<std::vector<std::pair<Bytes, Bytes>>> ReadRange(
      const Bytes& lo, const Bytes& hi,
      const util::Tainted<RangeVO>& vo) const {
    return VerifyRangeRead(root_, params_, lo, hi, vo, cache_);
  }

  /// Verifies the pre-state VO of an upsert, replays it, and advances M.
  /// \return the new root digest.
  Result<Digest> ApplyUpsert(const Bytes& key, const Bytes& value,
                             const PointVO& vo) {
    TCVS_ASSIGN_OR_RETURN(Digest next, VerifyAndApplyUpsert(root_, params_, key,
                                                            value, vo, cache_));
    root_ = next;
    return root_;
  }
  TCVS_ENDORSER Result<Digest> ApplyUpsert(const Bytes& key, const Bytes& value,
                                           const util::Tainted<PointVO>& vo) {
    TCVS_ASSIGN_OR_RETURN(Digest next, VerifyAndApplyUpsert(root_, params_, key,
                                                            value, vo, cache_));
    root_ = next;
    return root_;
  }

  /// Verifies the pre-state VO of a delete, replays it, and advances M.
  /// \return the new root digest; NotFound (M unchanged) when the VO proves
  /// the key absent.
  Result<Digest> ApplyDelete(const Bytes& key, const PointVO& vo) {
    TCVS_ASSIGN_OR_RETURN(Digest next,
                          VerifyAndApplyDelete(root_, params_, key, vo, cache_));
    root_ = next;
    return root_;
  }
  TCVS_ENDORSER Result<Digest> ApplyDelete(const Bytes& key,
                                           const util::Tainted<PointVO>& vo) {
    TCVS_ASSIGN_OR_RETURN(Digest next,
                          VerifyAndApplyDelete(root_, params_, key, vo, cache_));
    root_ = next;
    return root_;
  }

  /// Force-sets the trusted root (used when a protocol hands the client a
  /// state authenticated by other means, e.g. a verified signed root).
  void ResetRoot(Digest root) { root_ = std::move(root); }

 private:
  Digest root_;
  TreeParams params_;
  VoCache* cache_ = nullptr;  // Borrowed; nullptr = no caching.
};

}  // namespace mtree
}  // namespace tcvs
