#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tcvs {
namespace util {

/// \file
/// The always-on profiling plane: a signal-based sampling CPU profiler plus
/// the process-wide lock-contention profile (see ARCHITECTURE.md,
/// "Profiling plane").
///
/// **CPU profiler.** SIGPROF driven by ITIMER_PROF at a fixed frequency, so
/// samples land proportionally to CPU time actually burned (an idle process
/// yields almost no samples — that is the correct reading, not a bug). The
/// handler writes raw PCs from backtrace() into a preallocated lock-free
/// ring (slot claimed with one fetch_add; overflow counted, never blocked
/// on); symbolization via dladdr/__cxa_demangle happens strictly off-signal,
/// at Stop/Drain time. Output is collapsed/folded stack format
/// (`frame;frame;frame count`, flamegraph.pl-ready) plus a JSON top-N table.
///
/// **Contention profile.** util::Mutex's contended slow path and
/// util::CondVar's waits (see mutex.h) record per-callsite wait time into a
/// fixed lock-free table rendered by ContentionProfile() — the
/// `lock.contention.profile` report behind `/lockz`. Named mutexes
/// additionally feed `lock.<name>.contention_us` histograms in the metrics
/// registry.

/// \name Clamping bounds for profiler parameters (shared by the RPC, the
/// admin endpoint, and the tcvsd flag so every surface agrees).
/// @{
inline constexpr int kMinProfileHz = 1;
inline constexpr int kMaxProfileHz = 1000;
inline constexpr int kMinProfileSeconds = 1;
inline constexpr int kMaxProfileSeconds = 30;
/// @}

/// \brief One collected CPU profile, detached from the profiler: safe to
/// render, serialize, or ship over the kProfile RPC.
struct CpuProfile {
  /// Sampling frequency the profile was collected at.
  int hz = 0;
  /// Wall-clock length of the collection window, seconds.
  double duration_s = 0;
  /// Samples captured (ring slots filled).
  uint64_t samples = 0;
  /// Samples dropped on ring overflow (raise hz × seconds past the ring and
  /// this grows; the profile stays valid, just truncated).
  uint64_t dropped = 0;
  /// Aggregated stacks, root-first semicolon-joined, sorted by count
  /// descending: {"main;Serve;Sha256::Update", 42}.
  std::vector<std::pair<std::string, uint64_t>> folded;

  /// Collapsed-stack text, one `stack count` line each — pipe through
  /// flamegraph.pl for a flame graph.
  std::string FoldedFormat() const;

  /// JSON: window metadata plus the top-`n` symbols by self (leaf) sample
  /// count, with inclusive counts alongside.
  std::string JsonTopN(size_t n) const;
};

/// Starts the sampling profiler at `hz` (clamped to
/// [kMinProfileHz, kMaxProfileHz]). One profiler per process:
/// FailedPrecondition if already running. `tcvsd --profile-hz N` calls this
/// at boot for always-on operation.
Status StartCpuProfiler(int hz);

/// True between a successful Start and the matching Stop.
bool CpuProfilerRunning();

/// Stops the profiler and returns everything sampled since Start (or the
/// last Drain). FailedPrecondition if not running.
Result<CpuProfile> StopCpuProfiler();

/// Snapshot-and-reset for an always-on profiler: returns the samples
/// accumulated since Start/previous Drain and resets the ring, leaving the
/// profiler running. FailedPrecondition if not running.
Result<CpuProfile> DrainCpuProfile();

/// Blocking windowed collection — the one call behind `/pprofz?seconds=N`
/// and the kProfile RPC. If an always-on profiler is running, drains it,
/// sleeps `seconds`, and drains again (the window rides the running
/// profiler; `hz` is ignored in favor of the running frequency). Otherwise
/// starts at `hz`, sleeps, stops. Windows are serialized: a second caller
/// gets FailedPrecondition("profiler busy") instead of queueing for up to
/// 30 s. Parameters are clamped to the kMin/kMax bounds above.
Result<CpuProfile> ProfileWindow(int hz, int seconds);

/// \name Lock-contention profile.
/// @{

/// Master switch for contention accounting (mutex slow paths and condvar
/// waits). Defaults to on; `tcvsd --no-contention-profile` clears it.
void SetContentionProfilingEnabled(bool enabled);
bool ContentionProfilingEnabled();

/// \brief One contended callsite: the PC a wait was attributed to, its
/// symbolized frame, and the accumulated damage.
struct ContentionSite {
  uintptr_t pc = 0;
  std::string symbol;
  uint64_t waits = 0;
  uint64_t total_us = 0;
};

/// The `lock.contention.profile` report: every recorded callsite, symbolized,
/// sorted by total_us descending.
std::vector<ContentionSite> ContentionProfile();

/// ContentionProfile() as one JSON object (what `/lockz` serves):
/// {"sites":[{"pc","symbol","waits","total_us"},…],"dropped":N}.
std::string ContentionJson();

/// Zeroes the contention table (test isolation; production never resets).
void ResetContentionForTesting();
/// @}

}  // namespace util
}  // namespace tcvs
