#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "util/mutex.h"
#include "util/result.h"

namespace tcvs {
namespace util {

/// \brief When an armed fault point fires. Every subsystem crossing a
/// failure-prone boundary (socket I/O, WAL appends, the RPC serve loop)
/// consults the process-wide FaultInjector at a *named point*; tests arm
/// points to inject the faults a hostile datacenter produces for free.
struct FaultSpec {
  enum class Trigger : uint8_t {
    kAlways = 0,       ///< Fires on every hit.
    kOneShot = 1,      ///< Fires on the first hit, then auto-disarms.
    kNthCall = 2,      ///< Fires on exactly the nth hit (1-based), then disarms.
    kProbability = 3,  ///< Fires independently per hit with probability `p`.
  };

  Trigger trigger = Trigger::kOneShot;
  uint64_t n = 1;          ///< kNthCall only.
  double probability = 0;  ///< kProbability only.
  /// Action-specific parameter a fault point may consume (e.g. how many
  /// bytes of a torn write reach the disk, or a delay in milliseconds).
  uint64_t arg = 0;
  /// kProbability only: seed of this point's private RNG stream. 0 means
  /// "derive from the point name", which is still fully deterministic — the
  /// same point armed with the same spec draws the same fire pattern in
  /// every run and every process, so probabilistic fault campaigns replay
  /// bit-exactly. A nonzero seed selects a different (equally reproducible)
  /// pattern.
  uint64_t seed = 0;

  static FaultSpec Always(uint64_t arg = 0);
  static FaultSpec OneShot(uint64_t arg = 0);
  static FaultSpec Nth(uint64_t n, uint64_t arg = 0);
  static FaultSpec Probability(double p, uint64_t arg = 0, uint64_t seed = 0);
};

/// \brief Process-wide registry of named fault points.
///
/// Production cost is one acquire atomic load per fault point when nothing
/// is armed (see bench_resilience). Thread-safe: the serve loop, client
/// threads, and the test arming faults may race freely.
///
/// Memory ordering of the fast path: Arm() publishes the armed count with a
/// release increment and ShouldFail() reads it with an acquire load, so a
/// thread that observes `armed_count_ > 0` also observes the spec written
/// under the mutex. A ShouldFail racing with a concurrent Arm may still
/// take the fast path and miss the brand-new point — that is inherent to
/// any lock-free gate and is fine for the harness: tests arm points
/// *before* starting the threads they mean to fault (thread creation
/// provides the happens-before edge), never expecting an in-flight
/// operation to pick a fault up mid-race.
///
/// Points are arbitrary strings; the convention is `layer.op.fault`
/// (`net.send.drop`, `wal.append.torn`). Unknown points never fire.
class FaultInjector {
 public:
  /// The process-wide instance every fault point consults.
  static FaultInjector& Instance();

  /// Arms (or re-arms) `point` with `spec`, resetting its counters.
  void Arm(const std::string& point, FaultSpec spec);

  /// Disarms `point`; its hit/fire counters survive for inspection.
  void Disarm(const std::string& point);

  /// Disarms everything and forgets all counters (test teardown).
  void Reset();

  /// One hit at `point`: true iff the armed spec says the fault fires now.
  bool ShouldFail(const std::string& point);

  /// Like ShouldFail, but also surfaces the spec's action parameter.
  bool ShouldFail(const std::string& point, uint64_t* arg);

  /// \name Observability for tests: how often a point was consulted / fired.
  /// @{
  uint64_t hits(const std::string& point) const;
  uint64_t fires(const std::string& point) const;
  /// @}

  /// Arms points from an environment variable (cross-process injection into
  /// spawned daemons). Grammar, comma-separated:
  ///
  ///   point=always | point=oneshot | point=nth:N | point=prob:P[:SEED]  [@ARG]
  ///
  /// e.g. TCVS_FAULTS="rpc.serve.crash=nth:3,wal.append.torn=oneshot@12" or
  /// TCVS_FAULTS="net.send.drop=prob:0.05:42". Unset/empty is OK (no-op).
  /// Malformed entries (unknown trigger, non-numeric N/P/SEED/ARG, P outside
  /// [0, 1]) are InvalidArgument — a typo'd spec must fail loudly, not arm a
  /// point that never fires.
  Status ArmFromEnv(const char* env_var = "TCVS_FAULTS");

  /// Parses and arms one `point=trigger[@arg]` entry (exposed for tests).
  Status ArmFromString(const std::string& entry);

 private:
  FaultInjector();

  struct Point {
    FaultSpec spec;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fires = 0;
    /// kProbability: this point's private splitmix64 stream, seeded at Arm
    /// time from spec.seed (or the point name when 0). Per-point streams
    /// mean arming or hitting unrelated points never perturbs this point's
    /// draw sequence — campaign replays stay bit-exact across processes.
    uint64_t rng_state = 0;
  };

  mutable Mutex mu_;
  /// Lock-free gate for the unarmed fast path; see the class comment for
  /// the release/acquire pairing with mu_.
  std::atomic<int> armed_count_{0};
  std::map<std::string, Point> points_ TCVS_GUARDED_BY(mu_);
};

}  // namespace util
}  // namespace tcvs
