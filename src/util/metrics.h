#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/histogram.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace tcvs {
namespace util {

/// \file
/// Process-wide observability: a thread-safe registry of named counters,
/// gauges, and latency histograms, plus RAII trace spans.
///
/// Naming convention (enforced by tools/lint.py, rule `metric-name`):
/// lowercase dotted `component.metric_name`, e.g.
/// `rpc.serve.reply_cache.hits_total`. Suffixes follow Prometheus idiom:
/// `_total` for counters, `_us` / `_rounds` / `_bytes` for histogram units.
/// Every metric is created through MetricsRegistry (the constructors are
/// private), so the registry's snapshot is always the complete inventory.
///
/// Hot-path cost: counters and gauges are single relaxed atomics; histograms
/// take one per-metric util::Mutex (never the registry-wide lock). Call
/// sites cache the metric pointer in a function-local static, so the
/// name lookup happens once per process:
///
/// \code
///   static Counter* const hits =
///       MetricsRegistry::Instance().GetCounter("rpc.serve.cache.hits_total");
///   hits->Increment();
/// \endcode
///
/// Lock ranking: subsystem locks (serve `mu_`/`queue_mu_`, DurableServer
/// `mu_`) may be held while touching metrics; the registry lock and the
/// per-metric locks are LEAVES — no metrics code calls back into any
/// subsystem, so the ordering `subsystem lock → registry mu_ → metric mu_`
/// is acyclic by construction (see ARCHITECTURE.md, "Observability").

/// \brief Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;

  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous level (queue depth, active workers). Lock-free.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<int64_t> value_{0};
};

/// \brief One latency sample kept alongside a histogram so a tail spike on
/// `/metrics` links to a joinable trace id (OpenMetrics exemplar semantics).
/// `ts_us` is the recording span's start on the process steady clock.
struct Exemplar {
  uint64_t value = 0;
  uint64_t trace_id = 0;
  uint64_t ts_us = 0;
  /// Histogram bucket `value` landed in (the reservoir's slot key).
  uint32_t bucket = 0;
};

/// \brief A util::Histogram behind its own mutex: recording contends only
/// with other recorders of the SAME metric and with snapshots, never with
/// the registry or other metrics.
///
/// Alongside the buckets it keeps a tiny bounded exemplar reservoir:
/// RecordWithExemplar stores its (value, trace_id, ts) sample in slot
/// `bucket % kExemplarSlots`, overwriting that slot's previous occupant.
/// The policy is deterministic — the reservoir after a sequence of records
/// is a pure function of the sequence — and keyed by bucket, so slow
/// outliers land in different slots than the fast common case instead of
/// being churned out by it.
class LatencyHistogram {
 public:
  static constexpr size_t kExemplarSlots = 4;

  void Record(uint64_t value) {
    MutexLock lock(&mu_);
    hist_.Record(value);
  }

  /// Record() plus exemplar capture. A zero `trace_id` (no ambient span)
  /// records the value only — an exemplar nobody can join is noise.
  void RecordWithExemplar(uint64_t value, uint64_t trace_id, uint64_t ts_us) {
    MutexLock lock(&mu_);
    hist_.Record(value);
    if (trace_id == 0) return;
    const uint32_t bucket = static_cast<uint32_t>(Histogram::BucketFor(value));
    Exemplar& slot = exemplars_[bucket % kExemplarSlots];
    slot.value = value;
    slot.trace_id = trace_id;
    slot.ts_us = ts_us;
    slot.bucket = bucket;
  }

  Histogram Snapshot() const {
    MutexLock lock(&mu_);
    return hist_;
  }

  /// The occupied reservoir slots, in slot order (empty slots elided).
  std::vector<Exemplar> Exemplars() const {
    MutexLock lock(&mu_);
    std::vector<Exemplar> out;
    for (const Exemplar& e : exemplars_) {
      if (e.trace_id != 0) out.push_back(e);
    }
    return out;
  }

 private:
  friend class MetricsRegistry;
  LatencyHistogram() = default;

  mutable Mutex mu_;
  Histogram hist_ TCVS_GUARDED_BY(mu_);
  Exemplar exemplars_[kExemplarSlots] TCVS_GUARDED_BY(mu_);
};

/// \brief One completed trace span in the ring-buffer event trace.
struct TraceEvent {
  /// Span name (a string literal; TCVS_SPAN guarantees static lifetime).
  const char* name = nullptr;
  /// Span start, microseconds on the process steady clock.
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  /// Hashed std::thread::id of the recording thread.
  uint32_t thread = 0;
  /// \name Causal identity (Dapper-style). trace_id groups every span caused
  /// by one root operation, across threads and — via the RPC header — across
  /// processes. parent_span_id is 0 for root spans.
  /// @{
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  /// @}
};

/// \brief The identity of the active span on the current thread. TCVS_SPAN
/// pushes a fresh context on entry and restores the previous one on exit;
/// the RPC layer copies it into request headers (client) and installs the
/// received one via ScopedTraceContext (server).
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

/// The active span context of the calling thread ({0,0,0} outside any span).
SpanContext CurrentSpanContext();

/// A fresh process-unique non-zero 64-bit id (also usable as a span id).
uint64_t NewTraceId();

/// \brief Installs a remote caller's trace context as the thread's active
/// context for the current scope, so every TCVS_SPAN below joins the
/// caller's trace; restores the previous context on destruction. A zero
/// `trace_id` starts a fresh trace (legacy peers that predate the trace
/// header still get coherent server-side traces).
class ScopedTraceContext {
 public:
  ScopedTraceContext(uint64_t trace_id, uint64_t span_id);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  SpanContext saved_;
};

/// \brief Collects every span that FINISHES on this thread while the
/// collector is installed (bounded at kMaxSpans, oldest kept), regardless
/// of whether ring tracing is enabled. The serve loop installs one per
/// request when slow-op capture is armed, so a request that blows past
/// `--slow-op-us` can attach its own span subtree to the slow-op record.
/// Nests: an inner collector shadows the outer for its lifetime.
class ScopedSpanCollector {
 public:
  static constexpr size_t kMaxSpans = 128;

  ScopedSpanCollector();
  ~ScopedSpanCollector();

  ScopedSpanCollector(const ScopedSpanCollector&) = delete;
  ScopedSpanCollector& operator=(const ScopedSpanCollector&) = delete;

  /// The collected spans, in completion order (children before parents).
  std::vector<TraceEvent> Take() { return std::move(events_); }

 private:
  friend class TraceSpan;
  void Add(const TraceEvent& event) {
    if (events_.size() < kMaxSpans) events_.push_back(event);
  }

  std::vector<TraceEvent> events_;
  ScopedSpanCollector* prev_;
};

/// \brief A drained copy of the trace ring, detached from the registry:
/// safe to serialize, ship over the kTraceDump RPC, and render offline as
/// Chrome trace-event JSON (chrome://tracing, Perfetto).
struct TraceDump {
  /// TraceEvent with an owned name — dumps outlive the emitting process.
  struct Event {
    std::string name;
    uint64_t start_us = 0;
    uint64_t duration_us = 0;
    uint32_t thread = 0;
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_span_id = 0;
  };
  std::vector<Event> events;

  static TraceDump FromEvents(const std::vector<TraceEvent>& events);

  /// Chrome trace-event JSON: {"traceEvents":[{"name","ph":"X","ts","dur",
  /// "pid","tid","args":{"trace_id",...}}]} with events sorted by start
  /// time. Ids are rendered as 16-hex-digit strings (64-bit ids do not fit
  /// exactly in JSON numbers).
  std::string ChromeTraceJson() const;

  Bytes Serialize() const;
  // taint-exempt: observability-only — trace dumps are rendered for humans
  // (Chrome trace JSON) and feed no trusted sink or protocol register.
  static Result<TraceDump> Deserialize(const Bytes& data);
};

/// \brief Point-in-time copy of every registered metric, detached from the
/// registry: safe to serialize, ship over the Stats RPC, and render offline.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;
  /// Exemplar reservoirs of histograms that have any (same keys as
  /// `histograms`; absent key = empty reservoir). Wire-wise this section is
  /// appended after the histograms, so pre-exemplar readers (which tolerate
  /// trailing bytes) and writers (section absent → empty) interoperate.
  std::map<std::string, std::vector<Exemplar>> exemplars;

  /// Prometheus-style text exposition (`tcvs_` prefix, dots → underscores,
  /// histograms as summaries with quantile labels). Quantile samples carry
  /// an OpenMetrics exemplar suffix — `# {trace_id="<16 hex>"} <value>
  /// <ts-seconds>` — picking the reservoir sample closest to the reported
  /// quantile, so a p99 spike links to a joinable trace id. Validated by
  /// tools/promcheck.py.
  std::string TextFormat() const;

  /// One JSON object (single line, no trailing newline) for JSON-lines
  /// structured logging: {"counters":{…},"gauges":{…},"histograms":{…}}.
  std::string JsonFormat() const;

  Bytes Serialize() const;
  // taint-exempt: observability-only — the Stats payload is rendered for
  // humans and feeds no trusted sink or protocol register.
  static Result<MetricsSnapshot> Deserialize(const Bytes& data);
};

/// \brief The process-wide metric registry. Get-or-create returns stable
/// pointers that live until process exit (ResetForTesting zeroes values but
/// never invalidates pointers, so cached call-site statics stay safe).
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// \name Get-or-create by name. A name is permanently one kind: asking
  /// for an existing name with a different kind aborts (a programming
  /// error caught in every test run).
  /// @{
  Counter* GetCounter(std::string_view name) TCVS_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) TCVS_EXCLUDES(mu_);
  LatencyHistogram* GetLatency(std::string_view name) TCVS_EXCLUDES(mu_);
  /// @}

  MetricsSnapshot Snapshot() const TCVS_EXCLUDES(mu_);

  /// Prometheus-style exposition of the current state (Snapshot().TextFormat).
  std::string TextFormat() const TCVS_EXCLUDES(mu_);

  /// \name Ring-buffer event trace (off by default; ~free when disabled —
  /// one relaxed atomic load per completed span).
  /// @{
  void set_trace_enabled(bool enabled) {
    trace_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool trace_enabled() const {
    return trace_enabled_.load(std::memory_order_relaxed);
  }
  void RecordTraceEvent(const TraceEvent& event) TCVS_EXCLUDES(trace_mu_);
  /// Returns the buffered events oldest-first and clears the buffer.
  std::vector<TraceEvent> DrainTrace() TCVS_EXCLUDES(trace_mu_);
  /// Resizes the trace ring, clamped to [kMinTraceCapacity,
  /// kMaxTraceCapacity]. Clears buffered events (the ring invariants are
  /// tied to the capacity they were recorded under).
  void set_trace_capacity(size_t capacity) TCVS_EXCLUDES(trace_mu_);
  size_t trace_capacity() const TCVS_EXCLUDES(trace_mu_);
  /// @}

  /// Zeroes every counter/gauge/histogram, clears the trace, and restores
  /// the default trace capacity, WITHOUT unregistering anything: pointers
  /// cached by call sites stay valid.
  void ResetForTesting() TCVS_EXCLUDES(mu_, trace_mu_);

  /// Default number of events the trace ring holds before overwriting the
  /// oldest (tunable per process via set_trace_capacity / tcvsd
  /// --trace-capacity).
  static constexpr size_t kTraceCapacity = 4096;
  static constexpr size_t kMinTraceCapacity = 64;
  static constexpr size_t kMaxTraceCapacity = 1u << 20;

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      TCVS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      TCVS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      latencies_ TCVS_GUARDED_BY(mu_);

  std::atomic<bool> trace_enabled_{false};
  mutable Mutex trace_mu_;
  std::vector<TraceEvent> trace_ TCVS_GUARDED_BY(trace_mu_);
  size_t trace_next_ TCVS_GUARDED_BY(trace_mu_) = 0;
  bool trace_wrapped_ TCVS_GUARDED_BY(trace_mu_) = false;
  size_t trace_capacity_ TCVS_GUARDED_BY(trace_mu_) = kTraceCapacity;
};

/// Microseconds since an arbitrary process-local epoch (steady clock).
uint64_t MonotonicMicros();

/// \brief RAII span: times a scope, records the elapsed microseconds into a
/// latency histogram on destruction, and (when tracing is enabled) appends a
/// TraceEvent. On construction it pushes a fresh SpanContext — inheriting
/// the current trace (or starting one) and parenting itself under the
/// enclosing span — and restores the previous context on destruction.
/// Context maintenance always happens (audit events need trace ids even
/// when event recording is off); the ring write is gated on trace_enabled.
/// Use via TCVS_SPAN.
class TraceSpan {
 public:
  TraceSpan(const char* name, LatencyHistogram* latency);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  static uint32_t CurrentThreadHash();

 private:
  const char* name_;
  LatencyHistogram* latency_;
  uint64_t start_us_;
  SpanContext saved_;  // The enclosing context, restored on destruction.
  SpanContext ctx_;    // This span's own identity.
};

#define TCVS_SPAN_CONCAT_INNER_(a, b) a##b
#define TCVS_SPAN_CONCAT_(a, b) TCVS_SPAN_CONCAT_INNER_(a, b)

/// Times the enclosing scope into the latency histogram `name ".latency_us"`
/// and the event trace. `name` MUST be a string literal (the trace stores
/// the pointer) matching the metric-name lint rule, e.g.
/// `TCVS_SPAN("mtree.vo.verify_point");`.
#define TCVS_SPAN(name)                                                       \
  static ::tcvs::util::LatencyHistogram* const TCVS_SPAN_CONCAT_(             \
      tcvs_span_hist_, __LINE__) =                                            \
      ::tcvs::util::MetricsRegistry::Instance().GetLatency(name              \
                                                           ".latency_us");    \
  ::tcvs::util::TraceSpan TCVS_SPAN_CONCAT_(tcvs_span_, __LINE__)(            \
      name, TCVS_SPAN_CONCAT_(tcvs_span_hist_, __LINE__))

}  // namespace util
}  // namespace tcvs
