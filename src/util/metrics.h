#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/histogram.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace tcvs {
namespace util {

/// \file
/// Process-wide observability: a thread-safe registry of named counters,
/// gauges, and latency histograms, plus RAII trace spans.
///
/// Naming convention (enforced by tools/lint.py, rule `metric-name`):
/// lowercase dotted `component.metric_name`, e.g.
/// `rpc.serve.reply_cache.hits_total`. Suffixes follow Prometheus idiom:
/// `_total` for counters, `_us` / `_rounds` / `_bytes` for histogram units.
/// Every metric is created through MetricsRegistry (the constructors are
/// private), so the registry's snapshot is always the complete inventory.
///
/// Hot-path cost: counters and gauges are single relaxed atomics; histograms
/// take one per-metric util::Mutex (never the registry-wide lock). Call
/// sites cache the metric pointer in a function-local static, so the
/// name lookup happens once per process:
///
/// \code
///   static Counter* const hits =
///       MetricsRegistry::Instance().GetCounter("rpc.serve.cache.hits_total");
///   hits->Increment();
/// \endcode
///
/// Lock ranking: subsystem locks (serve `mu_`/`queue_mu_`, DurableServer
/// `mu_`) may be held while touching metrics; the registry lock and the
/// per-metric locks are LEAVES — no metrics code calls back into any
/// subsystem, so the ordering `subsystem lock → registry mu_ → metric mu_`
/// is acyclic by construction (see ARCHITECTURE.md, "Observability").

/// \brief Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;

  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous level (queue depth, active workers). Lock-free.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<int64_t> value_{0};
};

/// \brief A util::Histogram behind its own mutex: recording contends only
/// with other recorders of the SAME metric and with snapshots, never with
/// the registry or other metrics.
class LatencyHistogram {
 public:
  void Record(uint64_t value) {
    MutexLock lock(&mu_);
    hist_.Record(value);
  }

  Histogram Snapshot() const {
    MutexLock lock(&mu_);
    return hist_;
  }

 private:
  friend class MetricsRegistry;
  LatencyHistogram() = default;

  mutable Mutex mu_;
  Histogram hist_ TCVS_GUARDED_BY(mu_);
};

/// \brief One completed trace span in the ring-buffer event trace.
struct TraceEvent {
  /// Span name (a string literal; TCVS_SPAN guarantees static lifetime).
  const char* name = nullptr;
  /// Span start, microseconds on the process steady clock.
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  /// Hashed std::thread::id of the recording thread.
  uint32_t thread = 0;
};

/// \brief Point-in-time copy of every registered metric, detached from the
/// registry: safe to serialize, ship over the Stats RPC, and render offline.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;

  /// Prometheus-style text exposition (`tcvs_` prefix, dots → underscores,
  /// histograms as summaries with quantile labels).
  std::string TextFormat() const;

  /// One JSON object (single line, no trailing newline) for JSON-lines
  /// structured logging: {"counters":{…},"gauges":{…},"histograms":{…}}.
  std::string JsonFormat() const;

  Bytes Serialize() const;
  static Result<MetricsSnapshot> Deserialize(const Bytes& data);
};

/// \brief The process-wide metric registry. Get-or-create returns stable
/// pointers that live until process exit (ResetForTesting zeroes values but
/// never invalidates pointers, so cached call-site statics stay safe).
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// \name Get-or-create by name. A name is permanently one kind: asking
  /// for an existing name with a different kind aborts (a programming
  /// error caught in every test run).
  /// @{
  Counter* GetCounter(std::string_view name) TCVS_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) TCVS_EXCLUDES(mu_);
  LatencyHistogram* GetLatency(std::string_view name) TCVS_EXCLUDES(mu_);
  /// @}

  MetricsSnapshot Snapshot() const TCVS_EXCLUDES(mu_);

  /// Prometheus-style exposition of the current state (Snapshot().TextFormat).
  std::string TextFormat() const TCVS_EXCLUDES(mu_);

  /// \name Ring-buffer event trace (off by default; ~free when disabled —
  /// one relaxed atomic load per completed span).
  /// @{
  void set_trace_enabled(bool enabled) {
    trace_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool trace_enabled() const {
    return trace_enabled_.load(std::memory_order_relaxed);
  }
  void RecordTraceEvent(const TraceEvent& event) TCVS_EXCLUDES(trace_mu_);
  /// Returns the buffered events oldest-first and clears the buffer.
  std::vector<TraceEvent> DrainTrace() TCVS_EXCLUDES(trace_mu_);
  /// @}

  /// Zeroes every counter/gauge/histogram and clears the trace, WITHOUT
  /// unregistering anything: pointers cached by call sites stay valid.
  void ResetForTesting() TCVS_EXCLUDES(mu_, trace_mu_);

  /// Events the trace ring buffer holds before overwriting the oldest.
  static constexpr size_t kTraceCapacity = 4096;

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      TCVS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      TCVS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      latencies_ TCVS_GUARDED_BY(mu_);

  std::atomic<bool> trace_enabled_{false};
  mutable Mutex trace_mu_;
  std::vector<TraceEvent> trace_ TCVS_GUARDED_BY(trace_mu_);
  size_t trace_next_ TCVS_GUARDED_BY(trace_mu_) = 0;
  bool trace_wrapped_ TCVS_GUARDED_BY(trace_mu_) = false;
};

/// Microseconds since an arbitrary process-local epoch (steady clock).
uint64_t MonotonicMicros();

/// \brief RAII span: times a scope, records the elapsed microseconds into a
/// latency histogram on destruction, and (when tracing is enabled) appends a
/// TraceEvent. Use via TCVS_SPAN.
class TraceSpan {
 public:
  TraceSpan(const char* name, LatencyHistogram* latency)
      : name_(name), latency_(latency), start_us_(MonotonicMicros()) {}
  ~TraceSpan() {
    const uint64_t duration = MonotonicMicros() - start_us_;
    latency_->Record(duration);
    MetricsRegistry& registry = MetricsRegistry::Instance();
    if (registry.trace_enabled()) {
      registry.RecordTraceEvent(
          {name_, start_us_, duration, CurrentThreadHash()});
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  static uint32_t CurrentThreadHash();

 private:
  const char* name_;
  LatencyHistogram* latency_;
  uint64_t start_us_;
};

#define TCVS_SPAN_CONCAT_INNER_(a, b) a##b
#define TCVS_SPAN_CONCAT_(a, b) TCVS_SPAN_CONCAT_INNER_(a, b)

/// Times the enclosing scope into the latency histogram `name ".latency_us"`
/// and the event trace. `name` MUST be a string literal (the trace stores
/// the pointer) matching the metric-name lint rule, e.g.
/// `TCVS_SPAN("mtree.vo.verify_point");`.
#define TCVS_SPAN(name)                                                       \
  static ::tcvs::util::LatencyHistogram* const TCVS_SPAN_CONCAT_(             \
      tcvs_span_hist_, __LINE__) =                                            \
      ::tcvs::util::MetricsRegistry::Instance().GetLatency(name              \
                                                           ".latency_us");    \
  ::tcvs::util::TraceSpan TCVS_SPAN_CONCAT_(tcvs_span_, __LINE__)(            \
      name, TCVS_SPAN_CONCAT_(tcvs_span_hist_, __LINE__))

}  // namespace util
}  // namespace tcvs
