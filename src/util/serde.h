#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace tcvs {
namespace util {

/// \brief Append-only little-endian encoder for wire messages and digest
/// preimages.
///
/// All multi-byte integers are little-endian; variable-size byte strings are
/// length-prefixed with a u32. The format is self-delimiting so a Reader can
/// decode a concatenation of fields written by a Writer.
class Writer {
 public:
  Writer() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Length-prefixed byte string.
  void PutBytes(const Bytes& b);
  /// Length-prefixed UTF-8/byte string.
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix (caller knows the size, e.g. digests).
  void PutRaw(const Bytes& b);

  const Bytes& buffer() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// \brief Cursor-based decoder matching Writer's format.
///
/// Every accessor returns OutOfRange if the buffer is exhausted, making
/// malformed (possibly malicious) wire messages a recoverable error rather
/// than UB.
class Reader {
 public:
  explicit Reader(const Bytes& buf) : buf_(buf) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  /// Reads a u32 length prefix then that many bytes.
  Result<Bytes> GetBytes();
  Result<std::string> GetString();
  /// Reads exactly `n` raw bytes.
  Result<Bytes> GetRaw(size_t n);

  size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  const Bytes& buf_;
  size_t pos_ = 0;
};

}  // namespace util
}  // namespace tcvs
