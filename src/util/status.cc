#include "util/status.h"

namespace tcvs {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kVerificationFailure:
      return "VerificationFailure";
    case StatusCode::kDeviationDetected:
      return "DeviationDetected";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tcvs
